// E3 — §4.1 loss analysis: "if p is the probability of losing a message,
// the probability of losing k BEACON messages is p^k. In this case, an
// initial topology will still be formed in time; however, some nodes will
// be missing."
//
// Measures the fraction of adapters missing from the discovery leader's
// FIRST committed view as a function of the segment loss probability, and
// overlays the analytic p^k (k = beacons sent during the phase). Measured
// can exceed analytic because two-phase-commit traffic is lossy too (a
// member whose Prepare/Ack exchanges all drop is also excluded) — the paper
// left this distribution "not yet further studied"; this bench studies it.
#include <cstdio>

#include "bench/bench_common.h"
#include "farm/farm.h"
#include "farm/scenario.h"
#include "util/flags.h"

namespace {

// Fraction of adapters missing from the leader's first committed view.
double run_trial(int nodes, double loss, std::uint64_t seed,
                 const gs::proto::Params& params) {
  gs::sim::Simulator sim;
  gs::farm::Farm farm(sim, gs::farm::FarmSpec::uniform(nodes, 1), params,
                      seed);
  gs::net::ChannelModel lossy;
  lossy.loss_probability = loss;
  for (gs::util::VlanId vlan : farm.vlans())
    farm.fabric().segment(vlan).set_model(lossy);
  farm.start();

  // The discovery winner is the highest IP = the last node's adapter.
  const gs::util::AdapterId winner =
      farm.node_adapters(static_cast<std::size_t>(nodes) - 1)[0];
  gs::proto::AdapterProtocol* proto = farm.protocol_for(winner);
  auto committed = gs::farm::run_until(
      sim, gs::sim::seconds(120), [&] { return proto->is_committed(); },
      gs::sim::milliseconds(20));
  if (!committed) return 1.0;
  const double missing =
      static_cast<double>(nodes) - static_cast<double>(proto->committed().size());
  return missing / static_cast<double>(nodes);
}

}  // namespace

int main(int argc, char** argv) {
  gs::util::Flags flags;
  if (!flags.parse(argc, argv)) return 1;
  const int nodes = static_cast<int>(flags.get_int("nodes", 40, "farm size"));
  const int trials = static_cast<int>(flags.get_int("trials", 30,
                                                    "seeds per loss rate"));
  if (flags.help_requested()) {
    flags.print_usage();
    return 0;
  }

  gs::proto::Params params;
  params.beacon_phase = gs::sim::seconds(5);
  params.beacon_interval = gs::sim::seconds(1);
  params.amg_stable_wait = gs::sim::seconds(2);
  params.gsc_stable_wait = gs::sim::seconds(5);
  // Fixed listen window: disable the start-up noise so k is crisp.
  params.start_skew_max = 0;
  params.beacon_setup_min = params.beacon_setup_max = gs::sim::seconds(1);

  // An adapter beacons once per second for T_b: the winner hears ~k of them.
  const int k = static_cast<int>(params.beacon_phase / params.beacon_interval);

  const std::vector<double> losses = {0.0,  0.05, 0.10, 0.20, 0.30,
                                      0.40, 0.50, 0.60, 0.70};

  std::vector<double> missing(losses.size() * static_cast<std::size_t>(trials));
  gs::bench::parallel_trials(missing.size(), [&](std::size_t i) {
    const double loss = losses[i / static_cast<std::size_t>(trials)];
    const std::uint64_t seed = 42 + i % static_cast<std::size_t>(trials);
    missing[i] = run_trial(nodes, loss, seed, params);
  });

  gs::bench::print_header(
      "Beacon loss — missing nodes in the initial topology (Section 4.1)");
  std::printf("%d nodes, k=%d beacons per phase, %d trials per point\n\n",
              nodes, k, trials);
  std::printf("%8s %18s %14s %16s\n", "loss p", "measured missing",
              "beacons p^k", "+2PC model");
  gs::bench::print_rule(62);
  const int attempts = params.twopc_retries + 1;
  gs::bench::BenchJson json("beacon_loss");
  json.set("nodes", nodes);
  json.set("trials_per_point", trials);
  json.set("beacons_per_phase", k);
  json.set("twopc_attempts", attempts);
  for (std::size_t li = 0; li < losses.size(); ++li) {
    std::vector<double> samples(
        missing.begin() + static_cast<std::ptrdiff_t>(li * static_cast<std::size_t>(trials)),
        missing.begin() + static_cast<std::ptrdiff_t>((li + 1) * static_cast<std::size_t>(trials)));
    const auto s = gs::util::Summary::of(samples);
    const double p = losses[li];
    double beacons = 1.0;
    for (int i = 0; i < k; ++i) beacons *= p;
    // A heard member still misses the first commit if its Prepare/Ack round
    // trip fails on every attempt: (1 - (1-p)^2)^attempts.
    double round_fail = 1.0;
    for (int i = 0; i < attempts; ++i) round_fail *= 1.0 - (1 - p) * (1 - p);
    const double model = beacons + (1.0 - beacons) * round_fail;
    std::printf("%8.2f %9.4f ±%6.4f %14.6f %16.4f\n", p, s.mean, s.stddev,
                beacons, model);
    auto& row = json.add_row("points");
    row.set("loss_p", p);
    row.set("measured_missing_mean", s.mean);
    row.set("measured_missing_stddev", s.stddev);
    row.set("beacon_model", beacons);
    row.set("beacon_plus_twopc_model", model);
  }
  std::printf(
      "\nExpected shape: the paper's analysis covers the beacon term only\n"
      "(p^%d, negligible below p=0.3); this system additionally loses a\n"
      "member from the *first* commit when its 2PC round trip fails all %d\n"
      "attempts — the '+2PC model' column. Measured tracks the combined\n"
      "model; every miss is repaired within seconds by the merge protocol.\n",
      k, attempts);
  json.write();
  return 0;
}
