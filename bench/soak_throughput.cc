// Soak harness throughput: how much simulated churn the randomized
// fault-schedule runner grinds through per wall-clock second. Each trial is
// one full seeded soak run (converge, inject the schedule, quiesce, check
// every invariant); the table reports per-run wall cost, the sim/wall
// speedup, and the trace-checking volume, so harness regressions show up as
// a throughput drop rather than silently stretching CI.
//
// Usage: soak_throughput [num_seeds] [first_seed]
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <vector>

#include "bench/bench_common.h"
#include "soak/runner.h"

int main(int argc, char** argv) {
  const std::size_t num_seeds =
      argc > 1 ? static_cast<std::size_t>(std::atoi(argv[1])) : 20;
  const std::uint64_t first_seed =
      argc > 2 ? static_cast<std::uint64_t>(std::atoll(argv[2])) : 1;

  gs::bench::print_header("Soak throughput (randomized fault schedules)");
  std::printf("seeds %zu starting at %llu, oceano(2,2,2,1,2), 60s horizon\n",
              num_seeds, static_cast<unsigned long long>(first_seed));

  std::mutex mu;
  std::vector<double> wall_ms;
  std::vector<double> sim_s;
  std::vector<double> events;
  std::vector<double> traces;
  std::uint64_t total_violations = 0;

  using Clock = std::chrono::steady_clock;
  const auto sweep_start = Clock::now();
  gs::bench::parallel_trials(num_seeds, [&](std::size_t trial) {
    gs::soak::SoakOptions opts;
    opts.seed = first_seed + trial;
    const auto start = Clock::now();
    const gs::soak::SoakResult result = gs::soak::run_soak(opts);
    const double ms =
        std::chrono::duration<double, std::milli>(Clock::now() - start).count();
    std::lock_guard<std::mutex> lock(mu);
    wall_ms.push_back(ms);
    sim_s.push_back(static_cast<double>(result.sim_end) /
                    static_cast<double>(gs::sim::kSecond));
    events.push_back(static_cast<double>(result.script_run.executed));
    traces.push_back(static_cast<double>(result.trace_records_checked));
    total_violations += result.violations.size();
  });
  const double sweep_s =
      std::chrono::duration<double>(Clock::now() - sweep_start).count();

  const auto wall = gs::util::Summary::of(wall_ms);
  const auto sim = gs::util::Summary::of(sim_s);
  const auto ev = gs::util::Summary::of(events);
  const auto tr = gs::util::Summary::of(traces);

  gs::bench::print_rule();
  std::printf("%-28s %s\n", "wall per run (ms)",
              gs::bench::fmt_mean_std(wall).c_str());
  std::printf("%-28s %s\n", "sim time per run (s)",
              gs::bench::fmt_mean_std(sim).c_str());
  std::printf("%-28s %s\n", "schedule events per run",
              gs::bench::fmt_mean_std(ev).c_str());
  std::printf("%-28s %s\n", "trace records per run",
              gs::bench::fmt_mean_std(tr).c_str());
  std::printf("%-28s %7.1fx\n", "sim/wall speedup",
              wall.mean > 0.0 ? sim.mean * 1000.0 / wall.mean : 0.0);
  std::printf("%-28s %7.2f\n", "runs per wall second",
              sweep_s > 0.0 ? static_cast<double>(num_seeds) / sweep_s : 0.0);
  std::printf("%-28s %7llu\n", "invariant violations",
              static_cast<unsigned long long>(total_violations));

  gs::bench::BenchJson json("soak_throughput");
  json.set("seeds", static_cast<std::uint64_t>(num_seeds));
  json.set("first_seed", first_seed);
  json.set("wall_per_run_ms_mean", wall.mean);
  json.set("wall_per_run_ms_stddev", wall.stddev);
  json.set("sim_per_run_s_mean", sim.mean);
  json.set("events_per_run_mean", ev.mean);
  json.set("trace_records_per_run_mean", tr.mean);
  json.set("sim_wall_speedup",
           wall.mean > 0.0 ? sim.mean * 1000.0 / wall.mean : 0.0);
  json.set("runs_per_wall_s",
           sweep_s > 0.0 ? static_cast<double>(num_seeds) / sweep_s : 0.0);
  json.set("invariant_violations", total_violations);
  json.write();
  return total_violations == 0 ? 0 : 1;
}
