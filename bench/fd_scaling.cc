// E5 — §4.2 AMG scaling: steady-state monitoring load vs group size for
// every failure-detection strategy the paper discusses.
//
//   bi-ring    GulfStream's scheme: 2 heartbeats per member per period.
//   uni-ring   half the traffic, weaker evidence.
//   all-to-all HACMP-style: n-1 heartbeats per member — "a form of
//              heartbeating which scales poorly" (§5).
//   subgroup   §4.2 alternative: rings within small subgroups plus a
//              low-frequency leader poll per subgroup.
//   rand-ping  §4.2 alternative: "a much lower load on the network
//              compared to heartbeating protocols" (ref [9]).
//
// Reported per strategy and group size: frames/s and KiB/s on the segment,
// and frames per member per second — the quantity that decides whether a
// strategy scales.
#include <cstdio>

#include "bench/bench_common.h"
#include "farm/farm.h"
#include "farm/scenario.h"
#include "util/flags.h"

namespace {

struct Load {
  double frames_per_s = -1;
  double kib_per_s = -1;
  double frames_per_member_s = -1;
};

Load measure(gs::proto::FdKind kind, int nodes, double window_s,
             std::uint64_t seed) {
  gs::sim::Simulator sim;
  gs::proto::Params params;
  params.beacon_phase = gs::sim::seconds(2);
  params.amg_stable_wait = gs::sim::seconds(1);
  params.gsc_stable_wait = gs::sim::seconds(3);
  params.fd_kind = kind;
  gs::farm::Farm farm(sim, gs::farm::FarmSpec::uniform(nodes, 1), params,
                      seed);
  farm.start();
  if (!gs::farm::run_until_converged(farm, gs::sim::seconds(240))) return {};

  // Settle, then measure a clean steady-state window.
  sim.run_until(sim.now() + gs::sim::seconds(5));
  farm.fabric().reset_load_accounting();
  sim.run_until(sim.now() + gs::sim::seconds(window_s));

  const auto& load = farm.fabric().load(gs::farm::uniform_vlan(0));
  Load out;
  out.frames_per_s = static_cast<double>(load.frames_sent) / window_s;
  out.kib_per_s =
      static_cast<double>(load.bytes_sent) / window_s / 1024.0;
  out.frames_per_member_s = out.frames_per_s / nodes;
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  gs::util::Flags flags;
  if (!flags.parse(argc, argv)) return 1;
  const double window =
      flags.get_double("seconds", 60.0, "measurement window (simulated)");
  const int max_all2all = static_cast<int>(flags.get_int(
      "max_all2all", 128, "cap for the quadratic all-to-all baseline"));
  if (flags.help_requested()) {
    flags.print_usage();
    return 0;
  }

  const std::vector<int> sizes = {4, 8, 16, 32, 64, 128, 256};
  const gs::proto::FdKind kinds[] = {
      gs::proto::FdKind::kBidirectionalRing,
      gs::proto::FdKind::kUnidirectionalRing, gs::proto::FdKind::kAllToAll,
      gs::proto::FdKind::kSubgroupRing, gs::proto::FdKind::kRandomPing};

  struct Job {
    gs::proto::FdKind kind;
    int nodes;
  };
  std::vector<Job> jobs;
  for (gs::proto::FdKind kind : kinds)
    for (int n : sizes) {
      if (kind == gs::proto::FdKind::kAllToAll && n > max_all2all) continue;
      jobs.push_back({kind, n});
    }

  std::vector<Load> results(jobs.size());
  gs::bench::parallel_trials(jobs.size(), [&](std::size_t i) {
    results[i] = measure(jobs[i].kind, jobs[i].nodes, window, 55);
  });

  gs::bench::print_header(
      "Failure-detector scaling — steady-state segment load (Section 4.2)");
  std::printf("heartbeat period 500ms, subgroups of 8 (poll 5s), ping period "
              "1s, %gs window\n\n",
              window);
  std::printf("%11s %6s %14s %12s %18s\n", "strategy", "size", "frames/s",
              "KiB/s", "frames/member/s");
  gs::bench::print_rule(66);
  gs::bench::BenchJson json("fd_scaling");
  json.set("window_s", window);
  json.set("max_all2all", max_all2all);
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    if (i > 0 && jobs[i].kind != jobs[i - 1].kind) gs::bench::print_rule(66);
    const Load& load = results[i];
    auto& row = json.add_row("segment_load");
    row.set("strategy", to_string(jobs[i].kind));
    row.set("size", jobs[i].nodes);
    row.set("converged", load.frames_per_s >= 0);
    if (load.frames_per_s < 0) {
      std::printf("%11s %6d %14s\n", to_string(jobs[i].kind), jobs[i].nodes,
                  "no-converge");
      continue;
    }
    row.set("frames_per_s", load.frames_per_s);
    row.set("kib_per_s", load.kib_per_s);
    row.set("frames_per_member_s", load.frames_per_member_s);
    std::printf("%11s %6d %14.1f %12.2f %18.2f\n", to_string(jobs[i].kind),
                jobs[i].nodes, load.frames_per_s, load.kib_per_s,
                load.frames_per_member_s);
  }
  std::printf(
      "\nExpected shape: rings stay constant per member (bi = 2/tau, uni =\n"
      "1/tau); all-to-all grows linearly per member, i.e. quadratically per\n"
      "segment (HACMP, 'scales poorly'); subgroup is bounded by its subgroup\n"
      "size — 2(s-1)/tau per member regardless of group size — plus a tiny\n"
      "poll overhead, trading extra frames for a leader that no longer\n"
      "maintains one giant ring; rand-ping is the cheapest per member at\n"
      "any size (§4.2's 'much lower load' claim).\n");

  // --- Detection quality at fixed size --------------------------------------
  // Ref [9]'s full claim is lower load *at similar detection time*: measure
  // the death-to-removal latency per strategy on a 32-member group.
  gs::bench::print_header(
      "Detection latency at size 32 (load is only half the story)");
  std::printf("%11s %22s\n", "strategy", "death -> removal (s)");
  gs::bench::print_rule(40);
  const int latency_trials = 5;
  for (gs::proto::FdKind kind : kinds) {
    std::vector<double> samples(static_cast<std::size_t>(latency_trials), -1);
    gs::bench::parallel_trials(samples.size(), [&](std::size_t i) {
      gs::sim::Simulator sim;
      gs::proto::Params params;
      params.beacon_phase = gs::sim::seconds(2);
      params.amg_stable_wait = gs::sim::seconds(1);
      params.gsc_stable_wait = gs::sim::seconds(3);
      params.fd_kind = kind;
      gs::farm::Farm farm(sim, gs::farm::FarmSpec::uniform(32, 1), params,
                          700 + i);
      farm.start();
      if (!gs::farm::run_until_converged(farm, gs::sim::seconds(120))) return;
      const gs::util::AdapterId victim = farm.node_adapters(13)[0];
      const gs::util::IpAddress ip = farm.fabric().adapter(victim).ip();
      gs::proto::AdapterProtocol* leader =
          farm.protocol_for(farm.node_adapters(31)[0]);
      const gs::sim::SimTime death = sim.now();
      farm.fabric().set_adapter_health(victim, gs::net::HealthState::kDown);
      auto removed = gs::farm::run_until(
          sim, death + gs::sim::seconds(120),
          [&] { return !leader->committed().contains(ip); },
          gs::sim::milliseconds(10));
      if (removed) samples[i] = gs::sim::to_seconds(*removed - death);
    });
    std::erase(samples, -1.0);
    const auto s = gs::util::Summary::of(samples);
    std::printf("%11s %16.2f ±%.2f\n", to_string(kind), s.mean, s.stddev);
    auto& row = json.add_row("detection_latency_32");
    row.set("strategy", to_string(kind));
    row.set("latency_mean_s", s.mean);
    row.set("latency_stddev_s", s.stddev);
  }
  std::printf(
      "\nExpected: the heartbeat strategies detect within (k+1/2)*tau plus\n"
      "verification (~2.7s here); rand-ping adds the wait until the dead\n"
      "member is randomly probed (a few ping periods) — similar detection\n"
      "time at a fraction of the load, completing ref [9]'s claim.\n");
  json.write();
  return 0;
}
