// Farm-scale stress of the simulator core (ROADMAP: "as fast as the
// hardware allows"). Two phases over a 5 000-adapter / 64-VLAN farm:
//
//  steady state  every adapter beacons its VLAN twice a second while an
//                FD-style suspicion timer is cancelled and re-armed on
//                every delivery; a mid-run fault burst fails switches and
//                nodes, then recovers them. Reported: simulator events/s,
//                frames sent+delivered/s (wall clock), peak RSS.
//
//  sharded steady state  (--shards=N) the same workload partitioned by VLAN
//                across N sim::ShardSet worker threads, each owning a
//                private Simulator + Fabric. VLANs are disjoint across
//                shards, so no cross-shard traffic flows; the measurement
//                isolates the epoch-barrier overhead against near-ideal
//                parallel work. Reported: events/s at shards=1 (same
//                harness) and shards=N, and their ratio; --min_shard_speedup
//                turns a scaling regression into a nonzero exit.
//
//  multicast path  the cost of putting one multicast on the wire, measured
//                two ways: the indexed implementation (per-VLAN membership
//                index, refcounted payload) vs an in-bench replica of the
//                pre-index algorithm (whole-farm scan per frame, payload
//                cloned per receiver). Delivery execution is identical in
//                both, so only enqueue time is on the clock. The ratio is
//                the speedup the index buys; --min_speedup turns a scaling
//                regression into a nonzero exit, which CI treats as a
//                failure.
//
// Results additionally go to BENCH_farm_scale.json (see bench_common.h).
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <vector>

#ifdef __unix__
#include <sys/resource.h>
#endif

#include "bench/bench_common.h"
#include "net/fabric.h"
#include "sim/shard.h"
#include "sim/simulator.h"
#include "util/flags.h"
#include "util/rng.h"
#include "wire/frame.h"

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

double peak_rss_mib() {
#ifdef __unix__
  rusage usage{};
  if (getrusage(RUSAGE_SELF, &usage) == 0)
    return static_cast<double>(usage.ru_maxrss) / 1024.0;  // Linux: KiB
#endif
  return -1.0;
}

struct Topology {
  std::vector<gs::util::AdapterId> adapters;
  std::vector<gs::util::SwitchId> switches;
  std::vector<gs::util::AdapterId> vlan_leaders;  // first adapter per VLAN
};

constexpr std::size_t kPortsPerSwitch = 128;

gs::util::VlanId vlan_for(std::size_t i, std::size_t vlans) {
  return gs::util::VlanId(static_cast<std::uint32_t>(1 + i % vlans));
}

Topology build(gs::net::Fabric& fabric, std::size_t adapters,
               std::size_t vlans) {
  Topology topo;
  gs::net::ChannelModel model;
  model.loss_probability = 0.001;
  fabric.set_default_channel(model);
  const std::size_t switches = (adapters + kPortsPerSwitch - 1) / kPortsPerSwitch;
  for (std::size_t s = 0; s < switches; ++s)
    topo.switches.push_back(fabric.add_switch(kPortsPerSwitch));
  topo.vlan_leaders.resize(vlans, gs::util::AdapterId::invalid());
  for (std::size_t i = 0; i < adapters; ++i) {
    const auto id =
        fabric.add_adapter(gs::util::NodeId(static_cast<std::uint32_t>(i)));
    fabric.attach(id, topo.switches[i / kPortsPerSwitch], vlan_for(i, vlans));
    fabric.set_adapter_ip(
        id, gs::util::IpAddress(10, static_cast<std::uint8_t>(i >> 16),
                                static_cast<std::uint8_t>(i >> 8),
                                static_cast<std::uint8_t>(i)));
    if (!topo.vlan_leaders[i % vlans].valid()) topo.vlan_leaders[i % vlans] = id;
    topo.adapters.push_back(id);
  }
  return topo;
}

std::vector<std::uint8_t> beacon_frame(std::size_t payload_bytes) {
  // A full-view beacon for a ~78-member AMG runs to about a KiB on the wire.
  std::vector<std::uint8_t> payload(payload_bytes, 0x5A);
  return gs::wire::encode_frame(1, payload);
}

struct SteadyResult {
  double wall_s = 0;
  std::uint64_t events = 0;
  std::uint64_t frames_sent = 0;
  std::uint64_t frames_delivered = 0;
  std::uint64_t suspicion_fires = 0;
};

SteadyResult run_steady_state(std::size_t adapters, std::size_t vlans,
                              double window_s, std::size_t payload_bytes) {
  gs::sim::Simulator sim;
  gs::net::Fabric fabric(sim, gs::util::Rng(0xFA12));
  Topology topo = build(fabric, adapters, vlans);
  const auto frame = beacon_frame(payload_bytes);
  const gs::sim::SimTime window = gs::sim::seconds(window_s);
  const gs::sim::SimDuration beacon_period = gs::sim::milliseconds(500);

  SteadyResult out;
  // Per-adapter FD churn: every delivery cancels and re-arms a suspicion
  // timer — the event-queue pattern the slot pool and compaction exist for.
  std::vector<gs::sim::Timer> suspicion(adapters);
  for (std::size_t i = 0; i < adapters; ++i) {
    const auto id = topo.adapters[i];
    fabric.adapter(id).set_receive_handler(
        [&, i](const gs::net::Datagram&) {
          suspicion[i].cancel();
          suspicion[i] = sim.after(gs::sim::seconds(2),
                                   [&out] { ++out.suspicion_fires; });
        });
  }
  // Every adapter beacons, phase-staggered across the period.
  std::function<void(std::size_t)> beacon = [&](std::size_t i) {
    fabric.multicast(topo.adapters[i], gs::net::kBeaconGroup, frame);
    if (sim.now() + beacon_period < window)
      sim.after(beacon_period, [&beacon, i] { beacon(i); });
  };
  for (std::size_t i = 0; i < adapters; ++i) {
    const auto phase = static_cast<gs::sim::SimDuration>(
        (i * beacon_period) / (adapters == 0 ? 1 : adapters));
    sim.after(phase, [&beacon, i] { beacon(i); });
  }
  // Fault burst at the half-way mark, recovery at three quarters.
  sim.at(window / 2, [&] {
    for (std::size_t s = 0; s < topo.switches.size(); s += 16)
      fabric.fail_switch(topo.switches[s]);
    for (std::size_t n = 0; n < adapters; n += 100)
      fabric.fail_node(gs::util::NodeId(static_cast<std::uint32_t>(n)));
  });
  sim.at((window / 4) * 3, [&] {
    for (std::size_t s = 0; s < topo.switches.size(); s += 16)
      fabric.recover_switch(topo.switches[s]);
    for (std::size_t n = 0; n < adapters; n += 100)
      fabric.recover_node(gs::util::NodeId(static_cast<std::uint32_t>(n)));
  });

  const auto start = Clock::now();
  sim.run_until(window + gs::sim::seconds(3));  // +3s drains the last timers
  out.wall_s = seconds_since(start);
  out.events = sim.executed_events();
  out.frames_sent = fabric.total_frames_sent();
  for (std::size_t v = 0; v < vlans; ++v)
    out.frames_delivered += fabric.load(vlan_for(v, vlans)).frames_delivered;
  return out;
}

// The steady-state workload again, partitioned by VLAN across ShardSet
// worker threads. Adapter i lives on VLAN 1 + i % vlans, and that VLAN's
// whole membership lands on shard (i % vlans) % shards — VLANs never span
// shards, so no frame crosses a shard boundary and the run measures pure
// epoch-barrier overhead over embarrassingly parallel simulation. Each shard
// owns a private Simulator + Fabric (same channel seed: per-VLAN streams are
// forked from the VLAN id, so the per-VLAN workload is identical at every
// shard count) plus its own timers and counters; nothing is shared across
// threads except the barrier itself.
struct ShardCtx {
  gs::sim::Simulator sim;
  std::unique_ptr<gs::net::Fabric> fabric;
  std::vector<gs::util::AdapterId> adapters;  // local, by local index
  std::vector<std::size_t> global_index;      // local index -> global i
  std::vector<gs::util::SwitchId> switches;
  std::vector<gs::sim::Timer> suspicion;
  std::function<void(std::size_t)> beacon;
  std::uint64_t suspicion_fires = 0;
};

SteadyResult run_steady_state_sharded(std::size_t adapters, std::size_t vlans,
                                      double window_s,
                                      std::size_t payload_bytes,
                                      std::size_t shards) {
  shards = std::min(shards, vlans);  // the partition unit is a whole VLAN
  std::vector<std::unique_ptr<ShardCtx>> shard;
  for (std::size_t s = 0; s < shards; ++s) {
    auto ctx = std::make_unique<ShardCtx>();
    ctx->fabric =
        std::make_unique<gs::net::Fabric>(ctx->sim, gs::util::Rng(0xFA12));
    gs::net::ChannelModel model;
    model.loss_probability = 0.001;
    ctx->fabric->set_default_channel(model);
    shard.push_back(std::move(ctx));
  }
  for (std::size_t i = 0; i < adapters; ++i) {
    ShardCtx& c = *shard[(i % vlans) % shards];
    if (c.adapters.size() % kPortsPerSwitch == 0)
      c.switches.push_back(c.fabric->add_switch(kPortsPerSwitch));
    const auto id =
        c.fabric->add_adapter(gs::util::NodeId(static_cast<std::uint32_t>(i)));
    c.fabric->attach(id, c.switches.back(), vlan_for(i, vlans));
    c.fabric->set_adapter_ip(
        id, gs::util::IpAddress(10, static_cast<std::uint8_t>(i >> 16),
                                static_cast<std::uint8_t>(i >> 8),
                                static_cast<std::uint8_t>(i)));
    c.adapters.push_back(id);
    c.global_index.push_back(i);
  }

  const auto frame = beacon_frame(payload_bytes);
  const gs::sim::SimTime window = gs::sim::seconds(window_s);
  const gs::sim::SimDuration beacon_period = gs::sim::milliseconds(500);
  for (auto& ctx : shard) {
    ShardCtx& c = *ctx;
    c.suspicion.resize(c.adapters.size());
    for (std::size_t li = 0; li < c.adapters.size(); ++li) {
      c.fabric->adapter(c.adapters[li])
          .set_receive_handler([&c, li](const gs::net::Datagram&) {
            c.suspicion[li].cancel();
            c.suspicion[li] = c.sim.after(
                gs::sim::seconds(2), [&c] { ++c.suspicion_fires; });
          });
    }
    c.beacon = [&c, &frame, window, beacon_period](std::size_t li) {
      c.fabric->multicast(c.adapters[li], gs::net::kBeaconGroup, frame);
      if (c.sim.now() + beacon_period < window)
        c.sim.after(beacon_period, [&c, li] { c.beacon(li); });
    };
    for (std::size_t li = 0; li < c.adapters.size(); ++li) {
      const auto phase = static_cast<gs::sim::SimDuration>(
          (c.global_index[li] * static_cast<std::size_t>(beacon_period)) /
          (adapters == 0 ? 1 : adapters));
      c.sim.after(phase, [&c, li] { c.beacon(li); });
    }
    c.sim.at(window / 2, [&c] {
      for (std::size_t s = 0; s < c.switches.size(); s += 16)
        c.fabric->fail_switch(c.switches[s]);
      for (std::size_t li = 0; li < c.adapters.size(); ++li)
        if (c.global_index[li] % 100 == 0)
          c.fabric->fail_node(gs::util::NodeId(
              static_cast<std::uint32_t>(c.global_index[li])));
    });
    c.sim.at((window / 4) * 3, [&c] {
      for (std::size_t s = 0; s < c.switches.size(); s += 16)
        c.fabric->recover_switch(c.switches[s]);
      for (std::size_t li = 0; li < c.adapters.size(); ++li)
        if (c.global_index[li] % 100 == 0)
          c.fabric->recover_node(gs::util::NodeId(
              static_cast<std::uint32_t>(c.global_index[li])));
    });
  }

  std::vector<gs::sim::Simulator*> sims;
  for (auto& ctx : shard) sims.push_back(&ctx->sim);
  // The default channel's 200 us base latency is the epoch bound a spanning
  // topology would impose; use it here too so the barrier cadence matches a
  // real cross-shard deployment instead of flattering the measurement.
  gs::sim::ShardSet set(sims, gs::sim::microseconds(200));

  SteadyResult out;
  const auto start = Clock::now();
  out.events = set.run_until(window + gs::sim::seconds(3));
  out.wall_s = seconds_since(start);

  // Teardown discipline: payloads parked in a fabric or pending in a queue
  // were acquired on that shard's thread and must be released there.
  set.for_each_shard([&shard](std::size_t s) {
    shard[s]->sim.drop_pending();
    shard[s]->fabric->drop_in_flight();
  });
  set.shutdown();
  for (auto& ctx : shard) {
    out.frames_sent += ctx->fabric->total_frames_sent();
    out.suspicion_fires += ctx->suspicion_fires;
  }
  for (std::size_t v = 0; v < vlans; ++v)
    out.frames_delivered += shard[v % shards]
                                ->fabric->load(vlan_for(v, vlans))
                                .frames_delivered;
  return out;
}

// Faithful replica of the pre-index multicast send path: walk every adapter
// in the farm per frame, clone the payload into each receiver's in-flight
// closure. Kept here (not in the library) purely as the bench baseline.
void legacy_multicast(gs::net::Fabric& fabric, gs::sim::Simulator& sim,
                      gs::util::AdapterId from,
                      const std::vector<gs::util::AdapterId>& all,
                      std::vector<std::uint8_t> bytes) {
  const gs::util::VlanId vlan = fabric.vlan_of(from);
  if (!fabric.adapter(from).can_send() || !vlan.valid()) return;
  gs::net::Segment& seg = fabric.segment(vlan);
  for (gs::util::AdapterId id : all) {
    if (id == from) continue;
    if (fabric.vlan_of(id) != vlan) continue;  // the O(farm) scan
    if (!seg.connected(from, id)) continue;
    const gs::net::Adapter& dst = fabric.adapter(id);
    if (!dst.can_recv()) continue;
    const auto latency = seg.sample_delivery();
    if (!latency) continue;
    std::vector<std::uint8_t> clone = bytes;  // per-receiver payload copy
    sim.after(*latency, [&dst, clone = std::move(clone)] {
      (void)dst;
      (void)clone;
    });
  }
}

struct MicroResult {
  double indexed_frames_per_s = 0;
  double legacy_frames_per_s = 0;
  double speedup = 0;
};

// Times `frames` sends in drained batches and reports the median batch
// rate; the median (not the mean) keeps a noisy-neighbour stall in one
// batch from skewing the measurement on shared CI machines. `send` is
// called as send(fabric, sim, leader, topo).
template <typename SendFn>
double median_batch_rate(std::size_t adapters, std::size_t vlans,
                         std::size_t frames, std::size_t payload_bytes,
                         const SendFn& send) {
  gs::sim::Simulator sim;
  gs::net::Fabric fabric(sim, gs::util::Rng(0xFA13));
  Topology topo = build(fabric, adapters, vlans);
  const auto frame = beacon_frame(payload_bytes);
  const std::size_t batch = 128;  // drain between batches, off the clock
  // One untimed batch warms pools/page tables for both implementations.
  for (std::size_t j = 0; j < batch; ++j)
    send(fabric, sim, topo.vlan_leaders[j % vlans], topo, frame);
  sim.run();
  std::vector<double> rates;
  for (std::size_t k = 0; k < frames;) {
    const std::size_t n = std::min(batch, frames - k);
    const auto t0 = Clock::now();
    for (std::size_t j = 0; j < n; ++j, ++k)
      send(fabric, sim, topo.vlan_leaders[k % vlans], topo, frame);
    const double dt = seconds_since(t0);
    sim.run();
    if (dt > 0) rates.push_back(static_cast<double>(n) / dt);
  }
  std::sort(rates.begin(), rates.end());
  return rates.empty() ? 0.0 : rates[rates.size() / 2];
}

MicroResult run_multicast_micro(std::size_t adapters, std::size_t vlans,
                                std::size_t frames, std::size_t payload_bytes) {
  MicroResult out;
  out.indexed_frames_per_s = median_batch_rate(
      adapters, vlans, frames, payload_bytes,
      [](gs::net::Fabric& fabric, gs::sim::Simulator&, gs::util::AdapterId from,
         const Topology&, const std::vector<std::uint8_t>& frame) {
        fabric.multicast(from, gs::net::kBeaconGroup, frame);
      });
  out.legacy_frames_per_s = median_batch_rate(
      adapters, vlans, frames, payload_bytes,
      [](gs::net::Fabric& fabric, gs::sim::Simulator& sim,
         gs::util::AdapterId from, const Topology& topo,
         const std::vector<std::uint8_t>& frame) {
        legacy_multicast(fabric, sim, from, topo.adapters, frame);
      });
  out.speedup = out.indexed_frames_per_s / out.legacy_frames_per_s;
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  gs::util::Flags flags;
  if (!flags.parse(argc, argv)) return 1;
  const bool smoke = flags.get_bool(
      "smoke", false, "one quick iteration (CI scaling regression gate)");
  const auto adapters = static_cast<std::size_t>(
      flags.get_int("adapters", 5000, "adapters in the farm"));
  const auto vlans =
      static_cast<std::size_t>(flags.get_int("vlans", 64, "broadcast domains"));
  const double window =
      flags.get_double("seconds", smoke ? 0.5 : 5.0,
                       "steady-state window (simulated seconds)");
  const auto frames = static_cast<std::size_t>(flags.get_int(
      "frames", smoke ? 512 : 4096, "frames per multicast-path measurement"));
  const auto payload = static_cast<std::size_t>(
      flags.get_int("payload", 1000, "beacon payload bytes"));
  const double min_speedup = flags.get_double(
      "min_speedup", 3.0, "exit nonzero if indexed/legacy falls below this");
  const auto shards = static_cast<std::size_t>(flags.get_int(
      "shards", 0, "also run the sharded steady state on this many threads"));
  const double min_shard_speedup = flags.get_double(
      "min_shard_speedup", 0.0,
      "exit nonzero if sharded/single-shard events/s falls below this");
  if (flags.help_requested()) {
    flags.print_usage();
    return 0;
  }

  gs::bench::print_header("Farm-scale simulator throughput");
  std::printf("%zu adapters, %zu VLANs (~%zu members each), %zu-byte beacons\n",
              adapters, vlans, adapters / vlans, payload);

  const SteadyResult steady =
      run_steady_state(adapters, vlans, window, payload);
  const double events_per_s = static_cast<double>(steady.events) / steady.wall_s;
  const double sent_per_s =
      static_cast<double>(steady.frames_sent) / steady.wall_s;
  const double delivered_per_s =
      static_cast<double>(steady.frames_delivered) / steady.wall_s;
  const double rss = peak_rss_mib();
  std::printf("\nsteady state (%.1fs simulated, fault burst at midpoint):\n",
              window);
  std::printf("  wall time        %10.2f s\n", steady.wall_s);
  std::printf("  events/s         %10.0f\n", events_per_s);
  std::printf("  frames sent/s    %10.0f\n", sent_per_s);
  std::printf("  frames delivd/s  %10.0f\n", delivered_per_s);
  std::printf("  peak RSS         %10.1f MiB\n", rss);

  double shard_speedup = 0;
  double sharded_events_per_s = 0;
  double single_shard_events_per_s = 0;
  if (shards > 1) {
    const SteadyResult single =
        run_steady_state_sharded(adapters, vlans, window, payload, 1);
    const SteadyResult multi =
        run_steady_state_sharded(adapters, vlans, window, payload, shards);
    single_shard_events_per_s =
        static_cast<double>(single.events) / single.wall_s;
    sharded_events_per_s = static_cast<double>(multi.events) / multi.wall_s;
    shard_speedup = sharded_events_per_s / single_shard_events_per_s;
    std::printf("\nsharded steady state (%zu shards, 200us epochs):\n", shards);
    std::printf("  1 shard          %10.0f events/s  (%.2f s wall)\n",
                single_shard_events_per_s, single.wall_s);
    std::printf("  %zu shards         %10.0f events/s  (%.2f s wall)\n", shards,
                sharded_events_per_s, multi.wall_s);
    std::printf("  speedup          %10.2fx\n", shard_speedup);
  }

  const MicroResult micro =
      run_multicast_micro(adapters, vlans, frames, payload);
  std::printf("\nmulticast send path (%zu frames, enqueue cost only):\n",
              frames);
  std::printf("  indexed          %10.0f frames/s\n",
              micro.indexed_frames_per_s);
  std::printf("  legacy scan      %10.0f frames/s   (pre-index replica)\n",
              micro.legacy_frames_per_s);
  std::printf("  speedup          %10.1fx\n", micro.speedup);

  gs::bench::BenchJson json("farm_scale");
  json.set("adapters", static_cast<std::int64_t>(adapters));
  json.set("vlans", static_cast<std::int64_t>(vlans));
  json.set("payload_bytes", static_cast<std::int64_t>(payload));
  json.set("steady_window_sim_s", window);
  json.set("steady_wall_s", steady.wall_s);
  json.set("events_per_s", events_per_s);
  json.set("frames_sent_per_s", sent_per_s);
  json.set("frames_delivered_per_s", delivered_per_s);
  json.set("suspicion_fires", steady.suspicion_fires);
  json.set("peak_rss_mib", rss);
  json.set("multicast_frames_per_s", micro.indexed_frames_per_s);
  json.set("legacy_multicast_frames_per_s", micro.legacy_frames_per_s);
  json.set("multicast_speedup", micro.speedup);
  if (shards > 1) {
    json.set("shards", static_cast<std::int64_t>(shards));
    json.set("single_shard_events_per_s", single_shard_events_per_s);
    json.set("sharded_events_per_s", sharded_events_per_s);
    json.set("shard_speedup", shard_speedup);
  }
  json.write();

  if (shards > 1 && shard_speedup < min_shard_speedup) {
    std::fprintf(stderr,
                 "FAIL: shard speedup %.2fx below floor %.2fx — the epoch "
                 "barrier is eating the parallelism\n",
                 shard_speedup, min_shard_speedup);
    return 1;
  }
  if (micro.speedup < min_speedup) {
    std::fprintf(stderr,
                 "FAIL: multicast speedup %.2fx below floor %.2fx — the "
                 "per-VLAN index is not paying for itself\n",
                 micro.speedup, min_speedup);
    return 1;
  }
  return 0;
}
