// Farm-scale stress of the simulator core (ROADMAP: "as fast as the
// hardware allows"). Two phases over a 5 000-adapter / 64-VLAN farm:
//
//  steady state  every adapter beacons its VLAN twice a second while an
//                FD-style suspicion timer is cancelled and re-armed on
//                every delivery; a mid-run fault burst fails switches and
//                nodes, then recovers them. Reported: simulator events/s,
//                frames sent+delivered/s (wall clock), peak RSS.
//
//  sharded steady state  (--shards=N) the same workload partitioned by VLAN
//                across N sim::ShardSet worker threads, each owning a
//                private Simulator + Fabric. VLANs are disjoint across
//                shards, so no cross-shard traffic flows; the measurement
//                isolates the epoch-barrier overhead against near-ideal
//                parallel work. Reported: events/s at shards=1 (same
//                harness) and shards=N, and their ratio; --min_shard_speedup
//                turns a scaling regression into a nonzero exit.
//
//  steady event path  (PR 10) the steady state's event-core cost raced as a
//                pre-PR replica vs the shipped shape: binary heap + one
//                event per receiver + cancel/re-push re-arms, against the
//                timing wheel + one event per (frame, deadline) batch +
//                in-place reschedule re-arms, over an identical schedule.
//                --min_steady_speedup gates the ratio in CI.
//
//  multicast path  the cost of putting one multicast on the wire, measured
//                two ways: the indexed implementation (per-VLAN membership
//                index, refcounted payload) vs an in-bench replica of the
//                pre-index algorithm (whole-farm scan per frame, payload
//                cloned per receiver). Delivery execution is identical in
//                both, so only enqueue time is on the clock. The ratio is
//                the speedup the index buys; --min_speedup turns a scaling
//                regression into a nonzero exit, which CI treats as a
//                failure.
//
// Results additionally go to BENCH_farm_scale.json (see bench_common.h).
#include <algorithm>
#include <array>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <map>
#include <memory>
#include <utility>
#include <vector>

#ifdef __unix__
#include <sys/resource.h>
#endif

#include "bench/bench_common.h"
#include "net/fabric.h"
#include "sim/event_queue.h"
#include "sim/heap_queue.h"
#include "sim/shard.h"
#include "sim/simulator.h"
#include "util/flags.h"
#include "util/rng.h"
#include "wire/frame.h"

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

double peak_rss_mib() {
#ifdef __unix__
  rusage usage{};
  if (getrusage(RUSAGE_SELF, &usage) == 0)
    return static_cast<double>(usage.ru_maxrss) / 1024.0;  // Linux: KiB
#endif
  return -1.0;
}

struct Topology {
  std::vector<gs::util::AdapterId> adapters;
  std::vector<gs::util::SwitchId> switches;
  std::vector<gs::util::AdapterId> vlan_leaders;  // first adapter per VLAN
};

constexpr std::size_t kPortsPerSwitch = 128;

gs::util::VlanId vlan_for(std::size_t i, std::size_t vlans) {
  return gs::util::VlanId(static_cast<std::uint32_t>(1 + i % vlans));
}

Topology build(gs::net::Fabric& fabric, std::size_t adapters,
               std::size_t vlans) {
  Topology topo;
  gs::net::ChannelModel model;
  model.loss_probability = 0.001;
  fabric.set_default_channel(model);
  const std::size_t switches = (adapters + kPortsPerSwitch - 1) / kPortsPerSwitch;
  for (std::size_t s = 0; s < switches; ++s)
    topo.switches.push_back(fabric.add_switch(kPortsPerSwitch));
  topo.vlan_leaders.resize(vlans, gs::util::AdapterId::invalid());
  for (std::size_t i = 0; i < adapters; ++i) {
    const auto id =
        fabric.add_adapter(gs::util::NodeId(static_cast<std::uint32_t>(i)));
    fabric.attach(id, topo.switches[i / kPortsPerSwitch], vlan_for(i, vlans));
    fabric.set_adapter_ip(
        id, gs::util::IpAddress(10, static_cast<std::uint8_t>(i >> 16),
                                static_cast<std::uint8_t>(i >> 8),
                                static_cast<std::uint8_t>(i)));
    if (!topo.vlan_leaders[i % vlans].valid()) topo.vlan_leaders[i % vlans] = id;
    topo.adapters.push_back(id);
  }
  return topo;
}

std::vector<std::uint8_t> beacon_frame(std::size_t payload_bytes) {
  // A full-view beacon for a ~78-member AMG runs to about a KiB on the wire.
  std::vector<std::uint8_t> payload(payload_bytes, 0x5A);
  return gs::wire::encode_frame(1, payload);
}

struct SteadyResult {
  double wall_s = 0;
  std::uint64_t events = 0;
  std::uint64_t frames_sent = 0;
  std::uint64_t frames_delivered = 0;
  std::uint64_t suspicion_fires = 0;
};

SteadyResult run_steady_state(std::size_t adapters, std::size_t vlans,
                              double window_s, std::size_t payload_bytes) {
  gs::sim::Simulator sim;
  gs::net::Fabric fabric(sim, gs::util::Rng(0xFA12));
  Topology topo = build(fabric, adapters, vlans);
  const auto frame = beacon_frame(payload_bytes);
  const gs::sim::SimTime window = gs::sim::seconds(window_s);
  const gs::sim::SimDuration beacon_period = gs::sim::milliseconds(500);

  SteadyResult out;
  // Per-adapter FD churn: every delivery cancels and re-arms a suspicion
  // timer — the event-queue pattern the slot pool and compaction exist for.
  std::vector<gs::sim::Timer> suspicion(adapters);
  for (std::size_t i = 0; i < adapters; ++i) {
    const auto id = topo.adapters[i];
    fabric.adapter(id).set_receive_handler(
        [&, i](const gs::net::Datagram&) {
          // In-place deadline move, like HeartbeatFd::arm_monitor: the
          // callback survives, so the steady state allocates nothing.
          if (!suspicion[i].rearm_after(gs::sim::seconds(2)))
            suspicion[i] = sim.after(gs::sim::seconds(2),
                                     [&out] { ++out.suspicion_fires; });
        });
  }
  // Every adapter beacons, phase-staggered across the period.
  std::function<void(std::size_t)> beacon = [&](std::size_t i) {
    fabric.multicast(topo.adapters[i], gs::net::kBeaconGroup, frame);
    if (sim.now() + beacon_period < window)
      sim.after(beacon_period, [&beacon, i] { beacon(i); });
  };
  for (std::size_t i = 0; i < adapters; ++i) {
    const auto phase = static_cast<gs::sim::SimDuration>(
        (i * beacon_period) / (adapters == 0 ? 1 : adapters));
    sim.after(phase, [&beacon, i] { beacon(i); });
  }
  // Fault burst at the half-way mark, recovery at three quarters.
  sim.at(window / 2, [&] {
    for (std::size_t s = 0; s < topo.switches.size(); s += 16)
      fabric.fail_switch(topo.switches[s]);
    for (std::size_t n = 0; n < adapters; n += 100)
      fabric.fail_node(gs::util::NodeId(static_cast<std::uint32_t>(n)));
  });
  sim.at((window / 4) * 3, [&] {
    for (std::size_t s = 0; s < topo.switches.size(); s += 16)
      fabric.recover_switch(topo.switches[s]);
    for (std::size_t n = 0; n < adapters; n += 100)
      fabric.recover_node(gs::util::NodeId(static_cast<std::uint32_t>(n)));
  });

  const auto start = Clock::now();
  sim.run_until(window + gs::sim::seconds(3));  // +3s drains the last timers
  out.wall_s = seconds_since(start);
  out.events = sim.executed_events();
  out.frames_sent = fabric.total_frames_sent();
  for (std::size_t v = 0; v < vlans; ++v)
    out.frames_delivered += fabric.load(vlan_for(v, vlans)).frames_delivered;
  return out;
}

// The steady-state workload again, partitioned by VLAN across ShardSet
// worker threads. Adapter i lives on VLAN 1 + i % vlans, and that VLAN's
// whole membership lands on shard (i % vlans) % shards — VLANs never span
// shards, so no frame crosses a shard boundary and the run measures pure
// epoch-barrier overhead over embarrassingly parallel simulation. Each shard
// owns a private Simulator + Fabric (same channel seed: per-VLAN streams are
// forked from the VLAN id, so the per-VLAN workload is identical at every
// shard count) plus its own timers and counters; nothing is shared across
// threads except the barrier itself.
struct ShardCtx {
  gs::sim::Simulator sim;
  std::unique_ptr<gs::net::Fabric> fabric;
  std::vector<gs::util::AdapterId> adapters;  // local, by local index
  std::vector<std::size_t> global_index;      // local index -> global i
  std::vector<gs::util::SwitchId> switches;
  std::vector<gs::sim::Timer> suspicion;
  std::function<void(std::size_t)> beacon;
  std::uint64_t suspicion_fires = 0;
};

SteadyResult run_steady_state_sharded(std::size_t adapters, std::size_t vlans,
                                      double window_s,
                                      std::size_t payload_bytes,
                                      std::size_t shards) {
  shards = std::min(shards, vlans);  // the partition unit is a whole VLAN
  std::vector<std::unique_ptr<ShardCtx>> shard;
  for (std::size_t s = 0; s < shards; ++s) {
    auto ctx = std::make_unique<ShardCtx>();
    ctx->fabric =
        std::make_unique<gs::net::Fabric>(ctx->sim, gs::util::Rng(0xFA12));
    gs::net::ChannelModel model;
    model.loss_probability = 0.001;
    ctx->fabric->set_default_channel(model);
    shard.push_back(std::move(ctx));
  }
  for (std::size_t i = 0; i < adapters; ++i) {
    ShardCtx& c = *shard[(i % vlans) % shards];
    if (c.adapters.size() % kPortsPerSwitch == 0)
      c.switches.push_back(c.fabric->add_switch(kPortsPerSwitch));
    const auto id =
        c.fabric->add_adapter(gs::util::NodeId(static_cast<std::uint32_t>(i)));
    c.fabric->attach(id, c.switches.back(), vlan_for(i, vlans));
    c.fabric->set_adapter_ip(
        id, gs::util::IpAddress(10, static_cast<std::uint8_t>(i >> 16),
                                static_cast<std::uint8_t>(i >> 8),
                                static_cast<std::uint8_t>(i)));
    c.adapters.push_back(id);
    c.global_index.push_back(i);
  }

  const auto frame = beacon_frame(payload_bytes);
  const gs::sim::SimTime window = gs::sim::seconds(window_s);
  const gs::sim::SimDuration beacon_period = gs::sim::milliseconds(500);
  for (auto& ctx : shard) {
    ShardCtx& c = *ctx;
    c.suspicion.resize(c.adapters.size());
    for (std::size_t li = 0; li < c.adapters.size(); ++li) {
      c.fabric->adapter(c.adapters[li])
          .set_receive_handler([&c, li](const gs::net::Datagram&) {
            if (!c.suspicion[li].rearm_after(gs::sim::seconds(2)))
              c.suspicion[li] = c.sim.after(
                  gs::sim::seconds(2), [&c] { ++c.suspicion_fires; });
          });
    }
    c.beacon = [&c, &frame, window, beacon_period](std::size_t li) {
      c.fabric->multicast(c.adapters[li], gs::net::kBeaconGroup, frame);
      if (c.sim.now() + beacon_period < window)
        c.sim.after(beacon_period, [&c, li] { c.beacon(li); });
    };
    for (std::size_t li = 0; li < c.adapters.size(); ++li) {
      const auto phase = static_cast<gs::sim::SimDuration>(
          (c.global_index[li] * static_cast<std::size_t>(beacon_period)) /
          (adapters == 0 ? 1 : adapters));
      c.sim.after(phase, [&c, li] { c.beacon(li); });
    }
    c.sim.at(window / 2, [&c] {
      for (std::size_t s = 0; s < c.switches.size(); s += 16)
        c.fabric->fail_switch(c.switches[s]);
      for (std::size_t li = 0; li < c.adapters.size(); ++li)
        if (c.global_index[li] % 100 == 0)
          c.fabric->fail_node(gs::util::NodeId(
              static_cast<std::uint32_t>(c.global_index[li])));
    });
    c.sim.at((window / 4) * 3, [&c] {
      for (std::size_t s = 0; s < c.switches.size(); s += 16)
        c.fabric->recover_switch(c.switches[s]);
      for (std::size_t li = 0; li < c.adapters.size(); ++li)
        if (c.global_index[li] % 100 == 0)
          c.fabric->recover_node(gs::util::NodeId(
              static_cast<std::uint32_t>(c.global_index[li])));
    });
  }

  std::vector<gs::sim::Simulator*> sims;
  for (auto& ctx : shard) sims.push_back(&ctx->sim);
  // The default channel's 200 us base latency is the epoch bound a spanning
  // topology would impose; use it here too so the barrier cadence matches a
  // real cross-shard deployment instead of flattering the measurement.
  gs::sim::ShardSet set(sims, gs::sim::microseconds(200));

  SteadyResult out;
  const auto start = Clock::now();
  out.events = set.run_until(window + gs::sim::seconds(3));
  out.wall_s = seconds_since(start);

  // Teardown discipline: payloads parked in a fabric or pending in a queue
  // were acquired on that shard's thread and must be released there.
  set.for_each_shard([&shard](std::size_t s) {
    shard[s]->sim.drop_pending();
    shard[s]->fabric->drop_in_flight();
  });
  set.shutdown();
  for (auto& ctx : shard) {
    out.frames_sent += ctx->fabric->total_frames_sent();
    out.suspicion_fires += ctx->suspicion_fires;
  }
  for (std::size_t v = 0; v < vlans; ++v)
    out.frames_delivered += shard[v % shards]
                                ->fabric->load(vlan_for(v, vlans))
                                .frames_delivered;
  return out;
}

// Faithful replica of the pre-index multicast send path: walk every adapter
// in the farm per frame, clone the payload into each receiver's in-flight
// closure. Kept here (not in the library) purely as the bench baseline.
void legacy_multicast(gs::net::Fabric& fabric, gs::sim::Simulator& sim,
                      gs::util::AdapterId from,
                      const std::vector<gs::util::AdapterId>& all,
                      std::vector<std::uint8_t> bytes) {
  const gs::util::VlanId vlan = fabric.vlan_of(from);
  if (!fabric.adapter(from).can_send() || !vlan.valid()) return;
  gs::net::Segment& seg = fabric.segment(vlan);
  for (gs::util::AdapterId id : all) {
    if (id == from) continue;
    if (fabric.vlan_of(id) != vlan) continue;  // the O(farm) scan
    if (!seg.connected(from, id)) continue;
    const gs::net::Adapter& dst = fabric.adapter(id);
    if (!dst.can_recv()) continue;
    const auto latency = seg.sample_delivery();
    if (!latency) continue;
    std::vector<std::uint8_t> clone = bytes;  // per-receiver payload copy
    sim.after(*latency, [&dst, clone = std::move(clone)] {
      (void)dst;
      (void)clone;
    });
  }
}

struct MicroResult {
  double indexed_frames_per_s = 0;
  double legacy_frames_per_s = 0;
  double speedup = 0;
};

// Times `frames` sends in drained batches and reports the median batch
// rate; the median (not the mean) keeps a noisy-neighbour stall in one
// batch from skewing the measurement on shared CI machines. `send` is
// called as send(fabric, sim, leader, topo).
template <typename SendFn>
double median_batch_rate(std::size_t adapters, std::size_t vlans,
                         std::size_t frames, std::size_t payload_bytes,
                         const SendFn& send) {
  gs::sim::Simulator sim;
  gs::net::Fabric fabric(sim, gs::util::Rng(0xFA13));
  Topology topo = build(fabric, adapters, vlans);
  const auto frame = beacon_frame(payload_bytes);
  const std::size_t batch = 128;  // drain between batches, off the clock
  // One untimed batch warms pools/page tables for both implementations.
  for (std::size_t j = 0; j < batch; ++j)
    send(fabric, sim, topo.vlan_leaders[j % vlans], topo, frame);
  sim.run();
  std::vector<double> rates;
  for (std::size_t k = 0; k < frames;) {
    const std::size_t n = std::min(batch, frames - k);
    const auto t0 = Clock::now();
    for (std::size_t j = 0; j < n; ++j, ++k)
      send(fabric, sim, topo.vlan_leaders[k % vlans], topo, frame);
    const double dt = seconds_since(t0);
    sim.run();
    if (dt > 0) rates.push_back(static_cast<double>(n) / dt);
  }
  std::sort(rates.begin(), rates.end());
  return rates.empty() ? 0.0 : rates[rates.size() / 2];
}

MicroResult run_multicast_micro(std::size_t adapters, std::size_t vlans,
                                std::size_t frames, std::size_t payload_bytes) {
  MicroResult out;
  out.indexed_frames_per_s = median_batch_rate(
      adapters, vlans, frames, payload_bytes,
      [](gs::net::Fabric& fabric, gs::sim::Simulator&, gs::util::AdapterId from,
         const Topology&, const std::vector<std::uint8_t>& frame) {
        fabric.multicast(from, gs::net::kBeaconGroup, frame);
      });
  out.legacy_frames_per_s = median_batch_rate(
      adapters, vlans, frames, payload_bytes,
      [](gs::net::Fabric& fabric, gs::sim::Simulator& sim,
         gs::util::AdapterId from, const Topology& topo,
         const std::vector<std::uint8_t>& frame) {
        legacy_multicast(fabric, sim, from, topo.adapters, frame);
      });
  out.speedup = out.indexed_frames_per_s / out.legacy_frames_per_s;
  return out;
}

// --- Steady-state event-path replica ---------------------------------------
//
// The PR-10 steady-state speedup came from two changes to the hot loop —
// the heap became a timing wheel, and multicast deliveries became one event
// per (frame, distinct deadline) instead of one per receiver. Neither the
// old queue nor the unbatched fabric path exists in the library any more,
// so (like legacy_multicast above) the pre-PR shape is replicated here and
// raced against the shipped shape over the *identical* schedule:
//
//   legacy    sim/heap_queue.h, one event per (frame, receiver); every
//             delivery resolves its VLAN accounting row with a map find
//             (the old complete_delivery) and re-arms that receiver's
//             suspicion deadline the pre-wheel way (cancel + fresh push).
//   shipped   the timing wheel, receivers grouped by sampled deadline into
//             one event per batch; the accounting row is resolved once per
//             frame (PendingFrame::load) and re-arm is the in-place
//             reschedule().
//
// Both passes must deliver exactly the same count and fire the same number
// of suspicion timeouts — the schedule is deterministic — so the wall-time
// ratio isolates what the wheel + batching bought the steady state.
// --min_steady_speedup turns a regression into a nonzero exit.
struct SteadyReplicaResult {
  double legacy_wall_s = 0;
  double batched_wall_s = 0;
  double speedup = 0;
  std::uint64_t delivered = 0;
};

struct ReplicaCounts {
  std::uint64_t delivered = 0;
  std::uint64_t fires = 0;
};

constexpr gs::sim::SimDuration kReplicaGap = 82;  // us between frames, as in
                                                  // the 5000-adapter steady
                                                  // state (~12k frames/sim-s)
constexpr gs::sim::SimDuration kReplicaBase = 200;    // channel base latency
constexpr gs::sim::SimDuration kReplicaJitter = 100;  // uniform [0, 100] us
constexpr gs::sim::SimDuration kReplicaSusp = gs::sim::seconds(2);
// The default farm shape: 64 VLANs x 78 members. The live set (one
// suspicion timer per receiver) is what gives the pre-wheel heap its depth,
// and a beacon fans out to its sender's whole VLAN.
constexpr std::size_t kReplicaVlans = 64;
constexpr std::size_t kReplicaMembers = 78;
constexpr std::size_t kReplicaReceivers = kReplicaVlans * kReplicaMembers;
constexpr int kReplicaRecvBits = 13;

template <typename Queue, bool kBatched>
ReplicaCounts replica_pass(std::size_t frames, std::size_t fan) {
  // Both the shipped Fabric and its pre-PR shape keep per-event closures in
  // the std::function small buffer and pool their per-frame state, so the
  // replica does too: delivery closures capture (state*, 8-byte payload)
  // and batch receiver vectors are recycled through a free list — neither
  // side heap-allocates in steady state beyond what its queue does.
  struct Batch {
    gs::sim::SimTime due = 0;
    std::uint64_t* load = nullptr;  // the frame's accounting row, like
                                    // PendingFrame::load
    std::vector<std::uint32_t> receivers;
  };
  struct St {
    Queue q;
    std::vector<gs::sim::EventId> susp;
    ReplicaCounts out;
    // The per-VLAN accounting rows. Pre-PR, complete_delivery resolved its
    // row with a map find on every delivery; shipped, the row is resolved
    // once per frame and carried as a pointer.
    std::map<std::uint32_t, std::uint64_t> loads;
    std::vector<Batch*> free_batches;
    std::vector<std::unique_ptr<Batch>> batch_storage;
    // The shipped grouping machinery, shape for shape: a direct-mapped
    // epoch-tagged index resolving the open batch for a deadline in ~one
    // probe (Fabric::append_delivery), flushed after the member loop.
    struct LutSlot {
      std::uint32_t tag = 0;
      gs::sim::SimTime due = 0;
      Batch* batch = nullptr;
    };
    std::array<LutSlot, 256> lut{};
    std::uint32_t lut_tag = 0;
    std::vector<Batch*> open;

    void rearm(std::size_t r, gs::sim::SimTime due) {
      if constexpr (kBatched) {
        // The shipped path: in-place deadline move, closure untouched.
        if (susp[r] != 0) {
          const gs::sim::EventId moved = q.reschedule(susp[r], due);
          if (moved != 0) {
            susp[r] = moved;
            return;
          }
        }
      } else {
        // The pre-wheel path: lazy cancel plus a fresh push.
        if (susp[r] != 0) q.cancel(susp[r]);
      }
      susp[r] = q.push(due, [this] { ++out.fires; });
    }
    void deliver_one(std::uint64_t packed) {
      const auto r = static_cast<std::size_t>(
          packed & ((std::uint64_t{1} << kReplicaRecvBits) - 1));
      const auto due =
          static_cast<gs::sim::SimTime>(packed >> kReplicaRecvBits);
      ++loads.find(static_cast<std::uint32_t>(1 + r % kReplicaVlans))->second;
      ++out.delivered;
      rearm(r, due + kReplicaSusp);
    }
    void deliver_batch(Batch* b) {
      for (const std::uint32_t r : b->receivers) {
        ++*b->load;
        ++out.delivered;
        rearm(r, b->due + kReplicaSusp);
      }
      b->receivers.clear();
      free_batches.push_back(b);
    }
    Batch* get_batch() {
      if (free_batches.empty()) {
        batch_storage.push_back(std::make_unique<Batch>());
        return batch_storage.back().get();
      }
      Batch* b = free_batches.back();
      free_batches.pop_back();
      return b;
    }
  };
  static_assert(kReplicaReceivers < (std::size_t{1} << kReplicaRecvBits),
                "deliver_one packs the receiver into the low bits");

  St st;
  st.susp.assign(kReplicaReceivers, 0);
  for (std::size_t v = 0; v < kReplicaVlans; ++v)
    st.loads.emplace(static_cast<std::uint32_t>(1 + v), 0);
  gs::util::Rng rng(0xBEEF);
  const std::size_t members = std::min(fan, kReplicaMembers);

  for (std::size_t f = 0; f < frames; ++f) {
    const gs::sim::SimTime now =
        static_cast<gs::sim::SimTime>(f) * kReplicaGap;
    while (!st.q.empty() && st.q.next_time() <= now) {
      auto [when, fn] = st.q.pop();
      (void)when;
      fn();
    }
    // Frame f is a beacon on VLAN v fanning out to the VLAN's members —
    // receiver r lives on VLAN r % kReplicaVlans.
    const std::size_t v = f % kReplicaVlans;
    if constexpr (kBatched) {
      if (++st.lut_tag == 0) {
        st.lut.fill(typename St::LutSlot{});
        st.lut_tag = 1;
      }
      st.open.clear();
      std::uint64_t* load =
          &st.loads.find(static_cast<std::uint32_t>(1 + v))->second;
      for (std::size_t k = 0; k < members; ++k) {
        const auto r = static_cast<std::uint32_t>(v + kReplicaVlans * k);
        const gs::sim::SimTime due =
            now + kReplicaBase +
            static_cast<gs::sim::SimDuration>(rng.below(kReplicaJitter + 1));
        Batch* b = nullptr;
        std::size_t i = static_cast<std::size_t>(due) & 255;
        for (std::size_t probe = 0; probe < 16; ++probe, i = (i + 1) & 255) {
          typename St::LutSlot& s = st.lut[i];
          if (s.tag != st.lut_tag) {
            b = st.get_batch();
            b->due = due;
            b->load = load;
            st.open.push_back(b);
            s = {st.lut_tag, due, b};
            break;
          }
          if (s.due == due) {
            b = s.batch;
            break;
          }
        }
        if (b == nullptr) {  // probe cap: fall back to the open list
          for (Batch* cand : st.open) {
            if (cand->due == due) {
              b = cand;
              break;
            }
          }
          if (b == nullptr) {
            b = st.get_batch();
            b->due = due;
            b->load = load;
            st.open.push_back(b);
          }
        }
        b->receivers.push_back(r);
      }
      for (Batch* b : st.open)
        st.q.push(b->due, [stp = &st, b] { stp->deliver_batch(b); });
    } else {
      for (std::size_t k = 0; k < members; ++k) {
        const std::size_t r = v + kReplicaVlans * k;
        const gs::sim::SimTime due =
            now + kReplicaBase +
            static_cast<gs::sim::SimDuration>(rng.below(kReplicaJitter + 1));
        const std::uint64_t packed =
            (static_cast<std::uint64_t>(due) << kReplicaRecvBits) | r;
        st.q.push(due, [stp = &st, packed] { stp->deliver_one(packed); });
      }
    }
  }
  while (!st.q.empty()) {
    auto [when, fn] = st.q.pop();
    (void)when;
    fn();
  }
  return st.out;
}

template <typename Queue, bool kBatched>
double replica_best_of(std::size_t frames, std::size_t fan,
                       ReplicaCounts* counts) {
  double best = -1.0;
  for (int rep = 0; rep < 3; ++rep) {
    const auto t0 = Clock::now();
    const ReplicaCounts got = replica_pass<Queue, kBatched>(frames, fan);
    const double dt = seconds_since(t0);
    if (best < 0 || dt < best) best = dt;
    *counts = got;
  }
  return best;
}

SteadyReplicaResult run_steady_replica(std::size_t frames, std::size_t fan) {
  SteadyReplicaResult out;
  ReplicaCounts legacy{}, batched{};
  out.legacy_wall_s =
      replica_best_of<gs::sim::HeapEventQueue, false>(frames, fan, &legacy);
  out.batched_wall_s =
      replica_best_of<gs::sim::EventQueue, true>(frames, fan, &batched);
  // The schedule is deterministic, so any count divergence means one side
  // dropped or double-ran an event — fail loudly rather than report a bogus
  // ratio.
  GS_CHECK(legacy.delivered == batched.delivered);
  GS_CHECK(legacy.fires == batched.fires);
  out.delivered = legacy.delivered;
  out.speedup = out.legacy_wall_s / out.batched_wall_s;
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  gs::util::Flags flags;
  if (!flags.parse(argc, argv)) return 1;
  const bool smoke = flags.get_bool(
      "smoke", false, "one quick iteration (CI scaling regression gate)");
  const auto adapters = static_cast<std::size_t>(
      flags.get_int("adapters", 5000, "adapters in the farm"));
  const auto vlans =
      static_cast<std::size_t>(flags.get_int("vlans", 64, "broadcast domains"));
  const double window =
      flags.get_double("seconds", smoke ? 0.5 : 5.0,
                       "steady-state window (simulated seconds)");
  const auto frames = static_cast<std::size_t>(flags.get_int(
      "frames", smoke ? 512 : 4096, "frames per multicast-path measurement"));
  const auto payload = static_cast<std::size_t>(
      flags.get_int("payload", 1000, "beacon payload bytes"));
  const double min_speedup = flags.get_double(
      "min_speedup", 3.0, "exit nonzero if indexed/legacy falls below this");
  const auto replica_frames = static_cast<std::size_t>(flags.get_int(
      "replica_frames", smoke ? 4096 : 16384,
      "frames per steady event-path replica pass"));
  const double min_steady_speedup = flags.get_double(
      "min_steady_speedup", 1.5,
      "exit nonzero if the wheel+batching replica speedup over the "
      "heap+per-receiver replica falls below this");
  const auto shards = static_cast<std::size_t>(flags.get_int(
      "shards", 0, "also run the sharded steady state on this many threads"));
  const double min_shard_speedup = flags.get_double(
      "min_shard_speedup", 0.0,
      "exit nonzero if sharded/single-shard events/s falls below this");
  if (flags.help_requested()) {
    flags.print_usage();
    return 0;
  }

  gs::bench::print_header("Farm-scale simulator throughput");
  std::printf("%zu adapters, %zu VLANs (~%zu members each), %zu-byte beacons\n",
              adapters, vlans, adapters / vlans, payload);

  const SteadyResult steady =
      run_steady_state(adapters, vlans, window, payload);
  const double events_per_s = static_cast<double>(steady.events) / steady.wall_s;
  const double sent_per_s =
      static_cast<double>(steady.frames_sent) / steady.wall_s;
  const double delivered_per_s =
      static_cast<double>(steady.frames_delivered) / steady.wall_s;
  const double rss = peak_rss_mib();
  std::printf("\nsteady state (%.1fs simulated, fault burst at midpoint):\n",
              window);
  std::printf("  wall time        %10.2f s\n", steady.wall_s);
  std::printf("  events/s         %10.0f\n", events_per_s);
  std::printf("  frames sent/s    %10.0f\n", sent_per_s);
  std::printf("  frames delivd/s  %10.0f\n", delivered_per_s);
  std::printf("  peak RSS         %10.1f MiB\n", rss);

  double shard_speedup = 0;
  double sharded_events_per_s = 0;
  double single_shard_events_per_s = 0;
  if (shards > 1) {
    const SteadyResult single =
        run_steady_state_sharded(adapters, vlans, window, payload, 1);
    const SteadyResult multi =
        run_steady_state_sharded(adapters, vlans, window, payload, shards);
    single_shard_events_per_s =
        static_cast<double>(single.events) / single.wall_s;
    sharded_events_per_s = static_cast<double>(multi.events) / multi.wall_s;
    shard_speedup = sharded_events_per_s / single_shard_events_per_s;
    std::printf("\nsharded steady state (%zu shards, 200us epochs):\n", shards);
    std::printf("  1 shard          %10.0f events/s  (%.2f s wall)\n",
                single_shard_events_per_s, single.wall_s);
    std::printf("  %zu shards         %10.0f events/s  (%.2f s wall)\n", shards,
                sharded_events_per_s, multi.wall_s);
    std::printf("  speedup          %10.2fx\n", shard_speedup);
  }

  const MicroResult micro =
      run_multicast_micro(adapters, vlans, frames, payload);
  std::printf("\nmulticast send path (%zu frames, enqueue cost only):\n",
              frames);
  std::printf("  indexed          %10.0f frames/s\n",
              micro.indexed_frames_per_s);
  std::printf("  legacy scan      %10.0f frames/s   (pre-index replica)\n",
              micro.legacy_frames_per_s);
  std::printf("  speedup          %10.1fx\n", micro.speedup);

  const std::size_t replica_fan = std::max<std::size_t>(
      vlans == 0 ? 1 : adapters / vlans, 1);
  const SteadyReplicaResult replica =
      run_steady_replica(replica_frames, replica_fan);
  std::printf(
      "\nsteady event path (%zu frames x fan %zu, %llu deliveries):\n",
      replica_frames, replica_fan,
      static_cast<unsigned long long>(replica.delivered));
  std::printf("  heap, per-receiver %8.3f s   (pre-wheel replica)\n",
              replica.legacy_wall_s);
  std::printf("  wheel, batched     %8.3f s\n", replica.batched_wall_s);
  std::printf("  speedup            %8.2fx\n", replica.speedup);

  gs::bench::BenchJson json("farm_scale");
  json.set("adapters", static_cast<std::int64_t>(adapters));
  json.set("vlans", static_cast<std::int64_t>(vlans));
  json.set("payload_bytes", static_cast<std::int64_t>(payload));
  json.set("steady_window_sim_s", window);
  json.set("steady_wall_s", steady.wall_s);
  json.set("events_per_s", events_per_s);
  json.set("frames_sent_per_s", sent_per_s);
  json.set("frames_delivered_per_s", delivered_per_s);
  json.set("suspicion_fires", steady.suspicion_fires);
  json.set("peak_rss_mib", rss);
  json.set("multicast_frames_per_s", micro.indexed_frames_per_s);
  json.set("legacy_multicast_frames_per_s", micro.legacy_frames_per_s);
  json.set("multicast_speedup", micro.speedup);
  json.set("steady_replica_frames", static_cast<std::int64_t>(replica_frames));
  json.set("steady_replica_legacy_wall_s", replica.legacy_wall_s);
  json.set("steady_replica_batched_wall_s", replica.batched_wall_s);
  json.set("steady_replica_speedup", replica.speedup);
  if (shards > 1) {
    json.set("shards", static_cast<std::int64_t>(shards));
    json.set("single_shard_events_per_s", single_shard_events_per_s);
    json.set("sharded_events_per_s", sharded_events_per_s);
    json.set("shard_speedup", shard_speedup);
  }
  json.write();

  if (shards > 1 && shard_speedup < min_shard_speedup) {
    std::fprintf(stderr,
                 "FAIL: shard speedup %.2fx below floor %.2fx — the epoch "
                 "barrier is eating the parallelism\n",
                 shard_speedup, min_shard_speedup);
    return 1;
  }
  if (micro.speedup < min_speedup) {
    std::fprintf(stderr,
                 "FAIL: multicast speedup %.2fx below floor %.2fx — the "
                 "per-VLAN index is not paying for itself\n",
                 micro.speedup, min_speedup);
    return 1;
  }
  if (replica.speedup < min_steady_speedup) {
    std::fprintf(stderr,
                 "FAIL: steady event-path speedup %.2fx below floor %.2fx — "
                 "the wheel + delivery batching is not paying for itself\n",
                 replica.speedup, min_steady_speedup);
    return 1;
  }
  return 0;
}
