// E1 — Figure 5: time for all groups to become stable vs number of
// adapters, for beacon phases T_b = 5, 10, 20 s (T_AMG = 5 s, T_GSC = 15 s,
// the paper's settings).
//
// The paper's finding: stabilization time is CONSTANT in group size and
// ordered by T_b, sitting δ ≈ 5-6 s above the T_b + T_AMG + T_GSC model.
// Expect the same flat lines here; the measured δ reflects this repo's
// daemon-delay model (start-up skew + late beacon timer + processing
// delays) rather than the authors' JVM, so its absolute value differs.
//
// The testbed had 55 nodes with 3 adapters each (3 AMGs); --adapters
// controls adapters per node, --trials the seeds per point.
//
// --jsonl=PATH streams per-cell summaries plus the aggregate stats registry
// as JSON Lines; --trace=PATH additionally replays one representative trial
// single-threaded with every protocol trace record streamed to PATH;
// --metrics=PATH replays the same representative trial with the latency
// observatory attached (span tracking + 5 s health sampling) and writes the
// final registry as Prometheus text to PATH and JSON to PATH.json. The
// span-measured join/view-change latencies print next to the wall-clock
// stabilization table and land in BENCH_fig5_stabilization.json.
#include <cstdio>
#include <map>
#include <mutex>

#include "bench/bench_common.h"
#include "farm/farm.h"
#include "farm/scenario.h"
#include "obs/expo.h"
#include "obs/jsonl_sink.h"
#include "obs/spans.h"
#include "util/flags.h"
#include "util/stats.h"

namespace {

struct Point {
  int nodes;
  double beacon_s;
  std::uint64_t seed;
};

double run_trial(const Point& point, int adapters_per_node,
                 gs::obs::JsonlSink* trace_sink = nullptr,
                 const std::string& metrics_path = "",
                 gs::bench::BenchJson* json = nullptr) {
  gs::sim::Simulator sim;
  gs::proto::Params params;  // paper's settings
  params.beacon_phase = gs::sim::seconds(point.beacon_s);
  params.amg_stable_wait = gs::sim::seconds(5);
  params.gsc_stable_wait = gs::sim::seconds(15);
  gs::farm::Farm farm(
      sim, gs::farm::FarmSpec::uniform(point.nodes, adapters_per_node), params,
      point.seed);
  gs::obs::Subscription tap;
  if (trace_sink != nullptr) {
    tap = trace_sink->tap(farm.trace_bus());
    farm.fabric().enable_load_sampling(gs::sim::seconds(5));
  }
  const bool observatory = !metrics_path.empty() || json != nullptr;
  gs::obs::SpanTracker* spans = nullptr;
  if (observatory) {
    spans = &farm.enable_span_tracking();
    farm.enable_health_sampling(gs::sim::seconds(5));
  }
  farm.start();
  auto stable = gs::farm::run_until_gsc_stable(farm, gs::sim::seconds(600));
  if (observatory) {
    farm.health_sampler()->sample_now();
    // Span-measured view of the same stabilization run, next to the
    // wall-clock number the table reports.
    std::printf("\nObservatory (representative trial, T_b=%.0fs, %d nodes):\n",
                point.beacon_s, point.nodes);
    for (gs::obs::SpanKind kind :
         {gs::obs::SpanKind::kJoin, gs::obs::SpanKind::kViewChange,
          gs::obs::SpanKind::kReport}) {
      const gs::util::Histogram* h = spans->stats().find_histogram(
          gs::obs::SpanTracker::histogram_name(kind));
      if (h == nullptr || h->count() == 0) continue;
      std::printf("  span.%-12s n=%-4llu mean=%.3fs p99=%.3fs\n",
                  std::string(to_string(kind)).c_str(),
                  static_cast<unsigned long long>(h->count()),
                  h->mean() / 1e6,
                  static_cast<double>(h->quantile(0.99)) / 1e6);
    }
    if (json != nullptr) {
      for (const auto& [name, h] : spans->stats().histograms()) {
        if (h.count() == 0) continue;
        auto& row = json->add_row("span_histograms");
        row.set("name", name);
        row.set("count", h.count());
        row.set("mean_us", h.mean());
        row.set("p50_us", static_cast<double>(h.quantile(0.5)));
        row.set("p99_us", static_cast<double>(h.quantile(0.99)));
        row.set("max_us", static_cast<double>(h.max()));
      }
    }
    if (!metrics_path.empty() &&
        gs::obs::expo::write_metrics_files(farm.metrics(), metrics_path))
      std::printf("  metrics -> %s and %s.json\n", metrics_path.c_str(),
                  metrics_path.c_str());
  }
  if (!stable) return -1.0;
  return gs::sim::to_seconds(*stable);
}

}  // namespace

int main(int argc, char** argv) {
  gs::util::Flags flags;
  if (!flags.parse(argc, argv)) return 1;
  const int adapters =
      static_cast<int>(flags.get_int("adapters", 3, "adapters per node"));
  const int trials = static_cast<int>(flags.get_int("trials", 5,
                                                    "seeds per data point"));
  const std::string jsonl_path = flags.get_string(
      "jsonl", "", "write per-cell summaries + stats as JSON Lines");
  const std::string trace_path = flags.get_string(
      "trace", "", "stream one representative trial's protocol trace here");
  const std::string metrics_path = flags.get_string(
      "metrics", "",
      "write a representative trial's metrics as Prometheus text here "
      "(+ .json twin), with span tracking and health sampling attached");
  // 3..55 covers the paper's testbed; 80/120 extend the flatness claim
  // beyond it (scalability was the open question, §4.2).
  const std::vector<int> sizes = {3, 5, 10, 15, 20, 25, 30, 40, 55, 80, 120};
  const std::vector<double> beacon_seconds = {5, 10, 20};
  if (flags.help_requested()) {
    flags.print_usage();
    return 0;
  }

  gs::bench::print_header(
      "Figure 5 — time for all groups to become stable (seconds)");
  std::printf("T_AMG=5s T_GSC=15s, %d adapters/node (=> %d AMGs), %d trials "
              "per point\n\n",
              adapters, adapters, trials);

  // point index -> samples
  std::vector<Point> points;
  for (double b : beacon_seconds)
    for (int n : sizes)
      for (int t = 0; t < trials; ++t)
        points.push_back({n, b, 1000 + static_cast<std::uint64_t>(t)});

  std::vector<double> results(points.size(), -1.0);
  gs::bench::parallel_trials(points.size(), [&](std::size_t i) {
    results[i] = run_trial(points[i], adapters);
  });

  std::map<std::pair<double, int>, std::vector<double>> by_cell;
  for (std::size_t i = 0; i < points.size(); ++i)
    if (results[i] >= 0)
      by_cell[{points[i].beacon_s, points[i].nodes}].push_back(results[i]);

  std::printf("%10s", "adapters");
  for (double b : beacon_seconds) std::printf("   T_b=%2.0fs         ", b);
  std::printf("\n");
  gs::bench::print_rule();
  for (int n : sizes) {
    std::printf("%10d", n * 1);  // group size = nodes (one adapter per AMG)
    for (double b : beacon_seconds) {
      auto it = by_cell.find({b, n});
      if (it == by_cell.end()) {
        std::printf("   %-15s", "timeout");
        continue;
      }
      std::printf("  %s", gs::bench::fmt_mean_std(
                              gs::util::Summary::of(it->second)).c_str());
    }
    std::printf("\n");
  }

  std::printf(
      "\nPaper: flat lines at ~T_b+25s+delta with delta in [5,6]s on the\n"
      "55-node testbed; the lines above must be flat in group size and\n"
      "separated by the T_b deltas (5s/10s).\n");

  std::size_t timed_out = 0;
  for (double r : results)
    if (r < 0) ++timed_out;
  gs::bench::BenchJson json("fig5_stabilization");
  json.set("adapters_per_node", adapters);
  json.set("trials_per_point", trials);
  json.set("trials_timed_out", static_cast<std::uint64_t>(timed_out));
  for (const auto& [cell, samples] : by_cell) {
    const auto s = gs::util::Summary::of(samples);
    auto& row = json.add_row("cells");
    row.set("t_b_s", cell.first);
    row.set("nodes", cell.second);
    row.set("trials", static_cast<std::uint64_t>(s.n));
    row.set("mean_s", s.mean);
    row.set("stddev_s", s.stddev);
    row.set("min_s", s.min);
    row.set("max_s", s.max);
  }

  if (!trace_path.empty() || !metrics_path.empty()) {
    gs::obs::JsonlSink sink;
    if (!trace_path.empty() && !sink.open(trace_path)) {
      std::fprintf(stderr, "cannot open %s for writing\n", trace_path.c_str());
      return 1;
    }
    // One representative cell (T_b = 5 s, 10 nodes), replayed single-
    // threaded so the trace is one simulation's coherent timeline and the
    // observatory sees every record.
    const double t =
        run_trial({10, 5.0, 1000}, adapters,
                  trace_path.empty() ? nullptr : &sink, metrics_path, &json);
    if (!trace_path.empty())
      std::printf("Traced representative trial (T_b=5s, 10 nodes): "
                  "stable at %.2fs; %llu trace records -> %s\n",
                  t, static_cast<unsigned long long>(sink.lines_written()),
                  trace_path.c_str());
  }
  json.write();

  if (!jsonl_path.empty()) {
    gs::obs::JsonlSink sink;
    if (!sink.open(jsonl_path)) {
      std::fprintf(stderr, "cannot open %s for writing\n", jsonl_path.c_str());
      return 1;
    }
    gs::util::StatsRegistry stats;
    for (std::size_t i = 0; i < points.size(); ++i) {
      if (results[i] < 0) {
        stats.counter("fig5.trials_timed_out").add();
        continue;
      }
      stats.counter("fig5.trials_converged").add();
      char name[64];
      std::snprintf(name, sizeof name, "fig5.stabilize_ms.tb%.0fs",
                    points[i].beacon_s);
      stats.histogram(name).record(
          static_cast<std::int64_t>(results[i] * 1000.0));
    }
    for (const auto& [cell, samples] : by_cell) {
      const auto s = gs::util::Summary::of(samples);
      char line[256];
      std::snprintf(line, sizeof line,
                    "{\"type\":\"fig5_cell\",\"t_b_s\":%g,\"nodes\":%d,"
                    "\"trials\":%llu,\"mean_s\":%.3f,\"stddev_s\":%.3f,"
                    "\"min_s\":%.3f,\"max_s\":%.3f}",
                    cell.first, cell.second,
                    static_cast<unsigned long long>(s.n), s.mean, s.stddev,
                    s.min, s.max);
      sink.write_line(line);
    }
    sink.dump_stats(stats);
    std::printf("\nWrote %llu metric lines to %s\n",
                static_cast<unsigned long long>(sink.lines_written()),
                jsonl_path.c_str());
  }

  return 0;
}
