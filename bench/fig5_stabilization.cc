// E1 — Figure 5: time for all groups to become stable vs number of
// adapters, for beacon phases T_b = 5, 10, 20 s (T_AMG = 5 s, T_GSC = 15 s,
// the paper's settings).
//
// The paper's finding: stabilization time is CONSTANT in group size and
// ordered by T_b, sitting δ ≈ 5-6 s above the T_b + T_AMG + T_GSC model.
// Expect the same flat lines here; the measured δ reflects this repo's
// daemon-delay model (start-up skew + late beacon timer + processing
// delays) rather than the authors' JVM, so its absolute value differs.
//
// The testbed had 55 nodes with 3 adapters each (3 AMGs); --adapters
// controls adapters per node, --trials the seeds per point.
//
// --jsonl=PATH streams per-cell summaries plus the aggregate stats registry
// as JSON Lines; --trace=PATH additionally replays one representative trial
// single-threaded with every protocol trace record streamed to PATH.
#include <cstdio>
#include <map>
#include <mutex>

#include "bench/bench_common.h"
#include "farm/farm.h"
#include "farm/scenario.h"
#include "obs/jsonl_sink.h"
#include "util/flags.h"
#include "util/stats.h"

namespace {

struct Point {
  int nodes;
  double beacon_s;
  std::uint64_t seed;
};

double run_trial(const Point& point, int adapters_per_node,
                 gs::obs::JsonlSink* trace_sink = nullptr) {
  gs::sim::Simulator sim;
  gs::proto::Params params;  // paper's settings
  params.beacon_phase = gs::sim::seconds(point.beacon_s);
  params.amg_stable_wait = gs::sim::seconds(5);
  params.gsc_stable_wait = gs::sim::seconds(15);
  gs::farm::Farm farm(
      sim, gs::farm::FarmSpec::uniform(point.nodes, adapters_per_node), params,
      point.seed);
  gs::obs::Subscription tap;
  if (trace_sink != nullptr) {
    tap = trace_sink->tap(farm.trace_bus());
    farm.fabric().enable_load_sampling(gs::sim::seconds(5));
  }
  farm.start();
  auto stable = gs::farm::run_until_gsc_stable(farm, gs::sim::seconds(600));
  if (!stable) return -1.0;
  return gs::sim::to_seconds(*stable);
}

}  // namespace

int main(int argc, char** argv) {
  gs::util::Flags flags;
  if (!flags.parse(argc, argv)) return 1;
  const int adapters =
      static_cast<int>(flags.get_int("adapters", 3, "adapters per node"));
  const int trials = static_cast<int>(flags.get_int("trials", 5,
                                                    "seeds per data point"));
  const std::string jsonl_path = flags.get_string(
      "jsonl", "", "write per-cell summaries + stats as JSON Lines");
  const std::string trace_path = flags.get_string(
      "trace", "", "stream one representative trial's protocol trace here");
  // 3..55 covers the paper's testbed; 80/120 extend the flatness claim
  // beyond it (scalability was the open question, §4.2).
  const std::vector<int> sizes = {3, 5, 10, 15, 20, 25, 30, 40, 55, 80, 120};
  const std::vector<double> beacon_seconds = {5, 10, 20};
  if (flags.help_requested()) {
    flags.print_usage();
    return 0;
  }

  gs::bench::print_header(
      "Figure 5 — time for all groups to become stable (seconds)");
  std::printf("T_AMG=5s T_GSC=15s, %d adapters/node (=> %d AMGs), %d trials "
              "per point\n\n",
              adapters, adapters, trials);

  // point index -> samples
  std::vector<Point> points;
  for (double b : beacon_seconds)
    for (int n : sizes)
      for (int t = 0; t < trials; ++t)
        points.push_back({n, b, 1000 + static_cast<std::uint64_t>(t)});

  std::vector<double> results(points.size(), -1.0);
  gs::bench::parallel_trials(points.size(), [&](std::size_t i) {
    results[i] = run_trial(points[i], adapters);
  });

  std::map<std::pair<double, int>, std::vector<double>> by_cell;
  for (std::size_t i = 0; i < points.size(); ++i)
    if (results[i] >= 0)
      by_cell[{points[i].beacon_s, points[i].nodes}].push_back(results[i]);

  std::printf("%10s", "adapters");
  for (double b : beacon_seconds) std::printf("   T_b=%2.0fs         ", b);
  std::printf("\n");
  gs::bench::print_rule();
  for (int n : sizes) {
    std::printf("%10d", n * 1);  // group size = nodes (one adapter per AMG)
    for (double b : beacon_seconds) {
      auto it = by_cell.find({b, n});
      if (it == by_cell.end()) {
        std::printf("   %-15s", "timeout");
        continue;
      }
      std::printf("  %s", gs::bench::fmt_mean_std(
                              gs::util::Summary::of(it->second)).c_str());
    }
    std::printf("\n");
  }

  std::printf(
      "\nPaper: flat lines at ~T_b+25s+delta with delta in [5,6]s on the\n"
      "55-node testbed; the lines above must be flat in group size and\n"
      "separated by the T_b deltas (5s/10s).\n");

  std::size_t timed_out = 0;
  for (double r : results)
    if (r < 0) ++timed_out;
  gs::bench::BenchJson json("fig5_stabilization");
  json.set("adapters_per_node", adapters);
  json.set("trials_per_point", trials);
  json.set("trials_timed_out", static_cast<std::uint64_t>(timed_out));
  for (const auto& [cell, samples] : by_cell) {
    const auto s = gs::util::Summary::of(samples);
    auto& row = json.add_row("cells");
    row.set("t_b_s", cell.first);
    row.set("nodes", cell.second);
    row.set("trials", static_cast<std::uint64_t>(s.n));
    row.set("mean_s", s.mean);
    row.set("stddev_s", s.stddev);
    row.set("min_s", s.min);
    row.set("max_s", s.max);
  }
  json.write();

  if (!jsonl_path.empty()) {
    gs::obs::JsonlSink sink;
    if (!sink.open(jsonl_path)) {
      std::fprintf(stderr, "cannot open %s for writing\n", jsonl_path.c_str());
      return 1;
    }
    gs::util::StatsRegistry stats;
    for (std::size_t i = 0; i < points.size(); ++i) {
      if (results[i] < 0) {
        stats.counter("fig5.trials_timed_out").add();
        continue;
      }
      stats.counter("fig5.trials_converged").add();
      char name[64];
      std::snprintf(name, sizeof name, "fig5.stabilize_ms.tb%.0fs",
                    points[i].beacon_s);
      stats.histogram(name).record(
          static_cast<std::int64_t>(results[i] * 1000.0));
    }
    for (const auto& [cell, samples] : by_cell) {
      const auto s = gs::util::Summary::of(samples);
      char line[256];
      std::snprintf(line, sizeof line,
                    "{\"type\":\"fig5_cell\",\"t_b_s\":%g,\"nodes\":%d,"
                    "\"trials\":%llu,\"mean_s\":%.3f,\"stddev_s\":%.3f,"
                    "\"min_s\":%.3f,\"max_s\":%.3f}",
                    cell.first, cell.second,
                    static_cast<unsigned long long>(s.n), s.mean, s.stddev,
                    s.min, s.max);
      sink.write_line(line);
    }
    sink.dump_stats(stats);
    std::printf("\nWrote %llu metric lines to %s\n",
                static_cast<unsigned long long>(sink.lines_written()),
                jsonl_path.c_str());
  }

  if (!trace_path.empty()) {
    gs::obs::JsonlSink sink;
    if (!sink.open(trace_path)) {
      std::fprintf(stderr, "cannot open %s for writing\n", trace_path.c_str());
      return 1;
    }
    // One representative cell (T_b = 5 s, 10 nodes), replayed single-
    // threaded so the trace is one simulation's coherent timeline.
    const double t = run_trial({10, 5.0, 1000}, adapters, &sink);
    std::printf("Traced representative trial (T_b=5s, 10 nodes): "
                "stable at %.2fs; %llu trace records -> %s\n",
                t, static_cast<unsigned long long>(sink.lines_written()),
                trace_path.c_str());
  }
  return 0;
}
