// E6 — §4.2 GulfStream Central scaling.
//
// The design claims: "membership information is sent to GulfStream Central
// only when it changes. In the steady state, no network resources are used
// for group membership information. Further, group leaders typically need
// only report changes in group membership, not the entire membership."
//
// Measured per farm size: reports during initial discovery, reports per
// minute in a quiet steady state (must be ~0), and reports per minute under
// node churn — which scales with the churn rate, not the farm size.
#include <cstdio>

#include "bench/bench_common.h"
#include "farm/farm.h"
#include "farm/scenario.h"
#include "util/flags.h"

namespace {

struct Result {
  double discovery_reports = -1;
  double steady_per_min = -1;
  double churn_per_min = -1;
};

Result measure(int nodes, double churn_period_s, std::uint64_t seed) {
  gs::sim::Simulator sim;
  gs::proto::Params params;
  params.beacon_phase = gs::sim::seconds(2);
  params.amg_stable_wait = gs::sim::seconds(1);
  params.gsc_stable_wait = gs::sim::seconds(3);
  gs::farm::Farm farm(sim, gs::farm::FarmSpec::uniform(nodes, 3), params,
                      seed);
  farm.start();
  if (!gs::farm::run_until_converged(farm, gs::sim::seconds(240))) return {};
  if (!gs::farm::run_until_gsc_stable(farm, gs::sim::seconds(300))) return {};

  gs::proto::Central* central = farm.active_central();
  Result out;
  out.discovery_reports = static_cast<double>(central->reports_received());

  // Steady state: one quiet minute.
  const std::uint64_t before_steady = central->reports_received();
  sim.run_until(sim.now() + gs::sim::seconds(60));
  out.steady_per_min =
      static_cast<double>(central->reports_received() - before_steady);

  // Churn: kill/revive a rotating node (never the GSC node, which is the
  // last one) every churn_period for two minutes.
  const std::uint64_t before_churn = central->reports_received();
  gs::util::Rng rng(seed * 31);
  bool down = false;
  std::size_t victim = 0;
  const double churn_minutes = 2.0;
  const auto steps =
      static_cast<int>(churn_minutes * 60.0 / churn_period_s);
  for (int step = 0; step < steps; ++step) {
    if (!down) {
      victim = rng.below(static_cast<std::uint64_t>(nodes) - 1);
      farm.fail_node(victim);
      down = true;
    } else {
      farm.recover_node(victim);
      down = false;
    }
    sim.run_until(sim.now() + gs::sim::seconds(churn_period_s));
  }
  out.churn_per_min =
      static_cast<double>(central->reports_received() - before_churn) /
      churn_minutes;
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  gs::util::Flags flags;
  if (!flags.parse(argc, argv)) return 1;
  const double churn_period =
      flags.get_double("churn_period", 10.0, "seconds between churn events");
  if (flags.help_requested()) {
    flags.print_usage();
    return 0;
  }

  const std::vector<int> sizes = {8, 16, 32, 64, 96};
  std::vector<Result> results(sizes.size());
  gs::bench::parallel_trials(sizes.size(), [&](std::size_t i) {
    results[i] = measure(sizes[i], churn_period, 7);
  });

  gs::bench::print_header(
      "GulfStream Central load — reports received (Section 4.2)");
  std::printf("3 AMGs per farm, churn: one node toggled every %.0fs\n\n",
              churn_period);
  std::printf("%8s %10s %22s %20s\n", "nodes", "adapters",
              "discovery reports", "steady / churn (per min)");
  gs::bench::print_rule(66);
  gs::bench::BenchJson json("gsc_load");
  json.set("churn_period_s", churn_period);
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    const Result& r = results[i];
    auto& row = json.add_row("farms");
    row.set("nodes", sizes[i]);
    row.set("adapters", sizes[i] * 3);
    row.set("converged", r.discovery_reports >= 0);
    if (r.discovery_reports < 0) {
      std::printf("%8d %10d %22s\n", sizes[i], sizes[i] * 3, "no-converge");
      continue;
    }
    row.set("discovery_reports", r.discovery_reports);
    row.set("steady_reports_per_min", r.steady_per_min);
    row.set("churn_reports_per_min", r.churn_per_min);
    std::printf("%8d %10d %22.0f %10.0f / %-8.0f\n", sizes[i], sizes[i] * 3,
                r.discovery_reports, r.steady_per_min, r.churn_per_min);
  }
  std::printf(
      "\nExpected shape: discovery reports grow mildly with size (merges of\n"
      "late starters), steady state is ZERO at every size, and churn load\n"
      "tracks the churn rate (a few delta reports per event), independent\n"
      "of farm size — the property that keeps a single Central viable.\n");
  json.write();
  return 0;
}
