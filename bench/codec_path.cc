// Codec hot-path micro-bench (decode-once payload cache, PR 5).
//
// Two measurements, both written to BENCH_codec_path.json:
//
//  per-message micro  for every MsgType: ns/op to encode into a warmed
//                scratch Writer (build_frame), to verify the envelope
//                (header parse + CRC32C), and to run the typed decoder.
//                This is the raw cost surface the cache amortises.
//
//  shared multicast  one sender multicasts to 64 receivers. The cached
//                path does what GsDaemon::dispatch does: every receiver
//                calls Payload::verified() and FrameRef::get() against ONE
//                shared payload, so verification and decode run once and
//                63 receivers hit the cache. The baseline replays the
//                pre-cache protocol: every receiver re-verifies the CRC
//                and re-decodes privately. The ratio is the speedup the
//                decode-once cache buys; --min_speedup turns a regression
//                into a nonzero exit, which CI treats as a failure.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <optional>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "gs/messages.h"
#include "net/payload.h"
#include "util/flags.h"
#include "wire/buffer.h"
#include "wire/frame.h"

namespace {

using Clock = std::chrono::steady_clock;
using gs::proto::MsgType;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

gs::proto::MemberInfo member(std::uint8_t host) {
  gs::proto::MemberInfo m;
  m.ip = gs::util::IpAddress(10, 0, 0, host);
  m.mac = gs::util::MacAddress(host);
  m.node = gs::util::NodeId(host);
  return m;
}

std::vector<gs::proto::MemberInfo> members(std::size_t n) {
  std::vector<gs::proto::MemberInfo> out;
  for (std::size_t i = 0; i < n; ++i)
    out.push_back(member(static_cast<std::uint8_t>(i + 1)));
  return out;
}

// Median-of-batches ns/op for `fn` run `iters` times; the median keeps a
// noisy-neighbour stall in one batch from skewing shared CI machines.
template <typename Fn>
double median_ns_per_op(std::size_t iters, const Fn& fn) {
  const std::size_t kBatches = 16;
  const std::size_t per_batch = std::max<std::size_t>(1, iters / kBatches);
  std::vector<double> rates;
  for (std::size_t b = 0; b < kBatches; ++b) {
    const auto t0 = Clock::now();
    for (std::size_t i = 0; i < per_batch; ++i) fn();
    const double dt = seconds_since(t0);
    if (dt > 0)
      rates.push_back(dt * 1e9 / static_cast<double>(per_batch));
  }
  std::sort(rates.begin(), rates.end());
  return rates.empty() ? 0.0 : rates[rates.size() / 2];
}

struct MicroRow {
  std::string type;
  std::size_t frame_bytes = 0;
  double encode_ns = 0;
  double verify_ns = 0;
  double decode_ns = 0;
};

// Sink the compiler cannot discard (C++20 deprecates volatile compound
// assignment, hence the store-of-sum form).
volatile std::uint64_t g_sink = 0;
inline void sink(std::uint64_t v) { g_sink = g_sink + v; }

template <typename T>
MicroRow micro_for(const T& msg, std::size_t iters) {
  MicroRow row;
  row.type = std::string(gs::proto::to_string(T::kType));
  gs::wire::Writer scratch;
  const std::vector<std::uint8_t> frame = gs::proto::to_frame(msg);
  row.frame_bytes = frame.size();
  row.encode_ns = median_ns_per_op(iters, [&] {
    sink(gs::proto::build_frame(scratch, msg).size());
  });
  row.verify_ns = median_ns_per_op(iters, [&] {
    sink(gs::wire::verify_frame(frame).type);
  });
  const std::span<const std::uint8_t> payload{
      frame.data() + gs::wire::kFrameHeaderSize,
      frame.size() - gs::wire::kFrameHeaderSize};
  row.decode_ns = median_ns_per_op(iters, [&] {
    T out;
    if (gs::proto::decode_typed(payload, &out)) sink(1);
  });
  return row;
}

struct ScenarioResult {
  double cached_ns_per_delivery = 0;
  double baseline_ns_per_delivery = 0;
  double speedup = 0;
};

// The 1-sender / N-receiver multicast decode scenario. Per frame, the
// cached path mirrors GsDaemon::dispatch against one shared payload; the
// baseline verifies + decodes privately per receiver.
template <typename T>
ScenarioResult run_scenario(const T& msg, std::size_t receivers,
                            std::size_t frames) {
  ScenarioResult out;
  gs::wire::Writer scratch;
  const std::size_t deliveries = receivers;

  out.cached_ns_per_delivery =
      median_ns_per_op(frames, [&] {
        const gs::net::Payload shared =
            gs::net::Payload::copy_of(gs::proto::build_frame(scratch, msg));
        for (std::size_t r = 0; r < receivers; ++r) {
          const gs::net::Payload handle = shared;  // per-receiver datagram
          const gs::wire::VerifiedFrame verified = handle.verified();
          if (!verified.ok()) continue;
          const gs::proto::FrameRef ref(handle.frame_payload(), &handle);
          std::optional<T> s;
          if (const T* decoded = ref.get<T>(s); decoded != nullptr) sink(1);
        }
      }) /
      static_cast<double>(deliveries);

  const std::vector<std::uint8_t> frame = gs::proto::to_frame(msg);
  out.baseline_ns_per_delivery =
      median_ns_per_op(frames, [&] {
        for (std::size_t r = 0; r < receivers; ++r) {
          const gs::wire::DecodeResult decoded = gs::wire::decode_frame(frame);
          if (!decoded.ok()) continue;
          T s;
          if (gs::proto::decode_typed(decoded.frame.payload, &s)) sink(1);
        }
      }) /
      static_cast<double>(deliveries);

  out.speedup = out.cached_ns_per_delivery > 0
                    ? out.baseline_ns_per_delivery / out.cached_ns_per_delivery
                    : 0.0;
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  gs::util::Flags flags;
  if (!flags.parse(argc, argv)) return 1;
  const bool smoke = flags.get_bool(
      "smoke", false, "quick iteration (CI codec regression gate)");
  const auto iters = static_cast<std::size_t>(flags.get_int(
      "iters", smoke ? 20000 : 200000, "per-message micro iterations"));
  const auto receivers = static_cast<std::size_t>(
      flags.get_int("receivers", 64, "multicast fan-out"));
  const auto frames = static_cast<std::size_t>(flags.get_int(
      "frames", smoke ? 2000 : 20000, "frames for the multicast scenario"));
  const double min_speedup = flags.get_double(
      "min_speedup", 3.0,
      "exit nonzero if shared-decode/per-receiver falls below this");
  if (flags.help_requested()) {
    flags.print_usage();
    return 0;
  }

  gs::bench::print_header("Codec hot path");

  // Representative instance of every message kind; group-carrying messages
  // get an 8-member view (a typical AMG per Figure 5's farm shapes).
  gs::proto::Beacon beacon;
  beacon.self = member(9);
  beacon.is_leader = true;
  beacon.view = 12;
  beacon.group_size = 8;
  gs::proto::JoinRequest join;
  join.view = 12;
  join.members = members(8);
  gs::proto::Prepare prepare;
  prepare.view = 13;
  prepare.leader = member(9).ip;
  prepare.members = members(8);
  gs::proto::PrepareAck prepare_ack;
  prepare_ack.view = 13;
  gs::proto::Commit commit;
  commit.view = 13;
  commit.members = members(8);
  gs::proto::Heartbeat heartbeat;
  heartbeat.view = 13;
  heartbeat.seq = 123456;
  gs::proto::Suspect suspect;
  suspect.view = 13;
  suspect.suspect = member(3).ip;
  gs::proto::SuspectAck suspect_ack;
  suspect_ack.view = 13;
  suspect_ack.suspect = member(3).ip;
  gs::proto::Probe probe;
  probe.nonce = 77;
  gs::proto::ProbeAck probe_ack;
  probe_ack.nonce = 77;
  probe_ack.leads_prober = true;
  gs::proto::StaleNotice stale;
  stale.current_view = 14;
  gs::proto::MembershipReport report;
  report.seq = 5;
  report.view = 13;
  report.full = true;
  report.leader = member(9);
  report.added = members(8);
  gs::proto::ReportAck report_ack;
  report_ack.seq = 5;
  report_ack.leader = member(9).ip;
  gs::proto::Ping ping;
  ping.nonce = 88;
  ping.origin = member(2).ip;
  gs::proto::PingAck ping_ack;
  ping_ack.nonce = 88;
  ping_ack.target = member(3).ip;
  gs::proto::PingReq ping_req;
  ping_req.nonce = 88;
  ping_req.origin = member(2).ip;
  ping_req.target = member(3).ip;
  gs::proto::SubgroupPoll poll;
  poll.seq = 4;
  gs::proto::SubgroupPollAck poll_ack;
  poll_ack.seq = 4;

  std::vector<MicroRow> rows;
  rows.push_back(micro_for(beacon, iters));
  rows.push_back(micro_for(join, iters));
  rows.push_back(micro_for(prepare, iters));
  rows.push_back(micro_for(prepare_ack, iters));
  rows.push_back(micro_for(commit, iters));
  rows.push_back(micro_for(heartbeat, iters));
  rows.push_back(micro_for(suspect, iters));
  rows.push_back(micro_for(suspect_ack, iters));
  rows.push_back(micro_for(probe, iters));
  rows.push_back(micro_for(probe_ack, iters));
  rows.push_back(micro_for(stale, iters));
  rows.push_back(micro_for(report, iters));
  rows.push_back(micro_for(report_ack, iters));
  rows.push_back(micro_for(ping, iters));
  rows.push_back(micro_for(ping_ack, iters));
  rows.push_back(micro_for(ping_req, iters));
  rows.push_back(micro_for(poll, iters));
  rows.push_back(micro_for(poll_ack, iters));

  std::printf("\nper-message codec cost (ns/op, median of batches):\n");
  std::printf("  %-18s %6s %9s %9s %9s\n", "type", "bytes", "encode",
              "verify", "decode");
  gs::bench::print_rule(56);
  for (const MicroRow& row : rows)
    std::printf("  %-18s %6zu %9.1f %9.1f %9.1f\n", row.type.c_str(),
                row.frame_bytes, row.encode_ns, row.verify_ns, row.decode_ns);

  // The gate rides the steady-state message (heartbeat): the message every
  // farm second is made of, and the worst case for the cache (smallest
  // frame, cheapest CRC — least work to amortise).
  const ScenarioResult hb_scenario =
      run_scenario(heartbeat, receivers, frames);
  const ScenarioResult prepare_scenario =
      run_scenario(prepare, receivers, frames);
  std::printf("\nshared multicast decode (1 sender, %zu receivers):\n",
              receivers);
  std::printf("  %-18s %12s %12s %9s\n", "type", "cached ns", "baseline ns",
              "speedup");
  gs::bench::print_rule(56);
  std::printf("  %-18s %12.1f %12.1f %8.1fx\n", "heartbeat",
              hb_scenario.cached_ns_per_delivery,
              hb_scenario.baseline_ns_per_delivery, hb_scenario.speedup);
  std::printf("  %-18s %12.1f %12.1f %8.1fx\n", "prepare",
              prepare_scenario.cached_ns_per_delivery,
              prepare_scenario.baseline_ns_per_delivery,
              prepare_scenario.speedup);

  gs::bench::BenchJson json("codec_path");
  json.set("iters", static_cast<std::int64_t>(iters));
  json.set("receivers", static_cast<std::int64_t>(receivers));
  json.set("scenario_frames", static_cast<std::int64_t>(frames));
  json.set("heartbeat_cached_ns", hb_scenario.cached_ns_per_delivery);
  json.set("heartbeat_baseline_ns", hb_scenario.baseline_ns_per_delivery);
  json.set("heartbeat_speedup", hb_scenario.speedup);
  json.set("prepare_cached_ns", prepare_scenario.cached_ns_per_delivery);
  json.set("prepare_baseline_ns", prepare_scenario.baseline_ns_per_delivery);
  json.set("prepare_speedup", prepare_scenario.speedup);
  for (const MicroRow& row : rows) {
    auto& j = json.add_row("micro");
    j.set("type", row.type);
    j.set("frame_bytes", static_cast<std::int64_t>(row.frame_bytes));
    j.set("encode_ns", row.encode_ns);
    j.set("verify_ns", row.verify_ns);
    j.set("decode_ns", row.decode_ns);
  }
  json.write();

  const double gated = std::min(hb_scenario.speedup, prepare_scenario.speedup);
  if (gated < min_speedup) {
    std::fprintf(stderr,
                 "FAIL: shared-decode speedup %.2fx below floor %.2fx — the "
                 "decode-once cache is not paying for itself\n",
                 gated, min_speedup);
    return 1;
  }
  return 0;
}
