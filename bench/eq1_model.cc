// E2 — Equation 1: T_stable = T_b + T_AMG + T_GSC + delta.
//
// Recovers delta (the scheduling/start-up overhead) from measurement for
// each (T_b, size) cell and reports its band. The paper measured
// 5 < delta < 6 seconds and attributed it to (1) the beacon phase-end timer
// being armed 1-2 s late, (2) point-to-point two-phase-commit cost, and
// (3) thread scheduling. This repo models exactly those three components
// (params: beacon_setup_min/max, twopc messaging, start_skew/proc_delay),
// so delta here is the sum of the configured model rather than JVM noise.
#include <cstdio>
#include <map>

#include "bench/bench_common.h"
#include "farm/farm.h"
#include "farm/scenario.h"
#include "util/flags.h"

namespace {

struct Cell {
  int nodes;
  double beacon_s;
};

}  // namespace

int main(int argc, char** argv) {
  gs::util::Flags flags;
  if (!flags.parse(argc, argv)) return 1;
  const int trials =
      static_cast<int>(flags.get_int("trials", 8, "seeds per cell"));
  if (flags.help_requested()) {
    flags.print_usage();
    return 0;
  }

  const double kAmgWait = 5.0, kGscWait = 15.0;
  std::vector<Cell> cells;
  for (double b : {5.0, 10.0, 20.0})
    for (int n : {5, 20, 55}) cells.push_back({n, b});

  struct Trial {
    Cell cell;
    std::uint64_t seed;
  };
  std::vector<Trial> work;
  for (const Cell& cell : cells)
    for (int t = 0; t < trials; ++t)
      work.push_back({cell, 7000 + static_cast<std::uint64_t>(t)});

  std::vector<double> measured(work.size(), -1);
  gs::bench::parallel_trials(work.size(), [&](std::size_t i) {
    gs::sim::Simulator sim;
    gs::proto::Params params;
    params.beacon_phase = gs::sim::seconds(work[i].cell.beacon_s);
    params.amg_stable_wait = gs::sim::seconds(kAmgWait);
    params.gsc_stable_wait = gs::sim::seconds(kGscWait);
    gs::farm::Farm farm(sim, gs::farm::FarmSpec::uniform(work[i].cell.nodes, 3),
                        params, work[i].seed);
    farm.start();
    auto stable = gs::farm::run_until_gsc_stable(farm, gs::sim::seconds(600));
    if (stable) measured[i] = gs::sim::to_seconds(*stable);
  });

  gs::bench::print_header("Equation 1 — T = T_b + T_AMG + T_GSC + delta");
  std::printf("%8s %8s %12s %12s %16s\n", "T_b(s)", "size", "model(s)",
              "measured(s)", "delta(s)");
  gs::bench::print_rule();

  std::vector<double> all_delta;
  std::map<std::pair<double, int>, std::vector<double>> by_cell;
  for (std::size_t i = 0; i < work.size(); ++i)
    if (measured[i] >= 0)
      by_cell[{work[i].cell.beacon_s, work[i].cell.nodes}].push_back(
          measured[i]);

  gs::bench::BenchJson json("eq1_model");
  json.set("trials_per_cell", trials);
  for (const Cell& cell : cells) {
    const double model = cell.beacon_s + kAmgWait + kGscWait;
    auto it = by_cell.find({cell.beacon_s, cell.nodes});
    if (it == by_cell.end()) continue;
    const auto summary = gs::util::Summary::of(it->second);
    const double delta = summary.mean - model;
    all_delta.push_back(delta);
    std::printf("%8.0f %8d %12.1f %12.2f %11.2f ±%4.2f\n", cell.beacon_s,
                cell.nodes, model, summary.mean, delta, summary.stddev);
    auto& row = json.add_row("cells");
    row.set("t_b_s", cell.beacon_s);
    row.set("nodes", cell.nodes);
    row.set("model_s", model);
    row.set("measured_mean_s", summary.mean);
    row.set("measured_stddev_s", summary.stddev);
    row.set("delta_s", delta);
  }

  const auto delta_summary = gs::util::Summary::of(all_delta);
  std::printf("\nRecovered delta band: [%.2f, %.2f] s (mean %.2f)\n",
              delta_summary.min, delta_summary.max, delta_summary.mean);
  std::printf("Paper measured delta in [5, 6] s on JVM daemons; this model's\n"
              "delta = start-up skew + late beacon timer (1-2s) + 2PC and\n"
              "report debounce scheduling. Constancy across T_b and size is\n"
              "the property Equation 1 asserts.\n");
  json.set("delta_min_s", delta_summary.min);
  json.set("delta_max_s", delta_summary.max);
  json.set("delta_mean_s", delta_summary.mean);
  json.write();
  return 0;
}
