// Event-core micro-benchmark: the timing-wheel EventQueue against the
// reference binary heap (sim/heap_queue.h) on the two patterns the farm
// actually exercises:
//
//   re-arm   — the heartbeat steady state as the event queue sees it. Each
//              beacon arrival re-arms the sender's suspicion deadline 2 s
//              out (the sim::Timer::rearm fast path), schedules the next
//              beacon one period out, and fans out that round's frame
//              deliveries ~150 us ahead — one event per receiver, the way
//              the pre-batching fabric scheduled a multicast (--fan
//              defaults to farm_scale's 78 receivers per VLAN, --monitors
//              to its 5000 adapters). The deadline mix is what splits the
//              implementations: near-term delivery pushes sift through the
//              heap's suspicion-laden top on the way in *and* on the way
//              out, while the wheel files them O(1) and drains each dense
//              bucket through a cursor.
//   push-pop — the bare scheduling funnel: push a batch of staggered
//              deadlines, drain it, repeat. No cancellation, no re-arm.
//
// Both implementations are driven with the *identical* operation stream and
// the popped (when) sequence is checksummed; a checksum mismatch means the
// wheel broke the (when, seq) total order and the bench aborts. Each
// pattern runs --repeats times and the fastest run counts (standard
// micro-bench practice: the minimum is the least contaminated by machine
// noise). The headline ratio (heap ns/op / wheel ns/op) on the re-arm
// pattern is gated by --min_speedup so a queue regression fails loudly in
// CI.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "bench/bench_common.h"
#include "sim/event_queue.h"
#include "sim/heap_queue.h"
#include "util/flags.h"

namespace {

using gs::sim::SimTime;

constexpr SimTime kSuspect = 2'000'000;  // suspicion deadline: 2 s
constexpr SimTime kPeriod = 250'000;     // heartbeat period: 250 ms
constexpr SimTime kLatency = 150;        // delivery latency: 150 us

struct MicroResult {
  double ns_per_op = 0;
  std::uint64_t checksum = 0;
};

// One beacon cycle = pop + reschedule(+2 s) + push next beacon + fan
// delivery pushes; the deliveries pop between beacons. Identical streams
// for both queue types: the only difference is the container under test.
template <typename Queue>
MicroResult run_rearm(std::size_t monitors, std::size_t ops, std::size_t fan) {
  Queue q;
  std::vector<gs::sim::EventId> suspicion(monitors);
  std::uint64_t delivered = 0;
  std::uint64_t fired = 0;
  constexpr std::uint32_t kNoPeer = 0xFFFF'FFFF;
  std::uint32_t cur = kNoPeer;
  // Beacon callbacks identify their peer ({&cur, j} fits the std::function
  // small-buffer, so pushes don't allocate); suspicion callbacks never run.
  for (std::uint32_t j = 0; j < monitors; ++j) {
    const auto t0 = static_cast<SimTime>(j) * kPeriod /
                    static_cast<SimTime>(monitors);
    q.push(t0, [&cur, j] { cur = j; });
    suspicion[j] = q.push(t0 + kSuspect, [&fired] { ++fired; });
  }

  std::uint64_t checksum = 0;
  // Peek-then-pop, exactly as every library consumer drives the queue
  // (Simulator::run_until/run_window, WallClock::run_due, the shard
  // barrier all check next_time() against a deadline before popping).
  // Folding the peek into the checksum doubles as a cross-check that the
  // peek and the pop agree.
  auto spin = [&](std::size_t n) {
    for (std::size_t i = 0; i < n; ++i) {
      cur = kNoPeer;
      checksum = checksum * 31 + static_cast<std::uint64_t>(q.next_time());
      auto [when, fn] = q.pop();
      fn();
      checksum = checksum * 31 + static_cast<std::uint64_t>(when);
      if (cur == kNoPeer) continue;  // a frame delivery, not a beacon
      suspicion[cur] = q.reschedule(suspicion[cur], when + kSuspect);
      q.push(when + kPeriod, [&cur, j = cur] { cur = j; });
      for (std::size_t k = 0; k < fan; ++k)
        q.push(when + kLatency, [&delivered] { ++delivered; });
    }
  };
  spin(ops / 4);  // warm up pools, wheel capacities, branch predictors
  checksum = 0;
  const auto start = std::chrono::steady_clock::now();
  spin(ops);
  const auto elapsed = std::chrono::steady_clock::now() - start;
  MicroResult out;
  out.ns_per_op =
      static_cast<double>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed)
              .count()) /
      static_cast<double>(ops);
  out.checksum = checksum * 31 + fired + delivered;  // fired should stay 0
  return out;
}

// Push a batch of staggered deadlines, drain it dry, repeat.
template <typename Queue>
MicroResult run_push_pop(std::size_t batch, std::size_t rounds) {
  Queue q;
  std::uint64_t fired = 0;
  std::uint64_t checksum = 0;
  SimTime base = 0;
  const auto start = std::chrono::steady_clock::now();
  for (std::size_t r = 0; r < rounds; ++r) {
    for (std::size_t i = 0; i < batch; ++i) {
      // Deadlines land out of order and span several wheel levels.
      const auto scatter =
          static_cast<SimTime>((i * 2654435761u) % (16 * kPeriod));
      q.push(base + scatter, [&fired] { ++fired; });
    }
    while (!q.empty()) {
      checksum = checksum * 31 + static_cast<std::uint64_t>(q.next_time());
      auto [when, fn] = q.pop();
      fn();
      checksum = checksum * 31 + static_cast<std::uint64_t>(when);
      base = when;
    }
  }
  const auto elapsed = std::chrono::steady_clock::now() - start;
  MicroResult out;
  out.ns_per_op =
      static_cast<double>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed)
              .count()) /
      static_cast<double>(batch * rounds);
  out.checksum = checksum * 31 + fired;
  return out;
}

// Fastest of n runs; checksums must agree across runs (same stream).
template <typename Fn>
MicroResult best_of(std::size_t n, Fn run) {
  MicroResult best = run();
  for (std::size_t i = 1; i < n; ++i) {
    const MicroResult r = run();
    if (r.checksum != best.checksum) {
      std::fprintf(stderr, "FAIL: nondeterministic pop stream across runs\n");
      std::exit(1);
    }
    best.ns_per_op = std::min(best.ns_per_op, r.ns_per_op);
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  gs::util::Flags flags;
  if (!flags.parse(argc, argv)) return 1;
  const bool smoke =
      flags.get_bool("smoke", false, "quick iteration (CI regression gate)");
  // Defaults mirror bench/farm_scale's default farm: 5000 monitored
  // adapters, and a beacon fanning out to its ~78-member VLAN.
  const auto monitors = static_cast<std::size_t>(
      flags.get_int("monitors", 5000, "concurrently monitored peers"));
  const auto fan = static_cast<std::size_t>(flags.get_int(
      "fan", 78, "frame deliveries fanned out per beacon arrival"));
  const auto ops = static_cast<std::size_t>(flags.get_int(
      "ops", smoke ? 500000 : 4000000, "re-arm pattern queue ops to measure"));
  const auto rounds = static_cast<std::size_t>(
      flags.get_int("rounds", smoke ? 50 : 500, "push-pop drain rounds"));
  const auto repeats = static_cast<std::size_t>(flags.get_int(
      "repeats", smoke ? 5 : 3, "timed runs per pattern; fastest counts"));
  const double min_speedup = flags.get_double(
      "min_speedup", 3.0,
      "fail if wheel/heap re-arm speedup drops below this factor");
  if (flags.help_requested()) {
    flags.print_usage();
    return 0;
  }

  gs::bench::print_header("event core: timing wheel vs reference heap");
  std::printf("monitors=%zu  fan=%zu  re-arm ops=%zu  push-pop rounds=%zu  "
              "repeats=%zu\n",
              monitors, fan, ops, rounds, repeats);

  const auto wheel_rearm = best_of(repeats, [&] {
    return run_rearm<gs::sim::EventQueue>(monitors, ops, fan);
  });
  const auto heap_rearm = best_of(repeats, [&] {
    return run_rearm<gs::sim::HeapEventQueue>(monitors, ops, fan);
  });
  if (wheel_rearm.checksum != heap_rearm.checksum) {
    std::fprintf(stderr,
                 "FAIL: wheel and heap popped different (when) sequences on "
                 "the re-arm stream — order regression\n");
    return 1;
  }
  const auto wheel_pp = best_of(repeats, [&] {
    return run_push_pop<gs::sim::EventQueue>(monitors, rounds);
  });
  const auto heap_pp = best_of(repeats, [&] {
    return run_push_pop<gs::sim::HeapEventQueue>(monitors, rounds);
  });
  if (wheel_pp.checksum != heap_pp.checksum) {
    std::fprintf(stderr,
                 "FAIL: wheel and heap popped different (when) sequences on "
                 "the push-pop stream — order regression\n");
    return 1;
  }

  const double rearm_speedup =
      wheel_rearm.ns_per_op > 0 ? heap_rearm.ns_per_op / wheel_rearm.ns_per_op
                                : 0;
  const double pp_speedup =
      wheel_pp.ns_per_op > 0 ? heap_pp.ns_per_op / wheel_pp.ns_per_op : 0;

  gs::bench::print_rule();
  std::printf("%-28s %12s %12s %9s\n", "pattern", "wheel ns/op", "heap ns/op",
              "speedup");
  gs::bench::print_rule();
  std::printf("%-28s %12.1f %12.1f %8.2fx\n", "re-arm + delivery fan",
              wheel_rearm.ns_per_op, heap_rearm.ns_per_op, rearm_speedup);
  std::printf("%-28s %12.1f %12.1f %8.2fx\n", "push-pop drain",
              wheel_pp.ns_per_op, heap_pp.ns_per_op, pp_speedup);

  gs::bench::BenchJson json("event_core");
  json.set("smoke", smoke);
  json.set("monitors", static_cast<std::uint64_t>(monitors));
  json.set("fan", static_cast<std::uint64_t>(fan));
  json.set("rearm_ops", static_cast<std::uint64_t>(ops));
  json.set("wheel_rearm_ns_per_op", wheel_rearm.ns_per_op);
  json.set("heap_rearm_ns_per_op", heap_rearm.ns_per_op);
  json.set("rearm_speedup", rearm_speedup);
  json.set("wheel_push_pop_ns_per_op", wheel_pp.ns_per_op);
  json.set("heap_push_pop_ns_per_op", heap_pp.ns_per_op);
  json.set("push_pop_speedup", pp_speedup);
  json.write();

  if (rearm_speedup < min_speedup) {
    std::fprintf(stderr,
                 "FAIL: re-arm speedup %.2fx below floor %.2fx — the wheel "
                 "fast path regressed against the reference heap\n",
                 rearm_speedup, min_speedup);
    return 1;
  }
  return 0;
}
