// E4 — §3 failure-detection trade-offs.
//
// Three tables:
//  A. Detection latency vs heartbeat period tau and sensitivity k
//     ("adjusted to trade off between network load, timeliness of
//     detection, and the probability of a false failure report").
//  B. False failure reports under message loss: the one-strike
//     unidirectional ring vs the bidirectional two-reporter consensus vs
//     leader verification probes — the paper's two amelioration steps.
//  C. The loopback-test ablation: a receive-dead adapter blames its healthy
//     neighbors unless it self-tests first (§3's first flaw).
#include <cmath>
#include <cstdio>

#include "bench/bench_common.h"
#include "farm/farm.h"
#include "farm/scenario.h"
#include "util/flags.h"

namespace {

using gs::proto::FdKind;

struct FarmRun {
  gs::sim::Simulator sim;
  std::unique_ptr<gs::farm::Farm> farm;

  FarmRun(int nodes, const gs::proto::Params& params, std::uint64_t seed,
          double loss) {
    farm = std::make_unique<gs::farm::Farm>(
        sim, gs::farm::FarmSpec::uniform(nodes, 1), params, seed);
    if (loss > 0) {
      gs::net::ChannelModel lossy;
      lossy.loss_probability = loss;
      for (gs::util::VlanId vlan : farm->vlans())
        farm->fabric().segment(vlan).set_model(lossy);
    }
    farm->start();
  }
};

// Detection latency: kill a mid-rank member. Two measurements per trial:
//  * commit_s — the external timer the bench always had: sim time until the
//    leader commits a view excluding the victim (detection + verification
//    probes + 2PC + change debounce);
//  * leader_span_s — the SpanTracker's kFaultInjected -> kDeathDeclared
//    latency ("span.detection_leader_us"), the pure §3 detection path that
//    Eq. 1's (k + 1/2)·tau + verification term models.
struct DetectionSample {
  double commit_s = -1;
  double leader_span_s = -1;
};

DetectionSample detection_latency_s(const gs::proto::Params& params, int nodes,
                                    std::uint64_t seed) {
  FarmRun run(nodes, params, seed, 0.0);
  gs::obs::SpanTracker& spans = run.farm->enable_span_tracking();
  if (!gs::farm::run_until_converged(*run.farm, gs::sim::seconds(120)))
    return {};

  const std::size_t victim_node = static_cast<std::size_t>(nodes) / 2;
  const gs::util::AdapterId victim = run.farm->node_adapters(victim_node)[0];
  const gs::util::IpAddress victim_ip =
      run.farm->fabric().adapter(victim).ip();
  const gs::util::AdapterId leader =
      run.farm->node_adapters(static_cast<std::size_t>(nodes) - 1)[0];
  gs::proto::AdapterProtocol* leader_proto = run.farm->protocol_for(leader);

  const gs::sim::SimTime death = run.sim.now();
  run.farm->fabric().set_adapter_health(victim, gs::net::HealthState::kDown);
  auto removed = gs::farm::run_until(
      run.sim, death + gs::sim::seconds(120),
      [&] { return !leader_proto->committed().contains(victim_ip); },
      gs::sim::milliseconds(5));
  if (!removed) return {};
  DetectionSample out;
  out.commit_s = gs::sim::to_seconds(*removed - death);
  const gs::util::Histogram* leader_hist =
      spans.stats().find_histogram("span.detection_leader_us");
  if (leader_hist != nullptr && leader_hist->count() > 0)
    out.leader_span_s = leader_hist->mean() / 1e6;
  return out;
}

// Eq. 1's detection term: a fault lands uniformly within a heartbeat
// period, the ring raises suspicion after k consecutive misses, and the
// leader spends (retries + 1) timed-out verification probes before
// declaring: E[T_detect] = (k + 1/2)·tau + (probe_retries + 1)·T_probe.
double detection_model_s(const gs::proto::Params& p) {
  return (static_cast<double>(p.hb_sensitivity) + 0.5) *
             gs::sim::to_seconds(p.hb_period) +
         static_cast<double>(p.probe_retries + 1) *
             gs::sim::to_seconds(p.probe_timeout);
}

struct FalseReportStats {
  std::uint64_t suspicions = 0;
  std::uint64_t false_removals = 0;  // deaths declared with nobody dead
  std::uint64_t probes_refuted = 0;
};

FalseReportStats false_reports(const gs::proto::Params& params, int nodes,
                               double loss, double run_seconds,
                               std::uint64_t seed) {
  FarmRun run(nodes, params, seed, loss);
  if (!gs::farm::run_until_converged(*run.farm, gs::sim::seconds(240)))
    return {};
  run.sim.run_until(run.sim.now() + gs::sim::seconds(run_seconds));

  FalseReportStats out;
  for (std::size_t n = 0; n < run.farm->node_count(); ++n) {
    const auto& stats = run.farm->daemon(n).protocol(0).stats();
    out.suspicions += stats.suspicions_raised;
    out.false_removals += stats.deaths_declared;
    out.probes_refuted += stats.probes_refuted;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  gs::util::Flags flags;
  if (!flags.parse(argc, argv)) return 1;
  const int nodes = static_cast<int>(flags.get_int("nodes", 16, "AMG size"));
  const int trials = static_cast<int>(flags.get_int("trials", 5, "seeds"));
  const double horizon =
      flags.get_double("seconds", 300.0, "healthy-run length for table B/C");
  if (flags.help_requested()) {
    flags.print_usage();
    return 0;
  }

  gs::proto::Params base;
  base.beacon_phase = gs::sim::seconds(2);
  base.amg_stable_wait = gs::sim::seconds(1);
  base.gsc_stable_wait = gs::sim::seconds(3);

  gs::bench::BenchJson json("detection_tradeoff");
  json.set("nodes", nodes);
  json.set("trials", trials);
  json.set("horizon_s", horizon);

  // --- Table A ---------------------------------------------------------------
  gs::bench::print_header(
      "A. Detection latency vs heartbeat period tau and sensitivity k");
  std::printf("bidirectional ring + leader verification, AMG of %d\n\n", nodes);
  std::printf("%10s", "tau");
  for (int k : {1, 2, 3}) std::printf("        k=%d       ", k);
  std::printf("\n");
  gs::bench::print_rule(64);
  struct GateRow {
    double tau_ms = 0;
    int k = 0;
    double span_mean_s = -1;
    double model_s = 0;
    double tolerance_s = 0;
  };
  std::vector<GateRow> gate_rows;
  for (double tau_ms : {100.0, 500.0, 1000.0}) {
    std::printf("%8.0fms", tau_ms);
    for (int k : {1, 2, 3}) {
      gs::proto::Params p = base;
      p.hb_period = gs::sim::milliseconds(static_cast<std::int64_t>(tau_ms));
      p.hb_sensitivity = k;
      std::vector<DetectionSample> samples(static_cast<std::size_t>(trials));
      gs::bench::parallel_trials(samples.size(), [&](std::size_t i) {
        samples[i] = detection_latency_s(p, nodes, 100 + i);
      });
      std::vector<double> commit, leader_span;
      for (const DetectionSample& d : samples) {
        if (d.commit_s >= 0) commit.push_back(d.commit_s);
        if (d.leader_span_s >= 0) leader_span.push_back(d.leader_span_s);
      }
      const auto s = gs::util::Summary::of(commit);
      const auto ls = gs::util::Summary::of(leader_span);
      std::printf("  %ss", gs::bench::fmt_mean_std(s).c_str());
      auto& row = json.add_row("detection_latency");
      row.set("tau_ms", tau_ms);
      row.set("k", k);
      row.set("latency_mean_s", s.mean);
      row.set("latency_stddev_s", s.stddev);
      row.set("span_leader_mean_s", ls.mean);
      row.set("span_leader_stddev_s", ls.stddev);
      row.set("model_s", detection_model_s(p));
      GateRow gate;
      gate.tau_ms = tau_ms;
      gate.k = k;
      gate.span_mean_s = leader_span.empty() ? -1 : ls.mean;
      gate.model_s = detection_model_s(p);
      // The fault phase within a heartbeat period is uniform, so trial
      // means scatter around the model by O(tau/sqrt(12·trials)); suspect
      // relays and probe scheduling add a constant-ish tail. Half a period
      // plus 300ms comfortably covers both without masking real drift.
      gate.tolerance_s = 0.5 * tau_ms / 1000.0 + 0.3;
      gate_rows.push_back(gate);
    }
    std::printf("\n");
  }
  std::printf("\nExpected: latency ~ (k + 1/2)*tau + verification probes;\n"
              "rows scale linearly with tau, columns with k.\n");

  // --- Table A', the Eq. 1 sanity gate ---------------------------------------
  // The span-measured leader detection latency (kFaultInjected ->
  // kDeathDeclared) must agree with the closed-form model — this pins the
  // tracer's correlation AND the simulator's detection pipeline at once.
  gs::bench::print_header(
      "A'. Span-measured leader detection vs Eq. 1 model (gate)");
  std::printf("%10s %4s %12s %12s %12s  %s\n", "tau", "k", "span mean",
              "model", "|delta|", "verdict");
  gs::bench::print_rule(64);
  int gate_failures = 0;
  for (const GateRow& g : gate_rows) {
    const double delta =
        g.span_mean_s < 0 ? -1 : std::abs(g.span_mean_s - g.model_s);
    const bool ok = delta >= 0 && delta <= g.tolerance_s;
    if (!ok) ++gate_failures;
    std::printf("%8.0fms %4d %11.3fs %11.3fs %11.3fs  %s\n", g.tau_ms, g.k,
                g.span_mean_s, g.model_s, delta, ok ? "ok" : "FAIL");
    auto& row = json.add_row("eq1_gate");
    row.set("tau_ms", g.tau_ms);
    row.set("k", g.k);
    row.set("span_leader_mean_s", g.span_mean_s);
    row.set("model_s", g.model_s);
    row.set("tolerance_s", g.tolerance_s);
    row.set("passed", ok);
  }
  json.set("eq1_gate_failures", gate_failures);
  if (gate_failures > 0)
    std::printf("\nGATE FAILED: %d combination(s) disagree with Eq. 1.\n",
                gate_failures);

  // --- Table B -------------------------------------------------------------------
  gs::bench::print_header(
      "B. False failure reports under loss (healthy group, per run)");
  std::printf("%d nodes, %.0fs horizon, %d trials averaged\n\n", nodes, horizon,
              trials);
  std::printf("%8s | %26s | %26s | %26s\n", "loss",
              "uni-ring k=1, no verify", "bi-ring consensus, no verify",
              "bi-ring + verify probes");
  std::printf("%8s | %13s %12s | %13s %12s | %13s %12s\n", "", "suspicions",
              "removals", "suspicions", "removals", "suspicions", "removals");
  gs::bench::print_rule(96);

  struct Mode {
    FdKind kind;
    int k;
    bool verify;
  };
  const Mode modes[] = {{FdKind::kUnidirectionalRing, 1, false},
                        {FdKind::kBidirectionalRing, 1, false},
                        {FdKind::kBidirectionalRing, 1, true}};
  for (double loss : {0.0, 0.02, 0.05, 0.10}) {
    std::printf("%7.0f%% |", loss * 100);
    for (const Mode& mode : modes) {
      gs::proto::Params p = base;
      p.fd_kind = mode.kind;
      p.hb_sensitivity = mode.k;
      p.leader_verify = mode.verify;
      std::vector<FalseReportStats> stats(static_cast<std::size_t>(trials));
      gs::bench::parallel_trials(stats.size(), [&](std::size_t i) {
        stats[i] = false_reports(p, nodes, loss, horizon, 200 + i);
      });
      double suspicions = 0, second = 0;
      for (const auto& s : stats) {
        suspicions += static_cast<double>(s.suspicions);
        second += static_cast<double>(s.false_removals);
      }
      std::printf(" %13.1f %12.1f |", suspicions / trials,
                  second / trials);
      auto& row = json.add_row("false_reports");
      row.set("loss_p", loss);
      row.set("fd_kind", mode.kind == FdKind::kUnidirectionalRing
                             ? "unidirectional_ring"
                             : "bidirectional_ring");
      row.set("leader_verify", mode.verify);
      row.set("suspicions_per_run", suspicions / trials);
      row.set("removals_per_run", second / trials);
    }
    std::printf("\n");
  }
  std::printf(
      "\nExpected: the one-strike uni-ring wrongly removes members as loss\n"
      "grows; consensus reduces removals; verification probes convert the\n"
      "remaining false suspicions into refutations (zero removals).\n");

  // --- Table C -----------------------------------------------------------------------
  gs::bench::print_header("C. Loopback self-test ablation (receive-dead NIC)");
  std::printf("%12s %22s\n", "loopback", "false suspicions");
  gs::bench::print_rule(40);
  for (bool loopback : {true, false}) {
    gs::proto::Params p = base;
    p.fd_loopback_test = loopback;
    p.leader_verify = true;
    std::vector<double> counts(static_cast<std::size_t>(trials));
    gs::bench::parallel_trials(counts.size(), [&](std::size_t i) {
      FarmRun run(nodes, p, 300 + i, 0.0);
      if (!gs::farm::run_until_converged(*run.farm, gs::sim::seconds(120)))
        return;
      const gs::util::AdapterId broken = run.farm->node_adapters(3)[0];
      run.farm->fabric().set_adapter_health(broken,
                                            gs::net::HealthState::kRecvDead);
      run.sim.run_until(run.sim.now() + gs::sim::seconds(60));
      counts[i] = static_cast<double>(
          run.farm->daemon(3).protocol(0).stats().suspicions_raised);
    });
    const auto s = gs::util::Summary::of(counts);
    std::printf("%12s %16.1f ±%4.1f\n", loopback ? "on" : "off", s.mean,
                s.stddev);
    auto& row = json.add_row("loopback_ablation");
    row.set("loopback", loopback);
    row.set("false_suspicions_mean", s.mean);
    row.set("false_suspicions_stddev", s.stddev);
  }
  std::printf("\nExpected: with the test off, the broken receiver blames its\n"
              "healthy neighbors repeatedly (§3's first flaw); with it on,\n"
              "it stays silent.\n");
  json.write();
  return gate_failures > 0 ? 1 : 0;
}
