// E7 — §3.1 dynamic domain reconfiguration.
//
// Océano "reallocates servers in short time (minutes) in response to
// changing workloads"; GulfStream must re-stabilize membership after each
// VLAN move and suppress the resulting failure notifications. Measured per
// move: time from the switch-console rewrite until (a) GSC infers the move
// complete and (b) both affected AMGs are stable again; plus the count of
// spurious AdapterFailed events (must be zero for expected moves). A second
// table performs the moves behind GSC's back and reports the unexpected-
// move inference time.
#include <cstdio>

#include "bench/bench_common.h"
#include "farm/farm.h"
#include "farm/scenario.h"
#include "util/flags.h"

namespace {

using gs::proto::FarmEvent;

struct MoveResult {
  double inference_s = -1;   // console write -> MoveCompleted/UnexpectedMove
  double restabilize_s = -1; // console write -> both AMGs converged
  std::size_t spurious_failures = 0;
};

MoveResult run_moves(bool expected, int moves, std::uint64_t seed,
                     std::vector<double>* per_move_inference) {
  gs::sim::Simulator sim;
  gs::proto::Params params;
  params.beacon_phase = gs::sim::seconds(2);
  params.amg_stable_wait = gs::sim::seconds(1);
  params.gsc_stable_wait = gs::sim::seconds(3);
  params.move_window = gs::sim::seconds(15);
  gs::farm::Farm farm(sim, gs::farm::FarmSpec::oceano(2, 4, 4, 2, 2), params,
                      seed);
  gs::proto::EventLog events(farm.event_bus());
  farm.start();
  if (!gs::farm::run_until_converged(farm, gs::sim::seconds(120))) return {};
  if (!gs::farm::run_until_gsc_stable(farm, gs::sim::seconds(180))) return {};
  events.clear();

  MoveResult out;
  out.spurious_failures = 0;

  // Alternate a back-end node's internal adapter between the two domains.
  const auto backs = farm.nodes_with_role(gs::farm::NodeRole::kBackEnd);
  std::size_t mover = backs.front();
  std::uint32_t current_domain = 0;

  double total_restab = 0;
  int completed = 0;
  for (int m = 0; m < moves; ++m) {
    const gs::util::AdapterId adapter = farm.node_adapters(mover)[1];
    const gs::util::IpAddress ip = farm.fabric().adapter(adapter).ip();
    const std::uint32_t target = 1 - current_domain;
    const gs::sim::SimTime start = sim.now();
    const std::size_t events_before = events.size();

    if (expected) {
      if (!farm.active_central()->move_adapter(adapter,
                                               gs::farm::internal_vlan(target)))
        break;
    } else {
      const auto& a = farm.fabric().adapter(adapter);
      farm.fabric().set_port_vlan(a.attached_switch(), a.attached_port(),
                                  gs::farm::internal_vlan(target));
    }
    current_domain = target;

    const FarmEvent::Kind want = expected ? FarmEvent::Kind::kMoveCompleted
                                          : FarmEvent::Kind::kUnexpectedMove;
    auto inferred = gs::farm::run_until(
        sim, start + gs::sim::seconds(180), [&] {
          for (std::size_t i = events_before; i < events.size(); ++i)
            if (events.records()[i].kind == want && events.records()[i].ip == ip)
              return true;
          return false;
        });
    if (!inferred) break;
    per_move_inference->push_back(gs::sim::to_seconds(*inferred - start));

    auto stable = gs::farm::run_until_converged(
        farm, sim.now() + gs::sim::seconds(120));
    if (!stable) break;
    total_restab += gs::sim::to_seconds(*stable - start);
    ++completed;

    for (std::size_t i = events_before; i < events.size(); ++i)
      if (events.records()[i].kind == FarmEvent::Kind::kAdapterFailed &&
          events.records()[i].ip == ip)
        ++out.spurious_failures;

    // If this was an unexpected move, re-align the database so verification
    // noise does not accumulate across iterations.
    if (!expected)
      farm.db().set_expected_vlan(adapter, gs::farm::internal_vlan(target));
    sim.run_until(sim.now() + gs::sim::seconds(5));
  }

  if (completed > 0) out.restabilize_s = total_restab / completed;
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  gs::util::Flags flags;
  if (!flags.parse(argc, argv)) return 1;
  const int moves = static_cast<int>(flags.get_int("moves", 6,
                                                   "moves per scenario"));
  if (flags.help_requested()) {
    flags.print_usage();
    return 0;
  }

  gs::bench::print_header(
      "Dynamic domain reconfiguration (Section 3.1) — Oceano farm, "
      "2 domains x (4 front + 4 back)");

  gs::bench::BenchJson json("domain_move");
  json.set("moves_per_scenario", moves);
  for (bool expected : {true, false}) {
    std::vector<double> inference;
    MoveResult result = run_moves(expected, moves, 17, &inference);
    const auto s = gs::util::Summary::of(inference);
    std::printf("\n%s moves (%zu completed):\n",
                expected ? "GSC-initiated (expected)" : "operator (unexpected)",
                inference.size());
    std::printf("  inference time   : %6.2f ±%5.2f s  (%s)\n", s.mean, s.stddev,
                expected ? "console write -> MoveCompleted"
                         : "console write -> UnexpectedMove inferred");
    std::printf("  re-stabilization : %6.2f s mean (both AMGs converged)\n",
                result.restabilize_s);
    std::printf("  spurious AdapterFailed notifications: %zu\n",
                result.spurious_failures);
    auto& row = json.add_row("scenarios");
    row.set("expected", expected);
    row.set("moves_completed", static_cast<std::uint64_t>(inference.size()));
    row.set("inference_mean_s", s.mean);
    row.set("inference_stddev_s", s.stddev);
    row.set("restabilize_mean_s", result.restabilize_s);
    row.set("spurious_failures",
            static_cast<std::uint64_t>(result.spurious_failures));
  }

  std::printf(
      "\nExpected shape: expected moves complete with ZERO failure\n"
      "notifications (suppression, §3.1); unexpected moves are inferred as\n"
      "moves — not deaths — once the rejoin is observed inside the move\n"
      "window; re-stabilization is dominated by heartbeat detection of the\n"
      "departed member plus the beacon/merge of the arriving one.\n");
  json.write();
  return 0;
}
