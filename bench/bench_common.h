// Shared support for the experiment harnesses: table printing and parallel
// trial execution. Each bench binary reproduces one figure/table of the
// paper (see DESIGN.md's experiment index) and prints the same rows/series
// the paper reports.
#pragma once

#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "util/stats.h"
#include "util/thread_pool.h"

namespace gs::bench {

// Runs fn(trial_index) for trials in parallel across hardware threads; each
// trial owns its own Simulator/Farm, so this is safe and deterministic per
// (trial, seed).
inline void parallel_trials(std::size_t trials,
                            const std::function<void(std::size_t)>& fn) {
  util::ThreadPool pool;
  pool.parallel_for(trials, fn);
}

inline void print_header(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

inline void print_rule(int width = 78) {
  for (int i = 0; i < width; ++i) std::putchar('-');
  std::putchar('\n');
}

inline std::string fmt_mean_std(const util::Summary& s) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%7.2f ±%5.2f", s.mean, s.stddev);
  return buf;
}

}  // namespace gs::bench
