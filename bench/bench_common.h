// Shared support for the experiment harnesses: table printing, parallel
// trial execution, and machine-readable result emission. Each bench binary
// reproduces one figure/table of the paper (see DESIGN.md's experiment
// index), prints the same rows/series the paper reports, and writes a
// BENCH_<name>.json summary so CI can archive trajectories and diff runs.
#pragma once

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "util/stats.h"
#include "util/thread_pool.h"

namespace gs::bench {

// An insertion-ordered flat JSON object of pre-rendered scalar fields.
class JsonObj {
 public:
  void set(const std::string& key, double v) {
    char buf[40];
    if (std::isfinite(v)) {
      std::snprintf(buf, sizeof buf, "%.10g", v);
      add(key, buf);
    } else {
      add(key, "null");  // JSON has no nan/inf
    }
  }
  void set(const std::string& key, std::int64_t v) {
    add(key, std::to_string(v));
  }
  void set(const std::string& key, std::uint64_t v) {
    add(key, std::to_string(v));
  }
  void set(const std::string& key, int v) { set(key, std::int64_t{v}); }
  void set(const std::string& key, bool v) { add(key, v ? "true" : "false"); }
  void set(const std::string& key, const std::string& v) {
    std::string quoted;
    quoted += '"';
    quoted += escaped(v);
    quoted += '"';
    add(key, std::move(quoted));
  }
  void set(const std::string& key, const char* v) { set(key, std::string(v)); }

  [[nodiscard]] std::string render() const {
    std::string out = "{";
    for (std::size_t i = 0; i < fields_.size(); ++i) {
      if (i > 0) out += ", ";
      out += '"';
      out += escaped(fields_[i].first);
      out += "\": ";
      out += fields_[i].second;
    }
    out += '}';
    return out;
  }

 private:
  static std::string escaped(const std::string& s) {
    std::string out;
    for (char c : s) {
      if (c == '"' || c == '\\') out += '\\';
      if (static_cast<unsigned char>(c) < 0x20) {
        char buf[8];
        std::snprintf(buf, sizeof buf, "\\u%04x",
                      static_cast<unsigned>(static_cast<unsigned char>(c)));
        out += buf;
        continue;
      }
      out += c;
    }
    return out;
  }
  void add(const std::string& key, std::string rendered) {
    for (auto& [k, v] : fields_) {
      if (k == key) {
        v = std::move(rendered);
        return;
      }
    }
    fields_.emplace_back(key, std::move(rendered));
  }

  std::vector<std::pair<std::string, std::string>> fields_;
};

// Collects a bench run's headline scalars plus named row series, and writes
// them to BENCH_<name>.json in the working directory. Every bench calls
// write() on exit so scaling trajectories are diffable across commits.
class BenchJson {
 public:
  explicit BenchJson(std::string name) : name_(std::move(name)) {
    top_.set("bench", name_);
  }

  template <typename T>
  void set(const std::string& key, T v) {
    top_.set(key, v);
  }

  // Appends a row object to the named series (created on first use).
  JsonObj& add_row(const std::string& series) {
    for (auto& [name, rows] : series_)
      if (name == series) return rows.emplace_back();
    series_.emplace_back(series, std::vector<JsonObj>{});
    return series_.back().second.emplace_back();
  }

  // Writes BENCH_<name>.json; returns false (and warns) on I/O failure.
  bool write() const {
    std::string path = "BENCH_";
    path += name_;
    path += ".json";
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "warning: cannot write %s\n", path.c_str());
      return false;
    }
    std::string out = top_.render();
    out.pop_back();  // re-open the top-level object for the series
    for (const auto& [name, rows] : series_) {
      out += ", \"";
      out += name;
      out += "\": [";
      for (std::size_t i = 0; i < rows.size(); ++i) {
        if (i > 0) out += ", ";
        out += rows[i].render();
      }
      out += ']';
    }
    out += "}\n";
    const bool ok = std::fwrite(out.data(), 1, out.size(), f) == out.size();
    std::fclose(f);
    if (ok) std::printf("\nwrote %s\n", path.c_str());
    return ok;
  }

 private:
  std::string name_;
  JsonObj top_;
  std::vector<std::pair<std::string, std::vector<JsonObj>>> series_;
};

// Runs fn(trial_index) for trials in parallel across hardware threads; each
// trial owns its own Simulator/Farm, so this is safe and deterministic per
// (trial, seed).
inline void parallel_trials(std::size_t trials,
                            const std::function<void(std::size_t)>& fn) {
  util::ThreadPool pool;
  pool.parallel_for(trials, fn);
}

inline void print_header(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

inline void print_rule(int width = 78) {
  for (int i = 0; i < width; ++i) std::putchar('-');
  std::putchar('\n');
}

inline std::string fmt_mean_std(const util::Summary& s) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%7.2f ±%5.2f", s.mean, s.stddev);
  return buf;
}

}  // namespace gs::bench
