// E8 — infrastructure micro-benchmarks (google-benchmark): wire codecs,
// CRC, event queue, and fabric delivery. These bound the simulator's own
// overhead so the protocol measurements above are trustworthy.
#include <benchmark/benchmark.h>

#include "gs/messages.h"
#include "net/fabric.h"
#include "sim/event_queue.h"
#include "sim/simulator.h"
#include "wire/checksum.h"
#include "wire/frame.h"

namespace {

gs::proto::MemberInfo member(std::uint8_t host) {
  gs::proto::MemberInfo m;
  m.ip = gs::util::IpAddress(10, 0, 0, host);
  m.mac = gs::util::MacAddress(host);
  m.node = gs::util::NodeId(host);
  return m;
}

void BM_EncodeBeacon(benchmark::State& state) {
  gs::proto::Beacon beacon;
  beacon.self = member(7);
  beacon.is_leader = true;
  beacon.view = 42;
  beacon.group_size = 55;
  for (auto _ : state) {
    auto frame = gs::proto::to_frame(beacon);
    benchmark::DoNotOptimize(frame);
  }
}
BENCHMARK(BM_EncodeBeacon);

void BM_DecodeBeacon(benchmark::State& state) {
  gs::proto::Beacon beacon;
  beacon.self = member(7);
  const auto frame = gs::proto::to_frame(beacon);
  for (auto _ : state) {
    auto decoded = gs::wire::decode_frame(frame);
    auto msg = gs::proto::decode_Beacon(decoded.frame.payload);
    benchmark::DoNotOptimize(msg);
  }
}
BENCHMARK(BM_DecodeBeacon);

void BM_EncodeMembershipReport(benchmark::State& state) {
  gs::proto::MembershipReport rep;
  rep.seq = 1;
  rep.view = 9;
  rep.full = true;
  rep.leader = member(200);
  for (int i = 0; i < state.range(0); ++i)
    rep.added.push_back(member(static_cast<std::uint8_t>(i)));
  for (auto _ : state) {
    auto frame = gs::proto::to_frame(rep);
    benchmark::DoNotOptimize(frame);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_EncodeMembershipReport)->Range(8, 256)->Complexity();

void BM_Crc32c(benchmark::State& state) {
  std::vector<std::uint8_t> data(static_cast<std::size_t>(state.range(0)));
  gs::util::Rng rng(1);
  for (auto& b : data) b = static_cast<std::uint8_t>(rng.next());
  for (auto _ : state) {
    benchmark::DoNotOptimize(gs::wire::crc32c(data));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Crc32c)->Range(64, 65536);

void BM_EventQueuePushPop(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    gs::sim::EventQueue q;
    for (std::size_t i = 0; i < n; ++i)
      q.push(static_cast<gs::sim::SimTime>((i * 7919) % 1000), [] {});
    while (!q.empty()) q.pop();
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_EventQueuePushPop)->Range(64, 16384);

void BM_TimerCancelRearm(benchmark::State& state) {
  // The heartbeat hot path: every arrival cancels and re-arms a deadline.
  gs::sim::Simulator sim;
  gs::sim::Timer timer;
  for (auto _ : state) {
    timer.cancel();
    timer = sim.after(gs::sim::seconds(100), [] {});
  }
}
BENCHMARK(BM_TimerCancelRearm);

void BM_FabricUnicast(benchmark::State& state) {
  gs::sim::Simulator sim;
  gs::net::Fabric fabric(sim, gs::util::Rng(1));
  auto sw = fabric.add_switch(8);
  auto a = fabric.add_adapter(gs::util::NodeId(0));
  auto b = fabric.add_adapter(gs::util::NodeId(1));
  fabric.attach(a, sw, gs::util::VlanId(1));
  fabric.attach(b, sw, gs::util::VlanId(1));
  fabric.set_adapter_ip(a, gs::util::IpAddress(10, 0, 0, 1));
  fabric.set_adapter_ip(b, gs::util::IpAddress(10, 0, 0, 2));
  fabric.adapter(b).set_receive_handler([](const gs::net::Datagram&) {});
  gs::proto::Heartbeat hb;
  hb.view = 1;
  const auto frame = gs::proto::to_frame(hb);
  for (auto _ : state) {
    fabric.send(a, gs::util::IpAddress(10, 0, 0, 2), frame);
    sim.run();
  }
}
BENCHMARK(BM_FabricUnicast);

void BM_FabricMulticastFanout(benchmark::State& state) {
  gs::sim::Simulator sim;
  gs::net::Fabric fabric(sim, gs::util::Rng(1));
  auto sw = fabric.add_switch(1024);
  const auto n = static_cast<std::uint32_t>(state.range(0));
  auto sender = fabric.add_adapter(gs::util::NodeId(0));
  fabric.attach(sender, sw, gs::util::VlanId(1));
  fabric.set_adapter_ip(sender, gs::util::IpAddress(0x0A000001));
  for (std::uint32_t i = 0; i < n; ++i) {
    auto id = fabric.add_adapter(gs::util::NodeId(i + 1));
    fabric.attach(id, sw, gs::util::VlanId(1));
    fabric.set_adapter_ip(id, gs::util::IpAddress(0x0A000002 + i));
    fabric.adapter(id).set_receive_handler([](const gs::net::Datagram&) {});
  }
  gs::proto::Beacon beacon;
  beacon.self = member(1);
  const auto frame = gs::proto::to_frame(beacon);
  for (auto _ : state) {
    fabric.multicast(sender, gs::net::kBeaconGroup, frame);
    sim.run();
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_FabricMulticastFanout)->Range(8, 512);

}  // namespace

BENCHMARK_MAIN();
