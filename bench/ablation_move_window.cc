// E9 (ablation) — sizing GulfStream Central's move-inference window.
//
// The window is this design's one genuinely new knob (the paper describes
// the inference but not its timing), so we ablate it: Central holds each
// failure notification for `move_window` hoping a rejoin reveals a domain
// move (§3.1). Too short and operator moves surface as spurious deaths; the
// cost of longer windows is a delayed failure notification for adapters
// that really died. This bench sweeps the window and reports both sides of
// the trade-off, locating the knee.
#include <cstdio>

#include "bench/bench_common.h"
#include "farm/farm.h"
#include "farm/scenario.h"
#include "util/flags.h"

namespace {

using gs::proto::FarmEvent;

gs::proto::Params base_params(double window_s) {
  gs::proto::Params p;
  p.beacon_phase = gs::sim::seconds(2);
  p.amg_stable_wait = gs::sim::seconds(1);
  p.gsc_stable_wait = gs::sim::seconds(3);
  p.move_window = gs::sim::seconds(window_s);
  return p;
}

// Unexpected operator move: was it inferred as a move (good) or reported as
// an adapter failure (bad)?
struct MoveOutcome {
  bool inferred_as_move = false;
  bool reported_as_death = false;
};

MoveOutcome run_move(double window_s, std::uint64_t seed) {
  gs::sim::Simulator sim;
  gs::farm::Farm farm(sim, gs::farm::FarmSpec::oceano(2, 3, 3),
                      base_params(window_s), seed);
  gs::proto::EventLog events(farm.event_bus());
  farm.start();
  if (!gs::farm::run_until_gsc_stable(farm, gs::sim::seconds(180))) return {};
  events.clear();

  const auto backs = farm.nodes_with_role(gs::farm::NodeRole::kBackEnd);
  std::size_t victim = SIZE_MAX;
  for (std::size_t idx : backs)
    if (farm.domain_of(idx) == gs::util::DomainId(0)) victim = idx;
  const gs::util::AdapterId moved = farm.node_adapters(victim)[1];
  const gs::util::IpAddress ip = farm.fabric().adapter(moved).ip();
  const auto& adapter = farm.fabric().adapter(moved);
  farm.fabric().set_port_vlan(adapter.attached_switch(),
                              adapter.attached_port(),
                              gs::farm::internal_vlan(1));

  sim.run_until(sim.now() + gs::sim::seconds(90 + 2 * window_s));
  MoveOutcome out;
  for (const FarmEvent& e : events) {
    if (e.kind == FarmEvent::Kind::kUnexpectedMove && e.ip == ip)
      out.inferred_as_move = true;
    if (e.kind == FarmEvent::Kind::kAdapterFailed && e.ip == ip)
      out.reported_as_death = true;
  }
  return out;
}

// True death: how long from NIC failure to the external AdapterFailed?
double run_death(double window_s, std::uint64_t seed) {
  gs::sim::Simulator sim;
  gs::farm::Farm farm(sim, gs::farm::FarmSpec::uniform(8, 2),
                      base_params(window_s), seed);
  gs::proto::EventLog events(farm.event_bus());
  farm.start();
  if (!gs::farm::run_until_gsc_stable(farm, gs::sim::seconds(120))) return -1;
  events.clear();

  const gs::util::AdapterId victim = farm.node_adapters(3)[1];
  const gs::util::IpAddress ip = farm.fabric().adapter(victim).ip();
  const gs::sim::SimTime death = sim.now();
  farm.fabric().set_adapter_health(victim, gs::net::HealthState::kDown);

  auto reported = gs::farm::run_until(
      sim, death + gs::sim::seconds(120 + 2 * window_s), [&] {
        for (const FarmEvent& e : events)
          if (e.kind == FarmEvent::Kind::kAdapterFailed && e.ip == ip)
            return true;
        return false;
      });
  if (!reported) return -1;
  return gs::sim::to_seconds(*reported - death);
}

}  // namespace

int main(int argc, char** argv) {
  gs::util::Flags flags;
  if (!flags.parse(argc, argv)) return 1;
  const int trials = static_cast<int>(flags.get_int("trials", 5, "seeds"));
  if (flags.help_requested()) {
    flags.print_usage();
    return 0;
  }

  const std::vector<double> windows = {0.5, 2.0, 5.0, 10.0, 20.0};

  gs::bench::print_header(
      "Ablation — GSC move-inference window (Section 3.1)");
  std::printf("%10s %26s %26s\n", "window", "unexpected move inferred",
              "true-death notify latency");
  std::printf("%10s %13s %12s %26s\n", "", "as move", "as death", "");
  gs::bench::print_rule(66);

  gs::bench::BenchJson json("ablation_move_window");
  json.set("trials", trials);
  for (double window : windows) {
    int moves = 0, deaths = 0;
    std::vector<MoveOutcome> outcomes(static_cast<std::size_t>(trials));
    gs::bench::parallel_trials(outcomes.size(), [&](std::size_t i) {
      outcomes[i] = run_move(window, 500 + i);
    });
    for (const MoveOutcome& o : outcomes) {
      if (o.inferred_as_move) ++moves;
      if (o.reported_as_death) ++deaths;
    }

    std::vector<double> latencies(static_cast<std::size_t>(trials), -1);
    gs::bench::parallel_trials(latencies.size(), [&](std::size_t i) {
      latencies[i] = run_death(window, 600 + i);
    });
    std::erase(latencies, -1.0);
    const auto s = gs::util::Summary::of(latencies);
    std::printf("%9.1fs %10d/%-2d %9d/%-2d %20.2f ±%.2fs\n", window, moves,
                trials, deaths, trials, s.mean, s.stddev);
    auto& row = json.add_row("windows");
    row.set("window_s", window);
    row.set("moves_inferred", moves);
    row.set("moves_as_death", deaths);
    row.set("death_notify_mean_s", s.mean);
    row.set("death_notify_stddev_s", s.stddev);
  }

  std::printf(
      "\nExpected shape: below the ~3-6s it takes a moved adapter to reset,\n"
      "beacon, and resurface in its destination AMG, the window is too short\n"
      "and operator moves leak out as spurious deaths; above it every move\n"
      "is inferred. True-death latency = detection + recommit + report +\n"
      "window, i.e. grows linearly with the window — pick the knee.\n");
  json.write();
  return 0;
}
