// E10 — flat vs hierarchical Central scaling (two-level hierarchy PR).
//
// The flat design funnels every AMG leader's report into ONE Central: at
// 4096 VLANs the top coordinator handles 4096 frames per churn wave. The
// two-level hierarchy (gs/central_hier.h) keeps a plain Central per domain
// and batches each domain's table changes into compressed DomainReport
// digests — many changes per frame — so the root GSC's frame load scales
// with the DOMAIN count, not the VLAN count.
//
// Both tiers are driven object-level (no fabric, no daemons): synthetic
// leaders feed MembershipReports straight into the Central(s), uplinks are
// wired to the RootCentral through a direct-call Iface, and the simulator
// clock advances between churn waves so batch/lease timers fire. Measured
// per size, identical workload on both sides:
//
//   top-tier throughput   membership changes conveyed per frame the top
//                         coordinator processes (flat: leader reports at
//                         the one Central; hier: digests at the root).
//                         speedup = hier / flat; --min_speedup turns a
//                         regression into a nonzero exit.
//   death propagation     sim-time from a member death to the top tier
//                         recording it dead, under a fixed 2s detection
//                         model plus 1ms per frame hop. The hierarchy pays
//                         one batch window extra; --max_death_ratio (2.0)
//                         gates hier staying within that bound of flat.
//   ingest wall clock     wall seconds to drive the whole schedule, as
//                         reports/s (informational — the object-level cost,
//                         dominated by table updates on both sides).
//
// Results additionally go to BENCH_central_scale.json (see bench_common.h).
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <vector>

#include "bench/bench_common.h"
#include "gs/central.h"
#include "gs/central_hier.h"
#include "gs/messages.h"
#include "gs/params.h"
#include "sim/simulator.h"
#include "util/flags.h"
#include "util/ip.h"

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

constexpr std::uint32_t kMembers = 4;           // adapters per VLAN
constexpr std::uint32_t kVlansPerDomain = 64;   // domain fan-in
const gs::sim::SimDuration kDetect = gs::sim::seconds(2);   // leader notices
const gs::sim::SimDuration kDeliver = gs::sim::milliseconds(1);  // per hop

gs::util::IpAddress member_ip(std::uint32_t vlan, std::uint32_t host) {
  return gs::util::IpAddress(0x0A000000u | (vlan << 12) | host);
}

gs::proto::MemberInfo member(std::uint32_t vlan, std::uint32_t host) {
  gs::proto::MemberInfo m;
  m.ip = member_ip(vlan, host);
  m.node = gs::util::NodeId(vlan * (kMembers + 1) + host);
  return m;
}

// The leader is the highest host; its full report establishes the group.
gs::proto::MembershipReport full_report(std::uint32_t vlan) {
  gs::proto::MembershipReport rep;
  rep.seq = 1;
  rep.view = 1;
  rep.full = true;
  rep.leader = member(vlan, kMembers);
  for (std::uint32_t h = 1; h <= kMembers; ++h)
    rep.added.push_back(member(vlan, h));
  return rep;
}

gs::proto::MembershipReport delta_report(std::uint32_t vlan,
                                         std::uint64_t seq,
                                         std::uint32_t host, bool add) {
  gs::proto::MembershipReport rep;
  rep.seq = seq;
  rep.view = 1;
  rep.full = false;
  rep.leader = member(vlan, kMembers);
  if (add)
    rep.added.push_back(member(vlan, host));
  else
    rep.removed.push_back(
        {member_ip(vlan, host), gs::proto::RemoveReason::kFailed});
  return rep;
}

struct RunResult {
  bool ok = false;
  double wall_s = 0;
  std::uint64_t top_frames = 0;   // frames the top coordinator processed
  std::uint64_t changes = 0;      // membership changes conveyed to it
  double death_ms = 0;            // fault to top-tier dead verdict
};

// One flat Central ingesting every leader's reports directly. `rounds` must
// be even so the churned member ends the schedule alive.
RunResult run_flat(std::uint32_t vlans, int rounds) {
  gs::sim::Simulator sim;
  gs::proto::Params params;
  gs::proto::Central central(sim, params, nullptr, nullptr);
  central.activate(gs::util::IpAddress(10, 255, 0, 1));
  const auto no_ack = [](const gs::proto::ReportAck&) {};

  RunResult out;
  const Clock::time_point start = Clock::now();
  for (std::uint32_t v = 0; v < vlans; ++v)
    central.handle_report(member_ip(v, kMembers), full_report(v), no_ack);
  out.changes += vlans * kMembers;
  std::vector<std::uint64_t> seq(vlans, 1);
  for (int r = 0; r < rounds; ++r) {
    sim.run_until(sim.now() + gs::sim::seconds(1));
    const bool add = (r % 2) != 0;  // kill host 1, then revive it
    for (std::uint32_t v = 0; v < vlans; ++v)
      central.handle_report(member_ip(v, kMembers),
                            delta_report(v, ++seq[v], 1, add), no_ack);
    out.changes += vlans;
  }

  // Death propagation: host 2 of VLAN 0 dies; the leader notices after
  // kDetect and its delta reaches the Central one frame hop later.
  sim.run_until(sim.now() + kDetect);
  central.handle_report(member_ip(0, kMembers),
                        delta_report(0, ++seq[0], 2, false), no_ack);
  out.changes += 1;
  out.death_ms = gs::sim::to_seconds(kDetect + kDeliver) * 1e3;
  out.wall_s = seconds_since(start);

  out.top_frames = central.reports_received();
  const auto victim = central.adapter_status(member_ip(0, 2));
  const auto survivor = central.adapter_status(member_ip(0, 1));
  out.ok = victim.has_value() && !victim->alive && survivor.has_value() &&
           survivor->alive;
  return out;
}

// Per-domain Centrals ingest the same leader reports; DomainUplinks batch
// the resulting table changes into digests for one RootCentral.
RunResult run_hier(std::uint32_t vlans, int rounds) {
  const std::uint32_t domains = std::max(1u, vlans / kVlansPerDomain);
  gs::sim::Simulator sim;
  gs::proto::Params params;
  gs::proto::RootCentral root(sim, params);
  root.activate(gs::util::IpAddress(10, 255, 0, 1));

  std::vector<std::unique_ptr<gs::proto::Central>> centrals;
  std::vector<std::unique_ptr<gs::proto::DomainUplink>> uplinks;
  uplinks.reserve(domains);
  for (std::uint32_t d = 0; d < domains; ++d) {
    centrals.push_back(
        std::make_unique<gs::proto::Central>(sim, params, nullptr, nullptr));
    gs::proto::DomainUplink::Iface iface;
    iface.send = [&root, &uplinks, d](const gs::proto::DomainReport& rep) {
      root.handle_domain_report(
          rep.sender, rep, [&uplinks, d](const gs::proto::DomainReportAck& a) {
            uplinks[d]->handle_ack(a);
          });
    };
    iface.root_ip = [&root] { return root.self_ip(); };
    uplinks.push_back(std::make_unique<gs::proto::DomainUplink>(
        sim, params, *centrals[d], d,
        gs::util::IpAddress(0x0AFE0000u | d), iface));
    centrals[d]->activate(gs::util::IpAddress(0x0AFF0000u | d));
  }
  const auto no_ack = [](const gs::proto::ReportAck&) {};
  const auto central_of = [&](std::uint32_t vlan) -> gs::proto::Central& {
    return *centrals[vlan / kVlansPerDomain];
  };

  RunResult out;
  const Clock::time_point start = Clock::now();
  for (std::uint32_t v = 0; v < vlans; ++v)
    central_of(v).handle_report(member_ip(v, kMembers), full_report(v),
                                no_ack);
  out.changes += vlans * kMembers;
  std::vector<std::uint64_t> seq(vlans, 1);
  for (int r = 0; r < rounds; ++r) {
    sim.run_until(sim.now() + gs::sim::seconds(1));  // batch windows flush
    const bool add = (r % 2) != 0;
    for (std::uint32_t v = 0; v < vlans; ++v)
      central_of(v).handle_report(member_ip(v, kMembers),
                                  delta_report(v, ++seq[v], 1, add), no_ack);
    out.changes += vlans;
  }
  sim.run_until(sim.now() + gs::sim::seconds(1));  // final flush

  // Death propagation: same event, but the verdict must cross the batch
  // window and one extra frame hop before the ROOT records it.
  const gs::sim::SimTime fault_at = sim.now();
  sim.run_until(fault_at + kDetect);
  centrals[0]->handle_report(member_ip(0, kMembers),
                             delta_report(0, ++seq[0], 2, false), no_ack);
  out.changes += 1;
  const gs::util::IpAddress victim_ip = member_ip(0, 2);
  const auto root_sees_dead = [&] {
    const auto st = root.adapter_status(victim_ip);
    return st.has_value() && !st->alive;
  };
  const gs::sim::SimTime deadline = sim.now() + gs::sim::seconds(30);
  while (!root_sees_dead() && sim.now() < deadline)
    sim.run_until(sim.now() + gs::sim::milliseconds(1));
  out.death_ms =
      gs::sim::to_seconds(sim.now() - fault_at + 2 * kDeliver) * 1e3;
  out.wall_s = seconds_since(start);

  out.top_frames = root.reports_received();
  const auto survivor = root.adapter_status(member_ip(0, 1));
  out.ok = root_sees_dead() && survivor.has_value() && survivor->alive &&
           root.domain_count() == domains &&
           root.alive_adapter_count() ==
               static_cast<std::size_t>(vlans) * kMembers - 1;
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  gs::util::Flags flags;
  if (!flags.parse(argc, argv)) return 1;
  const bool smoke = flags.get_bool(
      "smoke", false, "one 256-VLAN size only (CI release-job gate)");
  const int rounds = static_cast<int>(
      flags.get_int("rounds", 4, "churn waves per run (kept even)"));
  const double min_speedup = flags.get_double(
      "min_speedup", 2.0,
      "exit nonzero if hier/flat top-tier throughput falls below this");
  const double max_death_ratio = flags.get_double(
      "max_death_ratio", 2.0,
      "exit nonzero if hier/flat death propagation exceeds this");
  if (flags.help_requested()) {
    flags.print_usage();
    return 0;
  }

  const std::vector<std::uint32_t> sizes =
      smoke ? std::vector<std::uint32_t>{256}
            : std::vector<std::uint32_t>{64, 256, 1024, 4096};

  gs::bench::print_header(
      "Central scaling — flat vs two-level hierarchy (top-tier frame load)");
  std::printf("%u members/VLAN, %u VLANs/domain, %d churn waves\n\n",
              kMembers, kVlansPerDomain, rounds);
  std::printf("%6s %9s %8s %12s %12s %8s %16s %7s\n", "vlans", "adapters",
              "domains", "flat frames", "hier frames", "speedup",
              "death ms (f/h)", "ratio");
  gs::bench::print_rule();

  gs::bench::BenchJson json("central_scale");
  json.set("members_per_vlan", std::uint64_t{kMembers});
  json.set("vlans_per_domain", std::uint64_t{kVlansPerDomain});
  json.set("rounds", rounds);
  json.set("smoke", smoke);

  bool all_ok = true;
  double gated_speedup = 0;
  double gated_death_ratio = 0;
  for (std::uint32_t vlans : sizes) {
    const RunResult flat = run_flat(vlans, rounds);
    const RunResult hier = run_hier(vlans, rounds);
    // Identical change workload both sides, so the changes-per-frame ratio
    // reduces to the frame-count ratio.
    const double speedup =
        hier.top_frames > 0 ? static_cast<double>(flat.top_frames) /
                                  static_cast<double>(hier.top_frames)
                            : 0.0;
    const double death_ratio =
        flat.death_ms > 0 ? hier.death_ms / flat.death_ms : 0.0;
    const std::uint32_t domains = std::max(1u, vlans / kVlansPerDomain);
    std::printf("%6u %9u %8u %12llu %12llu %7.1fx %8.0f / %-6.0f %6.2fx%s\n",
                vlans, vlans * kMembers, domains,
                static_cast<unsigned long long>(flat.top_frames),
                static_cast<unsigned long long>(hier.top_frames), speedup,
                flat.death_ms, hier.death_ms, death_ratio,
                flat.ok && hier.ok ? "" : "  [INVALID]");
    auto& row = json.add_row("sizes");
    row.set("vlans", std::uint64_t{vlans});
    row.set("adapters", std::uint64_t{vlans} * kMembers);
    row.set("domains", std::uint64_t{domains});
    row.set("flat_top_frames", flat.top_frames);
    row.set("hier_top_frames", hier.top_frames);
    row.set("throughput_speedup", speedup);
    row.set("flat_death_ms", flat.death_ms);
    row.set("hier_death_ms", hier.death_ms);
    row.set("death_ratio", death_ratio);
    row.set("flat_ingest_per_s",
            flat.wall_s > 0
                ? static_cast<double>(flat.changes) / flat.wall_s
                : 0.0);
    row.set("hier_ingest_per_s",
            hier.wall_s > 0
                ? static_cast<double>(hier.changes) / hier.wall_s
                : 0.0);
    row.set("ok", flat.ok && hier.ok);
    all_ok = all_ok && flat.ok && hier.ok;
    gated_speedup = speedup;          // the gate judges the largest size run
    gated_death_ratio = death_ratio;
  }

  std::printf(
      "\nframes = what the top coordinator processed for the SAME workload:\n"
      "the hierarchy conveys a whole domain's churn wave in one digest, so\n"
      "its top-tier load scales with domains, not VLANs, while a death\n"
      "verdict pays at most one extra batch window on the way up.\n");
  json.set("throughput_speedup", gated_speedup);
  json.set("death_ratio", gated_death_ratio);
  json.set("ok", all_ok);
  json.write();

  if (!all_ok) {
    std::fprintf(stderr, "\nFAIL: a run ended with wrong top-tier tables\n");
    return 1;
  }
  if (gated_speedup < min_speedup) {
    std::fprintf(stderr,
                 "\nFAIL: top-tier throughput speedup %.2fx below the "
                 "--min_speedup=%.2f floor\n",
                 gated_speedup, min_speedup);
    return 1;
  }
  if (gated_death_ratio > max_death_ratio) {
    std::fprintf(stderr,
                 "\nFAIL: death propagation ratio %.2fx above the "
                 "--max_death_ratio=%.2f ceiling\n",
                 gated_death_ratio, max_death_ratio);
    return 1;
  }
  return 0;
}
