// Partition and heal: split the administrative segment so two GulfStream
// Centrals coexist (one per island, §2.2's partition discussion), then heal
// the segment and watch the AMGs merge under the highest-IP leader and the
// losing Central stand down.
//
//   ./partition_heal
#include <cstdio>

#include "farm/farm.h"
#include "farm/scenario.h"
#include "util/flags.h"

namespace {

void show_admin_groups(gs::farm::Farm& farm) {
  const gs::util::VlanId admin = gs::farm::admin_vlan();
  std::printf("  admin AMGs:");
  std::map<gs::util::IpAddress, std::size_t> leaders;
  for (gs::util::AdapterId id : farm.fabric().adapters_in_vlan(admin)) {
    gs::proto::AdapterProtocol* proto = farm.protocol_for(id);
    if (proto != nullptr && proto->is_committed())
      leaders[proto->leader_ip()]++;
  }
  for (const auto& [leader, count] : leaders)
    std::printf("  [leader %s: %zu members]", leader.to_string().c_str(),
                count);
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  gs::util::Flags flags;
  if (!flags.parse(argc, argv)) return 1;
  const int nodes = static_cast<int>(flags.get_int("nodes", 10, "farm size"));
  if (flags.help_requested()) {
    flags.print_usage();
    return 0;
  }

  gs::sim::Simulator sim;
  gs::proto::Params params;
  params.beacon_phase = gs::sim::seconds(3);
  params.amg_stable_wait = gs::sim::seconds(1);
  params.gsc_stable_wait = gs::sim::seconds(4);

  gs::farm::Farm farm(sim, gs::farm::FarmSpec::uniform(nodes, 2), params, 3);
  farm.start();
  std::printf("Stabilizing %d nodes...\n", nodes);
  if (!gs::farm::run_until_gsc_stable(farm, gs::sim::seconds(300))) return 1;
  show_admin_groups(farm);
  std::printf("  GSC: %s\n",
              farm.active_central()->self_ip().to_string().c_str());

  // Split the admin VLAN down the middle.
  const gs::util::VlanId admin = gs::farm::admin_vlan();
  auto adapters = farm.fabric().adapters_in_vlan(admin);
  std::vector<gs::util::AdapterId> left(adapters.begin(),
                                        adapters.begin() + nodes / 2);
  std::vector<gs::util::AdapterId> right(adapters.begin() + nodes / 2,
                                         adapters.end());
  std::printf("\n== t=%.0fs: the administrative segment partitions "
              "(%zu | %zu) ==\n",
              gs::sim::to_seconds(sim.now()), left.size(), right.size());
  farm.fabric().partition_vlan(admin, {left, right});

  // Wait for both sides to settle into their own AMGs.
  gs::farm::run_until(sim, sim.now() + gs::sim::seconds(120), [&] {
    std::set<gs::util::IpAddress> leaders;
    for (gs::util::AdapterId id : adapters) {
      gs::proto::AdapterProtocol* proto = farm.protocol_for(id);
      if (proto == nullptr || !proto->is_committed()) return false;
      leaders.insert(proto->leader_ip());
    }
    return leaders.size() == 2;
  });
  show_admin_groups(farm);

  std::size_t active = 0;
  for (std::size_t i = 0; i < farm.node_count(); ++i) {
    gs::proto::Central* c = farm.daemon(i).central();
    if (c != nullptr && c->active()) {
      ++active;
      std::printf("  active Central on %s covering %zu adapters\n",
                  c->self_ip().to_string().c_str(),
                  c->known_adapter_count());
    }
  }
  std::printf("  (%zu Centrals active — one per island; only one can reach\n"
              "   the database and switch consoles, §2.2)\n", active);

  std::printf("\n== t=%.0fs: the partition heals ==\n",
              gs::sim::to_seconds(sim.now()));
  farm.fabric().heal_vlan(admin);
  auto merged =
      gs::farm::run_until_converged(farm, sim.now() + gs::sim::seconds(180));
  show_admin_groups(farm);
  if (!merged) {
    std::printf("groups never merged!\n");
    return 1;
  }
  std::printf("  merged at t=%.2fs; GSC: %s (the losing Central stood "
              "down)\n",
              gs::sim::to_seconds(*merged),
              farm.active_central()->self_ip().to_string().c_str());
  return 0;
}
