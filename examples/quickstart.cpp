// Quickstart: build a small multi-domain farm, run GulfStream discovery,
// and print what GulfStream Central learned about the topology.
//
//   ./quickstart [--nodes=...] [--domains=...] [--verbose]
#include <cstdio>

#include "farm/farm.h"
#include "farm/scenario.h"
#include "util/flags.h"
#include "util/logging.h"

int main(int argc, char** argv) {
  gs::util::Flags flags;
  if (!flags.parse(argc, argv)) return 1;
  const int domains = static_cast<int>(flags.get_int("domains", 2,
                                                     "customer domains"));
  const int fronts = static_cast<int>(flags.get_int("fronts", 2,
                                                    "front ends per domain"));
  const int backs = static_cast<int>(flags.get_int("backs", 2,
                                                   "back ends per domain"));
  const bool verbose = flags.get_bool("verbose", false, "protocol trace");
  if (flags.help_requested()) {
    flags.print_usage();
    return 0;
  }

  gs::sim::Simulator sim;
  sim.install_log_clock();
  gs::util::Logger::instance().set_level(verbose ? gs::util::LogLevel::kDebug
                                                 : gs::util::LogLevel::kWarn);

  // The paper's defaults: T_b=5s, T_AMG=5s, T_GSC=15s.
  gs::proto::Params params;

  std::printf("Building an Oceano-style farm: %d domains x (%d front + %d "
              "back), 2 dispatchers, 2 management nodes...\n",
              domains, fronts, backs);
  gs::farm::Farm farm(sim, gs::farm::FarmSpec::oceano(domains, fronts, backs),
                      params, /*seed=*/2001);

  // Subscribe to GulfStream Central's event stream.
  std::printf("\n-- farm events --------------------------------------\n");
  farm.start();

  auto stable = gs::farm::run_until_gsc_stable(farm, gs::sim::seconds(300));
  for (const gs::proto::FarmEvent& event : farm.events())
    std::printf("  t=%6.2fs  %s\n", gs::sim::to_seconds(event.time),
                std::string(to_string(event.kind)).c_str());

  if (!stable) {
    std::printf("GulfStream Central never declared stability!\n");
    return 1;
  }
  std::printf("\nInitial topology stable at t=%.2fs "
              "(T_b + T_AMG + T_GSC + delta, Equation 1)\n",
              gs::sim::to_seconds(*stable));

  gs::proto::Central* central = farm.active_central();
  std::printf("\n-- discovered topology (GulfStream Central's view) ----\n");
  std::printf("GSC: %s  |  %zu adapters across %zu adapter membership "
              "groups\n\n",
              central->self_ip().to_string().c_str(),
              central->known_adapter_count(), central->groups().size());
  for (const auto& group : central->groups()) {
    std::printf("  AMG led by %-14s (view %llu, %zu members):\n",
                group.leader.ip.to_string().c_str(),
                static_cast<unsigned long long>(group.view),
                group.members.size());
    for (gs::util::IpAddress ip : group.members) {
      const auto rec = farm.db().adapter_by_ip(ip);
      std::printf("    %-14s %s\n", ip.to_string().c_str(),
                  rec ? farm.db().node(rec->node)->name.c_str() : "?");
    }
  }

  const auto findings = central->verify_now();
  std::printf("\nConfiguration-database verification: %zu inconsistencies\n",
              findings.size());
  for (const auto& finding : findings)
    std::printf("  [%s] %s\n", std::string(to_string(finding.kind)).c_str(),
                finding.detail.c_str());
  return 0;
}
