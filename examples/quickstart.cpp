// Quickstart: build a small multi-domain farm, run GulfStream discovery,
// and print what GulfStream Central learned about the topology.
//
//   ./quickstart [--nodes=...] [--domains=...] [--verbose]
//                [--trace=out.jsonl] [--metrics=out.prom]
//   ./quickstart --real [--real-nodes=8]
//
// With --trace=PATH every protocol trace record (beacon, election, 2PC,
// reports, ...) is streamed to PATH as JSON Lines while the run progresses.
// With --metrics=PATH the latency observatory is attached (span tracking +
// periodic health sampling), one adapter failure is injected after the farm
// stabilizes so a detection span closes end to end, and the final metrics
// registry is written as Prometheus text to PATH and as JSON to PATH.json.
//
// With --real the same unmodified daemons run over the real-transport
// backend instead of the simulator: N real UDP endpoints on loopback
// (wall-clock timers, epoll event loop), converging membership for real,
// then one daemon is killed and the span-measured detection latency
// printed.
#include <cstdio>

#include "farm/farm.h"
#include "farm/realnet.h"
#include "farm/scenario.h"
#include "obs/expo.h"
#include "obs/jsonl_sink.h"
#include "obs/spans.h"
#include "util/flags.h"
#include "util/logging.h"

namespace {

// Wall-clock timescale for the real backend: the paper's multi-second
// timers make a demo (and the CI smoke job) crawl, so everything shrinks
// ~5-10x while keeping the same ratios. Equation 1 still holds, just in
// faster units.
gs::proto::Params real_params() {
  gs::proto::Params p;
  p.beacon_phase = gs::sim::seconds(1);
  p.beacon_interval = gs::sim::milliseconds(250);
  p.defer_timeout = gs::sim::milliseconds(800);
  p.join_retry = gs::sim::milliseconds(400);
  p.change_debounce = gs::sim::milliseconds(100);
  p.twopc_timeout = gs::sim::milliseconds(400);
  p.hb_period = gs::sim::milliseconds(200);
  p.probe_timeout = gs::sim::milliseconds(200);
  p.suspect_retry = gs::sim::milliseconds(250);
  p.amg_stable_wait = gs::sim::milliseconds(800);
  p.gsc_stable_wait = gs::sim::seconds(2);
  p.report_retry = gs::sim::milliseconds(500);
  p.report_refresh = gs::sim::seconds(2);
  p.group_lease = gs::sim::seconds(5);
  p.move_window = gs::sim::seconds(2);
  p.start_skew_max = gs::sim::milliseconds(200);
  p.beacon_setup_min = gs::sim::milliseconds(100);
  p.beacon_setup_max = gs::sim::milliseconds(200);
  p.proc_delay_mean = 0;  // the host provides real scheduling delay
  return p;
}

int run_real(int nodes) {
  std::printf("Booting %d real GulfStream daemons over loopback UDP...\n",
              nodes);
  gs::farm::RealFarm::Options opts;
  opts.params = real_params();
  gs::farm::RealFarm farm(std::move(opts));
  farm.clock().install_log_clock();

  gs::util::StatsRegistry metrics;
  gs::obs::SpanTracker spans(farm.trace_bus(), &metrics);

  const gs::util::VlanId vlan(1);
  for (int n = 0; n < nodes; ++n) {
    gs::farm::RealFarm::NodeSpec spec;
    spec.name = "real-" + std::to_string(n);
    spec.central_eligible = true;
    gs::net::UdpTransport::PortSpec port;
    port.ip = gs::util::IpAddress(10, 1, 0, static_cast<std::uint8_t>(101 + n));
    port.mac = gs::util::MacAddress(static_cast<std::uint64_t>(1 + n));
    port.vlan = vlan;
    spec.ports.push_back(port);
    const std::size_t index = farm.add_node(std::move(spec));
    std::printf("  %-8s gs-ip %-12s -> udp 127.0.0.1:%u\n",
                farm.daemon(index).config().name.c_str(),
                port.ip.to_string().c_str(),
                farm.udp_transport(index)->udp_port(0));
  }

  farm.start();
  const bool formed = farm.run_until(gs::sim::seconds(30), [&] {
    gs::proto::Central* central = farm.active_central();
    return farm.converged() && central != nullptr &&
           central->known_adapter_count() == static_cast<std::size_t>(nodes);
  });
  if (!formed) {
    std::printf("membership never converged over UDP!\n");
    return 1;
  }
  gs::proto::Central* central = farm.active_central();
  std::printf("\nconverged at t=%.2fs (wall): %zu adapters in %zu group(s), "
              "GSC at %s\n",
              gs::sim::to_seconds(farm.clock().now()),
              central->known_adapter_count(), central->groups().size(),
              central->self_ip().to_string().c_str());

  // Kill the lowest-IP daemon: never the leader/GSC, so detection flows
  // member -> leader -> Central like a real mid-farm crash.
  const std::size_t victim = 0;
  std::printf("\nkilling %s (closing its sockets)...\n",
              farm.daemon(victim).config().name.c_str());
  farm.kill_node(victim);

  const bool detected = farm.run_until(gs::sim::seconds(30), [&] {
    const gs::util::Histogram* h = metrics.find_histogram("span.detection_us");
    return h != nullptr && h->count() >= 1 && farm.converged();
  });
  const gs::util::Histogram* h = metrics.find_histogram("span.detection_us");
  if (!detected || h == nullptr || h->count() < 1) {
    std::printf("detection span never closed!\n");
    return 1;
  }
  std::printf("survivors reconverged; detection span count=%llu: socket "
              "close -> Central commit in %.3fs (includes the %.1fs "
              "move-inference hold)\n",
              static_cast<unsigned long long>(h->count()), h->mean() / 1e6,
              gs::sim::to_seconds(farm.params().move_window));
  std::printf("real-transport run OK\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  gs::util::Flags flags;
  if (!flags.parse(argc, argv)) return 1;
  const int domains = static_cast<int>(flags.get_int("domains", 2,
                                                     "customer domains"));
  const int fronts = static_cast<int>(flags.get_int("fronts", 2,
                                                    "front ends per domain"));
  const int backs = static_cast<int>(flags.get_int("backs", 2,
                                                   "back ends per domain"));
  const bool verbose = flags.get_bool("verbose", false, "protocol trace");
  const std::string trace_path =
      flags.get_string("trace", "", "stream protocol trace records to this "
                                    "JSONL file");
  const std::string metrics_path = flags.get_string(
      "metrics", "", "write final metrics as Prometheus text to this file "
                     "(and JSON to <file>.json); injects one adapter failure "
                     "so a detection span completes");
  const bool real = flags.get_bool(
      "real", false, "run over the real UDP transport on loopback instead "
                     "of the simulator: converge, kill one daemon, measure "
                     "the detection span on the wall clock");
  const int real_nodes = static_cast<int>(
      flags.get_int("real-nodes", 8, "daemons to boot with --real"));
  if (flags.help_requested()) {
    flags.print_usage();
    return 0;
  }

  gs::util::Logger::instance().set_level(verbose ? gs::util::LogLevel::kDebug
                                                 : gs::util::LogLevel::kWarn);
  if (real) return run_real(real_nodes);

  gs::sim::Simulator sim;
  sim.install_log_clock();
  gs::util::Logger::instance().set_level(verbose ? gs::util::LogLevel::kDebug
                                                 : gs::util::LogLevel::kWarn);

  // The paper's defaults: T_b=5s, T_AMG=5s, T_GSC=15s.
  gs::proto::Params params;

  std::printf("Building an Oceano-style farm: %d domains x (%d front + %d "
              "back), 2 dispatchers, 2 management nodes...\n",
              domains, fronts, backs);
  gs::farm::Farm farm(sim, gs::farm::FarmSpec::oceano(domains, fronts, backs),
                      params, /*seed=*/2001);

  // Subscribe to the farm-wide telemetry buses: a chronological event log,
  // a phase-transition summary, and (optionally) a streaming JSONL sink.
  gs::proto::EventLog events(farm.event_bus());
  gs::obs::Recorder<gs::obs::TraceRecord> phases(farm.trace_bus(),
                                                 gs::obs::kPhaseMask);
  gs::obs::JsonlSink sink;
  gs::obs::Subscription tap;
  if (!trace_path.empty()) {
    if (!sink.open(trace_path)) {
      std::fprintf(stderr, "cannot open %s for writing\n",
                   trace_path.c_str());
      return 1;
    }
    tap = sink.tap(farm.trace_bus());
    farm.fabric().enable_load_sampling(gs::sim::seconds(5));
  }
  gs::obs::SpanTracker* spans = nullptr;
  if (!metrics_path.empty()) {
    spans = &farm.enable_span_tracking();
    farm.enable_health_sampling(gs::sim::seconds(5));
  }

  std::printf("\n-- farm events --------------------------------------\n");
  farm.start();

  auto stable = gs::farm::run_until_gsc_stable(farm, gs::sim::seconds(300));
  for (const gs::proto::FarmEvent& event : events)
    std::printf("  t=%6.2fs  %s\n", gs::sim::to_seconds(event.time),
                std::string(to_string(event.kind)).c_str());

  if (!stable) {
    std::printf("GulfStream Central never declared stability!\n");
    return 1;
  }
  std::printf("\nInitial topology stable at t=%.2fs "
              "(T_b + T_AMG + T_GSC + delta, Equation 1)\n",
              gs::sim::to_seconds(*stable));

  // The protocol storyline that led there: beacon -> election -> 2PC
  // commit -> views installed -> stable.
  std::printf("\n-- protocol phases (from the trace bus) ---------------\n");
  using gs::obs::TraceKind;
  const TraceKind story[] = {TraceKind::kBeaconSent, TraceKind::kBeaconHeard,
                             TraceKind::kElectionDeferred,
                             TraceKind::kElectionWon, TraceKind::kTwoPcPrepare,
                             TraceKind::kTwoPcCommit,
                             TraceKind::kViewInstalled};
  for (TraceKind kind : story) {
    gs::sim::SimTime first = -1;
    for (const gs::obs::TraceRecord& r : phases) {
      if (r.kind == kind) {
        first = r.time;
        break;
      }
    }
    if (first < 0) continue;
    std::printf("  %-18s x%-5zu first at t=%6.2fs\n",
                std::string(to_string(kind)).c_str(), phases.count(kind),
                gs::sim::to_seconds(first));
  }

  gs::proto::Central* central = farm.active_central();
  if (central == nullptr) {
    std::printf("no active GulfStream Central (admin AMG has no leader with "
                "an eligible node) — cannot print the discovered topology\n");
    return 1;
  }
  std::printf("\n-- discovered topology (GulfStream Central's view) ----\n");
  std::printf("GSC: %s  |  %zu adapters across %zu adapter membership "
              "groups\n\n",
              central->self_ip().to_string().c_str(),
              central->known_adapter_count(), central->groups().size());
  for (const auto& group : central->groups()) {
    std::printf("  AMG led by %-14s (view %llu, %zu members):\n",
                group.leader.ip.to_string().c_str(),
                static_cast<unsigned long long>(group.view),
                group.members.size());
    for (gs::util::IpAddress ip : group.members) {
      const auto rec = farm.db().adapter_by_ip(ip);
      std::printf("    %-14s %s\n", ip.to_string().c_str(),
                  rec ? farm.db().node(rec->node)->name.c_str() : "?");
    }
  }

  const auto findings = central->verify_now();
  std::printf("\nConfiguration-database verification: %zu inconsistencies\n",
              findings.size());
  for (const auto& finding : findings)
    std::printf("  [%s] %s\n", std::string(to_string(finding.kind)).c_str(),
                finding.detail.c_str());

  if (spans != nullptr) {
    // Give the observatory one complete detection span to measure: fail a
    // non-leader, non-admin member and wait for Central to commit it (the
    // move-inference hold of params.move_window delays the commit).
    gs::util::IpAddress victim_ip;
    for (const auto& group : central->groups()) {
      for (gs::util::IpAddress ip : group.members) {
        const auto rec = farm.db().adapter_by_ip(ip);
        if (!rec || rec->admin || ip == group.leader.ip) continue;
        victim_ip = ip;
        break;
      }
      if (!victim_ip.is_unspecified()) break;
    }
    std::printf("\n-- latency observatory --------------------------------\n");
    if (victim_ip.is_unspecified()) {
      std::printf("no non-leader member to fail; skipping span demo\n");
    } else {
      const auto victim = farm.db().adapter_by_ip(victim_ip);
      std::printf("failing %s to exercise the detection pipeline...\n",
                  victim_ip.to_string().c_str());
      farm.fabric().set_adapter_health(victim->adapter,
                                       gs::net::HealthState::kDown);
      const auto committed = gs::farm::run_until(
          sim, sim.now() + params.move_window + gs::sim::seconds(60), [&] {
            const gs::util::Histogram* h =
                farm.metrics().find_histogram("span.detection_us");
            return h != nullptr && h->count() >= 1;
          });
      const gs::util::Histogram* h =
          farm.metrics().find_histogram("span.detection_us");
      if (committed && h != nullptr && h->count() >= 1)
        std::printf("detection span: fault -> Central commit in %.3fs "
                    "(includes the %.0fs move-inference hold)\n",
                    h->mean() / 1e6,
                    gs::sim::to_seconds(params.move_window));
      else
        std::printf("detection span never closed within the deadline!\n");
    }
    farm.health_sampler()->sample_now();
    if (gs::obs::expo::write_metrics_files(farm.metrics(), metrics_path))
      std::printf("metrics -> %s (Prometheus text) and %s.json\n",
                  metrics_path.c_str(), metrics_path.c_str());
    else
      return 1;
  }

  if (sink.is_open())
    std::printf("\nWrote %llu trace records to %s\n",
                static_cast<unsigned long long>(sink.lines_written()),
                trace_path.c_str());
  return 0;
}
