// Scripted scenario runner: replay an operator-action script against a
// simulated farm and stream GulfStream Central's events.
//
//   ./scripted_scenario --script=ops.txt [--nodes=10] [--adapters=2]
//
// Without --script a built-in demonstration script runs. Script grammar
// (see src/farm/script.h):
//
//   at 30s  fail-node 3
//   at 60s  recover-node 3
//   at 90s  fail-switch 0
//   ...
#include <cstdio>
#include <fstream>
#include <sstream>

#include "farm/farm.h"
#include "farm/scenario.h"
#include "farm/script.h"
#include "util/flags.h"

namespace {

constexpr const char* kDemoScript = R"(# built-in demo: a rough day in the farm
at 30s   fail-adapter 3
at 60s   recover-adapter 3
at 90s   fail-node 2
at 130s  recover-node 2
at 170s  fail-switch 0
at 215s  recover-switch 0
at 260s  verify
)";

}  // namespace

int main(int argc, char** argv) {
  gs::util::Flags flags;
  if (!flags.parse(argc, argv)) return 1;
  const std::string script_path =
      flags.get_string("script", "", "script file (empty = built-in demo)");
  const int nodes = static_cast<int>(flags.get_int("nodes", 10, "farm size"));
  const int adapters =
      static_cast<int>(flags.get_int("adapters", 2, "adapters per node"));
  const double horizon =
      flags.get_double("horizon", 60.0, "extra seconds after the last action");
  if (flags.help_requested()) {
    flags.print_usage();
    return 0;
  }

  std::string text = kDemoScript;
  if (!script_path.empty()) {
    std::ifstream in(script_path);
    if (!in) {
      std::fprintf(stderr, "cannot open %s\n", script_path.c_str());
      return 1;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    text = buffer.str();
  }

  const auto parsed = gs::farm::parse_script(text);
  if (!parsed.ok()) {
    std::fprintf(stderr, "script error on line %d: %s\n", parsed.error_line,
                 parsed.error.c_str());
    return 1;
  }
  std::printf("Loaded %zu actions.\n", parsed.actions.size());

  gs::sim::Simulator sim;
  gs::proto::Params params;
  params.beacon_phase = gs::sim::seconds(3);
  params.amg_stable_wait = gs::sim::seconds(2);
  params.gsc_stable_wait = gs::sim::seconds(5);
  gs::farm::FarmSpec spec = gs::farm::FarmSpec::uniform(nodes, adapters);
  spec.switch_ports = 3 * adapters;  // a few nodes per switch
  gs::farm::Farm farm(sim, spec, params, 4);
  gs::proto::EventLog events(farm.event_bus());
  farm.start();
  if (!gs::farm::run_until_gsc_stable(farm, gs::sim::seconds(300))) {
    std::fprintf(stderr, "farm never stabilized\n");
    return 1;
  }
  std::printf("Farm stable at t=%.2fs (%d nodes, %zu switches). Running "
              "script...\n\n",
              gs::sim::to_seconds(sim.now()), nodes,
              farm.fabric().switch_count());

  gs::farm::ScriptRun run;
  gs::farm::schedule_script(farm, parsed.actions, &run);

  const gs::sim::SimTime end =
      (parsed.actions.empty() ? sim.now() : parsed.actions.back().at) +
      gs::sim::seconds(horizon);
  std::size_t cursor = events.size();
  while (sim.now() < end) {
    sim.run_until(sim.now() + gs::sim::seconds(1));
    for (; cursor < events.size(); ++cursor) {
      const auto& e = events.records()[cursor];
      std::printf("  t=%7.2fs  %-20s %s %s\n", gs::sim::to_seconds(e.time),
                  std::string(to_string(e.kind)).c_str(),
                  e.ip.is_unspecified() ? "" : e.ip.to_string().c_str(),
                  e.detail.c_str());
    }
  }

  std::printf("\nScript done: %zu actions executed, %zu failed.\n",
              run.executed, run.failed);
  std::printf("Farm %s; GSC sees %zu/%zu adapters alive.\n",
              farm.converged() ? "converged" : "NOT converged",
              farm.active_central() ? farm.active_central()->alive_adapter_count()
                                    : 0,
              farm.active_central() ? farm.active_central()->known_adapter_count()
                                    : 0);
  return farm.converged() ? 0 : 1;
}
