// Failure monitoring: inject adapter, node, and switch failures into a
// running farm and watch GulfStream detect, verify, correlate, and report
// them through Central (§3's event-correlation function).
//
//   ./failure_monitoring [--nodes=12]
#include <cstdio>

#include "farm/farm.h"
#include "farm/scenario.h"
#include "util/flags.h"

namespace {

void drain_events(const gs::proto::EventLog& log, std::size_t& cursor) {
  const auto& events = log.records();
  for (; cursor < events.size(); ++cursor) {
    const gs::proto::FarmEvent& e = events[cursor];
    std::printf("  t=%7.2fs  %-18s", gs::sim::to_seconds(e.time),
                std::string(to_string(e.kind)).c_str());
    if (!e.ip.is_unspecified()) std::printf("  %s", e.ip.to_string().c_str());
    if (e.node.valid()) std::printf("  node%u", e.node.value());
    if (e.switch_id.valid()) std::printf("  switch%u", e.switch_id.value());
    std::printf("\n");
  }
}

}  // namespace

int main(int argc, char** argv) {
  gs::util::Flags flags;
  if (!flags.parse(argc, argv)) return 1;
  const int nodes = static_cast<int>(flags.get_int("nodes", 12, "farm size"));
  if (flags.help_requested()) {
    flags.print_usage();
    return 0;
  }

  gs::sim::Simulator sim;
  gs::proto::Params params;
  params.beacon_phase = gs::sim::seconds(3);
  params.amg_stable_wait = gs::sim::seconds(2);
  params.gsc_stable_wait = gs::sim::seconds(5);
  params.move_window = gs::sim::seconds(5);

  // Small switches so whole racks share fate (switch correlation).
  gs::farm::FarmSpec spec = gs::farm::FarmSpec::uniform(nodes, 2);
  spec.switch_ports = 6;  // three 2-adapter nodes per switch
  gs::farm::Farm farm(sim, spec, params, 7);
  gs::proto::EventLog log(farm.event_bus());
  farm.start();

  std::printf("Waiting for the farm (%d nodes, 2 adapters each) to "
              "stabilize...\n", nodes);
  if (!gs::farm::run_until_gsc_stable(farm, gs::sim::seconds(300))) {
    std::printf("farm never stabilized\n");
    return 1;
  }
  std::size_t cursor = 0;
  drain_events(log, cursor);

  // --- Scenario 1: one NIC dies -------------------------------------------
  std::printf("\n== t=%.0fs: adapter 1 of node 2 fails (one NIC, node "
              "stays up) ==\n", gs::sim::to_seconds(sim.now()));
  farm.fabric().set_adapter_health(farm.node_adapters(2)[1],
                                   gs::net::HealthState::kDown);
  sim.run_until(sim.now() + gs::sim::seconds(30));
  drain_events(log, cursor);
  std::printf("  (no node-failed event: the other adapter still answers)\n");

  // --- Scenario 2: a whole node dies --------------------------------------
  std::printf("\n== t=%.0fs: node 4 loses power ==\n",
              gs::sim::to_seconds(sim.now()));
  farm.fail_node(4);
  sim.run_until(sim.now() + gs::sim::seconds(30));
  drain_events(log, cursor);

  // --- Scenario 3: node 4 comes back ---------------------------------------
  std::printf("\n== t=%.0fs: node 4 boots again ==\n",
              gs::sim::to_seconds(sim.now()));
  farm.recover_node(4);
  sim.run_until(sim.now() + gs::sim::seconds(40));
  drain_events(log, cursor);

  // --- Scenario 4: a switch dies --------------------------------------------
  std::printf("\n== t=%.0fs: switch 0 fails (takes its whole rack down) ==\n",
              gs::sim::to_seconds(sim.now()));
  farm.fabric().fail_switch(gs::util::SwitchId(0));
  sim.run_until(sim.now() + gs::sim::seconds(45));
  drain_events(log, cursor);

  std::printf("\n== t=%.0fs: switch 0 recovers ==\n",
              gs::sim::to_seconds(sim.now()));
  farm.fabric().recover_switch(gs::util::SwitchId(0));
  sim.run_until(sim.now() + gs::sim::seconds(60));
  drain_events(log, cursor);

  gs::proto::Central* central = farm.active_central();
  std::printf("\nFinal state: %zu/%zu adapters alive, farm %s\n",
              central->alive_adapter_count(), central->known_adapter_count(),
              farm.converged() ? "converged" : "NOT converged");
  return 0;
}
