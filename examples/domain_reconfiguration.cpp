// Dynamic domain reconfiguration (§3.1): Océano moves a server between
// customer domains by rewriting its switch port's VLAN. The moved adapter's
// old AMG sees a death, the new AMG sees a join, and only GulfStream
// Central can put the two together — suppressing the failure notification
// when it initiated the move itself, or flagging an unexpected move (plus a
// database inconsistency) when an operator rewires behind its back.
//
//   ./domain_reconfiguration
#include <cstdio>

#include "farm/farm.h"
#include "farm/scenario.h"
#include "util/flags.h"

namespace {

void show_domain_membership(gs::farm::Farm& farm) {
  gs::proto::Central* central = farm.active_central();
  for (int d = 0; d < farm.spec().domains; ++d) {
    std::printf("  domain %d (vlan %u):", d,
                gs::farm::internal_vlan(static_cast<std::uint32_t>(d)).value());
    for (const auto& group : central->groups()) {
      const auto rec = farm.db().adapter_by_ip(group.leader.ip);
      if (!rec || rec->expected_vlan !=
                      gs::farm::internal_vlan(static_cast<std::uint32_t>(d)))
        continue;
      for (gs::util::IpAddress ip : group.members)
        std::printf(" %s", ip.to_string().c_str());
    }
    std::printf("\n");
  }
}

}  // namespace

int main(int argc, char** argv) {
  gs::util::Flags flags;
  if (!flags.parse(argc, argv)) return 1;
  if (flags.help_requested()) {
    flags.print_usage();
    return 0;
  }

  gs::sim::Simulator sim;
  gs::proto::Params params;
  params.beacon_phase = gs::sim::seconds(3);
  params.amg_stable_wait = gs::sim::seconds(1);
  params.gsc_stable_wait = gs::sim::seconds(5);
  params.move_window = gs::sim::seconds(10);

  gs::farm::Farm farm(sim, gs::farm::FarmSpec::oceano(2, 3, 3), params, 11);
  gs::proto::EventLog events(farm.event_bus());
  farm.start();
  std::printf("Stabilizing a 2-domain hosting farm...\n");
  if (!gs::farm::run_until_gsc_stable(farm, gs::sim::seconds(300))) return 1;
  gs::proto::Central* central = farm.active_central();
  std::printf("\nBefore the move:\n");
  show_domain_membership(farm);

  // Customer 1's load spiked: take a back end from domain 0.
  const auto backs = farm.nodes_with_role(gs::farm::NodeRole::kBackEnd);
  std::size_t mover = SIZE_MAX;
  for (std::size_t idx : backs)
    if (farm.domain_of(idx) == gs::util::DomainId(0)) mover = idx;
  const gs::util::AdapterId adapter = farm.node_adapters(mover)[1];
  const gs::util::IpAddress ip = farm.fabric().adapter(adapter).ip();

  std::printf("\n== GSC moves %s (node %zu) from domain 0 to domain 1 ==\n",
              ip.to_string().c_str(), mover);
  const std::size_t before = events.size();
  central->move_adapter(adapter, gs::farm::internal_vlan(1));

  auto done = gs::farm::run_until(sim, sim.now() + gs::sim::seconds(120), [&] {
    return events.count(gs::proto::FarmEvent::Kind::kMoveCompleted) > 0;
  });
  gs::farm::run_until_converged(farm, sim.now() + gs::sim::seconds(60));
  for (std::size_t i = before; i < events.size(); ++i) {
    const auto& e = events.records()[i];
    std::printf("  t=%7.2fs  %-16s %s\n", gs::sim::to_seconds(e.time),
                std::string(to_string(e.kind)).c_str(),
                e.ip.is_unspecified() ? "" : e.ip.to_string().c_str());
  }
  std::printf("  -> move %s; failure notifications suppressed: %s\n",
              done ? "completed" : "TIMED OUT",
              events.count(gs::proto::FarmEvent::Kind::kAdapterFailed) == 0
                  ? "yes"
                  : "NO");

  std::printf("\nAfter the move:\n");
  show_domain_membership(farm);

  // Now an operator rewires a front end at the switch, without telling GSC.
  const auto fronts = farm.nodes_with_role(gs::farm::NodeRole::kFrontEnd);
  std::size_t rogue = SIZE_MAX;
  for (std::size_t idx : fronts)
    if (farm.domain_of(idx) == gs::util::DomainId(1)) rogue = idx;
  const gs::util::AdapterId rogue_adapter = farm.node_adapters(rogue)[1];
  const auto& na = farm.fabric().adapter(rogue_adapter);
  std::printf("\n== operator silently rewires %s to domain 0's VLAN ==\n",
              na.ip().to_string().c_str());
  const std::size_t before2 = events.size();
  farm.fabric().set_port_vlan(na.attached_switch(), na.attached_port(),
                              gs::farm::internal_vlan(0));

  gs::farm::run_until(sim, sim.now() + gs::sim::seconds(120), [&] {
    return events.count(gs::proto::FarmEvent::Kind::kUnexpectedMove) > 0;
  });
  gs::farm::run_until_converged(farm, sim.now() + gs::sim::seconds(60));
  for (std::size_t i = before2; i < events.size(); ++i) {
    const auto& e = events.records()[i];
    std::printf("  t=%7.2fs  %-16s %s\n", gs::sim::to_seconds(e.time),
                std::string(to_string(e.kind)).c_str(), e.detail.c_str());
  }

  // Let the post-churn membership reports drain to Central before judging.
  sim.run_until(sim.now() + gs::sim::seconds(15));

  std::printf("\nVerification against the configuration database:\n");
  for (const auto& finding : central->verify_now())
    std::printf("  [%s] %s\n", std::string(to_string(finding.kind)).c_str(),
                finding.detail.c_str());
  std::printf("(the unexpected move is treated 'as when mismatches are found\n"
              "between the discovered configuration and the database', §3.1)\n");
  return 0;
}
