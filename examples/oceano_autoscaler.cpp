// Océano's reason for existing, end to end: "a hosting environment which
// can rapidly adjust the resources assigned to each hosted web-site
// (domain) to a dynamically fluctuating workload... Océano reallocates
// servers in short time (minutes) in response to changing workloads" (§1).
//
// A toy autoscaler watches a synthetic per-domain load trace and, whenever
// one domain runs hot while another has slack, asks GulfStream Central to
// move a back-end server between the customer domains (§3.1). GulfStream's
// job is to make each move quiet: re-stabilize both AMGs and suppress every
// failure notification the rewiring causes.
//
//   ./oceano_autoscaler [--hours=1] [--verbose]
#include <cmath>
#include <cstdio>
#include <map>
#include <vector>

#include "farm/farm.h"
#include "farm/scenario.h"
#include "util/flags.h"

namespace {

// Synthetic offered load per domain, normalized to [0, 1]: out-of-phase
// sinusoids plus a flash-crowd spike on domain 0 in the second half hour
// ("peak loads that are orders of magnitude larger than the steady state").
double offered_load(int domain, double t_seconds) {
  const double base = 0.45 + 0.35 * std::sin(t_seconds / 600.0 + domain * 2.1);
  double spike = 0.0;
  if (domain == 0 && t_seconds > 1800 && t_seconds < 2400) spike = 0.45;
  return std::min(1.0, std::max(0.05, base + spike));
}

}  // namespace

int main(int argc, char** argv) {
  gs::util::Flags flags;
  if (!flags.parse(argc, argv)) return 1;
  const double hours = flags.get_double("hours", 1.0, "simulated hours");
  const bool verbose = flags.get_bool("verbose", false, "per-tick load dump");
  if (flags.help_requested()) {
    flags.print_usage();
    return 0;
  }

  gs::sim::Simulator sim;
  gs::proto::Params params;
  params.beacon_phase = gs::sim::seconds(3);
  params.amg_stable_wait = gs::sim::seconds(2);
  params.gsc_stable_wait = gs::sim::seconds(5);
  params.move_window = gs::sim::seconds(10);

  // Two customer domains, a pool of back ends initially split 4/4.
  gs::farm::Farm farm(sim, gs::farm::FarmSpec::oceano(2, 2, 4), params, 2001);
  gs::proto::EventLog events(farm.event_bus());
  farm.start();
  std::printf("Stabilizing the hosting farm...\n");
  if (!gs::farm::run_until_gsc_stable(farm, gs::sim::seconds(300))) return 1;
  gs::proto::Central* central = farm.active_central();
  events.clear();  // audit only what happens after stabilization

  // Track which domain each back end currently serves.
  std::map<std::size_t, int> domain_of_backend;
  for (std::size_t idx : farm.nodes_with_role(gs::farm::NodeRole::kBackEnd))
    domain_of_backend[idx] = static_cast<int>(farm.domain_of(idx).value());

  auto backends_in = [&](int domain) {
    std::vector<std::size_t> out;
    for (const auto& [node, dom] : domain_of_backend)
      if (dom == domain) out.push_back(node);
    return out;
  };

  int moves = 0;
  const gs::sim::SimTime end = gs::sim::seconds(hours * 3600.0);
  std::printf("\n%8s %18s %18s %s\n", "time", "domain0 load/cap",
              "domain1 load/cap", "action");
  while (sim.now() < end) {
    sim.run_until(sim.now() + gs::sim::seconds(30));
    const double t = gs::sim::to_seconds(sim.now());

    // Per-domain utilization = offered load / capacity share.
    double util[2];
    for (int d = 0; d < 2; ++d) {
      const double capacity =
          static_cast<double>(backends_in(d).size()) / 8.0 * 2.0;
      util[d] = offered_load(d, t) / std::max(0.125, capacity);
    }
    if (verbose)
      std::printf("%7.0fs %9.2f/%zu %14.2f/%zu\n", t, util[0],
                  backends_in(0).size(), util[1], backends_in(1).size());

    // Policy: if one domain is hot (>90% utilized) and the other has slack
    // (<60%) and more than one server, shift a back end over.
    int hot = util[0] > util[1] ? 0 : 1;
    int cold = 1 - hot;
    if (util[hot] <= 0.9 || util[cold] >= 0.6 ||
        backends_in(cold).size() <= 1)
      continue;

    const std::size_t mover = backends_in(cold).back();
    const gs::util::AdapterId adapter = farm.node_adapters(mover)[1];
    if (!central->move_adapter(
            adapter, gs::farm::internal_vlan(static_cast<std::uint32_t>(hot))))
      continue;
    domain_of_backend[mover] = hot;
    ++moves;
    std::printf("%7.0fs %9.2f/%zu %14.2f/%zu   move back-end-%zu -> domain %d\n",
                t, util[0], backends_in(0).size(), util[1],
                backends_in(1).size(), mover, hot);
  }

  // Settle and audit: every reallocation must have been quiet.
  sim.run_until(sim.now() + gs::sim::seconds(120));
  gs::farm::run_until_converged(farm, sim.now() + gs::sim::seconds(120));
  std::size_t completed = 0, spurious_failures = 0;
  for (const auto& e : events) {
    if (e.kind == gs::proto::FarmEvent::Kind::kMoveCompleted) ++completed;
    if (e.kind == gs::proto::FarmEvent::Kind::kAdapterFailed)
      ++spurious_failures;
  }
  std::printf("\n%.1f simulated hour(s): %d reallocations, %zu completed at "
              "GSC, %zu spurious failure notifications.\n",
              hours, moves, completed, spurious_failures);
  std::printf("Farm %s; verification: %zu inconsistencies.\n",
              farm.converged() ? "converged" : "NOT converged",
              central->verify_now().size());
  return spurious_failures == 0 && farm.converged() ? 0 : 1;
}
