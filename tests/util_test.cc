// Unit tests for src/util: ids, ip, rng, stats, flags, thread pool.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <set>
#include <sstream>
#include <thread>

#include "util/flags.h"
#include "util/ids.h"
#include "util/ip.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/thread_pool.h"

namespace gs::util {
namespace {

// --- Ids ---------------------------------------------------------------------

TEST(Ids, DefaultIsInvalid) {
  NodeId id;
  EXPECT_FALSE(id.valid());
  EXPECT_EQ(id, NodeId::invalid());
}

TEST(Ids, ValueRoundTrip) {
  AdapterId id(42);
  EXPECT_TRUE(id.valid());
  EXPECT_EQ(id.value(), 42u);
}

TEST(Ids, Ordering) {
  EXPECT_LT(VlanId(1), VlanId(2));
  EXPECT_EQ(VlanId(7), VlanId(7));
  EXPECT_NE(VlanId(7), VlanId(8));
}

TEST(Ids, StreamFormat) {
  std::ostringstream os;
  os << SwitchId(3) << " " << SwitchId();
  EXPECT_EQ(os.str(), "switch3 switch<invalid>");
}

TEST(Ids, Hashable) {
  std::set<NodeId> set;
  std::unordered_map<AdapterId, int> map;
  set.insert(NodeId(1));
  map[AdapterId(2)] = 5;
  EXPECT_EQ(map[AdapterId(2)], 5);
}

// --- IpAddress -----------------------------------------------------------------

TEST(IpAddress, OctetConstruction) {
  IpAddress ip(10, 1, 2, 3);
  EXPECT_EQ(ip.to_string(), "10.1.2.3");
  EXPECT_EQ(ip.octet(0), 10);
  EXPECT_EQ(ip.octet(3), 3);
}

TEST(IpAddress, NumericOrderMatchesElectionOrder) {
  EXPECT_LT(IpAddress(10, 0, 0, 1), IpAddress(10, 0, 0, 2));
  EXPECT_LT(IpAddress(10, 0, 0, 255), IpAddress(10, 0, 1, 0));
  EXPECT_LT(IpAddress(9, 255, 255, 255), IpAddress(10, 0, 0, 0));
}

TEST(IpAddress, ParseValid) {
  auto ip = IpAddress::parse("192.168.1.77");
  ASSERT_TRUE(ip.has_value());
  EXPECT_EQ(*ip, IpAddress(192, 168, 1, 77));
}

TEST(IpAddress, ParseRoundTripsAllOctetBoundaries) {
  for (const char* text : {"0.0.0.0", "255.255.255.255", "1.0.0.0",
                           "0.0.0.1", "127.0.0.1"}) {
    auto ip = IpAddress::parse(text);
    ASSERT_TRUE(ip.has_value()) << text;
    EXPECT_EQ(ip->to_string(), text);
  }
}

TEST(IpAddress, ParseRejectsMalformed) {
  for (const char* text :
       {"", "1.2.3", "1.2.3.4.5", "256.1.1.1", "1.2.3.x", "1..2.3",
        "1.2.3.4 ", "a.b.c.d", "-1.2.3.4"}) {
    EXPECT_FALSE(IpAddress::parse(text).has_value()) << text;
  }
}

TEST(IpAddress, Unspecified) {
  EXPECT_TRUE(IpAddress().is_unspecified());
  EXPECT_FALSE(IpAddress(1, 0, 0, 0).is_unspecified());
}

// --- MacAddress -----------------------------------------------------------------

TEST(MacAddress, FormatAndParse) {
  MacAddress mac(0x0200deadbeefull);
  EXPECT_EQ(mac.to_string(), "02:00:de:ad:be:ef");
  auto parsed = MacAddress::parse("02:00:de:ad:be:ef");
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, mac);
}

TEST(MacAddress, ParseDashSeparated) {
  auto parsed = MacAddress::parse("02-00-00-00-00-01");
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->bits(), 0x020000000001ull);
}

TEST(MacAddress, ParseRejectsMalformed) {
  for (const char* text : {"", "02:00:00:00:00", "02:00:00:00:00:00:00",
                           "zz:00:00:00:00:01", "0200.dead.beef"}) {
    EXPECT_FALSE(MacAddress::parse(text).has_value()) << text;
  }
}

TEST(MacAddress, TruncatesTo48Bits) {
  MacAddress mac(0xFFFF'0000'0000'0001ull);
  EXPECT_EQ(mac.bits(), 0x0000'0000'0001ull);
}

// --- Rng ------------------------------------------------------------------------

TEST(Rng, DeterministicForSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i)
    if (a.next() == b.next()) ++same;
  EXPECT_LT(same, 3);
}

TEST(Rng, ForkIsIndependentAndDeterministic) {
  Rng base(9);
  Rng c1 = base.fork(1);
  Rng c2 = base.fork(2);
  Rng c1_again = Rng(9).fork(1);
  EXPECT_EQ(c1.next(), c1_again.next());
  EXPECT_NE(c1.next(), c2.next());
}

TEST(Rng, BelowIsInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.below(17), 17u);
}

TEST(Rng, BelowCoversRange) {
  Rng rng(5);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 200; ++i) seen.insert(rng.below(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, RangeInclusive) {
  Rng rng(11);
  bool lo = false, hi = false;
  for (int i = 0; i < 500; ++i) {
    const std::int64_t v = rng.range(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    lo = lo || v == -2;
    hi = hi || v == 2;
  }
  EXPECT_TRUE(lo);
  EXPECT_TRUE(hi);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(13);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, ChanceExtremes) {
  Rng rng(17);
  EXPECT_FALSE(rng.chance(0.0));
  EXPECT_TRUE(rng.chance(1.0));
}

TEST(Rng, ChanceFrequency) {
  Rng rng(19);
  int hits = 0;
  for (int i = 0; i < 10000; ++i)
    if (rng.chance(0.3)) ++hits;
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.03);
}

TEST(Rng, ExponentialMean) {
  Rng rng(23);
  double sum = 0;
  for (int i = 0; i < 20000; ++i) sum += rng.exponential(5.0);
  EXPECT_NEAR(sum / 20000.0, 5.0, 0.25);
}

// --- Histogram -------------------------------------------------------------------

TEST(Histogram, EmptyIsZero) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.min(), 0);
  EXPECT_EQ(h.max(), 0);
  EXPECT_EQ(h.mean(), 0.0);
  EXPECT_EQ(h.p50(), 0);
}

TEST(Histogram, BasicStats) {
  Histogram h;
  for (std::int64_t v : {1, 2, 3, 4, 5}) h.record(v);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_EQ(h.min(), 1);
  EXPECT_EQ(h.max(), 5);
  EXPECT_DOUBLE_EQ(h.mean(), 3.0);
}

TEST(Histogram, QuantileAccuracyWithinRelativeError) {
  Histogram h;
  for (std::int64_t v = 1; v <= 100000; ++v) h.record(v);
  // Log-bucketed: answers within ~3% relative error.
  EXPECT_NEAR(static_cast<double>(h.quantile(0.5)), 50000.0, 50000.0 * 0.04);
  EXPECT_NEAR(static_cast<double>(h.quantile(0.99)), 99000.0, 99000.0 * 0.04);
  EXPECT_EQ(h.quantile(1.0), 100000);
}

TEST(Histogram, Merge) {
  Histogram a, b;
  a.record(10);
  b.record(20);
  a.merge(b);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_EQ(a.min(), 10);
  EXPECT_EQ(a.max(), 20);
}

TEST(Histogram, ResetClears) {
  Histogram h;
  h.record(42);
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.max(), 0);
}

TEST(Histogram, StddevOfConstantIsZero) {
  Histogram h;
  for (int i = 0; i < 10; ++i) h.record(7);
  EXPECT_NEAR(h.stddev(), 0.0, 1e-9);
}

TEST(Histogram, QuantileEndpointsAreExactMinMax) {
  Histogram h;
  for (std::int64_t v : {17, 230, 4099, 88000}) h.record(v);
  // The endpoints must be exact even though interior quantiles are
  // bucket-resolved: span summaries report min/max through quantile(0)/(1).
  EXPECT_EQ(h.quantile(0.0), 17);
  EXPECT_EQ(h.quantile(1.0), 88000);
  // Out-of-range and NaN degrade to the conservative endpoints.
  EXPECT_EQ(h.quantile(-0.5), 17);
  EXPECT_EQ(h.quantile(2.0), 88000);
  EXPECT_EQ(h.quantile(std::numeric_limits<double>::quiet_NaN()), 17);
}

TEST(Histogram, EmptyQuantilesAreZeroForAnyQ) {
  Histogram h;
  for (double q : {0.0, 0.5, 0.99, 1.0, -1.0, 2.0}) EXPECT_EQ(h.quantile(q), 0);
  EXPECT_EQ(h.quantile(std::numeric_limits<double>::quiet_NaN()), 0);
}

TEST(Histogram, MergeDisjointRangesKeepsBothPopulations) {
  Histogram a, b;
  for (std::int64_t v = 1; v <= 100; ++v) a.record(v);             // [1, 100]
  for (std::int64_t v = 1000000; v <= 1000100; ++v) b.record(v);   // [1e6, ..]
  a.merge(b);
  EXPECT_EQ(a.count(), 201u);
  EXPECT_EQ(a.min(), 1);
  EXPECT_EQ(a.max(), 1000100);
  // The median must fall in the gap's lower population and p99 in the
  // upper one — merging disjoint ranges must not smear mass between them.
  EXPECT_LE(a.quantile(0.25), 100);
  EXPECT_GE(a.quantile(0.75), 1000000 * 0.97);
  EXPECT_NEAR(a.mean(), (50.5 * 101 + 1000050.0 * 101) / 202.0,
              a.mean() * 0.01);
}

TEST(Histogram, SubBucketRelativeErrorBound) {
  // sub_bucket_bits=5 promises <= 1/2^5 relative error per recorded value:
  // every quantile answer is a bucket upper bound at most (1 + 1/32) above
  // some recorded value <= the true quantile.
  Histogram h(5);
  Rng rng(7);
  std::vector<std::int64_t> values;
  for (int i = 0; i < 5000; ++i) {
    const auto v =
        static_cast<std::int64_t>(rng.uniform() * 9.0e6) + 1;
    values.push_back(v);
    h.record(v);
  }
  std::sort(values.begin(), values.end());
  for (double q : {0.01, 0.10, 0.50, 0.90, 0.99}) {
    const auto rank = static_cast<std::size_t>(
        std::ceil(q * static_cast<double>(values.size()))) - 1;
    const double exact = static_cast<double>(values[rank]);
    const double approx = static_cast<double>(h.quantile(q));
    EXPECT_GE(approx, exact * (1.0 - 1.0 / 32.0))
        << "q=" << q << " exact=" << exact;
    EXPECT_LE(approx, exact * (1.0 + 1.0 / 32.0) + 1.0)
        << "q=" << q << " exact=" << exact;
  }
}

// --- StatsRegistry ------------------------------------------------------------------

TEST(StatsRegistry, CountersAccumulate) {
  StatsRegistry stats;
  stats.counter("x").add();
  stats.counter("x").add(4);
  EXPECT_EQ(stats.counter_value("x"), 5u);
  EXPECT_EQ(stats.counter_value("missing"), 0u);
}

TEST(StatsRegistry, HistogramLookup) {
  StatsRegistry stats;
  stats.histogram("lat").record(100);
  ASSERT_NE(stats.find_histogram("lat"), nullptr);
  EXPECT_EQ(stats.find_histogram("lat")->count(), 1u);
  EXPECT_EQ(stats.find_histogram("none"), nullptr);
}

// --- Summary ----------------------------------------------------------------------

TEST(Summary, OfSamples) {
  auto s = Summary::of({1.0, 2.0, 3.0});
  EXPECT_EQ(s.n, 3u);
  EXPECT_DOUBLE_EQ(s.mean, 2.0);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 3.0);
}

TEST(Summary, Empty) {
  auto s = Summary::of({});
  EXPECT_EQ(s.n, 0u);
  EXPECT_EQ(s.mean, 0.0);
}

// --- Flags ------------------------------------------------------------------------

TEST(Flags, ParsesTypedValues) {
  const char* argv[] = {"prog", "--n=5", "--rate=0.25", "--on", "--name=abc"};
  Flags flags;
  ASSERT_TRUE(flags.parse(5, argv));
  EXPECT_EQ(flags.get_int("n", 0, ""), 5);
  EXPECT_DOUBLE_EQ(flags.get_double("rate", 0, ""), 0.25);
  EXPECT_TRUE(flags.get_bool("on", false, ""));
  EXPECT_EQ(flags.get_string("name", "", ""), "abc");
}

TEST(Flags, DefaultsWhenAbsent) {
  const char* argv[] = {"prog"};
  Flags flags;
  ASSERT_TRUE(flags.parse(1, argv));
  EXPECT_EQ(flags.get_int("n", 7, ""), 7);
  EXPECT_FALSE(flags.get_bool("off", false, ""));
}

TEST(Flags, HelpRequested) {
  const char* argv[] = {"prog", "--help"};
  Flags flags;
  ASSERT_TRUE(flags.parse(2, argv));
  EXPECT_TRUE(flags.help_requested());
}

TEST(Flags, RejectsPositional) {
  const char* argv[] = {"prog", "positional"};
  Flags flags;
  EXPECT_FALSE(flags.parse(2, argv));
}

TEST(Flags, UnknownFlagDetection) {
  const char* argv[] = {"prog", "--typo=1"};
  Flags flags;
  ASSERT_TRUE(flags.parse(2, argv));
  flags.get_int("n", 0, "");
  const auto unknown = flags.unknown_flags();
  ASSERT_EQ(unknown.size(), 1u);
  EXPECT_EQ(unknown[0], "typo");
}

// --- ThreadPool ----------------------------------------------------------------------

TEST(ThreadPool, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) pool.submit([&] { count++; });
  pool.wait_idle();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, ParallelForCoversIndices) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(50);
  pool.parallel_for(50, [&](std::size_t i) { hits[i]++; });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForZero) {
  ThreadPool pool(2);
  pool.parallel_for(0, [](std::size_t) { FAIL(); });
}

TEST(ThreadPool, WaitIdleOnEmptyPool) {
  ThreadPool pool(1);
  pool.wait_idle();  // must not hang
}

TEST(ThreadPool, ParallelForSingleItemRunsInline) {
  ThreadPool pool(2);
  const auto caller = std::this_thread::get_id();
  std::thread::id ran;
  pool.parallel_for(1, [&](std::size_t) { ran = std::this_thread::get_id(); });
  EXPECT_EQ(ran, caller);
}

// Regression: parallel_for called FROM a pool worker used to deadlock — the
// old implementation waited for the pool's global in-flight count to reach
// zero, which included the waiting task itself. Per-batch completion plus
// the caller draining its own batch makes nesting safe on any pool size
// (even one worker, where the outer task's thread does all the inner work).
TEST(ThreadPool, NestedParallelForFromWorkerDoesNotDeadlock) {
  for (const std::size_t workers : {std::size_t{1}, std::size_t{4}}) {
    ThreadPool pool(workers);
    std::vector<std::atomic<int>> hits(64);
    std::atomic<bool> inner_done{false};
    pool.submit([&] {
      pool.parallel_for(64, [&](std::size_t i) { hits[i]++; });
      inner_done = true;
    });
    pool.wait_idle();
    EXPECT_TRUE(inner_done.load());
    for (auto& h : hits) EXPECT_EQ(h.load(), 1);
  }
}

// Two external threads issuing parallel_for concurrently must not cross
// wires: each batch tracks its own completion, not pool-global idleness.
TEST(ThreadPool, ConcurrentParallelForFromTwoThreads) {
  ThreadPool pool(2);
  std::vector<std::atomic<int>> a(200), b(200);
  std::thread t1([&] { pool.parallel_for(200, [&](std::size_t i) { a[i]++; }); });
  std::thread t2([&] { pool.parallel_for(200, [&](std::size_t i) { b[i]++; }); });
  t1.join();
  t2.join();
  for (auto& h : a) EXPECT_EQ(h.load(), 1);
  for (auto& h : b) EXPECT_EQ(h.load(), 1);
}

}  // namespace
}  // namespace gs::util
