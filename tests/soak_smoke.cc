// Randomized soak smoke: N seeded fault schedules on the oceano farm, each
// mixing node/adapter/switch faults, partitions, VLAN moves, and a forced
// GSC failover. Every run must end with zero invariant violations. On
// failure, shrinks the schedule and prints a minimal reproducing script.
//
// With --hier the runs use the two-level hierarchical farm instead: per-
// domain Centrals feeding a RootCentral over batched digests, with forced
// failover at BOTH levels (root tier and one domain's management tier) and
// the checker holding the root's aggregated tables to ground truth.
//
// Usage: soak_smoke [num_seeds] [first_seed] [--hier]
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "farm/script.h"
#include "soak/runner.h"
#include "soak/shrink.h"

namespace {

struct Failure {
  std::uint64_t seed = 0;
  gs::soak::SoakResult result;
};

}  // namespace

int main(int argc, char** argv) {
  bool hierarchical = false;
  std::vector<const char*> positional;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--hier") == 0)
      hierarchical = true;
    else
      positional.push_back(argv[i]);
  }
  const int num_seeds = !positional.empty() ? std::atoi(positional[0]) : 25;
  const std::uint64_t first_seed =
      positional.size() > 1 ? std::strtoull(positional[1], nullptr, 10) : 1;

  std::vector<std::uint64_t> seeds;
  for (int i = 0; i < num_seeds; ++i)
    seeds.push_back(first_seed + static_cast<std::uint64_t>(i));

  std::mutex mu;
  std::vector<Failure> failures;
  std::uint64_t traces_checked = 0;
  std::size_t next = 0;

  const unsigned workers =
      std::min<unsigned>(std::thread::hardware_concurrency(),
                         static_cast<unsigned>(seeds.size()));
  std::vector<std::thread> pool;
  for (unsigned w = 0; w < std::max(1u, workers); ++w) {
    pool.emplace_back([&] {
      for (;;) {
        std::uint64_t seed;
        {
          std::lock_guard<std::mutex> lock(mu);
          if (next >= seeds.size()) return;
          seed = seeds[next++];
        }
        gs::soak::SoakOptions opts;
        opts.seed = seed;
        if (hierarchical)
          opts.spec = gs::farm::FarmSpec::hierarchical(3, 4);
        gs::soak::SoakResult result = gs::soak::run_soak(opts);
        std::lock_guard<std::mutex> lock(mu);
        traces_checked += result.trace_records_checked;
        if (!result.passed()) failures.push_back({seed, std::move(result)});
      }
    });
  }
  for (std::thread& t : pool) t.join();

  if (failures.empty()) {
    std::printf("soak_smoke%s: %d seed(s) starting at %llu, 0 violations, "
                "%llu trace records checked\n", hierarchical ? " (hier)" : "",
                num_seeds, static_cast<unsigned long long>(first_seed),
                static_cast<unsigned long long>(traces_checked));
    return 0;
  }

  for (const Failure& f : failures) {
    std::printf("=== seed %llu: %zu violation(s) ===\n%s",
                static_cast<unsigned long long>(f.seed),
                f.result.violations.size(),
                gs::soak::format_violations(f.result.violations).c_str());
    std::printf("--- schedule (%zu events) ---\n%s",
                f.result.schedule.size(),
                gs::farm::format_script(f.result.schedule).c_str());
  }

  // Shrink the first failure to a minimal reproducing schedule.
  const Failure& first = failures.front();
  gs::soak::SoakOptions opts;
  opts.seed = first.seed;
  if (hierarchical) opts.spec = gs::farm::FarmSpec::hierarchical(3, 4);
  gs::soak::ShrinkResult shrunk = gs::soak::shrink_schedule_paired(
      first.result.schedule, gs::soak::make_soak_oracle(opts));
  std::printf(
      "--- minimal reproduction for seed %llu (%zu event(s), %zu oracle "
      "run(s)%s) ---\n%s",
      static_cast<unsigned long long>(first.seed), shrunk.schedule.size(),
      shrunk.oracle_runs, shrunk.minimal ? "" : ", budget hit",
      gs::farm::format_script(shrunk.schedule).c_str());
  std::printf("replay: run_schedule with seed %llu and the script above\n",
              static_cast<unsigned long long>(first.seed));
  return 1;
}
