// White-box AdapterProtocol tests: frames are injected by hand and every
// outgoing frame is captured, so each 2PC / commit / stale / probe edge is
// exercised deterministically without a network in between.
#include <gtest/gtest.h>

#include <deque>
#include <map>

#include "gs/adapter_protocol.h"
#include "sim/simulator.h"
#include "wire/frame.h"

namespace gs::proto {
namespace {

MemberInfo member(std::uint8_t host) {
  MemberInfo m;
  m.ip = util::IpAddress(10, 0, 0, host);
  m.mac = util::MacAddress(host);
  m.node = util::NodeId(host);
  return m;
}

util::IpAddress ip(std::uint8_t host) { return util::IpAddress(10, 0, 0, host); }

struct SentFrame {
  util::IpAddress to;  // unspecified for beacon multicasts
  MsgType type;
  std::vector<std::uint8_t> payload;
};

class ProtocolUnit : public ::testing::Test {
 protected:
  ProtocolUnit() {
    params_.beacon_phase = sim::seconds(2);
    params_.beacon_interval = sim::seconds(1);
    params_.beacon_setup_min = params_.beacon_setup_max = 0;
    params_.change_debounce = sim::milliseconds(100);
    params_.twopc_timeout = sim::milliseconds(500);
    params_.amg_stable_wait = sim::milliseconds(200);
    // No peer in this harness ever heartbeats, so park the failure detector
    // out of the way: suspicions are injected explicitly where needed.
    params_.hb_period = sim::seconds(1000);
  }

  void make_protocol(std::uint8_t host) {
    AdapterProtocol::NetIface net;
    net.unicast = [this](util::IpAddress to, net::Payload frame) {
      record(to, frame);
      return true;
    };
    net.beacon_multicast = [this](net::Payload frame) {
      record(util::IpAddress(), frame);
      return true;
    };
    net.loopback_ok = [] { return true; };
    AdapterProtocol::Hooks hooks;
    hooks.on_report_pending = [this] { report_pending_ = true; };
    proto_ = std::make_unique<AdapterProtocol>(sim_, params_, member(host),
                                               std::move(net), std::move(hooks),
                                               util::Rng(host));
  }

  void record(util::IpAddress to, const net::Payload& frame) {
    auto decoded = wire::decode_frame(frame.bytes());
    ASSERT_TRUE(decoded.ok());
    sent_.push_back(
        SentFrame{to, static_cast<MsgType>(decoded.frame.type),
                  {decoded.frame.payload.begin(), decoded.frame.payload.end()}});
  }

  // Injects a message as if received from `src`.
  template <typename T>
  void inject(util::IpAddress src, const T& msg) {
    const auto payload = encode(msg);
    proto_->handle_frame(src, T::kType, payload);
  }

  // First captured frame of the given type sent to `to`; consumes nothing.
  const SentFrame* find_sent(MsgType type,
                             util::IpAddress to = util::IpAddress()) {
    for (const SentFrame& f : sent_)
      if (f.type == type && (to.is_unspecified() || f.to == to)) return &f;
    return nullptr;
  }

  std::size_t count_sent(MsgType type) {
    std::size_t n = 0;
    for (const SentFrame& f : sent_)
      if (f.type == type) ++n;
    return n;
  }

  // Brings the protocol to a committed 3-member view {9(self-led)…} by
  // letting it win discovery over injected beacons from 5 and 3.
  void form_group_as_leader() {
    make_protocol(9);
    proto_->start();
    Beacon b5{};
    b5.self = member(5);
    inject(ip(5), b5);
    Beacon b3{};
    b3.self = member(3);
    inject(ip(3), b3);
    sim_.run_until(sim_.now() + params_.beacon_phase + sim::milliseconds(1));
    // The coordinator sent Prepare to both; ack them.
    const SentFrame* prep = find_sent(MsgType::kPrepare, ip(5));
    ASSERT_NE(prep, nullptr);
    const auto prepare = decode_Prepare(prep->payload);
    ASSERT_TRUE(prepare.has_value());
    PrepareAck ack{};
    ack.view = prepare->view;
    ack.ok = true;
    inject(ip(5), ack);
    inject(ip(3), ack);
    ASSERT_TRUE(proto_->is_committed());
    ASSERT_TRUE(proto_->is_leader());
    ASSERT_EQ(proto_->committed().size(), 3u);
    sent_.clear();
  }

  sim::Simulator sim_;
  Params params_;
  std::unique_ptr<AdapterProtocol> proto_;
  std::vector<SentFrame> sent_;
  bool report_pending_ = false;
};

// --- Participant paths ----------------------------------------------------------

TEST_F(ProtocolUnit, PrepareDuringBeaconPhaseIsAckedAndCommitInstalls) {
  make_protocol(5);
  proto_->start();
  // A committed leader (9) absorbs us mid-beacon-phase: the §2.1 fast path.
  Prepare prepare{};
  prepare.view = 7;
  prepare.leader = ip(9);
  prepare.members = {member(9), member(5)};
  inject(ip(9), prepare);
  const SentFrame* ack = find_sent(MsgType::kPrepareAck, ip(9));
  ASSERT_NE(ack, nullptr);
  EXPECT_TRUE(decode_PrepareAck(ack->payload)->ok);

  Commit commit{};
  commit.view = 7;
  commit.members = prepare.members;
  inject(ip(9), commit);
  EXPECT_TRUE(proto_->is_committed());
  EXPECT_EQ(proto_->state(), AdapterState::kMember);
  EXPECT_EQ(proto_->leader_ip(), ip(9));
}

TEST_F(ProtocolUnit, StalePrepareIsNacked) {
  make_protocol(5);
  proto_->start();
  Prepare prepare{};
  prepare.view = 7;
  prepare.leader = ip(9);
  prepare.members = {member(9), member(5)};
  inject(ip(9), prepare);
  Commit commit{};
  commit.view = 7;
  commit.members = prepare.members;
  inject(ip(9), commit);
  sent_.clear();

  // An older coordinator retries with a stale view.
  Prepare stale{};
  stale.view = 6;
  stale.leader = ip(8);
  stale.members = {member(8), member(5)};
  inject(ip(8), stale);
  const SentFrame* nack = find_sent(MsgType::kPrepareAck, ip(8));
  ASSERT_NE(nack, nullptr);
  const auto decoded = decode_PrepareAck(nack->payload);
  EXPECT_FALSE(decoded->ok);
  EXPECT_EQ(decoded->holder_view, 7u);
}

TEST_F(ProtocolUnit, PrepareNotListingSelfIsNacked) {
  make_protocol(5);
  proto_->start();
  Prepare prepare{};
  prepare.view = 7;
  prepare.leader = ip(9);
  prepare.members = {member(9), member(4)};  // we are not in it
  inject(ip(9), prepare);
  const SentFrame* nack = find_sent(MsgType::kPrepareAck, ip(9));
  ASSERT_NE(nack, nullptr);
  EXPECT_FALSE(decode_PrepareAck(nack->payload)->ok);
}

TEST_F(ProtocolUnit, CommitExcludingSelfIsNotInstalled) {
  make_protocol(5);
  proto_->start();
  Prepare prepare{};
  prepare.view = 7;
  prepare.leader = ip(9);
  prepare.members = {member(9), member(5), member(3)};
  inject(ip(9), prepare);

  Commit commit{};
  commit.view = 7;
  commit.members = {member(9), member(3)};  // our ack was lost; excluded
  inject(ip(9), commit);
  EXPECT_FALSE(proto_->is_committed());
}

TEST_F(ProtocolUnit, ImplicitCommitViaGroupTraffic) {
  make_protocol(5);
  proto_->start();
  Prepare prepare{};
  prepare.view = 7;
  prepare.leader = ip(9);
  prepare.members = {member(9), member(5)};
  inject(ip(9), prepare);
  ASSERT_FALSE(proto_->is_committed());

  // The Commit was lost, but a view-7 heartbeat proves it happened.
  Heartbeat hb{};
  hb.view = 7;
  hb.seq = 1;
  inject(ip(9), hb);
  EXPECT_TRUE(proto_->is_committed());
  EXPECT_EQ(proto_->committed().view(), 7u);
}

TEST_F(ProtocolUnit, SelfContainedCommitInstallsWithoutPrepare) {
  make_protocol(5);
  proto_->start();
  // No Prepare was ever seen (it was lost); the commit carries everything.
  Commit commit{};
  commit.view = 7;
  commit.members = {member(9), member(5)};
  inject(ip(9), commit);
  EXPECT_TRUE(proto_->is_committed());
  EXPECT_EQ(proto_->leader_ip(), ip(9));
}

TEST_F(ProtocolUnit, StaleNoticeResetsMemberToDiscovery) {
  make_protocol(5);
  proto_->start();
  Commit commit{};
  commit.view = 7;
  commit.members = {member(9), member(5)};
  inject(ip(9), commit);
  ASSERT_EQ(proto_->state(), AdapterState::kMember);

  StaleNotice notice{};
  notice.current_view = 9;
  inject(ip(8), notice);
  EXPECT_EQ(proto_->state(), AdapterState::kBeaconing);
  EXPECT_EQ(proto_->stats().resets, 1u);
}

TEST_F(ProtocolUnit, ProbeAnsweredInAnyState) {
  make_protocol(5);
  proto_->start();
  Probe probe{};
  probe.nonce = 0xABC;
  inject(ip(9), probe);
  const SentFrame* ack = find_sent(MsgType::kProbeAck, ip(9));
  ASSERT_NE(ack, nullptr);
  EXPECT_EQ(decode_ProbeAck(ack->payload)->nonce, 0xABCu);
}

TEST_F(ProtocolUnit, PingAnsweredToOrigin) {
  make_protocol(5);
  proto_->start();
  Ping ping{};
  ping.nonce = 0xDEF;
  ping.origin = ip(7);  // proxied: origin differs from transport source
  inject(ip(6), ping);
  const SentFrame* ack = find_sent(MsgType::kPingAck, ip(7));
  ASSERT_NE(ack, nullptr);
  EXPECT_EQ(decode_PingAck(ack->payload)->target, ip(5));
}

// --- Coordinator paths -------------------------------------------------------------

TEST_F(ProtocolUnit, FormationCommitsAckedSubsetAfterTimeouts) {
  make_protocol(9);
  proto_->start();
  Beacon b5{};
  b5.self = member(5);
  inject(ip(5), b5);
  Beacon b3{};
  b3.self = member(3);
  inject(ip(3), b3);
  sim_.run_until(sim_.now() + params_.beacon_phase + sim::milliseconds(1));

  const SentFrame* prep = find_sent(MsgType::kPrepare, ip(5));
  ASSERT_NE(prep, nullptr);
  PrepareAck ack{};
  ack.view = decode_Prepare(prep->payload)->view;
  ack.ok = true;
  inject(ip(5), ack);  // 3 stays silent

  // Ride out every retry; the commit excludes the silent member.
  sim_.run_until(sim_.now() + 4 * params_.twopc_timeout);
  ASSERT_TRUE(proto_->is_committed());
  EXPECT_EQ(proto_->committed().size(), 2u);
  EXPECT_TRUE(proto_->committed().contains(ip(5)));
  EXPECT_FALSE(proto_->committed().contains(ip(3)));
  // And the commit frame carried the final (reduced) membership.
  const SentFrame* commit = find_sent(MsgType::kCommit, ip(5));
  ASSERT_NE(commit, nullptr);
  EXPECT_EQ(decode_Commit(commit->payload)->members.size(), 2u);
}

TEST_F(ProtocolUnit, NackMakesCoordinatorStepClockAndRetryWithoutHolder) {
  make_protocol(9);
  proto_->start();
  Beacon b5{};
  b5.self = member(5);
  inject(ip(5), b5);
  sim_.run_until(sim_.now() + params_.beacon_phase + sim::milliseconds(1));
  const SentFrame* prep = find_sent(MsgType::kPrepare, ip(5));
  ASSERT_NE(prep, nullptr);
  const std::uint64_t first_view = decode_Prepare(prep->payload)->view;

  PrepareAck nack{};
  nack.view = first_view;
  nack.ok = false;
  nack.holder_view = 41;  // member is bound to a much newer group
  inject(ip(5), nack);
  sim_.run_until(sim_.now() + params_.change_debounce + sim::milliseconds(10));
  // The coordinator proceeds without the nacker, at a view past the holder.
  ASSERT_TRUE(proto_->is_committed());
  EXPECT_GT(proto_->committed().view(), 41u);
  EXPECT_FALSE(proto_->committed().contains(ip(5)));
}

TEST_F(ProtocolUnit, SuspectAckedAndVerifiedBeforeRemoval) {
  form_group_as_leader();
  Suspect suspect{};
  suspect.view = proto_->committed().view();
  suspect.suspect = ip(3);
  inject(ip(5), suspect);

  // Reporter gets an ack; the suspect gets a verification probe (§2.1).
  EXPECT_NE(find_sent(MsgType::kSuspectAck, ip(5)), nullptr);
  const SentFrame* probe = find_sent(MsgType::kProbe, ip(3));
  ASSERT_NE(probe, nullptr);

  // The suspect answers: suspicion refuted, no removal.
  ProbeAck alive{};
  alive.nonce = decode_Probe(probe->payload)->nonce;
  inject(ip(3), alive);
  sim_.run_until(sim_.now() + sim::seconds(3));
  EXPECT_TRUE(proto_->committed().contains(ip(3)));
  EXPECT_EQ(proto_->stats().probes_refuted, 1u);
  EXPECT_EQ(proto_->stats().deaths_declared, 0u);
}

TEST_F(ProtocolUnit, UnansweredProbesRemoveTheSuspect) {
  form_group_as_leader();
  Suspect suspect{};
  suspect.view = proto_->committed().view();
  suspect.suspect = ip(3);
  inject(ip(5), suspect);

  // Ride out probe retries, the recommit debounce, and the 2PC; ack the
  // new Prepare so the group recommits without the dead member.
  sim_.run_until(sim_.now() +
                 (params_.probe_retries + 1) * params_.probe_timeout +
                 params_.change_debounce + sim::milliseconds(50));
  const SentFrame* prep = find_sent(MsgType::kPrepare, ip(5));
  ASSERT_NE(prep, nullptr);
  PrepareAck ack{};
  ack.view = decode_Prepare(prep->payload)->view;
  ack.ok = true;
  inject(ip(5), ack);
  ASSERT_TRUE(proto_->is_committed());
  EXPECT_FALSE(proto_->committed().contains(ip(3)));
  EXPECT_EQ(proto_->stats().deaths_declared, 1u);
}

TEST_F(ProtocolUnit, LeaderReportsFullThenDelta) {
  form_group_as_leader();
  sim_.run_until(sim_.now() + params_.amg_stable_wait + sim::milliseconds(10));
  EXPECT_TRUE(report_pending_);

  MembershipReport full = proto_->build_report();
  EXPECT_TRUE(full.full);
  EXPECT_EQ(full.added.size(), 3u);
  EXPECT_TRUE(full.removed.empty());
  proto_->report_acked(full.seq);

  // Remove member 3 (probes unanswered), recommit, then build the delta.
  // Ack the re-Prepare promptly so member 5 is not dropped as silent too.
  Suspect suspect{};
  suspect.view = proto_->committed().view();
  suspect.suspect = ip(3);
  inject(ip(5), suspect);
  sim_.run_until(sim_.now() +
                 (params_.probe_retries + 1) * params_.probe_timeout +
                 params_.change_debounce + sim::milliseconds(50));
  const SentFrame* prep = find_sent(MsgType::kPrepare, ip(5));
  ASSERT_NE(prep, nullptr);
  PrepareAck ack{};
  ack.view = decode_Prepare(prep->payload)->view;
  ack.ok = true;
  inject(ip(5), ack);
  ASSERT_FALSE(proto_->committed().contains(ip(3)));

  MembershipReport delta = proto_->build_report();
  EXPECT_FALSE(delta.full);
  EXPECT_TRUE(delta.added.empty());
  ASSERT_EQ(delta.removed.size(), 1u);
  EXPECT_EQ(delta.removed[0].ip, ip(3));
  EXPECT_EQ(delta.removed[0].reason, RemoveReason::kFailed);
}

TEST_F(ProtocolUnit, LeaderIgnoresHigherIpNonLeaderBeacon) {
  form_group_as_leader();
  Beacon big{};
  big.self = member(200);  // outranks us; it must lead, not join
  inject(ip(200), big);
  sim_.run_until(sim_.now() + sim::seconds(1));
  EXPECT_EQ(count_sent(MsgType::kPrepare), 0u);
}

TEST_F(ProtocolUnit, LeaderMergesIntoHigherLeader) {
  form_group_as_leader();
  Beacon big{};
  big.self = member(200);
  big.is_leader = true;
  big.view = 3;
  inject(ip(200), big);
  const SentFrame* join = find_sent(MsgType::kJoinRequest, ip(200));
  ASSERT_NE(join, nullptr);
  const auto decoded = decode_JoinRequest(join->payload);
  EXPECT_EQ(decoded->members.size(), 3u);  // we bring our whole group

  // Rate limited: another beacon right away sends nothing new.
  sent_.clear();
  inject(ip(200), big);
  EXPECT_EQ(count_sent(MsgType::kJoinRequest), 0u);
}

TEST_F(ProtocolUnit, JoinRequestSkipsHigherIpStaleClaims) {
  form_group_as_leader();
  JoinRequest join{};
  join.view = 2;
  join.members = {member(4), member(250)};  // 250 would outrank the leader
  inject(ip(4), join);
  sim_.run_until(sim_.now() + params_.change_debounce + sim::milliseconds(10));
  const SentFrame* prep = find_sent(MsgType::kPrepare, ip(4));
  ASSERT_NE(prep, nullptr);
  const auto prepared = decode_Prepare(prep->payload);
  for (const MemberInfo& m : prepared->members) EXPECT_NE(m.ip, ip(250));
}

TEST_F(ProtocolUnit, ShutdownGoesSilentRestartRediscovers) {
  form_group_as_leader();
  proto_->shutdown();
  EXPECT_EQ(proto_->state(), AdapterState::kIdle);
  sent_.clear();
  sim_.run_until(sim_.now() + sim::seconds(5));
  EXPECT_TRUE(sent_.empty()) << "a shut-down daemon must not transmit";

  proto_->restart();
  EXPECT_EQ(proto_->state(), AdapterState::kBeaconing);
  sim_.run_until(sim_.now() + params_.beacon_phase + sim::milliseconds(10));
  EXPECT_TRUE(proto_->is_committed());  // singleton re-formation
}

TEST_F(ProtocolUnit, DeferTimeoutTriesHeardLeaderBeforeSingleton) {
  make_protocol(5);
  proto_->start();
  // A committed higher-IP leader beacons, but its Prepare never arrives
  // (one-way loss, or it never noticed us).
  Beacon b{};
  b.self = member(9);
  b.is_leader = true;
  b.view = 4;
  b.group_size = 2;
  inject(ip(9), b);
  sim_.run_until(sim_.now() + params_.beacon_phase + sim::milliseconds(1));
  ASSERT_EQ(proto_->state(), AdapterState::kWaitingForLeader);

  // First defer expiry: ask the heard leader for membership directly.
  // Forming a singleton next to a live group only to merge moments later
  // would put the whole segment through an extra view change.
  sim_.run_until(sim_.now() + params_.defer_timeout + sim::milliseconds(1));
  EXPECT_NE(find_sent(MsgType::kJoinRequest, ip(9)), nullptr);
  EXPECT_FALSE(proto_->is_committed());

  // Still nothing: the second expiry falls back to the singleton.
  sim_.run_until(sim_.now() + params_.defer_timeout + sim::milliseconds(1));
  ASSERT_TRUE(proto_->is_committed());
  EXPECT_TRUE(proto_->is_leader());
  EXPECT_EQ(proto_->committed().size(), 1u);
}

TEST_F(ProtocolUnit, StaleNoticeMapPrunedWhenPeerJoins) {
  form_group_as_leader();
  // A stale ex-member heartbeats us: one notice, one rate-limit entry.
  Heartbeat hb{};
  hb.view = proto_->committed().view();
  hb.seq = 1;
  inject(ip(7), hb);
  EXPECT_NE(find_sent(MsgType::kStaleNotice, ip(7)), nullptr);
  ASSERT_EQ(proto_->stale_notice_entries(), 1u);
  sent_.clear();

  // It re-discovers and joins; installing the view that contains it must
  // drop its rate-limit entry, or the map grows by one entry per stale
  // peer ever heard for as long as we stay committed.
  JoinRequest join{};
  join.members = {member(7)};
  inject(ip(7), join);
  sim_.run_until(sim_.now() + params_.change_debounce + sim::milliseconds(10));
  const SentFrame* prep = find_sent(MsgType::kPrepare, ip(7));
  ASSERT_NE(prep, nullptr);
  PrepareAck ack{};
  ack.view = decode_Prepare(prep->payload)->view;
  ack.ok = true;
  inject(ip(5), ack);
  inject(ip(3), ack);
  inject(ip(7), ack);
  ASSERT_TRUE(proto_->committed().contains(ip(7)));
  EXPECT_EQ(proto_->stale_notice_entries(), 0u);
}

TEST_F(ProtocolUnit, ProbeAckStatesWhetherResponderLeadsProber) {
  form_group_as_leader();
  Probe probe{};
  probe.nonce = 1;
  inject(ip(5), probe);  // group member
  const SentFrame* in_group = find_sent(MsgType::kProbeAck, ip(5));
  ASSERT_NE(in_group, nullptr);
  EXPECT_TRUE(decode_ProbeAck(in_group->payload)->leads_prober);

  probe.nonce = 2;
  inject(ip(7), probe);  // stranger
  const SentFrame* stranger = find_sent(MsgType::kProbeAck, ip(7));
  ASSERT_NE(stranger, nullptr);
  EXPECT_FALSE(decode_ProbeAck(stranger->payload)->leads_prober);
}

TEST_F(ProtocolUnit, TakeoverProceedsWhenProbedLeaderDisownsUs) {
  make_protocol(5);
  proto_->start();
  Commit commit{};
  commit.view = 7;
  commit.members = {member(9), member(5), member(3)};
  inject(ip(9), commit);
  ASSERT_EQ(proto_->state(), AdapterState::kMember);

  // A group-mate reports the leader dead; we are the first successor, so
  // we verify with a probe before assuming leadership.
  Suspect suspect{};
  suspect.view = 7;
  suspect.suspect = ip(9);
  inject(ip(3), suspect);
  const SentFrame* probe = find_sent(MsgType::kProbe, ip(9));
  ASSERT_NE(probe, nullptr);

  // The old leader answers — it is alive — but it restarted (or was
  // absorbed elsewhere) and no longer leads any view containing us. Mere
  // liveness must not veto the succession, or a blipped leader would
  // wedge its orphans into re-suspecting it forever.
  ProbeAck ack{};
  ack.nonce = decode_Probe(probe->payload)->nonce;
  ack.leads_prober = false;
  inject(ip(9), ack);
  EXPECT_TRUE(proto_->is_leader());
  EXPECT_EQ(proto_->stats().takeovers, 1u);
}

TEST_F(ProtocolUnit, TakeoverStandsDownWhenLeaderStillClaimsUs) {
  make_protocol(5);
  proto_->start();
  Commit commit{};
  commit.view = 7;
  commit.members = {member(9), member(5), member(3)};
  inject(ip(9), commit);
  Suspect suspect{};
  suspect.view = 7;
  suspect.suspect = ip(9);
  inject(ip(3), suspect);
  const SentFrame* probe = find_sent(MsgType::kProbe, ip(9));
  ASSERT_NE(probe, nullptr);

  ProbeAck ack{};
  ack.nonce = decode_Probe(probe->payload)->nonce;
  ack.leads_prober = true;  // false suspicion: the leader still counts us
  inject(ip(9), ack);
  EXPECT_EQ(proto_->state(), AdapterState::kMember);
  EXPECT_EQ(proto_->stats().takeovers, 0u);
}

}  // namespace
}  // namespace gs::proto
