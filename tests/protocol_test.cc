// AdapterProtocol unit tests: discovery, two-phase commit, merging,
// suspicion/verification, succession, stale recovery, and report building —
// driven on a raw fabric with protocols wired directly (no daemon layer, so
// no start skew or processing delay: timings are exact).
#include <gtest/gtest.h>

#include <map>
#include <memory>

#include "gs/adapter_protocol.h"
#include "net/fabric.h"
#include "wire/frame.h"

namespace gs::proto {
namespace {

Params crisp_params() {
  Params p;
  p.beacon_phase = sim::seconds(2);
  p.beacon_interval = sim::milliseconds(500);
  p.beacon_setup_min = 0;
  p.beacon_setup_max = 0;
  p.start_skew_max = 0;
  p.proc_delay_mean = 0;
  p.hb_period = sim::milliseconds(200);
  p.amg_stable_wait = sim::milliseconds(400);
  p.defer_timeout = sim::seconds(3);
  return p;
}

class ProtoHarness {
 public:
  ProtoHarness(Params params, std::uint64_t seed = 1)
      : params_(params), fabric_(sim_, util::Rng(seed)) {
    net::ChannelModel model;
    model.base_latency = sim::microseconds(200);
    model.jitter = sim::microseconds(50);
    fabric_.set_default_channel(model);
    sw_ = fabric_.add_switch(64);
  }

  AdapterProtocol& add(std::uint8_t host, util::VlanId vlan = util::VlanId(1),
                       std::uint32_t node = 0xFF) {
    const util::IpAddress ip(10, 0, 0, host);
    const util::AdapterId id = fabric_.add_adapter(
        util::NodeId(node == 0xFF ? host : node));
    fabric_.attach(id, sw_, vlan);
    fabric_.set_adapter_ip(id, ip);

    MemberInfo self;
    self.ip = ip;
    self.mac = fabric_.adapter(id).mac();
    self.node = fabric_.adapter(id).node();

    AdapterProtocol::NetIface net;
    net.unicast = [this, id](util::IpAddress to, net::Payload frame) {
      return fabric_.send(id, to, std::move(frame));
    };
    net.beacon_multicast = [this, id](net::Payload frame) {
      return fabric_.multicast(id, net::kBeaconGroup, std::move(frame));
    };
    net.loopback_ok = [this, id] { return fabric_.adapter(id).loopback_ok(); };

    AdapterProtocol::Hooks hooks;
    hooks.on_report_pending = [this, ip] { reports_pending_[ip] = true; };
    hooks.on_death_declared = [this, ip](util::IpAddress dead) {
      deaths_.emplace_back(ip, dead);
    };

    auto proto = std::make_unique<AdapterProtocol>(
        sim_, params_, self, std::move(net), std::move(hooks),
        util::Rng(1000 + host));
    AdapterProtocol& ref = *proto;
    protocols_[ip] = std::move(proto);
    adapter_ids_[ip] = id;

    fabric_.adapter(id).set_receive_handler(
        [this, ip](const net::Datagram& dgram) {
          auto decoded = wire::decode_frame(dgram.bytes());
          ASSERT_TRUE(decoded.ok());
          protocols_.at(ip)->handle_frame(
              dgram.src, static_cast<MsgType>(decoded.frame.type),
              decoded.frame.payload);
        });
    return ref;
  }

  void start_all() {
    for (auto& [ip, proto] : protocols_) proto->start();
  }

  AdapterProtocol& at(std::uint8_t host) {
    return *protocols_.at(util::IpAddress(10, 0, 0, host));
  }
  util::AdapterId id_of(std::uint8_t host) {
    return adapter_ids_.at(util::IpAddress(10, 0, 0, host));
  }

  bool group_converged(const std::vector<std::uint8_t>& hosts) {
    std::uint8_t max_host = 0;
    for (std::uint8_t h : hosts) max_host = std::max(max_host, h);
    const util::IpAddress leader(10, 0, 0, max_host);
    std::optional<std::uint64_t> view;
    for (std::uint8_t h : hosts) {
      const AdapterProtocol& p = at(h);
      if (!p.is_committed()) return false;
      if (p.leader_ip() != leader) return false;
      if (p.committed().size() != hosts.size()) return false;
      if (!view) view = p.committed().view();
      if (*view != p.committed().view()) return false;
    }
    return true;
  }

  bool run_until(sim::SimTime deadline, const std::function<bool()>& pred) {
    while (sim_.now() < deadline) {
      if (pred()) return true;
      sim_.run_until(sim_.now() + sim::milliseconds(50));
    }
    return pred();
  }

  sim::Simulator sim_;
  Params params_;
  net::Fabric fabric_;
  util::SwitchId sw_;
  std::map<util::IpAddress, std::unique_ptr<AdapterProtocol>> protocols_;
  std::map<util::IpAddress, util::AdapterId> adapter_ids_;
  std::map<util::IpAddress, bool> reports_pending_;
  std::vector<std::pair<util::IpAddress, util::IpAddress>> deaths_;
};

// --- Discovery ----------------------------------------------------------------------

TEST(Protocol, SingletonFormsAloneAfterBeaconPhase) {
  ProtoHarness h(crisp_params());
  AdapterProtocol& p = h.add(5);
  h.start_all();
  EXPECT_EQ(p.state(), AdapterState::kBeaconing);
  h.sim_.run_until(sim::seconds(3));
  EXPECT_EQ(p.state(), AdapterState::kLeader);
  EXPECT_EQ(p.committed().size(), 1u);
  EXPECT_TRUE(p.is_leader());
}

TEST(Protocol, HighestIpLeadsInitialFormation) {
  ProtoHarness h(crisp_params());
  for (int host : {3, 7, 5, 1}) h.add(static_cast<std::uint8_t>(host));
  h.start_all();
  ASSERT_TRUE(h.run_until(sim::seconds(15),
                          [&] { return h.group_converged({3, 7, 5, 1}); }));
  EXPECT_TRUE(h.at(7).is_leader());
  EXPECT_FALSE(h.at(5).is_leader());
  EXPECT_EQ(h.at(1).leader_ip(), util::IpAddress(10, 0, 0, 7));
}

TEST(Protocol, LateJoinerIsAbsorbed) {
  ProtoHarness h(crisp_params());
  for (int host : {3, 7}) h.add(static_cast<std::uint8_t>(host));
  h.start_all();
  ASSERT_TRUE(
      h.run_until(sim::seconds(15), [&] { return h.group_converged({3, 7}); }));

  AdapterProtocol& late = h.add(5);
  late.start();
  ASSERT_TRUE(h.run_until(h.sim_.now() + sim::seconds(15),
                          [&] { return h.group_converged({3, 5, 7}); }));
  EXPECT_TRUE(h.at(7).is_leader());
}

TEST(Protocol, LateJoinerWithHighestIpTakesOverViaMerge) {
  ProtoHarness h(crisp_params());
  for (int host : {3, 7}) h.add(static_cast<std::uint8_t>(host));
  h.start_all();
  ASSERT_TRUE(
      h.run_until(sim::seconds(15), [&] { return h.group_converged({3, 7}); }));

  AdapterProtocol& late = h.add(9);
  late.start();
  ASSERT_TRUE(h.run_until(h.sim_.now() + sim::seconds(20),
                          [&] { return h.group_converged({3, 7, 9}); }));
  EXPECT_TRUE(h.at(9).is_leader());
  EXPECT_FALSE(h.at(7).is_leader());
}

TEST(Protocol, TwoGroupsOnDistinctVlansStayDistinct) {
  ProtoHarness h(crisp_params());
  h.add(1, util::VlanId(1));
  h.add(2, util::VlanId(1));
  h.add(3, util::VlanId(2));
  h.add(4, util::VlanId(2));
  h.start_all();
  ASSERT_TRUE(h.run_until(sim::seconds(15), [&] {
    return h.group_converged({1, 2}) && h.group_converged({3, 4});
  }));
  EXPECT_FALSE(h.at(2).committed().contains(util::IpAddress(10, 0, 0, 4)));
}

// --- Failure handling ------------------------------------------------------------------

TEST(Protocol, LeaderVerifiesBeforeDeclaringDeath) {
  ProtoHarness h(crisp_params());
  for (int host : {1, 2, 3, 4}) h.add(static_cast<std::uint8_t>(host));
  h.start_all();
  ASSERT_TRUE(h.run_until(sim::seconds(15),
                          [&] { return h.group_converged({1, 2, 3, 4}); }));

  h.fabric_.set_adapter_health(h.id_of(2), net::HealthState::kDown);
  ASSERT_TRUE(h.run_until(h.sim_.now() + sim::seconds(15),
                          [&] { return h.group_converged({1, 3, 4}); }));
  EXPECT_GT(h.at(4).stats().probes_sent, 0u);
  EXPECT_EQ(h.at(4).stats().deaths_declared, 1u);
  ASSERT_EQ(h.deaths_.size(), 1u);
  EXPECT_EQ(h.deaths_[0].second, util::IpAddress(10, 0, 0, 2));
}

TEST(Protocol, FalseSuspicionIsRefutedByProbe) {
  // Partition host 2 from host 1 only (its ring neighbor) — the leader can
  // still reach host 2, so the probe refutes the suspicion.
  Params p = crisp_params();
  p.hb_sensitivity = 1;
  ProtoHarness h(p);
  for (int host : {1, 2, 3, 4}) h.add(static_cast<std::uint8_t>(host));
  h.start_all();
  ASSERT_TRUE(h.run_until(sim::seconds(15),
                          [&] { return h.group_converged({1, 2, 3, 4}); }));

  // Ring rank order: 4,3,2,1. Host 1 monitors left neighbor 2 and right 4.
  h.fabric_.partition_vlan(
      util::VlanId(1),
      {{h.id_of(1), h.id_of(3), h.id_of(4)}, {h.id_of(2)}});
  h.run_until(h.sim_.now() + sim::seconds(5), [] { return false; });
  // Host 2 was suspected; leader probed it... but leader also cannot reach
  // it (partition isolates host 2 completely), so it IS declared dead.
  // Heal and verify recovery instead.
  h.fabric_.heal_vlan(util::VlanId(1));
  EXPECT_TRUE(h.run_until(h.sim_.now() + sim::seconds(30),
                          [&] { return h.group_converged({1, 2, 3, 4}); }));
}

TEST(Protocol, StaleMemberResetsAndRejoins) {
  ProtoHarness h(crisp_params());
  for (int host : {1, 2, 3}) h.add(static_cast<std::uint8_t>(host));
  h.start_all();
  ASSERT_TRUE(h.run_until(sim::seconds(15),
                          [&] { return h.group_converged({1, 2, 3}); }));

  // Isolate host 1 long enough to be removed, then restore.
  h.fabric_.partition_vlan(util::VlanId(1),
                           {{h.id_of(2), h.id_of(3)}, {h.id_of(1)}});
  ASSERT_TRUE(h.run_until(h.sim_.now() + sim::seconds(20),
                          [&] { return h.group_converged({2, 3}); }));
  const std::uint64_t resets_before = h.at(1).stats().resets;
  h.fabric_.heal_vlan(util::VlanId(1));
  ASSERT_TRUE(h.run_until(h.sim_.now() + sim::seconds(30),
                          [&] { return h.group_converged({1, 2, 3}); }));
  EXPECT_GE(h.at(1).stats().resets, resets_before);
}

TEST(Protocol, SuccessionSkipsDeadSecondRank) {
  ProtoHarness h(crisp_params());
  for (int host : {1, 2, 3, 4, 5}) h.add(static_cast<std::uint8_t>(host));
  h.start_all();
  ASSERT_TRUE(h.run_until(sim::seconds(15), [&] {
    return h.group_converged({1, 2, 3, 4, 5});
  }));
  // Kill leader (5) and second-ranked (4) simultaneously: rank 3 must end
  // up leading.
  h.fabric_.set_adapter_health(h.id_of(5), net::HealthState::kDown);
  h.fabric_.set_adapter_health(h.id_of(4), net::HealthState::kDown);
  ASSERT_TRUE(h.run_until(h.sim_.now() + sim::seconds(40),
                          [&] { return h.group_converged({1, 2, 3}); }));
  EXPECT_TRUE(h.at(3).is_leader());
}

// --- Reports -----------------------------------------------------------------------------

TEST(Protocol, LeaderBuildsFullThenDeltaReports) {
  ProtoHarness h(crisp_params());
  for (int host : {1, 2, 3}) h.add(static_cast<std::uint8_t>(host));
  h.start_all();
  ASSERT_TRUE(h.run_until(sim::seconds(15),
                          [&] { return h.group_converged({1, 2, 3}); }));

  AdapterProtocol& leader = h.at(3);
  MembershipReport full = leader.build_report();
  EXPECT_TRUE(full.full);
  EXPECT_EQ(full.added.size(), 3u);
  EXPECT_EQ(full.seq, 1u);
  leader.report_acked(full.seq);

  // Kill a member; after recommit the next report is a delta.
  h.fabric_.set_adapter_health(h.id_of(1), net::HealthState::kDown);
  ASSERT_TRUE(h.run_until(h.sim_.now() + sim::seconds(15),
                          [&] { return h.group_converged({2, 3}); }));
  MembershipReport delta = leader.build_report();
  EXPECT_FALSE(delta.full);
  EXPECT_TRUE(delta.added.empty());
  ASSERT_EQ(delta.removed.size(), 1u);
  EXPECT_EQ(delta.removed[0].ip, util::IpAddress(10, 0, 0, 1));
  EXPECT_EQ(delta.removed[0].reason, RemoveReason::kFailed);
}

TEST(Protocol, UnackedDeltaIsCumulative) {
  ProtoHarness h(crisp_params());
  for (int host : {1, 2, 3, 4}) h.add(static_cast<std::uint8_t>(host));
  h.start_all();
  ASSERT_TRUE(h.run_until(sim::seconds(15),
                          [&] { return h.group_converged({1, 2, 3, 4}); }));
  AdapterProtocol& leader = h.at(4);
  leader.report_acked(leader.build_report().seq);  // baseline acked

  h.fabric_.set_adapter_health(h.id_of(1), net::HealthState::kDown);
  ASSERT_TRUE(h.run_until(h.sim_.now() + sim::seconds(15),
                          [&] { return h.group_converged({2, 3, 4}); }));
  MembershipReport first = leader.build_report();  // not acked (lost)
  ASSERT_EQ(first.removed.size(), 1u);

  h.fabric_.set_adapter_health(h.id_of(2), net::HealthState::kDown);
  ASSERT_TRUE(h.run_until(h.sim_.now() + sim::seconds(15),
                          [&] { return h.group_converged({3, 4}); }));
  // The rebuilt report covers BOTH removals relative to the acked baseline.
  MembershipReport second = leader.build_report();
  EXPECT_EQ(second.removed.size(), 2u);
}

TEST(Protocol, NeedFullForcesSnapshot) {
  ProtoHarness h(crisp_params());
  for (int host : {1, 2}) h.add(static_cast<std::uint8_t>(host));
  h.start_all();
  ASSERT_TRUE(
      h.run_until(sim::seconds(15), [&] { return h.group_converged({1, 2}); }));
  AdapterProtocol& leader = h.at(2);
  leader.report_acked(leader.build_report().seq);
  leader.mark_need_full();
  MembershipReport report = leader.build_report();
  EXPECT_TRUE(report.full);
  EXPECT_EQ(report.added.size(), 2u);
}

TEST(Protocol, ReportDebounceFiresAfterStableWait) {
  ProtoHarness h(crisp_params());
  for (int host : {1, 2}) h.add(static_cast<std::uint8_t>(host));
  h.start_all();
  ASSERT_TRUE(
      h.run_until(sim::seconds(15), [&] { return h.group_converged({1, 2}); }));
  h.run_until(h.sim_.now() + sim::seconds(2), [] { return false; });
  EXPECT_TRUE(h.reports_pending_[util::IpAddress(10, 0, 0, 2)]);
  // Non-leaders never report.
  EXPECT_FALSE(h.reports_pending_[util::IpAddress(10, 0, 0, 1)]);
}

// --- Merge of established groups -------------------------------------------------------------

TEST(Protocol, PartitionedFormationMergesToOneGroup) {
  ProtoHarness h(crisp_params());
  for (int host : {1, 2, 3, 4, 5, 6}) h.add(static_cast<std::uint8_t>(host));
  // Form two groups under partition from the start.
  h.fabric_.partition_vlan(util::VlanId(1),
                           {{h.id_of(1), h.id_of(2), h.id_of(3)},
                            {h.id_of(4), h.id_of(5), h.id_of(6)}});
  h.start_all();
  ASSERT_TRUE(h.run_until(sim::seconds(15), [&] {
    return h.group_converged({1, 2, 3}) && h.group_converged({4, 5, 6});
  }));
  EXPECT_TRUE(h.at(3).is_leader());
  EXPECT_TRUE(h.at(6).is_leader());

  h.fabric_.heal_vlan(util::VlanId(1));
  ASSERT_TRUE(h.run_until(h.sim_.now() + sim::seconds(30), [&] {
    return h.group_converged({1, 2, 3, 4, 5, 6});
  }));
  EXPECT_TRUE(h.at(6).is_leader());
  EXPECT_GE(h.at(3).stats().joins_requested, 1u);
}

// --- View monotonicity invariant ---------------------------------------------------------------

TEST(Protocol, ViewsAreMonotonePerAdapter) {
  ProtoHarness h(crisp_params());
  for (int host : {1, 2, 3, 4}) h.add(static_cast<std::uint8_t>(host));
  h.start_all();

  std::map<util::IpAddress, std::uint64_t> last_view;
  for (int step = 0; step < 400; ++step) {
    h.sim_.run_until(h.sim_.now() + sim::milliseconds(100));
    if (step == 100)
      h.fabric_.set_adapter_health(h.id_of(2), net::HealthState::kDown);
    if (step == 200)
      h.fabric_.set_adapter_health(h.id_of(2), net::HealthState::kUp);
    for (int host : {1, 2, 3, 4}) {
      const AdapterProtocol& p = h.at(static_cast<std::uint8_t>(host));
      if (!p.is_committed()) continue;
      auto [it, fresh] =
          last_view.emplace(p.self().ip, p.committed().view());
      if (!fresh) {
        EXPECT_LE(it->second, p.committed().view());
        it->second = p.committed().view();
      }
    }
  }
}

}  // namespace
}  // namespace gs::proto
