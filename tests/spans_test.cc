// Latency-observatory coverage: SpanTracker correlation over synthetic
// trace streams (every span kind's open/close pair, the abandoned-cause
// bookkeeping that keeps `opened == closed + abandoned + open`), the
// FarmHealthSampler's periodicity and row schema, Prometheus/JSON
// exposition round-trips, and the zero-cost contract — attaching the
// tracker must not perturb what legacy subscribers observe.
#include <gtest/gtest.h>

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "farm/farm.h"
#include "farm/scenario.h"
#include "obs/expo.h"
#include "obs/health.h"
#include "obs/jsonl_sink.h"
#include "obs/spans.h"
#include "obs/trace.h"
#include "sim/simulator.h"
#include "util/stats.h"

namespace gs {
namespace {

using obs::AbandonCause;
using obs::SpanKind;
using obs::SpanTracker;
using obs::TraceKind;

const util::IpAddress kVictim(10, 0, 0, 7);
const util::IpAddress kLeader(10, 0, 0, 9);
const util::IpAddress kGsc(10, 9, 0, 1);

// kDown's HealthState payload carried by kFaultInjected's `a` field.
constexpr std::uint64_t kFullDeath = 1;

void emit(obs::TraceBus& bus, TraceKind kind, sim::SimTime t,
          util::IpAddress src, util::IpAddress peer = {}, std::uint64_t a = 0,
          std::uint64_t b = 0, util::NodeId node = {}) {
  obs::emit_trace(&bus, kind, t, src, peer, a, b, {}, node);
}

// --- Detection spans ---------------------------------------------------------

TEST(SpanTracker, DetectionOpensOnFaultClosesOnCentralCommit) {
  obs::TraceBus bus;
  SpanTracker tracker(bus);
  emit(bus, TraceKind::kFaultInjected, 1'000'000, kVictim, {}, kFullDeath);
  EXPECT_EQ(tracker.open_count(SpanKind::kDetection), 1u);
  emit(bus, TraceKind::kFailureCommitted, 3'500'000, kGsc, kVictim);
  EXPECT_EQ(tracker.opened(SpanKind::kDetection), 1u);
  EXPECT_EQ(tracker.closed(SpanKind::kDetection), 1u);
  EXPECT_EQ(tracker.open_total(), 0u);
  const util::Histogram* h =
      tracker.stats().find_histogram("span.detection_us");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count(), 1u);
  EXPECT_EQ(h->min(), 2'500'000);  // 2.5 s fault -> commit
}

TEST(SpanTracker, DetectionAbandonedWhenFaultClears) {
  obs::TraceBus bus;
  SpanTracker tracker(bus);
  emit(bus, TraceKind::kFaultInjected, 1'000'000, kVictim, {}, kFullDeath);
  emit(bus, TraceKind::kFaultCleared, 2'000'000, kVictim);
  EXPECT_EQ(tracker.abandoned(SpanKind::kDetection, AbandonCause::kRecovered),
            1u);
  EXPECT_EQ(tracker.open_total(), 0u);
  const util::Histogram* h =
      tracker.stats().find_histogram("span.detection_us");
  EXPECT_TRUE(h == nullptr || h->count() == 0) << "no latency was measured";
}

TEST(SpanTracker, RepeatFaultOfCentralDeadVictimIsAlreadyDead) {
  obs::TraceBus bus;
  SpanTracker tracker(bus);
  emit(bus, TraceKind::kFaultInjected, 1'000'000, kVictim, {}, kFullDeath);
  emit(bus, TraceKind::kFailureCommitted, 2'000'000, kGsc, kVictim);
  // Central already holds the victim dead — a second fault has nothing for
  // Central to commit, so the span is born abandoned, never leaked.
  emit(bus, TraceKind::kFaultInjected, 3'000'000, kVictim, {}, kFullDeath);
  EXPECT_EQ(tracker.opened(SpanKind::kDetection), 2u);
  EXPECT_EQ(
      tracker.abandoned(SpanKind::kDetection, AbandonCause::kAlreadyDead), 1u);
  EXPECT_EQ(tracker.open_total(), 0u);
}

TEST(SpanTracker, CommitWithoutFaultIsUnmatchedClose) {
  obs::TraceBus bus;
  SpanTracker tracker(bus);
  // Switch deaths / lease expiries commit failures for healthy adapters.
  emit(bus, TraceKind::kFailureCommitted, 2'000'000, kGsc, kVictim);
  EXPECT_EQ(tracker.unmatched_closes(SpanKind::kDetection), 1u);
  EXPECT_EQ(tracker.closed(SpanKind::kDetection), 0u);
}

TEST(SpanTracker, LeaderDeclarationFeedsLeaderHistogramOnce) {
  obs::TraceBus bus;
  SpanTracker tracker(bus);
  emit(bus, TraceKind::kFaultInjected, 1'000'000, kVictim, {}, kFullDeath);
  emit(bus, TraceKind::kDeathDeclared, 3'000'000, kLeader, kVictim);
  emit(bus, TraceKind::kTakeover, 3'100'000, kLeader, kVictim);  // same fault
  const util::Histogram* h =
      tracker.stats().find_histogram("span.detection_leader_us");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count(), 1u);
  EXPECT_EQ(h->min(), 2'000'000);
  // The end-to-end span is still open: Central has not committed.
  EXPECT_EQ(tracker.open_count(SpanKind::kDetection), 1u);
}

TEST(SpanTracker, GscChurnAbandonsOpenDetections) {
  obs::TraceBus bus;
  SpanTracker tracker(bus);
  emit(bus, TraceKind::kFaultInjected, 1'000'000, kVictim, {}, kFullDeath);
  emit(bus, TraceKind::kGscActivated, 2'000'000, kGsc);
  EXPECT_EQ(
      tracker.abandoned(SpanKind::kDetection, AbandonCause::kGscFailover), 1u);
  // A commit the new Central still produces is counted, not timed.
  emit(bus, TraceKind::kFailureCommitted, 3'000'000, kGsc, kVictim);
  EXPECT_EQ(tracker.unmatched_closes(SpanKind::kDetection), 1u);
  EXPECT_EQ(tracker.open_total(), 0u);
}

TEST(SpanTracker, DeathUnknownToGscAbandonsDetection) {
  obs::TraceBus bus;
  SpanTracker tracker(bus);
  emit(bus, TraceKind::kFaultInjected, 1'000'000, kVictim, {}, kFullDeath);
  // The death claim reached a Central that never knew the victim; the claim
  // is consumed (acked) there, so no commit can ever close this span.
  emit(bus, TraceKind::kGscDeathUnknown, 4'000'000, kGsc, kVictim);
  EXPECT_EQ(
      tracker.abandoned(SpanKind::kDetection, AbandonCause::kUnknownToGsc),
      1u);
  EXPECT_EQ(tracker.open_total(), 0u);
}

// --- View-change spans -------------------------------------------------------

TEST(SpanTracker, ViewChangeClosesOnCoordinatorInstall) {
  obs::TraceBus bus;
  SpanTracker tracker(bus);
  emit(bus, TraceKind::kTwoPcPrepare, 1'000'000, kLeader, {}, /*view=*/5);
  emit(bus, TraceKind::kViewInstalled, 1'250'000, kLeader, kLeader, 5);
  EXPECT_EQ(tracker.closed(SpanKind::kViewChange), 1u);
  const util::Histogram* h =
      tracker.stats().find_histogram("span.view_change_us");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->min(), 250'000);
}

TEST(SpanTracker, Aborted2PcDoesNotLeakViewChangeSpan) {
  obs::TraceBus bus;
  SpanTracker tracker(bus);
  emit(bus, TraceKind::kTwoPcPrepare, 1'000'000, kLeader, {}, /*view=*/5);
  EXPECT_EQ(tracker.open_count(SpanKind::kViewChange), 1u);
  emit(bus, TraceKind::kTwoPcAbort, 1'400'000, kLeader, {}, /*view=*/5,
       /*nacked=*/1);
  EXPECT_EQ(
      tracker.abandoned(SpanKind::kViewChange, AbandonCause::kAborted2Pc), 1u);
  EXPECT_EQ(tracker.open_total(), 0u);
  EXPECT_EQ(tracker.opened(SpanKind::kViewChange),
            tracker.closed(SpanKind::kViewChange) +
                tracker.abandoned(SpanKind::kViewChange));
}

TEST(SpanTracker, NewerProposalSupersedesOlder) {
  obs::TraceBus bus;
  SpanTracker tracker(bus);
  emit(bus, TraceKind::kTwoPcPrepare, 1'000'000, kLeader, {}, 5);
  emit(bus, TraceKind::kTwoPcPrepare, 1'100'000, kLeader, {}, 5);  // retry
  EXPECT_EQ(tracker.opened(SpanKind::kViewChange), 1u) << "same-round retry";
  emit(bus, TraceKind::kTwoPcPrepare, 2'000'000, kLeader, {}, 6);
  EXPECT_EQ(
      tracker.abandoned(SpanKind::kViewChange, AbandonCause::kSuperseded), 1u);
  EXPECT_EQ(tracker.open_count(SpanKind::kViewChange), 1u);
}

// --- Join spans --------------------------------------------------------------

TEST(SpanTracker, JoinSpansFirstBeaconToInstall) {
  obs::TraceBus bus;
  SpanTracker tracker(bus);
  emit(bus, TraceKind::kBeaconSent, 1'000'000, kVictim);
  emit(bus, TraceKind::kBeaconSent, 2'000'000, kVictim);  // still discovering
  EXPECT_EQ(tracker.opened(SpanKind::kJoin), 1u);
  emit(bus, TraceKind::kViewInstalled, 3'000'000, kVictim, kLeader, 1);
  EXPECT_EQ(tracker.closed(SpanKind::kJoin), 1u);
  const util::Histogram* h = tracker.stats().find_histogram("span.join_us");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->min(), 2'000'000) << "measured from the FIRST beacon";
  // Leader beacons after install must not reopen the span.
  emit(bus, TraceKind::kBeaconSent, 4'000'000, kVictim);
  EXPECT_EQ(tracker.open_count(SpanKind::kJoin), 0u);
}

TEST(SpanTracker, JoinAbandonedOnDeathAndOnReset) {
  obs::TraceBus bus;
  SpanTracker tracker(bus);
  emit(bus, TraceKind::kBeaconSent, 1'000'000, kVictim);
  emit(bus, TraceKind::kFaultInjected, 2'000'000, kVictim, {}, kFullDeath);
  EXPECT_EQ(tracker.abandoned(SpanKind::kJoin, AbandonCause::kDied), 1u);
  emit(bus, TraceKind::kBeaconSent, 3'000'000, kLeader);
  emit(bus, TraceKind::kReset, 4'000'000, kLeader);
  EXPECT_EQ(tracker.abandoned(SpanKind::kJoin, AbandonCause::kReset), 1u);
  EXPECT_EQ(tracker.open_count(SpanKind::kJoin), 0u);
  // The fault also opened a detection span — that one is still live.
  EXPECT_EQ(tracker.open_count(SpanKind::kDetection), 1u);
}

// --- Report spans ------------------------------------------------------------

TEST(SpanTracker, ReportSpansSentToApplied) {
  obs::TraceBus bus;
  SpanTracker tracker(bus);
  emit(bus, TraceKind::kReportSent, 1'000'000, kLeader, kGsc, /*seq=*/3);
  emit(bus, TraceKind::kGscReportApplied, 1'040'000, kGsc, kLeader, 3);
  EXPECT_EQ(tracker.closed(SpanKind::kReport), 1u);
  const util::Histogram* h = tracker.stats().find_histogram("span.report_us");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->min(), 40'000);
}

TEST(SpanTracker, ReportAbandonPaths) {
  obs::TraceBus bus;
  SpanTracker tracker(bus);
  emit(bus, TraceKind::kReportSent, 1'000'000, kLeader, kGsc, 3);
  emit(bus, TraceKind::kGscReportDup, 1'040'000, kGsc, kLeader, 3);
  EXPECT_EQ(tracker.abandoned(SpanKind::kReport, AbandonCause::kDuplicate),
            1u);
  emit(bus, TraceKind::kReportSent, 2'000'000, kLeader, kGsc, 4);
  emit(bus, TraceKind::kReportNeedFull, 2'040'000, kLeader, kGsc, 4);
  EXPECT_EQ(tracker.abandoned(SpanKind::kReport, AbandonCause::kNeedFull),
            1u);
  emit(bus, TraceKind::kReportSent, 3'000'000, kLeader, kGsc, 5);
  emit(bus, TraceKind::kViewInstalled, 3'040'000, kLeader, kVictim, 9);
  EXPECT_EQ(tracker.abandoned(SpanKind::kReport, AbandonCause::kDemoted), 1u)
      << "installing under another leader moots the old leadership's report";
  EXPECT_EQ(tracker.open_total(), 0u);
}

// --- Failover spans ----------------------------------------------------------

TEST(SpanTracker, FailoverSpansGscLossToNextAppliedReport) {
  obs::TraceBus bus;
  SpanTracker tracker(bus);
  emit(bus, TraceKind::kGscActivated, 1'000'000, kGsc);
  emit(bus, TraceKind::kGscDeactivated, 5'000'000, kGsc);
  EXPECT_EQ(tracker.open_count(SpanKind::kFailover), 1u);
  emit(bus, TraceKind::kReportSent, 6'000'000, kLeader, {}, 7);
  emit(bus, TraceKind::kGscReportApplied, 6'100'000, kGsc, kLeader, 7);
  EXPECT_EQ(tracker.closed(SpanKind::kFailover), 1u);
  const util::Histogram* h =
      tracker.stats().find_histogram("span.failover_us");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->min(), 1'100'000);
  EXPECT_EQ(tracker.open_total(), 0u);
}

TEST(SpanTracker, StaleGscDeactivationDoesNotOpenFailover) {
  obs::TraceBus bus;
  SpanTracker tracker(bus);
  emit(bus, TraceKind::kGscActivated, 1'000'000, kGsc);
  // A stale partition-island Central dying is not a farm-level failover.
  emit(bus, TraceKind::kGscDeactivated, 2'000'000, util::IpAddress(10, 9, 0, 2));
  EXPECT_EQ(tracker.open_count(SpanKind::kFailover), 0u);
}

// --- Accounting identity and open-span reporting ------------------------------

TEST(SpanTracker, BooksBalanceAcrossMixedTraffic) {
  obs::TraceBus bus;
  SpanTracker tracker(bus);
  emit(bus, TraceKind::kBeaconSent, 1'000'000, kVictim);
  emit(bus, TraceKind::kTwoPcPrepare, 1'100'000, kLeader, {}, 1);
  emit(bus, TraceKind::kViewInstalled, 1'200'000, kLeader, kLeader, 1);
  emit(bus, TraceKind::kViewInstalled, 1'200'000, kVictim, kLeader, 1);
  emit(bus, TraceKind::kReportSent, 1'300'000, kLeader, kGsc, 1);
  emit(bus, TraceKind::kFaultInjected, 2'000'000, kVictim, {}, kFullDeath);
  for (std::size_t k = 0; k < static_cast<std::size_t>(SpanKind::kCount_);
       ++k) {
    const auto kind = static_cast<SpanKind>(k);
    EXPECT_EQ(tracker.opened(kind), tracker.closed(kind) +
                                        tracker.abandoned(kind) +
                                        tracker.open_count(kind))
        << to_string(kind);
  }
  // Exactly the report and the detection remain open, and both are listed.
  const auto open = tracker.open_spans();
  ASSERT_EQ(open.size(), 2u);
  EXPECT_EQ(tracker.open_watermark(), 2u);
  bool saw_detection = false, saw_report = false;
  for (const auto& span : open) {
    if (span.kind == SpanKind::kDetection) {
      saw_detection = true;
      EXPECT_EQ(span.key, kVictim);
      EXPECT_EQ(span.opened_at, 2'000'000);
    }
    if (span.kind == SpanKind::kReport) {
      saw_report = true;
      EXPECT_EQ(span.key, kLeader);
    }
  }
  EXPECT_TRUE(saw_detection);
  EXPECT_TRUE(saw_report);
}

TEST(SpanTracker, CountersLandInSharedRegistry) {
  obs::TraceBus bus;
  util::StatsRegistry registry;
  SpanTracker tracker(bus, &registry);
  emit(bus, TraceKind::kFaultInjected, 1'000'000, kVictim, {}, kFullDeath);
  emit(bus, TraceKind::kFailureCommitted, 2'000'000, kGsc, kVictim);
  EXPECT_EQ(registry.counter_value("span.detection.opened"), 1u);
  EXPECT_EQ(registry.counter_value("span.detection.closed"), 1u);
  ASSERT_NE(registry.find_histogram("span.detection_us"), nullptr);
}

// --- Node-death derived histogram --------------------------------------------

TEST(SpanTracker, NodeDetectionMeasuredFromFirstAdapterFault) {
  obs::TraceBus bus;
  SpanTracker tracker(bus);
  const util::NodeId node(4);
  emit(bus, TraceKind::kFaultInjected, 1'000'000, kVictim, {}, kFullDeath, 0,
       node);
  emit(bus, TraceKind::kFaultInjected, 2'000'000, util::IpAddress(10, 1, 0, 7),
       {}, kFullDeath, 0, node);
  emit(bus, TraceKind::kNodeDown, 9'000'000, kGsc, {}, 0, 0, node);
  emit(bus, TraceKind::kNodeDown, 9'500'000, kGsc, {}, 0, 0, node);  // dup
  const util::Histogram* h =
      tracker.stats().find_histogram("span.node_detection_us");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count(), 1u);
  EXPECT_EQ(h->min(), 8'000'000);
}

// --- FarmHealthSampler -------------------------------------------------------

obs::FarmHealthSampler::Snapshot test_snapshot() {
  obs::FarmHealthSampler::Snapshot snap;
  obs::FarmHealthSampler::AmgSample amg;
  amg.leader = kLeader;
  amg.vlan = util::VlanId(12);
  amg.view = 3;
  amg.size = 8;
  amg.committed_at = 0;
  amg.digest = 0xabcd;
  snap.amgs.push_back(amg);
  obs::FarmHealthSampler::GscSample gsc;
  gsc.gsc = kGsc;
  gsc.groups = 1;
  gsc.adapters = 8;
  gsc.alive = 7;
  gsc.nodes_down = 1;
  snap.gsc = gsc;
  obs::FarmHealthSampler::WireSample wire;
  wire.vlan = util::VlanId(12);
  wire.frames_sent = 100;
  wire.bytes_sent = 6400;
  snap.wire.push_back(wire);
  obs::FarmHealthSampler::SpanSample spans;
  spans.open = 2;
  spans.watermark = 5;
  spans.closed = 40;
  spans.abandoned = 3;
  snap.spans = spans;
  return snap;
}

TEST(FarmHealthSampler, SamplesPeriodicallyAndPublishesRowSchema) {
  sim::Simulator sim;
  obs::TraceBus bus;
  std::vector<obs::TraceRecord> rows;
  auto sub = bus.subscribe(obs::trace_mask({TraceKind::kHealthSample}),
                           [&rows](const obs::TraceRecord& r) {
                             rows.push_back(r);
                           });
  util::StatsRegistry registry;
  obs::FarmHealthSampler sampler(sim, bus, test_snapshot, sim::seconds(5),
                                 &registry);
  sim.run_until(sim::seconds(26));
  EXPECT_EQ(sampler.samples_taken(), 5u);  // t = 5, 10, 15, 20, 25
  // Each sample publishes: 1 amg + gsc.tables + gsc.alive + 1 wire +
  // spans.open + spans.done = 6 rows.
  ASSERT_EQ(rows.size(), 30u);
  std::map<std::string, int> by_detail;
  for (const auto& r : rows) {
    EXPECT_EQ(r.kind, TraceKind::kHealthSample);
    ++by_detail[r.detail];
  }
  EXPECT_EQ(by_detail["amg"], 5);
  EXPECT_EQ(by_detail["gsc.tables"], 5);
  EXPECT_EQ(by_detail["gsc.alive"], 5);
  EXPECT_EQ(by_detail["wire"], 5);
  EXPECT_EQ(by_detail["spans.open"], 5);
  EXPECT_EQ(by_detail["spans.done"], 5);
  // Row payloads follow the documented schema.
  const obs::TraceRecord& amg_row = rows[0];
  EXPECT_EQ(amg_row.detail, "amg");
  EXPECT_EQ(amg_row.source, kLeader);
  EXPECT_EQ(amg_row.vlan, util::VlanId(12));
  EXPECT_EQ(amg_row.a, 5'000'000u);  // view age at t=5s, committed at 0
  EXPECT_EQ(amg_row.b, 8u);          // group size
  // Gauges reflect the latest snapshot.
  EXPECT_EQ(registry.counter_value("health.samples"), 5u);
  EXPECT_EQ(registry.gauge_value("farm.amg.count"), 1.0);
  EXPECT_EQ(registry.gauge_value("gsc.adapters_alive"), 7.0);
  EXPECT_EQ(registry.gauge_value("gsc.nodes_down"), 1.0);
  EXPECT_EQ(registry.gauge_value("spans.open_watermark"), 5.0);
  EXPECT_EQ(
      registry.gauge_value(util::labeled("amg.view", {{"vlan", "12"}})), 3.0);
}

TEST(FarmHealthSampler, GaugesOnlyWhenNobodySubscribes) {
  sim::Simulator sim;
  obs::TraceBus bus;
  util::StatsRegistry registry;
  obs::FarmHealthSampler sampler(sim, bus, test_snapshot, sim::seconds(5),
                                 &registry);
  sim.run_until(sim::seconds(11));
  EXPECT_EQ(sampler.samples_taken(), 2u);
  EXPECT_EQ(registry.gauge_value("farm.amg.count"), 1.0);
  sampler.sample_now();
  EXPECT_EQ(sampler.samples_taken(), 3u);
  EXPECT_EQ(registry.counter_value("health.samples"), 3u);
}

// --- Exposition: Prometheus text + JSON --------------------------------------

bool valid_metric_name(const std::string& name) {
  if (name.empty()) return false;
  if (!std::isalpha(static_cast<unsigned char>(name[0])) && name[0] != '_' &&
      name[0] != ':')
    return false;
  for (char c : name)
    if (!std::isalnum(static_cast<unsigned char>(c)) && c != '_' && c != ':')
      return false;
  return true;
}

// Minimal Prometheus text-format 0.0.4 parser: every line must be a
// well-formed TYPE comment or a `name[{labels}] value` sample whose name
// was declared by a preceding TYPE comment.
void parse_prometheus(const std::string& text,
                      std::map<std::string, std::string>* samples) {
  std::map<std::string, std::string> types;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    ASSERT_FALSE(line.empty()) << "blank line in exposition";
    if (line[0] == '#') {
      std::istringstream ls(line);
      std::string hash, kw, name, type;
      ls >> hash >> kw >> name >> type;
      ASSERT_EQ(kw, "TYPE") << line;
      ASSERT_TRUE(valid_metric_name(name)) << line;
      ASSERT_TRUE(type == "counter" || type == "gauge" || type == "summary")
          << line;
      types[name] = type;
      continue;
    }
    const std::size_t space = line.rfind(' ');
    ASSERT_NE(space, std::string::npos) << line;
    std::string key = line.substr(0, space);
    const std::string value = line.substr(space + 1);
    char* end = nullptr;
    std::strtod(value.c_str(), &end);
    ASSERT_EQ(*end, '\0') << "unparseable value in: " << line;
    std::string name = key;
    if (const std::size_t brace = name.find('{'); brace != std::string::npos) {
      ASSERT_EQ(name.back(), '}') << line;
      name = name.substr(0, brace);
    }
    ASSERT_TRUE(valid_metric_name(name)) << line;
    // Summary series append _sum/_count to the declared family name.
    std::string family = name;
    if (!types.contains(family)) {
      for (const char* suffix : {"_sum", "_count"}) {
        const std::string s(suffix);
        if (family.size() > s.size() &&
            family.compare(family.size() - s.size(), s.size(), s) == 0) {
          family = family.substr(0, family.size() - s.size());
          break;
        }
      }
    }
    ASSERT_TRUE(types.contains(family)) << "undeclared family: " << line;
    (*samples)[key] = value;
  }
}

TEST(Expo, PrometheusRoundTripsThroughParser) {
  util::StatsRegistry registry;
  registry.counter("span.detection.opened").add(3);
  registry.gauge(util::labeled("amg.view", {{"vlan", "12"}})).set(7);
  registry.gauge("farm.amg.count").set(2);
  for (std::int64_t v : {100, 200, 400}) {
    registry.histogram("span.detection_us").record(v);
  }
  const std::string text = obs::expo::to_prometheus(registry);
  ASSERT_FALSE(text.empty());
  EXPECT_EQ(text.back(), '\n');
  std::map<std::string, std::string> samples;
  parse_prometheus(text, &samples);
  if (HasFatalFailure()) return;
  EXPECT_EQ(samples.at("gs_span_detection_opened"), "3");
  EXPECT_EQ(samples.at("gs_amg_view{vlan=\"12\"}"), "7");
  EXPECT_EQ(samples.at("gs_span_detection_us_count"), "3");
  EXPECT_TRUE(samples.contains("gs_span_detection_us{quantile=\"0.5\"}"));
}

// Tiny structural JSON validator: balanced containers outside strings,
// proper string escapes — enough to catch emitter bugs without a parser.
void assert_balanced_json(const std::string& text) {
  std::vector<char> stack;
  bool in_string = false, escaped = false;
  for (char c : text) {
    if (in_string) {
      if (escaped) escaped = false;
      else if (c == '\\') escaped = true;
      else if (c == '"') in_string = false;
      continue;
    }
    switch (c) {
      case '"': in_string = true; break;
      case '{': case '[': stack.push_back(c); break;
      case '}':
        ASSERT_FALSE(stack.empty());
        ASSERT_EQ(stack.back(), '{');
        stack.pop_back();
        break;
      case ']':
        ASSERT_FALSE(stack.empty());
        ASSERT_EQ(stack.back(), '[');
        stack.pop_back();
        break;
      default: break;
    }
  }
  EXPECT_FALSE(in_string);
  EXPECT_TRUE(stack.empty());
}

TEST(Expo, JsonCarriesAllSections) {
  util::StatsRegistry registry;
  registry.counter("span.join.opened").add(4);
  registry.gauge("spans.open").set(1);
  registry.histogram("span.join_us").record(1500);
  const std::string text = obs::expo::to_json(registry);
  assert_balanced_json(text);
  EXPECT_EQ(text.front(), '{');
  EXPECT_NE(text.find("\"counters\""), std::string::npos);
  EXPECT_NE(text.find("\"gauges\""), std::string::npos);
  EXPECT_NE(text.find("\"histograms\""), std::string::npos);
  EXPECT_NE(text.find("\"span.join.opened\":4"), std::string::npos);
  EXPECT_NE(text.find("\"span.join_us\""), std::string::npos);
  EXPECT_NE(text.find("\"count\":1"), std::string::npos);
}

TEST(Expo, WriteMetricsFilesEmitsBothTwins) {
  util::StatsRegistry registry;
  registry.counter("span.detection.opened").add(1);
  const std::string path = ::testing::TempDir() + "/expo_test.prom";
  ASSERT_TRUE(obs::expo::write_metrics_files(registry, path));
  std::ifstream prom(path), json(path + ".json");
  ASSERT_TRUE(prom.good());
  ASSERT_TRUE(json.good());
  std::stringstream ps, js;
  ps << prom.rdbuf();
  js << json.rdbuf();
  EXPECT_EQ(ps.str(), obs::expo::to_prometheus(registry));
  EXPECT_EQ(js.str(), obs::expo::to_json(registry));
  std::remove(path.c_str());
  std::remove((path + ".json").c_str());
}

// --- Farm integration --------------------------------------------------------

gs::proto::Params fast_params() {
  gs::proto::Params params;
  params.beacon_phase = sim::seconds(2);
  params.amg_stable_wait = sim::seconds(1);
  params.gsc_stable_wait = sim::seconds(3);
  return params;
}

TEST(FarmSpans, DetectionSpanClosesEndToEnd) {
  sim::Simulator sim;
  farm::Farm farm(sim, farm::FarmSpec::uniform(8, 1), fast_params(),
                  /*seed=*/404);
  SpanTracker& spans = farm.enable_span_tracking();
  farm.start();
  ASSERT_TRUE(farm::run_until_converged(farm, sim::seconds(120)));

  const util::AdapterId victim = farm.node_adapters(4)[0];
  farm.fabric().set_adapter_health(victim, net::HealthState::kDown);
  const auto committed = farm::run_until(
      sim, sim.now() + fast_params().move_window + sim::seconds(60), [&] {
        return spans.closed(SpanKind::kDetection) >= 1;
      });
  ASSERT_TRUE(committed.has_value()) << "detection span never closed";
  EXPECT_EQ(spans.open_count(SpanKind::kDetection), 0u);
  const util::Histogram* h = farm.metrics().find_histogram("span.detection_us");
  ASSERT_NE(h, nullptr);
  ASSERT_EQ(h->count(), 1u);
  // The end-to-end latency includes the move-inference hold; the leader-side
  // histogram must come in strictly below it.
  const util::Histogram* leader =
      farm.metrics().find_histogram("span.detection_leader_us");
  ASSERT_NE(leader, nullptr);
  ASSERT_EQ(leader->count(), 1u);
  EXPECT_GT(h->min(), leader->max());
  EXPECT_GE(static_cast<double>(h->min()),
            sim::to_seconds(fast_params().move_window) * 1e6);
}

// The zero-cost contract: what a legacy subscriber records must be
// byte-identical whether or not the observatory rides on the same bus.
TEST(FarmSpans, TrackerDoesNotPerturbLegacySubscribers) {
  constexpr std::uint64_t kLegacyMask =
      obs::kPhaseMask | obs::kFailureMask | obs::kReportMask;
  auto run = [&](bool observed, const std::string& path) {
    sim::Simulator sim;
    farm::Farm farm(sim, farm::FarmSpec::uniform(6, 1), fast_params(),
                    /*seed=*/505);
    obs::JsonlSink sink;
    ASSERT_TRUE(sink.open(path));
    auto tap = sink.tap(farm.trace_bus(), kLegacyMask);
    if (observed) {
      farm.enable_span_tracking();
      farm.enable_health_sampling(sim::seconds(5));
    }
    farm.start();
    ASSERT_TRUE(farm::run_until_converged(farm, sim::seconds(120)));
    farm.fabric().set_adapter_health(farm.node_adapters(3)[0],
                                     net::HealthState::kDown);
    sim.run_until(sim.now() + sim::seconds(30));
  };
  const std::string plain = ::testing::TempDir() + "/spans_legacy_plain.jsonl";
  const std::string traced =
      ::testing::TempDir() + "/spans_legacy_traced.jsonl";
  run(false, plain);
  run(true, traced);
  std::ifstream a(plain), b(traced);
  std::stringstream as, bs;
  as << a.rdbuf();
  bs << b.rdbuf();
  ASSERT_GT(as.str().size(), 0u);
  EXPECT_EQ(as.str(), bs.str())
      << "attaching the observatory changed what a legacy tap records";
  std::remove(plain.c_str());
  std::remove(traced.c_str());
}

}  // namespace
}  // namespace gs
