// WallClock / TimeSource seam tests: monotonicity, timer-wheel ordering
// checked against the sim::Simulator reference implementation, cancel
// semantics, and the shutdown-ordering regression — a daemon destroyed with
// timers and dispatches in flight must never fire into freed memory (the
// ASan CI job turns any violation into a hard failure).
#include <gtest/gtest.h>

#include <functional>
#include <thread>
#include <vector>

#include "farm/realnet.h"
#include "net/udp_transport.h"
#include "sim/event_queue.h"
#include "sim/heap_queue.h"
#include "sim/simulator.h"
#include "sim/wallclock.h"

namespace gs {
namespace {

TEST(WallClockTest, NowIsMonotonic) {
  sim::WallClock clock;
  sim::SimTime last = clock.now();
  EXPECT_GE(last, 0);
  for (int i = 0; i < 1000; ++i) {
    const sim::SimTime now = clock.now();
    EXPECT_GE(now, last);
    last = now;
  }
}

TEST(WallClockTest, TimersFireInDeadlineOrderLikeTheSimulator) {
  // Same schedule on both TimeSource implementations; the observed firing
  // order must match (ties broken by arming order in both).
  const std::vector<sim::SimDuration> delays = {
      sim::milliseconds(30), sim::milliseconds(10), sim::milliseconds(20),
      sim::milliseconds(10), 0};

  std::vector<int> sim_order;
  sim::Simulator sim;
  for (std::size_t i = 0; i < delays.size(); ++i)
    sim.after(delays[i], [&sim_order, i] { sim_order.push_back(int(i)); });
  sim.run();

  std::vector<int> wall_order;
  sim::WallClock clock;
  for (std::size_t i = 0; i < delays.size(); ++i)
    clock.after(delays[i], [&wall_order, i] { wall_order.push_back(int(i)); });
  while (wall_order.size() < delays.size()) {
    if (clock.run_due() == 0)
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  EXPECT_EQ(sim_order, wall_order);
  EXPECT_EQ(wall_order, (std::vector<int>{4, 1, 3, 2, 0}));
  EXPECT_EQ(clock.pending(), 0u);
  EXPECT_EQ(clock.executed(), delays.size());
}

TEST(WallClockTest, PastDeadlinesFireOnNextRunDue) {
  sim::WallClock clock;
  bool fired = false;
  clock.at(0, [&] { fired = true; });  // long past by construction time
  EXPECT_FALSE(fired);
  EXPECT_EQ(clock.run_due(), 1u);
  EXPECT_TRUE(fired);
}

TEST(WallClockTest, CancelPreventsFiringAndReportsPendingState) {
  sim::WallClock clock;
  bool fired = false;
  sim::Timer t = clock.after(0, [&] { fired = true; });
  EXPECT_TRUE(t.armed());
  EXPECT_TRUE(t.cancel());
  EXPECT_FALSE(t.cancel());  // second cancel: no longer pending
  EXPECT_EQ(clock.run_due(), 0u);
  EXPECT_FALSE(fired);
}

TEST(WallClockTest, RunDueDoesNotLivelockOnZeroDelayRearm) {
  // A callback that re-arms itself at zero delay must not spin forever
  // inside one run_due() pass (the cutoff snapshots now()).
  // The pass may legitimately run a few re-arms while the microsecond
  // clock has not ticked yet, but it must exit as soon as it does — a
  // broken implementation spins to the cap and drains the queue.
  constexpr int kCap = 100000;
  sim::WallClock clock;
  int fires = 0;
  std::function<void()> rearm = [&] {
    ++fires;
    if (fires < kCap) clock.after(0, rearm);
  };
  clock.after(0, rearm);
  const std::size_t ran = clock.run_due();
  EXPECT_GE(ran, 1u);
  EXPECT_LT(fires, kCap);
  EXPECT_GT(clock.pending(), 0u);  // the re-armed timer waits its turn
}

// The cutoff-snapshot guard, replicated pop-for-pop over a raw queue: the
// run_due() loop body is backend-independent, so the livelock pin must hold
// for the timing wheel and the reference heap alike. A fake clock advances
// one microsecond per callback, exactly the condition under which the real
// WallClock escapes a zero-delay re-arm storm.
template <typename Queue>
void ZeroDelayRearmRespectsCutoffSnapshot() {
  Queue q;
  sim::SimTime fake_now = 1000;
  constexpr int kCap = 100000;
  int fires = 0;
  std::function<void()> rearm = [&] {
    ++fires;
    ++fake_now;  // wall time moves while the callback runs
    if (fires < kCap) q.push(fake_now, rearm);
  };
  q.push(fake_now, rearm);

  const sim::SimTime cutoff = fake_now;  // snapshotted before the pass
  std::size_t ran = 0;
  while (!q.empty() && q.next_time() <= cutoff) {
    auto [when, fn] = q.pop();
    (void)when;
    fn();
    ++ran;
  }
  EXPECT_EQ(ran, 1u);  // the re-arm landed past the cutoff
  EXPECT_LT(fires, kCap);
  EXPECT_EQ(q.size(), 1u);  // and waits for the next pass
}

TEST(WallClockTest, CutoffSnapshotGuardHoldsOnWheelBackend) {
  ZeroDelayRearmRespectsCutoffSnapshot<sim::EventQueue>();
}

TEST(WallClockTest, CutoffSnapshotGuardHoldsOnHeapReference) {
  ZeroDelayRearmRespectsCutoffSnapshot<sim::HeapEventQueue>();
}

TEST(WallClockTest, MoveAssignCancelsOverwrittenTimer) {
  // Overwriting a live Timer by move-assignment must cancel the old event,
  // not leak it to fire (the WallClock backend of the same Simulator pin).
  sim::WallClock clock;
  int first = 0, second = 0;
  sim::Timer t = clock.after(0, [&] { ++first; });
  t = clock.after(0, [&] { ++second; });
  while (clock.run_due() == 0)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  EXPECT_EQ(first, 0);
  EXPECT_EQ(second, 1);
  EXPECT_EQ(clock.pending(), 0u);
}

TEST(WallClockTest, CancelAllDropsEverythingWithoutFiring) {
  sim::WallClock clock;
  int fires = 0;
  std::vector<sim::Timer> timers;
  for (int i = 0; i < 16; ++i)
    timers.push_back(clock.after(0, [&] { ++fires; }));
  clock.cancel_all();
  EXPECT_EQ(clock.pending(), 0u);
  EXPECT_EQ(clock.run_due(), 0u);
  EXPECT_EQ(fires, 0);
  // Outstanding handles stay safe: cancel() is a no-op, not a crash.
  for (sim::Timer& t : timers) EXPECT_FALSE(t.cancel());
}

// --- Shutdown ordering ------------------------------------------------------

net::UdpTransport::PortSpec loop_port(std::uint8_t host) {
  net::UdpTransport::PortSpec spec;
  spec.ip = util::IpAddress(10, 9, 0, host);
  spec.mac = util::MacAddress(host);
  spec.vlan = util::VlanId(9);
  return spec;
}

TEST(ShutdownOrderingTest, DaemonDestroyedWithInFlightTimersNeverFires) {
  // Boot two real daemons far enough to have beacon/heartbeat timers and
  // processing-delay dispatches in flight, then destroy one daemon while
  // the clock still holds its callbacks. Draining the clock afterwards must
  // not touch the dead daemon or its closed transport (ASan would flag any
  // use-after-free).
  proto::Params params;
  params.start_skew_max = 0;
  params.beacon_phase = sim::milliseconds(50);
  params.beacon_interval = sim::milliseconds(10);
  params.beacon_setup_min = params.beacon_setup_max = sim::milliseconds(10);
  params.hb_period = sim::milliseconds(10);
  params.proc_delay_mean = sim::milliseconds(5);

  sim::WallClock clock;
  net::EventLoop loop;
  net::UdpPortMap map(48200, 16);

  auto transport_a = std::make_unique<net::UdpTransport>(
      loop, map, std::vector<net::UdpTransport::PortSpec>{loop_port(1)});
  auto transport_b = std::make_unique<net::UdpTransport>(
      loop, map, std::vector<net::UdpTransport::PortSpec>{loop_port(2)});

  auto make_daemon = [&](net::Transport* transport, std::uint32_t id) {
    proto::GsDaemon::Options opts;
    opts.clock = &clock;
    opts.transport = transport;
    opts.params = &params;
    opts.node.node = util::NodeId(id);
    opts.node.name = "shutdown-" + std::to_string(id);
    opts.rng = util::Rng(1000 + id);
    return std::make_unique<proto::GsDaemon>(std::move(opts));
  };
  auto daemon_a = make_daemon(transport_a.get(), 1);
  auto daemon_b = make_daemon(transport_b.get(), 2);
  daemon_a->start();
  daemon_b->start();

  // Let beacons fly so both daemons have exchanged frames and hold armed
  // timers plus pending proc-delay dispatches.
  loop.run_until(clock, clock.now() + sim::milliseconds(120), nullptr);
  EXPECT_GT(transport_a->stats().frames_sent, 0u);

  // Destroy daemon A with its timers still pending, then its transport.
  daemon_a.reset();
  transport_a.reset();

  // Drive the loop well past every deadline daemon A ever armed. Life
  // tokens void its fire-and-forget callbacks; Timer members were
  // cancelled by the destructors. Daemon B keeps running against a peer
  // that went silent — exactly the kill path.
  loop.run_until(clock, clock.now() + sim::milliseconds(200), nullptr);
  EXPECT_FALSE(daemon_b->halted());
  daemon_b.reset();
  transport_b.reset();
  clock.cancel_all();
}

TEST(ShutdownOrderingTest, RealFarmKillThenTeardownIsClean) {
  // kill_node closes sockets while the victim's timers are still queued;
  // the farm must keep running and tear down without touching them.
  farm::RealFarm::Options opts;
  opts.base_port = 48300;
  opts.params.start_skew_max = 0;
  opts.params.beacon_phase = sim::milliseconds(80);
  opts.params.beacon_interval = sim::milliseconds(20);
  opts.params.beacon_setup_min = opts.params.beacon_setup_max =
      sim::milliseconds(10);
  opts.params.hb_period = sim::milliseconds(20);
  opts.params.amg_stable_wait = sim::milliseconds(50);
  opts.params.gsc_stable_wait = sim::milliseconds(100);
  opts.params.proc_delay_mean = 0;
  farm::RealFarm farm(std::move(opts));
  for (int n = 0; n < 3; ++n) {
    farm::RealFarm::NodeSpec spec;
    spec.name = "kill-" + std::to_string(n);
    spec.ports = {loop_port(static_cast<std::uint8_t>(10 + n))};
    farm.add_node(std::move(spec));
  }
  farm.start();
  ASSERT_TRUE(farm.run_until(sim::seconds(20), [&] { return farm.converged(); }));
  farm.kill_node(0);
  EXPECT_TRUE(farm.killed(0));
  EXPECT_FALSE(farm.udp_transport(0)->loopback_ok(0));
  // Survivors re-converge without the victim.
  EXPECT_TRUE(farm.run_until(sim::seconds(20), [&] { return farm.converged(); }));
  // Destructor runs with the victim's stale timers still in the wheel.
}

}  // namespace
}  // namespace gs
