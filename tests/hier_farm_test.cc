// Farm-level integration of the two-level Central hierarchy: per-domain
// Centrals digest their VLANs into a RootCentral over batched DomainReports,
// with failover exercised at BOTH levels — a domain Central standby taking
// over (new epoch, slice replaced) and a root GSC loss rebuilding the
// aggregate from the domain fulls its successor solicits.
#include <gtest/gtest.h>

#include <optional>

#include "farm/farm.h"
#include "farm/scenario.h"

namespace gs {
namespace {

proto::Params hier_params() {
  proto::Params p;
  p.beacon_phase = sim::seconds(2);
  p.amg_stable_wait = sim::milliseconds(500);
  p.gsc_stable_wait = sim::seconds(2);
  p.move_window = sim::seconds(3);
  p.domain_refresh = sim::seconds(2);
  p.domain_lease = sim::seconds(6);
  return p;
}

class HierFarmTest : public ::testing::Test {
 protected:
  void build(int domains, int workers, std::uint64_t seed = 1) {
    params_ = hier_params();
    farm_.emplace(sim_, farm::FarmSpec::hierarchical(domains, workers),
                  params_, seed);
    farm_->start();
    ASSERT_TRUE(farm::run_until_converged(*farm_, sim::seconds(120)));
    ASSERT_TRUE(farm::run_until_gsc_stable(*farm_, sim::seconds(240)));
  }

  // Adapters the domain tier covers: everything off the root VLAN. (The
  // root VLAN's own membership — root mgmt plus the uplink adapters — is the
  // root-tier plain Central's job; the RootCentral only aggregates digests.)
  std::size_t domain_covered_healthy() {
    std::size_t n = 0;
    for (util::VlanId vlan : farm_->vlans())
      if (vlan != farm::admin_vlan())
        n += farm_->healthy_adapters_in_vlan(vlan).size();
    return n;
  }

  bool root_caught_up() {
    proto::RootCentral* root = farm_->active_root_central();
    return root != nullptr &&
           root->alive_adapter_count() == domain_covered_healthy();
  }

  sim::Simulator sim_;
  proto::Params params_;
  std::optional<farm::Farm> farm_;
};

TEST_F(HierFarmTest, DigestsReachRootAndDeriveGroups) {
  build(2, 3);
  ASSERT_TRUE(farm::run_until(sim_, sim_.now() + sim::seconds(60),
                              [&] { return root_caught_up(); }));
  proto::RootCentral* root = farm_->active_root_central();
  ASSERT_NE(root, nullptr);
  EXPECT_EQ(root->domain_count(), 2u);
  // One derived group per non-root VLAN: each domain's admin VLAN plus its
  // workers' data VLAN.
  EXPECT_EQ(root->groups().size(), 4u);
  EXPECT_GT(root->reports_received(), 0u);
  // Rows carry the owning domain, and the root tier also runs a plain
  // Central for the root VLAN itself.
  for (util::VlanId vlan : farm_->vlans()) {
    if (vlan == farm::admin_vlan()) continue;
    for (util::AdapterId id : farm_->healthy_adapters_in_vlan(vlan)) {
      auto status = root->adapter_status(farm_->fabric().adapter(id).ip());
      ASSERT_TRUE(status.has_value());
      EXPECT_TRUE(status->alive);
    }
  }
  EXPECT_NE(farm_->active_root_tier_central(), nullptr);
}

TEST_F(HierFarmTest, DomainCentralFailoverStandbyTakesOver) {
  build(2, 3);
  ASSERT_TRUE(farm::run_until(sim_, sim_.now() + sim::seconds(60),
                              [&] { return root_caught_up(); }));
  const auto victim = farm_->expected_domain_gsc_node(0);
  ASSERT_TRUE(victim.has_value());
  farm_->fail_node(*victim);
  // The standby management node must win the domain-admin election, bring
  // up its own Central + uplink incarnation (new epoch), and re-establish
  // the domain's slice at the root — minus the dead node's adapters.
  ASSERT_TRUE(farm::run_until(sim_, sim_.now() + sim::seconds(120), [&] {
    const auto now_expected = farm_->expected_domain_gsc_node(0);
    return now_expected.has_value() && *now_expected != *victim &&
           farm_->active_domain_central(0) != nullptr && root_caught_up();
  }));
  proto::RootCentral* root = farm_->active_root_central();
  ASSERT_NE(root, nullptr);
  EXPECT_EQ(root->domain_count(), 2u);
  // The re-established slice still attributes its rows to domain 0.
  const util::VlanId vlan = farm::domain_admin_vlan(0);
  for (util::AdapterId id : farm_->healthy_adapters_in_vlan(vlan)) {
    auto status = root->adapter_status(farm_->fabric().adapter(id).ip());
    ASSERT_TRUE(status.has_value());
    EXPECT_TRUE(status->alive);
    EXPECT_EQ(status->domain, 0u);
  }
}

TEST_F(HierFarmTest, RootFailoverRebuildsFromDomainFulls) {
  build(2, 3);
  ASSERT_TRUE(farm::run_until(sim_, sim_.now() + sim::seconds(60),
                              [&] { return root_caught_up(); }));
  const auto victim = farm_->expected_root_node();
  ASSERT_TRUE(victim.has_value());
  proto::RootCentral* old_root = farm_->active_root_central();
  ASSERT_NE(old_root, nullptr);
  farm_->fail_node(*victim);
  // A fresh RootCentral starts empty on the surviving root-tier node and
  // rebuilds the whole farm view from the fulls the uplinks send when the
  // root-VLAN AMG re-elects (or its need_full acks solicit).
  ASSERT_TRUE(farm::run_until(sim_, sim_.now() + sim::seconds(120), [&] {
    const auto now_expected = farm_->expected_root_node();
    proto::RootCentral* root = farm_->active_root_central();
    return now_expected.has_value() && *now_expected != *victim &&
           root != nullptr && root != old_root && root_caught_up();
  }));
  EXPECT_EQ(farm_->active_root_central()->domain_count(), 2u);
}

TEST_F(HierFarmTest, DarkDomainExpiresWholesaleAndRecovers) {
  build(2, 3);
  ASSERT_TRUE(farm::run_until(sim_, sim_.now() + sim::seconds(60),
                              [&] { return root_caught_up(); }));
  // Kill BOTH of domain 1's management nodes: no eligible host remains, so
  // the domain goes dark at the root — no successor, no death notices.
  const auto first = farm_->expected_domain_gsc_node(1);
  ASSERT_TRUE(first.has_value());
  farm_->fail_node(*first);
  const auto second = farm_->expected_domain_gsc_node(1);
  ASSERT_TRUE(second.has_value());
  ASSERT_NE(*second, *first);
  farm_->fail_node(*second);
  // After domain_lease of silence the root retires the slice wholesale:
  // every row it owned goes dead and the incarnation is forgotten.
  ASSERT_TRUE(farm::run_until(sim_, sim_.now() + sim::seconds(120), [&] {
    proto::RootCentral* root = farm_->active_root_central();
    return root != nullptr && root->domain_count() == 1;
  }));
  proto::RootCentral* root = farm_->active_root_central();
  for (util::AdapterId id :
       farm_->healthy_adapters_in_vlan(farm::domain_admin_vlan(1))) {
    auto status = root->adapter_status(farm_->fabric().adapter(id).ip());
    ASSERT_TRUE(status.has_value());
    EXPECT_FALSE(status->alive);  // stale-info-wins: dark, presumed dead
  }
  // A management node returning re-elects the domain Central, whose fresh
  // epoch re-establishes the slice and revives the rows.
  farm_->recover_node(*first);
  ASSERT_TRUE(farm::run_until(sim_, sim_.now() + sim::seconds(180), [&] {
    proto::RootCentral* r = farm_->active_root_central();
    return r != nullptr && r->domain_count() == 2 && root_caught_up();
  }));
}

}  // namespace
}  // namespace gs
