// Unit tests for the configuration database and the discovered-vs-expected
// verifier (§2.2).
#include <gtest/gtest.h>

#include "config/configdb.h"
#include "config/verifier.h"

namespace gs::config {
namespace {

AdapterRecord record(std::uint32_t id, std::uint32_t node, util::IpAddress ip,
                     std::uint32_t vlan, std::uint32_t sw = 0,
                     std::uint32_t port = 0) {
  AdapterRecord r;
  r.adapter = util::AdapterId(id);
  r.node = util::NodeId(node);
  r.ip = ip;
  r.expected_vlan = util::VlanId(vlan);
  r.wired_switch = util::SwitchId(sw);
  r.wired_port = util::PortId(port);
  return r;
}

class ConfigDbTest : public ::testing::Test {
 protected:
  void SetUp() override {
    NodeRecord n0;
    n0.node = util::NodeId(0);
    n0.name = "web-0";
    n0.domain = util::DomainId(1);
    n0.central_eligible = true;
    db_.put_node(n0);

    db_.put_adapter(record(0, 0, util::IpAddress(10, 0, 0, 1), 1, 0, 0));
    db_.put_adapter(record(1, 0, util::IpAddress(10, 0, 1, 1), 100, 0, 1));
    db_.put_adapter(record(2, 1, util::IpAddress(10, 0, 0, 2), 1, 1, 0));
  }

  ConfigDb db_;
};

TEST_F(ConfigDbTest, NodeLookup) {
  auto node = db_.node(util::NodeId(0));
  ASSERT_TRUE(node.has_value());
  EXPECT_EQ(node->name, "web-0");
  EXPECT_TRUE(node->central_eligible);
  EXPECT_FALSE(db_.node(util::NodeId(9)).has_value());
}

TEST_F(ConfigDbTest, AdapterLookups) {
  EXPECT_TRUE(db_.adapter(util::AdapterId(1)).has_value());
  EXPECT_FALSE(db_.adapter(util::AdapterId(99)).has_value());
  auto by_ip = db_.adapter_by_ip(util::IpAddress(10, 0, 1, 1));
  ASSERT_TRUE(by_ip.has_value());
  EXPECT_EQ(by_ip->adapter, util::AdapterId(1));
}

TEST_F(ConfigDbTest, GroupedQueries) {
  EXPECT_EQ(db_.adapters_on_vlan(util::VlanId(1)).size(), 2u);
  EXPECT_EQ(db_.adapters_of_node(util::NodeId(0)).size(), 2u);
  EXPECT_EQ(db_.adapters_on_switch(util::SwitchId(0)).size(), 2u);
  EXPECT_EQ(db_.all_nodes().size(), 1u);
  EXPECT_EQ(db_.all_adapters().size(), 3u);
}

TEST_F(ConfigDbTest, SetExpectedVlan) {
  db_.set_expected_vlan(util::AdapterId(1), util::VlanId(101));
  EXPECT_EQ(db_.adapter(util::AdapterId(1))->expected_vlan, util::VlanId(101));
}

TEST_F(ConfigDbTest, SetNodeDomain) {
  db_.set_node_domain(util::NodeId(0), util::DomainId(7));
  EXPECT_EQ(db_.node(util::NodeId(0))->domain, util::DomainId(7));
}

// --- Verifier ---------------------------------------------------------------------

class VerifierTest : public ConfigDbTest {
 protected:
  std::vector<Inconsistency> verify(std::vector<DiscoveredAdapter> d) {
    return Verifier(db_).verify(d);
  }
};

TEST_F(VerifierTest, CleanDiscoveryYieldsNoFindings) {
  auto findings = verify({{util::IpAddress(10, 0, 0, 1), util::VlanId(1)},
                          {util::IpAddress(10, 0, 1, 1), util::VlanId(100)},
                          {util::IpAddress(10, 0, 0, 2), util::VlanId(1)}});
  EXPECT_TRUE(findings.empty());
}

TEST_F(VerifierTest, MissingAdapterFlagged) {
  auto findings = verify({{util::IpAddress(10, 0, 0, 1), util::VlanId(1)},
                          {util::IpAddress(10, 0, 0, 2), util::VlanId(1)}});
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].kind, InconsistencyKind::kMissingAdapter);
  EXPECT_EQ(findings[0].ip, util::IpAddress(10, 0, 1, 1));
  EXPECT_EQ(findings[0].expected_vlan, util::VlanId(100));
}

TEST_F(VerifierTest, UnknownAdapterFlagged) {
  auto findings = verify({{util::IpAddress(10, 0, 0, 1), util::VlanId(1)},
                          {util::IpAddress(10, 0, 1, 1), util::VlanId(100)},
                          {util::IpAddress(10, 0, 0, 2), util::VlanId(1)},
                          {util::IpAddress(192, 168, 0, 1), util::VlanId(1)}});
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].kind, InconsistencyKind::kUnknownAdapter);
  EXPECT_EQ(findings[0].ip, util::IpAddress(192, 168, 0, 1));
}

TEST_F(VerifierTest, WrongVlanFlagged) {
  auto findings = verify({{util::IpAddress(10, 0, 0, 1), util::VlanId(1)},
                          {util::IpAddress(10, 0, 1, 1), util::VlanId(101)},
                          {util::IpAddress(10, 0, 0, 2), util::VlanId(1)}});
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].kind, InconsistencyKind::kWrongVlan);
  EXPECT_EQ(findings[0].expected_vlan, util::VlanId(100));
  EXPECT_EQ(findings[0].discovered_vlan, util::VlanId(101));
}

TEST_F(VerifierTest, DuplicateIpFlagged) {
  auto findings = verify({{util::IpAddress(10, 0, 0, 1), util::VlanId(1)},
                          {util::IpAddress(10, 0, 0, 1), util::VlanId(100)},
                          {util::IpAddress(10, 0, 1, 1), util::VlanId(100)},
                          {util::IpAddress(10, 0, 0, 2), util::VlanId(1)}});
  bool dup = false;
  for (const auto& f : findings)
    if (f.kind == InconsistencyKind::kDuplicateIp) dup = true;
  EXPECT_TRUE(dup);
}

TEST_F(VerifierTest, EmptyDiscoveryFlagsEverythingMissing) {
  auto findings = verify({});
  EXPECT_EQ(findings.size(), 3u);
  for (const auto& f : findings)
    EXPECT_EQ(f.kind, InconsistencyKind::kMissingAdapter);
}

TEST_F(VerifierTest, MultipleKindsCombine) {
  auto findings = verify({{util::IpAddress(10, 0, 0, 1), util::VlanId(5)},
                          {util::IpAddress(1, 2, 3, 4), util::VlanId(5)}});
  int wrong = 0, unknown = 0, missing = 0;
  for (const auto& f : findings) {
    if (f.kind == InconsistencyKind::kWrongVlan) ++wrong;
    if (f.kind == InconsistencyKind::kUnknownAdapter) ++unknown;
    if (f.kind == InconsistencyKind::kMissingAdapter) ++missing;
  }
  EXPECT_EQ(wrong, 1);
  EXPECT_EQ(unknown, 1);
  EXPECT_EQ(missing, 2);
}

TEST(InconsistencyKindNames, Strings) {
  EXPECT_EQ(to_string(InconsistencyKind::kMissingAdapter), "missing-adapter");
  EXPECT_EQ(to_string(InconsistencyKind::kUnknownAdapter), "unknown-adapter");
  EXPECT_EQ(to_string(InconsistencyKind::kWrongVlan), "wrong-vlan");
  EXPECT_EQ(to_string(InconsistencyKind::kDuplicateIp), "duplicate-ip");
}

}  // namespace
}  // namespace gs::config
