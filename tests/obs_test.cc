// Telemetry-bus coverage: subscription lifecycle, filtering, reentrancy,
// Recorder semantics, trace emission from a live farm (records arrive in
// sim-time order with the right phase sequence), and the JSONL sink.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "farm/farm.h"
#include "farm/scenario.h"
#include "gs/events.h"
#include "obs/bus.h"
#include "obs/jsonl_sink.h"
#include "obs/trace.h"
#include "sim/simulator.h"
#include "util/stats.h"

namespace gs {
namespace {

enum class TestKind : std::uint8_t { kAlpha = 0, kBeta, kGamma };

struct TestRecord {
  TestKind kind = TestKind::kAlpha;
  int value = 0;
};

using TestBus = obs::Bus<TestRecord>;

// --- Bus: subscription lifecycle ---------------------------------------------

TEST(Bus, TwoSubscribersBothReceive) {
  TestBus bus;
  int a = 0, b = 0;
  auto sub_a = bus.subscribe([&a](const TestRecord&) { ++a; });
  auto sub_b = bus.subscribe([&b](const TestRecord&) { ++b; });
  bus.publish({TestKind::kAlpha, 1});
  EXPECT_EQ(a, 1);
  EXPECT_EQ(b, 1);
  EXPECT_EQ(bus.subscriber_count(), 2u);
}

TEST(Bus, UnsubscribeMidRunStopsDelivery) {
  TestBus bus;
  int seen = 0;
  auto sub = bus.subscribe([&seen](const TestRecord&) { ++seen; });
  bus.publish({TestKind::kAlpha, 1});
  EXPECT_TRUE(sub.active());
  sub.reset();
  EXPECT_FALSE(sub.active());
  bus.publish({TestKind::kAlpha, 2});
  EXPECT_EQ(seen, 1);
  EXPECT_FALSE(bus.has_subscribers());
}

TEST(Bus, SubscriptionDestructorUnsubscribes) {
  TestBus bus;
  int seen = 0;
  {
    auto sub = bus.subscribe([&seen](const TestRecord&) { ++seen; });
    bus.publish({TestKind::kAlpha, 1});
  }
  bus.publish({TestKind::kAlpha, 2});
  EXPECT_EQ(seen, 1);
}

TEST(Bus, SubscriptionOutlivesBusSafely) {
  obs::Subscription sub;
  {
    TestBus bus;
    sub = bus.subscribe([](const TestRecord&) {});
    EXPECT_TRUE(sub.active());
  }
  EXPECT_FALSE(sub.active());
  sub.reset();  // must not crash on a dead bus
}

TEST(Bus, MoveTransfersOwnership) {
  TestBus bus;
  int seen = 0;
  auto sub = bus.subscribe([&seen](const TestRecord&) { ++seen; });
  obs::Subscription moved = std::move(sub);
  EXPECT_FALSE(sub.active());  // NOLINT(bugprone-use-after-move)
  EXPECT_TRUE(moved.active());
  bus.publish({TestKind::kAlpha, 1});
  EXPECT_EQ(seen, 1);
  moved.reset();
  bus.publish({TestKind::kAlpha, 2});
  EXPECT_EQ(seen, 1);
}

// --- Bus: filtering -----------------------------------------------------------

TEST(Bus, KindMaskFilters) {
  TestBus bus;
  std::vector<int> alpha_only, everything;
  auto sub_a = bus.subscribe(
      obs::kind_bit(TestKind::kAlpha),
      [&alpha_only](const TestRecord& r) { alpha_only.push_back(r.value); });
  auto sub_all = bus.subscribe(
      [&everything](const TestRecord& r) { everything.push_back(r.value); });
  bus.publish({TestKind::kAlpha, 1});
  bus.publish({TestKind::kBeta, 2});
  bus.publish({TestKind::kGamma, 3});
  EXPECT_EQ(alpha_only, (std::vector<int>{1}));
  EXPECT_EQ(everything, (std::vector<int>{1, 2, 3}));
}

TEST(Bus, PredicateFilters) {
  TestBus bus;
  std::vector<int> odd;
  auto sub = bus.subscribe(
      obs::kAllKinds, [](const TestRecord& r) { return r.value % 2 == 1; },
      [&odd](const TestRecord& r) { odd.push_back(r.value); });
  for (int i = 0; i < 5; ++i) bus.publish({TestKind::kAlpha, i});
  EXPECT_EQ(odd, (std::vector<int>{1, 3}));
}

TEST(Bus, WantsReflectsCombinedMask) {
  TestBus bus;
  EXPECT_FALSE(bus.wants_kind(TestKind::kAlpha));
  auto sub = bus.subscribe(obs::kind_bit(TestKind::kBeta),
                           [](const TestRecord&) {});
  EXPECT_TRUE(bus.wants_kind(TestKind::kBeta));
  EXPECT_FALSE(bus.wants_kind(TestKind::kAlpha));
  sub.reset();
  EXPECT_FALSE(bus.wants_kind(TestKind::kBeta));
}

// --- Bus: reentrancy ----------------------------------------------------------

TEST(Bus, CallbackMayUnsubscribeItself) {
  TestBus bus;
  int seen = 0;
  obs::Subscription sub;
  sub = bus.subscribe([&](const TestRecord&) {
    ++seen;
    sub.reset();  // unsubscribe from inside the publish loop
  });
  int other = 0;
  auto sub2 = bus.subscribe([&other](const TestRecord&) { ++other; });
  bus.publish({TestKind::kAlpha, 1});
  bus.publish({TestKind::kAlpha, 2});
  EXPECT_EQ(seen, 1);
  EXPECT_EQ(other, 2);
  EXPECT_EQ(bus.subscriber_count(), 1u);
}

TEST(Bus, CallbackMaySubscribeNewSubscriberSeesOnlyLaterRecords) {
  TestBus bus;
  int late = 0;
  obs::Subscription late_sub;
  bool armed = false;
  auto sub = bus.subscribe([&](const TestRecord&) {
    if (!armed) {
      armed = true;
      late_sub = bus.subscribe([&late](const TestRecord&) { ++late; });
    }
  });
  bus.publish({TestKind::kAlpha, 1});  // late_sub added mid-publish: misses it
  EXPECT_EQ(late, 0);
  bus.publish({TestKind::kAlpha, 2});
  EXPECT_EQ(late, 1);
}

// --- Recorder -----------------------------------------------------------------

TEST(Recorder, AccumulatesCountsAndClears) {
  TestBus bus;
  obs::Recorder<TestRecord> log(bus);
  bus.publish({TestKind::kAlpha, 1});
  bus.publish({TestKind::kBeta, 2});
  bus.publish({TestKind::kAlpha, 3});
  EXPECT_EQ(log.size(), 3u);
  EXPECT_EQ(log.count(TestKind::kAlpha), 2u);
  EXPECT_EQ(log.count(TestKind::kGamma), 0u);
  EXPECT_EQ(log.records()[1].value, 2);
  log.clear();
  EXPECT_TRUE(log.empty());
  EXPECT_TRUE(log.attached());
  log.detach();
  bus.publish({TestKind::kAlpha, 4});
  EXPECT_TRUE(log.empty());
}

TEST(Recorder, MaskScopedAttach) {
  TestBus bus;
  obs::Recorder<TestRecord> log(bus, obs::kind_bit(TestKind::kGamma));
  bus.publish({TestKind::kAlpha, 1});
  bus.publish({TestKind::kGamma, 2});
  EXPECT_EQ(log.size(), 1u);
  EXPECT_EQ(log.records()[0].value, 2);
}

// --- Trace plumbing -----------------------------------------------------------

TEST(Trace, EmitGatesOnSubscriberMask) {
  obs::TraceBus bus;
  // No subscriber: emit is a no-op.
  obs::emit_trace(&bus, obs::TraceKind::kBeaconSent, 0, {});
  obs::Recorder<obs::TraceRecord> log(bus, obs::kPhaseMask);
  obs::emit_trace(&bus, obs::TraceKind::kBeaconSent, 5, {});
  obs::emit_trace(&bus, obs::TraceKind::kHeartbeatMiss, 6, {});  // filtered
  obs::emit_trace(nullptr, obs::TraceKind::kBeaconSent, 7, {});  // null bus ok
  ASSERT_EQ(log.size(), 1u);
  EXPECT_EQ(log.records()[0].kind, obs::TraceKind::kBeaconSent);
  EXPECT_EQ(log.records()[0].time, 5);
  EXPECT_EQ(log.records()[0].severity, obs::Severity::kDebug);
}

TEST(Trace, SeverityPredicateFilters) {
  obs::TraceBus bus;
  std::vector<obs::TraceKind> seen;
  auto sub = bus.subscribe(
      obs::kAllKinds, obs::severity_at_least(obs::Severity::kWarn),
      [&seen](const obs::TraceRecord& r) { seen.push_back(r.kind); });
  obs::emit_trace(&bus, obs::TraceKind::kBeaconSent, 1, {});      // debug
  obs::emit_trace(&bus, obs::TraceKind::kViewInstalled, 2, {});   // info
  obs::emit_trace(&bus, obs::TraceKind::kHeartbeatMiss, 3, {});   // warn
  obs::emit_trace(&bus, obs::TraceKind::kDeathDeclared, 4, {});   // error
  EXPECT_EQ(seen, (std::vector<obs::TraceKind>{
                      obs::TraceKind::kHeartbeatMiss,
                      obs::TraceKind::kDeathDeclared}));
}

// --- Farm integration: records arrive in sim-time order with the expected
// phase sequence ---------------------------------------------------------------

TEST(FarmTrace, PhaseRecordsOrderedBySimTime) {
  sim::Simulator sim;
  proto::Params params;
  params.beacon_phase = sim::seconds(2);
  params.amg_stable_wait = sim::seconds(1);
  params.gsc_stable_wait = sim::seconds(2);
  farm::Farm farm(sim, farm::FarmSpec::uniform(4, 1), params, 7);
  obs::Recorder<obs::TraceRecord> log(farm.trace_bus());
  farm.start();
  auto stable = farm::run_until_gsc_stable(farm, sim::seconds(120));
  ASSERT_TRUE(stable.has_value());

  ASSERT_FALSE(log.empty());
  sim::SimTime prev = 0;
  for (const obs::TraceRecord& r : log) {
    EXPECT_GE(r.time, prev) << "records must be chronological";
    prev = r.time;
  }

  // The boot storyline: beacons fly, the highest IP wins the election, 2PC
  // prepares and commits, everyone installs the view, reports reach GSC.
  EXPECT_GT(log.count(obs::TraceKind::kBeaconSent), 0u);
  EXPECT_GT(log.count(obs::TraceKind::kBeaconHeard), 0u);
  EXPECT_EQ(log.count(obs::TraceKind::kElectionWon), 1u);
  // Not every non-leader defers explicitly: an adapter that receives the
  // winner's 2PC Prepare while still beaconing joins without a defer step.
  EXPECT_GE(log.count(obs::TraceKind::kElectionDeferred), 1u);
  EXPECT_GT(log.count(obs::TraceKind::kTwoPcPrepare), 0u);
  EXPECT_GT(log.count(obs::TraceKind::kTwoPcCommit), 0u);
  EXPECT_GE(log.count(obs::TraceKind::kViewInstalled), 4u);
  EXPECT_GT(log.count(obs::TraceKind::kReportSent), 0u);

  auto first_of = [&log](obs::TraceKind kind) {
    for (const obs::TraceRecord& r : log)
      if (r.kind == kind) return r.time;
    return sim::SimTime{-1};
  };
  EXPECT_LT(first_of(obs::TraceKind::kBeaconSent),
            first_of(obs::TraceKind::kElectionWon));
  EXPECT_LE(first_of(obs::TraceKind::kElectionWon),
            first_of(obs::TraceKind::kTwoPcPrepare));
  EXPECT_LT(first_of(obs::TraceKind::kTwoPcPrepare),
            first_of(obs::TraceKind::kTwoPcCommit));
  EXPECT_LE(first_of(obs::TraceKind::kTwoPcCommit),
            first_of(obs::TraceKind::kReportSent));
}

TEST(FarmTrace, WireSamplesFlowWhenEnabled) {
  sim::Simulator sim;
  proto::Params params;
  params.beacon_phase = sim::seconds(2);
  farm::Farm farm(sim, farm::FarmSpec::uniform(4, 1), params, 11);
  obs::Recorder<obs::TraceRecord> log(
      farm.trace_bus(), obs::trace_mask({obs::TraceKind::kWireSample}));
  farm.fabric().enable_load_sampling(sim::seconds(1));
  farm.start();
  sim.run_until(sim::seconds(10));
  EXPECT_GE(log.count(obs::TraceKind::kWireSample), 5u);
  for (const obs::TraceRecord& r : log) {
    EXPECT_TRUE(r.vlan.valid());
    EXPECT_EQ(r.severity, obs::Severity::kDebug);
  }
}

// --- JSONL sink ---------------------------------------------------------------

TEST(JsonlSink, StreamsRecordsAndStats) {
  const std::string path = ::testing::TempDir() + "/obs_test_out.jsonl";
  {
    obs::TraceBus bus;
    obs::JsonlSink sink;
    ASSERT_TRUE(sink.open(path));
    auto tap = sink.tap(bus);
    obs::emit_trace(&bus, obs::TraceKind::kElectionWon, 1500,
                    util::IpAddress(0x0A000001), util::IpAddress(0x0A000002),
                    3, 0, "quoted \"detail\"");
    obs::emit_trace(&bus, obs::TraceKind::kTwoPcCommit, 2500,
                    util::IpAddress(0x0A000001), {}, 7, 4);

    util::StatsRegistry stats;
    stats.counter("frames").add(42);
    stats.histogram("latency_us").record(100);
    stats.histogram("latency_us").record(300);
    sink.dump_stats(stats);
    EXPECT_EQ(sink.lines_written(), 4u);
  }

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::vector<std::string> lines;
  for (std::string line; std::getline(in, line);) lines.push_back(line);
  ASSERT_EQ(lines.size(), 4u);

  EXPECT_NE(lines[0].find("\"type\":\"trace\""), std::string::npos);
  EXPECT_NE(lines[0].find("\"kind\":\"election-won\""), std::string::npos);
  EXPECT_NE(lines[0].find("\"t_us\":1500"), std::string::npos);
  EXPECT_NE(lines[0].find("\"src\":\"10.0.0.1\""), std::string::npos);
  EXPECT_NE(lines[0].find("\"peer\":\"10.0.0.2\""), std::string::npos);
  EXPECT_NE(lines[0].find("\"a\":3"), std::string::npos);
  EXPECT_NE(lines[0].find("\\\"detail\\\""), std::string::npos);

  EXPECT_NE(lines[1].find("\"kind\":\"2pc-commit\""), std::string::npos);
  EXPECT_EQ(lines[1].find("\"peer\""), std::string::npos)
      << "unspecified peer must be omitted";

  EXPECT_NE(lines[2].find("\"type\":\"counter\""), std::string::npos);
  EXPECT_NE(lines[2].find("\"name\":\"frames\""), std::string::npos);
  EXPECT_NE(lines[2].find("\"value\":42"), std::string::npos);

  EXPECT_NE(lines[3].find("\"type\":\"histogram\""), std::string::npos);
  EXPECT_NE(lines[3].find("\"count\":2"), std::string::npos);

  // Every line is a braced object — the JSONL contract.
  for (const std::string& line : lines) {
    ASSERT_FALSE(line.empty());
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
  }
  std::remove(path.c_str());
}

TEST(JsonlSink, OpenFailureReportsFalse) {
  obs::JsonlSink sink;
  EXPECT_FALSE(sink.open("/nonexistent-dir-zzz/out.jsonl"));
  EXPECT_FALSE(sink.is_open());
  sink.write_line("{}");  // no-op, must not crash
  EXPECT_EQ(sink.lines_written(), 0u);
}

TEST(JsonlSink, OkStaysTrueOnHealthyFile) {
  const std::string path = ::testing::TempDir() + "/obs_test_ok.jsonl";
  obs::JsonlSink sink;
  ASSERT_TRUE(sink.open(path));
  EXPECT_TRUE(sink.ok());
  for (int i = 0; i < 100; ++i) sink.write_line("{\"i\":1}");
  sink.close();
  EXPECT_TRUE(sink.ok());
  std::remove(path.c_str());
}

TEST(JsonlSink, WriteErrorIsStickyAndClearedByReopen) {
  // /dev/full accepts the open but fails every flush with ENOSPC — the
  // standard Linux stand-in for a disk filling up mid-run.
  obs::JsonlSink sink;
  if (!sink.open("/dev/full")) GTEST_SKIP() << "/dev/full not available";
  // Push enough data that stdio's buffer must drain to the (full) device;
  // close() flushes whatever is left, so the error latches by then at the
  // latest.
  const std::string line(4096, 'x');
  for (int i = 0; i < 64; ++i) sink.write_line(line);
  sink.close();
  EXPECT_FALSE(sink.ok()) << "flush to /dev/full must latch the error";
  EXPECT_FALSE(sink.is_open());
  // The flag is sticky across further writes on the dead sink...
  sink.write_line("{}");
  EXPECT_FALSE(sink.ok());
  // ...and resets only when a new file is opened.
  const std::string path = ::testing::TempDir() + "/obs_test_reopen.jsonl";
  ASSERT_TRUE(sink.open(path));
  EXPECT_TRUE(sink.ok());
  sink.write_line("{}");
  sink.close();
  EXPECT_TRUE(sink.ok());
  std::remove(path.c_str());
}

// --- String tables ------------------------------------------------------------

TEST(TraceStrings, KindAndSeverity) {
  EXPECT_EQ(obs::to_string(obs::TraceKind::kBeaconSent), "beacon-sent");
  EXPECT_EQ(obs::to_string(obs::TraceKind::kWireSample), "wire-sample");
  EXPECT_EQ(obs::to_string(obs::Severity::kWarn), "warn");
  EXPECT_EQ(obs::default_severity(obs::TraceKind::kDeathDeclared),
            obs::Severity::kError);
  EXPECT_EQ(obs::default_severity(obs::TraceKind::kViewInstalled),
            obs::Severity::kInfo);
}

}  // namespace
}  // namespace gs
