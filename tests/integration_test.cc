// Cross-module integration scenarios: the narratives of §2.1, §3, and §3.1
// run end-to-end on a full simulated farm.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "farm/farm.h"
#include "farm/scenario.h"

namespace gs {
namespace {

using proto::FarmEvent;

proto::Params fast_params() {
  proto::Params p;
  p.beacon_phase = sim::seconds(2);
  p.amg_stable_wait = sim::milliseconds(500);
  p.gsc_stable_wait = sim::seconds(2);
  p.move_window = sim::seconds(3);
  return p;
}

class IntegrationTest : public ::testing::Test {
 protected:
  void build(farm::FarmSpec spec, proto::Params params = fast_params(),
             std::uint64_t seed = 1) {
    params_ = params;
    farm_.emplace(sim_, spec, params_, seed);
    events_.attach(farm_->event_bus());
    farm_->start();
    ASSERT_TRUE(farm::run_until_converged(*farm_, sim::seconds(60)));
    ASSERT_TRUE(farm::run_until_gsc_stable(*farm_, sim::seconds(120)));
    events_.clear();
  }

  void run_for(sim::SimDuration d) { sim_.run_until(sim_.now() + d); }

  sim::Simulator sim_;
  proto::Params params_;
  std::optional<farm::Farm> farm_;
  proto::EventLog events_;
};

// --- Adapter failure (§3) ----------------------------------------------------

TEST_F(IntegrationTest, SingleAdapterFailureIsDetectedAndReported) {
  build(farm::FarmSpec::uniform(8, 2));
  // Kill one non-admin adapter of node 3 (adapter index 1).
  const util::AdapterId victim = farm_->node_adapters(3)[1];
  const util::IpAddress victim_ip = farm_->fabric().adapter(victim).ip();
  farm_->fabric().set_adapter_health(victim, net::HealthState::kDown);

  ASSERT_TRUE(farm::run_until_converged(*farm_, sim_.now() + sim::seconds(60)))
      << "group did not recommit around the dead adapter";

  // GSC receives the delta and, after the move window, declares the failure.
  ASSERT_TRUE(farm::run_until(sim_, sim_.now() + sim::seconds(30), [&] {
    return events_.count(FarmEvent::Kind::kAdapterFailed) > 0;
  }));
  bool found = false;
  for (const FarmEvent& e : events_)
    if (e.kind == FarmEvent::Kind::kAdapterFailed && e.ip == victim_ip)
      found = true;
  EXPECT_TRUE(found);
  // One dead adapter on a two-adapter node is NOT a node failure.
  EXPECT_EQ(events_.count(FarmEvent::Kind::kNodeFailed), 0u);
}

TEST_F(IntegrationTest, AdapterRecoveryIsReported) {
  build(farm::FarmSpec::uniform(6, 2));
  const util::AdapterId victim = farm_->node_adapters(2)[1];
  farm_->fabric().set_adapter_health(victim, net::HealthState::kDown);
  ASSERT_TRUE(farm::run_until(sim_, sim_.now() + sim::seconds(60), [&] {
    return events_.count(FarmEvent::Kind::kAdapterFailed) > 0;
  }));

  farm_->fabric().set_adapter_health(victim, net::HealthState::kUp);
  // The recovered adapter eventually resets (its old group moved on),
  // beacons, and is re-absorbed; GSC then reports recovery.
  ASSERT_TRUE(farm::run_until(sim_, sim_.now() + sim::seconds(120), [&] {
    return events_.count(FarmEvent::Kind::kAdapterRecovered) > 0;
  }));
  EXPECT_TRUE(farm::run_until_converged(*farm_, sim_.now() + sim::seconds(60))
                  .has_value());
}

// --- Node failure correlation (§3) ----------------------------------------------

TEST_F(IntegrationTest, NodeFailureIsInferredFromAllAdaptersFailing) {
  build(farm::FarmSpec::uniform(8, 3));
  const util::NodeId victim(5);
  farm_->fail_node(5);

  ASSERT_TRUE(farm::run_until(sim_, sim_.now() + sim::seconds(90), [&] {
    return events_.count(FarmEvent::Kind::kNodeFailed) > 0;
  }));
  proto::Central* central = farm_->active_central();
  ASSERT_NE(central, nullptr);
  EXPECT_TRUE(central->node_down(victim));

  farm_->recover_node(5);
  ASSERT_TRUE(farm::run_until(sim_, sim_.now() + sim::seconds(120), [&] {
    return events_.count(FarmEvent::Kind::kNodeRecovered) > 0;
  }));
  EXPECT_FALSE(farm_->active_central()->node_down(victim));
}

// The trace bus must tell the §3 failure story in order: a missed
// heartbeat raises suspicion, the leader probes, declares the death, and
// Central holds the failure for the move window before committing it.
TEST_F(IntegrationTest, NodeFailureEmitsTracePhaseSequence) {
  build(farm::FarmSpec::uniform(8, 2));
  obs::Recorder<obs::TraceRecord> trace(farm_->trace_bus(), obs::kFailureMask);

  farm_->fail_node(5);
  ASSERT_TRUE(farm::run_until(sim_, sim_.now() + sim::seconds(90), [&] {
    return events_.count(FarmEvent::Kind::kNodeFailed) > 0;
  }));

  // Records arrive in nondecreasing sim-time order.
  for (std::size_t i = 1; i < trace.size(); ++i)
    EXPECT_LE(trace.records()[i - 1].time, trace.records()[i].time);

  auto first_of = [&](obs::TraceKind kind) {
    for (std::size_t i = 0; i < trace.size(); ++i)
      if (trace.records()[i].kind == kind) return static_cast<long>(i);
    return -1L;
  };
  const long miss = first_of(obs::TraceKind::kHeartbeatMiss);
  const long suspicion = first_of(obs::TraceKind::kSuspicionRaised);
  const long probe = first_of(obs::TraceKind::kProbeSent);
  const long death = first_of(obs::TraceKind::kDeathDeclared);
  const long held = first_of(obs::TraceKind::kFailureHeld);
  const long committed = first_of(obs::TraceKind::kFailureCommitted);
  ASSERT_GE(miss, 0) << "no heartbeat-miss record";
  ASSERT_GE(suspicion, 0) << "no suspicion-raised record";
  ASSERT_GE(death, 0) << "no death-declared record";
  ASSERT_GE(held, 0) << "no failure-held record";
  ASSERT_GE(committed, 0) << "no failure-committed record";
  EXPECT_LT(miss, suspicion);
  EXPECT_LT(suspicion, death);
  if (probe >= 0) {
    EXPECT_LT(probe, death);
  }
  EXPECT_LT(death, held);
  EXPECT_LT(held, committed);
  // The move window (§3.1) separates hold from commit in sim time.
  EXPECT_GE(trace.records()[static_cast<std::size_t>(committed)].time -
                trace.records()[static_cast<std::size_t>(held)].time,
            params_.move_window);
}

// --- Leader failure and succession (§2.1) -----------------------------------------

TEST_F(IntegrationTest, LeaderFailureElectsSecondRanked) {
  build(farm::FarmSpec::uniform(8, 2));
  const util::VlanId vlan = farm::uniform_vlan(1);

  // Find the current leader of the non-admin AMG and its expected successor.
  util::AdapterId leader_adapter;
  util::IpAddress leader_ip, successor_ip;
  for (util::AdapterId id : farm_->fabric().adapters_in_vlan(vlan)) {
    proto::AdapterProtocol* proto = farm_->protocol_for(id);
    ASSERT_NE(proto, nullptr);
    if (proto->is_leader()) {
      leader_adapter = id;
      leader_ip = proto->self().ip;
      successor_ip = proto->committed().member_at(1).ip;
    }
  }
  ASSERT_TRUE(leader_adapter.valid());

  farm_->fabric().set_adapter_health(leader_adapter, net::HealthState::kDown);
  ASSERT_TRUE(farm::run_until_converged(*farm_, sim_.now() + sim::seconds(90)));

  // The new leader must be the old second-ranked (= next highest IP).
  for (util::AdapterId id : farm_->fabric().adapters_in_vlan(vlan)) {
    if (id == leader_adapter) continue;
    proto::AdapterProtocol* proto = farm_->protocol_for(id);
    EXPECT_EQ(proto->leader_ip(), successor_ip);
    EXPECT_FALSE(proto->committed().contains(leader_ip));
  }
}

// --- GSC failover (§2.2) ------------------------------------------------------------

TEST_F(IntegrationTest, GscFailoverElectsNewCentralAndRebuildsView) {
  build(farm::FarmSpec::uniform(8, 2));
  proto::Central* central = farm_->active_central();
  ASSERT_NE(central, nullptr);
  const util::IpAddress old_gsc = central->self_ip();
  const std::size_t known_before = central->known_adapter_count();

  // Kill the whole GSC node.
  std::size_t gsc_node = SIZE_MAX;
  for (std::size_t i = 0; i < farm_->node_count(); ++i) {
    const util::AdapterId admin = farm_->node_adapters(i)[0];
    if (farm_->fabric().adapter(admin).ip() == old_gsc) gsc_node = i;
  }
  ASSERT_NE(gsc_node, SIZE_MAX);
  farm_->fail_node(gsc_node);

  ASSERT_TRUE(farm::run_until(sim_, sim_.now() + sim::seconds(120), [&] {
    proto::Central* c = farm_->active_central();
    return c != nullptr && c->self_ip() != old_gsc &&
           c->known_adapter_count() >= known_before - 2;
  })) << "no replacement GSC rebuilt the farm view";

  proto::Central* replacement = farm_->active_central();
  EXPECT_NE(replacement->self_ip(), old_gsc);
  EXPECT_GT(replacement->reports_received(), 0u);
}

// --- Dynamic domain reconfiguration (§3.1) ---------------------------------------------

TEST_F(IntegrationTest, ExpectedMoveIsSuppressedAndCompleted) {
  build(farm::FarmSpec::oceano(2, 2, 2, 1, 2));
  proto::Central* central = farm_->active_central();
  ASSERT_NE(central, nullptr);

  // Move a back-end node's internal adapter from domain 0 to domain 1.
  const auto backs = farm_->nodes_with_role(farm::NodeRole::kBackEnd);
  std::size_t victim = SIZE_MAX;
  for (std::size_t idx : backs)
    if (farm_->domain_of(idx) == util::DomainId(0)) victim = idx;
  ASSERT_NE(victim, SIZE_MAX);
  const util::AdapterId moved = farm_->node_adapters(victim)[1];
  const util::IpAddress moved_ip = farm_->fabric().adapter(moved).ip();

  ASSERT_TRUE(central->move_adapter(moved, farm::internal_vlan(1)));
  ASSERT_TRUE(farm::run_until(sim_, sim_.now() + sim::seconds(120), [&] {
    return events_.count(FarmEvent::Kind::kMoveCompleted) > 0;
  })) << "move was never completed at GSC";

  // Expected moves suppress external failure notifications entirely.
  for (const FarmEvent& e : events_) {
    if (e.kind == FarmEvent::Kind::kAdapterFailed) {
      EXPECT_NE(e.ip, moved_ip);
    }
  }

  ASSERT_TRUE(farm::run_until_converged(*farm_, sim_.now() + sim::seconds(60)));
  // Database expectation was updated, so once the post-move reports drain
  // to GSC, verification is clean again.
  EXPECT_TRUE(farm::run_until(sim_, sim_.now() + sim::seconds(60), [&] {
    return central->verify_now().empty();
  }));
}

TEST_F(IntegrationTest, UnexpectedMoveIsInferredNotReportedAsDeath) {
  proto::Params p = fast_params();
  p.move_window = sim::seconds(20);  // generous inference window
  build(farm::FarmSpec::oceano(2, 2, 2, 1, 2), p);

  // Rewire a front end's internal adapter behind GSC's back (no expected-
  // move record): simulates operator action at the switch.
  const auto fronts = farm_->nodes_with_role(farm::NodeRole::kFrontEnd);
  std::size_t victim = SIZE_MAX;
  for (std::size_t idx : fronts)
    if (farm_->domain_of(idx) == util::DomainId(0)) victim = idx;
  ASSERT_NE(victim, SIZE_MAX);
  const util::AdapterId moved = farm_->node_adapters(victim)[1];
  const net::Adapter& adapter = farm_->fabric().adapter(moved);
  farm_->fabric().set_port_vlan(adapter.attached_switch(),
                                adapter.attached_port(),
                                farm::internal_vlan(1));

  ASSERT_TRUE(farm::run_until(sim_, sim_.now() + sim::seconds(120), [&] {
    return events_.count(FarmEvent::Kind::kUnexpectedMove) > 0;
  }));
  // The held failure was converted into a move, not a death.
  for (const FarmEvent& e : events_) {
    if (e.kind == FarmEvent::Kind::kAdapterFailed) {
      EXPECT_NE(e.ip, adapter.ip());
    }
  }

  // Once the moved adapter is absorbed into the destination VLAN's AMG and
  // that group re-reports, verification flags it on the wrong VLAN.
  ASSERT_TRUE(farm::run_until_converged(*farm_, sim_.now() + sim::seconds(60)));
  ASSERT_TRUE(farm::run_until(sim_, sim_.now() + sim::seconds(60), [&] {
    proto::Central* c = farm_->active_central();
    for (const auto& g : c->groups())
      if (std::find(g.members.begin(), g.members.end(), adapter.ip()) !=
              g.members.end() &&
          g.members.size() > 1)
        return true;
    return false;
  }));
  auto findings = farm_->active_central()->verify_now();
  bool flagged = false;
  for (const auto& f : findings)
    if (f.kind == config::InconsistencyKind::kWrongVlan &&
        f.ip == adapter.ip())
      flagged = true;
  EXPECT_TRUE(flagged);
}

// A move in flight across a GSC failover: the expected-move record dies
// with the old Central (it is deliberately centralized, §4.2), so the
// replacement classifies the observed death+join as an *unexpected* move —
// still a move, never a spurious death.
TEST_F(IntegrationTest, MoveInFlightAcrossGscFailoverDegradesToUnexpected) {
  proto::Params p = fast_params();
  p.move_window = sim::seconds(20);
  build(farm::FarmSpec::oceano(2, 2, 2, 1, 3), p);
  proto::Central* central = farm_->active_central();
  ASSERT_NE(central, nullptr);
  const util::IpAddress old_gsc = central->self_ip();

  std::size_t victim = SIZE_MAX;
  for (std::size_t idx : farm_->nodes_with_role(farm::NodeRole::kBackEnd))
    if (farm_->domain_of(idx) == util::DomainId(0)) victim = idx;
  const util::AdapterId moved = farm_->node_adapters(victim)[1];
  const util::IpAddress moved_ip = farm_->fabric().adapter(moved).ip();

  ASSERT_TRUE(central->move_adapter(moved, farm::internal_vlan(1)));
  // Kill the GSC node before the move can complete.
  std::size_t gsc_node = SIZE_MAX;
  for (std::size_t i = 0; i < farm_->node_count(); ++i)
    if (farm_->fabric().adapter(farm_->node_adapters(i)[0]).ip() == old_gsc)
      gsc_node = i;
  ASSERT_NE(gsc_node, SIZE_MAX);
  farm_->fail_node(gsc_node);

  // The replacement GSC classifies the move as unexpected (or, if both the
  // death and join deltas only reach it after failover in join-first order,
  // as a plain reassignment) — never as an adapter death.
  ASSERT_TRUE(farm::run_until(sim_, sim_.now() + sim::seconds(180), [&] {
    proto::Central* c = farm_->active_central();
    if (c == nullptr || c->self_ip() == old_gsc) return false;
    const auto status = c->adapter_status(moved_ip);
    return status.has_value() && status->alive;
  }));
  for (const FarmEvent& e : events_) {
    if (e.kind == FarmEvent::Kind::kAdapterFailed) {
      EXPECT_NE(e.ip, moved_ip);
    }
  }
  EXPECT_TRUE(
      farm::run_until_converged(*farm_, sim_.now() + sim::seconds(120)));
}

// --- Partition and merge (§2.1) -----------------------------------------------------

TEST_F(IntegrationTest, PartitionFormsTwoGroupsHealMergesThem) {
  build(farm::FarmSpec::uniform(8, 2));
  const util::VlanId vlan = farm::uniform_vlan(1);
  const auto adapters = farm_->fabric().adapters_in_vlan(vlan);
  ASSERT_EQ(adapters.size(), 8u);

  std::vector<util::AdapterId> left(adapters.begin(), adapters.begin() + 4);
  std::vector<util::AdapterId> right(adapters.begin() + 4, adapters.end());
  farm_->fabric().partition_vlan(vlan, {left, right});

  // Each side must settle into its own AMG led by its own highest IP.
  auto side_converged = [&](const std::vector<util::AdapterId>& side) {
    util::IpAddress lead;
    for (util::AdapterId id : side)
      lead = std::max(lead, farm_->fabric().adapter(id).ip());
    for (util::AdapterId id : side) {
      proto::AdapterProtocol* proto = farm_->protocol_for(id);
      if (!proto->is_committed() || proto->leader_ip() != lead) return false;
      if (proto->committed().size() != side.size()) return false;
    }
    return true;
  };
  ASSERT_TRUE(farm::run_until(sim_, sim_.now() + sim::seconds(180), [&] {
    return side_converged(left) && side_converged(right);
  })) << "partition sides did not stabilize";

  farm_->fabric().heal_vlan(vlan);
  ASSERT_TRUE(farm::run_until_converged(*farm_, sim_.now() + sim::seconds(180)))
      << "groups did not merge after heal";
}

// --- Switch failure correlation (§3) ---------------------------------------------------

TEST_F(IntegrationTest, SwitchFailureIsCorrelated) {
  // Small switches so that one switch hosts a few whole nodes.
  farm::FarmSpec spec = farm::FarmSpec::uniform(9, 2);
  spec.switch_ports = 6;  // 3 nodes per switch
  build(spec);

  // Fail a switch that does NOT host the GSC node (node 8 has the highest
  // admin IP and lives on the last switch).
  const util::SwitchId victim(0);
  farm_->fabric().fail_switch(victim);

  ASSERT_TRUE(farm::run_until(sim_, sim_.now() + sim::seconds(120), [&] {
    return events_.count(FarmEvent::Kind::kSwitchFailed) > 0;
  }));
  proto::Central* central = farm_->active_central();
  ASSERT_NE(central, nullptr);
  EXPECT_TRUE(central->switch_down(victim));
  // All three nodes behind it are also inferred down.
  EXPECT_GE(events_.count(FarmEvent::Kind::kNodeFailed), 3u);

  farm_->fabric().recover_switch(victim);
  ASSERT_TRUE(farm::run_until(sim_, sim_.now() + sim::seconds(180), [&] {
    return events_.count(FarmEvent::Kind::kSwitchRecovered) > 0;
  }));
}

// --- Multi-leader ack routing (two leaders, one node) ------------------------

TEST_F(IntegrationTest, TwoLeadersOneNodeSurviveGscFailoverIndependently) {
  // With no back ends, the LAST front-end node holds the highest IP on BOTH
  // its domain's internal and dispatch VLANs: one daemon, two leader
  // adapters, both reporting to the same GSC. Acks (and need_fulls) carry
  // the leader they answer; one leader's ack must never disturb the
  // co-located other leader's report sequence.
  build(farm::FarmSpec::oceano(1, 3, 0, 1, 2));
  proto::Central* central = farm_->active_central();
  ASSERT_NE(central, nullptr);

  auto leader_adapter = [&](util::VlanId vlan) {
    util::AdapterId best;
    for (util::AdapterId id : farm_->healthy_adapters_in_vlan(vlan))
      if (!best.valid() || farm_->fabric().adapter(best).ip() <
                               farm_->fabric().adapter(id).ip())
        best = id;
    return best;
  };
  const util::AdapterId li = leader_adapter(farm::internal_vlan(0));
  const util::AdapterId ld = leader_adapter(farm::dispatch_vlan(0));
  ASSERT_EQ(farm_->node_of(li), farm_->node_of(ld));  // co-located leaders
  ASSERT_NE(farm_->node_of(li), farm_->expected_gsc_node());

  obs::Recorder<obs::TraceRecord> trace(farm_->trace_bus(), obs::kReportMask);
  const auto gsc_node = farm_->expected_gsc_node();
  ASSERT_TRUE(gsc_node.has_value());
  farm_->fail_node(*gsc_node);

  // The standby Central starts empty: each leader's next delta is bounced
  // with a need_full addressed to THAT leader, and each re-establishes its
  // own group independently.
  const util::IpAddress ip_i = farm_->fabric().adapter(li).ip();
  const util::IpAddress ip_d = farm_->fabric().adapter(ld).ip();
  ASSERT_TRUE(farm::run_until(sim_, sim_.now() + sim::seconds(180), [&] {
    proto::Central* c = farm_->active_central();
    if (c == nullptr || c == central) return false;
    bool internal_ok = false, dispatch_ok = false;
    for (const auto& g : c->groups()) {
      if (g.leader.ip == ip_i) internal_ok = g.members.size() == 3;
      if (g.leader.ip == ip_d) dispatch_ok = g.members.size() == 4;
    }
    return internal_ok && dispatch_ok;
  }));

  // The regression signature: a need_full consumed by the wrong leader
  // would reset that leader's sequence, visible as a kReportSent seq
  // regressing mid-run. Per-source, seqs must stay monotonic.
  std::map<util::IpAddress, std::uint64_t> last_seq;
  for (const auto& r : trace.records()) {
    if (r.kind != obs::TraceKind::kReportSent) continue;
    auto [it, inserted] = last_seq.emplace(r.source, r.a);
    if (!inserted) {
      EXPECT_GE(r.a, it->second)
          << "leader " << r.source.to_string() << " report seq regressed";
      it->second = std::max(it->second, r.a);
    }
  }
  EXPECT_TRUE(last_seq.count(ip_i));
  EXPECT_TRUE(last_seq.count(ip_d));
}

// --- Every failure-detector strategy, end to end ----------------------------------------

class DetectorIntegration : public ::testing::TestWithParam<proto::FdKind> {};

TEST_P(DetectorIntegration, DetectsAndReportsAdapterDeath) {
  sim::Simulator sim;
  proto::Params p = fast_params();
  p.fd_kind = GetParam();
  farm::Farm farm(sim, farm::FarmSpec::uniform(9, 2), p, 21);
  proto::EventLog events(farm.event_bus());
  farm.start();
  ASSERT_TRUE(farm::run_until_gsc_stable(farm, sim::seconds(120)));
  events.clear();

  const util::AdapterId victim = farm.node_adapters(4)[1];
  const util::IpAddress victim_ip = farm.fabric().adapter(victim).ip();
  farm.fabric().set_adapter_health(victim, net::HealthState::kDown);

  ASSERT_TRUE(farm::run_until(sim, sim.now() + sim::seconds(120), [&] {
    for (const FarmEvent& e : events)
      if (e.kind == FarmEvent::Kind::kAdapterFailed && e.ip == victim_ip)
        return true;
    return false;
  })) << "detector " << to_string(GetParam())
      << " never got the death to GSC";
  EXPECT_TRUE(
      farm::run_until_converged(farm, sim.now() + sim::seconds(60)));
}

INSTANTIATE_TEST_SUITE_P(AllKinds, DetectorIntegration,
                         ::testing::Values(proto::FdKind::kUnidirectionalRing,
                                           proto::FdKind::kBidirectionalRing,
                                           proto::FdKind::kAllToAll,
                                           proto::FdKind::kSubgroupRing,
                                           proto::FdKind::kRandomPing));

// --- Lossy network ---------------------------------------------------------------------

TEST_F(IntegrationTest, ConvergesUnderModerateLoss) {
  sim::Simulator fresh;
  proto::Params p = fast_params();
  farm::Farm farm(fresh, farm::FarmSpec::uniform(10, 2), p, 99);
  net::ChannelModel lossy;
  lossy.loss_probability = 0.05;
  for (util::VlanId vlan : farm.vlans())
    farm.fabric().segment(vlan).set_model(lossy);
  farm.start();
  EXPECT_TRUE(
      farm::run_until_converged(farm, sim::seconds(120)).has_value());
}

}  // namespace
}  // namespace gs
