// Sharded-simulation core tests: Simulator::run_window semantics, the
// ShardSet epoch-barrier protocol and its deterministic mailbox ordering,
// cross-shard traffic through net::ShardRouter (deep-copied payloads, both
// unicast and multicast), payload thread-ownership rules at the shard
// boundary, and digest-level determinism of sharded runs.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "net/fabric.h"
#include "net/payload.h"
#include "net/shard_router.h"
#include "sim/shard.h"
#include "sim/simulator.h"
#include "util/rng.h"
#include "wire/frame.h"

namespace gs {
namespace {

// --- Simulator::run_window ----------------------------------------------------

TEST(RunWindow, HalfOpenWindowAndClockLandsOnEnd) {
  sim::Simulator sim;
  std::vector<int> ran;
  sim.at(5, [&] { ran.push_back(5); });
  sim.at(10, [&] { ran.push_back(10); });  // == end: NOT in the first window
  sim.at(15, [&] { ran.push_back(15); });

  EXPECT_EQ(sim.run_window(10), 1u);
  EXPECT_EQ(ran, (std::vector<int>{5}));
  EXPECT_EQ(sim.now(), 10);  // clock parks on the window end, even when idle

  EXPECT_EQ(sim.run_window(20), 2u);
  EXPECT_EQ(ran, (std::vector<int>{5, 10, 15}));
  EXPECT_EQ(sim.now(), 20);

  EXPECT_EQ(sim.run_window(30), 0u);  // empty window still advances the clock
  EXPECT_EQ(sim.now(), 30);
}

TEST(RunWindow, EventsScheduledInsideTheWindowStillRun) {
  sim::Simulator sim;
  int chained = 0;
  sim.at(2, [&] {
    sim.at(4, [&] { ++chained; });  // lands inside the same window
  });
  sim.run_window(10);
  EXPECT_EQ(chained, 1);
}

// --- ShardSet -----------------------------------------------------------------

TEST(ShardSet, RunsEveryShardToTheDeadline) {
  sim::Simulator a, b;
  std::vector<sim::Simulator*> sims = {&a, &b};
  int a_runs = 0, b_runs = 0;
  // Self-rescheduling 100us timers on both shards, stopped by the deadline.
  std::function<void()> tick_a = [&] {
    ++a_runs;
    a.after(100, tick_a);
  };
  std::function<void()> tick_b = [&] {
    ++b_runs;
    b.after(100, tick_b);
  };
  a.at(0, tick_a);
  b.at(50, tick_b);

  sim::ShardSet set(sims, sim::microseconds(200));
  const std::size_t events = set.run_until(sim::milliseconds(1));
  EXPECT_GE(set.now(), sim::milliseconds(1));
  EXPECT_EQ(events, static_cast<std::size_t>(a_runs + b_runs));
  EXPECT_EQ(a_runs, 10);  // t = 0, 100, ... 900
  EXPECT_EQ(b_runs, 10);  // t = 50, 150, ... 950
  EXPECT_EQ(a.now(), b.now());

  set.for_each_shard([&](std::size_t s) { sims[s]->drop_pending(); });
  set.shutdown();
}

TEST(ShardSet, RunUntilStopsWhenEverythingDrains) {
  sim::Simulator a, b;
  std::vector<sim::Simulator*> sims = {&a, &b};
  int ran = 0;
  a.at(100, [&] { ++ran; });
  sim::ShardSet set(sims, sim::microseconds(200));
  // One event at t=100; the set must stop at the idle point, not spin whole
  // epochs until the far deadline.
  EXPECT_EQ(set.run_until(sim::seconds(100)), 1u);
  EXPECT_EQ(ran, 1);
  EXPECT_LT(set.now(), sim::milliseconds(1));
  set.shutdown();
}

TEST(ShardSet, MailboxPostsInjectInWhenFromSeqOrder) {
  // Both shards post into shard 0 at identical target times; the injected
  // execution order must be (when, from, seq) regardless of which worker ran
  // first. Repeat the whole run to pin repeatability.
  for (int round = 0; round < 2; ++round) {
    sim::Simulator a, b;
    std::vector<sim::Simulator*> sims = {&a, &b};
    std::vector<int> order;  // only shard 0's thread appends
    sim::ShardSet set(sims, sim::microseconds(100));

    auto tag = [&order](int t) { return [&order, t] { order.push_back(t); }; };
    // During window [0, 100): each shard posts two handoffs at when == 100.
    a.at(10, [&] {
      set.post(0, 0, 100, tag(1));
      set.post(0, 0, 100, tag(2));  // same when, same from: seq breaks the tie
    });
    b.at(20, [&] {
      set.post(1, 0, 100, tag(3));
      set.post(1, 0, 150, tag(5));  // later when sorts last
      set.post(1, 0, 100, tag(4));
    });
    set.run_until(sim::milliseconds(1));
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 4, 5}));
    set.shutdown();
  }
}

// --- Cross-shard traffic through the router -----------------------------------

// Two shards, one spanning VLAN: adapter A (shard 0) talks to B and C
// (shard 1); D shares shard 0 with A. Zero jitter and loss so arrival times
// are exact.
struct SpanHarness {
  sim::Simulator sim0, sim1;
  net::Fabric fab0{sim0, util::Rng(0x11)};
  net::Fabric fab1{sim1, util::Rng(0x11)};
  net::ShardRouter router;
  util::AdapterId a, d;  // shard 0
  util::AdapterId b, c;  // shard 1

  SpanHarness() {
    net::ChannelModel model;
    model.base_latency = sim::microseconds(200);
    model.jitter = 0;
    model.loss_probability = 0;
    fab0.set_default_channel(model);
    fab1.set_default_channel(model);
    const util::VlanId vlan(7);
    auto wire = [&](net::Fabric& fab, std::uint32_t node, std::uint8_t host) {
      const auto sw = fab.add_switch(4);
      const auto id = fab.add_adapter(util::NodeId(node));
      fab.attach(id, sw, vlan);
      fab.set_adapter_ip(id, util::IpAddress(10, 0, 0, host));
      return id;
    };
    a = wire(fab0, 0, 1);
    d = wire(fab0, 3, 4);
    b = wire(fab1, 1, 2);
    c = wire(fab1, 2, 3);
    router.add_fabric(0, &fab0);
    router.add_fabric(1, &fab1);
  }
};

TEST(ShardRouter, MaxSafeEpochIsTheSpanningVlanBaseLatency) {
  SpanHarness h;
  EXPECT_EQ(h.router.max_safe_epoch(), sim::microseconds(200));
  // Span queries come from the fabrics' send paths, which only run once
  // finalize() has built the VLAN homes map.
  std::vector<sim::Simulator*> sims = {&h.sim0, &h.sim1};
  sim::ShardSet set(sims, sim::microseconds(200));
  h.router.finalize(set);
  EXPECT_TRUE(h.router.spans_other_shards(0, util::VlanId(7)));
  EXPECT_FALSE(h.router.spans_other_shards(0, util::VlanId(9)));
  set.shutdown();
}

TEST(ShardRouter, UnicastCrossesShardsWithDeepCopiedBytes) {
  SpanHarness h;
  std::vector<sim::Simulator*> sims = {&h.sim0, &h.sim1};
  sim::ShardSet set(sims, sim::microseconds(200));
  h.router.finalize(set);
  ASSERT_TRUE(h.router.finalized());

  const std::vector<std::uint8_t> body = {0xAA, 0xBB, 0xCC};
  const auto frame = wire::encode_frame(3, body);
  // Copy the datagram's fields out on the receiving shard's thread: a
  // Datagram holds a Payload ref, which must not be released off-thread.
  struct Got {
    util::IpAddress src, dst;
    util::VlanId vlan;
    std::vector<std::uint8_t> bytes;
  };
  std::vector<Got> got;  // only shard 1's thread appends
  sim::SimTime got_at = 0;
  h.fab1.adapter(h.b).set_receive_handler([&](const net::Datagram& dg) {
    const auto bytes = dg.bytes();
    got.push_back(Got{dg.src, dg.dst, dg.vlan,
                      std::vector<std::uint8_t>(bytes.begin(), bytes.end())});
    got_at = h.sim1.now();
  });

  // B's IP is unknown to shard 0's fabric; the router must carry it over.
  h.sim0.at(50, [&] {
    EXPECT_TRUE(h.fab0.send(h.a, util::IpAddress(10, 0, 0, 2), frame));
  });
  set.run_until(sim::milliseconds(2));

  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].src, util::IpAddress(10, 0, 0, 1));
  EXPECT_EQ(got[0].dst, util::IpAddress(10, 0, 0, 2));
  EXPECT_EQ(got[0].vlan, util::VlanId(7));
  EXPECT_EQ(got[0].bytes, frame);
  // Delivered at sent_at + base latency, exactly as an unsharded fabric
  // would: the epoch handoff adds no simulated-time penalty.
  EXPECT_EQ(got_at, 50 + 200);
  EXPECT_EQ(h.router.frames_forwarded(), 1u);

  got.clear();
  set.for_each_shard([&](std::size_t s) {
    sims[s]->drop_pending();
    (s == 0 ? h.fab0 : h.fab1).drop_in_flight();
  });
  set.shutdown();
}

TEST(ShardRouter, MulticastReachesLocalAndRemoteMembers) {
  SpanHarness h;
  std::vector<sim::Simulator*> sims = {&h.sim0, &h.sim1};
  sim::ShardSet set(sims, sim::microseconds(200));
  h.router.finalize(set);

  const std::vector<std::uint8_t> body = {0x42};
  const auto frame = wire::encode_frame(1, body);
  int d_got = 0, b_got = 0, c_got = 0, a_got = 0;
  h.fab0.adapter(h.a).set_receive_handler([&](const net::Datagram&) { ++a_got; });
  h.fab0.adapter(h.d).set_receive_handler([&](const net::Datagram&) { ++d_got; });
  h.fab1.adapter(h.b).set_receive_handler([&](const net::Datagram&) { ++b_got; });
  h.fab1.adapter(h.c).set_receive_handler([&](const net::Datagram&) { ++c_got; });

  h.sim0.at(0, [&] {
    EXPECT_TRUE(h.fab0.multicast(h.a, net::kBeaconGroup, frame));
  });
  set.run_until(sim::milliseconds(2));

  EXPECT_EQ(d_got, 1);  // local member, normal path
  EXPECT_EQ(b_got, 1);  // remote members, one forwarded copy fanned out
  EXPECT_EQ(c_got, 1);
  EXPECT_EQ(a_got, 0);  // never self-delivers
  EXPECT_EQ(h.router.frames_forwarded(), 1u);  // one copy per target shard

  set.for_each_shard([&](std::size_t s) {
    sims[s]->drop_pending();
    (s == 0 ? h.fab0 : h.fab1).drop_in_flight();
  });
  set.shutdown();
}

TEST(ShardRouter, FinalizeRejectsAnEpochWiderThanTheSpanningLatency) {
  SpanHarness h;
  std::vector<sim::Simulator*> sims = {&h.sim0, &h.sim1};
  sim::ShardSet set(sims, sim::microseconds(500));  // > 200us base latency
  EXPECT_DEATH(h.router.finalize(set), "epoch");
  set.shutdown();
}

// --- Determinism --------------------------------------------------------------

// One delivery observation; the merged, sorted multiset of these must be
// identical for every run (and every shard count on disjoint topologies).
struct Obs {
  sim::SimTime when;
  std::uint32_t vlan;
  std::uint32_t receiver_ip;
  std::size_t size;

  bool operator==(const Obs&) const = default;
  bool operator<(const Obs& o) const {
    if (when != o.when) return when < o.when;
    if (vlan != o.vlan) return vlan < o.vlan;
    if (receiver_ip != o.receiver_ip) return receiver_ip < o.receiver_ip;
    return size < o.size;
  }
};

std::uint64_t obs_digest(std::vector<Obs> all) {
  std::sort(all.begin(), all.end());
  std::uint64_t hash = 0xcbf29ce484222325ull;  // FNV-1a over the tuples
  auto mix = [&hash](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      hash ^= (v >> (i * 8)) & 0xFF;
      hash *= 0x100000001b3ull;
    }
  };
  for (const Obs& o : all) {
    mix(static_cast<std::uint64_t>(o.when));
    mix(o.vlan);
    mix(o.receiver_ip);
    mix(o.size);
  }
  return hash;
}

// A VLAN-disjoint mini farm, partitioned by VLAN across `shards` threads:
// 4 VLANs x 3 adapters, everyone multicasting every 500us for 10ms, with
// default channel jitter and some loss so the per-VLAN RNG streams are
// genuinely exercised. Returns the digest of every delivery observed.
std::uint64_t run_disjoint_mini(std::size_t shards) {
  constexpr std::size_t kVlans = 4, kPerVlan = 3;
  struct Shard {
    sim::Simulator sim;
    std::unique_ptr<net::Fabric> fabric;
    std::vector<util::AdapterId> adapters;
    std::vector<std::size_t> global_index;  // local index -> global i
    std::vector<Obs> seen;
  };
  std::vector<std::unique_ptr<Shard>> shard;
  for (std::size_t s = 0; s < shards; ++s) {
    auto ctx = std::make_unique<Shard>();
    ctx->fabric = std::make_unique<net::Fabric>(ctx->sim, util::Rng(0xD15C));
    net::ChannelModel model;  // default 200us/100us, plus loss
    model.loss_probability = 0.05;
    ctx->fabric->set_default_channel(model);
    shard.push_back(std::move(ctx));
  }
  for (std::size_t v = 0; v < kVlans; ++v) {
    Shard& c = *shard[v % shards];
    const auto sw = c.fabric->add_switch(kPerVlan);
    for (std::size_t m = 0; m < kPerVlan; ++m) {
      const std::size_t i = v * kPerVlan + m;
      const auto id =
          c.fabric->add_adapter(util::NodeId(static_cast<std::uint32_t>(i)));
      c.fabric->attach(id, sw, util::VlanId(static_cast<std::uint32_t>(1 + v)));
      const util::IpAddress ip(10, 0, 1, static_cast<std::uint8_t>(i));
      c.fabric->set_adapter_ip(id, ip);
      c.fabric->adapter(id).set_receive_handler(
          [&c, ip](const net::Datagram& dg) {
            c.seen.push_back(
                Obs{c.sim.now(), dg.vlan.value(), ip.bits(), dg.bytes().size()});
          });
      c.adapters.push_back(id);
      c.global_index.push_back(i);
    }
  }
  const std::vector<std::uint8_t> body = {0x01, 0x02, 0x03};
  const auto frame = wire::encode_frame(1, body);
  for (auto& ctx : shard) {
    Shard& c = *ctx;
    for (std::size_t li = 0; li < c.adapters.size(); ++li) {
      const auto beat = [&c, li, &frame] {
        c.fabric->multicast(c.adapters[li], net::kBeaconGroup, frame);
      };
      // Phase by GLOBAL index: the traffic pattern must be a property of the
      // topology, not of how it happens to be partitioned.
      for (sim::SimTime t = static_cast<sim::SimTime>(c.global_index[li]) * 37;
           t < sim::milliseconds(10); t += 500)
        c.sim.at(t, beat);
    }
  }
  std::vector<sim::Simulator*> sims;
  for (auto& ctx : shard) sims.push_back(&ctx->sim);
  sim::ShardSet set(sims, sim::microseconds(200));
  set.run_until(sim::milliseconds(12));
  std::vector<Obs> all;
  set.for_each_shard([&](std::size_t s) {
    shard[s]->sim.drop_pending();
    shard[s]->fabric->drop_in_flight();
  });
  set.shutdown();
  for (auto& ctx : shard)
    all.insert(all.end(), ctx->seen.begin(), ctx->seen.end());
  return obs_digest(std::move(all));
}

TEST(ShardDeterminism, DisjointTopologyDigestsAgreeAcrossShardCounts) {
  const std::uint64_t one = run_disjoint_mini(1);
  EXPECT_EQ(one, run_disjoint_mini(2));
  EXPECT_EQ(one, run_disjoint_mini(4));
}

std::uint64_t run_spanning_once() {
  SpanHarness h;
  std::vector<sim::Simulator*> sims = {&h.sim0, &h.sim1};
  sim::ShardSet set(sims, sim::microseconds(200));
  h.router.finalize(set);
  std::vector<Obs> seen0, seen1;  // each appended only by its own shard
  auto observe = [](net::Fabric& fab, sim::Simulator& sim,
                    std::vector<Obs>& out, util::AdapterId id,
                    std::uint32_t ip_bits) {
    fab.adapter(id).set_receive_handler(
        [&sim, &out, ip_bits](const net::Datagram& dg) {
          out.push_back(
              Obs{sim.now(), dg.vlan.value(), ip_bits, dg.bytes().size()});
        });
  };
  observe(h.fab0, h.sim0, seen0, h.a, 1);
  observe(h.fab0, h.sim0, seen0, h.d, 4);
  observe(h.fab1, h.sim1, seen1, h.b, 2);
  observe(h.fab1, h.sim1, seen1, h.c, 3);
  const std::vector<std::uint8_t> body = {0x33};
  const auto frame = wire::encode_frame(1, body);
  for (sim::SimTime t = 0; t < sim::milliseconds(5); t += 250) {
    h.sim0.at(t, [&] { h.fab0.multicast(h.a, net::kBeaconGroup, frame); });
    h.sim1.at(t + 40, [&] { h.fab1.multicast(h.b, net::kBeaconGroup, frame); });
  }
  set.run_until(sim::milliseconds(6));
  set.for_each_shard([&](std::size_t s) {
    sims[s]->drop_pending();
    (s == 0 ? h.fab0 : h.fab1).drop_in_flight();
  });
  set.shutdown();
  seen0.insert(seen0.end(), seen1.begin(), seen1.end());
  return obs_digest(std::move(seen0));
}

TEST(ShardDeterminism, SpanningTrafficIsRepeatableAtFixedShardCount) {
  const std::uint64_t first = run_spanning_once();
  EXPECT_EQ(first, run_spanning_once());
  EXPECT_EQ(first, run_spanning_once());
}

// --- Payload ownership at the shard boundary ----------------------------------

TEST(PayloadOwnership, ForeignReleaseDeletesInsteadOfPoisoningThePool) {
  const std::vector<std::uint8_t> body = {0x01};
  const auto bytes = wire::encode_frame(2, body);
  auto payload = std::make_unique<net::Payload>(net::Payload::copy_of(bytes));
  std::size_t foreign_pool_after = 99;
  std::thread t([&] {
    // This thread never owned the Rep; releasing it here must delete it, not
    // push it into THIS thread's free list where the wrong thread would pop
    // it later. (The scope authorizes what is otherwise a fatal misuse when
    // owner checking is compiled in.)
    net::Payload::ForeignReleaseScope scope;
    payload.reset();
    foreign_pool_after = net::Payload::pool_size();
  });
  t.join();
  EXPECT_EQ(foreign_pool_after, 0u);
}

TEST(PayloadOwnership, OwnerThreadReleaseStillPools) {
  net::Payload::trim_pool();
  const std::size_t before = net::Payload::pool_size();
  const std::vector<std::uint8_t> body = {0x02};
  {
    const auto p = net::Payload::copy_of(wire::encode_frame(2, body));
    (void)p;
  }
  EXPECT_EQ(net::Payload::pool_size(), before + 1);
}

TEST(PayloadOwnership, UnownedPayloadReleasesAnywhereWithoutScopeOrPooling) {
  // A control thread sending into a parked shard creates payloads that the
  // shard's worker will release after delivery: born inside
  // UnownedCreationScope they belong to no pool and any thread may delete
  // them, with no ForeignReleaseScope at the release site.
  net::Payload::trim_pool();
  const std::vector<std::uint8_t> body = {0x04};
  std::unique_ptr<net::Payload> p;
  {
    net::Payload::UnownedCreationScope scope;
    p = std::make_unique<net::Payload>(
        net::Payload::copy_of(wire::encode_frame(2, body)));
  }
  std::size_t other_pool_after = 99;
  std::thread t([&] {
    p.reset();  // no scope here — must not abort, must not pool
    other_pool_after = net::Payload::pool_size();
  });
  t.join();
  EXPECT_EQ(other_pool_after, 0u);

  // Released on the CREATING thread it still skips the pool: unowned means
  // unowned, not "owned until it happens to die at home".
  {
    net::Payload::UnownedCreationScope scope;
    const auto q = net::Payload::copy_of(wire::encode_frame(2, body));
    (void)q;
  }
  EXPECT_EQ(net::Payload::pool_size(), 0u);
}

#if GS_PAYLOAD_OWNER_CHECK
TEST(PayloadOwnership, UnscopedForeignReleaseAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  const std::vector<std::uint8_t> body = {0x03};
  EXPECT_DEATH(
      {
        auto victim = std::make_unique<net::Payload>(
            net::Payload::copy_of(wire::encode_frame(2, body)));
        std::thread t([&] { victim.reset(); });
        t.join();
      },
      "released on a thread other than its owner");
}
#endif

}  // namespace
}  // namespace gs
