// Unit tests for the failure-detector strategies, run against a minimal
// in-test message router (no daemon, no fabric): each endpoint owns one
// detector; the router plays the AdapterProtocol's part for ping/poll
// replies and records suspicions.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "gs/fd.h"
#include "gs/fd_impl.h"
#include "sim/simulator.h"
#include "wire/frame.h"

namespace gs::proto {
namespace {

MemberInfo member(std::uint8_t host) {
  MemberInfo m;
  m.ip = util::IpAddress(10, 0, 0, host);
  m.mac = util::MacAddress(host);
  m.node = util::NodeId(host);
  return m;
}

class FdHarness {
 public:
  FdHarness(sim::Simulator& sim, Params params, FdKind kind, int n)
      : sim_(sim), params_(params) {
    std::vector<MemberInfo> members;
    for (int i = 1; i <= n; ++i)
      members.push_back(member(static_cast<std::uint8_t>(i)));
    view_ = MembershipView::make(1, members);

    for (const MemberInfo& m : view_.members()) {
      auto& ep = endpoints_[m.ip];
      ep.ip = m.ip;
      FdContext ctx;
      ctx.sim = &sim_;
      ctx.params = &params_;
      ctx.self = m.ip;
      ctx.rng = util::Rng(m.ip.bits());
      ctx.send = [this, self = m.ip](util::IpAddress to,
                                     net::Payload frame) {
        route(self, to, std::vector<std::uint8_t>(frame.bytes().begin(),
                                                  frame.bytes().end()));
      };
      ctx.suspect = [this, self = m.ip](util::IpAddress suspect) {
        suspicions_.emplace_back(self, suspect);
      };
      ctx.loopback_ok = [this, self = m.ip] {
        return !endpoints_.at(self).recv_dead && !endpoints_.at(self).dead;
      };
      ep.fd = make_failure_detector(kind, std::move(ctx));
    }
    for (auto& [ip, ep] : endpoints_) ep.fd->start(view_);
  }

  void kill(std::uint8_t host) {
    auto& ep = endpoints_.at(member(host).ip);
    ep.dead = true;
    ep.fd->stop();
  }

  void kill_silently(std::uint8_t host) {  // stops sending, keeps receiving
    endpoints_.at(member(host).ip).send_dead = true;
  }

  void make_recv_dead(std::uint8_t host) {
    endpoints_.at(member(host).ip).recv_dead = true;
  }

  [[nodiscard]] std::size_t suspicion_count(std::uint8_t suspect_host) const {
    const util::IpAddress target = member(suspect_host).ip;
    std::size_t n = 0;
    for (const auto& [reporter, suspect] : suspicions_)
      if (suspect == target) ++n;
    return n;
  }

  [[nodiscard]] std::set<util::IpAddress> reporters_of(
      std::uint8_t suspect_host) const {
    const util::IpAddress target = member(suspect_host).ip;
    std::set<util::IpAddress> out;
    for (const auto& [reporter, suspect] : suspicions_)
      if (suspect == target) out.insert(reporter);
    return out;
  }

  [[nodiscard]] std::size_t total_suspicions() const {
    return suspicions_.size();
  }
  [[nodiscard]] std::uint64_t frames_sent() const { return frames_sent_; }

  [[nodiscard]] const MembershipView& view() const { return view_; }

 private:
  struct Endpoint {
    util::IpAddress ip;
    std::unique_ptr<FailureDetector> fd;
    bool dead = false;
    bool send_dead = false;
    bool recv_dead = false;
  };

  void route(util::IpAddress from, util::IpAddress to,
             std::vector<std::uint8_t> frame) {
    ++frames_sent_;
    const auto& src = endpoints_.at(from);
    if (src.dead || src.send_dead) return;
    auto it = endpoints_.find(to);
    if (it == endpoints_.end()) return;
    Endpoint& dst = it->second;
    if (dst.dead || dst.recv_dead) return;
    // Small fixed latency keeps causality realistic.
    sim_.after(sim::microseconds(100), [this, from, &dst, frame] {
      if (dst.dead || dst.recv_dead) return;
      deliver(from, dst, frame);
    });
  }

  void deliver(util::IpAddress from, Endpoint& dst,
               const std::vector<std::uint8_t>& bytes) {
    auto decoded = wire::decode_frame(bytes);
    ASSERT_TRUE(decoded.ok());
    switch (static_cast<MsgType>(decoded.frame.type)) {
      case MsgType::kHeartbeat: {
        auto hb = decode_Heartbeat(decoded.frame.payload);
        ASSERT_TRUE(hb.has_value());
        dst.fd->on_heartbeat(from, *hb);
        break;
      }
      case MsgType::kPing: {
        // The AdapterProtocol normally answers pings; play its part.
        auto ping = decode_Ping(decoded.frame.payload);
        ASSERT_TRUE(ping.has_value());
        PingAck ack{};
        ack.nonce = ping->nonce;
        ack.target = dst.ip;
        route(dst.ip, ping->origin, to_frame(ack));
        break;
      }
      case MsgType::kPingAck: {
        auto ack = decode_PingAck(decoded.frame.payload);
        ASSERT_TRUE(ack.has_value());
        dst.fd->on_ping_ack(from, *ack);
        break;
      }
      case MsgType::kPingReq: {
        auto req = decode_PingReq(decoded.frame.payload);
        ASSERT_TRUE(req.has_value());
        dst.fd->on_ping_req(from, *req);
        break;
      }
      case MsgType::kSubgroupPoll: {
        auto poll = decode_SubgroupPoll(decoded.frame.payload);
        ASSERT_TRUE(poll.has_value());
        SubgroupPollAck ack{};
        ack.seq = poll->seq;
        route(dst.ip, from, to_frame(ack));
        break;
      }
      case MsgType::kSubgroupPollAck: {
        auto ack = decode_SubgroupPollAck(decoded.frame.payload);
        ASSERT_TRUE(ack.has_value());
        dst.fd->on_subgroup_poll_ack(from, *ack);
        break;
      }
      default:
        FAIL() << "unexpected message type on fd channel";
    }
  }

  sim::Simulator& sim_;
  Params params_;
  MembershipView view_;
  std::map<util::IpAddress, Endpoint> endpoints_;
  std::vector<std::pair<util::IpAddress, util::IpAddress>> suspicions_;
  std::uint64_t frames_sent_ = 0;
};

Params fd_params() {
  Params p;
  p.hb_period = sim::milliseconds(100);
  p.hb_sensitivity = 2;
  p.resuspect_hold = sim::seconds(10);  // one suspicion per test window
  p.ping_period = sim::milliseconds(200);
  p.ping_timeout = sim::milliseconds(50);
  p.subgroup_size = 3;
  p.subgroup_poll_period = sim::milliseconds(500);
  p.subgroup_poll_misses = 2;
  return p;
}

// --- Healthy steady state -------------------------------------------------------

class FdSteadyState : public ::testing::TestWithParam<FdKind> {};

TEST_P(FdSteadyState, NoFalseSuspicionsWhenHealthy) {
  sim::Simulator sim;
  FdHarness harness(sim, fd_params(), GetParam(), 8);
  sim.run_until(sim::seconds(10));
  EXPECT_EQ(harness.total_suspicions(), 0u);
}

INSTANTIATE_TEST_SUITE_P(AllKinds, FdSteadyState,
                         ::testing::Values(FdKind::kUnidirectionalRing,
                                           FdKind::kBidirectionalRing,
                                           FdKind::kAllToAll,
                                           FdKind::kSubgroupRing,
                                           FdKind::kRandomPing));

// --- Detection of a dead member ----------------------------------------------------

class FdDetection : public ::testing::TestWithParam<FdKind> {};

TEST_P(FdDetection, DeadMemberIsSuspected) {
  sim::Simulator sim;
  FdHarness harness(sim, fd_params(), GetParam(), 8);
  sim.run_until(sim::seconds(2));
  harness.kill(4);
  sim.run_until(sim::seconds(2) + sim::seconds(12));
  EXPECT_GE(harness.suspicion_count(4), 1u)
      << "detector " << to_string(GetParam()) << " missed the death";
}

INSTANTIATE_TEST_SUITE_P(AllKinds, FdDetection,
                         ::testing::Values(FdKind::kUnidirectionalRing,
                                           FdKind::kBidirectionalRing,
                                           FdKind::kAllToAll,
                                           FdKind::kSubgroupRing,
                                           FdKind::kRandomPing));

// --- Ring-specific behaviour --------------------------------------------------------

TEST(RingFd, UniRingOnlyLeftNeighborReports) {
  sim::Simulator sim;
  FdHarness harness(sim, fd_params(), FdKind::kUnidirectionalRing, 6);
  sim.run_until(sim::seconds(1));
  harness.kill(3);
  sim.run_until(sim::seconds(6));
  // Rank order is 6,5,4,3,2,1; host 3's heartbeats went to host 2 (its
  // right neighbor), so host 2 is the monitor that notices.
  const auto reporters = harness.reporters_of(3);
  ASSERT_EQ(reporters.size(), 1u);
  EXPECT_EQ(*reporters.begin(), util::IpAddress(10, 0, 0, 2));
}

TEST(RingFd, BiRingBothNeighborsReport) {
  sim::Simulator sim;
  FdHarness harness(sim, fd_params(), FdKind::kBidirectionalRing, 6);
  sim.run_until(sim::seconds(1));
  harness.kill(3);
  sim.run_until(sim::seconds(6));
  const auto reporters = harness.reporters_of(3);
  EXPECT_EQ(reporters.size(), 2u);
  EXPECT_TRUE(reporters.count(util::IpAddress(10, 0, 0, 2)));
  EXPECT_TRUE(reporters.count(util::IpAddress(10, 0, 0, 4)));
}

TEST(RingFd, DetectionTimeTracksSensitivity) {
  for (int k : {1, 3}) {
    Params p = fd_params();
    p.hb_sensitivity = k;
    sim::Simulator sim;
    FdHarness harness(sim, p, FdKind::kBidirectionalRing, 4);
    sim.run_until(sim::seconds(1));
    harness.kill(2);
    // Expected detection at roughly (k + 1/2) * period after death.
    const sim::SimTime death = sim.now();
    while (harness.suspicion_count(2) == 0 && sim.now() < sim::seconds(30))
      sim.run_until(sim.now() + sim::milliseconds(10));
    const sim::SimTime latency = sim.now() - death;
    EXPECT_LE(latency, p.hb_period * (k + 2));
    EXPECT_GE(latency, p.hb_period * k / 2);
  }
}

TEST(RingFd, LoopbackTestSuppressesFalseBlame) {
  Params p = fd_params();
  p.fd_loopback_test = true;
  sim::Simulator sim;
  FdHarness harness(sim, p, FdKind::kBidirectionalRing, 4);
  sim.run_until(sim::seconds(1));
  // Host 2 stops receiving; its neighbors still hear it. Without a
  // loopback test host 2 would blame both neighbors.
  harness.make_recv_dead(2);
  sim.run_until(sim::seconds(8));
  EXPECT_EQ(harness.total_suspicions(), 0u);
}

TEST(RingFd, WithoutLoopbackTestRecvDeadBlamesNeighbors) {
  Params p = fd_params();
  p.fd_loopback_test = false;
  sim::Simulator sim;
  FdHarness harness(sim, p, FdKind::kBidirectionalRing, 4);
  sim.run_until(sim::seconds(1));
  harness.make_recv_dead(2);
  sim.run_until(sim::seconds(8));
  // The §3 flaw reproduced: the broken receiver reports healthy neighbors.
  EXPECT_GE(harness.total_suspicions(), 2u);
  EXPECT_GE(harness.suspicion_count(1), 1u);
  EXPECT_GE(harness.suspicion_count(3), 1u);
}

TEST(RingFd, PairGroupMonitorsEachOther) {
  sim::Simulator sim;
  FdHarness harness(sim, fd_params(), FdKind::kBidirectionalRing, 2);
  sim.run_until(sim::seconds(1));
  harness.kill(1);
  sim.run_until(sim::seconds(6));
  EXPECT_GE(harness.suspicion_count(1), 1u);
}

TEST(RingFd, SingletonIsQuiet) {
  sim::Simulator sim;
  FdHarness harness(sim, fd_params(), FdKind::kBidirectionalRing, 1);
  const std::uint64_t before = harness.frames_sent();
  sim.run_until(sim::seconds(5));
  EXPECT_EQ(harness.frames_sent(), before);
  EXPECT_EQ(harness.total_suspicions(), 0u);
}

// --- Consensus hints ------------------------------------------------------------------

TEST(FdConsensus, ReporterRequirements) {
  sim::Simulator sim;
  Params p = fd_params();
  auto make = [&](FdKind kind) {
    FdContext ctx;
    ctx.sim = &sim;
    ctx.params = &p;
    ctx.self = member(1).ip;
    ctx.send = [](util::IpAddress, net::Payload) {};
    ctx.suspect = [](util::IpAddress) {};
    return make_failure_detector(kind, std::move(ctx));
  };
  EXPECT_EQ(make(FdKind::kUnidirectionalRing)->consensus_reporters(), 1);
  EXPECT_EQ(make(FdKind::kBidirectionalRing)->consensus_reporters(), 2);
  EXPECT_EQ(make(FdKind::kAllToAll)->consensus_reporters(), 2);
  EXPECT_EQ(make(FdKind::kSubgroupRing)->consensus_reporters(), 1);
  EXPECT_EQ(make(FdKind::kRandomPing)->consensus_reporters(), 1);
}

// --- Subgroup scheme ---------------------------------------------------------------------

TEST(SubgroupFd, SubgroupPartitioning) {
  auto sub = HeartbeatFd::subgroup_of(0, 10, 3);
  EXPECT_EQ(sub, (std::vector<std::size_t>{0, 1, 2}));
  sub = HeartbeatFd::subgroup_of(4, 10, 3);
  EXPECT_EQ(sub, (std::vector<std::size_t>{3, 4, 5}));
  sub = HeartbeatFd::subgroup_of(9, 10, 3);
  EXPECT_EQ(sub, (std::vector<std::size_t>{9}));
}

TEST(SubgroupFd, CatastrophicSubgroupLossDetectedByLeaderPoll) {
  sim::Simulator sim;
  FdHarness harness(sim, fd_params(), FdKind::kSubgroupRing, 9);
  sim.run_until(sim::seconds(1));
  // Rank order: 9..1; subgroups {9,8,7}, {6,5,4}, {3,2,1}. Kill the entire
  // middle subgroup: no in-subgroup monitor survives, so only the leader's
  // low-frequency poll can notice (§4.2).
  harness.kill(6);
  harness.kill(5);
  harness.kill(4);
  sim.run_until(sim::seconds(12));
  EXPECT_GE(harness.suspicion_count(6), 1u);
  EXPECT_GE(harness.suspicion_count(5), 1u);
  EXPECT_GE(harness.suspicion_count(4), 1u);
  // The leader (host 9) must be among the reporters.
  EXPECT_TRUE(harness.reporters_of(5).count(util::IpAddress(10, 0, 0, 9)));
}

TEST(SubgroupFd, SingletonTailSubgroupCoveredByLeaderPoll) {
  // Ten members with subgroups of 3 leave rank 9 alone in the tail chunk:
  // nobody heartbeats it, so only the leader's poll can notice its death.
  sim::Simulator sim;
  FdHarness harness(sim, fd_params(), FdKind::kSubgroupRing, 10);
  sim.run_until(sim::seconds(1));
  harness.kill(1);  // rank 9 = lowest IP = host 1
  sim.run_until(sim::seconds(12));
  const auto reporters = harness.reporters_of(1);
  ASSERT_GE(reporters.size(), 1u);
  EXPECT_TRUE(reporters.count(util::IpAddress(10, 0, 0, 10)))
      << "only the leader can detect a dead singleton subgroup";
}

TEST(SubgroupFd, InSubgroupFailureDetectedBySubgroupPeers) {
  sim::Simulator sim;
  FdHarness harness(sim, fd_params(), FdKind::kSubgroupRing, 9);
  sim.run_until(sim::seconds(1));
  harness.kill(5);  // middle subgroup {6,5,4}
  sim.run_until(sim::seconds(4));
  const auto reporters = harness.reporters_of(5);
  EXPECT_GE(reporters.size(), 1u);
  EXPECT_TRUE(reporters.count(util::IpAddress(10, 0, 0, 6)) ||
              reporters.count(util::IpAddress(10, 0, 0, 4)));
}

// --- Randomized pinging --------------------------------------------------------------------

TEST(RandPingFd, IndirectProbesMaskOneWayLossToTarget) {
  // Origin cannot reach the target directly, but proxies can: the indirect
  // path must prevent a false suspicion. We emulate by making the target
  // recv-dead... that blocks proxies too, so instead verify the proxy
  // machinery with a healthy target and direct-timeout forced by a tiny
  // ping timeout (acks arrive after the direct window but within the
  // round).
  Params p = fd_params();
  p.ping_timeout = sim::microseconds(50);  // direct window shorter than RTT
  p.ping_period = sim::milliseconds(300);
  sim::Simulator sim;
  FdHarness harness(sim, p, FdKind::kRandomPing, 5);
  sim.run_until(sim::seconds(10));
  // Direct acks always miss the 50us window, but they still arrive and are
  // accepted before the round ends: no suspicions.
  EXPECT_EQ(harness.total_suspicions(), 0u);
}

TEST(RandPingFd, SilentTargetSuspectedWithinFewPeriods) {
  sim::Simulator sim;
  FdHarness harness(sim, fd_params(), FdKind::kRandomPing, 4);
  sim.run_until(sim::seconds(1));
  harness.kill(2);
  // With 3 live members picking uniformly among 3 peers each 200 ms, the
  // dead member is pinged within a few periods.
  sim.run_until(sim::seconds(8));
  EXPECT_GE(harness.suspicion_count(2), 1u);
}

}  // namespace
}  // namespace gs::proto
