// Property-based sweeps over farm size, seed, detector kind, and loss rate.
// Invariants checked at quiescence:
//   I1 every fully healthy adapter sits in exactly one committed AMG;
//   I2 each AMG's leader holds the highest IP in the group;
//   I3 the committed order (= heartbeat ring) is a permutation of the
//      membership;
//   I4 all members of a VLAN agree on the same view;
//   I5 GulfStream Central's view matches fabric ground truth;
//   I6 the configuration database verifies clean on an unperturbed farm.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "farm/farm.h"
#include "farm/scenario.h"

namespace gs {
namespace {

struct SweepCase {
  int nodes;
  int adapters;
  std::uint64_t seed;
  proto::FdKind fd;
  double loss;

  friend std::ostream& operator<<(std::ostream& os, const SweepCase& c) {
    return os << c.nodes << "n" << c.adapters << "a_seed" << c.seed << "_"
              << to_string(c.fd) << "_loss" << static_cast<int>(c.loss * 100);
  }
};

class FarmSweep : public ::testing::TestWithParam<SweepCase> {};

void check_invariants(farm::Farm& farm) {
  proto::Central* central = farm.active_central();
  ASSERT_NE(central, nullptr);

  std::set<util::IpAddress> seen_anywhere;
  for (util::VlanId vlan : farm.vlans()) {
    std::vector<util::AdapterId> healthy;
    for (util::AdapterId id : farm.fabric().adapters_in_vlan(vlan))
      if (farm.fabric().adapter(id).health() == net::HealthState::kUp)
        healthy.push_back(id);
    if (healthy.empty()) continue;

    util::IpAddress highest;
    std::set<util::IpAddress> ips;
    for (util::AdapterId id : healthy) {
      const util::IpAddress ip = farm.fabric().adapter(id).ip();
      ips.insert(ip);
      highest = std::max(highest, ip);
    }

    std::optional<std::uint64_t> view;
    for (util::AdapterId id : healthy) {
      proto::AdapterProtocol* proto = farm.protocol_for(id);
      ASSERT_NE(proto, nullptr);
      // I1: committed member of exactly one group (its VLAN's).
      ASSERT_TRUE(proto->is_committed()) << vlan;
      const util::IpAddress self = proto->self().ip;
      EXPECT_FALSE(seen_anywhere.count(self)) << self << " in two groups";
      seen_anywhere.insert(self);

      // I2: leader has the highest IP.
      EXPECT_EQ(proto->leader_ip(), highest) << vlan;

      // I3: ring order is a permutation of the membership.
      const auto& view_obj = proto->committed();
      std::set<util::IpAddress> ring;
      util::IpAddress cursor = self;
      for (std::size_t i = 0; i < view_obj.size(); ++i) {
        ring.insert(cursor);
        cursor = view_obj.right_of(cursor);
      }
      EXPECT_EQ(cursor, self);
      EXPECT_EQ(ring.size(), view_obj.size());

      // membership equals ground truth
      std::set<util::IpAddress> member_ips;
      for (const proto::MemberInfo& m : view_obj.members())
        member_ips.insert(m.ip);
      EXPECT_EQ(member_ips, ips) << vlan;

      // I4: same view id across the group.
      if (!view) view = view_obj.view();
      EXPECT_EQ(*view, view_obj.view()) << vlan;
    }

    // I5: GSC has this group with exactly these members.
    bool found = false;
    for (const auto& g : central->groups()) {
      std::set<util::IpAddress> gsc_ips(g.members.begin(), g.members.end());
      if (gsc_ips == ips) found = true;
    }
    EXPECT_TRUE(found) << "GSC lacks the group for " << vlan;
  }

  // I6: verification is clean on an unperturbed farm.
  EXPECT_TRUE(central->verify_now().empty());
}

TEST_P(FarmSweep, ConvergesAndHoldsInvariants) {
  const SweepCase& c = GetParam();
  sim::Simulator sim;
  proto::Params params;
  params.beacon_phase = sim::seconds(2);
  params.amg_stable_wait = sim::seconds(1);
  params.gsc_stable_wait = sim::seconds(3);
  params.fd_kind = c.fd;
  farm::Farm farm(sim, farm::FarmSpec::uniform(c.nodes, c.adapters), params,
                  c.seed);
  if (c.loss > 0) {
    net::ChannelModel lossy;
    lossy.loss_probability = c.loss;
    for (util::VlanId vlan : farm.vlans())
      farm.fabric().segment(vlan).set_model(lossy);
  }
  farm.start();

  ASSERT_TRUE(farm::run_until_converged(farm, sim::seconds(240)).has_value())
      << "no convergence for " << c;
  ASSERT_TRUE(farm::run_until_gsc_stable(farm, sim::seconds(360)).has_value());
  // Let the last membership reports drain to GSC.
  farm::run_until(sim, sim.now() + sim::seconds(10), [] { return false; });
  check_invariants(farm);
}

std::vector<SweepCase> sweep_cases() {
  std::vector<SweepCase> cases;
  // Size x seed sweep with the default detector.
  for (int nodes : {2, 3, 5, 9, 17, 32}) {
    for (std::uint64_t seed : {1ull, 2ull, 3ull}) {
      cases.push_back({nodes, 2, seed, proto::FdKind::kBidirectionalRing, 0.0});
    }
  }
  // Detector sweep.
  for (proto::FdKind fd :
       {proto::FdKind::kUnidirectionalRing, proto::FdKind::kAllToAll,
        proto::FdKind::kSubgroupRing, proto::FdKind::kRandomPing}) {
    cases.push_back({8, 2, 7, fd, 0.0});
    cases.push_back({16, 3, 8, fd, 0.0});
  }
  // Loss sweep.
  for (double loss : {0.01, 0.05, 0.10}) {
    cases.push_back({8, 2, 11, proto::FdKind::kBidirectionalRing, loss});
    cases.push_back({12, 3, 12, proto::FdKind::kBidirectionalRing, loss});
  }
  // Multi-adapter nodes.
  for (int adapters : {1, 4, 5})
    cases.push_back({6, adapters, 13, proto::FdKind::kBidirectionalRing, 0.0});
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Sweep, FarmSweep, ::testing::ValuesIn(sweep_cases()));

// Océano-shaped farms: same invariants on the multi-domain topology.
struct OceanoCase {
  int domains;
  int fronts;
  int backs;
  std::uint64_t seed;

  friend std::ostream& operator<<(std::ostream& os, const OceanoCase& c) {
    return os << c.domains << "d" << c.fronts << "f" << c.backs << "b_seed"
              << c.seed;
  }
};

class OceanoSweep : public ::testing::TestWithParam<OceanoCase> {};

TEST_P(OceanoSweep, ConvergesAndHoldsInvariants) {
  const OceanoCase& c = GetParam();
  sim::Simulator sim;
  proto::Params params;
  params.beacon_phase = sim::seconds(2);
  params.amg_stable_wait = sim::seconds(1);
  params.gsc_stable_wait = sim::seconds(3);
  farm::Farm farm(sim,
                  farm::FarmSpec::oceano(c.domains, c.fronts, c.backs, 2, 2),
                  params, c.seed);
  farm.start();
  ASSERT_TRUE(farm::run_until_converged(farm, sim::seconds(240)).has_value())
      << "no convergence for " << c;
  ASSERT_TRUE(farm::run_until_gsc_stable(farm, sim::seconds(360)).has_value());
  farm::run_until(sim, sim.now() + sim::seconds(10), [] { return false; });
  check_invariants(farm);

  // Domain isolation: internal AMGs never span customer domains.
  proto::Central* central = farm.active_central();
  for (const auto& group : central->groups()) {
    std::set<util::VlanId> vlans;
    for (util::IpAddress ip : group.members) {
      const auto rec = farm.db().adapter_by_ip(ip);
      ASSERT_TRUE(rec.has_value());
      vlans.insert(rec->expected_vlan);
    }
    EXPECT_EQ(vlans.size(), 1u)
        << "group led by " << group.leader.ip << " spans VLANs";
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, OceanoSweep,
                         ::testing::Values(OceanoCase{1, 1, 1, 1},
                                           OceanoCase{1, 4, 4, 2},
                                           OceanoCase{2, 2, 2, 3},
                                           OceanoCase{3, 3, 3, 4},
                                           OceanoCase{4, 5, 5, 5},
                                           OceanoCase{6, 2, 2, 6}));

// Long-horizon soak: one simulated hour of mixed churn — node kills and
// boots, NIC failures, VLAN moves, a partition cycle — then quiesce and
// hold every invariant.
class SoakSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SoakSweep, OneSimulatedHourOfChurn) {
  sim::Simulator sim;
  proto::Params params;
  params.beacon_phase = sim::seconds(2);
  params.amg_stable_wait = sim::seconds(1);
  params.gsc_stable_wait = sim::seconds(3);
  farm::Farm farm(sim, farm::FarmSpec::uniform(12, 2), params, GetParam());
  farm.start();
  ASSERT_TRUE(farm::run_until_converged(farm, sim::seconds(120)).has_value());

  util::Rng rng(GetParam() * 7919);
  std::set<std::uint32_t> down_nodes;
  std::set<util::AdapterId> down_nics;
  const util::VlanId data_vlan = farm::uniform_vlan(1);
  bool partitioned = false;

  while (sim.now() < sim::seconds(3600)) {
    switch (rng.below(5)) {
      case 0: {  // toggle a node (spare the two highest = GSC candidates)
        const auto victim = static_cast<std::uint32_t>(rng.below(10));
        if (down_nodes.count(victim)) {
          farm.recover_node(victim);
          down_nodes.erase(victim);
        } else {
          farm.fail_node(victim);
          down_nodes.insert(victim);
        }
        break;
      }
      case 1: {  // toggle a single NIC
        const auto node = static_cast<std::uint32_t>(rng.below(10));
        if (down_nodes.count(node)) break;
        const util::AdapterId nic = farm.node_adapters(node)[1];
        if (down_nics.count(nic)) {
          farm.fabric().set_adapter_health(nic, net::HealthState::kUp);
          down_nics.erase(nic);
        } else {
          farm.fabric().set_adapter_health(nic, net::HealthState::kDown);
          down_nics.insert(nic);
        }
        break;
      }
      case 2: {  // partition / heal the data VLAN
        if (partitioned) {
          farm.fabric().heal_vlan(data_vlan);
        } else {
          const auto adapters = farm.fabric().adapters_in_vlan(data_vlan);
          if (adapters.size() >= 4) {
            const std::size_t cut = adapters.size() / 2;
            farm.fabric().partition_vlan(
                data_vlan,
                {{adapters.begin(), adapters.begin() +
                                        static_cast<std::ptrdiff_t>(cut)},
                 {adapters.begin() + static_cast<std::ptrdiff_t>(cut),
                  adapters.end()}});
          }
        }
        partitioned = !partitioned;
        break;
      }
      default:
        break;  // quiet period
    }
    sim.run_until(sim.now() +
                  sim::seconds(static_cast<int>(rng.below(120)) + 20));
  }

  // Heal the world and require full recovery.
  if (partitioned) farm.fabric().heal_vlan(data_vlan);
  for (std::uint32_t node : down_nodes) farm.recover_node(node);
  for (util::AdapterId nic : down_nics)
    farm.fabric().set_adapter_health(nic, net::HealthState::kUp);

  ASSERT_TRUE(farm::run_until_converged(farm, sim.now() + sim::seconds(600))
                  .has_value())
      << "farm never recovered after one hour of churn";
  farm::run_until(sim, sim.now() + sim::seconds(15), [] { return false; });
  check_invariants(farm);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SoakSweep, ::testing::Values(11, 22, 33, 44));

// Churn property: random failures and recoveries, then quiesce — the farm
// must re-converge and hold invariants afterwards.
class ChurnSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ChurnSweep, RecoversFromRandomChurn) {
  sim::Simulator sim;
  proto::Params params;
  params.beacon_phase = sim::seconds(2);
  params.amg_stable_wait = sim::seconds(1);
  params.gsc_stable_wait = sim::seconds(3);
  farm::Farm farm(sim, farm::FarmSpec::uniform(10, 2), params, GetParam());
  farm.start();
  ASSERT_TRUE(farm::run_until_converged(farm, sim::seconds(120)).has_value());

  util::Rng rng(GetParam() * 977);
  std::set<std::uint32_t> down;
  for (int round = 0; round < 12; ++round) {
    // Never touch the two highest nodes so an admin leader survives; kill
    // or revive a random other node.
    const auto victim = static_cast<std::uint32_t>(rng.below(8));
    if (down.count(victim)) {
      farm.recover_node(victim);
      down.erase(victim);
    } else {
      farm.fail_node(victim);
      down.insert(victim);
    }
    sim.run_until(sim.now() + sim::seconds(static_cast<int>(rng.below(15)) + 2));
  }
  for (std::uint32_t victim : down) farm.recover_node(victim);

  ASSERT_TRUE(
      farm::run_until_converged(farm, sim.now() + sim::seconds(300)).has_value())
      << "farm never re-converged after churn";
  farm::run_until(sim, sim.now() + sim::seconds(15), [] { return false; });
  check_invariants(farm);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChurnSweep,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

}  // namespace
}  // namespace gs
