// Unit tests for GulfStream Central driven with synthetic reports — no
// network, no daemons: exact control over report ordering, gaps, and moves.
#include <gtest/gtest.h>

#include "config/configdb.h"
#include "gs/central.h"
#include "net/console.h"
#include "net/fabric.h"

namespace gs::proto {
namespace {

MemberInfo member(std::uint8_t host, std::uint32_t node) {
  MemberInfo m;
  m.ip = util::IpAddress(10, 0, 0, host);
  m.mac = util::MacAddress(host);
  m.node = util::NodeId(node);
  return m;
}

util::IpAddress ip(std::uint8_t host) { return util::IpAddress(10, 0, 0, host); }

class CentralTest : public ::testing::Test {
 protected:
  CentralTest() : fabric_(sim_, util::Rng(1)), console_(fabric_) {
    params_.gsc_stable_wait = sim::seconds(2);
    params_.move_window = sim::seconds(5);
    central_ = std::make_unique<Central>(sim_, params_, &db_, &console_);
    sub_ = central_->event_bus().subscribe(
        [this](const FarmEvent& e) { events_.push_back(e); });
    central_->activate(ip(200));
  }

  // Sends a report; returns the ack.
  ReportAck report(const MembershipReport& rep) {
    ReportAck out;
    central_->handle_report(rep.leader.ip, rep,
                            [&out](const ReportAck& ack) { out = ack; });
    return out;
  }

  MembershipReport full_report(std::uint8_t leader_host, std::uint64_t seq,
                               std::vector<MemberInfo> members,
                               std::uint64_t view = 1) {
    MembershipReport rep;
    rep.seq = seq;
    rep.view = view;
    rep.full = true;
    rep.leader = members.front();
    (void)leader_host;
    rep.added = std::move(members);
    return rep;
  }

  std::size_t count(FarmEvent::Kind kind) const {
    std::size_t n = 0;
    for (const auto& e : events_)
      if (e.kind == kind) ++n;
    return n;
  }

  sim::Simulator sim_;
  Params params_;
  config::ConfigDb db_;
  net::Fabric fabric_;
  net::SwitchConsole console_;
  std::unique_ptr<Central> central_;
  std::vector<FarmEvent> events_;
  obs::Subscription sub_;
};

TEST_F(CentralTest, FullReportEstablishesGroup) {
  auto ack = report(full_report(9, 1, {member(9, 0), member(5, 1)}));
  EXPECT_FALSE(ack.need_full);
  EXPECT_EQ(ack.seq, 1u);
  EXPECT_EQ(central_->known_adapter_count(), 2u);
  EXPECT_EQ(central_->alive_adapter_count(), 2u);
  ASSERT_EQ(central_->groups().size(), 1u);
  EXPECT_EQ(central_->groups()[0].members.size(), 2u);
}

TEST_F(CentralTest, DeltaWithoutSnapshotAsksForFull) {
  MembershipReport delta;
  delta.seq = 1;
  delta.full = false;
  delta.leader = member(9, 0);
  delta.added = {member(5, 1)};
  auto ack = report(delta);
  EXPECT_TRUE(ack.need_full);
  EXPECT_EQ(central_->known_adapter_count(), 0u);
}

TEST_F(CentralTest, SequenceGapAsksForFull) {
  report(full_report(9, 1, {member(9, 0), member(5, 1)}));
  MembershipReport delta;
  delta.seq = 3;  // gap: 2 missing
  delta.full = false;
  delta.leader = member(9, 0);
  delta.added = {member(4, 2)};
  auto ack = report(delta);
  EXPECT_TRUE(ack.need_full);
}

TEST_F(CentralTest, DuplicateReportIsIdempotent) {
  auto rep = full_report(9, 1, {member(9, 0), member(5, 1)});
  report(rep);
  auto ack = report(rep);  // retransmission
  EXPECT_FALSE(ack.need_full);
  EXPECT_EQ(central_->known_adapter_count(), 2u);
}

TEST_F(CentralTest, RegressedSeqFullSnapshotIsAppliedNotDupAcked) {
  // The leader's record sits at seq 5 when its daemon restarts; the reborn
  // process numbers reports from 1 again. Its full snapshot must be applied
  // — acking it as a duplicate would wedge the record, with every later
  // report from this leader looking stale too.
  report(full_report(9, 5, {member(9, 0), member(5, 1)}));
  auto ack = report(full_report(9, 1, {member(9, 0), member(4, 2)}, 2));
  EXPECT_FALSE(ack.need_full);
  ASSERT_EQ(central_->groups().size(), 1u);
  EXPECT_EQ(central_->groups()[0].view, 2u);
  ASSERT_EQ(central_->groups()[0].members.size(), 2u);
  EXPECT_TRUE(central_->adapter_status(ip(4)).has_value());

  // And the record chains off the new numbering: delta seq 2 is no gap.
  MembershipReport delta;
  delta.seq = 2;
  delta.view = 2;
  delta.leader = member(9, 0);
  delta.added = {member(3, 3)};
  EXPECT_FALSE(report(delta).need_full);
  EXPECT_EQ(central_->groups()[0].members.size(), 3u);
}

TEST_F(CentralTest, FullSnapshotWithCollidingSeqButNewViewIsApplied) {
  // A restarted leader numbers from scratch, so its fresh snapshot can
  // collide with last_seq at small values. Only an exact (seq, view) match
  // is a retransmission; a colliding seq under a new view is fresh state
  // and must be applied, not dup-acked.
  report(full_report(9, 1, {member(9, 0), member(5, 1)}));
  auto ack = report(full_report(9, 1, {member(9, 0), member(4, 2)}, 3));
  EXPECT_FALSE(ack.need_full);
  ASSERT_EQ(central_->groups().size(), 1u);
  EXPECT_EQ(central_->groups()[0].view, 3u);
  ASSERT_EQ(central_->groups()[0].members.size(), 2u);
  EXPECT_TRUE(central_->adapter_status(ip(4)).has_value());
  EXPECT_EQ(central_->adapter_status(ip(5))->group_leader, util::IpAddress());

  // An exact retransmission (same seq AND view) is still idempotent.
  report(full_report(9, 1, {member(9, 0), member(4, 2)}, 3));
  ASSERT_EQ(central_->groups().size(), 1u);
  EXPECT_EQ(central_->groups()[0].members.size(), 2u);
}

TEST_F(CentralTest, StaleReportFromRetiredLeaderCannotCorruptGroupTable) {
  // Regression: a stale pre-takeover report whose every membership claim is
  // fenced by a fresher view leaves the (re-created) group record empty;
  // its removed-member entries then drove unassign() into erasing that
  // record mid-loop while handle_report still held a reference into it.
  report(full_report(9, 1, {member(9, 0), member(5, 1), member(6, 2)}));

  // Adapter 5 dies: its record keeps group_leader=9 even once failed.
  MembershipReport death;
  death.seq = 2;
  death.view = 1;
  death.leader = member(9, 0);
  death.removed = {{ip(5), RemoveReason::kFailed}};
  report(death);

  // A fresher group (view 5) absorbs 9 and 6; group 9 is retired.
  report(full_report(12, 1, {member(12, 3), member(9, 0), member(6, 2)}, 5));
  ASSERT_EQ(central_->groups().size(), 1u);

  // The stale report from 9 arrives late: its claim of itself is fenced by
  // group 12's fresher view (zero successful claims), and its death list
  // touches both an adapter still recorded under 9 and one group 12 owns.
  MembershipReport stale;
  stale.seq = 3;
  stale.view = 1;
  stale.full = true;
  stale.leader = member(9, 0);
  stale.added = {member(9, 0)};
  stale.removed = {{ip(5), RemoveReason::kLeft}, {ip(6), RemoveReason::kLeft}};
  report(stale);

  // Group 12 is untouched; the stale leader's empty record was swept.
  ASSERT_EQ(central_->groups().size(), 1u);
  EXPECT_EQ(central_->groups()[0].leader.ip, ip(12));
  EXPECT_EQ(central_->groups()[0].members.size(), 3u);
  EXPECT_EQ(central_->adapter_status(ip(5))->group_leader, util::IpAddress());
  EXPECT_EQ(central_->adapter_status(ip(6))->group_leader, ip(12));
}

TEST_F(CentralTest, LeaseSweepDisabledWhenRefreshDisabled) {
  // With report_refresh = 0 leaders never renew, so lease expiry must be
  // off too — otherwise every healthy-but-unchanged group would be swept
  // and its whole membership declared dead on schedule.
  params_.report_refresh = 0;
  params_.group_lease = sim::seconds(8);
  Central central(sim_, params_, &db_, &console_);
  central.activate(ip(200));
  auto rep = full_report(9, 1, {member(9, 0), member(5, 1)});
  central.handle_report(rep.leader.ip, rep, [](const ReportAck&) {});
  sim_.run_until(sim_.now() + sim::seconds(40));
  EXPECT_EQ(central.groups().size(), 1u);
  EXPECT_TRUE(central.adapter_status(ip(5))->alive);
}

TEST_F(CentralTest, DuplicateFullReportRenewsGroupLease) {
  params_.group_lease = sim::seconds(8);
  Central central(sim_, params_, &db_, &console_);
  central.activate(ip(200));
  auto rep = full_report(9, 1, {member(9, 0), member(5, 1)});
  const auto send = [&] {
    central.handle_report(rep.leader.ip, rep, [](const ReportAck&) {});
  };
  send();
  // Retransmissions of an already-applied report are first-hand evidence
  // the leader is alive: each duplicate ack must renew the lease, or a
  // leader whose acks keep getting lost would have its whole live group
  // declared dead.
  for (int i = 0; i < 4; ++i) {
    sim_.run_until(sim_.now() + sim::seconds(5));
    send();
  }
  EXPECT_EQ(central.groups().size(), 1u);
  // Real silence past the lease still retires the group.
  sim_.run_until(sim_.now() + sim::seconds(12));
  EXPECT_TRUE(central.groups().empty());
}

TEST_F(CentralTest, GroupLeaseBoundaryIsExclusive) {
  // The lease check is strictly `>`: a group whose last report is EXACTLY
  // group_lease old is still inside its lease, so a report landing on the
  // same tick as the sweep renews a live group instead of racing its
  // retirement.
  params_.group_lease = sim::seconds(8);
  Central central(sim_, params_, &db_, &console_);
  central.activate(ip(200));
  auto rep = full_report(9, 1, {member(9, 0), member(5, 1)});
  central.handle_report(rep.leader.ip, rep, [](const ReportAck&) {});
  // Sweeps run every lease/4 = 2s; the one at t = 8s sees
  // now - last_report == group_lease exactly and must keep the group.
  sim_.run_until(sim::seconds(8));
  ASSERT_EQ(central.groups().size(), 1u);
  EXPECT_TRUE(central.adapter_status(ip(5))->alive);
  // A duplicate arriving on the boundary tick renews the lease...
  central.handle_report(rep.leader.ip, rep, [](const ReportAck&) {});
  sim_.run_until(sim::seconds(14));
  EXPECT_EQ(central.groups().size(), 1u);
  // ...after which real silence past the lease still retires the group.
  sim_.run_until(sim::seconds(20));
  EXPECT_TRUE(central.groups().empty());
}

TEST_F(CentralTest, StaleDeltaAfterLeaseExpiryCannotResurrectGroup) {
  params_.group_lease = sim::seconds(8);
  Central central(sim_, params_, &db_, &console_);
  central.activate(ip(200));
  auto rep = full_report(9, 1, {member(9, 0), member(5, 1)});
  central.handle_report(rep.leader.ip, rep, [](const ReportAck&) {});
  sim_.run_until(sim_.now() + sim::seconds(12));  // silence past the lease
  ASSERT_TRUE(central.groups().empty());
  ASSERT_FALSE(central.adapter_status(ip(5))->alive);
  // A late delta from the swept leader proves nothing about its members: it
  // must be bounced with need_full and must NOT re-create the group or touch
  // the member table — the requested full rebuilds it from scratch.
  MembershipReport delta;
  delta.seq = 2;
  delta.full = false;
  delta.leader = member(9, 0);
  delta.added = {member(4, 2)};
  ReportAck ack;
  central.handle_report(delta.leader.ip, delta,
                        [&ack](const ReportAck& a) { ack = a; });
  EXPECT_TRUE(ack.need_full);
  EXPECT_TRUE(central.groups().empty());
  EXPECT_FALSE(central.adapter_status(ip(4)).has_value());
  EXPECT_FALSE(central.adapter_status(ip(5))->alive);
  // The solicited full re-establishes the group and revives its members.
  auto fresh = full_report(9, 3, {member(9, 0), member(5, 1)}, 2);
  central.handle_report(fresh.leader.ip, fresh, [](const ReportAck&) {});
  ASSERT_EQ(central.groups().size(), 1u);
  EXPECT_TRUE(central.adapter_status(ip(5))->alive);
}

TEST_F(CentralTest, FailureDeltaEmitsAdapterFailedAfterMoveWindow) {
  report(full_report(9, 1, {member(9, 0), member(5, 1)}));
  MembershipReport delta;
  delta.seq = 2;
  delta.leader = member(9, 0);
  delta.removed = {{ip(5), RemoveReason::kFailed}};
  report(delta);
  EXPECT_EQ(count(FarmEvent::Kind::kAdapterFailed), 0u);  // held
  sim_.run_until(sim_.now() + params_.move_window + sim::seconds(1));
  EXPECT_EQ(count(FarmEvent::Kind::kAdapterFailed), 1u);
  EXPECT_FALSE(central_->adapter_status(ip(5))->alive);
}

TEST_F(CentralTest, RejoinWithinWindowBecomesUnexpectedMove) {
  report(full_report(9, 1, {member(9, 0), member(5, 1)}));
  report(full_report(8, 1, {member(8, 2)}));
  MembershipReport death;
  death.seq = 2;
  death.leader = member(9, 0);
  death.removed = {{ip(5), RemoveReason::kFailed}};
  report(death);

  // The same IP joins another group within the window.
  MembershipReport join;
  join.seq = 2;
  join.leader = member(8, 2);
  join.added = {member(5, 1)};
  report(join);

  sim_.run_until(sim_.now() + params_.move_window * 2);
  EXPECT_EQ(count(FarmEvent::Kind::kUnexpectedMove), 1u);
  EXPECT_EQ(count(FarmEvent::Kind::kAdapterFailed), 0u);
  EXPECT_TRUE(central_->adapter_status(ip(5))->alive);
}

TEST_F(CentralTest, NodeCorrelationRequiresAllAdaptersDead) {
  db_.put_adapter({util::AdapterId(0), util::NodeId(1), ip(5),
                   util::VlanId(1), util::SwitchId(0), util::PortId(0), false});
  db_.put_adapter({util::AdapterId(1), util::NodeId(1), ip(6),
                   util::VlanId(2), util::SwitchId(0), util::PortId(1), false});
  report(full_report(9, 1, {member(9, 0), member(5, 1), member(6, 1)}));

  MembershipReport death1;
  death1.seq = 2;
  death1.leader = member(9, 0);
  death1.removed = {{ip(5), RemoveReason::kFailed}};
  report(death1);
  sim_.run_until(sim_.now() + params_.move_window + sim::seconds(1));
  EXPECT_EQ(count(FarmEvent::Kind::kNodeFailed), 0u);  // one of two alive

  MembershipReport death2;
  death2.seq = 3;
  death2.leader = member(9, 0);
  death2.removed = {{ip(6), RemoveReason::kFailed}};
  report(death2);
  sim_.run_until(sim_.now() + params_.move_window + sim::seconds(1));
  EXPECT_EQ(count(FarmEvent::Kind::kNodeFailed), 1u);
  EXPECT_TRUE(central_->node_down(util::NodeId(1)));
}

TEST_F(CentralTest, MergeRetiresAbsorbedGroup) {
  report(full_report(9, 1, {member(9, 0), member(5, 1)}));
  report(full_report(7, 1, {member(7, 2), member(3, 3)}));
  EXPECT_EQ(central_->groups().size(), 2u);

  // Group 7 is absorbed by group 9: the next full from 9 claims everyone.
  report(full_report(9, 2,
                     {member(9, 0), member(7, 2), member(5, 1), member(3, 3)}));
  EXPECT_EQ(central_->groups().size(), 1u);
  EXPECT_EQ(central_->groups()[0].members.size(), 4u);
}

TEST_F(CentralTest, StabilityDeclaredAfterQuietPeriod) {
  EXPECT_FALSE(central_->initial_topology_stable());
  report(full_report(9, 1, {member(9, 0)}));
  sim_.run_until(sim_.now() + sim::seconds(1));
  EXPECT_FALSE(central_->initial_topology_stable());
  report(full_report(8, 1, {member(8, 1)}));  // re-arms the timer
  sim_.run_until(sim_.now() + params_.gsc_stable_wait + sim::seconds(1));
  EXPECT_TRUE(central_->initial_topology_stable());
  EXPECT_GT(central_->stable_time(), 0);
  EXPECT_EQ(count(FarmEvent::Kind::kInitialTopologyStable), 1u);
}

TEST_F(CentralTest, DeactivateClearsState) {
  report(full_report(9, 1, {member(9, 0)}));
  central_->deactivate();
  EXPECT_FALSE(central_->active());
  EXPECT_EQ(central_->known_adapter_count(), 0u);
  EXPECT_EQ(count(FarmEvent::Kind::kGscDeactivated), 1u);
  // Reports while inactive are ignored.
  report(full_report(9, 2, {member(9, 0)}));
  EXPECT_EQ(central_->known_adapter_count(), 0u);
}

TEST_F(CentralTest, ReactivationStartsEmpty) {
  report(full_report(9, 1, {member(9, 0), member(5, 1)}));
  central_->deactivate();
  central_->activate(ip(201));
  EXPECT_TRUE(central_->active());
  EXPECT_EQ(central_->known_adapter_count(), 0u);
  // Deltas referencing the old snapshot are now rejected with need_full.
  MembershipReport delta;
  delta.seq = 2;
  delta.leader = member(9, 0);
  delta.removed = {{ip(5), RemoveReason::kFailed}};
  EXPECT_TRUE(report(delta).need_full);
}

TEST_F(CentralTest, VerifyFlagsWrongVlanUsingMajorityVote) {
  db_.put_adapter({util::AdapterId(0), util::NodeId(0), ip(9),
                   util::VlanId(1), util::SwitchId(0), util::PortId(0), false});
  db_.put_adapter({util::AdapterId(1), util::NodeId(1), ip(5),
                   util::VlanId(1), util::SwitchId(0), util::PortId(1), false});
  db_.put_adapter({util::AdapterId(2), util::NodeId(2), ip(3),
                   util::VlanId(2), util::SwitchId(0), util::PortId(2), false});
  // Adapter 3 (expected on VLAN 2) was discovered in the VLAN-1 group.
  report(full_report(9, 1, {member(9, 0), member(5, 1), member(3, 2)}));
  auto findings = central_->verify_now();
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].kind, config::InconsistencyKind::kWrongVlan);
  EXPECT_EQ(findings[0].ip, ip(3));
  EXPECT_EQ(findings[0].expected_vlan, util::VlanId(2));
  EXPECT_EQ(findings[0].discovered_vlan, util::VlanId(1));
  EXPECT_EQ(count(FarmEvent::Kind::kInconsistencyFound), 1u);
}

TEST_F(CentralTest, MoveAdapterRequiresDbRecordAndConsole) {
  EXPECT_FALSE(central_->move_adapter(util::AdapterId(42), util::VlanId(2)));

  // Wire a real adapter through the fabric so the console path works.
  auto sw = fabric_.add_switch(4);
  auto id = fabric_.add_adapter(util::NodeId(1));
  fabric_.attach(id, sw, util::VlanId(1));
  fabric_.set_adapter_ip(id, ip(5));
  db_.put_adapter({id, util::NodeId(1), ip(5), util::VlanId(1), sw,
                   fabric_.adapter(id).attached_port(), false});

  EXPECT_TRUE(central_->move_adapter(id, util::VlanId(2)));
  EXPECT_EQ(fabric_.vlan_of(id), util::VlanId(2));
  EXPECT_EQ(db_.adapter(id)->expected_vlan, util::VlanId(2));
  EXPECT_EQ(count(FarmEvent::Kind::kMoveInitiated), 1u);

  // Expected-move suppression: the failure delta for ip5 emits nothing.
  report(full_report(9, 1, {member(9, 0), member(5, 1)}));
  MembershipReport death;
  death.seq = 2;
  death.leader = member(9, 0);
  death.removed = {{ip(5), RemoveReason::kFailed}};
  report(death);
  sim_.run_until(sim_.now() + params_.move_window + sim::seconds(1));
  EXPECT_EQ(count(FarmEvent::Kind::kAdapterFailed), 0u);

  // The join on the new segment completes the move.
  report(full_report(8, 1, {member(8, 2), member(5, 1)}));
  EXPECT_EQ(count(FarmEvent::Kind::kMoveCompleted), 1u);
}

TEST_F(CentralTest, MoveFailsWhenConsoleUnreachable) {
  auto sw = fabric_.add_switch(4);
  auto id = fabric_.add_adapter(util::NodeId(1));
  fabric_.attach(id, sw, util::VlanId(1));
  fabric_.set_adapter_ip(id, ip(5));
  db_.put_adapter({id, util::NodeId(1), ip(5), util::VlanId(1), sw,
                   fabric_.adapter(id).attached_port(), false});
  console_.set_access_check([] { return false; });
  EXPECT_FALSE(central_->move_adapter(id, util::VlanId(2)));
  EXPECT_EQ(fabric_.vlan_of(id), util::VlanId(1));
}

TEST_F(CentralTest, CentralWithoutDbCannotVerifyOrMove) {
  Central bare(sim_, params_, nullptr, nullptr);
  bare.activate(ip(200));
  EXPECT_FALSE(bare.has_db_access());
  EXPECT_TRUE(bare.verify_now().empty());
  EXPECT_FALSE(bare.move_adapter(util::AdapterId(0), util::VlanId(2)));
  // ... but it still aggregates failure reports (partition GSC, §2.2).
  ReportAck ack;
  MembershipReport rep;
  rep.seq = 1;
  rep.full = true;
  rep.leader = member(9, 0);
  rep.added = {member(9, 0)};
  bare.handle_report(ip(9), rep, [&ack](const ReportAck& a) { ack = a; });
  EXPECT_EQ(bare.known_adapter_count(), 1u);
}

TEST(FarmEventNames, Strings) {
  EXPECT_EQ(to_string(FarmEvent::Kind::kGscActivated), "gsc-activated");
  EXPECT_EQ(to_string(FarmEvent::Kind::kInconsistencyFound), "inconsistency");
  EXPECT_EQ(to_string(FarmEvent::Kind::kMoveCompleted), "move-completed");
}

}  // namespace
}  // namespace gs::proto
