// Soak harness unit tests: schedule generator determinism and
// well-formedness, script round-trip, runner end-to-end, and the
// schedule shrinker against a synthetic oracle.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "farm/script.h"
#include "soak/invariants.h"
#include "soak/runner.h"
#include "soak/schedule.h"
#include "soak/shrink.h"

namespace gs::soak {
namespace {

bool same_action(const farm::ScriptAction& a, const farm::ScriptAction& b) {
  return a.at == b.at && a.kind == b.kind && a.arg == b.arg &&
         a.vlan_arg == b.vlan_arg;
}

bool same_schedule(const std::vector<farm::ScriptAction>& a,
                   const std::vector<farm::ScriptAction>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i)
    if (!same_action(a[i], b[i])) return false;
  return true;
}

std::vector<farm::ScriptAction> generate(const SoakOptions& opts) {
  sim::Simulator sim;
  farm::Farm farm(sim, opts.spec, opts.params, opts.seed);
  return generate_schedule(farm, opts);
}

TEST(SoakSchedule, DeterministicForSeed) {
  SoakOptions opts;
  opts.seed = 7;
  const auto first = generate(opts);
  const auto second = generate(opts);
  EXPECT_FALSE(first.empty());
  EXPECT_TRUE(same_schedule(first, second));

  opts.seed = 8;
  EXPECT_FALSE(same_schedule(first, generate(opts)));
}

TEST(SoakSchedule, WellFormed) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    SoakOptions opts;
    opts.seed = seed;
    const auto schedule = generate(opts);
    ASSERT_FALSE(schedule.empty()) << "seed " << seed;

    sim::SimTime prev = 0;
    int unrecovered_nodes = 0;
    std::map<std::uint32_t, int> adapters_down;
    std::set<std::uint32_t> partitioned;
    for (const farm::ScriptAction& action : schedule) {
      EXPECT_GE(action.at, prev) << "seed " << seed;
      prev = action.at;
      EXPECT_EQ(action.at % sim::kMillisecond, 0) << "seed " << seed;
      EXPECT_GE(action.at, sim::kSecond) << "seed " << seed;
      EXPECT_LT(action.at, opts.horizon) << "seed " << seed;
      switch (action.kind) {
        case farm::ActionKind::kFailNode: ++unrecovered_nodes; break;
        case farm::ActionKind::kRecoverNode: --unrecovered_nodes; break;
        case farm::ActionKind::kFailAdapter:
        case farm::ActionKind::kFailAdapterRecv:
        case farm::ActionKind::kFailAdapterSend:
          ++adapters_down[action.arg];
          break;
        case farm::ActionKind::kRecoverAdapter:
          --adapters_down[action.arg];
          break;
        case farm::ActionKind::kPartitionVlan:
          EXPECT_TRUE(partitioned.insert(action.arg).second)
              << "seed " << seed << ": vlan " << action.arg
              << " partitioned while already split";
          break;
        case farm::ActionKind::kHealVlan:
          EXPECT_EQ(partitioned.erase(action.arg), 1u) << "seed " << seed;
          break;
        case farm::ActionKind::kMoveAdapter:
          // Never into (or out of) the admin VLAN: an admin move would
          // re-rank the GSC election by IP construction.
          EXPECT_NE(action.vlan_arg, farm::admin_vlan().value())
              << "seed " << seed;
          break;
        default: break;
      }
    }
    // Everything recovers except at most one permanently dead node.
    EXPECT_GE(unrecovered_nodes, 0) << "seed " << seed;
    EXPECT_LE(unrecovered_nodes, 1) << "seed " << seed;
    for (const auto& [adapter, down] : adapters_down)
      EXPECT_EQ(down, 0) << "seed " << seed << " adapter " << adapter;
    EXPECT_TRUE(partitioned.empty()) << "seed " << seed;
  }
}

TEST(SoakSchedule, ForcedGscFailoverPresent) {
  SoakOptions opts;
  opts.seed = 3;
  sim::Simulator sim;
  farm::Farm farm(sim, opts.spec, opts.params, opts.seed);
  const auto gsc_node = farm.expected_gsc_node();
  ASSERT_TRUE(gsc_node.has_value());
  bool failed = false;
  bool recovered = false;
  for (const farm::ScriptAction& action : generate_schedule(farm, opts)) {
    if (action.arg != *gsc_node) continue;
    if (action.kind == farm::ActionKind::kFailNode) failed = true;
    if (action.kind == farm::ActionKind::kRecoverNode) recovered = true;
  }
  EXPECT_TRUE(failed);
  EXPECT_TRUE(recovered);
}

TEST(SoakSchedule, ScriptRoundTrip) {
  SoakOptions opts;
  opts.seed = 11;
  const auto schedule = generate(opts);
  const std::string text = farm::format_script(schedule);
  const farm::ScriptParseResult parsed = farm::parse_script(text);
  ASSERT_TRUE(parsed.ok()) << parsed.error << " (line " << parsed.error_line
                           << ")\n" << text;
  EXPECT_TRUE(same_schedule(schedule, parsed.actions)) << text;
}

TEST(SoakRunner, CleanFarmPassesWithEmptySchedule) {
  SoakOptions opts;
  opts.seed = 1;
  opts.horizon = sim::seconds(20);
  const SoakResult result = run_schedule(opts, {});
  EXPECT_TRUE(result.converged_initially);
  EXPECT_TRUE(result.passed()) << format_violations(result.violations);
  EXPECT_TRUE(result.reconverged_at.has_value());
  EXPECT_GT(result.trace_records_checked, 0u);
}

TEST(SoakRunner, SeededFaultScheduleConverges) {
  SoakOptions opts;
  opts.seed = 42;
  const SoakResult result = run_soak(opts);
  EXPECT_TRUE(result.converged_initially);
  EXPECT_TRUE(result.passed())
      << format_violations(result.violations) << "schedule:\n"
      << farm::format_script(result.schedule);
  EXPECT_EQ(result.script_run.failed, 0u);
  EXPECT_EQ(result.script_run.executed, result.schedule.size());
}

TEST(SoakRunner, LeaderBlipDuringSuccessorOutageRegression) {
  // Shrunk from soak seed 78 (4 events): node 6 hosts the vlan-100 leader
  // and blips for 566ms while node 5 — the next-ranked peer — is down. The
  // leader's daemon restarts with its report seq counter reset to 1 while
  // Central still holds its record at seq ~11. Without the regressed-seq
  // handling in Central::handle_report, every full snapshot the reborn
  // leader sends is acked as a duplicate and the record wedges; the
  // kGscReportDup trace invariant pins it even when a later takeover
  // happens to retire the wedged record before the end-state check.
  const farm::ScriptParseResult parsed = farm::parse_script(
      "at 17163ms fail-node 5\n"
      "at 17269ms fail-node 6\n"
      "at 17835ms recover-node 6\n"
      "at 31225ms recover-node 5\n");
  ASSERT_TRUE(parsed.ok()) << parsed.error;
  SoakOptions opts;
  opts.seed = 78;
  const SoakResult result = run_schedule(opts, parsed.actions);
  EXPECT_TRUE(result.converged_initially);
  EXPECT_TRUE(result.passed()) << format_violations(result.violations);
}

TEST(SoakShrink, FindsMinimalSubsetWithSyntheticOracle) {
  // Ten events; the "bug" fires iff fail-node 3 and fail-node 7 are both
  // present. The shrinker must isolate exactly that pair.
  std::vector<farm::ScriptAction> schedule;
  for (std::uint32_t i = 0; i < 10; ++i)
    schedule.push_back({sim::seconds(static_cast<std::int64_t>(i + 1)),
                        farm::ActionKind::kFailNode, i, 0});
  std::size_t calls = 0;
  const Oracle oracle = [&calls](const std::vector<farm::ScriptAction>& s) {
    ++calls;
    bool has3 = false;
    bool has7 = false;
    for (const farm::ScriptAction& action : s) {
      if (action.arg == 3) has3 = true;
      if (action.arg == 7) has7 = true;
    }
    return has3 && has7;
  };
  const ShrinkResult shrunk = shrink_schedule(schedule, oracle);
  ASSERT_EQ(shrunk.schedule.size(), 2u);
  EXPECT_EQ(shrunk.schedule[0].arg, 3u);
  EXPECT_EQ(shrunk.schedule[1].arg, 7u);
  EXPECT_TRUE(shrunk.minimal);
  EXPECT_EQ(shrunk.oracle_runs, calls);
}

TEST(SoakShrink, RespectsOracleBudget) {
  std::vector<farm::ScriptAction> schedule(
      8, {sim::kSecond, farm::ActionKind::kVerify, 0, 0});
  // Only the full schedule fails, so no removal ever succeeds and the
  // shrinker burns its whole budget probing.
  const Oracle full_only = [](const std::vector<farm::ScriptAction>& s) {
    return s.size() == 8;
  };
  const ShrinkResult shrunk = shrink_schedule(schedule, full_only, 2);
  EXPECT_EQ(shrunk.oracle_runs, 2u);
  EXPECT_FALSE(shrunk.minimal);
  EXPECT_EQ(shrunk.schedule.size(), 8u);
}

}  // namespace
}  // namespace gs::soak
