// Reference-model property tests: the event queue against a naive sorted
// model under random interleavings of push/cancel/pop, and the message
// codecs against randomized structs.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "gs/messages.h"
#include "sim/event_queue.h"
#include "util/rng.h"

namespace gs {
namespace {

// --- EventQueue vs a naive model -----------------------------------------------

struct ModelEntry {
  sim::SimTime when;
  sim::EventId id;
  bool cancelled = false;
};

class EventQueueModel : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EventQueueModel, MatchesNaiveModelUnderRandomOps) {
  util::Rng rng(GetParam());
  sim::EventQueue queue;
  std::vector<ModelEntry> model;  // same order as push
  std::vector<sim::EventId> popped_real, popped_model;

  auto model_pop = [&]() -> sim::EventId {
    // Earliest non-cancelled, FIFO among equal times. `model` is kept in
    // push order and the comparison is strict, so the first entry wins ties
    // — ids are slot+generation handles, not push-ordered.
    const ModelEntry* best = nullptr;
    for (const ModelEntry& e : model) {
      if (e.cancelled) continue;
      if (best == nullptr || e.when < best->when) best = &e;
    }
    EXPECT_NE(best, nullptr);
    const sim::EventId id = best->id;
    const_cast<ModelEntry*>(best)->cancelled = true;  // consumed
    return id;
  };

  auto model_live = [&] {
    return static_cast<std::size_t>(
        std::count_if(model.begin(), model.end(),
                      [](const ModelEntry& e) { return !e.cancelled; }));
  };

  for (int step = 0; step < 3000; ++step) {
    const std::uint64_t op = rng.below(10);
    if (op < 5 || queue.empty()) {
      const auto when = static_cast<sim::SimTime>(rng.below(50));
      const sim::EventId id = queue.push(when, [] {});
      model.push_back(ModelEntry{when, id});
    } else if (op < 7) {
      // Cancel a random historical id (may be fired/cancelled already).
      const std::size_t pick = rng.below(model.size());
      const bool expect = !model[pick].cancelled;
      EXPECT_EQ(queue.cancel(model[pick].id), expect);
      model[pick].cancelled = true;
    } else {
      ASSERT_FALSE(queue.empty());
      EXPECT_EQ(queue.next_time(),
                [&] {
                  sim::SimTime best = std::numeric_limits<sim::SimTime>::max();
                  for (const ModelEntry& e : model)
                    if (!e.cancelled) best = std::min(best, e.when);
                  return best;
                }());
      auto [when, fn] = queue.pop();
      const sim::EventId expected = model_pop();
      // Identify which model entry fired via its time.
      (void)fn;
      popped_model.push_back(expected);
      // The queue does not expose the popped id; compare times instead.
      const ModelEntry* entry = nullptr;
      for (const ModelEntry& e : model)
        if (e.id == expected) entry = &e;
      ASSERT_NE(entry, nullptr);
      EXPECT_EQ(when, entry->when);
    }
    EXPECT_EQ(queue.size(), model_live());
  }

  // Drain and confirm global ordering.
  sim::SimTime last = -1;
  while (!queue.empty()) {
    auto [when, fn] = queue.pop();
    EXPECT_GE(when, last);
    last = when;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EventQueueModel,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10));

// --- Randomized codec round-trips -------------------------------------------------

proto::MemberInfo random_member(util::Rng& rng) {
  proto::MemberInfo m;
  m.ip = util::IpAddress(static_cast<std::uint32_t>(rng.next()));
  m.mac = util::MacAddress(rng.next());
  m.node = util::NodeId(static_cast<std::uint32_t>(rng.below(1u << 20)));
  m.central_eligible = rng.chance(0.5);
  return m;
}

class CodecFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CodecFuzz, RandomStructsRoundTrip) {
  util::Rng rng(GetParam() * 0x9E3779B9u);
  for (int iter = 0; iter < 200; ++iter) {
    {
      proto::Beacon msg;
      msg.self = random_member(rng);
      msg.is_leader = rng.chance(0.5);
      msg.view = rng.next();
      msg.group_size = static_cast<std::uint32_t>(rng.below(1000));
      auto out = proto::decode_Beacon(proto::encode(msg));
      ASSERT_TRUE(out.has_value());
      EXPECT_EQ(out->self, msg.self);
      EXPECT_EQ(out->view, msg.view);
      EXPECT_EQ(out->group_size, msg.group_size);
      EXPECT_EQ(out->is_leader, msg.is_leader);
    }
    {
      proto::Prepare msg;
      msg.view = rng.next();
      msg.leader = util::IpAddress(static_cast<std::uint32_t>(rng.next()));
      const std::size_t n = rng.below(20);
      for (std::size_t i = 0; i < n; ++i)
        msg.members.push_back(random_member(rng));
      auto out = proto::decode_Prepare(proto::encode(msg));
      ASSERT_TRUE(out.has_value());
      EXPECT_EQ(out->members, msg.members);
      EXPECT_EQ(out->leader, msg.leader);
    }
    {
      proto::Commit msg;
      msg.view = rng.next();
      const std::size_t n = rng.below(20);
      for (std::size_t i = 0; i < n; ++i)
        msg.members.push_back(random_member(rng));
      auto out = proto::decode_Commit(proto::encode(msg));
      ASSERT_TRUE(out.has_value());
      EXPECT_EQ(out->members, msg.members);
    }
    {
      proto::MembershipReport msg;
      msg.seq = rng.next();
      msg.view = rng.next();
      msg.full = rng.chance(0.5);
      msg.leader = random_member(rng);
      const std::size_t adds = rng.below(10);
      for (std::size_t i = 0; i < adds; ++i)
        msg.added.push_back(random_member(rng));
      const std::size_t removes = rng.below(10);
      for (std::size_t i = 0; i < removes; ++i) {
        msg.removed.push_back(proto::RemovedMember{
            util::IpAddress(static_cast<std::uint32_t>(rng.next())),
            rng.chance(0.5) ? proto::RemoveReason::kFailed
                            : proto::RemoveReason::kLeft});
      }
      auto out = proto::decode_MembershipReport(proto::encode(msg));
      ASSERT_TRUE(out.has_value());
      EXPECT_EQ(out->added, msg.added);
      ASSERT_EQ(out->removed.size(), msg.removed.size());
      for (std::size_t i = 0; i < msg.removed.size(); ++i) {
        EXPECT_EQ(out->removed[i].ip, msg.removed[i].ip);
        EXPECT_EQ(out->removed[i].reason, msg.removed[i].reason);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CodecFuzz, ::testing::Values(1, 2, 3, 4, 5));

}  // namespace
}  // namespace gs
