// Tests for the paper's stated future work, implemented here:
//  * §3:   SNMP wiring discovery — GSC learns adapter<->switch wiring by
//          walking the switches' bridge tables instead of trusting the
//          configuration database;
//  * §2:   wiring audit — detecting that the database itself is wrong;
//  * §2.2: quarantine — disabling inconsistent adapters onto a dedicated
//          VLAN "for security reasons, until conflicts are resolved".
#include <gtest/gtest.h>

#include "farm/farm.h"
#include "farm/scenario.h"

namespace gs::proto {
namespace {

constexpr util::VlanId kQuarantineVlan{999};

Params quick_params() {
  Params p;
  p.beacon_phase = sim::seconds(2);
  p.amg_stable_wait = sim::milliseconds(400);
  p.gsc_stable_wait = sim::seconds(2);
  p.move_window = sim::seconds(5);
  return p;
}

class SnmpQuarantineTest : public ::testing::Test {
 protected:
  void build(farm::FarmSpec spec, std::uint64_t seed = 1) {
    farm_.emplace(sim_, spec, quick_params(), seed);
    events_.attach(farm_->event_bus());
    farm_->start();
    ASSERT_TRUE(farm::run_until_gsc_stable(*farm_, sim::seconds(120)));
    central_ = farm_->active_central();
    ASSERT_NE(central_, nullptr);
  }

  sim::Simulator sim_;
  std::optional<farm::Farm> farm_;
  Central* central_ = nullptr;
  EventLog events_;
};

// --- SNMP wiring discovery ---------------------------------------------------

TEST_F(SnmpQuarantineTest, DiscoverWiringResolvesAllReportedAdapters) {
  build(farm::FarmSpec::uniform(6, 2));
  const std::size_t resolved =
      central_->discover_wiring(farm_->fabric().all_switches());
  EXPECT_EQ(resolved, 12u);
  for (util::AdapterId id : farm_->fabric().all_adapters()) {
    const net::Adapter& adapter = farm_->fabric().adapter(id);
    const auto wiring = central_->discovered_wiring(adapter.ip());
    ASSERT_TRUE(wiring.has_value()) << adapter.ip();
    EXPECT_EQ(wiring->wired_switch, adapter.attached_switch());
    EXPECT_EQ(wiring->wired_port, adapter.attached_port());
    EXPECT_EQ(wiring->vlan, farm_->fabric().vlan_of(id));
  }
}

TEST_F(SnmpQuarantineTest, DiscoverWiringSkipsDeadSwitches) {
  farm::FarmSpec spec = farm::FarmSpec::uniform(6, 2);
  spec.switch_ports = 4;  // two nodes per switch
  build(spec);
  farm_->fabric().fail_switch(util::SwitchId(0));
  const std::size_t resolved =
      central_->discover_wiring(farm_->fabric().all_switches());
  // The dead switch's four adapters cannot be walked.
  EXPECT_EQ(resolved, 8u);
}

TEST_F(SnmpQuarantineTest, SwitchCorrelationWorksFromSnmpWithoutDb) {
  // A Central without database access (a partition-island GSC, §2.2) can
  // still correlate switch failures after an SNMP walk.
  farm::FarmSpec spec = farm::FarmSpec::uniform(6, 2);
  spec.switch_ports = 4;
  build(spec);

  net::SwitchConsole bare_console(farm_->fabric());
  Params params = quick_params();
  Central bare(sim_, params, /*db=*/nullptr, &bare_console);
  EventLog events(bare.event_bus());
  bare.activate(util::IpAddress(10, 99, 0, 1));

  // Feed it the farm view by replaying full reports from real protocols.
  for (util::AdapterId id : farm_->fabric().all_adapters()) {
    AdapterProtocol* proto = farm_->protocol_for(id);
    if (proto == nullptr || !proto->is_leader()) continue;
    MembershipReport rep;
    rep.seq = 1;
    rep.view = proto->committed().view();
    rep.full = true;
    rep.leader = proto->self();
    rep.added = proto->committed().members();
    bare.handle_report(proto->self().ip, rep, [](const ReportAck&) {});
  }
  ASSERT_EQ(bare.known_adapter_count(), 12u);
  EXPECT_EQ(bare.discover_wiring(farm_->fabric().all_switches()), 12u);

  // Report every adapter on switch 0 (nodes 0 and 1) as failed.
  for (std::size_t node : {0u, 1u}) {
    for (util::AdapterId id : farm_->node_adapters(node)) {
      AdapterProtocol* leader_proto = nullptr;
      const util::IpAddress ip = farm_->fabric().adapter(id).ip();
      for (util::AdapterId cand : farm_->fabric().all_adapters()) {
        AdapterProtocol* p = farm_->protocol_for(cand);
        if (p != nullptr && p->is_leader() && p->committed().contains(ip))
          leader_proto = p;
      }
      ASSERT_NE(leader_proto, nullptr);
      MembershipReport delta;
      delta.seq = 2 + node;  // distinct seq per leader per round
      delta.view = leader_proto->committed().view();
      delta.leader = leader_proto->self();
      delta.removed = {{ip, RemoveReason::kFailed}};
      bare.handle_report(leader_proto->self().ip, delta,
                         [](const ReportAck&) {});
    }
  }
  sim_.run_until(sim_.now() + quick_params().move_window + sim::seconds(1));
  bool switch_failed = false;
  for (const FarmEvent& e : events)
    if (e.kind == FarmEvent::Kind::kSwitchFailed &&
        e.switch_id == util::SwitchId(0))
      switch_failed = true;
  EXPECT_TRUE(switch_failed)
      << "SNMP-derived wiring did not drive switch correlation";
}

// --- Wiring audit -----------------------------------------------------------------

TEST_F(SnmpQuarantineTest, AuditFindsDatabaseWiringErrors) {
  build(farm::FarmSpec::uniform(5, 2));
  central_->discover_wiring(farm_->fabric().all_switches());
  EXPECT_TRUE(central_->audit_wiring().empty());

  // Corrupt the database: claim node 2's admin adapter sits on port 77.
  const util::AdapterId victim = farm_->node_adapters(2)[0];
  auto rec = *farm_->db().adapter(victim);
  const auto true_port = rec.wired_port;
  rec.wired_port = util::PortId(77);
  farm_->db().put_adapter(rec);

  auto mismatches = central_->audit_wiring();
  ASSERT_EQ(mismatches.size(), 1u);
  EXPECT_EQ(mismatches[0].ip, farm_->fabric().adapter(victim).ip());
  EXPECT_EQ(mismatches[0].db_port, util::PortId(77));
  EXPECT_EQ(mismatches[0].actual_port, true_port);
  EXPECT_GE(events_.count(FarmEvent::Kind::kInconsistencyFound), 1u);
}

// --- Quarantine --------------------------------------------------------------------

TEST_F(SnmpQuarantineTest, WrongVlanAdapterIsQuarantined) {
  build(farm::FarmSpec::oceano(2, 2, 2, 1, 2));
  central_->set_quarantine_vlan(kQuarantineVlan);
  events_.clear();

  // An operator rewires a back end's internal adapter behind GSC's back.
  std::size_t victim = SIZE_MAX;
  for (std::size_t idx : farm_->nodes_with_role(farm::NodeRole::kBackEnd))
    if (farm_->domain_of(idx) == util::DomainId(0)) victim = idx;
  const util::AdapterId moved = farm_->node_adapters(victim)[1];
  const util::IpAddress moved_ip = farm_->fabric().adapter(moved).ip();
  const net::Adapter& adapter = farm_->fabric().adapter(moved);
  farm_->fabric().set_port_vlan(adapter.attached_switch(),
                                adapter.attached_port(),
                                farm::internal_vlan(1));

  // Wait until it surfaces inside the destination AMG at GSC, then verify.
  ASSERT_TRUE(farm::run_until(sim_, sim_.now() + sim::seconds(120), [&] {
    return events_.count(FarmEvent::Kind::kUnexpectedMove) > 0;
  }));
  ASSERT_TRUE(farm::run_until_converged(*farm_, sim_.now() + sim::seconds(90)));
  sim_.run_until(sim_.now() + sim::seconds(10));
  central_->verify_now();

  EXPECT_TRUE(central_->quarantined(moved_ip));
  EXPECT_EQ(events_.count(FarmEvent::Kind::kAdapterQuarantined), 1u);
  EXPECT_EQ(farm_->fabric().vlan_of(moved), kQuarantineVlan);

  // Re-verification does not re-flag the handled adapter.
  sim_.run_until(sim_.now() + sim::seconds(30));
  EXPECT_TRUE(central_->verify_now().empty());

  // The quarantine suppressed the failure cascade it caused.
  for (const FarmEvent& e : events_) {
    if (e.kind == FarmEvent::Kind::kAdapterFailed) {
      EXPECT_NE(e.ip, moved_ip);
    }
  }
}

TEST_F(SnmpQuarantineTest, ReleaseQuarantineRestoresExpectedVlan) {
  build(farm::FarmSpec::oceano(2, 2, 2, 1, 2));
  central_->set_quarantine_vlan(kQuarantineVlan);

  std::size_t victim = SIZE_MAX;
  for (std::size_t idx : farm_->nodes_with_role(farm::NodeRole::kBackEnd))
    if (farm_->domain_of(idx) == util::DomainId(0)) victim = idx;
  const util::AdapterId moved = farm_->node_adapters(victim)[1];
  const util::IpAddress moved_ip = farm_->fabric().adapter(moved).ip();
  const net::Adapter& adapter = farm_->fabric().adapter(moved);
  farm_->fabric().set_port_vlan(adapter.attached_switch(),
                                adapter.attached_port(),
                                farm::internal_vlan(1));
  ASSERT_TRUE(farm::run_until(sim_, sim_.now() + sim::seconds(120), [&] {
    return events_.count(FarmEvent::Kind::kUnexpectedMove) > 0;
  }));
  ASSERT_TRUE(farm::run_until_converged(*farm_, sim_.now() + sim::seconds(90)));
  sim_.run_until(sim_.now() + sim::seconds(10));
  central_->verify_now();
  ASSERT_TRUE(central_->quarantined(moved_ip));

  // Conflict resolved: lift the quarantine; the adapter returns to its
  // database-expected VLAN and rejoins its original AMG.
  EXPECT_TRUE(central_->release_quarantine(moved_ip));
  EXPECT_FALSE(central_->quarantined(moved_ip));
  EXPECT_EQ(farm_->fabric().vlan_of(moved), farm::internal_vlan(0));
  EXPECT_TRUE(
      farm::run_until_converged(*farm_, sim_.now() + sim::seconds(120)));
}

TEST_F(SnmpQuarantineTest, NoQuarantineWithoutConfiguredVlan) {
  build(farm::FarmSpec::oceano(1, 2, 1, 1, 2));
  // quarantine VLAN left unset
  std::size_t victim = farm_->nodes_with_role(farm::NodeRole::kFrontEnd)[0];
  const util::AdapterId moved = farm_->node_adapters(victim)[1];
  const net::Adapter& adapter = farm_->fabric().adapter(moved);
  farm_->fabric().set_port_vlan(adapter.attached_switch(),
                                adapter.attached_port(),
                                farm::dispatch_vlan(0));
  sim_.run_until(sim_.now() + sim::seconds(60));
  central_->verify_now();
  EXPECT_EQ(events_.count(FarmEvent::Kind::kAdapterQuarantined), 0u);
  EXPECT_FALSE(central_->quarantined(adapter.ip()));
}

}  // namespace
}  // namespace gs::proto
