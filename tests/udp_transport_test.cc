// UdpTransport backend tests: the VLAN -> loopback-port mapping, framed
// round-trips over real sockets (unicast and the multicast fan-out), the
// close() lifecycle, and CRC-failure drop accounting through an actual
// GsDaemon running over UDP.
#include <gtest/gtest.h>

#include <vector>

#include "gs/daemon.h"
#include "net/udp_transport.h"
#include "sim/wallclock.h"
#include "wire/frame.h"

namespace gs::net {
namespace {

util::IpAddress ip(std::uint8_t host) { return util::IpAddress(10, 7, 0, host); }

UdpTransport::PortSpec spec(std::uint8_t host, std::uint32_t vlan) {
  UdpTransport::PortSpec s;
  s.ip = ip(host);
  s.mac = util::MacAddress(host);
  s.vlan = util::VlanId(vlan);
  return s;
}

TEST(UdpPortMapTest, VlansGetDisjointRangesAndEndpointsSequentialPorts) {
  UdpPortMap map(48000, 32);
  EXPECT_EQ(map.add(ip(1), util::VlanId(1)), 48000);
  EXPECT_EQ(map.add(ip(2), util::VlanId(1)), 48001);
  EXPECT_EQ(map.add(ip(3), util::VlanId(2)), 48032);  // next stride
  EXPECT_EQ(map.add(ip(1), util::VlanId(1)), 48000);  // idempotent per IP

  EXPECT_EQ(map.port_of(ip(2)), 48001);
  EXPECT_EQ(map.ip_of(48032), ip(3));
  EXPECT_EQ(map.ip_of(48099), std::nullopt);
  EXPECT_EQ(map.port_of(ip(99)), std::nullopt);

  EXPECT_EQ(map.vlan_ports(util::VlanId(1)),
            (std::vector<std::uint16_t>{48000, 48001}));
  EXPECT_TRUE(map.vlan_ports(util::VlanId(7)).empty());
}

TEST(UdpPortMapTest, MaxVlansMatchesPortSpaceArithmetic) {
  EXPECT_EQ(UdpPortMap(47000, 256).max_vlans(), 72u);  // the defaults
  EXPECT_EQ(UdpPortMap(65000, 32).max_vlans(), 16u);
  EXPECT_EQ(UdpPortMap(0, 256).max_vlans(), 256u);
}

// Regression: past the end of the 16-bit port space, vlan_base used to wrap
// silently and hand out ranges colliding with low VLANs' ports. It must
// refuse instead.
TEST(UdpPortMapTest, PortSpaceExhaustionAbortsInsteadOfWrapping) {
  UdpPortMap map(65000, 32);  // room for exactly 16 VLAN ranges
  for (std::uint32_t v = 1; v <= 16; ++v)
    EXPECT_EQ(map.vlan_base(util::VlanId(v)),
              65000 + (v - 1) * 32);  // last range ends at 65511
  EXPECT_DEATH((void)map.vlan_base(util::VlanId(17)), "port space exhausted");
}

struct Harness {
  sim::WallClock clock;
  EventLoop loop;
  UdpPortMap map{48100, 32};

  bool pump(const std::function<bool()>& until) {
    return loop.run_until(clock, clock.now() + sim::seconds(5), until);
  }
};

TEST(UdpTransportTest, UnicastRoundTripDeliversFrameWithResolvedSource) {
  Harness h;
  UdpTransport a(h.loop, h.map, {spec(1, 1)});
  UdpTransport b(h.loop, h.map, {spec(2, 1)});

  std::vector<Datagram> got;
  b.set_receive_handler(0, [&](const Datagram& d) { got.push_back(d); });

  const std::vector<std::uint8_t> payload = {0xde, 0xad, 0xbe, 0xef};
  const auto frame = wire::encode_frame(6, payload);
  ASSERT_TRUE(a.unicast(0, ip(2), Payload::copy_of(frame)));
  ASSERT_TRUE(h.pump([&] { return !got.empty(); }));

  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].src, ip(1));  // resolved from the source UDP port
  EXPECT_EQ(got[0].dst, ip(2));
  EXPECT_EQ(got[0].vlan, util::VlanId(1));
  const auto bytes = got[0].payload.bytes();
  EXPECT_EQ(std::vector<std::uint8_t>(bytes.begin(), bytes.end()), frame);
  EXPECT_EQ(a.stats().frames_sent, 1u);
  EXPECT_EQ(b.stats().frames_received, 1u);
}

TEST(UdpTransportTest, MulticastFansOutToVlanPeersOnly) {
  Harness h;
  UdpTransport a(h.loop, h.map, {spec(1, 1)});
  UdpTransport b(h.loop, h.map, {spec(2, 1)});
  UdpTransport c(h.loop, h.map, {spec(3, 1)});
  UdpTransport other(h.loop, h.map, {spec(4, 2)});  // different VLAN

  int b_got = 0, c_got = 0, other_got = 0, a_got = 0;
  a.set_receive_handler(0, [&](const Datagram&) { ++a_got; });
  b.set_receive_handler(0, [&](const Datagram&) { ++b_got; });
  c.set_receive_handler(0, [&](const Datagram&) { ++c_got; });
  other.set_receive_handler(0, [&](const Datagram&) { ++other_got; });

  const std::vector<std::uint8_t> payload = {0x01};
  const auto frame = wire::encode_frame(1, payload);
  ASSERT_TRUE(a.multicast(0, kBeaconGroup, Payload::copy_of(frame)));
  ASSERT_TRUE(h.pump([&] { return b_got > 0 && c_got > 0; }));
  h.loop.run_until(h.clock, h.clock.now() + sim::milliseconds(50), nullptr);

  EXPECT_EQ(b_got, 1);
  EXPECT_EQ(c_got, 1);
  EXPECT_EQ(a_got, 0);      // never self-delivers
  EXPECT_EQ(other_got, 0);  // different VLAN range
  EXPECT_EQ(a.stats().frames_sent, 2u);  // one sendto per peer
}

TEST(UdpTransportTest, UnknownDestinationCountsAsSendErrorNotFailure) {
  Harness h;
  UdpTransport a(h.loop, h.map, {spec(1, 1)});
  const std::vector<std::uint8_t> one = {0x00};
  // Unreachable receiver: still "sent" from the daemon's point of view.
  EXPECT_TRUE(a.unicast(0, ip(42), Payload::copy_of(one)));
  EXPECT_EQ(a.stats().send_errors, 1u);
  EXPECT_EQ(a.stats().frames_sent, 0u);
}

TEST(UdpTransportTest, CloseSilencesSendsReceivesAndLoopback) {
  Harness h;
  UdpTransport a(h.loop, h.map, {spec(1, 1)});
  UdpTransport b(h.loop, h.map, {spec(2, 1)});
  const std::vector<std::uint8_t> one = {0x00};
  EXPECT_TRUE(a.loopback_ok(0));
  EXPECT_EQ(h.loop.fd_count(), 2u);

  a.close();
  EXPECT_TRUE(a.closed());
  EXPECT_FALSE(a.loopback_ok(0));
  EXPECT_EQ(h.loop.fd_count(), 1u);  // deregistered from epoll
  EXPECT_FALSE(a.unicast(0, ip(2), Payload::copy_of(one)));
  EXPECT_FALSE(a.multicast(0, kBeaconGroup, Payload::copy_of(one)));
  a.close();  // idempotent

  // A peer sending to the closed endpoint cannot observe the death.
  EXPECT_TRUE(b.unicast(0, ip(1), Payload::copy_of(one)));
}

TEST(UdpTransportTest, CorruptFrameIsDroppedAndAccountedByTheDaemon) {
  // End-to-end CRC accounting over real sockets: a daemon receives one good
  // frame and one corrupted frame; the corruption lands in
  // wire_stats().dropped[kBadChecksum] exactly like the sim backend.
  Harness h;
  UdpTransport sender(h.loop, h.map, {spec(1, 1)});
  auto receiver = std::make_unique<UdpTransport>(
      h.loop, h.map, std::vector<UdpTransport::PortSpec>{spec(2, 1)});

  proto::Params params;
  params.start_skew_max = 0;
  params.proc_delay_mean = 0;
  params.beacon_phase = sim::seconds(60);  // keep the protocol quiet
  params.beacon_interval = sim::seconds(60);
  params.beacon_setup_min = params.beacon_setup_max = 0;
  params.hb_period = sim::seconds(60);

  proto::GsDaemon::Options opts;
  opts.clock = &h.clock;
  opts.transport = receiver.get();
  opts.params = &params;
  opts.node.node = util::NodeId(2);
  opts.node.name = "udp-crc";
  opts.rng = util::Rng(7);
  proto::GsDaemon daemon(std::move(opts));
  daemon.start();
  // No skew: the receive handler installs on the first due-timer pass.
  h.loop.run_until(h.clock, h.clock.now() + sim::milliseconds(20), nullptr);

  // Good frame: a well-formed Beacon, decodable end to end.
  proto::Beacon beacon{};
  beacon.self.ip = ip(1);
  beacon.self.mac = util::MacAddress(1);
  beacon.self.node = util::NodeId(1);
  wire::Writer scratch;
  const auto good_span = proto::build_frame(scratch, beacon);
  std::vector<std::uint8_t> good(good_span.begin(), good_span.end());
  auto bad = good;
  bad[wire::kFrameHeaderSize] ^= 0xFF;  // corrupt the payload, CRC now wrong

  ASSERT_TRUE(sender.unicast(0, ip(2), Payload::copy_of(good)));
  ASSERT_TRUE(sender.unicast(0, ip(2), Payload::copy_of(bad)));

  ASSERT_TRUE(h.pump([&] { return daemon.frames_dropped() >= 1; }));
  EXPECT_EQ(daemon.frames_dropped(), 1u);
  EXPECT_EQ(daemon.wire_stats().dropped[static_cast<std::size_t>(
                proto::WireStats::Drop::kBadChecksum)],
            1u);
  // The good beacon decoded cleanly alongside the drop.
  EXPECT_EQ(daemon.wire_stats().decoded[static_cast<std::size_t>(
                proto::MsgType::kBeacon)],
            1u);
  EXPECT_EQ(receiver->stats().frames_received, 2u);
}

}  // namespace
}  // namespace gs::net
