// Unit tests for MembershipView: rank order, ring neighbors, succession.
#include <gtest/gtest.h>

#include "gs/amg.h"

namespace gs::proto {
namespace {

MemberInfo member(std::uint8_t host) {
  MemberInfo m;
  m.ip = util::IpAddress(10, 0, 0, host);
  m.mac = util::MacAddress(host);
  m.node = util::NodeId(host);
  return m;
}

util::IpAddress ip(std::uint8_t host) { return util::IpAddress(10, 0, 0, host); }

TEST(MembershipView, SortsDescendingByIp) {
  auto view = MembershipView::make(1, {member(3), member(9), member(5)});
  ASSERT_EQ(view.size(), 3u);
  EXPECT_EQ(view.member_at(0).ip, ip(9));
  EXPECT_EQ(view.member_at(1).ip, ip(5));
  EXPECT_EQ(view.member_at(2).ip, ip(3));
  EXPECT_EQ(view.leader().ip, ip(9));
}

TEST(MembershipView, DeduplicatesByIp) {
  auto view = MembershipView::make(1, {member(3), member(3), member(5)});
  EXPECT_EQ(view.size(), 2u);
}

TEST(MembershipView, RankLookup) {
  auto view = MembershipView::make(2, {member(1), member(2), member(3)});
  EXPECT_EQ(view.rank_of(ip(3)), 0u);
  EXPECT_EQ(view.rank_of(ip(2)), 1u);
  EXPECT_EQ(view.rank_of(ip(1)), 2u);
  EXPECT_FALSE(view.rank_of(ip(9)).has_value());
  EXPECT_TRUE(view.contains(ip(2)));
  EXPECT_FALSE(view.contains(ip(9)));
}

TEST(MembershipView, RingNeighborsWrapAround) {
  auto view = MembershipView::make(1, {member(1), member(2), member(3)});
  // Rank order: 3, 2, 1.
  EXPECT_EQ(view.right_of(ip(3)), ip(2));
  EXPECT_EQ(view.right_of(ip(2)), ip(1));
  EXPECT_EQ(view.right_of(ip(1)), ip(3));  // wraps
  EXPECT_EQ(view.left_of(ip(3)), ip(1));   // wraps
  EXPECT_EQ(view.left_of(ip(1)), ip(2));
}

TEST(MembershipView, PairRing) {
  auto view = MembershipView::make(1, {member(1), member(2)});
  EXPECT_EQ(view.right_of(ip(1)), ip(2));
  EXPECT_EQ(view.left_of(ip(1)), ip(2));
}

TEST(MembershipView, SingletonRingPointsAtSelf) {
  auto view = MembershipView::make(1, {member(1)});
  EXPECT_EQ(view.right_of(ip(1)), ip(1));
  EXPECT_EQ(view.left_of(ip(1)), ip(1));
}

TEST(MembershipView, EmptyView) {
  MembershipView view;
  EXPECT_TRUE(view.empty());
  EXPECT_EQ(view.size(), 0u);
  EXPECT_EQ(view.view(), 0u);
}

TEST(MembershipView, IpsInRankOrder) {
  auto view = MembershipView::make(1, {member(1), member(9), member(4)});
  const auto ips = view.ips();
  ASSERT_EQ(ips.size(), 3u);
  EXPECT_EQ(ips[0], ip(9));
  EXPECT_EQ(ips[2], ip(1));
}

TEST(MembershipView, Equality) {
  auto a = MembershipView::make(1, {member(1), member(2)});
  auto b = MembershipView::make(1, {member(2), member(1)});
  auto c = MembershipView::make(2, {member(1), member(2)});
  EXPECT_EQ(a, b);  // same view number, same sorted membership
  EXPECT_NE(a, c);
}

// Property sweep: ring is a permutation and neighbors are mutually
// consistent for a range of group sizes.
class RingProperty : public ::testing::TestWithParam<int> {};

TEST_P(RingProperty, NeighborsAreConsistent) {
  const int n = GetParam();
  std::vector<MemberInfo> members;
  for (int i = 1; i <= n; ++i)
    members.push_back(member(static_cast<std::uint8_t>(i)));
  auto view = MembershipView::make(1, members);
  ASSERT_EQ(view.size(), static_cast<std::size_t>(n));

  for (const MemberInfo& m : view.members()) {
    const util::IpAddress right = view.right_of(m.ip);
    const util::IpAddress left = view.left_of(m.ip);
    EXPECT_EQ(view.left_of(right), m.ip);
    EXPECT_EQ(view.right_of(left), m.ip);
  }

  // Walking right n times returns to the start and visits everyone.
  util::IpAddress cursor = view.leader().ip;
  std::set<util::IpAddress> visited;
  for (int i = 0; i < n; ++i) {
    visited.insert(cursor);
    cursor = view.right_of(cursor);
  }
  EXPECT_EQ(cursor, view.leader().ip);
  EXPECT_EQ(visited.size(), static_cast<std::size_t>(n));
}

INSTANTIATE_TEST_SUITE_P(Sizes, RingProperty,
                         ::testing::Values(1, 2, 3, 4, 5, 8, 16, 33, 100));

}  // namespace
}  // namespace gs::proto
