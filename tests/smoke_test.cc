// Early end-to-end smoke: a small uniform farm must converge and GSC must
// declare the topology stable.
#include <gtest/gtest.h>

#include "farm/farm.h"
#include "farm/scenario.h"

namespace gs {
namespace {

TEST(Smoke, UniformFarmConverges) {
  sim::Simulator sim;
  proto::Params params;
  params.beacon_phase = sim::seconds(2);
  params.amg_stable_wait = sim::seconds(2);
  params.gsc_stable_wait = sim::seconds(3);
  farm::Farm farm(sim, farm::FarmSpec::uniform(8, 3), params, /*seed=*/42);
  farm.start();

  auto converged = farm::run_until_converged(farm, sim::seconds(30));
  ASSERT_TRUE(converged.has_value()) << "farm did not converge";

  auto stable = farm::run_until_gsc_stable(farm, sim::seconds(60));
  ASSERT_TRUE(stable.has_value()) << "GSC never declared stability";

  proto::Central* central = farm.active_central();
  ASSERT_NE(central, nullptr);
  EXPECT_EQ(central->known_adapter_count(), 24u);
  EXPECT_EQ(central->alive_adapter_count(), 24u);
  EXPECT_EQ(central->groups().size(), 3u);
  EXPECT_TRUE(central->verify_now().empty());
}

TEST(Smoke, OceanoFarmConverges) {
  sim::Simulator sim;
  proto::Params params;
  params.beacon_phase = sim::seconds(2);
  params.amg_stable_wait = sim::seconds(2);
  params.gsc_stable_wait = sim::seconds(3);
  farm::Farm farm(sim, farm::FarmSpec::oceano(2, 2, 2, 2, 2), params, 7);
  farm.start();

  auto converged = farm::run_until_converged(farm, sim::seconds(30));
  ASSERT_TRUE(converged.has_value()) << "farm did not converge";

  auto stable = farm::run_until_gsc_stable(farm, sim::seconds(60));
  ASSERT_TRUE(stable.has_value());

  proto::Central* central = farm.active_central();
  ASSERT_NE(central, nullptr);
  // 1 admin AMG + 2 internal + 2 dispatch.
  EXPECT_EQ(central->groups().size(), 5u);
  EXPECT_TRUE(central->verify_now().empty());
}

}  // namespace
}  // namespace gs
