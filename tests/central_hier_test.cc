// Unit tests for the two-level Central hierarchy: RootCentral driven with
// hand-built digests (exact control over seq gaps, epochs, and cross-domain
// races), and DomainUplink wired object-level to a RootCentral (batching,
// retry, need_full recovery, lease renewal) — no network, no daemons.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "gs/central.h"
#include "gs/central_hier.h"
#include "obs/spans.h"

namespace gs::proto {
namespace {

MemberInfo member(std::uint8_t host, std::uint32_t node) {
  MemberInfo m;
  m.ip = util::IpAddress(10, 0, 0, host);
  m.mac = util::MacAddress(host);
  m.node = util::NodeId(node);
  return m;
}

util::IpAddress ip(std::uint8_t host) {
  return util::IpAddress(10, 0, 0, host);
}

DomainAdapterEntry entry(std::uint8_t host, std::uint32_t node,
                         std::uint8_t leader_host, std::uint64_t view = 1,
                         bool alive = true) {
  DomainAdapterEntry e;
  e.info = member(host, node);
  e.alive = alive;
  e.group_leader = ip(leader_host);
  e.view = view;
  return e;
}

// --- RootCentral fed hand-built digests -------------------------------------

class RootCentralTest : public ::testing::Test {
 protected:
  RootCentralTest() : root_(sim_, params_) { root_.activate(ip(250)); }

  DomainReportAck send(RootCentral& root, const DomainReport& rep) {
    DomainReportAck out;
    root.handle_domain_report(rep.sender, rep,
                              [&out](const DomainReportAck& a) { out = a; });
    return out;
  }
  DomainReportAck send(const DomainReport& rep) { return send(root_, rep); }

  DomainReport full(std::uint32_t domain, std::uint64_t seq,
                    std::vector<DomainAdapterEntry> entries,
                    std::uint64_t epoch = 1, std::uint8_t sender = 201) {
    DomainReport rep;
    rep.seq = seq;
    rep.epoch = epoch;
    rep.domain = domain;
    rep.full = true;
    rep.sender = ip(sender);
    rep.entries = std::move(entries);
    return rep;
  }

  DomainReport delta(std::uint32_t domain, std::uint64_t seq,
                     std::vector<DomainAdapterEntry> entries,
                     std::uint64_t epoch = 1, std::uint8_t sender = 201) {
    DomainReport rep = full(domain, seq, std::move(entries), epoch, sender);
    rep.full = false;
    return rep;
  }

  sim::Simulator sim_;
  Params params_;
  RootCentral root_;
};

TEST_F(RootCentralTest, FullDigestEstablishesDomain) {
  auto ack = send(full(0, 1, {entry(9, 1, 9), entry(5, 2, 9)}));
  EXPECT_FALSE(ack.need_full);
  EXPECT_EQ(ack.seq, 1u);
  EXPECT_EQ(ack.domain, 0u);
  EXPECT_EQ(root_.known_adapter_count(), 2u);
  EXPECT_EQ(root_.alive_adapter_count(), 2u);
  EXPECT_EQ(root_.domain_count(), 1u);
  auto groups = root_.groups();
  ASSERT_EQ(groups.size(), 1u);
  EXPECT_EQ(groups[0].leader, ip(9));
  EXPECT_EQ(groups[0].members.size(), 2u);
}

TEST_F(RootCentralTest, DeltaBeforeFullAsksNeedFull) {
  auto ack = send(delta(0, 1, {entry(5, 2, 9)}));
  EXPECT_TRUE(ack.need_full);
  EXPECT_EQ(root_.known_adapter_count(), 0u);
  EXPECT_EQ(root_.need_fulls_sent(), 1u);
}

TEST_F(RootCentralTest, SeqGapAsksNeedFullThenFullConverges) {
  send(full(0, 1, {entry(9, 1, 9), entry(5, 2, 9)}));
  // Delta seq 2 was dropped on the wire; seq 3 arrives first.
  auto ack = send(delta(0, 3, {entry(4, 3, 9)}));
  EXPECT_TRUE(ack.need_full);
  // The gap response must not touch the tables: the dropped delta could
  // have carried anything, so only the solicited full may be trusted.
  EXPECT_FALSE(root_.adapter_status(ip(4)).has_value());
  // The solicited full (the uplink's next seq) converges the root.
  ack = send(full(0, 4, {entry(9, 1, 9), entry(5, 2, 9), entry(4, 3, 9)}));
  EXPECT_FALSE(ack.need_full);
  EXPECT_EQ(root_.known_adapter_count(), 3u);
  EXPECT_TRUE(root_.adapter_status(ip(4))->alive);
  // Delta flow resumes from the full's seq.
  ack = send(delta(0, 5, {entry(4, 3, 9, 1, false)}));
  EXPECT_FALSE(ack.need_full);
  EXPECT_FALSE(root_.adapter_status(ip(4))->alive);
}

TEST_F(RootCentralTest, DuplicateDigestAckedIdempotently) {
  auto rep = full(0, 1, {entry(9, 1, 9), entry(5, 2, 9)});
  send(rep);
  auto ack = send(rep);  // retransmission
  EXPECT_FALSE(ack.need_full);
  EXPECT_EQ(root_.known_adapter_count(), 2u);
  EXPECT_EQ(root_.reports_received(), 2u);
}

TEST_F(RootCentralTest, EpochBumpReplacesDomainSlice) {
  send(full(0, 5, {entry(9, 1, 9), entry(5, 2, 9)}, /*epoch=*/1));
  // The domain Central restarted: new epoch, seq space from scratch, and a
  // table that no longer contains adapter 5. The root must accept the new
  // incarnation (not dup-ack its low seq) and drop the forgotten row.
  auto ack = send(full(0, 1, {entry(9, 1, 9)}, /*epoch=*/2));
  EXPECT_FALSE(ack.need_full);
  EXPECT_EQ(root_.known_adapter_count(), 1u);
  EXPECT_FALSE(root_.adapter_status(ip(5)).has_value());
}

TEST_F(RootCentralTest, StaleIncarnationDeltaAsksNeedFull) {
  send(full(0, 1, {entry(9, 1, 9)}, /*epoch=*/2));
  // A delta still numbered in the pre-restart incarnation's seq space must
  // be bounced, never spliced into the new incarnation's sequence.
  auto ack = send(delta(0, 2, {entry(5, 2, 9)}, /*epoch=*/1));
  EXPECT_TRUE(ack.need_full);
  EXPECT_FALSE(root_.adapter_status(ip(5)).has_value());
  // Same rule for a standby uplink taking over under a different sender IP.
  ack = send(delta(0, 2, {entry(5, 2, 9)}, /*epoch=*/2, /*sender=*/202));
  EXPECT_TRUE(ack.need_full);
}

TEST_F(RootCentralTest, CrossDomainMoveTransfersOwnership) {
  send(full(0, 1, {entry(9, 1, 9)}));
  // The node moved into domain 1, whose Central now reports the adapter
  // alive: the alive claim transfers ownership of the row.
  send(full(1, 1, {entry(9, 1, 9)}, 1, /*sender=*/202));
  ASSERT_TRUE(root_.adapter_status(ip(9)).has_value());
  EXPECT_EQ(root_.adapter_status(ip(9))->domain, 1u);
  // Domain 0's stale verdicts about the departed adapter are fenced: its
  // death claim must not kill the row the new owner renews...
  auto dead = delta(0, 2, {entry(9, 1, 9, 1, /*alive=*/false)});
  send(dead);
  EXPECT_TRUE(root_.adapter_status(ip(9))->alive);
  EXPECT_EQ(root_.adapter_status(ip(9))->domain, 1u);
  // ...and neither may its removal.
  DomainReport rm = delta(0, 3, {});
  rm.removed = {ip(9)};
  send(rm);
  EXPECT_TRUE(root_.adapter_status(ip(9)).has_value());
}

TEST_F(RootCentralTest, RemovedAdapterDropsFromTables) {
  send(full(0, 1, {entry(9, 1, 9), entry(5, 2, 9)}));
  DomainReport rm = delta(0, 2, {});
  rm.removed = {ip(5)};
  auto ack = send(rm);
  EXPECT_FALSE(ack.need_full);
  EXPECT_EQ(root_.known_adapter_count(), 1u);
  EXPECT_FALSE(root_.adapter_status(ip(5)).has_value());
}

TEST_F(RootCentralTest, DomainLeaseExpiryMarksSliceDead) {
  params_.domain_lease = sim::seconds(8);
  params_.domain_refresh = sim::seconds(3);
  RootCentral root(sim_, params_);
  root.activate(ip(250));
  send(root, full(0, 1, {entry(9, 1, 9), entry(5, 2, 9)}));
  // The whole domain goes silent past its lease: nobody is left to send
  // the deaths, so the root marks every owned row dead wholesale and
  // forgets the incarnation.
  sim_.run_until(sim_.now() + sim::seconds(12));
  ASSERT_TRUE(root.adapter_status(ip(5)).has_value());
  EXPECT_FALSE(root.adapter_status(ip(5))->alive);
  EXPECT_TRUE(root.adapter_status(ip(5))->group_leader.is_unspecified());
  EXPECT_EQ(root.domain_count(), 0u);
  EXPECT_TRUE(root.groups().empty());
  // The next contact must re-establish with a full.
  auto ack = send(root, delta(0, 2, {entry(5, 2, 9)}));
  EXPECT_TRUE(ack.need_full);
  ack = send(root, full(0, 3, {entry(9, 1, 9), entry(5, 2, 9)}));
  EXPECT_FALSE(ack.need_full);
  EXPECT_TRUE(root.adapter_status(ip(5))->alive);
}

TEST_F(RootCentralTest, ReactivationStartsEmpty) {
  send(full(0, 1, {entry(9, 1, 9)}));
  root_.deactivate();
  EXPECT_FALSE(root_.active());
  root_.activate(ip(250));
  EXPECT_EQ(root_.known_adapter_count(), 0u);
  // Deltas from before the bounce hit the empty instance and are bounced.
  auto ack = send(delta(0, 2, {entry(5, 2, 9)}));
  EXPECT_TRUE(ack.need_full);
}

TEST_F(RootCentralTest, NodeDownRequiresAllAdaptersDead) {
  send(full(0, 1, {entry(9, 1, 9), entry(5, 1, 9), entry(4, 2, 9)}));
  send(delta(0, 2, {entry(9, 1, 9, 1, false)}));
  EXPECT_FALSE(root_.node_down(util::NodeId(1)));
  send(delta(0, 3, {entry(5, 1, 9, 1, false)}));
  EXPECT_TRUE(root_.node_down(util::NodeId(1)));
  EXPECT_FALSE(root_.node_down(util::NodeId(2)));
}

// --- DomainUplink wired to a RootCentral ------------------------------------

class UplinkTest : public ::testing::Test {
 protected:
  UplinkTest() {
    params_.trace = &bus_;
    params_.report_retry = sim::seconds(2);
    params_.domain_refresh = sim::seconds(3);
    params_.domain_lease = sim::seconds(8);
    tracker_ = std::make_unique<obs::SpanTracker>(bus_);
    central_ = std::make_unique<Central>(sim_, params_, nullptr, nullptr);
    root_ = std::make_unique<RootCentral>(sim_, params_);
    DomainUplink::Iface iface;
    iface.send = [this](const DomainReport& rep) {
      ++sends_;
      if (drop_sends_ > 0) {
        --drop_sends_;
        return;
      }
      root_->handle_domain_report(
          rep.sender, rep,
          [this](const DomainReportAck& ack) { uplink_->handle_ack(ack); });
    };
    iface.root_ip = [this] { return root_ip_; };
    uplink_ = std::make_unique<DomainUplink>(sim_, params_, *central_,
                                             /*domain=*/2, ip(201), iface);
    root_->activate(ip(250));
    central_->activate(ip(200));
  }

  // Feeds one leader report into the observed domain Central; the first
  // member is the leader.
  void leader_report(std::uint8_t /*leader_host*/, std::uint64_t seq,
                     std::vector<MemberInfo> members, std::uint64_t view = 1,
                     bool is_full = true) {
    MembershipReport rep;
    rep.seq = seq;
    rep.view = view;
    rep.full = is_full;
    rep.leader = members.front();
    rep.added = std::move(members);
    central_->handle_report(rep.leader.ip, rep, [](const ReportAck&) {});
  }

  void run_for(sim::SimDuration d) { sim_.run_until(sim_.now() + d); }

  sim::Simulator sim_;
  Params params_;
  obs::TraceBus bus_;
  std::unique_ptr<obs::SpanTracker> tracker_;
  std::unique_ptr<Central> central_;
  std::unique_ptr<RootCentral> root_;
  std::unique_ptr<DomainUplink> uplink_;
  util::IpAddress root_ip_ = util::IpAddress(10, 0, 0, 250);
  int sends_ = 0;
  int drop_sends_ = 0;
};

TEST_F(UplinkTest, BatchesManyChangesIntoOneFullDigest) {
  leader_report(9, 1, {member(9, 1), member(5, 2), member(4, 3)});
  EXPECT_EQ(uplink_->reports_sent(), 0u);  // still inside the batch window
  run_for(sim::milliseconds(300));
  // Three table changes, ONE digest frame.
  EXPECT_EQ(uplink_->reports_sent(), 1u);
  EXPECT_EQ(root_->known_adapter_count(), 3u);
  EXPECT_EQ(root_->domain_count(), 1u);
  ASSERT_TRUE(root_->adapter_status(ip(5)).has_value());
  EXPECT_EQ(root_->adapter_status(ip(5))->domain, 2u);
  EXPECT_EQ(root_->adapter_status(ip(5))->group_leader, ip(9));
  auto groups = root_->groups();
  ASSERT_EQ(groups.size(), 1u);
  EXPECT_EQ(groups[0].members.size(), 3u);
}

TEST_F(UplinkTest, SteadyStateChangesFlowAsDeltas) {
  leader_report(9, 1, {member(9, 1), member(5, 2)});
  run_for(sim::milliseconds(300));
  ASSERT_EQ(root_->known_adapter_count(), 2u);
  // One member leaves, another joins, inside one batch window: one delta.
  const auto sent_before = uplink_->reports_sent();
  leader_report(9, 2, {member(9, 1), member(4, 3)});
  run_for(sim::milliseconds(300));
  EXPECT_EQ(uplink_->reports_sent(), sent_before + 1);
  EXPECT_TRUE(root_->adapter_status(ip(4))->alive);
  // Adapter 5 silently absent from the leader's snapshot: unassigned, and
  // the root's derived group reflects the new membership.
  auto groups = root_->groups();
  ASSERT_EQ(groups.size(), 1u);
  EXPECT_EQ(groups[0].members.size(), 2u);
}

TEST_F(UplinkTest, DroppedDigestIsRetriedUntilAcked) {
  drop_sends_ = 1;
  leader_report(9, 1, {member(9, 1), member(5, 2)});
  run_for(sim::milliseconds(300));
  EXPECT_EQ(root_->known_adapter_count(), 0u);  // first send lost
  EXPECT_TRUE(uplink_->report_outstanding());
  run_for(params_.report_retry + sim::milliseconds(100));
  EXPECT_EQ(root_->known_adapter_count(), 2u);
  EXPECT_FALSE(uplink_->report_outstanding());
  EXPECT_EQ(sends_, 2);
}

TEST_F(UplinkTest, RootBounceRecoversViaNeedFull) {
  leader_report(9, 1, {member(9, 1), member(5, 2)});
  run_for(sim::milliseconds(300));
  ASSERT_EQ(root_->known_adapter_count(), 2u);
  // The root GSC process bounces (same IP, so no uplink-side root change):
  // its tables restart empty and the next delta must be bounced with
  // need_full, which makes the uplink re-establish with a full digest.
  root_->deactivate();
  root_->activate(ip(250));
  ASSERT_EQ(root_->known_adapter_count(), 0u);
  leader_report(9, 2, {member(9, 1), member(5, 2), member(4, 3)});
  run_for(sim::seconds(1));
  EXPECT_EQ(root_->need_fulls_sent(), 1u);
  EXPECT_EQ(root_->known_adapter_count(), 3u);
  EXPECT_EQ(root_->domain_count(), 1u);
}

TEST_F(UplinkTest, CentralReactivationBumpsEpochAndResendsFull) {
  leader_report(9, 1, {member(9, 1), member(5, 2)});
  run_for(sim::milliseconds(300));
  EXPECT_EQ(uplink_->epoch(), 1u);
  // The domain Central bounces: fresh epoch, fresh seq space, and the root
  // replaces the domain's slice from the new incarnation's full.
  central_->deactivate();
  central_->activate(ip(200));
  EXPECT_EQ(uplink_->epoch(), 2u);
  leader_report(9, 1, {member(9, 1)});  // adapter 5 not rediscovered
  run_for(sim::milliseconds(300));
  EXPECT_EQ(root_->known_adapter_count(), 1u);
  EXPECT_FALSE(root_->adapter_status(ip(5)).has_value());
}

TEST_F(UplinkTest, RefreshRenewsDomainLease) {
  leader_report(9, 1, {member(9, 1), member(5, 2)});
  run_for(sim::milliseconds(300));
  // Nothing changes for several leases; the periodic full refresh must keep
  // renewing the domain at the root.
  run_for(sim::seconds(20));
  EXPECT_EQ(root_->domain_count(), 1u);
  EXPECT_TRUE(root_->adapter_status(ip(5))->alive);
  // Silence the uplink outright: the domain expires wholesale.
  uplink_->halt();
  run_for(sim::seconds(12));
  EXPECT_EQ(root_->domain_count(), 0u);
  EXPECT_FALSE(root_->adapter_status(ip(5))->alive);
}

TEST_F(UplinkTest, DeactivationDropsOutstandingDigest) {
  leader_report(9, 1, {member(9, 1), member(5, 2)});
  run_for(sim::milliseconds(300));
  ASSERT_FALSE(uplink_->report_outstanding());
  // A delta goes out and every copy is lost; then the domain Central is
  // demoted (a senior standby returned) with the digest still in flight.
  drop_sends_ = 1000;
  leader_report(9, 2, {member(9, 1)});
  run_for(sim::milliseconds(300));
  ASSERT_TRUE(uplink_->report_outstanding());
  const int sends_at_demotion = sends_;
  central_->deactivate();
  // The drop must be announced (kDomainReportDropped) so the span tracker
  // abandons the in-flight digest's span instead of leaking it...
  EXPECT_FALSE(uplink_->report_outstanding());
  EXPECT_EQ(tracker_->open_count(obs::SpanKind::kDomainReport), 0u);
  EXPECT_EQ(tracker_->abandoned(obs::SpanKind::kDomainReport,
                                obs::AbandonCause::kDemoted),
            1u);
  // ...and the demoted standby must stay silent: no retries, no refreshes.
  run_for(sim::seconds(20));
  EXPECT_EQ(sends_, sends_at_demotion);
}

TEST_F(UplinkTest, SpanBooksBalanceAcrossRecovery) {
  leader_report(9, 1, {member(9, 1), member(5, 2)});
  run_for(sim::milliseconds(300));
  drop_sends_ = 1;
  leader_report(9, 2, {member(9, 1), member(5, 2), member(4, 3)});
  run_for(sim::seconds(3));
  root_->deactivate();
  root_->activate(ip(250));
  leader_report(9, 3, {member(9, 1), member(4, 3)});
  run_for(sim::seconds(3));
  const auto k = obs::SpanKind::kDomainReport;
  EXPECT_EQ(tracker_->opened(k),
            tracker_->closed(k) + tracker_->abandoned(k) +
                tracker_->open_count(k));
  EXPECT_EQ(tracker_->open_count(k), 0u);
}

}  // namespace
}  // namespace gs::proto
