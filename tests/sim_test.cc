// Unit tests for the discrete-event simulator.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <limits>
#include <memory>
#include <utility>
#include <vector>

#include "sim/event_queue.h"
#include "sim/heap_queue.h"
#include "sim/simulator.h"
#include "util/rng.h"

namespace gs::sim {
namespace {

// --- EventQueue ------------------------------------------------------------------

TEST(EventQueue, PopsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.push(30, [&] { order.push_back(3); });
  q.push(10, [&] { order.push_back(1); });
  q.push(20, [&] { order.push_back(2); });
  while (!q.empty()) q.pop().second();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, SameTimeIsFifo) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) q.push(5, [&order, i] { order.push_back(i); });
  while (!q.empty()) q.pop().second();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(EventQueue, CancelPreventsExecution) {
  EventQueue q;
  bool ran = false;
  const EventId id = q.push(10, [&] { ran = true; });
  EXPECT_TRUE(q.cancel(id));
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(ran);
}

TEST(EventQueue, CancelTwiceFails) {
  EventQueue q;
  const EventId id = q.push(10, [] {});
  EXPECT_TRUE(q.cancel(id));
  EXPECT_FALSE(q.cancel(id));
}

TEST(EventQueue, CancelAfterPopFails) {
  EventQueue q;
  const EventId id = q.push(10, [] {});
  q.pop().second();
  EXPECT_FALSE(q.cancel(id));
}

TEST(EventQueue, CancelInvalidIdFails) {
  EventQueue q;
  EXPECT_FALSE(q.cancel(0));
  EXPECT_FALSE(q.cancel(999));
}

TEST(EventQueue, NextTimeSkipsCancelled) {
  EventQueue q;
  const EventId early = q.push(10, [] {});
  q.push(20, [] {});
  q.cancel(early);
  EXPECT_EQ(q.next_time(), 20);
}

TEST(EventQueue, SizeTracksLiveEvents) {
  EventQueue q;
  const EventId a = q.push(1, [] {});
  q.push(2, [] {});
  EXPECT_EQ(q.size(), 2u);
  q.cancel(a);
  EXPECT_EQ(q.size(), 1u);
  q.pop();
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, CancelReleasesCallbackStateEagerly) {
  // FD timers capture payload-sized state; a cancelled event must not pin
  // it until the stale heap entry happens to surface.
  EventQueue q;
  auto token = std::make_shared<int>(42);
  const EventId id = q.push(1'000'000, [token] { (void)*token; });
  EXPECT_EQ(token.use_count(), 2);
  EXPECT_TRUE(q.cancel(id));
  EXPECT_EQ(token.use_count(), 1);
}

TEST(EventQueue, StaleIdOnReusedSlotCannotCancelNewEvent) {
  EventQueue q;
  const EventId old_id = q.push(10, [] {});
  q.pop().second();  // slot goes back to the free list
  bool ran = false;
  const EventId new_id = q.push(20, [&] { ran = true; });
  EXPECT_NE(old_id, new_id);  // same slot, different generation
  EXPECT_FALSE(q.cancel(old_id));
  q.pop().second();
  EXPECT_TRUE(ran);
}

// A naive reference queue: linear scan for the earliest live event, FIFO
// among equal times by push order. Matches the production heap event for
// event, including across compactions.
class NaiveQueue {
 public:
  std::size_t push(SimTime when) {
    entries_.push_back({when, next_label_++, true});
    return entries_.back().label;
  }
  bool cancel(std::size_t label) {
    for (auto& e : entries_)
      if (e.label == label && e.live) {
        e.live = false;
        return true;
      }
    return false;
  }
  [[nodiscard]] bool empty() const {
    for (const auto& e : entries_)
      if (e.live) return false;
    return true;
  }
  std::pair<SimTime, std::size_t> pop() {
    Entry* best = nullptr;
    for (auto& e : entries_)
      if (e.live && (best == nullptr || e.when < best->when)) best = &e;
    EXPECT_NE(best, nullptr);
    best->live = false;
    return {best->when, best->label};
  }

 private:
  struct Entry {
    SimTime when;
    std::size_t label;
    bool live;
  };
  std::vector<Entry> entries_;
  std::size_t next_label_ = 0;
};

TEST(EventQueue, FdChurnKeepsSlotPoolBoundedAndMatchesReference) {
  // The failure detector's hot pattern: every heartbeat arrival cancels and
  // re-arms a suspicion timer. Under this churn the slot pool must stay at
  // the high-water mark of *concurrently* pending events (not grow per
  // event ever pushed), the heap must stay within a constant factor of
  // live, and pop order must match the naive reference event for event.
  constexpr std::size_t kAdapters = 64;
  constexpr int kIterations = 50'000;
  util::Rng rng(0xC0FFEE);
  EventQueue q;
  NaiveQueue ref;
  std::vector<std::size_t> popped_real, popped_ref;

  SimTime now = 0;
  struct Armed {
    EventId id = 0;
    std::size_t label = 0;
    bool live = false;
  };
  std::vector<Armed> timers(kAdapters);

  auto arm = [&](std::size_t adapter) {
    const SimTime when = now + 1000 + static_cast<SimTime>(rng.below(5000));
    const std::size_t label = ref.push(when);
    const EventId id = q.push(when, [&popped_real, label] {
      popped_real.push_back(label);
    });
    timers[adapter] = Armed{id, label, true};
  };

  for (std::size_t a = 0; a < kAdapters; ++a) arm(a);
  for (int i = 0; i < kIterations; ++i) {
    const std::size_t a = rng.below(kAdapters);
    if (rng.chance(0.9)) {
      // "Heartbeat arrived": cancel + re-arm.
      if (timers[a].live) {
        EXPECT_TRUE(q.cancel(timers[a].id));
        EXPECT_TRUE(ref.cancel(timers[a].label));
      }
      arm(a);
    } else if (!q.empty()) {
      // "Suspicion timer fired": pop one event on both sides, advance time.
      const auto [ref_when, ref_label] = ref.pop();
      EXPECT_EQ(q.next_time(), ref_when);
      auto [when, fn] = q.pop();
      EXPECT_EQ(when, ref_when);
      now = std::max(now, when);
      fn();
      ASSERT_EQ(popped_real.back(), ref_label);
      popped_ref.push_back(ref_label);
      for (auto& t : timers)
        if (t.live && t.label == ref_label) t.live = false;
    }
    EXPECT_EQ(q.size(), static_cast<std::size_t>(
                            std::count_if(timers.begin(), timers.end(),
                                          [](const Armed& t) { return t.live; })));
  }

  // Slot pool bounded by concurrent high-water (kAdapters plus slack for
  // the pop-before-rearm window), not by ~50k events ever pushed.
  EXPECT_LE(q.slot_count(), kAdapters + 8);
  // Stale entries never dominate: the wheel tolerates stale up to ~4x live
  // (cascades drop them for free, so the sweep only bounds memory) plus the
  // compaction floor — entries stay a constant factor of live, not of the
  // ~50k events ever pushed.
  EXPECT_LE(q.heap_size(), 5 * q.size() + 160);

  while (!q.empty()) {
    auto [when, fn] = q.pop();
    (void)when;
    fn();
  }
  while (!ref.empty()) popped_ref.push_back(ref.pop().second);

  // Event-for-event identical pop order against the naive reference.
  ASSERT_EQ(popped_real.size(), popped_ref.size());
  EXPECT_EQ(popped_real, popped_ref);
}

// Drives the timing wheel and the reference heap with one randomized stream
// of push / cancel / reschedule / pop / clear operations and demands
// pop-for-pop equality — the order contract the golden traces rest on.
// Deadlines deliberately mix the heartbeat range with cascade-hostile
// values: exact level-rollover boundaries, their neighbours, far-future
// overflow, and past deadlines (which the wheel clamps into the current
// bucket but must still order by true (when, seq)).
TEST(EventQueue, WheelMatchesHeapUnderRandomizedChurn) {
  util::Rng rng(0xD1CE5EED);
  EventQueue wheel;
  HeapEventQueue heap;
  std::vector<std::size_t> popped_wheel, popped_heap;

  struct LivePair {
    EventId wheel_id = 0;
    EventId heap_id = 0;
  };
  std::vector<LivePair> live;
  std::size_t next_label = 0;
  SimTime now = 0;

  auto pick_when = [&]() -> SimTime {
    switch (rng.below(8)) {
      case 0:  // exact level-0 rollover (bucket boundary at byte 0)
        return ((now >> 8) + 1 + static_cast<SimTime>(rng.below(3))) << 8;
      case 1:  // exact level-1 rollover, +/- one tick
        return (((now >> 16) + 1) << 16) + static_cast<SimTime>(rng.below(3)) -
               1;
      case 2:  // deep-level crossing
        return (((now >> 24) + 1) << 24) + static_cast<SimTime>(rng.below(2));
      case 3:  // far-future overflow (top levels)
        return now + (static_cast<SimTime>(1) << (30 + rng.below(20)));
      case 4:  // already in the past: clamped filing, true-key ordering
        return now <= 0 ? 0 : static_cast<SimTime>(rng.below(
                                  static_cast<std::uint64_t>(now) + 1));
      default:  // heartbeat-ish near range
        return now + 1 + static_cast<SimTime>(rng.below(50'000));
    }
  };
  auto push_both = [&](SimTime when) {
    LivePair p;
    const std::size_t label = next_label++;
    p.wheel_id = wheel.push(
        when, [&popped_wheel, label] { popped_wheel.push_back(label); });
    p.heap_id = heap.push(
        when, [&popped_heap, label] { popped_heap.push_back(label); });
    live.push_back(p);
  };
  auto pop_both = [&] {
    ASSERT_EQ(wheel.next_time(), heap.next_time());
    auto [wheel_when, wheel_fn] = wheel.pop();
    auto [heap_when, heap_fn] = heap.pop();
    ASSERT_EQ(wheel_when, heap_when);
    wheel_fn();
    heap_fn();
    ASSERT_EQ(popped_wheel.back(), popped_heap.back());
    now = std::max(now, wheel_when);
  };

  for (int i = 0; i < 30'000; ++i) {
    const std::uint64_t op = rng.below(100);
    if (op < 40) {
      push_both(pick_when());
    } else if (op < 55 && !live.empty()) {
      const std::size_t k = rng.below(live.size());
      // Equal verdicts even when the pick is already dead (popped).
      ASSERT_EQ(wheel.cancel(live[k].wheel_id), heap.cancel(live[k].heap_id));
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(k));
    } else if (op < 70 && !live.empty()) {
      const std::size_t k = rng.below(live.size());
      const SimTime when = pick_when();
      const EventId w = wheel.reschedule(live[k].wheel_id, when);
      const EventId h = heap.reschedule(live[k].heap_id, when);
      ASSERT_EQ(w == 0, h == 0);  // both dead or both moved
      if (w == 0) {
        live.erase(live.begin() + static_cast<std::ptrdiff_t>(k));
      } else {
        live[k] = LivePair{w, h};
      }
    } else if (op < 99) {
      ASSERT_EQ(wheel.empty(), heap.empty());
      if (!wheel.empty()) pop_both();
    } else {
      wheel.clear();
      heap.clear();
      // Every outstanding handle is dead on both sides.
      for (const LivePair& p : live) {
        EXPECT_FALSE(wheel.cancel(p.wheel_id));
        EXPECT_FALSE(heap.cancel(p.heap_id));
      }
      live.clear();
    }
    ASSERT_EQ(wheel.size(), heap.size());
  }

  // SimTime extremes survive filing and drain in identical order.
  push_both(std::numeric_limits<SimTime>::max());
  push_both(std::numeric_limits<SimTime>::max() - 1);
  push_both(std::numeric_limits<SimTime>::max());
  while (!wheel.empty()) pop_both();
  EXPECT_TRUE(heap.empty());
  ASSERT_EQ(popped_wheel.size(), popped_heap.size());
  EXPECT_EQ(popped_wheel, popped_heap);
}

// Deterministic cascade-boundary pin: events parked exactly at level
// rollovers (byte-0 wrap, byte-1 wrap, deeper), one tick on either side,
// plus far-future and SimTime-max extremes, interleaved with pops so the
// wheel actually crosses the boundaries while entries are resident.
TEST(EventQueue, CascadeBoundariesMatchHeap) {
  EventQueue wheel;
  HeapEventQueue heap;
  std::vector<std::size_t> popped_wheel, popped_heap;
  std::size_t next_label = 0;
  auto push_both = [&](SimTime when) {
    const std::size_t label = next_label++;
    wheel.push(when,
               [&popped_wheel, label] { popped_wheel.push_back(label); });
    heap.push(when, [&popped_heap, label] { popped_heap.push_back(label); });
  };

  const SimTime kMax = std::numeric_limits<SimTime>::max();
  const std::vector<SimTime> boundaries = {
      (1 << 8) - 1, 1 << 8, (1 << 8) + 1,       // level-0 wrap
      (1 << 16) - 1, 1 << 16, (1 << 16) + 1,    // level-1 wrap
      (1 << 24) - 1, 1 << 24, (1 << 24) + 1,    // level-2 wrap
      (SimTime{1} << 40) - 1, SimTime{1} << 40,  // deep level
      kMax - 1, kMax,
  };
  // Same-time duplicates must pop FIFO across the whole span.
  for (SimTime t : boundaries) push_both(t);
  for (SimTime t : boundaries) push_both(t);

  // Drain half, forcing the wheel across the low boundaries, then file more
  // events relative to the advanced position (including equal-time inserts
  // behind already-resident coarse entries).
  for (int i = 0; i < 12; ++i) {
    ASSERT_FALSE(wheel.empty());
    ASSERT_EQ(wheel.next_time(), heap.next_time());
    auto [ww, wf] = wheel.pop();
    auto [hw, hf] = heap.pop();
    ASSERT_EQ(ww, hw);
    wf();
    hf();
  }
  push_both((1 << 24) + 2);              // ahead of the wheel, fine level
  push_both((SimTime{1} << 40) - 2);     // just before a resident boundary
  push_both(0);                          // past deadline: clamped filing
  while (!wheel.empty()) {
    ASSERT_EQ(wheel.next_time(), heap.next_time());
    auto [ww, wf] = wheel.pop();
    auto [hw, hf] = heap.pop();
    ASSERT_EQ(ww, hw);
    wf();
    hf();
  }
  EXPECT_TRUE(heap.empty());
  ASSERT_EQ(popped_wheel.size(), popped_heap.size());
  EXPECT_EQ(popped_wheel, popped_heap);
}

// --- Simulator ----------------------------------------------------------------------

TEST(Simulator, TimeAdvancesWithEvents) {
  Simulator sim;
  SimTime seen = -1;
  sim.after(seconds(5), [&] { seen = sim.now(); });
  sim.run();
  EXPECT_EQ(seen, seconds(5));
  EXPECT_EQ(sim.now(), seconds(5));
}

TEST(Simulator, RunUntilStopsAtDeadline) {
  Simulator sim;
  int fired = 0;
  sim.after(seconds(1), [&] { fired++; });
  sim.after(seconds(10), [&] { fired++; });
  sim.run_until(seconds(5));
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.now(), seconds(5));
  sim.run_until(seconds(20));
  EXPECT_EQ(fired, 2);
}

TEST(Simulator, EventsCanScheduleEvents) {
  Simulator sim;
  std::vector<SimTime> times;
  sim.after(seconds(1), [&] {
    times.push_back(sim.now());
    sim.after(seconds(1), [&] { times.push_back(sim.now()); });
  });
  sim.run();
  EXPECT_EQ(times, (std::vector<SimTime>{seconds(1), seconds(2)}));
}

TEST(Simulator, TimerCancel) {
  Simulator sim;
  bool ran = false;
  Timer t = sim.after(seconds(1), [&] { ran = true; });
  EXPECT_TRUE(t.cancel());
  sim.run();
  EXPECT_FALSE(ran);
}

TEST(Simulator, TimerMoveAssignCancelsOverwrittenEvent) {
  // Overwriting a live Timer by move-assignment cancels the old event — it
  // must not leak and fire later. (The WallClock backend has the same pin
  // in realtime_test.cc.)
  Simulator sim;
  int first = 0, second = 0;
  Timer t = sim.after(10, [&] { ++first; });
  t = sim.after(20, [&] { ++second; });
  sim.run();
  EXPECT_EQ(first, 0);
  EXPECT_EQ(second, 1);
  EXPECT_EQ(sim.pending_events(), 0u);
}

TEST(Simulator, TimerMoveConstructLeavesSourceInert) {
  Simulator sim;
  int fired = 0;
  Timer a = sim.after(10, [&] { ++fired; });
  Timer b = std::move(a);
  EXPECT_FALSE(a.cancel());  // moved-from: inert, owns nothing
  EXPECT_TRUE(b.cancel());   // ownership transferred intact
  sim.run();
  EXPECT_EQ(fired, 0);
}

TEST(Simulator, CancelAfterFireIsNoop) {
  Simulator sim;
  Timer t = sim.after(seconds(1), [] {});
  sim.run();
  EXPECT_FALSE(t.cancel());
}

TEST(Simulator, DefaultTimerIsInert) {
  Timer t;
  EXPECT_FALSE(t.armed());
  EXPECT_FALSE(t.cancel());
}

TEST(Simulator, StepExecutesOne) {
  Simulator sim;
  int fired = 0;
  sim.after(1, [&] { fired++; });
  sim.after(2, [&] { fired++; });
  EXPECT_TRUE(sim.step());
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(sim.step());
  EXPECT_FALSE(sim.step());
  EXPECT_EQ(fired, 2);
}

TEST(Simulator, ExecutedEventsCounts) {
  Simulator sim;
  for (int i = 0; i < 5; ++i) sim.after(i, [] {});
  sim.run();
  EXPECT_EQ(sim.executed_events(), 5u);
}

TEST(Simulator, PeriodicSelfRescheduling) {
  Simulator sim;
  int ticks = 0;
  std::function<void()> tick = [&] {
    ++ticks;
    if (ticks < 10) sim.after(seconds(1), tick);
  };
  sim.after(seconds(1), tick);
  sim.run_until(seconds(100));
  EXPECT_EQ(ticks, 10);
  EXPECT_EQ(sim.now(), seconds(100));
}

TEST(TimeHelpers, Conversions) {
  EXPECT_EQ(seconds(1), 1'000'000);
  EXPECT_EQ(milliseconds(1), 1'000);
  EXPECT_EQ(microseconds(1), 1);
  EXPECT_EQ(seconds(1.5), 1'500'000);
  EXPECT_DOUBLE_EQ(to_seconds(seconds(2)), 2.0);
}

}  // namespace
}  // namespace gs::sim
