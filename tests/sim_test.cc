// Unit tests for the discrete-event simulator.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "sim/event_queue.h"
#include "sim/simulator.h"
#include "util/rng.h"

namespace gs::sim {
namespace {

// --- EventQueue ------------------------------------------------------------------

TEST(EventQueue, PopsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.push(30, [&] { order.push_back(3); });
  q.push(10, [&] { order.push_back(1); });
  q.push(20, [&] { order.push_back(2); });
  while (!q.empty()) q.pop().second();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, SameTimeIsFifo) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) q.push(5, [&order, i] { order.push_back(i); });
  while (!q.empty()) q.pop().second();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(EventQueue, CancelPreventsExecution) {
  EventQueue q;
  bool ran = false;
  const EventId id = q.push(10, [&] { ran = true; });
  EXPECT_TRUE(q.cancel(id));
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(ran);
}

TEST(EventQueue, CancelTwiceFails) {
  EventQueue q;
  const EventId id = q.push(10, [] {});
  EXPECT_TRUE(q.cancel(id));
  EXPECT_FALSE(q.cancel(id));
}

TEST(EventQueue, CancelAfterPopFails) {
  EventQueue q;
  const EventId id = q.push(10, [] {});
  q.pop().second();
  EXPECT_FALSE(q.cancel(id));
}

TEST(EventQueue, CancelInvalidIdFails) {
  EventQueue q;
  EXPECT_FALSE(q.cancel(0));
  EXPECT_FALSE(q.cancel(999));
}

TEST(EventQueue, NextTimeSkipsCancelled) {
  EventQueue q;
  const EventId early = q.push(10, [] {});
  q.push(20, [] {});
  q.cancel(early);
  EXPECT_EQ(q.next_time(), 20);
}

TEST(EventQueue, SizeTracksLiveEvents) {
  EventQueue q;
  const EventId a = q.push(1, [] {});
  q.push(2, [] {});
  EXPECT_EQ(q.size(), 2u);
  q.cancel(a);
  EXPECT_EQ(q.size(), 1u);
  q.pop();
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, CancelReleasesCallbackStateEagerly) {
  // FD timers capture payload-sized state; a cancelled event must not pin
  // it until the stale heap entry happens to surface.
  EventQueue q;
  auto token = std::make_shared<int>(42);
  const EventId id = q.push(1'000'000, [token] { (void)*token; });
  EXPECT_EQ(token.use_count(), 2);
  EXPECT_TRUE(q.cancel(id));
  EXPECT_EQ(token.use_count(), 1);
}

TEST(EventQueue, StaleIdOnReusedSlotCannotCancelNewEvent) {
  EventQueue q;
  const EventId old_id = q.push(10, [] {});
  q.pop().second();  // slot goes back to the free list
  bool ran = false;
  const EventId new_id = q.push(20, [&] { ran = true; });
  EXPECT_NE(old_id, new_id);  // same slot, different generation
  EXPECT_FALSE(q.cancel(old_id));
  q.pop().second();
  EXPECT_TRUE(ran);
}

// A naive reference queue: linear scan for the earliest live event, FIFO
// among equal times by push order. Matches the production heap event for
// event, including across compactions.
class NaiveQueue {
 public:
  std::size_t push(SimTime when) {
    entries_.push_back({when, next_label_++, true});
    return entries_.back().label;
  }
  bool cancel(std::size_t label) {
    for (auto& e : entries_)
      if (e.label == label && e.live) {
        e.live = false;
        return true;
      }
    return false;
  }
  [[nodiscard]] bool empty() const {
    for (const auto& e : entries_)
      if (e.live) return false;
    return true;
  }
  std::pair<SimTime, std::size_t> pop() {
    Entry* best = nullptr;
    for (auto& e : entries_)
      if (e.live && (best == nullptr || e.when < best->when)) best = &e;
    EXPECT_NE(best, nullptr);
    best->live = false;
    return {best->when, best->label};
  }

 private:
  struct Entry {
    SimTime when;
    std::size_t label;
    bool live;
  };
  std::vector<Entry> entries_;
  std::size_t next_label_ = 0;
};

TEST(EventQueue, FdChurnKeepsSlotPoolBoundedAndMatchesReference) {
  // The failure detector's hot pattern: every heartbeat arrival cancels and
  // re-arms a suspicion timer. Under this churn the slot pool must stay at
  // the high-water mark of *concurrently* pending events (not grow per
  // event ever pushed), the heap must stay within a constant factor of
  // live, and pop order must match the naive reference event for event.
  constexpr std::size_t kAdapters = 64;
  constexpr int kIterations = 50'000;
  util::Rng rng(0xC0FFEE);
  EventQueue q;
  NaiveQueue ref;
  std::vector<std::size_t> popped_real, popped_ref;

  SimTime now = 0;
  struct Armed {
    EventId id = 0;
    std::size_t label = 0;
    bool live = false;
  };
  std::vector<Armed> timers(kAdapters);

  auto arm = [&](std::size_t adapter) {
    const SimTime when = now + 1000 + static_cast<SimTime>(rng.below(5000));
    const std::size_t label = ref.push(when);
    const EventId id = q.push(when, [&popped_real, label] {
      popped_real.push_back(label);
    });
    timers[adapter] = Armed{id, label, true};
  };

  for (std::size_t a = 0; a < kAdapters; ++a) arm(a);
  for (int i = 0; i < kIterations; ++i) {
    const std::size_t a = rng.below(kAdapters);
    if (rng.chance(0.9)) {
      // "Heartbeat arrived": cancel + re-arm.
      if (timers[a].live) {
        EXPECT_TRUE(q.cancel(timers[a].id));
        EXPECT_TRUE(ref.cancel(timers[a].label));
      }
      arm(a);
    } else if (!q.empty()) {
      // "Suspicion timer fired": pop one event on both sides, advance time.
      const auto [ref_when, ref_label] = ref.pop();
      EXPECT_EQ(q.next_time(), ref_when);
      auto [when, fn] = q.pop();
      EXPECT_EQ(when, ref_when);
      now = std::max(now, when);
      fn();
      ASSERT_EQ(popped_real.back(), ref_label);
      popped_ref.push_back(ref_label);
      for (auto& t : timers)
        if (t.live && t.label == ref_label) t.live = false;
    }
    EXPECT_EQ(q.size(), static_cast<std::size_t>(
                            std::count_if(timers.begin(), timers.end(),
                                          [](const Armed& t) { return t.live; })));
  }

  // Slot pool bounded by concurrent high-water (kAdapters plus slack for
  // the pop-before-rearm window), not by ~50k events ever pushed.
  EXPECT_LE(q.slot_count(), kAdapters + 8);
  // Stale entries never dominate: compaction holds the heap near 2x live.
  EXPECT_LE(q.heap_size(), 2 * q.size() + 128);

  while (!q.empty()) {
    auto [when, fn] = q.pop();
    (void)when;
    fn();
  }
  while (!ref.empty()) popped_ref.push_back(ref.pop().second);

  // Event-for-event identical pop order against the naive reference.
  ASSERT_EQ(popped_real.size(), popped_ref.size());
  EXPECT_EQ(popped_real, popped_ref);
}

// --- Simulator ----------------------------------------------------------------------

TEST(Simulator, TimeAdvancesWithEvents) {
  Simulator sim;
  SimTime seen = -1;
  sim.after(seconds(5), [&] { seen = sim.now(); });
  sim.run();
  EXPECT_EQ(seen, seconds(5));
  EXPECT_EQ(sim.now(), seconds(5));
}

TEST(Simulator, RunUntilStopsAtDeadline) {
  Simulator sim;
  int fired = 0;
  sim.after(seconds(1), [&] { fired++; });
  sim.after(seconds(10), [&] { fired++; });
  sim.run_until(seconds(5));
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.now(), seconds(5));
  sim.run_until(seconds(20));
  EXPECT_EQ(fired, 2);
}

TEST(Simulator, EventsCanScheduleEvents) {
  Simulator sim;
  std::vector<SimTime> times;
  sim.after(seconds(1), [&] {
    times.push_back(sim.now());
    sim.after(seconds(1), [&] { times.push_back(sim.now()); });
  });
  sim.run();
  EXPECT_EQ(times, (std::vector<SimTime>{seconds(1), seconds(2)}));
}

TEST(Simulator, TimerCancel) {
  Simulator sim;
  bool ran = false;
  Timer t = sim.after(seconds(1), [&] { ran = true; });
  EXPECT_TRUE(t.cancel());
  sim.run();
  EXPECT_FALSE(ran);
}

TEST(Simulator, CancelAfterFireIsNoop) {
  Simulator sim;
  Timer t = sim.after(seconds(1), [] {});
  sim.run();
  EXPECT_FALSE(t.cancel());
}

TEST(Simulator, DefaultTimerIsInert) {
  Timer t;
  EXPECT_FALSE(t.armed());
  EXPECT_FALSE(t.cancel());
}

TEST(Simulator, StepExecutesOne) {
  Simulator sim;
  int fired = 0;
  sim.after(1, [&] { fired++; });
  sim.after(2, [&] { fired++; });
  EXPECT_TRUE(sim.step());
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(sim.step());
  EXPECT_FALSE(sim.step());
  EXPECT_EQ(fired, 2);
}

TEST(Simulator, ExecutedEventsCounts) {
  Simulator sim;
  for (int i = 0; i < 5; ++i) sim.after(i, [] {});
  sim.run();
  EXPECT_EQ(sim.executed_events(), 5u);
}

TEST(Simulator, PeriodicSelfRescheduling) {
  Simulator sim;
  int ticks = 0;
  std::function<void()> tick = [&] {
    ++ticks;
    if (ticks < 10) sim.after(seconds(1), tick);
  };
  sim.after(seconds(1), tick);
  sim.run_until(seconds(100));
  EXPECT_EQ(ticks, 10);
  EXPECT_EQ(sim.now(), seconds(100));
}

TEST(TimeHelpers, Conversions) {
  EXPECT_EQ(seconds(1), 1'000'000);
  EXPECT_EQ(milliseconds(1), 1'000);
  EXPECT_EQ(microseconds(1), 1);
  EXPECT_EQ(seconds(1.5), 1'500'000);
  EXPECT_DOUBLE_EQ(to_seconds(seconds(2)), 2.0);
}

}  // namespace
}  // namespace gs::sim
