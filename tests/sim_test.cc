// Unit tests for the discrete-event simulator.
#include <gtest/gtest.h>

#include <vector>

#include "sim/event_queue.h"
#include "sim/simulator.h"

namespace gs::sim {
namespace {

// --- EventQueue ------------------------------------------------------------------

TEST(EventQueue, PopsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.push(30, [&] { order.push_back(3); });
  q.push(10, [&] { order.push_back(1); });
  q.push(20, [&] { order.push_back(2); });
  while (!q.empty()) q.pop().second();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, SameTimeIsFifo) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) q.push(5, [&order, i] { order.push_back(i); });
  while (!q.empty()) q.pop().second();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(EventQueue, CancelPreventsExecution) {
  EventQueue q;
  bool ran = false;
  const EventId id = q.push(10, [&] { ran = true; });
  EXPECT_TRUE(q.cancel(id));
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(ran);
}

TEST(EventQueue, CancelTwiceFails) {
  EventQueue q;
  const EventId id = q.push(10, [] {});
  EXPECT_TRUE(q.cancel(id));
  EXPECT_FALSE(q.cancel(id));
}

TEST(EventQueue, CancelAfterPopFails) {
  EventQueue q;
  const EventId id = q.push(10, [] {});
  q.pop().second();
  EXPECT_FALSE(q.cancel(id));
}

TEST(EventQueue, CancelInvalidIdFails) {
  EventQueue q;
  EXPECT_FALSE(q.cancel(0));
  EXPECT_FALSE(q.cancel(999));
}

TEST(EventQueue, NextTimeSkipsCancelled) {
  EventQueue q;
  const EventId early = q.push(10, [] {});
  q.push(20, [] {});
  q.cancel(early);
  EXPECT_EQ(q.next_time(), 20);
}

TEST(EventQueue, SizeTracksLiveEvents) {
  EventQueue q;
  const EventId a = q.push(1, [] {});
  q.push(2, [] {});
  EXPECT_EQ(q.size(), 2u);
  q.cancel(a);
  EXPECT_EQ(q.size(), 1u);
  q.pop();
  EXPECT_TRUE(q.empty());
}

// --- Simulator ----------------------------------------------------------------------

TEST(Simulator, TimeAdvancesWithEvents) {
  Simulator sim;
  SimTime seen = -1;
  sim.after(seconds(5), [&] { seen = sim.now(); });
  sim.run();
  EXPECT_EQ(seen, seconds(5));
  EXPECT_EQ(sim.now(), seconds(5));
}

TEST(Simulator, RunUntilStopsAtDeadline) {
  Simulator sim;
  int fired = 0;
  sim.after(seconds(1), [&] { fired++; });
  sim.after(seconds(10), [&] { fired++; });
  sim.run_until(seconds(5));
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.now(), seconds(5));
  sim.run_until(seconds(20));
  EXPECT_EQ(fired, 2);
}

TEST(Simulator, EventsCanScheduleEvents) {
  Simulator sim;
  std::vector<SimTime> times;
  sim.after(seconds(1), [&] {
    times.push_back(sim.now());
    sim.after(seconds(1), [&] { times.push_back(sim.now()); });
  });
  sim.run();
  EXPECT_EQ(times, (std::vector<SimTime>{seconds(1), seconds(2)}));
}

TEST(Simulator, TimerCancel) {
  Simulator sim;
  bool ran = false;
  Timer t = sim.after(seconds(1), [&] { ran = true; });
  EXPECT_TRUE(t.cancel());
  sim.run();
  EXPECT_FALSE(ran);
}

TEST(Simulator, CancelAfterFireIsNoop) {
  Simulator sim;
  Timer t = sim.after(seconds(1), [] {});
  sim.run();
  EXPECT_FALSE(t.cancel());
}

TEST(Simulator, DefaultTimerIsInert) {
  Timer t;
  EXPECT_FALSE(t.armed());
  EXPECT_FALSE(t.cancel());
}

TEST(Simulator, StepExecutesOne) {
  Simulator sim;
  int fired = 0;
  sim.after(1, [&] { fired++; });
  sim.after(2, [&] { fired++; });
  EXPECT_TRUE(sim.step());
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(sim.step());
  EXPECT_FALSE(sim.step());
  EXPECT_EQ(fired, 2);
}

TEST(Simulator, ExecutedEventsCounts) {
  Simulator sim;
  for (int i = 0; i < 5; ++i) sim.after(i, [] {});
  sim.run();
  EXPECT_EQ(sim.executed_events(), 5u);
}

TEST(Simulator, PeriodicSelfRescheduling) {
  Simulator sim;
  int ticks = 0;
  std::function<void()> tick = [&] {
    ++ticks;
    if (ticks < 10) sim.after(seconds(1), tick);
  };
  sim.after(seconds(1), tick);
  sim.run_until(seconds(100));
  EXPECT_EQ(ticks, 10);
  EXPECT_EQ(sim.now(), seconds(100));
}

TEST(TimeHelpers, Conversions) {
  EXPECT_EQ(seconds(1), 1'000'000);
  EXPECT_EQ(milliseconds(1), 1'000);
  EXPECT_EQ(microseconds(1), 1);
  EXPECT_EQ(seconds(1.5), 1'500'000);
  EXPECT_DOUBLE_EQ(to_seconds(seconds(2)), 2.0);
}

}  // namespace
}  // namespace gs::sim
