// Scenario-script parser and execution tests.
#include <gtest/gtest.h>

#include "farm/farm.h"
#include "farm/scenario.h"
#include "farm/script.h"

namespace gs::farm {
namespace {

TEST(ScriptParse, FullGrammar) {
  const auto result = parse_script(R"(
# a comment
at 10s   fail-node 3
at 25s   recover-node 3
at 30s   fail-adapter 7
at 31s   recover-adapter 7
at 40s   fail-switch 0
at 41s   recover-switch 0
at 55s   move-adapter 12 vlan 101
at 60s   partition-vlan 301
at 90s   heal-vlan 301
at 95s   verify
)");
  ASSERT_TRUE(result.ok()) << result.error;
  ASSERT_EQ(result.actions.size(), 10u);
  EXPECT_EQ(result.actions[0].kind, ActionKind::kFailNode);
  EXPECT_EQ(result.actions[0].at, sim::seconds(10));
  EXPECT_EQ(result.actions[0].arg, 3u);
  EXPECT_EQ(result.actions[6].kind, ActionKind::kMoveAdapter);
  EXPECT_EQ(result.actions[6].arg, 12u);
  EXPECT_EQ(result.actions[6].vlan_arg, 101u);
  EXPECT_EQ(result.actions[9].kind, ActionKind::kVerify);
}

TEST(ScriptParse, TimeUnits) {
  auto result = parse_script("at 1500ms verify\nat 2.5s verify\nat 3 verify\n");
  ASSERT_TRUE(result.ok()) << result.error;
  EXPECT_EQ(result.actions[0].at, sim::milliseconds(1500));
  EXPECT_EQ(result.actions[1].at, sim::milliseconds(2500));
  EXPECT_EQ(result.actions[2].at, sim::seconds(3));
}

TEST(ScriptParse, RejectsDecreasingTimes) {
  auto result = parse_script("at 10s verify\nat 5s verify\n");
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.error_line, 2);
  EXPECT_NE(result.error.find("non-decreasing"), std::string::npos);
}

TEST(ScriptParse, RejectsUnknownAction) {
  auto result = parse_script("at 1s explode 3\n");
  EXPECT_FALSE(result.ok());
  EXPECT_NE(result.error.find("unknown action"), std::string::npos);
}

TEST(ScriptParse, RejectsBadTime) {
  EXPECT_FALSE(parse_script("at banana verify\n").ok());
  EXPECT_FALSE(parse_script("at -3s verify\n").ok());
}

TEST(ScriptParse, RejectsWrongArity) {
  EXPECT_FALSE(parse_script("at 1s fail-node\n").ok());
  EXPECT_FALSE(parse_script("at 1s fail-node 1 2\n").ok());
  EXPECT_FALSE(parse_script("at 1s verify 9\n").ok());
  EXPECT_FALSE(parse_script("at 1s move-adapter 3 101\n").ok());
  EXPECT_FALSE(parse_script("at 1s move-adapter 3 vlan x\n").ok());
}

TEST(ScriptParse, RejectsBadIds) {
  EXPECT_FALSE(parse_script("at 1s fail-node abc\n").ok());
}

TEST(ScriptParse, EmptyScriptIsOk) {
  auto result = parse_script("\n# nothing here\n");
  EXPECT_TRUE(result.ok());
  EXPECT_TRUE(result.actions.empty());
}

TEST(ScriptRunTest, ExecutesAgainstFarm) {
  sim::Simulator sim;
  proto::Params params;
  params.beacon_phase = sim::seconds(2);
  params.amg_stable_wait = sim::milliseconds(400);
  params.gsc_stable_wait = sim::seconds(2);
  Farm farm(sim, FarmSpec::uniform(6, 2), params, 5);
  proto::EventLog events(farm.event_bus());
  farm.start();
  ASSERT_TRUE(run_until_gsc_stable(farm, sim::seconds(60)));

  const auto parsed = parse_script(
      "at 30s fail-node 2\n"
      "at 60s recover-node 2\n"
      "at 90s verify\n"
      "at 90s fail-node 99\n");  // invalid target: counted as failed
  ASSERT_TRUE(parsed.ok()) << parsed.error;

  ScriptRun run;
  schedule_script(farm, parsed.actions, &run);
  sim.run_until(sim::seconds(95));
  EXPECT_EQ(run.executed, 3u);
  EXPECT_EQ(run.failed, 1u);
  EXPECT_GE(events.count(proto::FarmEvent::Kind::kNodeFailed), 1u);
  EXPECT_TRUE(run_until_converged(farm, sim.now() + sim::seconds(60)));
}

TEST(ScriptRunTest, PartitionAndHealRoundTrip) {
  sim::Simulator sim;
  proto::Params params;
  params.beacon_phase = sim::seconds(2);
  params.amg_stable_wait = sim::milliseconds(400);
  params.gsc_stable_wait = sim::seconds(2);
  Farm farm(sim, FarmSpec::uniform(6, 2), params, 5);
  farm.start();
  ASSERT_TRUE(run_until_gsc_stable(farm, sim::seconds(60)));

  const std::uint32_t vlan = uniform_vlan(1).value();
  const auto parsed = parse_script("at 30s partition-vlan " +
                                   std::to_string(vlan) +
                                   "\nat 90s heal-vlan " +
                                   std::to_string(vlan) + "\n");
  ASSERT_TRUE(parsed.ok());
  ScriptRun run;
  schedule_script(farm, parsed.actions, &run);

  // Mid-partition the data VLAN must not be converged...
  sim.run_until(sim::seconds(70));
  EXPECT_FALSE(farm.converged(uniform_vlan(1)));
  // ...and after heal it merges back.
  sim.run_until(sim::seconds(95));
  EXPECT_TRUE(run_until_converged(farm, sim.now() + sim::seconds(120)));
  EXPECT_EQ(run.executed, 2u);
}

TEST(ScriptActionNames, Strings) {
  EXPECT_EQ(to_string(ActionKind::kFailNode), "fail-node");
  EXPECT_EQ(to_string(ActionKind::kMoveAdapter), "move-adapter");
  EXPECT_EQ(to_string(ActionKind::kVerify), "verify");
}

}  // namespace
}  // namespace gs::farm
