// Unit tests for the wire format: buffers, CRC, frames, corruption handling.
#include <gtest/gtest.h>

#include <algorithm>

#include "gs/messages.h"
#include "util/rng.h"
#include "wire/buffer.h"
#include "wire/checksum.h"
#include "wire/frame.h"

namespace gs::wire {
namespace {

// --- Writer / Reader ------------------------------------------------------------

TEST(Buffer, ScalarRoundTrip) {
  Writer w;
  w.u8(0xAB);
  w.u16(0xCDEF);
  w.u32(0xDEADBEEF);
  w.u64(0x0123456789ABCDEFull);
  w.i64(-42);
  w.f64(3.25);
  w.boolean(true);
  w.boolean(false);

  auto bytes = w.take();
  Reader r(bytes);
  EXPECT_EQ(r.u8(), 0xAB);
  EXPECT_EQ(r.u16(), 0xCDEF);
  EXPECT_EQ(r.u32(), 0xDEADBEEFu);
  EXPECT_EQ(r.u64(), 0x0123456789ABCDEFull);
  EXPECT_EQ(r.i64(), -42);
  EXPECT_DOUBLE_EQ(r.f64(), 3.25);
  EXPECT_TRUE(r.boolean());
  EXPECT_FALSE(r.boolean());
  EXPECT_TRUE(r.finish());
}

TEST(Buffer, LittleEndianLayout) {
  Writer w;
  w.u32(0x01020304);
  auto bytes = w.take();
  ASSERT_EQ(bytes.size(), 4u);
  EXPECT_EQ(bytes[0], 0x04);
  EXPECT_EQ(bytes[3], 0x01);
}

TEST(Buffer, StringRoundTrip) {
  Writer w;
  w.str("hello");
  w.str("");
  auto bytes = w.take();
  Reader r(bytes);
  EXPECT_EQ(r.str(), "hello");
  EXPECT_EQ(r.str(), "");
  EXPECT_TRUE(r.finish());
}

TEST(Buffer, VectorRoundTrip) {
  Writer w;
  std::vector<std::uint32_t> values{1, 2, 3};
  w.vec(values, [](Writer& ww, std::uint32_t v) { ww.u32(v); });
  auto bytes = w.take();
  Reader r(bytes);
  auto out = r.vec<std::uint32_t>([](Reader& rr) { return rr.u32(); });
  EXPECT_EQ(out, values);
  EXPECT_TRUE(r.finish());
}

TEST(Buffer, ReaderUnderflowSticksError) {
  std::vector<std::uint8_t> bytes{1, 2};
  Reader r(bytes);
  EXPECT_EQ(r.u32(), 0u);  // underflow: zero value
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.u8(), 0);  // stays failed
  EXPECT_FALSE(r.finish());
}

TEST(Buffer, ReaderRejectsHostileVectorCount) {
  Writer w;
  w.u32(0xFFFFFFFF);  // claims 4 billion elements
  auto bytes = w.take();
  Reader r(bytes);
  auto out = r.vec<std::uint8_t>([](Reader& rr) { return rr.u8(); });
  EXPECT_TRUE(out.empty());
  EXPECT_FALSE(r.ok());
}

TEST(Buffer, ReaderRejectsOverlongString) {
  Writer w;
  w.u32(100);  // string length 100, but no bytes follow
  auto bytes = w.take();
  Reader r(bytes);
  EXPECT_EQ(r.str(), "");
  EXPECT_FALSE(r.ok());
}

TEST(Buffer, FinishRequiresFullConsumption) {
  Writer w;
  w.u32(1);
  w.u32(2);
  auto bytes = w.take();
  Reader r(bytes);
  r.u32();
  EXPECT_TRUE(r.ok());
  EXPECT_FALSE(r.finish());  // one u32 left unread
}

TEST(Buffer, SkipAndRemaining) {
  std::vector<std::uint8_t> bytes(10);
  Reader r(bytes);
  r.skip(4);
  EXPECT_EQ(r.remaining(), 6u);
  r.skip(7);
  EXPECT_FALSE(r.ok());
}

TEST(Buffer, PatchU32) {
  Writer w;
  w.u32(0);
  w.u8(9);
  w.patch_u32(0, 0xAABBCCDD);
  auto bytes = w.take();
  Reader r(bytes);
  EXPECT_EQ(r.u32(), 0xAABBCCDDu);
}

// --- CRC-32C -----------------------------------------------------------------------

TEST(Checksum, KnownVector) {
  // Standard test vector: crc32c("123456789") = 0xE3069283.
  const char* digits = "123456789";
  std::span<const std::uint8_t> data(
      reinterpret_cast<const std::uint8_t*>(digits), 9);
  EXPECT_EQ(crc32c(data), 0xE3069283u);
}

TEST(Checksum, EmptyInput) {
  EXPECT_EQ(crc32c({}), 0u);
}

TEST(Checksum, IncrementalMatchesOneShot) {
  std::vector<std::uint8_t> data(100);
  util::Rng rng(3);
  for (auto& b : data) b = static_cast<std::uint8_t>(rng.next());
  std::uint32_t state = crc32c_init();
  state = crc32c_update(state, std::span(data).first(37));
  state = crc32c_update(state, std::span(data).subspan(37));
  EXPECT_EQ(crc32c_finish(state), crc32c(data));
}

TEST(Checksum, SensitiveToSingleBit) {
  std::vector<std::uint8_t> data{1, 2, 3, 4};
  const std::uint32_t before = crc32c(data);
  data[2] ^= 0x10;
  EXPECT_NE(crc32c(data), before);
}

// --- Frames -------------------------------------------------------------------------

TEST(Frame, RoundTrip) {
  std::vector<std::uint8_t> payload{1, 2, 3, 4, 5};
  auto bytes = encode_frame(7, payload);
  EXPECT_EQ(bytes.size(), kFrameHeaderSize + payload.size());
  auto result = decode_frame(bytes);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.frame.type, 7);
  // FrameView is zero-copy: the payload span aliases the frame bytes.
  EXPECT_EQ(result.frame.payload.data(), bytes.data() + kFrameHeaderSize);
  EXPECT_TRUE(std::equal(result.frame.payload.begin(),
                         result.frame.payload.end(), payload.begin(),
                         payload.end()));
}

TEST(Frame, VerifyFrameMatchesDecodeFrame) {
  std::vector<std::uint8_t> payload{9, 8, 7};
  auto bytes = encode_frame(11, payload);
  const VerifiedFrame verified = verify_frame(bytes);
  ASSERT_TRUE(verified.ok());
  EXPECT_EQ(verified.type, 11);
  EXPECT_EQ(verified.payload_size, payload.size());

  bytes.back() ^= 0x40;
  EXPECT_EQ(verify_frame(bytes).error, FrameError::kBadChecksum);
}

TEST(Frame, ScratchFramingIsByteIdenticalToEncodeFrame) {
  Writer scratch;
  // Two frames through the same scratch Writer: each must match the
  // allocating encode_frame byte for byte (the golden-trace guarantee for
  // the scratch-buffer encode path).
  const std::vector<std::uint8_t> first{1, 2, 3, 4, 5, 6, 7};
  begin_frame(scratch, 3);
  for (auto b : first) scratch.u8(b);
  auto view = finish_frame(scratch);
  const auto legacy_first = encode_frame(3, first);
  EXPECT_EQ(std::vector<std::uint8_t>(view.begin(), view.end()), legacy_first);

  const std::vector<std::uint8_t> second{42};
  begin_frame(scratch, 9);
  scratch.u8(42);
  view = finish_frame(scratch);
  const auto legacy_second = encode_frame(9, second);
  EXPECT_EQ(std::vector<std::uint8_t>(view.begin(), view.end()),
            legacy_second);

  begin_frame(scratch, 5);
  view = finish_frame(scratch);
  EXPECT_EQ(std::vector<std::uint8_t>(view.begin(), view.end()),
            encode_frame(5, {}));
}

TEST(Frame, EmptyPayload) {
  auto bytes = encode_frame(1, {});
  auto result = decode_frame(bytes);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result.frame.payload.empty());
}

TEST(Frame, RejectsTooShort) {
  std::vector<std::uint8_t> bytes(kFrameHeaderSize - 1);
  EXPECT_EQ(decode_frame(bytes).error, FrameError::kTooShort);
}

TEST(Frame, RejectsBadMagic) {
  std::vector<std::uint8_t> p9{9};
  auto bytes = encode_frame(1, p9);
  bytes[0] ^= 0xFF;
  EXPECT_EQ(decode_frame(bytes).error, FrameError::kBadMagic);
}

TEST(Frame, RejectsBadVersion) {
  std::vector<std::uint8_t> p9{9};
  auto bytes = encode_frame(1, p9);
  bytes[4] = 99;
  EXPECT_EQ(decode_frame(bytes).error, FrameError::kBadVersion);
}

TEST(Frame, RejectsTruncation) {
  std::vector<std::uint8_t> p4{1, 2, 3, 4};
  auto bytes = encode_frame(1, p4);
  bytes.pop_back();
  EXPECT_EQ(decode_frame(bytes).error, FrameError::kLengthMismatch);
}

TEST(Frame, RejectsPayloadCorruption) {
  std::vector<std::uint8_t> p4{1, 2, 3, 4};
  auto bytes = encode_frame(1, p4);
  bytes[kFrameHeaderSize + 1] ^= 0x01;
  EXPECT_EQ(decode_frame(bytes).error, FrameError::kBadChecksum);
}

TEST(Frame, RejectsHeaderCorruption) {
  std::vector<std::uint8_t> p4{1, 2, 3, 4};
  auto bytes = encode_frame(1, p4);
  bytes[6] ^= 0x01;  // flip the type field
  EXPECT_EQ(decode_frame(bytes).error, FrameError::kBadChecksum);
}

// Property sweep: every single-bit flip anywhere in a frame is rejected.
class FrameBitFlip : public ::testing::TestWithParam<std::size_t> {};

TEST_P(FrameBitFlip, AnySingleBitFlipIsRejected) {
  std::vector<std::uint8_t> payload{0xDE, 0xAD, 0xBE, 0xEF, 0x42};
  auto bytes = encode_frame(3, payload);
  const std::size_t bit = GetParam();
  ASSERT_LT(bit / 8, bytes.size());
  bytes[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
  auto result = decode_frame(bytes);
  EXPECT_FALSE(result.ok()) << "bit " << bit << " flip went undetected";
}

INSTANTIATE_TEST_SUITE_P(AllBits, FrameBitFlip,
                         ::testing::Range<std::size_t>(0, (16 + 5) * 8));

// Exhaustive corruption sweep over a real protocol message: flip every byte
// of a framed heartbeat and assert the exact typed FrameError for each
// position. This pins the rejection *reason*, not just the rejection — the
// fabric's corruption injection and the soak invariant both key off it.
class FramedHeartbeatByteFlip : public ::testing::TestWithParam<std::size_t> {
 protected:
  static FrameError expected_error(std::size_t index) {
    if (index < 4) return FrameError::kBadMagic;        // magic
    if (index == 4) return FrameError::kBadVersion;     // version
    if (index >= 8 && index < 12)
      return FrameError::kLengthMismatch;               // length field
    // Reserved byte, type field, CRC field, and payload are all only
    // covered by the checksum.
    return FrameError::kBadChecksum;
  }
};

TEST_P(FramedHeartbeatByteFlip, EveryByteFlipYieldsTheTypedError) {
  proto::Heartbeat hb;
  hb.view = 7;
  hb.seq = 123456;
  auto bytes = proto::to_frame(hb);
  ASSERT_EQ(bytes.size(), kFrameHeaderSize + 16);  // two u64 fields
  const std::size_t index = GetParam();
  ASSERT_LT(index, bytes.size());
  bytes[index] ^= 0xFF;
  const VerifiedFrame verified = verify_frame(bytes);
  EXPECT_EQ(verified.error, expected_error(index))
      << "byte " << index << ": got " << to_string(verified.error);
  // decode_frame must agree with verify_frame everywhere.
  EXPECT_EQ(decode_frame(bytes).error, verified.error);
}

INSTANTIATE_TEST_SUITE_P(AllBytes, FramedHeartbeatByteFlip,
                         ::testing::Range<std::size_t>(0, 16 + 16));

// Fuzz: random byte strings never crash the decoder.
TEST(Frame, FuzzRandomInputNeverCrashes) {
  util::Rng rng(77);
  for (int i = 0; i < 2000; ++i) {
    std::vector<std::uint8_t> junk(rng.below(64));
    for (auto& b : junk) b = static_cast<std::uint8_t>(rng.next());
    auto result = decode_frame(junk);
    // Mostly rejected; acceptance would require a valid CRC by chance.
    (void)result;
  }
}

TEST(Frame, ErrorStrings) {
  EXPECT_EQ(to_string(FrameError::kNone), "none");
  EXPECT_EQ(to_string(FrameError::kBadChecksum), "bad-checksum");
}

}  // namespace
}  // namespace gs::wire
