// Coverage for the small cross-cutting pieces: the logger, enum string
// tables, and health-state semantics.
#include <gtest/gtest.h>

#include <vector>

#include "farm/farm.h"
#include "farm/scenario.h"
#include "gs/adapter_protocol.h"
#include "gs/params.h"
#include "net/adapter.h"
#include "sim/simulator.h"
#include "util/logging.h"

namespace gs {
namespace {

class LoggerFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    auto& logger = util::Logger::instance();
    saved_level_ = logger.level();
    logger.set_level(util::LogLevel::kTrace);
    logger.set_sink([this](util::LogLevel level, std::string_view msg) {
      captured_.emplace_back(level, std::string(msg));
    });
  }

  void TearDown() override {
    auto& logger = util::Logger::instance();
    logger.set_level(saved_level_);
    logger.set_sink(nullptr);
    logger.set_clock(nullptr);
  }

  util::LogLevel saved_level_ = util::LogLevel::kWarn;
  std::vector<std::pair<util::LogLevel, std::string>> captured_;
};

TEST_F(LoggerFixture, SinkReceivesFormattedMessage) {
  GS_LOG(kInfo, "unit") << "value=" << 42;
  ASSERT_EQ(captured_.size(), 1u);
  EXPECT_EQ(captured_[0].first, util::LogLevel::kInfo);
  EXPECT_NE(captured_[0].second.find("unit: value=42"), std::string::npos);
}

TEST_F(LoggerFixture, LevelFiltersBelowThreshold) {
  util::Logger::instance().set_level(util::LogLevel::kWarn);
  GS_LOG(kDebug, "unit") << "hidden";
  GS_LOG(kError, "unit") << "visible";
  ASSERT_EQ(captured_.size(), 1u);
  EXPECT_EQ(captured_[0].first, util::LogLevel::kError);
}

TEST_F(LoggerFixture, SimClockStampsMessages) {
  sim::Simulator sim;
  sim.install_log_clock();
  sim.after(sim::seconds(2), [] { GS_LOG(kInfo, "unit") << "tick"; });
  sim.run();
  ASSERT_EQ(captured_.size(), 1u);
  EXPECT_NE(captured_[0].second.find("t=2"), std::string::npos);
}

TEST_F(LoggerFixture, OffDisablesEverything) {
  util::Logger::instance().set_level(util::LogLevel::kOff);
  GS_LOG(kError, "unit") << "nope";
  EXPECT_TRUE(captured_.empty());
}

TEST(LogLevelNames, Strings) {
  EXPECT_EQ(util::to_string(util::LogLevel::kTrace), "TRACE");
  EXPECT_EQ(util::to_string(util::LogLevel::kError), "ERROR");
  EXPECT_EQ(util::to_string(util::LogLevel::kOff), "OFF");
}

// --- enum string tables --------------------------------------------------------

TEST(EnumStrings, HealthState) {
  EXPECT_EQ(net::to_string(net::HealthState::kUp), "up");
  EXPECT_EQ(net::to_string(net::HealthState::kDown), "down");
  EXPECT_EQ(net::to_string(net::HealthState::kRecvDead), "recv-dead");
  EXPECT_EQ(net::to_string(net::HealthState::kSendDead), "send-dead");
}

TEST(EnumStrings, AdapterState) {
  EXPECT_EQ(proto::to_string(proto::AdapterState::kIdle), "idle");
  EXPECT_EQ(proto::to_string(proto::AdapterState::kBeaconing), "beaconing");
  EXPECT_EQ(proto::to_string(proto::AdapterState::kWaitingForLeader),
            "waiting-for-leader");
  EXPECT_EQ(proto::to_string(proto::AdapterState::kMember), "member");
  EXPECT_EQ(proto::to_string(proto::AdapterState::kLeader), "leader");
}

TEST(EnumStrings, FdKind) {
  EXPECT_STREQ(to_string(proto::FdKind::kUnidirectionalRing), "uni-ring");
  EXPECT_STREQ(to_string(proto::FdKind::kBidirectionalRing), "bi-ring");
  EXPECT_STREQ(to_string(proto::FdKind::kAllToAll), "all-to-all");
  EXPECT_STREQ(to_string(proto::FdKind::kSubgroupRing), "subgroup");
  EXPECT_STREQ(to_string(proto::FdKind::kRandomPing), "rand-ping");
}

// --- health-state semantics ----------------------------------------------------

TEST(HealthSemantics, DirectionalCapabilities) {
  net::Adapter adapter(util::AdapterId(0), util::NodeId(0),
                       util::MacAddress(1));
  EXPECT_TRUE(adapter.can_send());
  EXPECT_TRUE(adapter.can_recv());
  EXPECT_TRUE(adapter.loopback_ok());

  adapter.set_health(net::HealthState::kRecvDead);
  EXPECT_TRUE(adapter.can_send());
  EXPECT_FALSE(adapter.can_recv());
  EXPECT_FALSE(adapter.loopback_ok());

  adapter.set_health(net::HealthState::kSendDead);
  EXPECT_FALSE(adapter.can_send());
  EXPECT_TRUE(adapter.can_recv());
  EXPECT_FALSE(adapter.loopback_ok());

  adapter.set_health(net::HealthState::kDown);
  EXPECT_FALSE(adapter.can_send());
  EXPECT_FALSE(adapter.can_recv());
  EXPECT_FALSE(adapter.loopback_ok());
}

// --- reproducibility ----------------------------------------------------------

// The whole point of the simulated substrate: identical seeds produce
// bit-identical runs — same stabilization instant, same event sequence.
TEST(Determinism, SameSeedSameRun) {
  auto run_once = [](std::uint64_t seed) {
    sim::Simulator sim;
    proto::Params params;
    params.beacon_phase = sim::seconds(2);
    params.amg_stable_wait = sim::seconds(1);
    params.gsc_stable_wait = sim::seconds(2);
    farm::Farm farm(sim, farm::FarmSpec::uniform(8, 2), params, seed);
    proto::EventLog log(farm.event_bus());
    net::ChannelModel lossy;
    lossy.loss_probability = 0.05;  // stochastic path included
    for (util::VlanId vlan : farm.vlans())
      farm.fabric().segment(vlan).set_model(lossy);
    farm.start();
    auto stable = farm::run_until_gsc_stable(farm, sim::seconds(120));
    farm.fail_node(3);
    sim.run_until(sim.now() + sim::seconds(30));
    std::vector<std::pair<proto::FarmEvent::Kind, sim::SimTime>> events;
    for (const auto& e : log) events.emplace_back(e.kind, e.time);
    return std::make_tuple(stable.value_or(-1),
                           farm.fabric().total_frames_sent(), events);
  };
  const auto a = run_once(424242);
  const auto b = run_once(424242);
  EXPECT_EQ(std::get<0>(a), std::get<0>(b));
  EXPECT_EQ(std::get<1>(a), std::get<1>(b));
  EXPECT_EQ(std::get<2>(a), std::get<2>(b));

  const auto c = run_once(424243);
  EXPECT_NE(std::get<1>(a), std::get<1>(c)) << "different seeds should differ";
}

// --- parameter defaults match the paper -------------------------------------------

TEST(ParamDefaults, PaperValues) {
  proto::Params p;
  EXPECT_EQ(p.beacon_phase, sim::seconds(5));      // T_b
  EXPECT_EQ(p.amg_stable_wait, sim::seconds(5));   // T_AMG
  EXPECT_EQ(p.gsc_stable_wait, sim::seconds(15));  // T_GSC
  EXPECT_EQ(p.fd_kind, proto::FdKind::kBidirectionalRing);
  EXPECT_TRUE(p.fd_loopback_test);
  EXPECT_TRUE(p.leader_verify);
  // The paper's observed 1-2s late beacon timer is the modelled default.
  EXPECT_EQ(p.beacon_setup_min, sim::seconds(1));
  EXPECT_EQ(p.beacon_setup_max, sim::seconds(2));
}

}  // namespace
}  // namespace gs
