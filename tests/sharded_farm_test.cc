// ShardedFarm end-to-end tests: a uniform farm partitioned across worker
// threads converges globally (its VLANs all span the shards, so every AMG is
// built from cross-shard traffic), failure detection works across the
// boundary, shards=1 replays the plain Farm byte for byte, fixed-shard-count
// runs are digest-repeatable, and a 25-seed fault/recovery soak holds it all
// under churn.
#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "farm/farm.h"
#include "farm/sharded.h"
#include "obs/spans.h"
#include "obs/trace.h"

namespace gs {
namespace {

proto::Params fast_params() {
  proto::Params p;
  p.beacon_phase = sim::seconds(2);
  p.amg_stable_wait = sim::milliseconds(500);
  p.gsc_stable_wait = sim::seconds(2);
  p.move_window = sim::seconds(3);
  return p;
}

// Steps the set in 1s chunks so convergence is detected soon after it
// happens instead of at the far deadline.
bool run_sharded_until_converged(farm::ShardedFarm& sf, sim::SimTime deadline) {
  while (sf.now() < deadline) {
    sf.run_until(std::min(deadline, sf.now() + sim::seconds(1)));
    if (sf.converged()) return true;
  }
  return sf.converged();
}

TEST(ShardedFarm, UniformFarmConvergesAcrossThreeShards) {
  // 9 nodes round-robin over 3 shards; both VLANs have members on every
  // shard, so every beacon, join, and 2PC round crosses the boundary.
  farm::ShardedFarm sf(farm::FarmSpec::uniform(9, 2), fast_params(), 42, 3);
  EXPECT_EQ(sf.shard_count(), 3u);
  EXPECT_EQ(sf.node_count(), 9u);
  // The admin VLAN spans shards and bounds the epoch at its base latency.
  EXPECT_EQ(sf.shard_set().epoch(), sf.router().max_safe_epoch());
  sf.start();
  EXPECT_TRUE(run_sharded_until_converged(sf, sim::seconds(60)));
  EXPECT_GT(sf.router().frames_forwarded(), 0u);
  sf.shutdown();
}

TEST(ShardedFarm, FailureDetectionCrossesShards) {
  farm::ShardedFarm sf(farm::FarmSpec::uniform(9, 2), fast_params(), 7, 3);
  sf.start();
  ASSERT_TRUE(run_sharded_until_converged(sf, sim::seconds(60)));

  // Node 4 lives on shard 1; its AMG peers on shards 0 and 2 must detect the
  // death remotely and recommit without it.
  ASSERT_EQ(sf.shard_of_node(4), 1u);
  sf.fail_node(4);
  EXPECT_FALSE(sf.converged());  // membership still includes the corpse
  EXPECT_TRUE(run_sharded_until_converged(sf, sf.now() + sim::seconds(60)));

  sf.recover_node(4);
  EXPECT_TRUE(run_sharded_until_converged(sf, sf.now() + sim::seconds(60)));
  sf.shutdown();
}

TEST(ShardedFarm, SingleShardReplaysThePlainFarmByteForByte) {
  const auto spec = farm::FarmSpec::uniform(6, 2);
  const proto::Params params = fast_params();
  constexpr std::uint64_t kSeed = 11;

  farm::ShardedFarm sf(spec, params, kSeed, 1);
  sf.enable_trace_capture();
  sf.start();
  sf.run_until(sim::seconds(10));
  const std::string sharded = obs::shard_trace_jsonl(sf.merged_trace());
  sf.shutdown();

  sim::Simulator sim;
  farm::Farm plain(sim, spec, params, kSeed);
  std::string flat;
  const auto tap = plain.trace_bus().subscribe([&](const obs::TraceRecord& r) {
    flat += obs::to_json(r);
    flat += '\n';
  });
  plain.start();
  // The sharded clock parks on an epoch boundary (half-open windows); the
  // plain run's inclusive deadline matches it at floor - 1.
  sim.run_until(sf.now() - 1);

  EXPECT_GT(flat.size(), 0u);
  EXPECT_EQ(flat, sharded);
}

TEST(ShardedFarm, FixedShardCountDigestIsRepeatable) {
  auto digest_of = [](std::uint64_t seed) {
    farm::ShardedFarm sf(farm::FarmSpec::uniform(8, 2), fast_params(), seed, 2);
    sf.enable_trace_capture();
    sf.start();
    sf.run_until(sim::seconds(15));
    const std::uint64_t digest = sf.trace_digest();
    sf.shutdown();
    return digest;
  };
  const std::uint64_t first = digest_of(3);
  EXPECT_EQ(first, digest_of(3));   // same seed, same shards: exact replay
  EXPECT_NE(first, digest_of(4));   // the digest actually depends on the run
}

// Span accounting must be shard-invariant: a report span opens on the
// leader's shard (kReportSent) and closes on the GSC's (kGscReportApplied),
// so no single shard's tracker could pair it — span_tracker() replays the
// merged (when, shard, seq)-ordered stream instead. The same schedule on 3
// shards and on 1 shard must therefore book identical span counts.
TEST(ShardedFarm, SpanCountsMatchSingleShardRun) {
  auto run = [](std::size_t shards) {
    farm::ShardedFarm sf(farm::FarmSpec::uniform(9, 2), fast_params(), 42,
                         shards);
    sf.enable_span_tracking();
    sf.start();
    sf.run_until(sim::seconds(20));
    sf.fail_node(4);
    sf.run_until(sf.now() + sim::seconds(30));
    sf.recover_node(4);
    sf.run_until(sf.now() + sim::seconds(30));
    obs::SpanTracker& spans = sf.span_tracker();
    std::vector<std::uint64_t> counts;
    for (std::size_t k = 0;
         k < static_cast<std::size_t>(obs::SpanKind::kCount_); ++k) {
      const auto kind = static_cast<obs::SpanKind>(k);
      counts.push_back(spans.opened(kind));
      counts.push_back(spans.closed(kind));
      counts.push_back(spans.abandoned(kind));
      counts.push_back(spans.unmatched_closes(kind));
    }
    sf.shutdown();
    return counts;
  };
  const auto sharded = run(3);
  const auto single = run(1);
  EXPECT_EQ(sharded, single);
  // The schedule actually exercised the books: reports flowed and the
  // injected fault opened (and resolved) detection spans.
  const auto opened_at = [&](obs::SpanKind kind) {
    return sharded[static_cast<std::size_t>(kind) * 4];
  };
  EXPECT_GT(opened_at(obs::SpanKind::kReport), 0u);
  EXPECT_GT(opened_at(obs::SpanKind::kDetection), 0u);
}

TEST(ShardedFarm, HealthSamplingCoversEveryShard) {
  farm::ShardedFarm sf(farm::FarmSpec::uniform(6, 2), fast_params(), 5, 2);
  sf.enable_trace_capture();
  sf.enable_health_sampling(sim::seconds(5));
  sf.start();
  sf.run_until(sim::seconds(20));
  std::size_t samples = 0;
  std::set<std::size_t> shards_sampled;
  for (const auto& r : sf.merged_trace())
    if (r.record.kind == obs::TraceKind::kHealthSample) {
      ++samples;
      shards_sampled.insert(r.shard);
    }
  EXPECT_GT(samples, 0u);
  EXPECT_EQ(shards_sampled.size(), sf.shard_count());
  sf.shutdown();
}

// The determinism + liveness soak the sharded driver must survive: 25 seeds,
// each with a mid-run node death and recovery, all ending converged.
TEST(ShardedFarmSoak, TwentyFiveSeedsWithFaultAndRecovery) {
  for (std::uint64_t seed = 1; seed <= 25; ++seed) {
    farm::ShardedFarm sf(farm::FarmSpec::uniform(4, 1), fast_params(), seed, 2);
    sf.start();
    ASSERT_TRUE(run_sharded_until_converged(sf, sim::seconds(40)))
        << "seed " << seed << " never converged";
    const std::size_t victim = seed % sf.node_count();
    sf.fail_node(victim);
    ASSERT_TRUE(run_sharded_until_converged(sf, sf.now() + sim::seconds(40)))
        << "seed " << seed << " stuck after failing node " << victim;
    sf.recover_node(victim);
    ASSERT_TRUE(run_sharded_until_converged(sf, sf.now() + sim::seconds(40)))
        << "seed " << seed << " stuck after recovering node " << victim;
    sf.shutdown();
  }
}

}  // namespace
}  // namespace gs
