// Unit tests for the simulated network substrate.
#include <gtest/gtest.h>

#include <algorithm>

#include "net/console.h"
#include "net/fabric.h"
#include "obs/trace.h"
#include "wire/frame.h"

namespace gs::net {
namespace {

std::vector<std::uint8_t> test_frame(std::uint16_t type = 1) {
  std::vector<std::uint8_t> payload{1, 2, 3};
  return wire::encode_frame(type, payload);
}

class FabricTest : public ::testing::Test {
 protected:
  FabricTest() : fabric_(sim_, util::Rng(1)) {
    // Deterministic channel for most tests.
    ChannelModel model;
    model.base_latency = sim::microseconds(100);
    model.jitter = 0;
    fabric_.set_default_channel(model);
    sw_ = fabric_.add_switch(16);
  }

  util::AdapterId make(util::NodeId node, util::VlanId vlan,
                       util::IpAddress ip) {
    const util::AdapterId id = fabric_.add_adapter(node);
    fabric_.attach(id, sw_, vlan);
    fabric_.set_adapter_ip(id, ip);
    return id;
  }

  sim::Simulator sim_;
  Fabric fabric_;
  util::SwitchId sw_;
};

TEST_F(FabricTest, UnicastDeliversWithinVlan) {
  auto a = make(util::NodeId(0), util::VlanId(1), util::IpAddress(10, 0, 0, 1));
  auto b = make(util::NodeId(1), util::VlanId(1), util::IpAddress(10, 0, 0, 2));
  (void)a;
  int received = 0;
  fabric_.adapter(b).set_receive_handler([&](const Datagram& d) {
    ++received;
    EXPECT_EQ(d.src, util::IpAddress(10, 0, 0, 1));
    EXPECT_FALSE(d.multicast);
  });
  EXPECT_TRUE(fabric_.send(a, util::IpAddress(10, 0, 0, 2), test_frame()));
  sim_.run();
  EXPECT_EQ(received, 1);
  EXPECT_EQ(sim_.now(), sim::microseconds(100));
}

TEST_F(FabricTest, UnicastDoesNotCrossVlans) {
  auto a = make(util::NodeId(0), util::VlanId(1), util::IpAddress(10, 0, 0, 1));
  auto b = make(util::NodeId(1), util::VlanId(2), util::IpAddress(10, 0, 0, 2));
  int received = 0;
  fabric_.adapter(b).set_receive_handler([&](const Datagram&) { ++received; });
  fabric_.send(a, util::IpAddress(10, 0, 0, 2), test_frame());
  sim_.run();
  EXPECT_EQ(received, 0);
  EXPECT_EQ(fabric_.load(util::VlanId(1)).frames_unreachable, 1u);
}

TEST_F(FabricTest, MulticastReachesAllOnVlanOnce) {
  auto a = make(util::NodeId(0), util::VlanId(1), util::IpAddress(10, 0, 0, 1));
  std::vector<util::AdapterId> others;
  int received = 0;
  for (int i = 2; i <= 5; ++i) {
    auto id = make(util::NodeId(static_cast<std::uint32_t>(i)), util::VlanId(1),
                   util::IpAddress(10, 0, 0, static_cast<std::uint8_t>(i)));
    fabric_.adapter(id).set_receive_handler(
        [&](const Datagram& d) { EXPECT_TRUE(d.multicast); ++received; });
    others.push_back(id);
  }
  // One off-vlan adapter must not hear it.
  auto off = make(util::NodeId(9), util::VlanId(2), util::IpAddress(10, 0, 1, 1));
  fabric_.adapter(off).set_receive_handler([&](const Datagram&) { FAIL(); });

  fabric_.multicast(a, kBeaconGroup, test_frame());
  sim_.run();
  EXPECT_EQ(received, 4);
  // Wire occupancy counts the multicast once.
  EXPECT_EQ(fabric_.load(util::VlanId(1)).frames_sent, 1u);
  EXPECT_EQ(fabric_.load(util::VlanId(1)).frames_delivered, 4u);
}

TEST_F(FabricTest, SenderDoesNotHearOwnMulticast) {
  auto a = make(util::NodeId(0), util::VlanId(1), util::IpAddress(10, 0, 0, 1));
  fabric_.adapter(a).set_receive_handler([&](const Datagram&) { FAIL(); });
  fabric_.multicast(a, kBeaconGroup, test_frame());
  sim_.run();
}

TEST_F(FabricTest, DeadSenderCannotSend) {
  auto a = make(util::NodeId(0), util::VlanId(1), util::IpAddress(10, 0, 0, 1));
  make(util::NodeId(1), util::VlanId(1), util::IpAddress(10, 0, 0, 2));
  fabric_.set_adapter_health(a, HealthState::kDown);
  EXPECT_FALSE(fabric_.send(a, util::IpAddress(10, 0, 0, 2), test_frame()));
}

TEST_F(FabricTest, SendDeadAdapterCannotSendButReceives) {
  auto a = make(util::NodeId(0), util::VlanId(1), util::IpAddress(10, 0, 0, 1));
  auto b = make(util::NodeId(1), util::VlanId(1), util::IpAddress(10, 0, 0, 2));
  fabric_.set_adapter_health(a, HealthState::kSendDead);
  EXPECT_FALSE(fabric_.send(a, util::IpAddress(10, 0, 0, 2), test_frame()));
  int received = 0;
  fabric_.adapter(a).set_receive_handler([&](const Datagram&) { ++received; });
  EXPECT_TRUE(fabric_.send(b, util::IpAddress(10, 0, 0, 1), test_frame()));
  sim_.run();
  EXPECT_EQ(received, 1);
  EXPECT_FALSE(fabric_.adapter(a).loopback_ok());
}

TEST_F(FabricTest, RecvDeadAdapterSendsButCannotReceive) {
  auto a = make(util::NodeId(0), util::VlanId(1), util::IpAddress(10, 0, 0, 1));
  auto b = make(util::NodeId(1), util::VlanId(1), util::IpAddress(10, 0, 0, 2));
  fabric_.set_adapter_health(a, HealthState::kRecvDead);
  fabric_.adapter(a).set_receive_handler([&](const Datagram&) { FAIL(); });
  EXPECT_TRUE(fabric_.send(b, util::IpAddress(10, 0, 0, 1), test_frame()));
  int received = 0;
  fabric_.adapter(b).set_receive_handler([&](const Datagram&) { ++received; });
  EXPECT_TRUE(fabric_.send(a, util::IpAddress(10, 0, 0, 2), test_frame()));
  sim_.run();
  EXPECT_EQ(received, 1);
}

TEST_F(FabricTest, MidFlightFailureDropsFrame) {
  auto a = make(util::NodeId(0), util::VlanId(1), util::IpAddress(10, 0, 0, 1));
  auto b = make(util::NodeId(1), util::VlanId(1), util::IpAddress(10, 0, 0, 2));
  fabric_.adapter(b).set_receive_handler([&](const Datagram&) { FAIL(); });
  fabric_.send(a, util::IpAddress(10, 0, 0, 2), test_frame());
  // Kill the receiver while the frame is in flight.
  fabric_.set_adapter_health(b, HealthState::kDown);
  sim_.run();
}

TEST_F(FabricTest, SwitchFailureDisconnectsVlan) {
  auto a = make(util::NodeId(0), util::VlanId(1), util::IpAddress(10, 0, 0, 1));
  auto b = make(util::NodeId(1), util::VlanId(1), util::IpAddress(10, 0, 0, 2));
  fabric_.fail_switch(sw_);
  EXPECT_FALSE(fabric_.vlan_of(a).valid());
  EXPECT_FALSE(fabric_.reachable(a, b));
  EXPECT_FALSE(fabric_.send(a, util::IpAddress(10, 0, 0, 2), test_frame()));
  fabric_.recover_switch(sw_);
  EXPECT_TRUE(fabric_.reachable(a, b));
}

TEST_F(FabricTest, PartitionBlocksAcrossHealRestores) {
  auto a = make(util::NodeId(0), util::VlanId(1), util::IpAddress(10, 0, 0, 1));
  auto b = make(util::NodeId(1), util::VlanId(1), util::IpAddress(10, 0, 0, 2));
  fabric_.partition_vlan(util::VlanId(1), {{a}, {b}});
  EXPECT_FALSE(fabric_.reachable(a, b));
  int received = 0;
  fabric_.adapter(b).set_receive_handler([&](const Datagram&) { ++received; });
  fabric_.send(a, util::IpAddress(10, 0, 0, 2), test_frame());
  sim_.run();
  EXPECT_EQ(received, 0);
  fabric_.heal_vlan(util::VlanId(1));
  EXPECT_TRUE(fabric_.reachable(a, b));
  fabric_.send(a, util::IpAddress(10, 0, 0, 2), test_frame());
  sim_.run();
  EXPECT_EQ(received, 1);
}

TEST_F(FabricTest, VlanMoveRehomesAdapter) {
  auto a = make(util::NodeId(0), util::VlanId(1), util::IpAddress(10, 0, 0, 1));
  EXPECT_EQ(fabric_.vlan_of(a), util::VlanId(1));
  const auto& adapter = fabric_.adapter(a);
  fabric_.set_port_vlan(adapter.attached_switch(), adapter.attached_port(),
                        util::VlanId(7));
  EXPECT_EQ(fabric_.vlan_of(a), util::VlanId(7));
  auto in7 = fabric_.adapters_in_vlan(util::VlanId(7));
  ASSERT_EQ(in7.size(), 1u);
  EXPECT_EQ(in7[0], a);
  EXPECT_TRUE(fabric_.adapters_in_vlan(util::VlanId(1)).empty());
}

TEST_F(FabricTest, LossySegmentDropsFraction) {
  ChannelModel lossy;
  lossy.loss_probability = 0.5;
  lossy.jitter = 0;
  auto a = make(util::NodeId(0), util::VlanId(1), util::IpAddress(10, 0, 0, 1));
  auto b = make(util::NodeId(1), util::VlanId(1), util::IpAddress(10, 0, 0, 2));
  fabric_.segment(util::VlanId(1)).set_model(lossy);
  int received = 0;
  fabric_.adapter(b).set_receive_handler([&](const Datagram&) { ++received; });
  for (int i = 0; i < 1000; ++i)
    fabric_.send(a, util::IpAddress(10, 0, 0, 2), test_frame());
  sim_.run();
  EXPECT_GT(received, 400);
  EXPECT_LT(received, 600);
  const auto& load = fabric_.load(util::VlanId(1));
  EXPECT_EQ(load.frames_lost + load.frames_delivered, 1000u);
}

TEST_F(FabricTest, IpReassignmentUpdatesLookup) {
  auto a = make(util::NodeId(0), util::VlanId(1), util::IpAddress(10, 0, 0, 1));
  auto b = make(util::NodeId(1), util::VlanId(1), util::IpAddress(10, 0, 0, 2));
  (void)b;
  fabric_.set_adapter_ip(a, util::IpAddress(10, 0, 0, 9));
  EXPECT_FALSE(
      fabric_.find_by_ip(util::VlanId(1), util::IpAddress(10, 0, 0, 1)));
  auto found = fabric_.find_by_ip(util::VlanId(1), util::IpAddress(10, 0, 0, 9));
  ASSERT_TRUE(found.has_value());
  EXPECT_EQ(*found, a);
}

TEST_F(FabricTest, NodeFailureKillsAllItsAdapters) {
  auto a1 = make(util::NodeId(5), util::VlanId(1), util::IpAddress(10, 0, 0, 1));
  auto a2 = make(util::NodeId(5), util::VlanId(2), util::IpAddress(10, 0, 1, 1));
  fabric_.fail_node(util::NodeId(5));
  EXPECT_EQ(fabric_.adapter(a1).health(), HealthState::kDown);
  EXPECT_EQ(fabric_.adapter(a2).health(), HealthState::kDown);
  fabric_.recover_node(util::NodeId(5));
  EXPECT_EQ(fabric_.adapter(a1).health(), HealthState::kUp);
}

TEST_F(FabricTest, FrameTypeAccounting) {
  auto a = make(util::NodeId(0), util::VlanId(1), util::IpAddress(10, 0, 0, 1));
  make(util::NodeId(1), util::VlanId(1), util::IpAddress(10, 0, 0, 2));
  fabric_.send(a, util::IpAddress(10, 0, 0, 2), test_frame(6));
  fabric_.send(a, util::IpAddress(10, 0, 0, 2), test_frame(6));
  fabric_.multicast(a, kBeaconGroup, test_frame(1));
  EXPECT_EQ(fabric_.frames_by_type().at(6), 2u);
  EXPECT_EQ(fabric_.frames_by_type().at(1), 1u);
  EXPECT_EQ(fabric_.total_frames_sent(), 3u);
}

TEST_F(FabricTest, MulticastCountsDeadSwitchReceiversUnreachable) {
  // Receivers stranded behind a failed switch must show up in
  // frames_unreachable, exactly as the unicast path counts them — otherwise
  // multicast and unicast load accounting disagree.
  auto a = make(util::NodeId(0), util::VlanId(1), util::IpAddress(10, 0, 0, 1));
  auto sw2 = fabric_.add_switch(4);
  std::uint64_t stranded = 0;
  for (int i = 2; i <= 4; ++i) {
    auto id = fabric_.add_adapter(util::NodeId(static_cast<std::uint32_t>(i)));
    fabric_.attach(id, sw2, util::VlanId(1));
    fabric_.set_adapter_ip(id,
                           util::IpAddress(10, 0, 0, static_cast<std::uint8_t>(i)));
    fabric_.adapter(id).set_receive_handler([](const Datagram&) { FAIL(); });
    ++stranded;
  }
  fabric_.fail_switch(sw2);

  fabric_.multicast(a, kBeaconGroup, test_frame());
  sim_.run();
  EXPECT_EQ(fabric_.load(util::VlanId(1)).frames_unreachable, stranded);
  EXPECT_EQ(fabric_.load(util::VlanId(1)).frames_delivered, 0u);

  // The unicast path agrees: same receiver, same verdict.
  fabric_.send(a, util::IpAddress(10, 0, 0, 2), test_frame());
  sim_.run();
  EXPECT_EQ(fabric_.load(util::VlanId(1)).frames_unreachable, stranded + 1);
}

TEST_F(FabricTest, MulticastCountsPartitionedReceiversUnreachable) {
  auto a = make(util::NodeId(0), util::VlanId(1), util::IpAddress(10, 0, 0, 1));
  auto b = make(util::NodeId(1), util::VlanId(1), util::IpAddress(10, 0, 0, 2));
  auto c = make(util::NodeId(2), util::VlanId(1), util::IpAddress(10, 0, 0, 3));
  int received = 0;
  fabric_.adapter(b).set_receive_handler([&](const Datagram&) { ++received; });
  fabric_.adapter(c).set_receive_handler([](const Datagram&) { FAIL(); });
  fabric_.partition_vlan(util::VlanId(1), {{a, b}, {c}});
  fabric_.multicast(a, kBeaconGroup, test_frame());
  sim_.run();
  EXPECT_EQ(received, 1);
  EXPECT_EQ(fabric_.load(util::VlanId(1)).frames_unreachable, 1u);
  EXPECT_EQ(fabric_.load(util::VlanId(1)).frames_delivered, 1u);
}

TEST_F(FabricTest, MulticastIgnoresMembersRewiredToAnotherVlan) {
  auto a = make(util::NodeId(0), util::VlanId(1), util::IpAddress(10, 0, 0, 1));
  auto b = make(util::NodeId(1), util::VlanId(1), util::IpAddress(10, 0, 0, 2));
  const auto& adapter = fabric_.adapter(b);
  fabric_.set_port_vlan(adapter.attached_switch(), adapter.attached_port(),
                        util::VlanId(7));
  fabric_.adapter(b).set_receive_handler([](const Datagram&) { FAIL(); });
  fabric_.multicast(a, kBeaconGroup, test_frame());
  sim_.run();
  // A rewired member is out of scope entirely: not delivered, not counted.
  EXPECT_EQ(fabric_.load(util::VlanId(1)).frames_unreachable, 0u);
}

TEST_F(FabricTest, ResetLoadAccountingKeepsVlanEntriesAndReferences) {
  auto a = make(util::NodeId(0), util::VlanId(1), util::IpAddress(10, 0, 0, 1));
  make(util::NodeId(1), util::VlanId(1), util::IpAddress(10, 0, 0, 2));
  fabric_.send(a, util::IpAddress(10, 0, 0, 2), test_frame());
  sim_.run();

  const SegmentLoad& ref = fabric_.load(util::VlanId(1));
  EXPECT_EQ(ref.frames_sent, 1u);
  fabric_.reset_load_accounting();
  // Counters are zeroed in place: the reference stays valid and reads zero.
  EXPECT_EQ(ref.frames_sent, 0u);
  EXPECT_EQ(ref.frames_delivered, 0u);
  EXPECT_EQ(&fabric_.load(util::VlanId(1)), &ref);
  EXPECT_EQ(fabric_.total_frames_sent(), 0u);
}

TEST_F(FabricTest, LoadSamplingPublishesQuietVlansAfterReset) {
  auto a = make(util::NodeId(0), util::VlanId(1), util::IpAddress(10, 0, 0, 1));
  make(util::NodeId(1), util::VlanId(1), util::IpAddress(10, 0, 0, 2));
  obs::TraceBus bus;
  obs::Recorder<obs::TraceRecord> samples(
      bus, obs::trace_mask({obs::TraceKind::kWireSample}));
  fabric_.set_trace(&bus);
  fabric_.enable_load_sampling(sim::milliseconds(10));

  fabric_.send(a, util::IpAddress(10, 0, 0, 2), test_frame());
  sim_.run_until(sim::milliseconds(15));
  const std::size_t before = samples.size();
  EXPECT_GT(before, 0u);

  // After a reset the VLAN goes quiet — samples must keep flowing, now
  // reporting zeroes, instead of leaving gaps in the telemetry stream.
  fabric_.reset_load_accounting();
  sim_.run_until(sim::milliseconds(35));
  ASSERT_GT(samples.size(), before);
  const obs::TraceRecord& last = samples.records().back();
  EXPECT_EQ(last.vlan, util::VlanId(1));
  EXPECT_EQ(last.a, 0u);  // frames_sent zeroed in place
}

TEST_F(FabricTest, FindByIpDuplicateResolvesToLowestAdapterId) {
  // Duplicate IPs are a misconfiguration the verifier must express; the
  // resolution order must not depend on assignment order or replays drift.
  auto low = make(util::NodeId(0), util::VlanId(1), util::IpAddress(10, 0, 0, 7));
  auto high = fabric_.add_adapter(util::NodeId(1));
  fabric_.attach(high, sw_, util::VlanId(1));
  fabric_.set_adapter_ip(high, util::IpAddress(10, 0, 0, 9));
  // Assign the duplicate on the higher id first: insertion order would pick
  // `high`, the deterministic rule must still pick `low`.
  fabric_.set_adapter_ip(low, util::IpAddress(10, 0, 0, 9));
  auto found = fabric_.find_by_ip(util::VlanId(1), util::IpAddress(10, 0, 0, 9));
  ASSERT_TRUE(found.has_value());
  EXPECT_EQ(*found, std::min(low, high));

  // The winner leaving the VLAN falls back to the higher id.
  const auto& adapter = fabric_.adapter(std::min(low, high));
  fabric_.set_port_vlan(adapter.attached_switch(), adapter.attached_port(),
                        util::VlanId(2));
  found = fabric_.find_by_ip(util::VlanId(1), util::IpAddress(10, 0, 0, 9));
  ASSERT_TRUE(found.has_value());
  EXPECT_EQ(*found, std::max(low, high));
}

TEST_F(FabricTest, VlanIndexStaysCoherentThroughTopologyChurn) {
  std::vector<util::AdapterId> ids;
  for (int i = 1; i <= 6; ++i)
    ids.push_back(make(util::NodeId(static_cast<std::uint32_t>(i)),
                       util::VlanId(static_cast<std::uint32_t>(1 + (i % 2))),
                       util::IpAddress(10, 0, 0, static_cast<std::uint8_t>(i))));
  EXPECT_TRUE(fabric_.vlan_index_consistent());
  EXPECT_EQ(fabric_.vlan_members(util::VlanId(1)).size(), 3u);
  EXPECT_EQ(fabric_.vlan_members(util::VlanId(2)).size(), 3u);

  // Moves, switch failure/recovery, node failure: wiring index unaffected
  // by liveness, updated by moves, always sorted.
  const auto& a0 = fabric_.adapter(ids[0]);
  fabric_.set_port_vlan(a0.attached_switch(), a0.attached_port(),
                        util::VlanId(1));
  EXPECT_TRUE(fabric_.vlan_index_consistent());
  EXPECT_EQ(fabric_.vlan_members(util::VlanId(1)).size(), 4u);
  fabric_.fail_switch(sw_);
  EXPECT_TRUE(fabric_.vlan_index_consistent());
  EXPECT_EQ(fabric_.vlan_members(util::VlanId(1)).size(), 4u);
  EXPECT_TRUE(fabric_.adapters_in_vlan(util::VlanId(1)).empty());  // liveness
  fabric_.recover_switch(sw_);
  fabric_.fail_node(util::NodeId(1));
  EXPECT_TRUE(fabric_.vlan_index_consistent());
  const auto& members = fabric_.vlan_members(util::VlanId(1));
  EXPECT_TRUE(std::is_sorted(members.begin(), members.end()));
  EXPECT_EQ(fabric_.adapters_in_vlan(util::VlanId(1)).size(), 4u);
}

TEST_F(FabricTest, MulticastPayloadIsSharedAcrossReceivers) {
  auto a = make(util::NodeId(0), util::VlanId(1), util::IpAddress(10, 0, 0, 1));
  std::vector<Payload> seen;
  for (int i = 2; i <= 4; ++i) {
    auto id = make(util::NodeId(static_cast<std::uint32_t>(i)), util::VlanId(1),
                   util::IpAddress(10, 0, 0, static_cast<std::uint8_t>(i)));
    fabric_.adapter(id).set_receive_handler(
        [&](const Datagram& d) { seen.push_back(d.payload); });
  }
  fabric_.multicast(a, kBeaconGroup, test_frame());
  sim_.run();
  ASSERT_EQ(seen.size(), 3u);
  // One frame allocation regardless of fan-out: all receivers observe the
  // same buffer.
  EXPECT_EQ(seen[0].identity(), seen[1].identity());
  EXPECT_EQ(seen[1].identity(), seen[2].identity());
}

TEST_F(FabricTest, SwitchPortExhaustionAllocationFails) {
  Fabric small(sim_, util::Rng(2));
  auto sw = small.add_switch(1);
  auto a = small.add_adapter(util::NodeId(0));
  small.attach(a, sw, util::VlanId(1));
  EXPECT_FALSE(small.nic_switch(sw).free_port().has_value());
}

// --- SwitchConsole ---------------------------------------------------------------

TEST_F(FabricTest, ConsoleWalkAndSet) {
  auto a = make(util::NodeId(0), util::VlanId(1), util::IpAddress(10, 0, 0, 1));
  SwitchConsole console(fabric_);
  auto ports = console.walk_ports(sw_);
  ASSERT_TRUE(ports.has_value());
  EXPECT_EQ((*ports)[0].adapter, a);
  EXPECT_EQ((*ports)[0].vlan, util::VlanId(1));

  EXPECT_TRUE(console.set_port_vlan(sw_, util::PortId(0), util::VlanId(9)));
  EXPECT_EQ(fabric_.vlan_of(a), util::VlanId(9));
  EXPECT_EQ(console.set_operations(), 1u);
  EXPECT_EQ(console.get_port_vlan(sw_, util::PortId(0)), util::VlanId(9));
}

TEST_F(FabricTest, ConsoleUnreachableWhenGateDenies) {
  SwitchConsole console(fabric_);
  console.set_access_check([] { return false; });
  EXPECT_FALSE(console.walk_ports(sw_).has_value());
  EXPECT_FALSE(console.set_port_vlan(sw_, util::PortId(0), util::VlanId(9)));
}

TEST_F(FabricTest, ConsoleFailsOnDeadSwitch) {
  SwitchConsole console(fabric_);
  fabric_.fail_switch(sw_);
  EXPECT_FALSE(console.walk_ports(sw_).has_value());
  EXPECT_FALSE(console.set_port_vlan(sw_, util::PortId(0), util::VlanId(9)));
}

// --- Segment partition mapping ------------------------------------------------------

TEST(Segment, UnlistedAdaptersShareDefaultPart) {
  Segment seg(util::VlanId(1), ChannelModel{}, util::Rng(1));
  seg.partition({{util::AdapterId(1)}});
  // Adapter 2 and 3 are unlisted: both in part 0, connected to each other
  // but not to adapter 1.
  EXPECT_TRUE(seg.connected(util::AdapterId(2), util::AdapterId(3)));
  EXPECT_FALSE(seg.connected(util::AdapterId(1), util::AdapterId(2)));
  seg.heal();
  EXPECT_TRUE(seg.connected(util::AdapterId(1), util::AdapterId(2)));
}

}  // namespace
}  // namespace gs::net
