// Decode-once codec path coverage: the shared verify/decode cache on
// net::Payload, fault-injected corruption staying isolated from the shared
// cache, the cache on/off determinism pin (byte-identical traces), the soak
// codec invariant, and the zero-allocation contract for steady-state
// heartbeat encode+decode.
//
// This binary overrides global operator new/delete with counting shims so
// the allocation test can assert "zero heap traffic" directly; the counters
// are armed only inside the measured window, so the rest of the suite is
// unaffected.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <new>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "farm/farm.h"
#include "farm/scenario.h"
#include "gs/messages.h"
#include "net/fabric.h"
#include "net/payload.h"
#include "obs/jsonl_sink.h"
#include "obs/trace.h"
#include "sim/simulator.h"
#include "soak/invariants.h"
#include "wire/frame.h"

namespace {
bool g_count_allocs = false;
std::uint64_t g_allocs = 0;
}  // namespace

// The shims below intentionally pair `new` with std::free (they forward to
// malloc); GCC's whole-program new/delete matcher cannot see that.
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"

void* operator new(std::size_t size) {
  if (g_count_allocs) ++g_allocs;
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace gs {
namespace {

proto::Heartbeat test_heartbeat() {
  proto::Heartbeat hb;
  hb.view = 7;
  hb.seq = 123456;
  return hb;
}

// --- shared decode cache -----------------------------------------------------

TEST(PayloadCache, VerifyAndDecodeAreSharedAcrossHandles) {
  const net::Payload p = net::Payload::wrap(proto::to_frame(test_heartbeat()));
  const net::Payload q = p;  // a second receiver's handle to the same frame
  ASSERT_EQ(p.identity(), q.identity());

  ASSERT_TRUE(p.verified().ok());
  EXPECT_EQ(p.verified().type,
            static_cast<std::uint16_t>(proto::MsgType::kHeartbeat));

  const proto::FrameRef ref_p(p.frame_payload(), &p);
  const proto::FrameRef ref_q(q.frame_payload(), &q);
  std::optional<proto::Heartbeat> scratch_p, scratch_q;
  const proto::Heartbeat* a = ref_p.get<proto::Heartbeat>(scratch_p);
  const proto::Heartbeat* b = ref_q.get<proto::Heartbeat>(scratch_q);
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  // Both receivers read the one cached decode, not private scratch copies.
  EXPECT_EQ(a, b);
  EXPECT_FALSE(scratch_p.has_value());
  EXPECT_FALSE(scratch_q.has_value());
  EXPECT_EQ(a->seq, 123456u);
}

TEST(PayloadCache, CorruptedCopyNeitherReusesNorPoisonsSharedCache) {
  const std::vector<std::uint8_t> clean_bytes =
      proto::to_frame(test_heartbeat());
  const net::Payload clean = net::Payload::copy_of(clean_bytes);

  // The fault-injection contract: a corrupted delivery is a *fresh* payload.
  std::vector<std::uint8_t> flipped = clean_bytes;
  flipped[wire::kFrameHeaderSize] ^= 0xFF;  // first body byte
  const net::Payload corrupt = net::Payload::wrap(std::move(flipped));
  ASSERT_NE(clean.identity(), corrupt.identity());

  // Corrupted copy fails verification in its own cache slot...
  EXPECT_FALSE(corrupt.verified().ok());
  EXPECT_EQ(corrupt.verified().error, wire::FrameError::kBadChecksum);
  // ...while the shared original still verifies and decodes.
  ASSERT_TRUE(clean.verified().ok());
  const proto::FrameRef ref(clean.frame_payload(), &clean);
  std::optional<proto::Heartbeat> scratch;
  const proto::Heartbeat* msg = ref.get<proto::Heartbeat>(scratch);
  ASSERT_NE(msg, nullptr);
  EXPECT_EQ(msg->view, 7u);
  EXPECT_EQ(clean.decode_slot()->state(), net::DecodeSlot::State::kDecoded);
  EXPECT_EQ(corrupt.decode_slot()->state(), net::DecodeSlot::State::kEmpty);
}

TEST(PayloadCache, DisabledCacheLeavesRepUntouched) {
  const net::Payload p = net::Payload::wrap(proto::to_frame(test_heartbeat()));
  net::Payload::set_cache_enabled(false);
  EXPECT_TRUE(p.verified().ok());
  const proto::FrameRef ref(p.frame_payload(), &p);
  std::optional<proto::Heartbeat> scratch;
  const proto::Heartbeat* msg = ref.get<proto::Heartbeat>(scratch);
  ASSERT_NE(msg, nullptr);
  // Uncached mode decodes into the caller's scratch and never warms the rep.
  EXPECT_TRUE(scratch.has_value());
  EXPECT_EQ(msg, &*scratch);
  EXPECT_EQ(p.decode_slot()->state(), net::DecodeSlot::State::kEmpty);
  net::Payload::set_cache_enabled(true);
  // Re-enabling finds the rep cold and fills it normally.
  ASSERT_TRUE(p.verified().ok());
  std::optional<proto::Heartbeat> scratch2;
  EXPECT_NE(ref.get<proto::Heartbeat>(scratch2), nullptr);
  EXPECT_FALSE(scratch2.has_value());
  EXPECT_EQ(p.decode_slot()->state(), net::DecodeSlot::State::kDecoded);
}

TEST(PayloadCache, FailedDecodeIsCachedPerPayloadNotPerType) {
  // A frame whose envelope is fine but whose heartbeat body is truncated:
  // typed decode fails, and the failure itself is cached for that type.
  const std::vector<std::uint8_t> body{1, 2, 3};
  const net::Payload p = net::Payload::wrap(wire::encode_frame(
      static_cast<std::uint16_t>(proto::MsgType::kHeartbeat), body));
  ASSERT_TRUE(p.verified().ok());
  const proto::FrameRef ref(p.frame_payload(), &p);
  std::optional<proto::Heartbeat> scratch;
  EXPECT_EQ(ref.get<proto::Heartbeat>(scratch), nullptr);
  EXPECT_EQ(p.decode_slot()->state(), net::DecodeSlot::State::kFailed);
  // Second receiver of the same payload hits the cached failure.
  std::optional<proto::Heartbeat> scratch2;
  EXPECT_EQ(ref.get<proto::Heartbeat>(scratch2), nullptr);
  EXPECT_FALSE(scratch2.has_value());
}

// --- fabric corruption injection ---------------------------------------------

class CorruptionTest : public ::testing::Test {
 protected:
  CorruptionTest() : fabric_(sim_, util::Rng(1)) {
    net::ChannelModel model;
    model.base_latency = sim::microseconds(100);
    model.jitter = 0;
    fabric_.set_default_channel(model);
    sw_ = fabric_.add_switch(16);
  }

  util::AdapterId make(std::uint8_t host) {
    const util::AdapterId id =
        fabric_.add_adapter(util::NodeId(host));
    fabric_.attach(id, sw_, util::VlanId(1));
    fabric_.set_adapter_ip(id, util::IpAddress(10, 0, 0, host));
    return id;
  }

  void set_corruption(double probability) {
    net::ChannelModel model = fabric_.segment(util::VlanId(1)).model();
    model.corrupt_probability = probability;
    fabric_.segment(util::VlanId(1)).set_model(model);
  }

  sim::Simulator sim_;
  net::Fabric fabric_;
  util::SwitchId sw_;
};

TEST_F(CorruptionTest, UnicastCorruptionFlipsExactlyOneByte) {
  auto a = make(1);
  auto b = make(2);
  (void)b;
  set_corruption(1.0);
  const std::vector<std::uint8_t> sent = proto::to_frame(test_heartbeat());
  std::optional<net::Payload> seen;
  fabric_.adapter(make(3)).set_receive_handler([](const net::Datagram&) {});
  fabric_.adapter(b).set_receive_handler(
      [&](const net::Datagram& d) { seen = d.payload; });
  ASSERT_TRUE(fabric_.send(a, util::IpAddress(10, 0, 0, 2), sent));
  sim_.run();
  ASSERT_TRUE(seen.has_value());
  EXPECT_EQ(fabric_.load(util::VlanId(1)).frames_corrupted, 1u);
  ASSERT_EQ(seen->size(), sent.size());
  std::size_t diffs = 0;
  for (std::size_t i = 0; i < sent.size(); ++i)
    if (seen->data()[i] != sent[i]) ++diffs;
  EXPECT_EQ(diffs, 1u);
  EXPECT_FALSE(seen->verified().ok());
}

TEST_F(CorruptionTest, MulticastCorruptionIsolatesVictimsFromSharedPayload) {
  auto sender = make(1);
  std::vector<net::Payload> seen;
  for (std::uint8_t host = 2; host <= 9; ++host) {
    fabric_.adapter(make(host)).set_receive_handler(
        [&](const net::Datagram& d) { seen.push_back(d.payload); });
  }
  set_corruption(0.5);
  // With p=0.5 over 8 receivers a few multicasts are guaranteed (for this
  // seed, and overwhelmingly for any) to produce both clean and corrupted
  // deliveries.
  std::uint64_t clean = 0, corrupt = 0;
  for (int round = 0; round < 4; ++round) {
    seen.clear();
    fabric_.multicast(sender, net::kBeaconGroup,
                      proto::to_frame(test_heartbeat()));
    sim_.run();
    ASSERT_EQ(seen.size(), 8u);
    const void* shared_identity = nullptr;
    for (const net::Payload& p : seen) {
      if (p.verified().ok()) {
        ++clean;
        // Every clean receiver shares the one parked payload (and its cache).
        if (shared_identity == nullptr) shared_identity = p.identity();
        EXPECT_EQ(p.identity(), shared_identity);
        const proto::FrameRef ref(p.frame_payload(), &p);
        std::optional<proto::Heartbeat> scratch;
        EXPECT_NE(ref.get<proto::Heartbeat>(scratch), nullptr);
      } else {
        ++corrupt;
        // Corrupted deliveries ride fresh payloads: distinct identity, own
        // (failed) verification, shared cache untouched.
        for (const net::Payload& other : seen) {
          if (other.verified().ok()) {
            EXPECT_NE(p.identity(), other.identity());
          }
        }
      }
    }
  }
  EXPECT_GT(clean, 0u);
  EXPECT_GT(corrupt, 0u);
  EXPECT_EQ(fabric_.load(util::VlanId(1)).frames_corrupted, corrupt);
}

// --- farm-level: stats surfacing and the soak codec invariant ----------------

proto::Params fast_params() {
  proto::Params params;
  params.beacon_phase = sim::seconds(2);
  params.amg_stable_wait = sim::seconds(1);
  params.gsc_stable_wait = sim::seconds(3);
  return params;
}

TEST(CodecFarm, CleanFarmDecodesWithoutDropsAndPassesInvariant) {
  sim::Simulator sim;
  farm::Farm farm(sim, farm::FarmSpec::uniform(6, 1), fast_params(),
                  /*seed=*/606);
  farm.start();
  ASSERT_TRUE(farm::run_until_converged(farm, sim::seconds(120)));

  const auto snapshot = farm.health_snapshot();
  ASSERT_TRUE(snapshot.codec.has_value());
  std::uint64_t decoded = 0;
  bool saw_heartbeat = false;
  for (const auto& [type, count] : snapshot.codec->decoded) {
    decoded += count;
    if (type == "heartbeat") saw_heartbeat = true;
  }
  EXPECT_GT(decoded, 0u);
  EXPECT_TRUE(saw_heartbeat);
  EXPECT_TRUE(snapshot.codec->dropped.empty())
      << "clean farm dropped frames";

  // Invariant 6 (codec) passes on a clean farm.
  const auto violations = soak::check_farm_invariants(farm);
  EXPECT_TRUE(violations.empty()) << soak::format_violations(violations);
}

TEST(CodecFarm, InjectedCorruptionShowsUpAsTypedDrops) {
  sim::Simulator sim;
  farm::Farm farm(sim, farm::FarmSpec::uniform(6, 1), fast_params(),
                  /*seed=*/607);
  farm.start();
  ASSERT_TRUE(farm::run_until_converged(farm, sim::seconds(120)));

  net::ChannelModel noisy = farm.fabric().segment(farm.vlans()[0]).model();
  noisy.corrupt_probability = 0.2;
  for (util::VlanId vlan : farm.vlans())
    farm.fabric().segment(vlan).set_model(noisy);
  sim.run_until(sim.now() + sim::seconds(30));

  std::uint64_t corrupted = 0;
  for (util::VlanId vlan : farm.vlans())
    corrupted += farm.fabric().load(vlan).frames_corrupted;
  ASSERT_GT(corrupted, 0u);

  std::uint64_t dropped = 0;
  for (std::size_t n = 0; n < farm.node_count(); ++n)
    dropped += farm.daemon(n).frames_dropped();
  EXPECT_GT(dropped, 0u);
  EXPECT_LE(dropped, corrupted);

  const auto snapshot = farm.health_snapshot();
  ASSERT_TRUE(snapshot.codec.has_value());
  EXPECT_FALSE(snapshot.codec->dropped.empty());
  // Drops under injected corruption do not trip the codec invariant.
  for (const auto& v : soak::check_farm_invariants(farm))
    EXPECT_NE(v.kind, soak::Violation::Kind::kCodec)
        << soak::format_violations({v});
}

// --- determinism pin ---------------------------------------------------------

// The golden-trace guarantee for the decode-once path: a seeded farm run
// records byte-identical traces whether the verify/decode cache is enabled
// or force-disabled, because caching only memoises work — it never changes
// what any receiver observes.
TEST(CodecDeterminism, CacheOnAndOffProduceByteIdenticalTraces) {
  constexpr std::uint64_t kMask =
      obs::kPhaseMask | obs::kFailureMask | obs::kReportMask;
  auto run = [&](bool cache_enabled, const std::string& path) {
    net::Payload::set_cache_enabled(cache_enabled);
    sim::Simulator sim;
    farm::Farm farm(sim, farm::FarmSpec::uniform(6, 1), fast_params(),
                    /*seed=*/909);
    obs::JsonlSink sink;
    ASSERT_TRUE(sink.open(path));
    auto tap = sink.tap(farm.trace_bus(), kMask);
    farm.start();
    ASSERT_TRUE(farm::run_until_converged(farm, sim::seconds(120)));
    farm.fail_node(2);
    sim.run_until(sim.now() + sim::seconds(30));
    net::Payload::set_cache_enabled(true);
  };
  const std::string cached = ::testing::TempDir() + "/codec_cached.jsonl";
  const std::string uncached = ::testing::TempDir() + "/codec_uncached.jsonl";
  run(true, cached);
  run(false, uncached);
  std::ifstream a(cached), b(uncached);
  std::stringstream as, bs;
  as << a.rdbuf();
  bs << b.rdbuf();
  ASSERT_GT(as.str().size(), 0u);
  EXPECT_EQ(as.str(), bs.str())
      << "decode cache changed observable farm behavior";
  std::remove(cached.c_str());
  std::remove(uncached.c_str());
}

// --- allocation contract -----------------------------------------------------

// Steady-state heartbeat traffic — encode into a warmed scratch Writer,
// snapshot into a pooled payload, verify the envelope, decode through the
// cache — must not touch the heap at all.
TEST(CodecAllocations, SteadyStateHeartbeatPathIsAllocationFree) {
  wire::Writer scratch;
  proto::Heartbeat hb = test_heartbeat();
  // Warm: grow the scratch Writer and the payload rep pool.
  for (int i = 0; i < 16; ++i) {
    const net::Payload p =
        net::Payload::copy_of(proto::build_frame(scratch, hb));
    ASSERT_TRUE(p.verified().ok());
    const proto::FrameRef ref(p.frame_payload(), &p);
    std::optional<proto::Heartbeat> s;
    ASSERT_NE(ref.get<proto::Heartbeat>(s), nullptr);
  }

  int failures = 0;
  g_allocs = 0;
  g_count_allocs = true;
  for (int i = 0; i < 1000; ++i) {
    hb.seq = static_cast<std::uint64_t>(i);
    const net::Payload p =
        net::Payload::copy_of(proto::build_frame(scratch, hb));
    const net::Payload receiver_copy = p;  // refcount bump, no copy
    if (!receiver_copy.verified().ok()) ++failures;
    const proto::FrameRef ref(receiver_copy.frame_payload(), &receiver_copy);
    std::optional<proto::Heartbeat> s;
    const proto::Heartbeat* msg = ref.get<proto::Heartbeat>(s);
    if (msg == nullptr || msg->seq != hb.seq) ++failures;
  }
  g_count_allocs = false;
  EXPECT_EQ(failures, 0);
  EXPECT_EQ(g_allocs, 0u)
      << "steady-state heartbeat encode+decode allocated on the heap";
}

// The scheduling half of the same steady state: every beacon arrival moves
// the sender's suspicion deadline 2 s out via sim::Timer::rearm, which the
// timing-wheel EventQueue services in place (EventQueue::reschedule) — the
// slot keeps its callback, only a fresh (when, seq) entry is filed. Once
// the wheel's bucket pools and slot table are warm, that path must not
// touch the heap either: re-arms are the highest-frequency queue operation
// in the farm, and an allocation here would show up at every heartbeat.
TEST(CodecAllocations, HeartbeatRearmFastPathIsAllocationFree) {
  sim::Simulator sim;
  constexpr int kMonitors = 78;  // one VLAN's worth of monitored peers
  constexpr sim::SimTime kSuspect = sim::seconds(2);
  int fired = 0;
  std::vector<sim::Timer> suspicion;
  suspicion.reserve(kMonitors);
  for (int j = 0; j < kMonitors; ++j)
    suspicion.push_back(sim.after(kSuspect, [&fired] { ++fired; }));

  // One beacon round: each peer's frame arrives and its deadline is pushed
  // back out. The per-peer jitter scatters deadlines across several wheel
  // buckets so the rounds exercise multi-bucket filing, not one hot vector.
  // It is fixed per peer (not per round) so every stale-compaction cycle
  // files the identical pattern: warmup then provably reaches the exact
  // per-bucket occupancy ceiling the measured rounds will hit.
  bool all_rearmed = true;
  auto round = [&] {
    for (std::size_t j = 0; j < suspicion.size(); ++j) {
      const auto jitter = static_cast<sim::SimTime>((j * 6151) % 400'000);
      all_rearmed = suspicion[j].rearm(sim.now() + kSuspect + jitter) &&
                    all_rearmed;
    }
  };
  // Warm (>= 512 cycles): grow the slot table, the bucket vectors at every
  // deadline byte pattern the measured rounds will file into, and the
  // stale-compaction scratch, and let accumulation/compaction reach its
  // steady-state ceiling. The whole sequence is deterministic, so the
  // measured window repeats warmed patterns exactly.
  for (int r = 0; r < 640; ++r) round();

  g_allocs = 0;
  g_count_allocs = true;
  for (int r = 0; r < 1000; ++r) round();
  g_count_allocs = false;
  EXPECT_TRUE(all_rearmed) << "a live timer refused an in-place re-arm";
  EXPECT_EQ(g_allocs, 0u)
      << "the heartbeat re-arm fast path allocated on the heap";

  // The re-arms were real: nothing fired during the churn, every handle
  // still names a pending deadline, and silencing the beacons fires all of
  // them — exactly once each — at the last-armed deadlines.
  EXPECT_EQ(fired, 0);
  for (const auto& t : suspicion) EXPECT_TRUE(t.armed());
  sim.run_until(sim.now() + 2 * kSuspect);
  EXPECT_EQ(fired, kMonitors);
}

}  // namespace
}  // namespace gs
