// Farm builder and scenario-helper unit tests.
#include <gtest/gtest.h>

#include <set>

#include "farm/farm.h"
#include "farm/scenario.h"

namespace gs::farm {
namespace {

TEST(FarmSpec, UniformCounts) {
  const FarmSpec spec = FarmSpec::uniform(55, 3);
  EXPECT_EQ(spec.total_nodes(), 55);
  EXPECT_EQ(spec.total_adapters(), 165);
}

TEST(FarmSpec, OceanoCounts) {
  const FarmSpec spec = FarmSpec::oceano(2, 2, 2, 2, 2);
  // 2 mgmt + 2 dispatchers + 2*(2+2) nodes.
  EXPECT_EQ(spec.total_nodes(), 12);
  // mgmt: 2*1; dispatchers: 2*(1+2); fronts: 4*3; backs: 4*2.
  EXPECT_EQ(spec.total_adapters(), 2 + 6 + 12 + 8);
}

TEST(FarmSpec, VlanNumbering) {
  EXPECT_EQ(admin_vlan(), util::VlanId(1));
  EXPECT_EQ(internal_vlan(0), util::VlanId(100));
  EXPECT_EQ(dispatch_vlan(3), util::VlanId(203));
  EXPECT_EQ(uniform_vlan(0), admin_vlan());
  EXPECT_EQ(uniform_vlan(2), util::VlanId(302));
}

class FarmBuildTest : public ::testing::Test {
 protected:
  sim::Simulator sim_;
  proto::Params params_;
};

TEST_F(FarmBuildTest, UniformFarmShape) {
  Farm farm(sim_, FarmSpec::uniform(6, 3), params_, 1);
  EXPECT_EQ(farm.node_count(), 6u);
  EXPECT_EQ(farm.fabric().adapter_count(), 18u);
  EXPECT_EQ(farm.db().node_count(), 6u);
  EXPECT_EQ(farm.db().adapter_count(), 18u);
  // Three VLANs, six adapters each.
  const auto vlans = farm.vlans();
  EXPECT_EQ(vlans.size(), 3u);
  for (util::VlanId vlan : vlans)
    EXPECT_EQ(farm.fabric().adapters_in_vlan(vlan).size(), 6u);
}

TEST_F(FarmBuildTest, OceanoRolesAndDomains) {
  Farm farm(sim_, FarmSpec::oceano(2, 2, 1, 1, 2), params_, 1);
  EXPECT_EQ(farm.nodes_with_role(NodeRole::kManagement).size(), 2u);
  EXPECT_EQ(farm.nodes_with_role(NodeRole::kDispatcher).size(), 1u);
  EXPECT_EQ(farm.nodes_with_role(NodeRole::kFrontEnd).size(), 4u);
  EXPECT_EQ(farm.nodes_with_role(NodeRole::kBackEnd).size(), 2u);

  // Front ends carry exactly [admin, internal, dispatch].
  for (std::size_t idx : farm.nodes_with_role(NodeRole::kFrontEnd)) {
    const auto& adapters = farm.node_adapters(idx);
    ASSERT_EQ(adapters.size(), 3u);
    const auto domain = farm.domain_of(idx).value();
    EXPECT_EQ(farm.fabric().vlan_of(adapters[0]), admin_vlan());
    EXPECT_EQ(farm.fabric().vlan_of(adapters[1]), internal_vlan(domain));
    EXPECT_EQ(farm.fabric().vlan_of(adapters[2]), dispatch_vlan(domain));
  }
  // Back ends: [admin, internal].
  for (std::size_t idx : farm.nodes_with_role(NodeRole::kBackEnd)) {
    ASSERT_EQ(farm.node_adapters(idx).size(), 2u);
  }
  // Dispatchers: [admin, dispatch(0), dispatch(1)].
  for (std::size_t idx : farm.nodes_with_role(NodeRole::kDispatcher)) {
    const auto& adapters = farm.node_adapters(idx);
    ASSERT_EQ(adapters.size(), 3u);
    EXPECT_EQ(farm.fabric().vlan_of(adapters[1]), dispatch_vlan(0));
    EXPECT_EQ(farm.fabric().vlan_of(adapters[2]), dispatch_vlan(1));
  }
}

TEST_F(FarmBuildTest, ManagementNodesHoldHighestAdminIps) {
  Farm farm(sim_, FarmSpec::oceano(2, 3, 3, 2, 2), params_, 1);
  util::IpAddress max_regular, min_mgmt(255, 255, 255, 255);
  for (std::size_t i = 0; i < farm.node_count(); ++i) {
    const util::IpAddress ip =
        farm.fabric().adapter(farm.node_adapters(i)[0]).ip();
    if (farm.role(i) == NodeRole::kManagement)
      min_mgmt = std::min(min_mgmt, ip);
    else
      max_regular = std::max(max_regular, ip);
  }
  EXPECT_LT(max_regular, min_mgmt)
      << "admin-AMG leadership (= GSC) must land on a management node";
}

TEST_F(FarmBuildTest, OnlyManagementIsCentralEligible) {
  Farm farm(sim_, FarmSpec::oceano(1, 1, 1, 1, 1), params_, 1);
  for (std::size_t i = 0; i < farm.node_count(); ++i) {
    const bool eligible = farm.db().node(util::NodeId(
        static_cast<std::uint32_t>(i)))->central_eligible;
    EXPECT_EQ(eligible, farm.role(i) == NodeRole::kManagement);
    EXPECT_EQ(farm.daemon(i).central() != nullptr, eligible);
  }
}

TEST_F(FarmBuildTest, GloballyUniqueIps) {
  Farm farm(sim_, FarmSpec::oceano(3, 4, 4, 2, 2), params_, 1);
  std::set<util::IpAddress> ips;
  for (util::AdapterId id : farm.fabric().all_adapters()) {
    const util::IpAddress ip = farm.fabric().adapter(id).ip();
    EXPECT_TRUE(ips.insert(ip).second) << "duplicate " << ip;
  }
}

TEST_F(FarmBuildTest, NodesAreRackedOnOneSwitch) {
  FarmSpec spec = FarmSpec::uniform(10, 3);
  spec.switch_ports = 7;  // forces multiple switches, 2 nodes + 1 spare port
  Farm farm(sim_, spec, params_, 1);
  EXPECT_GT(farm.fabric().switch_count(), 1u);
  for (std::size_t i = 0; i < farm.node_count(); ++i) {
    std::set<util::SwitchId> switches;
    for (util::AdapterId id : farm.node_adapters(i))
      switches.insert(farm.fabric().adapter(id).attached_switch());
    EXPECT_EQ(switches.size(), 1u) << "node " << i << " spans switches";
  }
}

TEST_F(FarmBuildTest, DbWiringMatchesFabric) {
  Farm farm(sim_, FarmSpec::oceano(2, 2, 2, 1, 1), params_, 1);
  for (const auto& rec : farm.db().all_adapters()) {
    const net::Adapter& adapter = farm.fabric().adapter(rec.adapter);
    EXPECT_EQ(rec.ip, adapter.ip());
    EXPECT_EQ(rec.wired_switch, adapter.attached_switch());
    EXPECT_EQ(rec.wired_port, adapter.attached_port());
    EXPECT_EQ(rec.expected_vlan, farm.fabric().vlan_of(rec.adapter));
  }
}

TEST_F(FarmBuildTest, ConvergedIsFalseBeforeStart) {
  Farm farm(sim_, FarmSpec::uniform(3, 1), params_, 1);
  EXPECT_FALSE(farm.converged());
}

TEST_F(FarmBuildTest, ConsoleGateFollowsActiveCentral) {
  proto::Params params;
  params.beacon_phase = sim::seconds(2);
  params.amg_stable_wait = sim::milliseconds(400);
  params.gsc_stable_wait = sim::seconds(2);
  Farm farm(sim_, FarmSpec::uniform(4, 2), params, 1);
  // Before any Central activates, the console is unreachable.
  EXPECT_FALSE(farm.console().reachable());
  farm.start();
  ASSERT_TRUE(run_until_gsc_stable(farm, sim::seconds(60)));
  EXPECT_TRUE(farm.console().reachable());
  // Killing the GSC node's admin adapter cuts console access until failover.
  const util::AdapterId gsc_admin = farm.node_adapters(3)[0];
  farm.fabric().set_adapter_health(gsc_admin, net::HealthState::kDown);
  EXPECT_FALSE(farm.console().reachable());
}

// --- scenario helpers ---------------------------------------------------------

TEST(Scenario, RunUntilReturnsTimeOfPredicate) {
  sim::Simulator sim;
  bool flag = false;
  sim.after(sim::seconds(3), [&] { flag = true; });
  auto t = run_until(sim, sim::seconds(10), [&] { return flag; },
                     sim::milliseconds(500));
  ASSERT_TRUE(t.has_value());
  EXPECT_GE(*t, sim::seconds(3));
  EXPECT_LE(*t, sim::seconds(4));
}

TEST(Scenario, RunUntilTimesOut) {
  sim::Simulator sim;
  auto t = run_until(sim, sim::seconds(2), [] { return false; });
  EXPECT_FALSE(t.has_value());
  EXPECT_EQ(sim.now(), sim::seconds(2));
}

}  // namespace
}  // namespace gs::farm
