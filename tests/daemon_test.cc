// GsDaemon unit tests: report routing/reliability, GSC-change handling,
// admin-adapter convention, halt/resume, and frame validation.
#include <gtest/gtest.h>

#include "farm/farm.h"
#include "farm/scenario.h"
#include "net/fabric.h"
#include "wire/frame.h"

namespace gs::proto {
namespace {

Params quick_params() {
  Params p;
  p.beacon_phase = sim::seconds(2);
  p.amg_stable_wait = sim::milliseconds(400);
  p.gsc_stable_wait = sim::seconds(2);
  p.report_retry = sim::seconds(1);
  return p;
}

class DaemonTest : public ::testing::Test {
 protected:
  void build(int nodes, int adapters, std::uint64_t seed = 1,
             Params params = quick_params()) {
    farm_.emplace(sim_, farm::FarmSpec::uniform(nodes, adapters), params,
                  seed);
    farm_->start();
  }

  void stabilize() {
    ASSERT_TRUE(farm::run_until_gsc_stable(*farm_, sim::seconds(120)));
  }

  sim::Simulator sim_;
  std::optional<farm::Farm> farm_;
};

TEST_F(DaemonTest, AdminAdapterConventionIsIndexZero) {
  build(3, 2);
  stabilize();
  for (std::size_t i = 0; i < farm_->node_count(); ++i) {
    GsDaemon& daemon = farm_->daemon(i);
    EXPECT_EQ(daemon.config().admin_adapter_index, 0u);
    EXPECT_EQ(&daemon.admin_protocol(), &daemon.protocol(0));
    // The admin protocol sits on the admin VLAN.
    EXPECT_EQ(farm_->fabric().vlan_of(farm_->node_adapters(i)[0]),
              farm::admin_vlan());
  }
}

TEST_F(DaemonTest, GscIpIsAdminGroupLeader) {
  build(4, 2);
  stabilize();
  // Highest admin IP = node 3's admin adapter.
  const util::IpAddress expected =
      farm_->fabric().adapter(farm_->node_adapters(3)[0]).ip();
  for (std::size_t i = 0; i < farm_->node_count(); ++i)
    EXPECT_EQ(farm_->daemon(i).gsc_ip(), expected);
}

TEST_F(DaemonTest, EveryLeaderGotItsReportsAcked) {
  build(5, 3);
  stabilize();
  proto::Central* central = farm_->active_central();
  ASSERT_NE(central, nullptr);
  // All 3 groups of 5 known through acked reports.
  EXPECT_EQ(central->known_adapter_count(), 15u);
  // Reports flowed: at least one per AMG leader.
  std::uint64_t sent = 0;
  for (std::size_t i = 0; i < farm_->node_count(); ++i)
    sent += farm_->daemon(i).reports_sent();
  EXPECT_GE(sent, 3u);
}

TEST_F(DaemonTest, ReportsRetryUntilAcked) {
  // Heavy loss on the admin VLAN: reports must retry and eventually land.
  Params p = quick_params();
  build(4, 2, 3, p);
  net::ChannelModel lossy;
  lossy.loss_probability = 0.4;
  farm_->fabric().segment(farm::admin_vlan()).set_model(lossy);
  ASSERT_TRUE(farm::run_until(sim_, sim::seconds(300), [&] {
    proto::Central* c = farm_->active_central();
    return c != nullptr && c->known_adapter_count() == 8;
  })) << "reports never got through the lossy admin segment";
}

TEST_F(DaemonTest, CorruptFramesAreDroppedAndCounted) {
  build(2, 1);
  stabilize();
  // Inject a corrupted frame directly at node 0's adapter.
  GsDaemon& daemon = farm_->daemon(0);
  const util::AdapterId id = farm_->node_adapters(0)[0];
  std::vector<std::uint8_t> payload{1, 2, 3};
  auto frame = wire::encode_frame(6, payload);
  frame[wire::kFrameHeaderSize] ^= 0xFF;  // corrupt the payload

  net::Datagram dgram;
  dgram.src = util::IpAddress(10, 0, 0, 99);
  dgram.dst = farm_->fabric().adapter(id).ip();
  dgram.vlan = farm_->fabric().vlan_of(id);
  dgram.payload = net::make_payload(frame);
  const std::uint64_t before = daemon.frames_dropped();
  farm_->fabric().adapter(id).deliver(dgram);
  sim_.run_until(sim_.now() + sim::seconds(1));
  EXPECT_EQ(daemon.frames_dropped(), before + 1);
}

TEST_F(DaemonTest, HaltSilencesNode) {
  build(4, 2);
  stabilize();
  GsDaemon& daemon = farm_->daemon(1);
  daemon.halt();
  EXPECT_TRUE(daemon.halted());
  EXPECT_EQ(daemon.protocol(0).state(), AdapterState::kIdle);
  EXPECT_EQ(daemon.protocol(1).state(), AdapterState::kIdle);

  // The farm detects the silence as a failure and recommits around it.
  farm_->fabric().fail_node(util::NodeId(1));
  EXPECT_TRUE(
      farm::run_until_converged(*farm_, sim_.now() + sim::seconds(60)));
}

TEST_F(DaemonTest, ResumeRejoinsEverything) {
  build(4, 2);
  stabilize();
  farm_->fail_node(1);
  ASSERT_TRUE(
      farm::run_until_converged(*farm_, sim_.now() + sim::seconds(60)));
  farm_->recover_node(1);
  ASSERT_TRUE(
      farm::run_until_converged(*farm_, sim_.now() + sim::seconds(90)));
  EXPECT_TRUE(farm_->daemon(1).protocol(0).is_committed());
}

TEST_F(DaemonTest, HaltedGscFailsOverToNextEligible) {
  build(5, 2);
  stabilize();
  proto::Central* central = farm_->active_central();
  ASSERT_NE(central, nullptr);
  const util::IpAddress old_gsc = central->self_ip();

  farm_->fail_node(4);  // node 4 hosts the highest admin IP = GSC
  ASSERT_TRUE(farm::run_until(sim_, sim_.now() + sim::seconds(120), [&] {
    proto::Central* c = farm_->active_central();
    return c != nullptr && c->self_ip() != old_gsc &&
           c->known_adapter_count() >= 8;  // 4 live nodes x 2 adapters
  }));
  // The halted node's Central is inactive.
  EXPECT_FALSE(farm_->daemon(4).central()->active());
}

TEST_F(DaemonTest, GscChangeTriggersFullRereports) {
  build(5, 2);
  stabilize();
  proto::Central* old_central = farm_->active_central();
  const std::uint64_t old_known = old_central->known_adapter_count();
  ASSERT_EQ(old_known, 10u);

  farm_->fail_node(4);
  ASSERT_TRUE(farm::run_until(sim_, sim_.now() + sim::seconds(120), [&] {
    proto::Central* c = farm_->active_central();
    // The replacement rebuilt its view purely from re-sent full reports.
    return c != nullptr && c->active() && c->known_adapter_count() >= 8u &&
           c->groups().size() >= 2u;
  }));
}

// The GSC node hosting other AMG leaders reports to itself via loopback.
TEST_F(DaemonTest, LoopbackReportWhenGscHostsLeaders) {
  build(3, 2);
  stabilize();
  // Node 2 has the highest IPs on BOTH VLANs: it is GSC and leads both
  // groups, so both reports were local-loopback deliveries.
  proto::Central* central = farm_->active_central();
  ASSERT_NE(central, nullptr);
  EXPECT_EQ(central->self_ip(),
            farm_->fabric().adapter(farm_->node_adapters(2)[0]).ip());
  for (const auto& group : central->groups())
    EXPECT_EQ(group.leader.node, util::NodeId(2));
  EXPECT_EQ(central->known_adapter_count(), 6u);
}

}  // namespace
}  // namespace gs::proto
