// Unit tests for protocol message codecs: round-trips, malformed rejection.
#include <gtest/gtest.h>

#include "gs/messages.h"
#include "util/rng.h"
#include "wire/frame.h"

namespace gs::proto {
namespace {

MemberInfo member(std::uint8_t host, std::uint32_t node = 1,
                  bool eligible = false) {
  MemberInfo m;
  m.ip = util::IpAddress(10, 0, 0, host);
  m.mac = util::MacAddress(0x020000000000ull + host);
  m.node = util::NodeId(node);
  m.central_eligible = eligible;
  return m;
}

template <typename T, typename Decoder>
T round_trip(const T& msg, Decoder decoder) {
  auto payload = encode(msg);
  auto decoded = decoder(payload);
  EXPECT_TRUE(decoded.has_value());
  return *decoded;
}

TEST(Messages, MemberInfoRoundTrip) {
  wire::Writer w;
  encode_member(w, member(7, 3, true));
  auto bytes = w.take();
  wire::Reader r(bytes);
  const MemberInfo out = decode_member(r);
  EXPECT_TRUE(r.finish());
  EXPECT_EQ(out, member(7, 3, true));
}

TEST(Messages, BeaconRoundTrip) {
  Beacon b;
  b.self = member(9, 2, true);
  b.is_leader = true;
  b.view = 42;
  b.group_size = 17;
  const Beacon out = round_trip(b, decode_Beacon);
  EXPECT_EQ(out.self, b.self);
  EXPECT_TRUE(out.is_leader);
  EXPECT_EQ(out.view, 42u);
  EXPECT_EQ(out.group_size, 17u);
}

TEST(Messages, JoinRequestRoundTrip) {
  JoinRequest j;
  j.view = 5;
  j.members = {member(1), member(2), member(3)};
  const JoinRequest out = round_trip(j, decode_JoinRequest);
  EXPECT_EQ(out.view, 5u);
  EXPECT_EQ(out.members, j.members);
}

TEST(Messages, PrepareRoundTrip) {
  Prepare p;
  p.view = 8;
  p.leader = util::IpAddress(10, 0, 0, 9);
  p.members = {member(9), member(4)};
  const Prepare out = round_trip(p, decode_Prepare);
  EXPECT_EQ(out.view, 8u);
  EXPECT_EQ(out.leader, p.leader);
  EXPECT_EQ(out.members, p.members);
}

TEST(Messages, PrepareAckRoundTrip) {
  PrepareAck a;
  a.view = 3;
  a.ok = false;
  a.holder_view = 7;
  const PrepareAck out = round_trip(a, decode_PrepareAck);
  EXPECT_EQ(out.view, 3u);
  EXPECT_FALSE(out.ok);
  EXPECT_EQ(out.holder_view, 7u);
}

TEST(Messages, CommitHeartbeatRoundTrip) {
  Commit c;
  c.view = 11;
  EXPECT_EQ(round_trip(c, decode_Commit).view, 11u);

  Heartbeat hb;
  hb.view = 12;
  hb.seq = 999;
  const Heartbeat out = round_trip(hb, decode_Heartbeat);
  EXPECT_EQ(out.view, 12u);
  EXPECT_EQ(out.seq, 999u);
}

TEST(Messages, SuspectFamilyRoundTrip) {
  Suspect s;
  s.view = 4;
  s.suspect = util::IpAddress(10, 0, 0, 3);
  const Suspect so = round_trip(s, decode_Suspect);
  EXPECT_EQ(so.suspect, s.suspect);

  SuspectAck ack;
  ack.view = 4;
  ack.suspect = s.suspect;
  EXPECT_EQ(round_trip(ack, decode_SuspectAck).suspect, s.suspect);
}

TEST(Messages, ProbeFamilyRoundTrip) {
  Probe p;
  p.nonce = 0xFEEDull;
  EXPECT_EQ(round_trip(p, decode_Probe).nonce, 0xFEEDull);
  ProbeAck a;
  a.nonce = 0xBEEFull;
  EXPECT_EQ(round_trip(a, decode_ProbeAck).nonce, 0xBEEFull);
}

TEST(Messages, StaleNoticeRoundTrip) {
  StaleNotice n;
  n.current_view = 77;
  EXPECT_EQ(round_trip(n, decode_StaleNotice).current_view, 77u);
}

TEST(Messages, MembershipReportFullRoundTrip) {
  MembershipReport rep;
  rep.seq = 2;
  rep.view = 10;
  rep.full = true;
  rep.leader = member(9);
  rep.added = {member(9), member(5), member(2)};
  const MembershipReport out = round_trip(rep, decode_MembershipReport);
  EXPECT_TRUE(out.full);
  EXPECT_EQ(out.leader, rep.leader);
  EXPECT_EQ(out.added, rep.added);
  EXPECT_TRUE(out.removed.empty());
}

TEST(Messages, MembershipReportDeltaRoundTrip) {
  MembershipReport rep;
  rep.seq = 3;
  rep.view = 11;
  rep.leader = member(9);
  rep.removed = {{util::IpAddress(10, 0, 0, 5), RemoveReason::kFailed},
                 {util::IpAddress(10, 0, 0, 2), RemoveReason::kLeft}};
  const MembershipReport out = round_trip(rep, decode_MembershipReport);
  ASSERT_EQ(out.removed.size(), 2u);
  EXPECT_EQ(out.removed[0].reason, RemoveReason::kFailed);
  EXPECT_EQ(out.removed[1].reason, RemoveReason::kLeft);
}

TEST(Messages, MembershipReportRejectsBadReason) {
  MembershipReport rep;
  rep.leader = member(9);
  rep.removed = {{util::IpAddress(10, 0, 0, 5), RemoveReason::kFailed}};
  auto payload = encode(rep);
  payload.back() = 99;  // the reason byte is encoded last
  EXPECT_FALSE(decode_MembershipReport(payload).has_value());
}

TEST(Messages, ReportAckRoundTrip) {
  ReportAck ack;
  ack.seq = 4;
  ack.leader = util::IpAddress(10, 0, 0, 9);
  ack.need_full = true;
  const ReportAck out = round_trip(ack, decode_ReportAck);
  EXPECT_EQ(out.seq, 4u);
  EXPECT_EQ(out.leader, ack.leader);
  EXPECT_TRUE(out.need_full);
}

TEST(Messages, PingFamilyRoundTrip) {
  Ping p;
  p.nonce = 1;
  p.origin = util::IpAddress(10, 0, 0, 1);
  EXPECT_EQ(round_trip(p, decode_Ping).origin, p.origin);

  PingAck a;
  a.nonce = 2;
  a.target = util::IpAddress(10, 0, 0, 2);
  EXPECT_EQ(round_trip(a, decode_PingAck).target, a.target);

  PingReq q;
  q.nonce = 3;
  q.origin = util::IpAddress(10, 0, 0, 1);
  q.target = util::IpAddress(10, 0, 0, 3);
  const PingReq out = round_trip(q, decode_PingReq);
  EXPECT_EQ(out.origin, q.origin);
  EXPECT_EQ(out.target, q.target);
}

TEST(Messages, SubgroupPollRoundTrip) {
  SubgroupPoll p;
  p.seq = 6;
  EXPECT_EQ(round_trip(p, decode_SubgroupPoll).seq, 6u);
  SubgroupPollAck a;
  a.seq = 6;
  EXPECT_EQ(round_trip(a, decode_SubgroupPollAck).seq, 6u);
}

TEST(Messages, DecodersRejectTruncation) {
  Prepare p;
  p.view = 8;
  p.leader = util::IpAddress(10, 0, 0, 9);
  p.members = {member(9), member(4)};
  auto payload = encode(p);
  for (std::size_t cut = 0; cut < payload.size(); ++cut) {
    std::span<const std::uint8_t> prefix(payload.data(), cut);
    EXPECT_FALSE(decode_Prepare(prefix).has_value()) << "cut at " << cut;
  }
}

TEST(Messages, DecodersRejectTrailingGarbage) {
  Commit c;
  c.view = 1;
  auto payload = encode(c);
  payload.push_back(0);
  EXPECT_FALSE(decode_Commit(payload).has_value());
}

TEST(Messages, ToFrameEmbedsType) {
  Heartbeat hb;
  hb.view = 1;
  hb.seq = 2;
  auto frame = to_frame(hb);
  auto decoded = wire::decode_frame(frame);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(static_cast<MsgType>(decoded.frame.type), MsgType::kHeartbeat);
  EXPECT_TRUE(decode_Heartbeat(decoded.frame.payload).has_value());
}

TEST(Messages, DomainReportRoundTrip) {
  DomainReport rep;
  rep.seq = 41;
  rep.epoch = 3;
  rep.domain = 2;
  rep.full = true;
  rep.sender = util::IpAddress(10, 0, 23, 208);
  for (std::uint8_t h = 1; h <= 3; ++h) {
    DomainAdapterEntry e;
    e.info = member(h, h);
    e.alive = h != 2;
    e.group_leader = util::IpAddress(10, 0, 0, 3);
    e.view = 7;
    rep.entries.push_back(e);
  }
  rep.removed = {util::IpAddress(10, 0, 0, 9)};
  const DomainReport out = round_trip(rep, decode_DomainReport);
  EXPECT_EQ(out.seq, 41u);
  EXPECT_EQ(out.epoch, 3u);
  EXPECT_EQ(out.domain, 2u);
  EXPECT_TRUE(out.full);
  EXPECT_EQ(out.sender, rep.sender);
  ASSERT_EQ(out.entries.size(), 3u);
  EXPECT_EQ(out.entries[1].info, rep.entries[1].info);
  EXPECT_FALSE(out.entries[1].alive);
  EXPECT_EQ(out.entries[0].group_leader, util::IpAddress(10, 0, 0, 3));
  EXPECT_EQ(out.entries[2].view, 7u);
  EXPECT_EQ(out.removed, rep.removed);
}

TEST(Messages, DomainReportDeltaRoundTrip) {
  DomainReport rep;
  rep.seq = 6;
  rep.epoch = 1;
  rep.domain = 0;
  rep.full = false;
  rep.sender = util::IpAddress(10, 0, 23, 209);
  const DomainReport out = round_trip(rep, decode_DomainReport);
  EXPECT_FALSE(out.full);
  EXPECT_TRUE(out.entries.empty());
  EXPECT_TRUE(out.removed.empty());
}

TEST(Messages, DomainReportAckRoundTrip) {
  DomainReportAck ack;
  ack.seq = 41;
  ack.domain = 2;
  ack.need_full = true;
  const DomainReportAck out = round_trip(ack, decode_DomainReportAck);
  EXPECT_EQ(out.seq, 41u);
  EXPECT_EQ(out.domain, 2u);
  EXPECT_TRUE(out.need_full);
}

TEST(Messages, FuzzDecodersNeverCrash) {
  util::Rng rng(5);
  for (int i = 0; i < 3000; ++i) {
    std::vector<std::uint8_t> junk(rng.below(48));
    for (auto& b : junk) b = static_cast<std::uint8_t>(rng.next());
    (void)decode_Beacon(junk);
    (void)decode_Prepare(junk);
    (void)decode_MembershipReport(junk);
    (void)decode_JoinRequest(junk);
    (void)decode_PingReq(junk);
    (void)decode_DomainReport(junk);
    (void)decode_DomainReportAck(junk);
  }
}

TEST(Messages, TypeNames) {
  EXPECT_EQ(to_string(MsgType::kBeacon), "beacon");
  EXPECT_EQ(to_string(MsgType::kMembershipReport), "membership-report");
  EXPECT_EQ(to_string(MsgType::kSubgroupPollAck), "subgroup-poll-ack");
}

}  // namespace
}  // namespace gs::proto
