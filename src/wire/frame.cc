#include "wire/frame.h"

#include "wire/buffer.h"
#include "wire/checksum.h"

namespace gs::wire {

std::string_view to_string(FrameError err) {
  switch (err) {
    case FrameError::kNone: return "none";
    case FrameError::kTooShort: return "too-short";
    case FrameError::kBadMagic: return "bad-magic";
    case FrameError::kBadVersion: return "bad-version";
    case FrameError::kLengthMismatch: return "length-mismatch";
    case FrameError::kBadChecksum: return "bad-checksum";
  }
  return "?";
}

std::vector<std::uint8_t> encode_frame(std::uint16_t type,
                                       std::span<const std::uint8_t> payload) {
  Writer w(kFrameHeaderSize + payload.size());
  w.u32(kFrameMagic);
  w.u8(kWireVersion);
  w.u8(0);  // reserved
  w.u16(type);
  w.u32(static_cast<std::uint32_t>(payload.size()));
  const std::size_t crc_offset = w.size();
  w.u32(0);  // crc placeholder
  w.raw(payload);

  auto bytes = w.take();
  std::uint32_t crc = crc32c_init();
  crc = crc32c_update(crc, std::span(bytes).first(kFrameHeaderSize));
  crc = crc32c_update(crc, payload);
  crc = crc32c_finish(crc);
  for (std::size_t i = 0; i < 4; ++i)
    bytes[crc_offset + i] = static_cast<std::uint8_t>(crc >> (8 * i));
  return bytes;
}

void begin_frame(Writer& w, std::uint16_t type) {
  w.clear();
  w.u32(kFrameMagic);
  w.u8(kWireVersion);
  w.u8(0);  // reserved
  w.u16(type);
  w.u32(0);  // length placeholder
  w.u32(0);  // crc placeholder
}

std::span<const std::uint8_t> finish_frame(Writer& w) {
  const auto length = static_cast<std::uint32_t>(w.size() - kFrameHeaderSize);
  w.patch_u32(8, length);
  // CRC over the whole frame while the crc field still holds zeros, which
  // is exactly the "header with crc zeroed, then payload" encode_frame rule.
  std::uint32_t crc = crc32c_init();
  crc = crc32c_update(crc, w.bytes());
  crc = crc32c_finish(crc);
  w.patch_u32(12, crc);
  return w.bytes();
}

VerifiedFrame verify_frame(std::span<const std::uint8_t> bytes) {
  VerifiedFrame result;
  if (bytes.size() < kFrameHeaderSize) {
    result.error = FrameError::kTooShort;
    return result;
  }
  Reader r(bytes);
  const std::uint32_t magic = r.u32();
  if (magic != kFrameMagic) {
    result.error = FrameError::kBadMagic;
    return result;
  }
  const std::uint8_t version = r.u8();
  if (version != kWireVersion) {
    result.error = FrameError::kBadVersion;
    return result;
  }
  r.skip(1);  // reserved
  const std::uint16_t type = r.u16();
  const std::uint32_t length = r.u32();
  const std::uint32_t stated_crc = r.u32();
  if (bytes.size() != kFrameHeaderSize + length) {
    result.error = FrameError::kLengthMismatch;
    return result;
  }

  // Recompute CRC with the crc field zeroed.
  std::uint8_t zeroed_header[kFrameHeaderSize];
  for (std::size_t i = 0; i < kFrameHeaderSize; ++i) zeroed_header[i] = bytes[i];
  for (std::size_t i = 12; i < 16; ++i) zeroed_header[i] = 0;
  std::uint32_t crc = crc32c_init();
  crc = crc32c_update(crc, std::span<const std::uint8_t>(zeroed_header));
  crc = crc32c_update(crc, bytes.subspan(kFrameHeaderSize));
  crc = crc32c_finish(crc);
  if (crc != stated_crc) {
    result.error = FrameError::kBadChecksum;
    return result;
  }

  result.type = type;
  result.payload_size = length;
  return result;
}

DecodeResult decode_frame(std::span<const std::uint8_t> bytes) {
  const VerifiedFrame verified = verify_frame(bytes);
  DecodeResult result;
  result.error = verified.error;
  if (verified.ok()) {
    result.frame.type = verified.type;
    result.frame.payload = bytes.subspan(kFrameHeaderSize);
  }
  return result;
}

}  // namespace gs::wire
