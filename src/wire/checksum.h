// CRC-32C (Castagnoli) — the polynomial used by iSCSI and ext4.
//
// Frames carry a CRC over header-sans-crc plus payload so corruption (and
// truncation, which shifts the payload under the CRC) is rejected before a
// byte of it reaches protocol code.
#pragma once

#include <cstdint>
#include <span>

namespace gs::wire {

// One-shot CRC of a buffer, seeded with the standard initial value.
[[nodiscard]] std::uint32_t crc32c(std::span<const std::uint8_t> data);

// Incremental form: pass the previous return value as `state` to continue.
// Begin with crc32c_init() and finalize with crc32c_finish().
[[nodiscard]] std::uint32_t crc32c_init();
[[nodiscard]] std::uint32_t crc32c_update(std::uint32_t state,
                                          std::span<const std::uint8_t> data);
[[nodiscard]] std::uint32_t crc32c_finish(std::uint32_t state);

}  // namespace gs::wire
