// Bounds-checked binary serialization primitives.
//
// Everything GulfStream puts on the (simulated) wire goes through Writer and
// comes back through Reader. Integers are little-endian fixed width; strings
// and vectors are u32-length-prefixed. Reader never throws and never reads
// out of bounds: any malformed input flips a sticky error flag and all
// subsequent reads return zero values, so decode functions check ok() once
// at the end. This mirrors how a hardened daemon treats untrusted frames.
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <string_view>
#include <type_traits>
#include <vector>

namespace gs::wire {

class Writer {
 public:
  Writer() = default;
  explicit Writer(std::size_t reserve) { bytes_.reserve(reserve); }

  void u8(std::uint8_t v) { bytes_.push_back(v); }
  void u16(std::uint16_t v) { append_le(v); }
  void u32(std::uint32_t v) { append_le(v); }
  void u64(std::uint64_t v) { append_le(v); }
  void i64(std::int64_t v) { append_le(static_cast<std::uint64_t>(v)); }
  void f64(double v) {
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof bits);
    append_le(bits);
  }
  void boolean(bool v) { u8(v ? 1 : 0); }

  // Out of line: GCC 12 at -O3 inlines the vector append into callers and
  // issues spurious stringop-overflow errors for it.
  void str(std::string_view s);

  void raw(std::span<const std::uint8_t> data) {
    bytes_.insert(bytes_.end(), data.begin(), data.end());
  }

  // Writes a u32 element count followed by per-element encoding.
  template <typename T, typename Fn>
  void vec(const std::vector<T>& items, Fn&& encode_one) {
    u32(static_cast<std::uint32_t>(items.size()));
    for (const T& item : items) encode_one(*this, item);
  }

  // Patches a previously written u32 at `offset` (for frame length fields).
  void patch_u32(std::size_t offset, std::uint32_t v);

  [[nodiscard]] std::size_t size() const { return bytes_.size(); }
  [[nodiscard]] std::span<const std::uint8_t> bytes() const { return bytes_; }
  [[nodiscard]] std::vector<std::uint8_t> take() { return std::move(bytes_); }

  // Rewinds to empty while keeping the allocation, so a long-lived scratch
  // Writer reaches a steady state with zero per-message heap traffic.
  void clear() { bytes_.clear(); }

 private:
  template <typename T>
  void append_le(T v) {
    static_assert(std::is_unsigned_v<T>);
    for (std::size_t i = 0; i < sizeof(T); ++i)
      bytes_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }

  std::vector<std::uint8_t> bytes_;
};

class Reader {
 public:
  explicit Reader(std::span<const std::uint8_t> data) : data_(data) {}

  std::uint8_t u8() { return read_le<std::uint8_t>(); }
  std::uint16_t u16() { return read_le<std::uint16_t>(); }
  std::uint32_t u32() { return read_le<std::uint32_t>(); }
  std::uint64_t u64() { return read_le<std::uint64_t>(); }
  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
  double f64() {
    const std::uint64_t bits = u64();
    double v;
    std::memcpy(&v, &bits, sizeof v);
    return v;
  }
  bool boolean() { return u8() != 0; }

  std::string str();

  // Reads a u32 count then `decode_one` per element. Guards against a
  // hostile count by bounding it with remaining(); on overflow the error
  // flag is set and an empty vector returned.
  template <typename T, typename Fn>
  std::vector<T> vec(Fn&& decode_one) {
    const std::uint32_t n = u32();
    std::vector<T> out;
    if (failed_) return out;
    if (n > remaining()) {  // each element needs >= 1 byte
      fail();
      return out;
    }
    out.reserve(n);
    for (std::uint32_t i = 0; i < n && !failed_; ++i)
      out.push_back(decode_one(*this));
    if (failed_) out.clear();
    return out;
  }

  [[nodiscard]] bool ok() const { return !failed_; }
  [[nodiscard]] bool at_end() const { return pos_ == data_.size(); }
  [[nodiscard]] std::size_t remaining() const { return data_.size() - pos_; }

  // Declares decoding complete: ok() and the whole buffer consumed.
  [[nodiscard]] bool finish() { return ok() && at_end(); }

  void skip(std::size_t n);

 private:
  void fail() { failed_ = true; }

  template <typename T>
  T read_le() {
    if (failed_ || remaining() < sizeof(T)) {
      fail();
      return T{};
    }
    T v{};
    for (std::size_t i = 0; i < sizeof(T); ++i)
      v = static_cast<T>(v | (static_cast<std::uint64_t>(data_[pos_ + i])
                              << (8 * i)));
    pos_ += sizeof(T);
    return v;
  }

  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
  bool failed_ = false;
};

}  // namespace gs::wire
