#include "wire/buffer.h"

#include "util/check.h"

namespace gs::wire {

void Writer::str(std::string_view s) {
  u32(static_cast<std::uint32_t>(s.size()));
  bytes_.insert(bytes_.end(), s.begin(), s.end());
}

void Writer::patch_u32(std::size_t offset, std::uint32_t v) {
  GS_CHECK(offset + 4 <= bytes_.size());
  for (std::size_t i = 0; i < 4; ++i)
    bytes_[offset + i] = static_cast<std::uint8_t>(v >> (8 * i));
}

std::string Reader::str() {
  const std::uint32_t n = u32();
  if (failed_ || n > remaining()) {
    fail();
    return {};
  }
  std::string out(reinterpret_cast<const char*>(data_.data() + pos_), n);
  pos_ += n;
  return out;
}

void Reader::skip(std::size_t n) {
  if (failed_ || n > remaining()) {
    fail();
    return;
  }
  pos_ += n;
}

}  // namespace gs::wire
