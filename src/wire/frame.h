// Frame layout for every GulfStream datagram.
//
//   offset  size  field
//   0       4     magic   "GSF1"
//   4       1     version (kWireVersion)
//   5       1     reserved (0)
//   6       2     type    (protocol-defined message type)
//   8       4     payload length
//   12      4     crc32c over bytes [0, 12) with crc field zeroed, then
//                 payload
//   16      n     payload
//
// decode() rejects bad magic, unsupported version, length mismatch, and CRC
// failure with a typed error so the fabric's corruption-injection tests can
// assert the exact rejection reason.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string_view>
#include <vector>

namespace gs::wire {

constexpr std::uint32_t kFrameMagic = 0x31465347u;  // "GSF1" little-endian
constexpr std::uint8_t kWireVersion = 1;
constexpr std::size_t kFrameHeaderSize = 16;

enum class FrameError : std::uint8_t {
  kNone = 0,
  kTooShort,
  kBadMagic,
  kBadVersion,
  kLengthMismatch,
  kBadChecksum,
};

[[nodiscard]] std::string_view to_string(FrameError err);

// Zero-copy view of a decoded frame: `payload` aliases the datagram bytes
// passed to decode_frame and is valid only while those bytes live.
struct FrameView {
  std::uint16_t type = 0;
  std::span<const std::uint8_t> payload;
};

// Serializes type+payload into a complete datagram.
[[nodiscard]] std::vector<std::uint8_t> encode_frame(
    std::uint16_t type, std::span<const std::uint8_t> payload);

class Writer;

// Allocation-free framing onto a reusable scratch Writer: begin_frame
// rewinds the writer and emits the header with zeroed length/crc, the
// caller appends the payload, finish_frame patches both fields. The bytes
// produced are identical to encode_frame for the same type+payload.
void begin_frame(Writer& w, std::uint16_t type);
[[nodiscard]] std::span<const std::uint8_t> finish_frame(Writer& w);

// Envelope verification result, expressed as offsets rather than pointers
// so it can be cached beside refcounted payload bytes that may be pooled.
struct VerifiedFrame {
  FrameError error = FrameError::kNone;
  std::uint16_t type = 0;
  std::uint32_t payload_size = 0;

  [[nodiscard]] bool ok() const { return error == FrameError::kNone; }
};

// Validates magic/version/length/CRC without copying the payload.
[[nodiscard]] VerifiedFrame verify_frame(std::span<const std::uint8_t> bytes);

struct DecodeResult {
  FrameError error = FrameError::kNone;
  FrameView frame;

  [[nodiscard]] bool ok() const { return error == FrameError::kNone; }
};

// verify_frame plus a FrameView into `bytes` (no payload copy).
[[nodiscard]] DecodeResult decode_frame(std::span<const std::uint8_t> bytes);

}  // namespace gs::wire
