// Frame layout for every GulfStream datagram.
//
//   offset  size  field
//   0       4     magic   "GSF1"
//   4       1     version (kWireVersion)
//   5       1     reserved (0)
//   6       2     type    (protocol-defined message type)
//   8       4     payload length
//   12      4     crc32c over bytes [0, 12) with crc field zeroed, then
//                 payload
//   16      n     payload
//
// decode() rejects bad magic, unsupported version, length mismatch, and CRC
// failure with a typed error so the fabric's corruption-injection tests can
// assert the exact rejection reason.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string_view>
#include <vector>

namespace gs::wire {

constexpr std::uint32_t kFrameMagic = 0x31465347u;  // "GSF1" little-endian
constexpr std::uint8_t kWireVersion = 1;
constexpr std::size_t kFrameHeaderSize = 16;

enum class FrameError : std::uint8_t {
  kNone = 0,
  kTooShort,
  kBadMagic,
  kBadVersion,
  kLengthMismatch,
  kBadChecksum,
};

[[nodiscard]] std::string_view to_string(FrameError err);

struct Frame {
  std::uint16_t type = 0;
  std::vector<std::uint8_t> payload;
};

// Serializes type+payload into a complete datagram.
[[nodiscard]] std::vector<std::uint8_t> encode_frame(
    std::uint16_t type, std::span<const std::uint8_t> payload);

struct DecodeResult {
  FrameError error = FrameError::kNone;
  Frame frame;

  [[nodiscard]] bool ok() const { return error == FrameError::kNone; }
};

[[nodiscard]] DecodeResult decode_frame(std::span<const std::uint8_t> bytes);

}  // namespace gs::wire
