#include "wire/checksum.h"

#include <array>

namespace gs::wire {
namespace {

constexpr std::uint32_t kPolynomial = 0x82F63B78u;  // reflected CRC-32C

constexpr std::array<std::uint32_t, 256> make_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit)
      crc = (crc >> 1) ^ ((crc & 1u) ? kPolynomial : 0u);
    table[i] = crc;
  }
  return table;
}

constexpr auto kTable = make_table();

}  // namespace

std::uint32_t crc32c_init() { return 0xFFFFFFFFu; }

std::uint32_t crc32c_update(std::uint32_t state,
                            std::span<const std::uint8_t> data) {
  for (std::uint8_t byte : data)
    state = (state >> 8) ^ kTable[(state ^ byte) & 0xFFu];
  return state;
}

std::uint32_t crc32c_finish(std::uint32_t state) { return state ^ 0xFFFFFFFFu; }

std::uint32_t crc32c(std::span<const std::uint8_t> data) {
  return crc32c_finish(crc32c_update(crc32c_init(), data));
}

}  // namespace gs::wire
