#include "net/udp_transport.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <array>
#include <cerrno>
#include <cstring>

#include "util/check.h"
#include "util/logging.h"

namespace gs::net {

namespace {

// Poll granularity cap: epoll timeouts are milliseconds, and run_until()'s
// predicate must be re-checked even when no packet or timer wakes us.
constexpr sim::SimDuration kMaxPollSlice = sim::milliseconds(50);

sockaddr_in loopback_addr(std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  return addr;
}

}  // namespace

// --- EventLoop -------------------------------------------------------------

EventLoop::EventLoop() {
  epfd_ = ::epoll_create1(EPOLL_CLOEXEC);
  GS_CHECK_MSG(epfd_ >= 0, "epoll_create1 failed");
}

EventLoop::~EventLoop() {
  if (epfd_ >= 0) ::close(epfd_);
}

void EventLoop::add_fd(int fd, std::function<void()> on_readable) {
  GS_CHECK(fd >= 0 && on_readable != nullptr);
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = fd;
  const int rc = ::epoll_ctl(epfd_, EPOLL_CTL_ADD, fd, &ev);
  GS_CHECK_MSG(rc == 0, "epoll_ctl(ADD) failed");
  handlers_[fd] = std::move(on_readable);
}

void EventLoop::remove_fd(int fd) {
  if (handlers_.erase(fd) == 0) return;
  ::epoll_ctl(epfd_, EPOLL_CTL_DEL, fd, nullptr);
}

void EventLoop::poll(sim::WallClock& clock, sim::SimDuration max_wait) {
  sim::SimDuration wait = std::clamp<sim::SimDuration>(max_wait, 0,
                                                       kMaxPollSlice);
  if (const auto deadline = clock.next_deadline()) {
    wait = std::clamp<sim::SimDuration>(*deadline - clock.now(), 0, wait);
  }
  // Round up so a timer due in 300us does not busy-spin on 0ms timeouts.
  const int timeout_ms =
      static_cast<int>((wait + sim::kMillisecond - 1) / sim::kMillisecond);

  std::array<epoll_event, 64> events;
  const int n = ::epoll_wait(epfd_, events.data(),
                             static_cast<int>(events.size()), timeout_ms);
  for (int i = 0; i < n; ++i) {
    // Re-resolved per event: an earlier handler in this batch may have
    // removed (or closed) this fd; a removed fd's events are stale.
    const auto it = handlers_.find(events[static_cast<std::size_t>(i)].data.fd);
    if (it == handlers_.end()) continue;
    const std::function<void()> handler = it->second;  // survives self-removal
    handler();
  }
  clock.run_due();
}

bool EventLoop::run_until(sim::WallClock& clock, sim::SimTime deadline,
                          const std::function<bool()>& until) {
  while (true) {
    clock.run_due();
    if (until != nullptr && until()) return true;
    const sim::SimTime now = clock.now();
    if (now >= deadline) return false;
    poll(clock, deadline - now);
  }
}

// --- UdpPortMap ------------------------------------------------------------

std::size_t UdpPortMap::max_vlans() const {
  return (65536u - std::uint32_t{base_port_}) / std::uint32_t{vlan_stride_};
}

std::uint16_t UdpPortMap::vlan_base(util::VlanId vlan) {
  const auto it = vlan_bases_.find(vlan);
  if (it != vlan_bases_.end()) return it->second;
  // Computed in 32 bits: the old 16-bit arithmetic wrapped silently once the
  // range ran past port 65535 (~72 VLANs at the default base/stride), and
  // the wrapped bases collided with earlier VLANs' ports.
  const auto index = static_cast<std::uint32_t>(vlan_bases_.size());
  const std::uint32_t base =
      std::uint32_t{base_port_} + index * std::uint32_t{vlan_stride_};
  const std::uint32_t last = base + std::uint32_t{vlan_stride_} - 1u;
  GS_CHECK_MSG(last <= 65535u,
               "UDP port space exhausted: this VLAN's port range would run "
               "past 65535 — lower base_port, shrink vlan_stride, or run "
               "fewer VLANs per process (see UdpPortMap::max_vlans)");
  vlan_bases_.emplace(vlan, static_cast<std::uint16_t>(base));
  return static_cast<std::uint16_t>(base);
}

std::uint16_t UdpPortMap::add(util::IpAddress ip, util::VlanId vlan) {
  GS_CHECK(!ip.is_unspecified());
  if (const auto existing = port_of(ip)) return *existing;
  const std::uint16_t base = vlan_base(vlan);
  std::vector<std::uint16_t>& ports = vlan_ports_[vlan];
  GS_CHECK_MSG(ports.size() < vlan_stride_,
               "VLAN UDP port range full; raise vlan_stride");
  const auto port = static_cast<std::uint16_t>(base + ports.size());
  ports.push_back(port);  // allocation order => already ascending
  port_by_ip_.emplace(ip.bits(), port);
  ip_by_port_.emplace(port, ip);
  return port;
}

std::optional<std::uint16_t> UdpPortMap::port_of(util::IpAddress ip) const {
  const auto it = port_by_ip_.find(ip.bits());
  if (it == port_by_ip_.end()) return std::nullopt;
  return it->second;
}

std::optional<util::IpAddress> UdpPortMap::ip_of(std::uint16_t port) const {
  const auto it = ip_by_port_.find(port);
  if (it == ip_by_port_.end()) return std::nullopt;
  return it->second;
}

const std::vector<std::uint16_t>& UdpPortMap::vlan_ports(
    util::VlanId vlan) const {
  const auto it = vlan_ports_.find(vlan);
  return it == vlan_ports_.end() ? empty_ : it->second;
}

// --- UdpTransport ----------------------------------------------------------

UdpTransport::UdpTransport(EventLoop& loop, UdpPortMap& map,
                           std::vector<PortSpec> ports)
    : loop_(loop), map_(map) {
  GS_CHECK(!ports.empty());
  socks_.reserve(ports.size());
  for (std::size_t i = 0; i < ports.size(); ++i) {
    Sock sock;
    sock.spec = ports[i];
    sock.udp_port = map_.add(sock.spec.ip, sock.spec.vlan);

    sock.fd = ::socket(AF_INET, SOCK_DGRAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
    GS_CHECK_MSG(sock.fd >= 0, "socket() failed");
    const int one = 1;
    ::setsockopt(sock.fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    const sockaddr_in addr = loopback_addr(sock.udp_port);
    const int rc = ::bind(sock.fd, reinterpret_cast<const sockaddr*>(&addr),
                          sizeof(addr));
    GS_CHECK_MSG(rc == 0, "bind(127.0.0.1) failed — port range in use?");

    socks_.push_back(std::move(sock));
    loop_.add_fd(socks_.back().fd, [this, i] { on_readable(i); });
  }
}

UdpTransport::~UdpTransport() { close(); }

void UdpTransport::close() {
  if (closed_) return;
  closed_ = true;
  for (Sock& sock : socks_) {
    if (sock.fd < 0) continue;
    loop_.remove_fd(sock.fd);
    ::close(sock.fd);
    sock.fd = -1;
    sock.handler = nullptr;
  }
}

util::IpAddress UdpTransport::local_ip(std::size_t port) const {
  GS_CHECK(port < socks_.size());
  return socks_[port].spec.ip;
}

util::MacAddress UdpTransport::local_mac(std::size_t port) const {
  GS_CHECK(port < socks_.size());
  return socks_[port].spec.mac;
}

std::uint16_t UdpTransport::udp_port(std::size_t port) const {
  GS_CHECK(port < socks_.size());
  return socks_[port].udp_port;
}

util::VlanId UdpTransport::vlan_of(std::size_t port) const {
  GS_CHECK(port < socks_.size());
  return socks_[port].spec.vlan;
}

bool UdpTransport::loopback_ok(std::size_t port) const {
  GS_CHECK(port < socks_.size());
  return !closed_ && socks_[port].fd >= 0;
}

void UdpTransport::set_receive_handler(std::size_t port,
                                       ReceiveHandler handler) {
  GS_CHECK(port < socks_.size());
  if (closed_) return;
  socks_[port].handler = std::move(handler);
}

bool UdpTransport::send_to_port(std::size_t index, std::uint16_t dst_port,
                                const Payload& frame) {
  const Sock& sock = socks_[index];
  const auto bytes = frame.bytes();
  const sockaddr_in addr = loopback_addr(dst_port);
  const ssize_t n =
      ::sendto(sock.fd, bytes.data(), bytes.size(), 0,
               reinterpret_cast<const sockaddr*>(&addr), sizeof(addr));
  if (n < 0) {
    // Matches the wire model: a full socket buffer (or a receiver that went
    // away) is in-flight loss, which a real sender cannot observe.
    ++stats_.send_errors;
    return true;
  }
  ++stats_.frames_sent;
  stats_.bytes_sent += static_cast<std::uint64_t>(n);
  return true;
}

bool UdpTransport::unicast(std::size_t port, util::IpAddress dst,
                           Payload frame) {
  GS_CHECK(port < socks_.size());
  if (closed_ || socks_[port].fd < 0) return false;
  const auto dst_port = map_.port_of(dst);
  if (!dst_port) {
    // No such endpoint registered — the unreachable-receiver case.
    ++stats_.send_errors;
    return true;
  }
  return send_to_port(port, *dst_port, frame);
}

bool UdpTransport::multicast(std::size_t port, util::IpAddress group,
                             Payload frame) {
  GS_CHECK(port < socks_.size());
  (void)group;  // one beacon group per VLAN; the range *is* the group
  if (closed_ || socks_[port].fd < 0) return false;
  const Sock& sock = socks_[port];
  for (const std::uint16_t dst_port : map_.vlan_ports(sock.spec.vlan)) {
    if (dst_port == sock.udp_port) continue;  // never self-deliver
    send_to_port(port, dst_port, frame);
  }
  return true;
}

void UdpTransport::on_readable(std::size_t index) {
  Sock& sock = socks_[index];
  std::vector<std::uint8_t> buf;
  while (sock.fd >= 0) {
    buf.resize(64 * 1024);
    sockaddr_in src{};
    socklen_t src_len = sizeof(src);
    const ssize_t n =
        ::recvfrom(sock.fd, buf.data(), buf.size(), 0,
                   reinterpret_cast<sockaddr*>(&src), &src_len);
    if (n < 0) {
      if (errno != EAGAIN && errno != EWOULDBLOCK && errno != EINTR) {
        GS_LOG(kDebug, "udp") << "recvfrom: " << std::strerror(errno);
      }
      return;
    }
    const auto src_ip = map_.ip_of(ntohs(src.sin_port));
    if (!src_ip) {
      ++stats_.recv_unknown;  // not part of this deployment — drop
      continue;
    }
    ++stats_.frames_received;
    if (sock.handler == nullptr) continue;  // daemon not started yet

    buf.resize(static_cast<std::size_t>(n));
    Datagram dgram;
    dgram.src = *src_ip;
    dgram.dst = sock.spec.ip;
    dgram.vlan = sock.spec.vlan;
    dgram.payload = Payload::wrap(std::move(buf));
    buf = std::vector<std::uint8_t>();
    // The handler may halt the daemon or close this transport mid-loop;
    // the `sock.fd >= 0` guard re-checks before the next recvfrom.
    sock.handler(dgram);
  }
}

}  // namespace gs::net
