// A network switch: ports with VLAN assignments.
//
// Océano isolates customer domains with private VLANs enforced by switches
// (paper §1, §3.1); GulfStream Central moves nodes between domains by
// rewriting a port's VLAN through the switch console. A whole-switch
// failure takes every attached adapter off the network at once — the event
// GSC's correlation function must recognize (§3).
#pragma once

#include <optional>
#include <vector>

#include "util/check.h"
#include "util/ids.h"

namespace gs::net {

class Switch {
 public:
  Switch(util::SwitchId id, std::size_t port_count)
      : id_(id), ports_(port_count) {}

  [[nodiscard]] util::SwitchId id() const { return id_; }
  [[nodiscard]] std::size_t port_count() const { return ports_.size(); }

  [[nodiscard]] bool failed() const { return failed_; }
  void set_failed(bool failed) { failed_ = failed; }

  void connect(util::PortId port, util::AdapterId adapter, util::VlanId vlan) {
    Port& p = port_ref(port);
    GS_CHECK_MSG(!p.adapter.valid(), "port already wired");
    p.adapter = adapter;
    p.vlan = vlan;
  }

  void disconnect(util::PortId port) { port_ref(port) = Port{}; }

  void set_port_vlan(util::PortId port, util::VlanId vlan) {
    port_ref(port).vlan = vlan;
  }

  [[nodiscard]] util::VlanId port_vlan(util::PortId port) const {
    return port_ref(port).vlan;
  }
  [[nodiscard]] util::AdapterId port_adapter(util::PortId port) const {
    return port_ref(port).adapter;
  }

  // All adapters currently wired to this switch (regardless of VLAN).
  [[nodiscard]] std::vector<util::AdapterId> wired_adapters() const {
    std::vector<util::AdapterId> out;
    for (const Port& p : ports_)
      if (p.adapter.valid()) out.push_back(p.adapter);
    return out;
  }

  [[nodiscard]] std::optional<util::PortId> free_port() const {
    for (std::size_t i = 0; i < ports_.size(); ++i)
      if (!ports_[i].adapter.valid())
        return util::PortId(static_cast<std::uint32_t>(i));
    return std::nullopt;
  }

 private:
  struct Port {
    util::AdapterId adapter;
    util::VlanId vlan;
  };

  Port& port_ref(util::PortId port) {
    GS_CHECK(port.valid() && port.value() < ports_.size());
    return ports_[port.value()];
  }
  const Port& port_ref(util::PortId port) const {
    GS_CHECK(port.valid() && port.value() < ports_.size());
    return ports_[port.value()];
  }

  util::SwitchId id_;
  bool failed_ = false;
  std::vector<Port> ports_;
};

}  // namespace gs::net
