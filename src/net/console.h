// SwitchConsole — the SNMP-like management plane of the switches.
//
// The paper assumes "access to any configuration database and the switch
// consoles is only through the administrative network" (§2). GulfStream
// Central reconfigures VLAN membership through this interface (§3.1), and
// the future-work plan has GSC discovering port wiring by "querying the
// routers and switches directly using SNMP" (§3) — walk_ports() is that
// query. An access gate models reachability: when the caller's path to the
// admin network is down, every operation fails, exactly like an SNMP
// timeout.
#pragma once

#include <functional>
#include <optional>
#include <vector>

#include "net/fabric.h"
#include "util/ids.h"

namespace gs::net {

class SwitchConsole {
 public:
  explicit SwitchConsole(Fabric& fabric) : fabric_(fabric) {}

  // Installs the reachability gate; default is always-reachable. The farm
  // harness wires this to "the calling node's administrative adapter is
  // healthy".
  void set_access_check(std::function<bool()> check) {
    access_check_ = std::move(check);
  }

  [[nodiscard]] bool reachable() const {
    return !access_check_ || access_check_();
  }

  struct PortInfo {
    util::PortId port;
    util::AdapterId adapter;  // invalid if the port is unwired
    util::VlanId vlan;
    // The attached station's MAC, as a real switch's bridge forwarding
    // table (BRIDGE-MIB) would report it; zero when the port is unwired.
    util::MacAddress mac;
  };

  // snmpwalk-style dump of one switch's port table.
  [[nodiscard]] std::optional<std::vector<PortInfo>> walk_ports(
      util::SwitchId sw) const;

  [[nodiscard]] std::optional<util::VlanId> get_port_vlan(
      util::SwitchId sw, util::PortId port) const;

  // The reconfiguration primitive: rewrites one port's VLAN. Returns false
  // if the console is unreachable or the switch is down.
  bool set_port_vlan(util::SwitchId sw, util::PortId port, util::VlanId vlan);

  // Number of successful set operations (benches count reconfigurations).
  [[nodiscard]] std::uint64_t set_operations() const { return sets_; }

 private:
  Fabric& fabric_;
  std::function<bool()> access_check_;
  std::uint64_t sets_ = 0;
};

}  // namespace gs::net
