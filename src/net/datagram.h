// The unit of delivery on the simulated network.
#pragma once

#include <cstdint>
#include <vector>

#include "util/ids.h"
#include "util/ip.h"

namespace gs::net {

struct Datagram {
  util::IpAddress src;
  util::IpAddress dst;   // unicast target, or the multicast group address
  bool multicast = false;
  util::VlanId vlan;     // broadcast domain the datagram traversed
  std::vector<std::uint8_t> bytes;  // a complete wire::Frame
};

// The well-known multicast group GulfStream beacons on (paper §2.1: "a
// well-known address and port").
inline constexpr util::IpAddress kBeaconGroup{239, 255, 0, 1};

}  // namespace gs::net
