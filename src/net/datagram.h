// The unit of delivery on the simulated network.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "net/payload.h"
#include "util/ids.h"
#include "util/ip.h"

namespace gs::net {

// Frames are immutable once they leave the sending NIC, so a broadcast
// shares one refcounted buffer across every in-flight copy instead of
// cloning the bytes per receiver — the allocation cost of a multicast is
// O(1) in the receiver count, matching the wire model (one frame on the
// segment regardless of fan-out). The shared Payload also carries the
// decode-once cache (see payload.h).
[[nodiscard]] inline Payload make_payload(std::vector<std::uint8_t> bytes) {
  return Payload::wrap(std::move(bytes));
}

struct Datagram {
  util::IpAddress src;
  util::IpAddress dst;   // unicast target, or the multicast group address
  bool multicast = false;
  util::VlanId vlan;     // broadcast domain the datagram traversed
  Payload payload;       // a complete wire::Frame; shared, never mutated

  [[nodiscard]] std::span<const std::uint8_t> bytes() const {
    return payload.bytes();
  }
};

// The well-known multicast group GulfStream beacons on (paper §2.1: "a
// well-known address and port").
inline constexpr util::IpAddress kBeaconGroup{239, 255, 0, 1};

}  // namespace gs::net
