#include "net/fabric.h"

#include <algorithm>

#include "obs/trace.h"
#include "util/check.h"
#include "util/logging.h"

namespace gs::net {

std::string_view to_string(HealthState s) {
  switch (s) {
    case HealthState::kUp: return "up";
    case HealthState::kDown: return "down";
    case HealthState::kRecvDead: return "recv-dead";
    case HealthState::kSendDead: return "send-dead";
  }
  return "?";
}

Fabric::Fabric(sim::Simulator& sim, util::Rng rng) : sim_(sim), rng_(rng) {}

util::SwitchId Fabric::add_switch(std::size_t ports) {
  const util::SwitchId id(static_cast<std::uint32_t>(switches_.size()));
  switches_.push_back(std::make_unique<Switch>(id, ports));
  return id;
}

util::AdapterId Fabric::add_adapter(util::NodeId node) {
  const util::AdapterId id(static_cast<std::uint32_t>(adapters_.size()));
  const util::MacAddress mac(0x02'00'00'00'00'00ull + id.value());
  adapters_.push_back(std::make_unique<Adapter>(id, node, mac));
  return id;
}

void Fabric::attach(util::AdapterId adapter_id, util::SwitchId sw,
                    util::PortId port, util::VlanId vlan) {
  Adapter& a = adapter(adapter_id);
  Switch& s = nic_switch(sw);
  s.connect(port, adapter_id, vlan);
  a.attach(sw, port);
  (void)segment(vlan);  // materialize the segment with the default model
}

void Fabric::attach(util::AdapterId adapter_id, util::SwitchId sw,
                    util::VlanId vlan) {
  auto port = nic_switch(sw).free_port();
  GS_CHECK_MSG(port.has_value(), "switch has no free ports");
  attach(adapter_id, sw, *port, vlan);
}

Adapter& Fabric::adapter(util::AdapterId id) {
  GS_CHECK(id.valid() && id.value() < adapters_.size());
  return *adapters_[id.value()];
}

const Adapter& Fabric::adapter(util::AdapterId id) const {
  GS_CHECK(id.valid() && id.value() < adapters_.size());
  return *adapters_[id.value()];
}

Switch& Fabric::nic_switch(util::SwitchId id) {
  GS_CHECK(id.valid() && id.value() < switches_.size());
  return *switches_[id.value()];
}

const Switch& Fabric::nic_switch(util::SwitchId id) const {
  GS_CHECK(id.valid() && id.value() < switches_.size());
  return *switches_[id.value()];
}

Segment& Fabric::segment(util::VlanId vlan) {
  GS_CHECK(vlan.valid());
  auto it = segments_.find(vlan);
  if (it == segments_.end()) {
    it = segments_
             .emplace(vlan, Segment(vlan, default_channel_,
                                    rng_.fork(0x5e6 + vlan.value())))
             .first;
  }
  return it->second;
}

std::vector<util::AdapterId> Fabric::all_adapters() const {
  std::vector<util::AdapterId> out;
  out.reserve(adapters_.size());
  for (const auto& a : adapters_) out.push_back(a->id());
  return out;
}

std::vector<util::SwitchId> Fabric::all_switches() const {
  std::vector<util::SwitchId> out;
  out.reserve(switches_.size());
  for (const auto& s : switches_) out.push_back(s->id());
  return out;
}

std::vector<util::AdapterId> Fabric::node_adapters(util::NodeId node) const {
  std::vector<util::AdapterId> out;
  for (const auto& a : adapters_)
    if (a->node() == node) out.push_back(a->id());
  return out;
}

util::VlanId Fabric::vlan_of(util::AdapterId id) const {
  const Adapter& a = adapter(id);
  if (!a.attached_switch().valid()) return util::VlanId::invalid();
  const Switch& s = nic_switch(a.attached_switch());
  if (s.failed()) return util::VlanId::invalid();
  return s.port_vlan(a.attached_port());
}

std::vector<util::AdapterId> Fabric::adapters_in_vlan(
    util::VlanId vlan) const {
  std::vector<util::AdapterId> out;
  for (const auto& a : adapters_)
    if (vlan_of(a->id()) == vlan) out.push_back(a->id());
  return out;
}

bool Fabric::reachable(util::AdapterId from, util::AdapterId to) const {
  if (from == to) return false;
  const Adapter& src = adapter(from);
  const Adapter& dst = adapter(to);
  if (!src.can_send() || !dst.can_recv()) return false;
  const util::VlanId vlan = vlan_of(from);
  if (!vlan.valid() || vlan_of(to) != vlan) return false;
  auto it = segments_.find(vlan);
  if (it != segments_.end() && !it->second.connected(from, to)) return false;
  return true;
}

void Fabric::set_adapter_ip(util::AdapterId id, util::IpAddress ip) {
  Adapter& a = adapter(id);
  if (a.ip() == ip) return;
  if (!a.ip().is_unspecified()) {
    auto& holders = by_ip_[a.ip().bits()];
    std::erase(holders, id);
    if (holders.empty()) by_ip_.erase(a.ip().bits());
  }
  a.set_ip(ip);
  if (!ip.is_unspecified()) by_ip_[ip.bits()].push_back(id);
}

std::optional<util::AdapterId> Fabric::find_by_ip(util::VlanId vlan,
                                                  util::IpAddress ip) const {
  auto it = by_ip_.find(ip.bits());
  if (it == by_ip_.end()) return std::nullopt;
  for (util::AdapterId id : it->second)
    if (vlan_of(id) == vlan) return id;
  return std::nullopt;
}

std::uint16_t Fabric::peek_frame_type(
    const std::vector<std::uint8_t>& bytes) const {
  // Frame layout: type lives at offset 6..7 (see wire/frame.h).
  if (bytes.size() < 8) return 0xFFFF;
  return static_cast<std::uint16_t>(bytes[6] | (bytes[7] << 8));
}

void Fabric::deliver_later(util::AdapterId to, Datagram dgram,
                           sim::SimDuration latency) {
  sim_.after(latency, [this, to, dgram = std::move(dgram)] {
    const Adapter& dst = adapter(to);
    // Re-check at delivery time: the receiver may have died or been moved
    // to another VLAN while the frame was in flight.
    if (!dst.can_recv() || vlan_of(to) != dgram.vlan) {
      loads_[dgram.vlan].frames_unreachable++;
      return;
    }
    loads_[dgram.vlan].frames_delivered++;
    dst.deliver(dgram);
  });
}

bool Fabric::send(util::AdapterId from, util::IpAddress dst,
                  std::vector<std::uint8_t> bytes) {
  const Adapter& src = adapter(from);
  const util::VlanId vlan = vlan_of(from);
  if (!src.can_send() || !vlan.valid()) return false;

  SegmentLoad& load = loads_[vlan];
  load.frames_sent++;
  load.bytes_sent += bytes.size();
  total_frames_sent_++;
  total_bytes_sent_ += bytes.size();
  frames_by_type_[peek_frame_type(bytes)]++;

  Segment& seg = segment(vlan);
  const auto target = find_by_ip(vlan, dst);
  if (!target || *target == from || !seg.connected(from, *target) ||
      !adapter(*target).can_recv()) {
    load.frames_unreachable++;
    return true;  // the frame left the NIC; the sender cannot tell
  }
  const auto latency = seg.sample_delivery();
  if (!latency) {
    load.frames_lost++;
    return true;
  }
  Datagram dgram{src.ip(), dst, /*multicast=*/false, vlan, std::move(bytes)};
  deliver_later(*target, std::move(dgram), *latency);
  return true;
}

bool Fabric::multicast(util::AdapterId from, util::IpAddress group,
                       std::vector<std::uint8_t> bytes) {
  const Adapter& src = adapter(from);
  const util::VlanId vlan = vlan_of(from);
  if (!src.can_send() || !vlan.valid()) return false;

  SegmentLoad& load = loads_[vlan];
  load.frames_sent++;  // broadcast medium: one frame on the wire
  load.bytes_sent += bytes.size();
  total_frames_sent_++;
  total_bytes_sent_ += bytes.size();
  frames_by_type_[peek_frame_type(bytes)]++;

  Segment& seg = segment(vlan);
  Datagram proto{src.ip(), group, /*multicast=*/true, vlan, std::move(bytes)};
  for (const auto& a : adapters_) {
    if (a->id() == from) continue;
    if (vlan_of(a->id()) != vlan) continue;
    if (!seg.connected(from, a->id())) continue;
    if (!a->can_recv()) {
      load.frames_unreachable++;
      continue;
    }
    const auto latency = seg.sample_delivery();
    if (!latency) {
      load.frames_lost++;
      continue;
    }
    deliver_later(a->id(), proto, *latency);
  }
  return true;
}

void Fabric::set_adapter_health(util::AdapterId id, HealthState health) {
  GS_LOG(kDebug, "fabric") << adapter(id).ip() << " health -> "
                           << to_string(health);
  adapter(id).set_health(health);
}

void Fabric::fail_node(util::NodeId node) {
  for (util::AdapterId id : node_adapters(node))
    set_adapter_health(id, HealthState::kDown);
}

void Fabric::recover_node(util::NodeId node) {
  for (util::AdapterId id : node_adapters(node))
    set_adapter_health(id, HealthState::kUp);
}

void Fabric::fail_switch(util::SwitchId id) { nic_switch(id).set_failed(true); }

void Fabric::recover_switch(util::SwitchId id) {
  nic_switch(id).set_failed(false);
}

void Fabric::partition_vlan(
    util::VlanId vlan, const std::vector<std::vector<util::AdapterId>>& parts) {
  segment(vlan).partition(parts);
}

void Fabric::heal_vlan(util::VlanId vlan) { segment(vlan).heal(); }

void Fabric::set_port_vlan(util::SwitchId sw, util::PortId port,
                           util::VlanId vlan) {
  nic_switch(sw).set_port_vlan(port, vlan);
  (void)segment(vlan);  // ensure the segment exists
}

const SegmentLoad& Fabric::load(util::VlanId vlan) { return loads_[vlan]; }

void Fabric::reset_load_accounting() {
  loads_.clear();
  frames_by_type_.clear();
  total_frames_sent_ = 0;
  total_bytes_sent_ = 0;
}

void Fabric::enable_load_sampling(sim::SimDuration period) {
  GS_CHECK(period > 0);
  load_sample_period_ = period;
  load_sample_timer_.cancel();
  load_sample_timer_ =
      sim_.after(load_sample_period_, [this] { sample_loads(); });
}

void Fabric::sample_loads() {
  if (trace_ != nullptr &&
      trace_->wants_kind(obs::TraceKind::kWireSample)) {
    for (const auto& [vlan, load] : loads_) {
      obs::TraceRecord record;
      record.kind = obs::TraceKind::kWireSample;
      record.severity = obs::Severity::kDebug;
      record.time = sim_.now();
      record.vlan = vlan;
      record.a = load.frames_sent;
      record.b = load.bytes_sent;
      trace_->publish(record);
    }
  }
  load_sample_timer_ =
      sim_.after(load_sample_period_, [this] { sample_loads(); });
}

}  // namespace gs::net
