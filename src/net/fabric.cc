#include "net/fabric.h"

#include <algorithm>

#include "net/shard_router.h"
#include "obs/trace.h"
#include "util/check.h"
#include "util/logging.h"

namespace gs::net {

std::string_view to_string(HealthState s) {
  switch (s) {
    case HealthState::kUp: return "up";
    case HealthState::kDown: return "down";
    case HealthState::kRecvDead: return "recv-dead";
    case HealthState::kSendDead: return "send-dead";
  }
  return "?";
}

Fabric::Fabric(sim::Simulator& sim, util::Rng rng) : sim_(sim), rng_(rng) {}

util::SwitchId Fabric::add_switch(std::size_t ports) {
  const util::SwitchId id(static_cast<std::uint32_t>(switches_.size()));
  switches_.push_back(std::make_unique<Switch>(id, ports));
  return id;
}

util::AdapterId Fabric::add_adapter(util::NodeId node) {
  const util::AdapterId id(static_cast<std::uint32_t>(adapters_.size()));
  const util::MacAddress mac(0x02'00'00'00'00'00ull + id.value());
  adapters_.push_back(std::make_unique<Adapter>(id, node, mac));
  return id;
}

void Fabric::attach(util::AdapterId adapter_id, util::SwitchId sw,
                    util::PortId port, util::VlanId vlan) {
  Adapter& a = adapter(adapter_id);
  Switch& s = nic_switch(sw);
  s.connect(port, adapter_id, vlan);
  a.attach(sw, port);
  index_add(vlan, adapter_id);
  (void)segment(vlan);  // materialize the segment with the default model
}

void Fabric::attach(util::AdapterId adapter_id, util::SwitchId sw,
                    util::VlanId vlan) {
  auto port = nic_switch(sw).free_port();
  GS_CHECK_MSG(port.has_value(), "switch has no free ports");
  attach(adapter_id, sw, *port, vlan);
}

Adapter& Fabric::adapter(util::AdapterId id) {
  GS_CHECK(id.valid() && id.value() < adapters_.size());
  return *adapters_[id.value()];
}

const Adapter& Fabric::adapter(util::AdapterId id) const {
  GS_CHECK(id.valid() && id.value() < adapters_.size());
  return *adapters_[id.value()];
}

Switch& Fabric::nic_switch(util::SwitchId id) {
  GS_CHECK(id.valid() && id.value() < switches_.size());
  return *switches_[id.value()];
}

const Switch& Fabric::nic_switch(util::SwitchId id) const {
  GS_CHECK(id.valid() && id.value() < switches_.size());
  return *switches_[id.value()];
}

Segment& Fabric::segment(util::VlanId vlan) {
  GS_CHECK(vlan.valid());
  auto it = segments_.find(vlan);
  if (it == segments_.end()) {
    it = segments_
             .emplace(vlan, Segment(vlan, default_channel_,
                                    rng_.fork(0x5e6 + vlan.value())))
             .first;
  }
  return it->second;
}

std::vector<util::AdapterId> Fabric::all_adapters() const {
  std::vector<util::AdapterId> out;
  out.reserve(adapters_.size());
  for (const auto& a : adapters_) out.push_back(a->id());
  return out;
}

std::vector<util::SwitchId> Fabric::all_switches() const {
  std::vector<util::SwitchId> out;
  out.reserve(switches_.size());
  for (const auto& s : switches_) out.push_back(s->id());
  return out;
}

std::vector<util::AdapterId> Fabric::node_adapters(util::NodeId node) const {
  std::vector<util::AdapterId> out;
  for (const auto& a : adapters_)
    if (a->node() == node) out.push_back(a->id());
  return out;
}

util::VlanId Fabric::vlan_of(util::AdapterId id) const {
  const Adapter& a = adapter(id);
  if (!a.attached_switch().valid()) return util::VlanId::invalid();
  const Switch& s = nic_switch(a.attached_switch());
  if (s.failed()) return util::VlanId::invalid();
  return s.port_vlan(a.attached_port());
}

std::vector<util::AdapterId> Fabric::adapters_in_vlan(
    util::VlanId vlan) const {
  std::vector<util::AdapterId> out;
  for (util::AdapterId id : vlan_members(vlan))
    if (vlan_of(id) == vlan) out.push_back(id);  // live-switch members only
  return out;
}

const std::vector<util::AdapterId>& Fabric::vlan_members(
    util::VlanId vlan) const {
  static const std::vector<util::AdapterId> kEmpty;
  auto it = vlan_index_.find(vlan);
  return it == vlan_index_.end() ? kEmpty : it->second;
}

std::vector<util::VlanId> Fabric::indexed_vlans() const {
  std::vector<util::VlanId> out;
  for (const auto& [vlan, members] : vlan_index_)
    if (!members.empty()) out.push_back(vlan);
  return out;
}

void Fabric::set_shard_router(ShardRouter* router, std::size_t shard) {
  router_ = router;
  shard_id_ = shard;
}

bool Fabric::vlan_index_consistent() const {
  std::map<util::VlanId, std::vector<util::AdapterId>> truth;
  for (const auto& s : switches_) {
    for (std::size_t p = 0; p < s->port_count(); ++p) {
      const util::PortId port(static_cast<std::uint32_t>(p));
      const util::AdapterId a = s->port_adapter(port);
      if (a.valid()) truth[s->port_vlan(port)].push_back(a);
    }
  }
  for (auto& [vlan, members] : truth) std::sort(members.begin(), members.end());
  for (const auto& [vlan, members] : vlan_index_) {
    auto it = truth.find(vlan);
    if (it == truth.end()) {
      if (!members.empty()) return false;
      continue;
    }
    if (it->second != members) return false;
    truth.erase(it);
  }
  for (const auto& [vlan, members] : truth)
    if (!members.empty()) return false;
  return true;
}

void Fabric::index_add(util::VlanId vlan, util::AdapterId id) {
  auto& members = vlan_index_[vlan];
  auto it = std::lower_bound(members.begin(), members.end(), id);
  GS_CHECK_MSG(it == members.end() || *it != id,
               "adapter already indexed in vlan");
  members.insert(it, id);
}

void Fabric::index_remove(util::VlanId vlan, util::AdapterId id) {
  auto map_it = vlan_index_.find(vlan);
  GS_CHECK(map_it != vlan_index_.end());
  auto& members = map_it->second;
  auto it = std::lower_bound(members.begin(), members.end(), id);
  GS_CHECK_MSG(it != members.end() && *it == id, "adapter not indexed in vlan");
  members.erase(it);
}

bool Fabric::reachable(util::AdapterId from, util::AdapterId to) const {
  if (from == to) return false;
  const Adapter& src = adapter(from);
  const Adapter& dst = adapter(to);
  if (!src.can_send() || !dst.can_recv()) return false;
  const util::VlanId vlan = vlan_of(from);
  if (!vlan.valid() || vlan_of(to) != vlan) return false;
  auto it = segments_.find(vlan);
  if (it != segments_.end() && !it->second.connected(from, to)) return false;
  return true;
}

void Fabric::set_adapter_ip(util::AdapterId id, util::IpAddress ip) {
  Adapter& a = adapter(id);
  if (a.ip() == ip) return;
  if (!a.ip().is_unspecified()) {
    auto& holders = by_ip_[a.ip().bits()];
    std::erase(holders, id);
    if (holders.empty()) by_ip_.erase(a.ip().bits());
  }
  a.set_ip(ip);
  if (!ip.is_unspecified()) by_ip_[ip.bits()].push_back(id);
}

std::optional<util::AdapterId> Fabric::find_by_ip(util::VlanId vlan,
                                                  util::IpAddress ip) const {
  auto it = by_ip_.find(ip.bits());
  if (it == by_ip_.end()) return std::nullopt;
  // Deterministic winner among duplicate holders: lowest AdapterId on the
  // VLAN, independent of the order IPs were assigned in.
  std::optional<util::AdapterId> best;
  for (util::AdapterId id : it->second)
    if (vlan_of(id) == vlan && (!best || id < *best)) best = id;
  return best;
}

std::uint16_t Fabric::peek_frame_type(
    std::span<const std::uint8_t> bytes) const {
  // Frame layout: type lives at offset 6..7 (see wire/frame.h).
  if (bytes.size() < 8) return 0xFFFF;
  return static_cast<std::uint16_t>(bytes[6] | (bytes[7] << 8));
}

std::uint32_t Fabric::park_frame(Datagram dgram, SegmentLoad& load) {
  std::uint32_t slot;
  if (pending_free_.empty()) {
    slot = static_cast<std::uint32_t>(pending_.size());
    pending_.emplace_back();
  } else {
    slot = pending_free_.back();
    pending_free_.pop_back();
  }
  pending_[slot].dgram = std::move(dgram);
  pending_[slot].load = &load;
  return slot;
}

void Fabric::release_frame(std::uint32_t slot) {
  pending_[slot].dgram = Datagram{};  // drop the payload reference eagerly
  pending_free_.push_back(slot);
}

void Fabric::complete_delivery(std::uint32_t slot, util::AdapterId to) {
  // Safe to hold across deliver(): pool addresses are stable (deque) and the
  // slot cannot be recycled while this delivery's `remaining` count is held.
  PendingFrame& frame = pending_[slot];
  const Datagram& dgram = frame.dgram;
  SegmentLoad& load = *frame.load;
  const Adapter& dst = adapter(to);
  // Re-check at delivery time: the receiver may have died or been moved
  // to another VLAN while the frame was in flight.
  if (!dst.can_recv() || vlan_of(to) != dgram.vlan) {
    load.frames_unreachable++;
  } else {
    load.frames_delivered++;
    dst.deliver(dgram);
  }
  if (--frame.remaining == 0) release_frame(slot);
}

std::uint32_t Fabric::park_corrupted(std::uint32_t slot, Segment& seg) {
  const Datagram& clean = pending_[slot].dgram;
  SegmentLoad& load = *pending_[slot].load;
  const std::span<const std::uint8_t> bytes = clean.bytes();
  std::vector<std::uint8_t> flipped(bytes.begin(), bytes.end());
  // XOR with a nonzero mask guarantees the byte actually changes.
  flipped[seg.sample_corrupt_index(flipped.size())] ^= 0xFF;
  // remaining stays 0: the caller accounts for the delivery it schedules,
  // exactly as with park_frame.
  return park_frame(Datagram{clean.src, clean.dst, clean.multicast, clean.vlan,
                             make_payload(std::move(flipped))},
                    load);
}

void Fabric::append_delivery(sim::SimTime due, std::uint32_t pslot,
                             util::AdapterId to) {
  std::uint32_t b = 0;
  bool found = false;
  // The direct-mapped index resolves the open batch for `due` in ~one probe.
  // Slots tagged with an older epoch count as empty, and a lookup can stop
  // at the first one: inserts always claim the earliest empty slot on the
  // probe path, so a hit would have appeared before it.
  constexpr std::size_t kMask = kOpenLutSize - 1;
  std::size_t i = static_cast<std::size_t>(due) & kMask;
  std::size_t insert_at = kOpenLutSize;  // sentinel: probe cap exhausted
  for (std::size_t probe = 0; probe < kOpenLutMaxProbe;
       ++probe, i = (i + 1) & kMask) {
    const OpenLutSlot& s = open_lut_[i];
    if (s.tag != open_lut_tag_) {
      insert_at = i;
      break;
    }
    if (s.due == due) {
      b = s.batch;
      found = true;
      break;
    }
  }
  if (!found && insert_at == kOpenLutSize) {
    // Pathologically clustered deadlines overflow the probe cap; fall back
    // to scanning the open list (and leave such deadlines out of the index,
    // so later appends for them take this same path and still find them).
    for (const auto& [when, idx] : open_batches_) {
      if (when == due) {
        b = idx;
        found = true;
        break;
      }
    }
  }
  if (!found) {
    if (batch_free_.empty()) {
      b = static_cast<std::uint32_t>(batches_.size());
      batches_.emplace_back();
    } else {
      b = batch_free_.back();
      batch_free_.pop_back();
    }
    open_batches_.emplace_back(due, b);
    if (insert_at != kOpenLutSize) open_lut_[insert_at] = {open_lut_tag_, b, due};
  }
  batches_[b].entries.emplace_back(pslot, to);
  pending_[pslot].remaining++;
}

void Fabric::flush_batches() {
  for (const auto& [due, b] : open_batches_) {
    DeliveryBatch& batch = batches_[b];
    if (batch.entries.size() == 1) {
      // Lone receiver at this deadline: deliver directly, skip the batch
      // hop. Identical order either way — one event at `due` either path.
      const std::uint32_t pslot = batch.entries[0].first;
      const util::AdapterId to = batch.entries[0].second;
      batch.entries.clear();
      batch_free_.push_back(b);
      sim_.at(due, [this, pslot, to] { complete_delivery(pslot, to); });
    } else {
      sim_.at(due, [this, b] { run_batch(b); });
    }
  }
  open_batches_.clear();
  // Invalidate the whole direct-mapped index in O(1). On the (unreachable in
  // practice) tag wrap, scrub the slots so tag-0 defaults stay distinct.
  if (++open_lut_tag_ == 0) {
    open_lut_.fill(OpenLutSlot{});
    open_lut_tag_ = 1;
  }
}

void Fabric::run_batch(std::uint32_t b) {
  // Safe across re-entry: deque addresses are stable, and slot b cannot be
  // recycled (or its entries touched) until the free-list push below —
  // nested multicasts only ever allocate other slots.
  DeliveryBatch& batch = batches_[b];
  for (const auto& [pslot, to] : batch.entries) complete_delivery(pslot, to);
  batch.entries.clear();
  batch_free_.push_back(b);
}

bool Fabric::send(util::AdapterId from, util::IpAddress dst, Payload payload) {
  const Adapter& src = adapter(from);
  const util::VlanId vlan = vlan_of(from);
  if (!src.can_send() || !vlan.valid()) return false;

  SegmentLoad& load = loads_[vlan];
  load.frames_sent++;
  load.bytes_sent += payload.size();
  total_frames_sent_++;
  total_bytes_sent_ += payload.size();
  frames_by_type_[peek_frame_type(payload.bytes())]++;

  Segment& seg = segment(vlan);
  const auto target = find_by_ip(vlan, dst);
  if (!target || *target == from || !seg.connected(from, *target) ||
      !adapter(*target).can_recv()) {
    // An IP with no local holder may live on another shard of this VLAN;
    // hand the bytes to the router instead of declaring it unreachable. A
    // *local* holder that is dead/partitioned stays a local non-delivery.
    if (!target && router_ != nullptr &&
        router_->spans_other_shards(shard_id_, vlan)) {
      const std::span<const std::uint8_t> bytes = payload.bytes();
      router_->forward(shard_id_,
                       ForeignFrame{src.ip(), dst, /*multicast=*/false, vlan,
                                    sim_.now(),
                                    {bytes.begin(), bytes.end()}});
      return true;
    }
    load.frames_unreachable++;
    return true;  // the frame left the NIC; the sender cannot tell
  }
  const auto latency = seg.sample_delivery();
  if (!latency) {
    load.frames_lost++;
    return true;
  }
  std::uint32_t slot = park_frame(
      Datagram{src.ip(), dst, /*multicast=*/false, vlan, std::move(payload)},
      load);
  // Corruption injection clones the frame so the receiver gets its own
  // mutated payload; the guard keeps the default model free of RNG draws.
  if (seg.model().corrupt_probability > 0 && seg.sample_corruption()) {
    load.frames_corrupted++;
    const std::uint32_t corrupted = park_corrupted(slot, seg);
    release_frame(slot);  // remaining still 0: no delivery was scheduled
    slot = corrupted;
  }
  pending_[slot].remaining = 1;
  const util::AdapterId to = *target;
  sim_.after(*latency, [this, slot, to] { complete_delivery(slot, to); });
  return true;
}

bool Fabric::multicast(util::AdapterId from, util::IpAddress group,
                       Payload payload) {
  const Adapter& src = adapter(from);
  const util::VlanId vlan = vlan_of(from);
  if (!src.can_send() || !vlan.valid()) return false;

  SegmentLoad& load = loads_[vlan];
  load.frames_sent++;  // broadcast medium: one frame on the wire
  load.bytes_sent += payload.size();
  total_frames_sent_++;
  total_bytes_sent_ += payload.size();
  frames_by_type_[peek_frame_type(payload.bytes())]++;

  Segment& seg = segment(vlan);
  // The frame is parked once — one payload allocation, one pool slot — and
  // every scheduled delivery shares it by slot reference.
  const std::uint32_t slot = park_frame(
      Datagram{src.ip(), group, /*multicast=*/true, vlan, std::move(payload)},
      load);
  const bool may_corrupt = seg.model().corrupt_probability > 0;
  // Consecutive members usually share a switch; cache the liveness lookup.
  util::SwitchId cached_sw = util::SwitchId::invalid();
  bool cached_sw_failed = false;
  // Only this VLAN's wired members — not the whole farm. Receivers the
  // frame cannot reach (dead switch, partition, dead adapter) count as
  // unreachable, exactly as the unicast path counts them; only members
  // rewired to another VLAN are out of scope entirely.
  for (util::AdapterId id : vlan_members(vlan)) {
    if (id == from) continue;
    const Adapter& a = adapter(id);
    if (a.attached_switch() != cached_sw) {
      cached_sw = a.attached_switch();
      cached_sw_failed = nic_switch(cached_sw).failed();
    }
    if (cached_sw_failed || !seg.connected(from, id) || !a.can_recv()) {
      load.frames_unreachable++;
      continue;
    }
    const auto latency = seg.sample_delivery();
    if (!latency) {
      load.frames_lost++;
      continue;
    }
    std::uint32_t pslot = slot;
    if (may_corrupt && seg.sample_corruption()) {
      // This receiver alone sees flipped bytes: it gets a private payload
      // copy in its own pool slot, leaving the shared frame — and the
      // decode cache every clean receiver reuses — untouched. It still
      // joins its deadline's batch, so member-order delivery is preserved.
      load.frames_corrupted++;
      pslot = park_corrupted(slot, seg);
    }
    append_delivery(sim_.now() + *latency, pslot, id);
  }
  // Receivers on other shards get the bytes (not the Payload) through the
  // router's mailboxes; their shard samples loss/latency from its own fork
  // of this VLAN's RNG stream.
  if (router_ != nullptr && router_->spans_other_shards(shard_id_, vlan)) {
    const std::span<const std::uint8_t> bytes = pending_[slot].dgram.bytes();
    router_->forward(shard_id_,
                     ForeignFrame{src.ip(), group, /*multicast=*/true, vlan,
                                  sim_.now(), {bytes.begin(), bytes.end()}});
  }
  flush_batches();
  if (pending_[slot].remaining == 0) release_frame(slot);
  return true;
}

void Fabric::deliver_foreign(const ForeignFrame& frame) {
  GS_CHECK(frame.vlan.valid());
  Segment& seg = segment(frame.vlan);
  SegmentLoad& load = loads_[frame.vlan];
  // Born on this thread: Rep, decode cache, and eventually the free-list
  // slot all stay local. The origin shard counted frames_sent; this side
  // counts per-receiver outcomes, mirroring the local delivery paths.
  Payload payload = Payload::copy_of(frame.bytes);

  if (!frame.multicast) {
    const auto target = find_by_ip(frame.vlan, frame.dst);
    if (!target || !seg.connected(util::AdapterId::invalid(), *target) ||
        !adapter(*target).can_recv()) {
      load.frames_unreachable++;
      return;
    }
    const auto latency = seg.sample_delivery();
    if (!latency) {
      load.frames_lost++;
      return;
    }
    const std::uint32_t slot =
        park_frame(Datagram{frame.src, frame.dst, /*multicast=*/false,
                            frame.vlan, std::move(payload)},
                   load);
    pending_[slot].remaining = 1;
    const util::AdapterId to = *target;
    // Absolute time: latency >= base latency >= epoch puts this at or after
    // now(); at() aborts otherwise, which is the epoch-contract tripwire.
    sim_.at(frame.sent_at + *latency,
            [this, slot, to] { complete_delivery(slot, to); });
    return;
  }

  const std::uint32_t slot =
      park_frame(Datagram{frame.src, frame.dst, /*multicast=*/true,
                          frame.vlan, std::move(payload)},
                 load);
  util::SwitchId cached_sw = util::SwitchId::invalid();
  bool cached_sw_failed = false;
  for (util::AdapterId id : vlan_members(frame.vlan)) {
    const Adapter& a = adapter(id);
    if (a.attached_switch() != cached_sw) {
      cached_sw = a.attached_switch();
      cached_sw_failed = nic_switch(cached_sw).failed();
    }
    if (cached_sw_failed ||
        !seg.connected(util::AdapterId::invalid(), id) || !a.can_recv()) {
      load.frames_unreachable++;
      continue;
    }
    const auto latency = seg.sample_delivery();
    if (!latency) {
      load.frames_lost++;
      continue;
    }
    // Absolute time, like the foreign unicast path: latency >= base latency
    // >= epoch keeps this at or after now() (the epoch-contract tripwire).
    append_delivery(frame.sent_at + *latency, slot, id);
  }
  flush_batches();
  if (pending_[slot].remaining == 0) release_frame(slot);
}

void Fabric::drop_in_flight() {
  pending_.clear();
  pending_free_.clear();
  batches_.clear();
  batch_free_.clear();
  open_batches_.clear();
}

void Fabric::set_adapter_health(util::AdapterId id, HealthState health) {
  GS_LOG(kDebug, "fabric") << adapter(id).ip() << " health -> "
                           << to_string(health);
  Adapter& a = adapter(id);
  const HealthState old = a.health();
  a.set_health(health);
  // Span anchors for the latency observatory: only crossings of the kUp
  // boundary matter (kDown -> kRecvDead is still the same fault episode).
  if ((old == HealthState::kUp) != (health == HealthState::kUp)) {
    const bool injected = old == HealthState::kUp;
    obs::emit_trace(trace_,
                    injected ? obs::TraceKind::kFaultInjected
                             : obs::TraceKind::kFaultCleared,
                    sim_.now(), a.ip(), {},
                    static_cast<std::uint64_t>(injected ? health : old), 0, {},
                    a.node());
  }
}

void Fabric::fail_node(util::NodeId node) {
  for (util::AdapterId id : node_adapters(node))
    set_adapter_health(id, HealthState::kDown);
}

void Fabric::recover_node(util::NodeId node) {
  for (util::AdapterId id : node_adapters(node))
    set_adapter_health(id, HealthState::kUp);
}

void Fabric::fail_switch(util::SwitchId id) { nic_switch(id).set_failed(true); }

void Fabric::recover_switch(util::SwitchId id) {
  nic_switch(id).set_failed(false);
}

void Fabric::partition_vlan(
    util::VlanId vlan, const std::vector<std::vector<util::AdapterId>>& parts) {
  segment(vlan).partition(parts);
}

void Fabric::heal_vlan(util::VlanId vlan) { segment(vlan).heal(); }

void Fabric::set_port_vlan(util::SwitchId sw, util::PortId port,
                           util::VlanId vlan) {
  Switch& s = nic_switch(sw);
  const util::VlanId old_vlan = s.port_vlan(port);
  s.set_port_vlan(port, vlan);
  const util::AdapterId wired = s.port_adapter(port);
  if (wired.valid() && old_vlan != vlan) {
    index_remove(old_vlan, wired);
    index_add(vlan, wired);
  }
  (void)segment(vlan);  // ensure the segment exists
}

const SegmentLoad& Fabric::load(util::VlanId vlan) { return loads_[vlan]; }

void Fabric::reset_load_accounting() {
  // Zero in place: erasing the keys would silence kWireSample publication
  // for quiet VLANs and dangle load() references taken before the reset.
  for (auto& [vlan, load] : loads_) load = SegmentLoad{};
  frames_by_type_.clear();
  total_frames_sent_ = 0;
  total_bytes_sent_ = 0;
}

void Fabric::enable_load_sampling(sim::SimDuration period) {
  GS_CHECK(period > 0);
  load_sample_period_ = period;
  load_sample_timer_.cancel();
  load_sample_timer_ =
      sim_.after(load_sample_period_, [this] { sample_loads(); });
}

void Fabric::sample_loads() {
  if (trace_ != nullptr &&
      trace_->wants_kind(obs::TraceKind::kWireSample)) {
    for (const auto& [vlan, load] : loads_) {
      obs::TraceRecord record;
      record.kind = obs::TraceKind::kWireSample;
      record.severity = obs::Severity::kDebug;
      record.time = sim_.now();
      record.vlan = vlan;
      record.a = load.frames_sent;
      record.b = load.bytes_sent;
      trace_->publish(record);
    }
  }
  load_sample_timer_ =
      sim_.after(load_sample_period_, [this] { sample_loads(); });
}

}  // namespace gs::net
