// Per-VLAN broadcast-domain properties: latency, loss, partitions.
//
// A Segment does not own adapters (the switch wiring defines membership at
// send time); it owns the *channel model* for one VLAN: base latency plus
// uniform jitter, i.i.d. Bernoulli loss per receiver, and an optional
// partition that splits the domain into non-communicating halves — the
// situation whose repair is the AMG merge protocol (§2.1).
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "sim/time.h"
#include "util/ids.h"
#include "util/rng.h"

namespace gs::net {

struct ChannelModel {
  sim::SimDuration base_latency = sim::microseconds(200);
  sim::SimDuration jitter = sim::microseconds(100);  // uniform in [0, jitter]
  double loss_probability = 0.0;  // applied independently per receiver
  // Probability that a delivered frame arrives with one byte flipped, applied
  // independently per receiver. Zero (the default) draws no randomness, so
  // seeded schedules are bit-identical with the feature unused.
  double corrupt_probability = 0.0;
};

class Segment {
 public:
  Segment(util::VlanId vlan, ChannelModel model, util::Rng rng)
      : vlan_(vlan), model_(model), rng_(rng) {}

  [[nodiscard]] util::VlanId vlan() const { return vlan_; }

  [[nodiscard]] const ChannelModel& model() const { return model_; }
  void set_model(const ChannelModel& model) { model_ = model; }

  // Samples one delivery: latency if delivered, nullopt if lost.
  [[nodiscard]] std::optional<sim::SimDuration> sample_delivery() {
    if (rng_.chance(model_.loss_probability)) return std::nullopt;
    sim::SimDuration latency = model_.base_latency;
    if (model_.jitter > 0)
      latency += rng_.range(0, model_.jitter);
    return latency;
  }

  // Samples per-receiver corruption for a delivered frame. Only called when
  // corrupt_probability > 0, so the default model consumes no RNG draws.
  [[nodiscard]] bool sample_corruption() {
    return rng_.chance(model_.corrupt_probability);
  }

  // Which byte of a corrupted frame gets flipped.
  [[nodiscard]] std::size_t sample_corrupt_index(std::size_t frame_size) {
    return static_cast<std::size_t>(rng_.below(frame_size));
  }

  // --- Partitions -------------------------------------------------------
  // Adapters mapped to different part indices cannot exchange datagrams.
  // An unmapped adapter is in part 0.

  void partition(const std::vector<std::vector<util::AdapterId>>& parts) {
    part_of_.clear();
    for (std::size_t i = 0; i < parts.size(); ++i)
      for (util::AdapterId a : parts[i])
        part_of_[a] = static_cast<std::uint32_t>(i + 1);
    partitioned_ = true;
  }

  void heal() {
    part_of_.clear();
    partitioned_ = false;
  }

  [[nodiscard]] bool partitioned() const { return partitioned_; }

  [[nodiscard]] bool connected(util::AdapterId a, util::AdapterId b) const {
    if (!partitioned_) return true;
    return part_index(a) == part_index(b);
  }

 private:
  [[nodiscard]] std::uint32_t part_index(util::AdapterId a) const {
    auto it = part_of_.find(a);
    return it == part_of_.end() ? 0u : it->second;
  }

  util::VlanId vlan_;
  ChannelModel model_;
  util::Rng rng_;
  bool partitioned_ = false;
  std::unordered_map<util::AdapterId, std::uint32_t> part_of_;
};

}  // namespace gs::net
