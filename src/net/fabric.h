// The simulated switched network: owns adapters, switches, segments, and
// performs datagram delivery with the per-VLAN channel model.
//
// Delivery semantics match a switched Ethernet VLAN:
//  * a datagram reaches exactly the adapters whose live switch port carries
//    the sender's VLAN (and the same partition side, if partitioned);
//  * multicast occupies the segment once regardless of receiver count —
//    the wire-load counters reflect that, which is what makes the §4.2
//    heartbeat-load comparisons meaningful;
//  * loss is sampled i.i.d. per receiver; latency per receiver with jitter;
//  * health is evaluated at send time for the sender and at delivery time
//    for the receiver, so mid-flight failures drop frames.
#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <span>
#include <unordered_map>
#include <vector>

#include "net/adapter.h"
#include "net/datagram.h"
#include "net/nic_switch.h"
#include "net/segment.h"
#include "obs/fwd.h"
#include "sim/simulator.h"
#include "util/ids.h"
#include "util/rng.h"
#include "util/stats.h"

namespace gs::net {

class ShardRouter;
struct ForeignFrame;

// Wire-load accounting for one VLAN, consumed by the scaling benches.
struct SegmentLoad {
  std::uint64_t frames_sent = 0;     // wire occupancy (multicast counts once)
  std::uint64_t bytes_sent = 0;
  std::uint64_t frames_delivered = 0;
  std::uint64_t frames_lost = 0;     // channel loss, per receiver
  // A configured receiver the frame could not reach: no such IP, dead
  // receiver, dead switch, or partition. Unicast and multicast count these
  // identically, so the §4.2 load comparisons see the same denominator.
  std::uint64_t frames_unreachable = 0;
  // Deliveries that arrived with an injected byte flip (per receiver). The
  // soak invariant uses this to require that daemons only ever drop frames
  // when corruption was actually injected.
  std::uint64_t frames_corrupted = 0;
};

class Fabric {
 public:
  Fabric(sim::Simulator& sim, util::Rng rng);

  Fabric(const Fabric&) = delete;
  Fabric& operator=(const Fabric&) = delete;

  // --- Topology construction --------------------------------------------

  util::SwitchId add_switch(std::size_t ports);
  util::AdapterId add_adapter(util::NodeId node);

  // Wires an adapter to a specific port, or to the first free port.
  void attach(util::AdapterId adapter, util::SwitchId sw, util::PortId port,
              util::VlanId vlan);
  void attach(util::AdapterId adapter, util::SwitchId sw, util::VlanId vlan);

  // Channel model applied to VLANs seen for the first time.
  void set_default_channel(const ChannelModel& model) {
    default_channel_ = model;
  }

  // Assigns/changes an adapter's IP, keeping the unicast lookup index
  // coherent. All IP configuration must go through here.
  void set_adapter_ip(util::AdapterId id, util::IpAddress ip);

  // --- Accessors ----------------------------------------------------------

  [[nodiscard]] Adapter& adapter(util::AdapterId id);
  [[nodiscard]] const Adapter& adapter(util::AdapterId id) const;
  [[nodiscard]] Switch& nic_switch(util::SwitchId id);
  [[nodiscard]] const Switch& nic_switch(util::SwitchId id) const;
  [[nodiscard]] Segment& segment(util::VlanId vlan);

  [[nodiscard]] std::size_t adapter_count() const { return adapters_.size(); }
  [[nodiscard]] std::size_t switch_count() const { return switches_.size(); }
  [[nodiscard]] std::vector<util::AdapterId> all_adapters() const;
  [[nodiscard]] std::vector<util::SwitchId> all_switches() const;
  [[nodiscard]] std::vector<util::AdapterId> node_adapters(
      util::NodeId node) const;

  // The VLAN an adapter currently lives on; invalid if its switch is dead or
  // it is unwired.
  [[nodiscard]] util::VlanId vlan_of(util::AdapterId id) const;

  // Ground truth for tests/verification: adapters wired into `vlan` through
  // a live switch (health ignored — wiring, not liveness).
  [[nodiscard]] std::vector<util::AdapterId> adapters_in_vlan(
      util::VlanId vlan) const;

  // Adapters whose port is configured into `vlan`, ascending id, switch
  // health ignored. This is the index multicast iterates, maintained
  // incrementally by attach()/set_port_vlan() — O(members), not O(farm).
  // Port→VLAN wiring must only be mutated through Fabric for the index to
  // stay coherent (see vlan_index_consistent()).
  [[nodiscard]] const std::vector<util::AdapterId>& vlan_members(
      util::VlanId vlan) const;

  // Every VLAN with at least one wired member, ascending — the shard
  // router's registration input.
  [[nodiscard]] std::vector<util::VlanId> indexed_vlans() const;

  // Recomputes wired membership from the switches and compares it with the
  // incremental index; tests call this after topology churn.
  [[nodiscard]] bool vlan_index_consistent() const;

  // Could a frame from `from` reach `to` right now (wiring, partitions,
  // health all considered)?
  [[nodiscard]] bool reachable(util::AdapterId from, util::AdapterId to) const;

  // Resolves an IP on a VLAN. Duplicate IPs are a misconfiguration the
  // verifier must be able to express; the winner is deterministic — the
  // lowest AdapterId holding the address on that VLAN — so misconfigured
  // soak schedules replay identically.
  [[nodiscard]] std::optional<util::AdapterId> find_by_ip(
      util::VlanId vlan, util::IpAddress ip) const;

  // --- Traffic ------------------------------------------------------------

  // Unicast to dst on the sender's VLAN. Returns false if the frame never
  // left the adapter (sender dead/unwired); in-flight loss still returns
  // true, as a real sender cannot observe it.
  bool send(util::AdapterId from, util::IpAddress dst, Payload payload);
  bool send(util::AdapterId from, util::IpAddress dst,
            std::vector<std::uint8_t> bytes) {
    return send(from, dst, make_payload(std::move(bytes)));
  }

  // Multicast to every other adapter on the sender's VLAN.
  bool multicast(util::AdapterId from, util::IpAddress group, Payload payload);
  bool multicast(util::AdapterId from, util::IpAddress group,
                 std::vector<std::uint8_t> bytes) {
    return multicast(from, group, make_payload(std::move(bytes)));
  }

  // --- Sharding -----------------------------------------------------------

  // Installs the cross-shard router (normally via ShardRouter::finalize).
  // With no router installed — every single-shard run — the traffic paths
  // are bit-identical to the unsharded fabric. Non-owning.
  void set_shard_router(ShardRouter* router, std::size_t shard);
  [[nodiscard]] std::size_t shard_id() const { return shard_id_; }

  // Delivers a frame another shard forwarded here: rebuilds the payload from
  // the copied bytes on this thread, then runs the normal receiver-side
  // checks and channel sampling against the local segment. Deliveries land
  // at sent_at + sampled_latency, which the epoch contract guarantees is not
  // in this shard's past. Foreign senders sit in partition part 0 and are
  // exempt from corruption injection (both documented in DESIGN.md).
  void deliver_foreign(const ForeignFrame& frame);

  // Drops every parked in-flight frame without delivering it. Teardown only
  // (after the simulator's queue is cleared), on the owning thread, so the
  // payloads die in their home pool.
  void drop_in_flight();

  // --- Fault injection ----------------------------------------------------

  void set_adapter_health(util::AdapterId id, HealthState health);
  void fail_node(util::NodeId node);
  void recover_node(util::NodeId node);
  void fail_switch(util::SwitchId id);
  void recover_switch(util::SwitchId id);
  void partition_vlan(util::VlanId vlan,
                      const std::vector<std::vector<util::AdapterId>>& parts);
  void heal_vlan(util::VlanId vlan);

  // --- Reconfiguration (the switch-console path) ---------------------------

  void set_port_vlan(util::SwitchId sw, util::PortId port, util::VlanId vlan);

  // --- Accounting -----------------------------------------------------------

  [[nodiscard]] const SegmentLoad& load(util::VlanId vlan);
  [[nodiscard]] const std::map<std::uint16_t, std::uint64_t>& frames_by_type()
      const {
    return frames_by_type_;
  }
  [[nodiscard]] std::uint64_t total_frames_sent() const {
    return total_frames_sent_;
  }
  [[nodiscard]] std::uint64_t total_bytes_sent() const {
    return total_bytes_sent_;
  }
  // Zeroes every counter in place: VLANs stay present (so load sampling
  // keeps publishing for quiet VLANs) and load() references stay valid.
  void reset_load_accounting();

  // --- Telemetry -----------------------------------------------------------

  // Points wire-load sampling at a trace bus (non-owning; null disables).
  void set_trace(obs::TraceBus* bus) { trace_ = bus; }

  // Publishes one kWireSample record per VLAN every `period` of simulated
  // time, for as long as the simulation keeps running.
  void enable_load_sampling(sim::SimDuration period);

  [[nodiscard]] sim::Simulator& simulator() { return sim_; }

 private:
  // One in-flight frame, parked once per send/multicast in a recycled pool
  // and shared by every receiver still due to get it. The per-receiver sim
  // event captures only {this, slot, to} — 16 bytes, inside std::function's
  // inline buffer — so fan-out costs no heap allocation and no per-receiver
  // datagram copy. `remaining` counts scheduled deliveries; the slot is
  // recycled when it reaches zero.
  struct PendingFrame {
    Datagram dgram;
    // The frame's VLAN accounting row, resolved once at park time: loads_
    // nodes are stable (reset zeroes in place, never erases), so deliveries
    // skip the per-receiver map lookup.
    SegmentLoad* load = nullptr;
    std::uint32_t remaining = 0;
  };

  // Parks a frame and returns its pool slot (remaining == 0; callers bump it
  // per scheduled delivery and must release the slot if it stays zero).
  std::uint32_t park_frame(Datagram dgram, SegmentLoad& load);
  void release_frame(std::uint32_t slot);
  void complete_delivery(std::uint32_t slot, util::AdapterId to);
  // Adds one receiver's delivery to the open batch for `due` (creating it on
  // first use), bumping the pending slot's remaining count.
  void append_delivery(sim::SimTime due, std::uint32_t pslot,
                       util::AdapterId to);
  // Schedules one sim event per open batch, in creation order; singleton
  // batches skip the indirection and deliver directly.
  void flush_batches();
  void run_batch(std::uint32_t b);
  // Parks a fresh, independently allocated copy of `slot`'s datagram with
  // one byte flipped. The corrupted receiver must never share (or poison)
  // the clean payload's decode cache, so the bytes are duplicated here.
  [[nodiscard]] std::uint32_t park_corrupted(std::uint32_t slot, Segment& seg);
  [[nodiscard]] std::uint16_t peek_frame_type(
      std::span<const std::uint8_t> bytes) const;
  void sample_loads();
  void index_add(util::VlanId vlan, util::AdapterId id);
  void index_remove(util::VlanId vlan, util::AdapterId id);

  sim::Simulator& sim_;
  util::Rng rng_;
  ChannelModel default_channel_;

  std::vector<std::unique_ptr<Adapter>> adapters_;
  std::vector<std::unique_ptr<Switch>> switches_;
  // ip bits -> adapters currently holding that ip (normally exactly one;
  // duplicates are representable because misconfiguration is a scenario
  // the verifier must be able to express).
  std::unordered_map<std::uint32_t, std::vector<util::AdapterId>> by_ip_;
  std::map<util::VlanId, Segment> segments_;
  // vlan -> adapters wired into it (port configuration, not liveness),
  // each vector kept sorted by id so multicast delivery order matches the
  // old whole-farm scan and seed traces stay bit-identical.
  std::map<util::VlanId, std::vector<util::AdapterId>> vlan_index_;
  std::map<util::VlanId, SegmentLoad> loads_;
  std::map<std::uint16_t, std::uint64_t> frames_by_type_;
  std::uint64_t total_frames_sent_ = 0;
  std::uint64_t total_bytes_sent_ = 0;

  // Bounded by the in-flight high-water mark, not by frames ever sent. A
  // deque so parked frames keep stable addresses: delivery handlers may
  // re-enter send()/multicast() and grow the pool while a delivery still
  // reads its frame by reference.
  std::deque<PendingFrame> pending_;
  std::vector<std::uint32_t> pending_free_;

  // One multicast's deliveries grouped by deadline: a single sim event per
  // distinct (frame, deadline) walks `entries` in member-index order, so
  // with ~receivers/jitter collisions per deadline the event count per
  // multicast drops from O(receivers) toward O(distinct latencies). Pop
  // order is exactly the per-receiver schedule's: same-deadline deliveries
  // ran in member order before (seq = push order = member order), and the
  // batch replays that order; distinct deadlines never compared seq.
  // Corrupted receivers ride the same batch carrying their private pool
  // slot, keeping the member-order interleave. Recycled like pending_, and
  // a deque for the same stable-address reason (run_batch re-enters).
  struct DeliveryBatch {
    std::vector<std::pair<std::uint32_t, util::AdapterId>> entries;
  };
  std::deque<DeliveryBatch> batches_;
  std::vector<std::uint32_t> batch_free_;
  // deadline -> open batch slot for the multicast currently being scheduled;
  // cleared by flush_batches(). A member only to recycle its capacity.
  std::vector<std::pair<sim::SimTime, std::uint32_t>> open_batches_;
  // Direct-mapped index over open_batches_, keyed by the deadline's low
  // bits: one multicast's deadlines span the jitter window, so the linear
  // scan made append_delivery O(distinct latencies) per receiver. Open
  // addressing with a hard probe cap (clustered deadlines fall back to the
  // scan); flush_batches() invalidates every slot at once by bumping the
  // epoch tag. Slots default to tag 0, which the tag never takes.
  static constexpr std::size_t kOpenLutSize = 256;  // power of two
  static constexpr std::size_t kOpenLutMaxProbe = 16;
  struct OpenLutSlot {
    std::uint32_t tag = 0;
    std::uint32_t batch = 0;
    sim::SimTime due = 0;
  };
  std::array<OpenLutSlot, kOpenLutSize> open_lut_{};
  std::uint32_t open_lut_tag_ = 1;

  obs::TraceBus* trace_ = nullptr;
  sim::SimDuration load_sample_period_ = 0;
  sim::Timer load_sample_timer_;

  // Cross-shard handoff; null in every single-shard run.
  ShardRouter* router_ = nullptr;
  std::size_t shard_id_ = 0;
};

}  // namespace gs::net
