#include "net/shard_router.h"

#include <limits>
#include <utility>

#include "net/fabric.h"
#include "util/check.h"

namespace gs::net {

void ShardRouter::add_fabric(std::size_t shard, Fabric* fabric) {
  GS_CHECK(fabric != nullptr);
  GS_CHECK_MSG(set_ == nullptr, "add_fabric after finalize");
  if (fabrics_.size() <= shard) fabrics_.resize(shard + 1, nullptr);
  GS_CHECK_MSG(fabrics_[shard] == nullptr, "shard already has a fabric");
  fabrics_[shard] = fabric;
}

std::map<util::VlanId, std::vector<std::size_t>> ShardRouter::build_homes()
    const {
  std::map<util::VlanId, std::vector<std::size_t>> homes;
  for (std::size_t shard = 0; shard < fabrics_.size(); ++shard) {
    GS_CHECK_MSG(fabrics_[shard] != nullptr, "missing fabric for a shard");
    for (util::VlanId vlan : fabrics_[shard]->indexed_vlans())
      homes[vlan].push_back(shard);  // shard order: already ascending
  }
  return homes;
}

sim::SimDuration ShardRouter::max_safe_epoch() const {
  sim::SimDuration safe = std::numeric_limits<sim::SimDuration>::max();
  for (const auto& [vlan, shards] : build_homes()) {
    if (shards.size() < 2) continue;
    for (std::size_t shard : shards) {
      safe = std::min(safe,
                      fabrics_[shard]->segment(vlan).model().base_latency);
    }
  }
  return safe;
}

void ShardRouter::finalize(sim::ShardSet& set) {
  GS_CHECK_MSG(set_ == nullptr, "finalize called twice");
  GS_CHECK(set.shard_count() == fabrics_.size());
  homes_ = build_homes();
  GS_CHECK_MSG(set.epoch() <= max_safe_epoch(),
               "epoch window exceeds a spanning VLAN's base latency; "
               "cross-shard frames would arrive in the past");
  set_ = &set;
  for (std::size_t shard = 0; shard < fabrics_.size(); ++shard)
    fabrics_[shard]->set_shard_router(this, shard);
}

bool ShardRouter::spans_other_shards(std::size_t shard,
                                     util::VlanId vlan) const {
  const auto it = homes_.find(vlan);
  if (it == homes_.end()) return false;
  const std::vector<std::size_t>& shards = it->second;
  return shards.size() > 1 || (shards.size() == 1 && shards[0] != shard);
}

void ShardRouter::forward(std::size_t from_shard, const ForeignFrame& frame) {
  GS_CHECK_MSG(set_ != nullptr, "forward before finalize");
  const auto it = homes_.find(frame.vlan);
  if (it == homes_.end()) return;
  const sim::SimTime inject_at = frame.sent_at + set_->epoch();
  for (std::size_t target : it->second) {
    if (target == from_shard) continue;
    frames_forwarded_.fetch_add(1, std::memory_order_relaxed);
    // Per-target byte copy: each destination thread builds its own Payload.
    set_->post(from_shard, target, inject_at,
               [fabric = fabrics_[target], copy = frame] {
                 fabric->deliver_foreign(copy);
               });
  }
}

}  // namespace gs::net
