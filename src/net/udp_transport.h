// Real-transport backend: GulfStream frames over nonblocking UDP sockets on
// loopback, behind an epoll event loop.
//
// Addressing: the farm's simulated IPv4 scheme carries over unchanged —
// daemons still elect leaders by gs IP and put gs IPs in every message. What
// changes is delivery: a UdpPortMap assigns each VLAN a contiguous range of
// loopback UDP ports (vlan_base = base_port + index * stride) and each
// endpoint one port inside its VLAN's range. Then:
//  * unicast(dst)  -> sendto(127.0.0.1, port_of(dst));
//  * multicast     -> one sendto per *other* registered port in the sender's
//    VLAN range (loopback has no real multicast; IP multicast groups are an
//    optional future mapping, the seam does not care);
//  * received datagrams resolve the sender's gs IP from the source UDP port
//    (every send leaves from the sender's own bound socket).
//
// Threading: single-threaded by contract. The EventLoop interleaves socket
// readiness with the WallClock's due timers on one thread, mirroring the
// simulator's one-event-at-a-time execution model.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <vector>

#include "net/transport.h"
#include "sim/wallclock.h"
#include "util/ids.h"
#include "util/ip.h"

namespace gs::net {

// epoll wrapper driving sockets + a WallClock's timer wheel on one thread.
class EventLoop {
 public:
  EventLoop();
  ~EventLoop();

  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  // Registers a level-triggered readable callback for fd. The callback must
  // drain the fd (sockets are nonblocking).
  void add_fd(int fd, std::function<void()> on_readable);
  void remove_fd(int fd);

  // One pass: wait for readiness at most `max_wait` (bounded further by the
  // clock's next timer deadline), dispatch readable fds, fire due timers.
  void poll(sim::WallClock& clock, sim::SimDuration max_wait);

  // Polls until `until()` returns true (checked after every pass) or the
  // clock passes `deadline`. A null predicate never terminates early.
  bool run_until(sim::WallClock& clock, sim::SimTime deadline,
                 const std::function<bool()>& until);

  [[nodiscard]] std::size_t fd_count() const { return handlers_.size(); }

 private:
  int epfd_ = -1;
  std::map<int, std::function<void()>> handlers_;
};

// Process-wide registry mapping the gs addressing scheme onto loopback UDP
// ports: one contiguous port range per VLAN, one port per endpoint. Shared
// by every UdpTransport of a deployment so sends can resolve any
// destination and receives any source.
class UdpPortMap {
 public:
  explicit UdpPortMap(std::uint16_t base_port = 47000,
                      std::uint16_t vlan_stride = 256)
      : base_port_(base_port), vlan_stride_(vlan_stride) {}

  // Registers an endpoint, assigning the next free port in its VLAN's range
  // (first registration of a VLAN claims the next range). Idempotent per IP.
  std::uint16_t add(util::IpAddress ip, util::VlanId vlan);

  [[nodiscard]] std::optional<std::uint16_t> port_of(util::IpAddress ip) const;
  [[nodiscard]] std::optional<util::IpAddress> ip_of(std::uint16_t port) const;
  // First UDP port of the VLAN's range (registers the VLAN if new). Aborts
  // with a clear message when the new range would run past port 65535 — the
  // map never hands out wrapped, colliding ranges.
  [[nodiscard]] std::uint16_t vlan_base(util::VlanId vlan);
  // How many VLANs fit below port 65536 at this base/stride (72 with the
  // defaults). Lets callers validate a deployment before binding sockets.
  [[nodiscard]] std::size_t max_vlans() const;
  // Every registered port in the VLAN, ascending — the multicast fan-out.
  [[nodiscard]] const std::vector<std::uint16_t>& vlan_ports(
      util::VlanId vlan) const;

 private:
  std::uint16_t base_port_;
  std::uint16_t vlan_stride_;
  std::map<util::VlanId, std::uint16_t> vlan_bases_;
  std::map<util::VlanId, std::vector<std::uint16_t>> vlan_ports_;
  std::map<std::uint32_t, std::uint16_t> port_by_ip_;  // ip bits -> udp port
  std::map<std::uint16_t, util::IpAddress> ip_by_port_;
  std::vector<std::uint16_t> empty_;
};

// One node's real sockets: a Transport whose ports are bound loopback UDP
// sockets registered with an EventLoop.
class UdpTransport final : public Transport {
 public:
  struct PortSpec {
    util::IpAddress ip;
    util::MacAddress mac;
    util::VlanId vlan;
  };

  struct Stats {
    std::uint64_t frames_sent = 0;  // sendto calls that handed bytes to the
                                    // kernel (multicast counts per receiver)
    std::uint64_t bytes_sent = 0;
    std::uint64_t frames_received = 0;
    std::uint64_t send_errors = 0;   // sendto failures / unknown destination
    std::uint64_t recv_unknown = 0;  // datagrams from an unregistered port
  };

  // Binds one socket per spec (ports allocated through `map`) and registers
  // them with `loop`. Both must outlive this transport.
  UdpTransport(EventLoop& loop, UdpPortMap& map,
               std::vector<PortSpec> ports);
  ~UdpTransport() override;

  // --- Transport ----------------------------------------------------------
  [[nodiscard]] std::size_t port_count() const override {
    return socks_.size();
  }
  [[nodiscard]] util::IpAddress local_ip(std::size_t port) const override;
  [[nodiscard]] util::MacAddress local_mac(std::size_t port) const override;
  bool unicast(std::size_t port, util::IpAddress dst, Payload frame) override;
  bool multicast(std::size_t port, util::IpAddress group,
                 Payload frame) override;
  [[nodiscard]] bool loopback_ok(std::size_t port) const override;
  void set_receive_handler(std::size_t port, ReceiveHandler handler) override;

  // --- Lifecycle ----------------------------------------------------------
  // Models the node dying: every socket is closed and deregistered, every
  // handler dropped; subsequent sends return false, loopback_ok() false.
  // Idempotent. A timer that fires after close() therefore cannot touch a
  // dead fd — the shutdown-ordering contract the regression tests pin.
  void close();
  [[nodiscard]] bool closed() const { return closed_; }

  [[nodiscard]] std::uint16_t udp_port(std::size_t port) const;
  [[nodiscard]] util::VlanId vlan_of(std::size_t port) const;
  [[nodiscard]] const Stats& stats() const { return stats_; }

 private:
  struct Sock {
    PortSpec spec;
    int fd = -1;
    std::uint16_t udp_port = 0;
    ReceiveHandler handler;
  };

  void on_readable(std::size_t index);
  bool send_to_port(std::size_t index, std::uint16_t dst_port,
                    const Payload& frame);

  EventLoop& loop_;
  UdpPortMap& map_;
  std::vector<Sock> socks_;
  Stats stats_;
  bool closed_ = false;
};

}  // namespace gs::net
