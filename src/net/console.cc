#include "net/console.h"

#include "util/logging.h"

namespace gs::net {

std::optional<std::vector<SwitchConsole::PortInfo>> SwitchConsole::walk_ports(
    util::SwitchId sw) const {
  if (!reachable()) return std::nullopt;
  const Switch& s = fabric_.nic_switch(sw);
  if (s.failed()) return std::nullopt;
  std::vector<PortInfo> out;
  out.reserve(s.port_count());
  for (std::size_t i = 0; i < s.port_count(); ++i) {
    const util::PortId port(static_cast<std::uint32_t>(i));
    PortInfo info{port, s.port_adapter(port), s.port_vlan(port),
                  util::MacAddress()};
    if (info.adapter.valid()) info.mac = fabric_.adapter(info.adapter).mac();
    out.push_back(info);
  }
  return out;
}

std::optional<util::VlanId> SwitchConsole::get_port_vlan(
    util::SwitchId sw, util::PortId port) const {
  if (!reachable()) return std::nullopt;
  const Switch& s = fabric_.nic_switch(sw);
  if (s.failed()) return std::nullopt;
  return s.port_vlan(port);
}

bool SwitchConsole::set_port_vlan(util::SwitchId sw, util::PortId port,
                                  util::VlanId vlan) {
  if (!reachable()) return false;
  if (fabric_.nic_switch(sw).failed()) return false;
  GS_LOG(kInfo, "console") << "set " << sw << " " << port << " -> " << vlan;
  fabric_.set_port_vlan(sw, port, vlan);
  ++sets_;
  return true;
}

}  // namespace gs::net
