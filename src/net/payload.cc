#include "net/payload.h"

#include <cstring>

namespace gs::net {
namespace {

// Recycled Reps per thread. Bounded so a pathological burst of in-flight
// frames does not pin memory forever; steady state cycles well below this.
constexpr std::size_t kMaxPooledReps = 1024;

thread_local bool g_cache_enabled = true;

}  // namespace

struct Payload::RepPool {
  std::vector<Rep*> free;

  ~RepPool() {
    for (auto* rep : free) delete rep;
  }
};

Payload::RepPool& Payload::pool() {
  thread_local RepPool p;
  return p;
}

Payload::Rep* Payload::acquire() {
  auto& free = pool().free;
  if (!free.empty()) {
    Rep* rep = free.back();
    free.pop_back();
    rep->refs = 1;
    return rep;
  }
  return new Rep();
}

void Payload::recycle(Rep* rep) {
  // Scrub the cached work but keep the allocations (spill capacity, the rep
  // itself) so reuse is allocation-free.
  rep->slot.reset();
  rep->verified_valid = false;
  rep->verified = {};
  rep->size = 0;
  rep->spill.clear();
  auto& free = pool().free;
  if (free.size() < kMaxPooledReps) {
    free.push_back(rep);
  } else {
    delete rep;
  }
}

Payload Payload::copy_of(std::span<const std::uint8_t> bytes) {
  Payload p;
  p.rep_ = acquire();
  p.rep_->size = static_cast<std::uint32_t>(bytes.size());
  if (bytes.size() <= kInlineCapacity) {
    if (!bytes.empty())
      std::memcpy(p.rep_->inline_buf, bytes.data(), bytes.size());
  } else {
    p.rep_->spill.assign(bytes.begin(), bytes.end());
  }
  return p;
}

Payload Payload::wrap(std::vector<std::uint8_t> bytes) {
  if (bytes.size() <= kInlineCapacity) return copy_of(bytes);
  Payload p;
  p.rep_ = acquire();
  p.rep_->size = static_cast<std::uint32_t>(bytes.size());
  p.rep_->spill = std::move(bytes);
  return p;
}

std::size_t Payload::size() const {
  return rep_ == nullptr ? 0 : rep_->size;
}

const std::uint8_t* Payload::data() const {
  return rep_ == nullptr ? nullptr : rep_->data();
}

void Payload::set_cache_enabled(bool enabled) { g_cache_enabled = enabled; }

bool Payload::cache_enabled() { return g_cache_enabled; }

std::size_t Payload::pool_size() { return pool().free.size(); }

void Payload::trim_pool() {
  auto& free = pool().free;
  for (auto* rep : free) delete rep;
  free.clear();
}

wire::VerifiedFrame Payload::verified() const {
  if (rep_ == nullptr) {
    wire::VerifiedFrame missing;
    missing.error = wire::FrameError::kTooShort;
    return missing;
  }
  if (!g_cache_enabled) return wire::verify_frame(bytes());
  if (!rep_->verified_valid) {
    rep_->verified = wire::verify_frame(bytes());
    rep_->verified_valid = true;
  }
  return rep_->verified;
}

std::span<const std::uint8_t> Payload::frame_payload() const {
  const wire::VerifiedFrame v = verified();
  if (!v.ok()) return {};
  return bytes().subspan(wire::kFrameHeaderSize, v.payload_size);
}

DecodeSlot* Payload::decode_slot() const {
  return rep_ == nullptr ? nullptr : &rep_->slot;
}

}  // namespace gs::net
