#include "net/payload.h"

#include <cstring>

#include "util/check.h"

namespace gs::net {
namespace {

// Recycled Reps per thread. Bounded so a pathological burst of in-flight
// frames does not pin memory forever; steady state cycles well below this.
constexpr std::size_t kMaxPooledReps = 1024;

thread_local bool g_cache_enabled = true;
thread_local int g_foreign_release_depth = 0;
thread_local int g_unowned_creation_depth = 0;

}  // namespace

Payload::ForeignReleaseScope::ForeignReleaseScope() {
  ++g_foreign_release_depth;
}

Payload::ForeignReleaseScope::~ForeignReleaseScope() {
  --g_foreign_release_depth;
}

Payload::UnownedCreationScope::UnownedCreationScope() {
  ++g_unowned_creation_depth;
}

Payload::UnownedCreationScope::~UnownedCreationScope() {
  --g_unowned_creation_depth;
}

struct Payload::RepPool {
  std::vector<Rep*> free;

  ~RepPool() {
    for (auto* rep : free) delete rep;
  }
};

Payload::RepPool& Payload::pool() {
  thread_local RepPool p;
  return p;
}

Payload::Rep* Payload::acquire() {
  if (g_unowned_creation_depth > 0) {
    // Unowned rep: belongs to no thread's pool, deletable anywhere. Bypass
    // the pool both ways — a pooled rep carries this thread's ownership.
    return new Rep();  // owner stays the default "no thread" id
  }
  auto& free = pool().free;
  if (!free.empty()) {
    Rep* rep = free.back();
    free.pop_back();
    rep->refs = 1;
    return rep;
  }
  Rep* rep = new Rep();
  rep->owner = std::this_thread::get_id();
  return rep;
}

void Payload::recycle(Rep* rep) {
  if (rep->owner == std::thread::id()) {  // unowned: any thread may delete
    delete rep;
    return;
  }
  if (rep->owner != std::this_thread::get_id()) {
    // Foreign release: the non-atomic refcount already made this a contract
    // violation, so be loud where we can watch for races (debug, TSan) and
    // merely safe where we cannot — deleting instead of pooling keeps the
    // Rep off this thread's free list, where a later acquire() would hand
    // out memory another thread may still be scrubbing.
#if GS_PAYLOAD_OWNER_CHECK
    GS_CHECK_MSG(g_foreign_release_depth > 0,
                 "Payload released on a thread other than its owner; "
                 "cross-shard frames must be deep-copied (see ShardRouter)");
#endif
    delete rep;
    return;
  }
  // Scrub the cached work but keep the allocations (spill capacity, the rep
  // itself) so reuse is allocation-free.
  rep->slot.reset();
  rep->verified_valid = false;
  rep->verified = {};
  rep->size = 0;
  rep->spill.clear();
  auto& free = pool().free;
  if (free.size() < kMaxPooledReps) {
    free.push_back(rep);
  } else {
    delete rep;
  }
}

Payload Payload::copy_of(std::span<const std::uint8_t> bytes) {
  Payload p;
  p.rep_ = acquire();
  p.rep_->size = static_cast<std::uint32_t>(bytes.size());
  if (bytes.size() <= kInlineCapacity) {
    if (!bytes.empty())
      std::memcpy(p.rep_->inline_buf, bytes.data(), bytes.size());
  } else {
    p.rep_->spill.assign(bytes.begin(), bytes.end());
  }
  return p;
}

Payload Payload::wrap(std::vector<std::uint8_t> bytes) {
  if (bytes.size() <= kInlineCapacity) return copy_of(bytes);
  Payload p;
  p.rep_ = acquire();
  p.rep_->size = static_cast<std::uint32_t>(bytes.size());
  p.rep_->spill = std::move(bytes);
  return p;
}

std::size_t Payload::size() const {
  return rep_ == nullptr ? 0 : rep_->size;
}

const std::uint8_t* Payload::data() const {
  return rep_ == nullptr ? nullptr : rep_->data();
}

void Payload::set_cache_enabled(bool enabled) { g_cache_enabled = enabled; }

bool Payload::cache_enabled() { return g_cache_enabled; }

std::size_t Payload::pool_size() { return pool().free.size(); }

void Payload::trim_pool() {
  auto& free = pool().free;
  for (auto* rep : free) delete rep;
  free.clear();
}

wire::VerifiedFrame Payload::verified() const {
  if (rep_ == nullptr) {
    wire::VerifiedFrame missing;
    missing.error = wire::FrameError::kTooShort;
    return missing;
  }
  if (!g_cache_enabled) return wire::verify_frame(bytes());
  if (!rep_->verified_valid) {
    rep_->verified = wire::verify_frame(bytes());
    rep_->verified_valid = true;
  }
  return rep_->verified;
}

std::span<const std::uint8_t> Payload::frame_payload() const {
  const wire::VerifiedFrame v = verified();
  if (!v.ok()) return {};
  return bytes().subspan(wire::kFrameHeaderSize, v.payload_size);
}

DecodeSlot* Payload::decode_slot() const {
  return rep_ == nullptr ? nullptr : &rep_->slot;
}

}  // namespace gs::net
