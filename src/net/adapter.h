// A network adapter (NIC) — the unit GulfStream actually manages.
//
// The paper's failure model distinguishes full adapter death from the
// nastier "ceases to receive" mode (§3), which produces false blame on the
// ring neighbor unless the daemon runs a loopback test first. HealthState
// models all four combinations.
#pragma once

#include <functional>
#include <string_view>

#include "net/datagram.h"
#include "util/ids.h"
#include "util/ip.h"

namespace gs::net {

enum class HealthState : std::uint8_t {
  kUp = 0,
  kDown,       // neither sends nor receives
  kRecvDead,   // transmits fine, hears nothing (paper §3 failure mode)
  kSendDead,   // hears fine, transmits nothing
};

[[nodiscard]] std::string_view to_string(HealthState s);

class Fabric;

class Adapter {
 public:
  using ReceiveHandler = std::function<void(const Datagram&)>;

  Adapter(util::AdapterId id, util::NodeId node, util::MacAddress mac)
      : id_(id), node_(node), mac_(mac) {}

  [[nodiscard]] util::AdapterId id() const { return id_; }
  [[nodiscard]] util::NodeId node() const { return node_; }
  [[nodiscard]] util::MacAddress mac() const { return mac_; }

  [[nodiscard]] util::IpAddress ip() const { return ip_; }

  [[nodiscard]] util::SwitchId attached_switch() const { return switch_; }
  [[nodiscard]] util::PortId attached_port() const { return port_; }
  void attach(util::SwitchId sw, util::PortId port) {
    switch_ = sw;
    port_ = port;
  }

  [[nodiscard]] HealthState health() const { return health_; }
  void set_health(HealthState h) { health_ = h; }
  [[nodiscard]] bool can_send() const {
    return health_ == HealthState::kUp || health_ == HealthState::kRecvDead;
  }
  [[nodiscard]] bool can_recv() const {
    return health_ == HealthState::kUp || health_ == HealthState::kSendDead;
  }

  // The local self-test the daemon runs before blaming a silent neighbor
  // (§3): can this adapter still hear its own transmissions? True only when
  // both directions work.
  [[nodiscard]] bool loopback_ok() const {
    return health_ == HealthState::kUp;
  }

  void set_receive_handler(ReceiveHandler handler) {
    on_receive_ = std::move(handler);
  }
  void deliver(const Datagram& dgram) const {
    if (on_receive_) on_receive_(dgram);
  }

 private:
  friend class Fabric;  // IP changes go through Fabric::set_adapter_ip so
                        // the fabric's ip -> adapter index stays coherent.
  void set_ip(util::IpAddress ip) { ip_ = ip; }

  util::AdapterId id_;
  util::NodeId node_;
  util::MacAddress mac_;
  util::IpAddress ip_;
  util::SwitchId switch_;
  util::PortId port_;
  HealthState health_ = HealthState::kUp;
  ReceiveHandler on_receive_;
};

}  // namespace gs::net
