// Cross-shard frame handoff for the sharded simulation.
//
// Each shard runs one Fabric on one worker thread. When a VLAN's membership
// spans shards, a frame sent on it must reach the other shards' receivers —
// but Payload Reps are pooled per thread with non-atomic refcounts and must
// never cross. The router therefore ships a ForeignFrame: the raw bytes
// deep-copied into a plain vector, plus addressing and the send timestamp.
// The destination shard rebuilds a Payload (and its decode cache) from the
// bytes on its own thread and runs the normal receiver-side checks.
//
// Timing contract: a frame sent at t is posted into the destination shard at
// t + epoch (the first instant the conservative barrier scheme allows) and
// delivered at t + sampled_latency. ShardRouter::finalize checks that every
// spanning VLAN's base latency is >= the epoch window, which makes
// t + latency >= t + epoch always hold — cross-shard frames are never late,
// so parallel execution replays the single-shard event order exactly for
// frames that cross, and per-shard determinism holds throughout.
//
// Registration is static: build the whole topology, add every shard's
// fabric, then finalize() once before the first epoch. Rewiring a VLAN onto
// a shard that had no members of it at finalize() time is not supported.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <vector>

#include "sim/shard.h"
#include "sim/time.h"
#include "util/ids.h"
#include "util/ip.h"

namespace gs::net {

class Fabric;

// A frame crossing a shard boundary. Bytes only — never a Payload: the
// destination thread builds its own Rep from them.
struct ForeignFrame {
  util::IpAddress src;
  util::IpAddress dst;  // unicast target, or the multicast group address
  bool multicast = false;
  util::VlanId vlan;
  sim::SimTime sent_at = 0;
  std::vector<std::uint8_t> bytes;
};

class ShardRouter {
 public:
  ShardRouter() = default;

  ShardRouter(const ShardRouter&) = delete;
  ShardRouter& operator=(const ShardRouter&) = delete;

  // Registers shard `shard`'s fabric. All registration happens on one thread
  // before finalize().
  void add_fabric(std::size_t shard, Fabric* fabric);

  // The largest epoch window the registered topology admits: the minimum
  // base latency across every VLAN whose wired membership spans more than
  // one shard (SimTime max if nothing spans). Valid once fabrics are added.
  [[nodiscard]] sim::SimDuration max_safe_epoch() const;

  // Builds the VLAN -> home-shards map from the fabrics' wired membership,
  // validates set.epoch() against max_safe_epoch(), and installs the router
  // into every fabric. Call once, after topology construction, before the
  // first epoch runs.
  void finalize(sim::ShardSet& set);
  [[nodiscard]] bool finalized() const { return set_ != nullptr; }

  // --- Called by Fabric on the owning shard's worker thread ---------------

  // Does `vlan` have wired members on any shard other than `shard`?
  [[nodiscard]] bool spans_other_shards(std::size_t shard,
                                        util::VlanId vlan) const;

  // Ships `frame` to every other shard that homes its VLAN; each target gets
  // its own byte copy, injected at sent_at + epoch through the mailboxes.
  void forward(std::size_t from_shard, const ForeignFrame& frame);

  [[nodiscard]] std::uint64_t frames_forwarded() const {
    return frames_forwarded_.load(std::memory_order_relaxed);
  }

 private:
  [[nodiscard]] std::map<util::VlanId, std::vector<std::size_t>> build_homes()
      const;

  std::vector<Fabric*> fabrics_;  // index == shard
  std::map<util::VlanId, std::vector<std::size_t>> homes_;
  sim::ShardSet* set_ = nullptr;
  std::atomic<std::uint64_t> frames_forwarded_{0};
};

}  // namespace gs::net
