// Refcounted immutable datagram payloads with a decode-once cache.
//
// A multicast puts ONE frame on the segment regardless of fan-out, so the
// simulator models it with one shared buffer per unique payload. This class
// extends that sharing from the bytes to the work done on the bytes: the
// first receiver to look at a payload verifies the envelope (magic, version,
// length, CRC32C) and decodes the typed message; every later receiver of the
// same payload gets the cached result for free. The bytes themselves are
// immutable from the moment they leave the sending NIC — fault injection
// that corrupts a frame builds a fresh Payload for the affected receiver,
// never mutating (or consulting the cache of) the shared original.
//
// Allocation story: payloads at or under kInlineCapacity bytes (every
// heartbeat/ping/beacon-sized message) live in inline storage inside a
// pooled Rep; Reps are recycled through a thread-local free list, so steady
// state sends and receives without touching the heap. Larger payloads spill
// into a std::vector that is retained across recycles, amortising to zero
// as well. The refcount is non-atomic: each simulation is single-threaded
// and parallel harnesses (soak runner, bench trials, the sharded driver)
// give every thread its own Farm, so a Rep never crosses threads. Sharded
// runs enforce this by deep-copying frame bytes at shard boundaries (see
// net::ShardRouter) and rebuilding the Payload on the destination thread.
//
// Each Rep remembers the thread that allocated it. Releasing the last
// reference on a different thread is a contract violation — the decrement
// itself raced, and pooling the Rep would plant it on the wrong thread-local
// free list. Debug and TSan builds abort on such a release (opt out with
// ForeignReleaseScope for controlled teardown paths); release builds delete
// the Rep instead of pooling it, so a foreign release that happened to be
// benign at least cannot corrupt a free list.
#pragma once

#include <cstdint>
#include <new>
#include <span>
#include <thread>
#include <vector>

#include "wire/frame.h"

// Owner-thread assertions on Payload release: on in debug builds and under
// ThreadSanitizer, compiled out of optimized release builds.
#ifndef GS_PAYLOAD_OWNER_CHECK
#if !defined(NDEBUG)
#define GS_PAYLOAD_OWNER_CHECK 1
#elif defined(__SANITIZE_THREAD__)
#define GS_PAYLOAD_OWNER_CHECK 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define GS_PAYLOAD_OWNER_CHECK 1
#endif
#endif
#ifndef GS_PAYLOAD_OWNER_CHECK
#define GS_PAYLOAD_OWNER_CHECK 0
#endif
#endif

namespace gs::net {

// Type-erased slot holding the first successful (or failed) typed decode of
// a payload. Lives in net so the transport layer needs no knowledge of the
// protocol message structs; gs::proto::FrameRef supplies the typing.
class DecodeSlot {
 public:
  enum class State : std::uint8_t { kEmpty, kDecoded, kFailed };

  // Sized for the largest cached message (MembershipReport and its vectors'
  // headers); decode functions own any heap the message itself needs.
  static constexpr std::size_t kCapacity = 160;

  DecodeSlot() = default;
  ~DecodeSlot() { reset(); }
  DecodeSlot(const DecodeSlot&) = delete;
  DecodeSlot& operator=(const DecodeSlot&) = delete;

  [[nodiscard]] State state() const { return state_; }
  [[nodiscard]] std::uint16_t tag() const { return tag_; }

  template <typename T>
  [[nodiscard]] const T* value() const {
    return std::launder(reinterpret_cast<const T*>(storage_));
  }

  // Runs `decode(T*)` into the slot. On success the slot caches the value
  // and returns it; on failure the slot remembers the failure for `tag` and
  // returns nullptr. Must only be called on an empty slot.
  template <typename T, typename Fn>
  const T* fill(std::uint16_t tag, Fn&& decode) {
    static_assert(sizeof(T) <= kCapacity, "grow DecodeSlot::kCapacity");
    static_assert(alignof(T) <= alignof(std::max_align_t));
    tag_ = tag;
    T* obj = new (storage_) T();
    if (!decode(obj)) {
      obj->~T();
      state_ = State::kFailed;
      return nullptr;
    }
    destroy_ = [](void* p) { static_cast<T*>(p)->~T(); };
    state_ = State::kDecoded;
    return obj;
  }

  void reset() {
    if (destroy_ != nullptr) {
      destroy_(storage_);
      destroy_ = nullptr;
    }
    state_ = State::kEmpty;
    tag_ = 0;
  }

 private:
  alignas(std::max_align_t) unsigned char storage_[kCapacity];
  void (*destroy_)(void*) = nullptr;
  State state_ = State::kEmpty;
  std::uint16_t tag_ = 0;
};

class Payload {
 public:
  // Payloads at or under this size (all steady-state traffic) are stored
  // inline in the pooled Rep; larger ones spill to a retained vector.
  static constexpr std::size_t kInlineCapacity = 128;

  Payload() = default;
  Payload(const Payload& other) : rep_(other.rep_) {
    if (rep_ != nullptr) ++rep_->refs;
  }
  Payload(Payload&& other) noexcept : rep_(other.rep_) { other.rep_ = nullptr; }
  Payload& operator=(const Payload& other) {
    Payload copy(other);
    swap(copy);
    return *this;
  }
  Payload& operator=(Payload&& other) noexcept {
    swap(other);
    return *this;
  }
  ~Payload() { unref(); }

  void swap(Payload& other) noexcept {
    Rep* tmp = rep_;
    rep_ = other.rep_;
    other.rep_ = tmp;
  }

  // Copies `bytes` into a pooled rep (memcpy into inline storage for small
  // frames). The canonical way to snapshot a scratch Writer's frame.
  [[nodiscard]] static Payload copy_of(std::span<const std::uint8_t> bytes);

  // Adopts an already-built vector; moves it into the rep's spill slot when
  // it exceeds the inline capacity, otherwise copies and drops it.
  [[nodiscard]] static Payload wrap(std::vector<std::uint8_t> bytes);

  [[nodiscard]] bool engaged() const { return rep_ != nullptr; }
  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] const std::uint8_t* data() const;
  [[nodiscard]] std::span<const std::uint8_t> bytes() const {
    return {data(), size()};
  }

  // Envelope verification, cached per unique payload: the first caller pays
  // the CRC + header parse, later callers read the stored result. With the
  // cache disabled every call re-verifies and the rep is left untouched.
  [[nodiscard]] wire::VerifiedFrame verified() const;

  // The frame body (bytes after the header) for a payload whose envelope
  // verified clean; empty span otherwise.
  [[nodiscard]] std::span<const std::uint8_t> frame_payload() const;

  // The shared typed-decode slot, or nullptr for a disengaged payload.
  [[nodiscard]] DecodeSlot* decode_slot() const;

  // True when this handle is the only reference to the rep (test hook).
  [[nodiscard]] bool unique() const {
    return rep_ != nullptr && rep_->refs == 1;
  }

  // Identity of the shared buffer, for tests asserting two datagrams share
  // (or do not share) one payload.
  [[nodiscard]] const void* identity() const { return rep_; }

  // Thread-local kill switch for the verification + decode caches, used by
  // the determinism pin to prove cached and uncached runs are byte-equal.
  static void set_cache_enabled(bool enabled);
  [[nodiscard]] static bool cache_enabled();

  // Thread-local rep pool introspection / reset (tests and benches).
  [[nodiscard]] static std::size_t pool_size();
  static void trim_pool();

  // Suspends the owner-thread abort (debug/TSan builds) on the current
  // thread for releases that are foreign by construction but provably
  // unracing — e.g. a teardown path destroying a quiesced shard's leftovers.
  // The release still bypasses the pool and deletes the Rep.
  class ForeignReleaseScope {
   public:
    ForeignReleaseScope();
    ~ForeignReleaseScope();
    ForeignReleaseScope(const ForeignReleaseScope&) = delete;
    ForeignReleaseScope& operator=(const ForeignReleaseScope&) = delete;
  };

  // Payloads created inside this scope are UNOWNED: never pooled, released
  // (heap-deleted) on any thread without tripping the owner check. For
  // control-plane calls that inject frames into a quiesced shard from the
  // driving thread — e.g. ShardedFarm::fail_node sending from the caller
  // while the shard's worker is parked at the epoch barrier, with the frame
  // delivered (and its payload released) later on that worker. The barrier
  // provides the happens-before; this scope tells the ownership check the
  // cross-thread release is by construction, not a race.
  class UnownedCreationScope {
   public:
    UnownedCreationScope();
    ~UnownedCreationScope();
    UnownedCreationScope(const UnownedCreationScope&) = delete;
    UnownedCreationScope& operator=(const UnownedCreationScope&) = delete;
  };

 private:
  struct Rep {
    std::uint32_t refs = 1;
    std::uint32_t size = 0;
    bool verified_valid = false;
    wire::VerifiedFrame verified;
    DecodeSlot slot;
    std::thread::id owner;  // thread whose pool this Rep belongs to
    std::vector<std::uint8_t> spill;  // holds the bytes when size > inline
    alignas(8) std::uint8_t inline_buf[kInlineCapacity];

    [[nodiscard]] const std::uint8_t* data() const {
      return size <= kInlineCapacity ? inline_buf : spill.data();
    }
  };

  struct RepPool;
  [[nodiscard]] static RepPool& pool();
  [[nodiscard]] static Rep* acquire();
  static void recycle(Rep* rep);

  void unref() {
    if (rep_ != nullptr && --rep_->refs == 0) recycle(rep_);
    rep_ = nullptr;
  }

  Rep* rep_ = nullptr;
};

}  // namespace gs::net
