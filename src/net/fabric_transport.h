// Transport backend over the simulated switched network.
//
// A thin per-node adapter-id table in front of net::Fabric: every call maps
// a port index to the AdapterId the farm builder wired for that node and
// forwards verbatim, so the seam refactor is behavior-neutral for the sim —
// same fabric calls, same delivery order, byte-identical golden traces.
#pragma once

#include <vector>

#include "net/fabric.h"
#include "net/transport.h"
#include "util/check.h"
#include "util/ids.h"

namespace gs::net {

class FabricTransport final : public Transport {
 public:
  FabricTransport(Fabric& fabric, std::vector<util::AdapterId> adapters)
      : fabric_(fabric), adapters_(std::move(adapters)) {}

  [[nodiscard]] std::size_t port_count() const override {
    return adapters_.size();
  }

  [[nodiscard]] util::IpAddress local_ip(std::size_t port) const override {
    return fabric_.adapter(id(port)).ip();
  }

  [[nodiscard]] util::MacAddress local_mac(std::size_t port) const override {
    return fabric_.adapter(id(port)).mac();
  }

  bool unicast(std::size_t port, util::IpAddress dst,
               Payload frame) override {
    return fabric_.send(id(port), dst, std::move(frame));
  }

  bool multicast(std::size_t port, util::IpAddress group,
                 Payload frame) override {
    return fabric_.multicast(id(port), group, std::move(frame));
  }

  [[nodiscard]] bool loopback_ok(std::size_t port) const override {
    return fabric_.adapter(id(port)).loopback_ok();
  }

  void set_receive_handler(std::size_t port, ReceiveHandler handler) override {
    fabric_.adapter(id(port)).set_receive_handler(std::move(handler));
  }

  // The fabric adapter behind a port (sim-only introspection: the farm and
  // tests correlate daemon ports with ground-truth topology through this).
  [[nodiscard]] util::AdapterId adapter_id(std::size_t port) const {
    return id(port);
  }

 private:
  [[nodiscard]] util::AdapterId id(std::size_t port) const {
    GS_CHECK(port < adapters_.size());
    return adapters_[port];
  }

  Fabric& fabric_;
  std::vector<util::AdapterId> adapters_;
};

}  // namespace gs::net
