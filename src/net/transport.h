// The network seam a GulfStream daemon does I/O through.
//
// A Transport is one *node's* view of the network: an indexed set of local
// ports (one per hosted network adapter) that can unicast on their VLAN,
// multicast to the VLAN's beacon group, run the §3 loopback self-test, and
// deliver received datagrams to a per-port handler. Two backends exist:
//  * FabricTransport — the simulated switched network (net::Fabric) driven
//    by sim::Simulator; byte-identical to the pre-seam wiring.
//  * UdpTransport — real nonblocking UDP sockets on loopback behind an
//    epoll event loop, VLANs mapped to port ranges (net/udp_transport.h).
// The protocol stack (GsDaemon, AdapterProtocol, Amg, Fd, Central) runs
// unmodified over either.
#pragma once

#include <cstddef>
#include <functional>

#include "net/datagram.h"
#include "util/ip.h"

namespace gs::net {

class Transport {
 public:
  using ReceiveHandler = std::function<void(const Datagram&)>;

  virtual ~Transport() = default;

  // Number of local ports (adapters) this node has. Port indices below are
  // always < port_count().
  [[nodiscard]] virtual std::size_t port_count() const = 0;

  // The port's current IP/MAC. The IP is read live: reconfiguration (e.g.
  // Central rewriting a switch port) may change it mid-run.
  [[nodiscard]] virtual util::IpAddress local_ip(std::size_t port) const = 0;
  [[nodiscard]] virtual util::MacAddress local_mac(std::size_t port) const = 0;

  // Unicast to dst on the port's VLAN. Returns false only if the frame
  // never left the adapter (sender dead/closed); in-flight loss still
  // returns true, as a real sender cannot observe it.
  virtual bool unicast(std::size_t port, util::IpAddress dst,
                       Payload frame) = 0;

  // Multicast to every other member of the port's VLAN.
  virtual bool multicast(std::size_t port, util::IpAddress group,
                         Payload frame) = 0;

  // The §3 loopback self-test: can this port still hear itself?
  [[nodiscard]] virtual bool loopback_ok(std::size_t port) const = 0;

  // Installs (or, with nullptr, removes) the port's delivery callback.
  virtual void set_receive_handler(std::size_t port,
                                   ReceiveHandler handler) = 0;
};

}  // namespace gs::net

namespace gs {
// The seam name the design docs use, mirroring gs::TimeSource.
using Transport = net::Transport;
}  // namespace gs
