#include "soak/invariants.h"

#include <map>
#include <set>
#include <sstream>

namespace gs::soak {

std::string_view to_string(Violation::Kind kind) {
  switch (kind) {
    case Violation::Kind::kNotConverged: return "not-converged";
    case Violation::Kind::kAmgMembership: return "amg-membership";
    case Violation::Kind::kAmgLeadership: return "amg-leadership";
    case Violation::Kind::kNoActiveCentral: return "no-active-central";
    case Violation::Kind::kGscAdapter: return "gsc-adapter";
    case Violation::Kind::kGscGroup: return "gsc-group";
    case Violation::Kind::kTrace: return "trace";
    case Violation::Kind::kSpanLeak: return "span-leak";
    case Violation::Kind::kCodec: return "codec";
  }
  return "?";
}

std::string format_violations(const std::vector<Violation>& violations) {
  std::ostringstream out;
  for (const Violation& v : violations)
    out << "[" << to_string(v.kind) << "] " << v.detail << "\n";
  return out.str();
}

namespace {

struct VlanTruth {
  std::set<util::IpAddress> healthy;
  util::IpAddress leader;  // highest healthy IP on the segment
};

class Checker {
 public:
  explicit Checker(farm::Farm& farm) : farm_(farm) {
    net::Fabric& fabric = farm_.fabric();
    for (std::size_t i = 0; i < fabric.adapter_count(); ++i) {
      const util::AdapterId id(static_cast<std::uint32_t>(i));
      by_ip_[fabric.adapter(id).ip()] = id;
    }
    for (util::VlanId vlan : farm_.vlans()) {
      VlanTruth t;
      for (util::AdapterId id : farm_.healthy_adapters_in_vlan(vlan)) {
        const util::IpAddress ip = fabric.adapter(id).ip();
        t.healthy.insert(ip);
        t.leader = std::max(t.leader, ip);
      }
      if (!t.healthy.empty()) truth_[vlan] = std::move(t);
    }
  }

  std::vector<Violation> run() {
    check_amgs();
    check_central();
    check_codec();
    return std::move(violations_);
  }

 private:
  void add(Violation::Kind kind, const std::string& detail) {
    violations_.push_back({kind, detail});
  }

  void check_amgs() {
    for (const auto& [vlan, t] : truth_) {
      std::optional<std::uint64_t> view_number;
      for (util::IpAddress ip : t.healthy) {
        proto::AdapterProtocol* proto = farm_.protocol_for(by_ip_.at(ip));
        std::ostringstream who;
        who << ip << " (vlan " << vlan.value() << ")";
        if (proto == nullptr || !proto->is_committed()) {
          add(Violation::Kind::kAmgMembership,
              who.str() + " is healthy but not committed into any AMG");
          continue;
        }
        const proto::MembershipView& view = proto->committed();
        std::set<util::IpAddress> members;
        util::IpAddress highest;
        for (const proto::MemberInfo& m : view.members()) {
          members.insert(m.ip);
          highest = std::max(highest, m.ip);
        }
        if (members != t.healthy) {
          std::ostringstream detail;
          detail << who.str() << " committed view has " << members.size()
                 << " member(s), ground truth has " << t.healthy.size();
          add(Violation::Kind::kAmgMembership, detail.str());
        }
        if (view.leader().ip != highest) {
          std::ostringstream detail;
          detail << who.str() << " view leader " << view.leader().ip
                 << " is not the highest IP in the view (" << highest << ")";
          add(Violation::Kind::kAmgLeadership, detail.str());
        }
        if (proto->leader_ip() != t.leader) {
          std::ostringstream detail;
          detail << who.str() << " follows leader " << proto->leader_ip()
                 << ", ground truth elects " << t.leader;
          add(Violation::Kind::kAmgLeadership, detail.str());
        }
        if (!view_number) view_number = view.view();
        if (*view_number != view.view()) {
          std::ostringstream detail;
          detail << who.str() << " holds view " << view.view()
                 << ", its segment peers hold " << *view_number
                 << " — more than one AMG on the segment";
          add(Violation::Kind::kAmgMembership, detail.str());
        }
      }
    }
  }

  // Invariant 6: with the decode-once codec path a daemon drops a frame
  // only when its envelope or typed decode fails — and in simulation that
  // can only happen when the fabric injected a byte flip. Drops without any
  // injected corruption mean the codec path corrupted or mis-cached a
  // payload on its own.
  void check_codec() {
    std::uint64_t corrupted = 0;
    for (util::VlanId vlan : farm_.vlans())
      corrupted += farm_.fabric().load(vlan).frames_corrupted;
    std::uint64_t dropped = 0;
    for (std::size_t n = 0; n < farm_.node_count(); ++n)
      dropped += farm_.daemon(n).frames_dropped();
    if (dropped > 0 && corrupted == 0) {
      std::ostringstream detail;
      detail << dropped << " frame(s) dropped by daemons but the fabric "
             << "injected no corruption";
      add(Violation::Kind::kCodec, detail.str());
    }
  }

  void check_central() {
    const auto expected_node = farm_.expected_gsc_node();
    if (!expected_node) return;  // no eligible node healthy: nothing to host GSC
    proto::Central* central = farm_.active_central();
    if (central == nullptr) {
      add(Violation::Kind::kNoActiveCentral,
          "an eligible node is healthy but no Central instance is active");
      return;
    }
    net::Fabric& fabric = farm_.fabric();
    const std::size_t admin_index =
        farm_.daemon(*expected_node).config().admin_adapter_index;
    const util::IpAddress expected_ip =
        fabric.adapter(farm_.node_adapters(*expected_node)[admin_index]).ip();
    if (central->self_ip() != expected_ip) {
      std::ostringstream detail;
      detail << "active Central is " << central->self_ip()
             << ", admin-AMG election says it should be " << expected_ip;
      add(Violation::Kind::kNoActiveCentral, detail.str());
    }

    // Per-adapter table vs ground truth, both directions.
    for (const auto& [vlan, t] : truth_) {
      for (util::IpAddress ip : t.healthy) {
        const auto status = central->adapter_status(ip);
        std::ostringstream who;
        who << ip << " (vlan " << vlan.value() << ")";
        if (!status) {
          add(Violation::Kind::kGscAdapter,
              who.str() + " is healthy but unknown to Central");
          continue;
        }
        if (!status->alive)
          add(Violation::Kind::kGscAdapter,
              who.str() + " is healthy but Central records it dead");
        if (status->group_leader != t.leader) {
          std::ostringstream detail;
          detail << who.str() << " assigned to leader " << status->group_leader
                 << " at Central, ground truth elects " << t.leader;
          add(Violation::Kind::kGscAdapter, detail.str());
        }
      }
    }
    for (const auto& [ip, id] : by_ip_) {
      const auto status = central->adapter_status(ip);
      if (!status || !status->alive) continue;
      if (fabric.adapter(id).health() != net::HealthState::kUp) {
        std::ostringstream detail;
        detail << ip << " is down but Central still records it alive"
               << " (missed death)";
        add(Violation::Kind::kGscAdapter, detail.str());
      }
    }

    // Group table: exactly one group per populated segment, led and
    // populated exactly as ground truth says.
    std::map<util::VlanId, int> groups_seen;
    for (const proto::Central::GroupInfo& group : central->groups()) {
      auto leader_adapter = by_ip_.find(group.leader.ip);
      if (leader_adapter == by_ip_.end()) {
        std::ostringstream detail;
        detail << "Central group led by unknown adapter " << group.leader.ip;
        add(Violation::Kind::kGscGroup, detail.str());
        continue;
      }
      const util::VlanId vlan = fabric.vlan_of(leader_adapter->second);
      auto t = vlan.valid() ? truth_.find(vlan) : truth_.end();
      if (t == truth_.end()) {
        std::ostringstream detail;
        detail << "stale Central group led by " << group.leader.ip
               << " on a segment with no healthy adapters";
        add(Violation::Kind::kGscGroup, detail.str());
        continue;
      }
      ++groups_seen[vlan];
      if (group.leader.ip != t->second.leader) {
        std::ostringstream detail;
        detail << "Central group on vlan " << vlan.value() << " led by "
               << group.leader.ip << ", ground truth elects "
               << t->second.leader;
        add(Violation::Kind::kGscGroup, detail.str());
      }
      // The recorded view must be the one the leader actually committed: a
      // lag here means the leader's reports are being dropped or misfiled
      // (e.g. acked as duplicates), so the rest of the record is stale too.
      proto::AdapterProtocol* leader_proto =
          farm_.protocol_for(leader_adapter->second);
      if (leader_proto != nullptr && leader_proto->is_committed() &&
          leader_proto->is_leader() &&
          group.view != leader_proto->committed().view()) {
        std::ostringstream detail;
        detail << "Central holds view " << group.view << " for the group led by "
               << group.leader.ip << ", the leader's committed view is "
               << leader_proto->committed().view()
               << " — its reports are not being applied";
        add(Violation::Kind::kGscGroup, detail.str());
      }
      const std::set<util::IpAddress> members(group.members.begin(),
                                              group.members.end());
      if (members != t->second.healthy) {
        std::ostringstream detail;
        detail << "Central group on vlan " << vlan.value() << " has "
               << members.size() << " member(s), ground truth has "
               << t->second.healthy.size();
        add(Violation::Kind::kGscGroup, detail.str());
      }
    }
    for (const auto& [vlan, t] : truth_) {
      const int seen = groups_seen.count(vlan) ? groups_seen.at(vlan) : 0;
      if (seen == 1) continue;
      std::ostringstream detail;
      detail << "Central records " << seen << " group(s) for vlan "
             << vlan.value() << ", expected exactly one";
      add(Violation::Kind::kGscGroup, detail.str());
    }
  }

  farm::Farm& farm_;
  std::map<util::IpAddress, util::AdapterId> by_ip_;
  std::map<util::VlanId, VlanTruth> truth_;
  std::vector<Violation> violations_;
};

}  // namespace

std::vector<Violation> check_farm_invariants(farm::Farm& farm) {
  return Checker(farm).run();
}

}  // namespace gs::soak
