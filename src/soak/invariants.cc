#include "soak/invariants.h"

#include <map>
#include <set>
#include <sstream>

namespace gs::soak {

std::string_view to_string(Violation::Kind kind) {
  switch (kind) {
    case Violation::Kind::kNotConverged: return "not-converged";
    case Violation::Kind::kAmgMembership: return "amg-membership";
    case Violation::Kind::kAmgLeadership: return "amg-leadership";
    case Violation::Kind::kNoActiveCentral: return "no-active-central";
    case Violation::Kind::kGscAdapter: return "gsc-adapter";
    case Violation::Kind::kGscGroup: return "gsc-group";
    case Violation::Kind::kTrace: return "trace";
    case Violation::Kind::kSpanLeak: return "span-leak";
    case Violation::Kind::kCodec: return "codec";
  }
  return "?";
}

std::string format_violations(const std::vector<Violation>& violations) {
  std::ostringstream out;
  for (const Violation& v : violations)
    out << "[" << to_string(v.kind) << "] " << v.detail << "\n";
  return out.str();
}

namespace {

struct VlanTruth {
  std::set<util::IpAddress> healthy;
  util::IpAddress leader;  // highest healthy IP on the segment
};

class Checker {
 public:
  explicit Checker(farm::Farm& farm) : farm_(farm) {
    net::Fabric& fabric = farm_.fabric();
    for (std::size_t i = 0; i < fabric.adapter_count(); ++i) {
      const util::AdapterId id(static_cast<std::uint32_t>(i));
      by_ip_[fabric.adapter(id).ip()] = id;
    }
    for (util::VlanId vlan : farm_.vlans()) {
      VlanTruth t;
      for (util::AdapterId id : farm_.healthy_adapters_in_vlan(vlan)) {
        const util::IpAddress ip = fabric.adapter(id).ip();
        t.healthy.insert(ip);
        t.leader = std::max(t.leader, ip);
      }
      if (!t.healthy.empty()) truth_[vlan] = std::move(t);
    }
  }

  std::vector<Violation> run() {
    check_amgs();
    check_central();
    check_codec();
    return std::move(violations_);
  }

 private:
  void add(Violation::Kind kind, const std::string& detail) {
    violations_.push_back({kind, detail});
  }

  void check_amgs() {
    for (const auto& [vlan, t] : truth_) {
      std::optional<std::uint64_t> view_number;
      for (util::IpAddress ip : t.healthy) {
        proto::AdapterProtocol* proto = farm_.protocol_for(by_ip_.at(ip));
        std::ostringstream who;
        who << ip << " (vlan " << vlan.value() << ")";
        if (proto == nullptr || !proto->is_committed()) {
          add(Violation::Kind::kAmgMembership,
              who.str() + " is healthy but not committed into any AMG");
          continue;
        }
        const proto::MembershipView& view = proto->committed();
        std::set<util::IpAddress> members;
        util::IpAddress highest;
        for (const proto::MemberInfo& m : view.members()) {
          members.insert(m.ip);
          highest = std::max(highest, m.ip);
        }
        if (members != t.healthy) {
          std::ostringstream detail;
          detail << who.str() << " committed view has " << members.size()
                 << " member(s), ground truth has " << t.healthy.size();
          add(Violation::Kind::kAmgMembership, detail.str());
        }
        if (view.leader().ip != highest) {
          std::ostringstream detail;
          detail << who.str() << " view leader " << view.leader().ip
                 << " is not the highest IP in the view (" << highest << ")";
          add(Violation::Kind::kAmgLeadership, detail.str());
        }
        if (proto->leader_ip() != t.leader) {
          std::ostringstream detail;
          detail << who.str() << " follows leader " << proto->leader_ip()
                 << ", ground truth elects " << t.leader;
          add(Violation::Kind::kAmgLeadership, detail.str());
        }
        if (!view_number) view_number = view.view();
        if (*view_number != view.view()) {
          std::ostringstream detail;
          detail << who.str() << " holds view " << view.view()
                 << ", its segment peers hold " << *view_number
                 << " — more than one AMG on the segment";
          add(Violation::Kind::kAmgMembership, detail.str());
        }
      }
    }
  }

  // Invariant 6: with the decode-once codec path a daemon drops a frame
  // only when its envelope or typed decode fails — and in simulation that
  // can only happen when the fabric injected a byte flip. Drops without any
  // injected corruption mean the codec path corrupted or mis-cached a
  // payload on its own.
  void check_codec() {
    std::uint64_t corrupted = 0;
    for (util::VlanId vlan : farm_.vlans())
      corrupted += farm_.fabric().load(vlan).frames_corrupted;
    std::uint64_t dropped = 0;
    for (std::size_t n = 0; n < farm_.node_count(); ++n)
      dropped += farm_.daemon(n).frames_dropped();
    if (dropped > 0 && corrupted == 0) {
      std::ostringstream detail;
      detail << dropped << " frame(s) dropped by daemons but the fabric "
             << "injected no corruption";
      add(Violation::Kind::kCodec, detail.str());
    }
  }

  void check_central() {
    if (farm_.spec().is_hierarchical()) {
      check_hierarchical();
      return;
    }
    const auto expected_node = farm_.expected_gsc_node();
    if (!expected_node) return;  // no eligible node healthy: nothing to host GSC
    proto::Central* central = farm_.active_central();
    if (central == nullptr) {
      add(Violation::Kind::kNoActiveCentral,
          "an eligible node is healthy but no Central instance is active");
      return;
    }
    check_hosted_where_elected(*expected_node, central->self_ip(), "Central");
    std::set<util::VlanId> covered;
    for (const auto& [vlan, t] : truth_) covered.insert(vlan);
    check_tables(*central, covered);
  }

  // The active instance must sit where the admin-AMG election says: on
  // `expected_node`'s admin adapter.
  void check_hosted_where_elected(std::size_t expected_node,
                                  util::IpAddress actual,
                                  std::string_view what) {
    const std::size_t admin_index =
        farm_.daemon(expected_node).config().admin_adapter_index;
    const util::IpAddress expected_ip =
        farm_.fabric()
            .adapter(farm_.node_adapters(expected_node)[admin_index])
            .ip();
    if (actual == expected_ip) return;
    std::ostringstream detail;
    detail << "active " << what << " is " << actual
           << ", admin-AMG election says it should be " << expected_ip;
    add(Violation::Kind::kNoActiveCentral, detail.str());
  }

  // Table invariants for one Central instance against ground truth.
  // `covered` is the set of segments this instance is responsible for: the
  // "healthy implies known+alive+right leader" and "exactly one group"
  // directions apply only there, while the staleness directions (missed
  // deaths, misfiled or phantom groups) apply to everything it records.
  void check_tables(proto::Central& central,
                    const std::set<util::VlanId>& covered) {
    net::Fabric& fabric = farm_.fabric();
    // Per-adapter table vs ground truth, both directions.
    for (const auto& [vlan, t] : truth_) {
      if (!covered.count(vlan)) continue;
      for (util::IpAddress ip : t.healthy) {
        const auto status = central.adapter_status(ip);
        std::ostringstream who;
        who << ip << " (vlan " << vlan.value() << ")";
        if (!status) {
          add(Violation::Kind::kGscAdapter,
              who.str() + " is healthy but unknown to Central");
          continue;
        }
        if (!status->alive)
          add(Violation::Kind::kGscAdapter,
              who.str() + " is healthy but Central records it dead");
        if (status->group_leader != t.leader) {
          std::ostringstream detail;
          detail << who.str() << " assigned to leader " << status->group_leader
                 << " at Central, ground truth elects " << t.leader;
          add(Violation::Kind::kGscAdapter, detail.str());
        }
      }
    }
    for (const auto& [ip, id] : by_ip_) {
      const auto status = central.adapter_status(ip);
      if (!status || !status->alive) continue;
      if (fabric.adapter(id).health() != net::HealthState::kUp) {
        std::ostringstream detail;
        detail << ip << " is down but Central still records it alive"
               << " (missed death)";
        add(Violation::Kind::kGscAdapter, detail.str());
      }
    }

    // Group table: exactly one group per covered populated segment, led and
    // populated exactly as ground truth says.
    std::map<util::VlanId, int> groups_seen;
    for (const proto::Central::GroupInfo& group : central.groups()) {
      auto leader_adapter = by_ip_.find(group.leader.ip);
      if (leader_adapter == by_ip_.end()) {
        std::ostringstream detail;
        detail << "Central group led by unknown adapter " << group.leader.ip;
        add(Violation::Kind::kGscGroup, detail.str());
        continue;
      }
      const util::VlanId vlan = fabric.vlan_of(leader_adapter->second);
      auto t = vlan.valid() ? truth_.find(vlan) : truth_.end();
      if (t == truth_.end()) {
        std::ostringstream detail;
        detail << "stale Central group led by " << group.leader.ip
               << " on a segment with no healthy adapters";
        add(Violation::Kind::kGscGroup, detail.str());
        continue;
      }
      ++groups_seen[vlan];
      if (group.leader.ip != t->second.leader) {
        std::ostringstream detail;
        detail << "Central group on vlan " << vlan.value() << " led by "
               << group.leader.ip << ", ground truth elects "
               << t->second.leader;
        add(Violation::Kind::kGscGroup, detail.str());
      }
      // The recorded view must be the one the leader actually committed: a
      // lag here means the leader's reports are being dropped or misfiled
      // (e.g. acked as duplicates), so the rest of the record is stale too.
      proto::AdapterProtocol* leader_proto =
          farm_.protocol_for(leader_adapter->second);
      if (leader_proto != nullptr && leader_proto->is_committed() &&
          leader_proto->is_leader() &&
          group.view != leader_proto->committed().view()) {
        std::ostringstream detail;
        detail << "Central holds view " << group.view << " for the group led by "
               << group.leader.ip << ", the leader's committed view is "
               << leader_proto->committed().view()
               << " — its reports are not being applied";
        add(Violation::Kind::kGscGroup, detail.str());
      }
      const std::set<util::IpAddress> members(group.members.begin(),
                                              group.members.end());
      if (members != t->second.healthy) {
        std::ostringstream detail;
        detail << "Central group on vlan " << vlan.value() << " has "
               << members.size() << " member(s), ground truth has "
               << t->second.healthy.size();
        add(Violation::Kind::kGscGroup, detail.str());
      }
    }
    for (const auto& [vlan, t] : truth_) {
      if (!covered.count(vlan)) continue;
      const int seen = groups_seen.count(vlan) ? groups_seen.at(vlan) : 0;
      if (seen == 1) continue;
      std::ostringstream detail;
      detail << "Central records " << seen << " group(s) for vlan "
             << vlan.value() << ", expected exactly one";
      add(Violation::Kind::kGscGroup, detail.str());
    }
  }

  // Hierarchical farms: three tiers of table truth.
  //  * Each domain's Central covers the segments whose leader lives in that
  //    domain, exactly as a flat Central covers the whole farm.
  //  * The root tier's co-located plain Central covers the segments led by
  //    the root tier itself (normally just the root VLAN).
  //  * The RootCentral's aggregated tables must match ground truth for
  //    every domain-covered segment: digests are lossy in form (member
  //    lists never cross the uplink) but must not be lossy in content.
  //
  // Coverage follows the LEADER's home, not the VLAN's nominal domain: a
  // group reports to whatever GSC its leader's daemon discovered through
  // its own admin adapter, so a cross-domain VLAN move (the moved adapter
  // keeps its higher IP and wins the election) legitimately re-homes the
  // whole group's reporting path — and, through the root's ownership-
  // transfer fence, its attribution at the root.
  void check_hierarchical() {
    const farm::FarmSpec& spec = farm_.spec();

    std::map<util::VlanId, std::optional<std::uint32_t>> covering;
    for (const auto& [vlan, t] : truth_) {
      std::optional<std::uint32_t> dom;
      if (const auto node = farm_.node_of(by_ip_.at(t.leader))) {
        const util::DomainId d = farm_.domain_of(*node);
        if (d.valid()) dom = d.value();
      }
      covering[vlan] = dom;
    }

    if (const auto root_node = farm_.expected_root_node()) {
      proto::Central* central = farm_.active_root_tier_central();
      if (central == nullptr) {
        add(Violation::Kind::kNoActiveCentral,
            "a root-tier node is healthy but no root-tier Central is active");
      } else {
        check_hosted_where_elected(*root_node, central->self_ip(),
                                   "root-tier Central");
        std::set<util::VlanId> covered;
        for (const auto& [vlan, dom] : covering)
          if (!dom) covered.insert(vlan);
        check_tables(*central, covered);
      }
    }

    for (std::uint32_t d = 0; d < static_cast<std::uint32_t>(spec.hier_domains);
         ++d) {
      const auto expected = farm_.expected_domain_gsc_node(d);
      if (!expected) continue;  // whole domain management tier is down
      proto::Central* central = farm_.active_domain_central(d);
      if (central == nullptr) {
        std::ostringstream detail;
        detail << "domain " << d << " has a healthy management node but no "
               << "active domain Central";
        add(Violation::Kind::kNoActiveCentral, detail.str());
        continue;
      }
      std::ostringstream what;
      what << "domain " << d << " Central";
      check_hosted_where_elected(*expected, central->self_ip(), what.str());
      std::set<util::VlanId> covered;
      for (const auto& [vlan, dom] : covering)
        if (dom == d) covered.insert(vlan);
      check_tables(*central, covered);
    }

    check_root_tables(covering);
  }

  // RootCentral vs ground truth over every domain-covered segment. Root-
  // tier-covered segments (the root VLAN) are excluded: their membership is
  // the co-located plain Central's job and never crosses an uplink.
  void check_root_tables(
      const std::map<util::VlanId, std::optional<std::uint32_t>>& covering) {
    if (!farm_.expected_root_node()) return;  // no healthy root tier
    proto::RootCentral* root = farm_.active_root_central();
    if (root == nullptr) {
      add(Violation::Kind::kNoActiveCentral,
          "a root-tier node is healthy but no RootCentral is active");
      return;
    }
    check_hosted_where_elected(*farm_.expected_root_node(), root->self_ip(),
                               "RootCentral");

    net::Fabric& fabric = farm_.fabric();
    // A domain whose entire management tier is down cannot send digests:
    // the root's picture of its segments legitimately ages until the
    // domain lease expires them wholesale, so those are skipped.
    auto checkable = [&](util::VlanId vlan) -> std::optional<std::uint32_t> {
      const auto dom = covering.at(vlan);
      if (!dom) return std::nullopt;  // root-tier covered
      if (!farm_.expected_domain_gsc_node(*dom)) return std::nullopt;
      return dom;
    };

    for (const auto& [vlan, t] : truth_) {
      const auto dom = checkable(vlan);
      if (!dom) continue;
      for (util::IpAddress ip : t.healthy) {
        const auto status = root->adapter_status(ip);
        std::ostringstream who;
        who << ip << " (vlan " << vlan.value() << ")";
        if (!status) {
          add(Violation::Kind::kGscAdapter,
              who.str() + " is healthy but unknown to the root GSC");
          continue;
        }
        if (!status->alive)
          add(Violation::Kind::kGscAdapter,
              who.str() + " is healthy but the root GSC records it dead");
        if (status->group_leader != t.leader) {
          std::ostringstream detail;
          detail << who.str() << " assigned to leader " << status->group_leader
                 << " at the root GSC, ground truth elects " << t.leader;
          add(Violation::Kind::kGscAdapter, detail.str());
        }
        if (status->domain != *dom) {
          std::ostringstream detail;
          detail << who.str() << " attributed to domain " << status->domain
                 << " at the root GSC, its group reports through domain "
                 << *dom;
          add(Violation::Kind::kGscAdapter, detail.str());
        }
      }
    }
    for (const auto& [ip, id] : by_ip_) {
      const auto status = root->adapter_status(ip);
      if (!status || !status->alive) continue;
      if (fabric.adapter(id).health() != net::HealthState::kUp) {
        std::ostringstream detail;
        detail << ip << " is down but the root GSC still records it alive"
               << " (missed death)";
        add(Violation::Kind::kGscAdapter, detail.str());
      }
    }

    // Derived groups: one per checkable segment, with the right leader and
    // — reconstructed purely from per-adapter assignments — the right
    // member set.
    std::map<util::VlanId, int> groups_seen;
    for (const proto::RootCentral::GroupInfo& group : root->groups()) {
      auto leader_adapter = by_ip_.find(group.leader);
      if (leader_adapter == by_ip_.end()) {
        std::ostringstream detail;
        detail << "root GSC group led by unknown adapter " << group.leader;
        add(Violation::Kind::kGscGroup, detail.str());
        continue;
      }
      const util::VlanId vlan = fabric.vlan_of(leader_adapter->second);
      auto t = vlan.valid() ? truth_.find(vlan) : truth_.end();
      if (t == truth_.end()) {
        std::ostringstream detail;
        detail << "stale root GSC group led by " << group.leader
               << " on a segment with no healthy adapters";
        add(Violation::Kind::kGscGroup, detail.str());
        continue;
      }
      if (!checkable(vlan))
        continue;  // root-VLAN transient (root-tier blackout) or a dark
                   // domain; drains via group/domain leases
      ++groups_seen[vlan];
      if (group.leader != t->second.leader) {
        std::ostringstream detail;
        detail << "root GSC group on vlan " << vlan.value() << " led by "
               << group.leader << ", ground truth elects " << t->second.leader;
        add(Violation::Kind::kGscGroup, detail.str());
      }
      const std::set<util::IpAddress> members(group.members.begin(),
                                              group.members.end());
      if (members != t->second.healthy) {
        std::ostringstream detail;
        detail << "root GSC group on vlan " << vlan.value() << " has "
               << members.size() << " member(s), ground truth has "
               << t->second.healthy.size();
        add(Violation::Kind::kGscGroup, detail.str());
      }
    }
    for (const auto& [vlan, t] : truth_) {
      if (!checkable(vlan)) continue;
      const int seen = groups_seen.count(vlan) ? groups_seen.at(vlan) : 0;
      if (seen == 1) continue;
      std::ostringstream detail;
      detail << "root GSC records " << seen << " group(s) for vlan "
             << vlan.value() << ", expected exactly one";
      add(Violation::Kind::kGscGroup, detail.str());
    }
  }

  farm::Farm& farm_;
  std::map<util::IpAddress, util::AdapterId> by_ip_;
  std::map<util::VlanId, VlanTruth> truth_;
  std::vector<Violation> violations_;
};

}  // namespace

std::vector<Violation> check_farm_invariants(farm::Farm& farm) {
  return Checker(farm).run();
}

}  // namespace gs::soak
