// Seeded fault-schedule generation for the soak harness.
//
// A schedule is an ordinary farm::Script action list with *relative* times
// (the runner shifts it past the farm's initial convergence), sampled from
// the farm's whole fault surface: node death/boot, adapter down/recv-dead/
// send-dead, switch failure, VLAN partitions, GSC-driven domain moves, and
// at least one kill of the node hosting GulfStream Central. Generation is
// pure — the same (spec, seed, options) always yields the same schedule —
// so any schedule replays bit-identically on a fresh farm of the same spec,
// which is what lets the shrinker re-run subsets and lets a failing
// schedule become a regression test verbatim via farm::format_script().
#pragma once

#include <vector>

#include "farm/farm.h"
#include "farm/script.h"
#include "gs/params.h"

namespace gs::soak {

// Protocol timers tuned for soak throughput: short discovery and stability
// waits (semantics unchanged), so one run costs a few sim-minutes instead
// of tens.
[[nodiscard]] proto::Params default_soak_params();

struct SoakOptions {
  std::uint64_t seed = 1;
  farm::FarmSpec spec = farm::FarmSpec::oceano(2, 2, 2, 1, 2);
  proto::Params params = default_soak_params();

  // Fault-injection window (schedule times fall inside it) and how many
  // faults to sample (a fault and its paired recovery count once).
  sim::SimDuration horizon = sim::seconds(60);
  int fault_count = 10;

  // Relative sampling weights per fault family. Zero disables a family.
  int weight_node = 3;
  int weight_adapter_down = 2;
  int weight_adapter_recv = 1;
  int weight_adapter_send = 1;
  int weight_switch = 1;
  int weight_partition = 2;
  int weight_move = 2;

  // Fail (and recover) the node hosting GulfStream Central at least once,
  // forcing an admin-AMG failover mid-run.
  bool force_gsc_failover = true;

  // Runner budgets: initial convergence deadline, post-schedule window to
  // re-converge in, and extra settle time for Central's tables (0 derives
  // it from the params' move window and report timers).
  sim::SimDuration converge_deadline = sim::seconds(120);
  sim::SimDuration quiesce = sim::seconds(60);
  sim::SimDuration settle = 0;
};

// Samples a schedule for `farm` (which must be in its initial, pre-fault
// topology; only static topology is read). Guarantees:
//  * times are millisecond-aligned, non-decreasing, inside the horizon;
//  * every fault is paired with its recovery before the horizon, except
//    that at most one non-management node may stay dead (exercising
//    Central's missed-death accounting) — and never a node whose death
//    would empty some VLAN of adapters entirely; some node restarts are
//    sub-second "blips", faster than peer failure detection, so volatile
//    daemon state resets while every remote record of the node survives;
//  * no two faults touch overlapping equipment at overlapping times, so
//    recovery order is always well-defined;
//  * domain moves only touch non-administrative adapters and VLANs (an
//    adapter moved onto the admin VLAN would outrank every management node
//    and hijack the GSC election — operator error, not a protocol case).
[[nodiscard]] std::vector<farm::ScriptAction> generate_schedule(
    farm::Farm& farm, const SoakOptions& opts);

}  // namespace gs::soak
