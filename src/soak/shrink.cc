#include "soak/shrink.h"

#include <algorithm>
#include <optional>

namespace gs::soak {

namespace {

using Unit = std::vector<farm::ScriptAction>;

std::vector<farm::ScriptAction> flatten(const std::vector<Unit>& units) {
  std::vector<farm::ScriptAction> out;
  for (const Unit& unit : units)
    out.insert(out.end(), unit.begin(), unit.end());
  std::stable_sort(out.begin(), out.end(),
                   [](const farm::ScriptAction& a, const farm::ScriptAction& b) {
                     return a.at < b.at;
                   });
  return out;
}

std::optional<farm::ActionKind> recovery_of(farm::ActionKind kind) {
  switch (kind) {
    case farm::ActionKind::kFailNode: return farm::ActionKind::kRecoverNode;
    case farm::ActionKind::kFailAdapter:
    case farm::ActionKind::kFailAdapterRecv:
    case farm::ActionKind::kFailAdapterSend:
      return farm::ActionKind::kRecoverAdapter;
    case farm::ActionKind::kFailSwitch: return farm::ActionKind::kRecoverSwitch;
    case farm::ActionKind::kPartitionVlan: return farm::ActionKind::kHealVlan;
    default: return std::nullopt;
  }
}

// Groups each fault with its matching recovery (the next unconsumed
// recovery action for the same target); everything else is its own unit.
std::vector<Unit> pair_units(const std::vector<farm::ScriptAction>& schedule) {
  std::vector<bool> used(schedule.size(), false);
  std::vector<Unit> units;
  for (std::size_t i = 0; i < schedule.size(); ++i) {
    if (used[i]) continue;
    used[i] = true;
    Unit unit{schedule[i]};
    if (const auto recovery = recovery_of(schedule[i].kind)) {
      for (std::size_t j = i + 1; j < schedule.size(); ++j) {
        if (used[j] || schedule[j].kind != *recovery ||
            schedule[j].arg != schedule[i].arg)
          continue;
        used[j] = true;
        unit.push_back(schedule[j]);
        break;
      }
    }
    units.push_back(std::move(unit));
  }
  return units;
}

ShrinkResult shrink_units(std::vector<Unit> units, const Oracle& oracle,
                          std::size_t max_oracle_runs) {
  ShrinkResult result;
  bool budget_hit = false;
  std::size_t chunk = units.size() / 2;
  while (chunk >= 1 && !budget_hit) {
    bool shrank = false;
    std::size_t start = 0;
    while (start < units.size()) {
      if (result.oracle_runs >= max_oracle_runs) {
        budget_hit = true;
        break;
      }
      const std::size_t len = std::min(chunk, units.size() - start);
      std::vector<Unit> candidate;
      candidate.reserve(units.size() - len);
      candidate.insert(candidate.end(), units.begin(),
                       units.begin() + static_cast<std::ptrdiff_t>(start));
      candidate.insert(candidate.end(),
                       units.begin() +
                           static_cast<std::ptrdiff_t>(start + len),
                       units.end());
      ++result.oracle_runs;
      if (oracle(flatten(candidate))) {
        units = std::move(candidate);
        shrank = true;
        // Do not advance: the chunk now at `start` has not been tried.
      } else {
        start += chunk;
      }
    }
    // A successful removal can unlock earlier chunks; only narrow the
    // chunk size once a full pass removes nothing at this granularity.
    if (!shrank) chunk /= 2;
  }
  // If we ran to completion the last chunk==1 pass removed nothing, so the
  // schedule is 1-minimal (per unit).
  result.minimal = !budget_hit;
  result.schedule = flatten(units);
  return result;
}

}  // namespace

ShrinkResult shrink_schedule(std::vector<farm::ScriptAction> schedule,
                             const Oracle& oracle,
                             std::size_t max_oracle_runs) {
  std::vector<Unit> units;
  units.reserve(schedule.size());
  for (const farm::ScriptAction& action : schedule) units.push_back({action});
  return shrink_units(std::move(units), oracle, max_oracle_runs);
}

ShrinkResult shrink_schedule_paired(
    const std::vector<farm::ScriptAction>& schedule, const Oracle& oracle,
    std::size_t max_oracle_runs) {
  return shrink_units(pair_units(schedule), oracle, max_oracle_runs);
}

Oracle make_soak_oracle(const SoakOptions& opts) {
  return [opts](const std::vector<farm::ScriptAction>& candidate) {
    return !run_schedule(opts, candidate).passed();
  };
}

}  // namespace gs::soak
