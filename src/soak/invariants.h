// Farm-wide convergence invariants, checked against simulator ground truth.
//
// After a quiescent window, a correct GulfStream farm must satisfy, for
// every VLAN with at least one fully healthy adapter:
//  1. every healthy adapter is committed into exactly one AMG per segment —
//     all of a VLAN's healthy adapters hold the same view, whose membership
//     is exactly the healthy set;
//  2. every AMG leader holds the highest IP in its view (and that IP is the
//     highest healthy IP on the segment);
//  3. GulfStream Central's adapter/group tables match ground truth: every
//     healthy adapter is known, alive, and assigned to its segment's
//     leader; nothing dead is still recorded alive (no missed deaths, no
//     phantoms); exactly one group per populated segment with the right
//     leader and member set — and the active Central is hosted where the
//     admin-AMG election says it should be.
// Trace-derived checks (obs::TraceInvariants) are folded in by the runner
// as kind kTrace.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "farm/farm.h"

namespace gs::soak {

struct Violation {
  enum class Kind : std::uint8_t {
    kNotConverged = 0,  // farm never (re-)reached ground-truth convergence
    kAmgMembership,     // invariant 1
    kAmgLeadership,     // invariant 2
    kNoActiveCentral,   // invariant 3: nobody is GSC / wrong node is
    kGscAdapter,        // invariant 3: per-adapter table mismatch
    kGscGroup,          // invariant 3: group table mismatch
    kTrace,             // invariant 4: trace-derived protocol violation
    kSpanLeak,          // invariant 5: latency span left open after quiesce
    kCodec,             // invariant 6: frames dropped without injected
                        // corruption anywhere on the fabric
  };
  Kind kind = Kind::kNotConverged;
  std::string detail;
};

[[nodiscard]] std::string_view to_string(Violation::Kind kind);

// One line per violation, for logs and test failure messages.
[[nodiscard]] std::string format_violations(
    const std::vector<Violation>& violations);

// Checks invariants 1-3 against the farm's current state. Call only after
// a quiescent window: mid-churn the protocol is *supposed* to be in flux.
[[nodiscard]] std::vector<Violation> check_farm_invariants(farm::Farm& farm);

}  // namespace gs::soak
