#include "soak/runner.h"

#include <sstream>

#include "farm/scenario.h"
#include "obs/trace_check.h"

namespace gs::soak {

namespace {

SoakResult execute(const SoakOptions& opts,
                   const std::vector<farm::ScriptAction>* fixed_schedule) {
  sim::Simulator sim;
  farm::Farm farm(sim, opts.spec, opts.params, opts.seed);
  obs::TraceInvariants trace_check(farm.trace_bus());
  obs::SpanTracker& spans = farm.enable_span_tracking();

  SoakResult result;
  result.schedule =
      fixed_schedule ? *fixed_schedule : generate_schedule(farm, opts);

  farm.start();
  const auto converged = farm::run_until_converged(farm, opts.converge_deadline);
  const auto stable =
      converged ? farm::run_until_gsc_stable(farm, sim.now() +
                                                       opts.converge_deadline)
                : std::nullopt;
  if (!converged || !stable) {
    result.violations.push_back(
        {Violation::Kind::kNotConverged,
         "farm failed to converge before any fault was injected"});
    result.sim_end = sim.now();
    return result;
  }
  result.converged_initially = true;

  // Shift the relative schedule past the convergence point, to the next
  // whole second (keeping times deterministic for a given seed and spec).
  const sim::SimTime offset = (sim.now() / sim::kSecond + 2) * sim::kSecond;
  std::vector<farm::ScriptAction> shifted = result.schedule;
  for (farm::ScriptAction& action : shifted) action.at += offset;
  farm::schedule_script(farm, shifted, &result.script_run);
  sim.run_until(offset + opts.horizon);

  result.reconverged_at =
      farm::run_until_converged(farm, sim.now() + opts.quiesce);
  if (!result.reconverged_at) {
    result.violations.push_back(
        {Violation::Kind::kNotConverged,
         "farm failed to re-converge within the quiesce window"});
  } else {
    // Protocol state has converged; give Central's tables time to catch up
    // (report debounce, retries, the move-window hold on failures, and a
    // full group-lease cycle so stale groups can expire).
    const sim::SimDuration settle =
        opts.settle > 0 ? opts.settle
                        : opts.params.group_lease + opts.params.move_window +
                              opts.params.amg_stable_wait +
                              2 * opts.params.report_retry + sim::seconds(3);
    sim.run_until(sim.now() + settle);
    std::vector<Violation> violations = check_farm_invariants(farm);
    result.violations.insert(result.violations.end(), violations.begin(),
                             violations.end());

    // Invariant 5: span accounting must balance. After quiesce + settle,
    // every span the tracker opened is either closed or carries an explicit
    // abandon cause — anything still open from before the settle window is
    // a correlation leak. Spans younger than the grace window are in-flight
    // by design (periodic report refresh, recv-dead churn) and exempt; with
    // no GSC-eligible node alive, detection/report spans legitimately cannot
    // close, so the check is skipped entirely.
    const bool gsc_alive =
        farm.expected_gsc_node().has_value() &&
        (!opts.spec.is_hierarchical() ||
         farm.expected_root_node().has_value());
    if (gsc_alive) {
      const sim::SimDuration grace = 10 * sim::kSecond;
      for (const obs::SpanTracker::OpenSpan& span : spans.open_spans()) {
        if (sim.now() - span.opened_at < grace) continue;
        std::ostringstream detail;
        detail << to_string(span.kind) << " span for " << span.key
               << " opened at t=" << sim::to_seconds(span.opened_at)
               << "s still open after quiesce + settle";
        result.violations.push_back(
            {Violation::Kind::kSpanLeak, detail.str()});
      }
    }
  }

  for (const obs::TraceViolation& tv : trace_check.violations()) {
    std::ostringstream detail;
    detail << tv.source << " at t=" << sim::to_seconds(tv.time)
           << "s: " << tv.detail;
    result.violations.push_back({Violation::Kind::kTrace, detail.str()});
  }
  result.trace_records_checked = trace_check.records_checked();
  result.sim_end = sim.now();
  return result;
}

}  // namespace

SoakResult run_soak(const SoakOptions& opts) { return execute(opts, nullptr); }

SoakResult run_schedule(const SoakOptions& opts,
                        const std::vector<farm::ScriptAction>& schedule) {
  return execute(opts, &schedule);
}

}  // namespace gs::soak
