// Greedy schedule shrinker (delta-debugging style).
//
// Given a fault schedule that makes some oracle fail, repeatedly try
// dropping contiguous chunks — halving the chunk size from n/2 down to 1 —
// and keep any reduction that still fails. The result is 1-minimal with
// respect to single-event removal (deleting any one remaining event makes
// the failure disappear), which in practice turns a 10-fault soak schedule
// into the 2-3 events that actually matter.
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

#include "soak/runner.h"

namespace gs::soak {

// Returns true when the candidate schedule still reproduces the failure.
using Oracle = std::function<bool(const std::vector<farm::ScriptAction>&)>;

struct ShrinkResult {
  std::vector<farm::ScriptAction> schedule;  // smallest failing schedule found
  std::size_t oracle_runs = 0;
  bool minimal = false;  // true if shrinking ran to completion within budget
};

// Precondition: oracle(schedule) is true. Each oracle run replays a full
// soak, so `max_oracle_runs` bounds total work.
[[nodiscard]] ShrinkResult shrink_schedule(
    std::vector<farm::ScriptAction> schedule, const Oracle& oracle,
    std::size_t max_oracle_runs = 250);

// Like shrink_schedule, but a fault and its matching recovery (fail/recover
// node, partition/heal, ...) are removed together, so every candidate stays
// well-formed. Shrinking raw actions independently mostly rediscovers
// "partition and never heal", which trivially violates the convergence
// invariants without reproducing the original bug. Use this for schedules
// from generate_schedule; the minimality guarantee is per *pair*.
[[nodiscard]] ShrinkResult shrink_schedule_paired(
    const std::vector<farm::ScriptAction>& schedule, const Oracle& oracle,
    std::size_t max_oracle_runs = 250);

// Oracle that replays a candidate schedule via run_schedule(opts, ...) and
// reports whether any invariant is still violated.
[[nodiscard]] Oracle make_soak_oracle(const SoakOptions& opts);

}  // namespace gs::soak
