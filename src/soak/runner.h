// Soak executor: one seeded fault-schedule run on a fresh farm.
//
// A run builds its own Simulator and Farm (so runs are independent and
// thread-parallel), converges the initial topology, executes the schedule,
// waits out a quiescent window, and checks every farm invariant — protocol
// state, Central's tables, and the trace-derived 2PC checks that an
// obs::TraceInvariants subscriber accumulated over the whole run.
#pragma once

#include <optional>
#include <vector>

#include "soak/invariants.h"
#include "soak/schedule.h"

namespace gs::soak {

struct SoakResult {
  bool converged_initially = false;
  // Sim time at which the farm re-converged after the schedule; nullopt if
  // it never did inside the quiesce window.
  std::optional<sim::SimTime> reconverged_at;
  // The schedule that ran, in *relative* time (as generated); print with
  // farm::format_script().
  std::vector<farm::ScriptAction> schedule;
  farm::ScriptRun script_run;
  std::vector<Violation> violations;
  std::uint64_t trace_records_checked = 0;
  sim::SimTime sim_end = 0;

  [[nodiscard]] bool passed() const { return violations.empty(); }
};

// Generates the schedule for opts.seed and executes it.
[[nodiscard]] SoakResult run_soak(const SoakOptions& opts);

// Executes a fixed schedule (relative times) on a fresh farm built from
// `opts` — the replay path the shrinker and regression tests use.
[[nodiscard]] SoakResult run_schedule(
    const SoakOptions& opts, const std::vector<farm::ScriptAction>& schedule);

}  // namespace gs::soak
