#include "soak/schedule.h"

#include <algorithm>
#include <limits>
#include <map>
#include <set>

#include "util/check.h"

namespace gs::soak {

proto::Params default_soak_params() {
  proto::Params params;
  params.beacon_phase = sim::seconds(2);
  params.amg_stable_wait = sim::seconds(1);
  params.gsc_stable_wait = sim::seconds(3);
  params.move_window = sim::seconds(5);
  params.report_refresh = sim::seconds(3);
  params.group_lease = sim::seconds(8);
  params.domain_refresh = sim::seconds(3);
  params.domain_lease = sim::seconds(8);
  return params;
}

namespace {

using farm::ActionKind;
using farm::ScriptAction;

// Gap between a fault and its paired recovery. The minimum comfortably
// exceeds heartbeat detection; the maximum keeps pairs inside the horizon.
constexpr sim::SimDuration kRecoverMin = sim::seconds(4);
constexpr sim::SimDuration kRecoverMax = sim::seconds(18);
constexpr sim::SimTime kForever = std::numeric_limits<sim::SimTime>::max() / 2;

enum class Family : std::uint8_t {
  kNode = 0,
  kAdapterDown,
  kAdapterRecv,
  kAdapterSend,
  kSwitch,
  kPartition,
  kMove,
};

// Equipment keys for overlap tracking: (entity class, id).
enum class Ent : std::uint8_t { kNode = 0, kAdapter, kSwitch, kVlan };
using Key = std::pair<Ent, std::uint32_t>;

class Planner {
 public:
  Planner(farm::Farm& farm, const SoakOptions& opts)
      : farm_(farm), opts_(opts), rng_(util::Rng(opts.seed).fork(0x50AC)) {
    net::Fabric& fabric = farm_.fabric();
    for (std::size_t n = 0; n < farm_.node_count(); ++n)
      for (util::AdapterId id : farm_.node_adapters(n)) {
        const util::VlanId vlan = fabric.vlan_of(id);
        vlan_nodes_[vlan].insert(static_cast<std::uint32_t>(n));
        current_vlan_[id.value()] = vlan;
      }
    for (util::VlanId vlan : farm_.vlans())
      if (fabric.adapters_in_vlan(vlan).size() >= 2)
        partitionable_.push_back(vlan);
    for (util::VlanId vlan : farm_.vlans())
      if (!administrative(vlan)) move_vlans_.push_back(vlan);
  }

  std::vector<ScriptAction> plan() {
    if (opts_.force_gsc_failover) plan_gsc_failover();

    const int weights[] = {opts_.weight_node,         opts_.weight_adapter_down,
                           opts_.weight_adapter_recv, opts_.weight_adapter_send,
                           opts_.weight_switch,       opts_.weight_partition,
                           opts_.weight_move};
    int total = 0;
    for (int w : weights) total += w;

    int planned = 0;
    // Each attempt may come up empty (all candidate equipment busy at the
    // sampled time); a bounded retry budget keeps generation total.
    for (int attempt = 0; attempt < opts_.fault_count * 6 && total > 0 &&
                          planned < opts_.fault_count;
         ++attempt) {
      int pick = static_cast<int>(rng_.below(static_cast<std::uint64_t>(total)));
      Family family = Family::kNode;
      for (std::size_t f = 0; f < std::size(weights); ++f) {
        pick -= weights[f];
        if (pick < 0) {
          family = static_cast<Family>(f);
          break;
        }
      }
      if (plan_one(family)) ++planned;
    }

    std::stable_sort(
        actions_.begin(), actions_.end(),
        [](const ScriptAction& a, const ScriptAction& b) { return a.at < b.at; });
    return actions_;
  }

 private:
  // Millisecond-aligned fault time leaving room for the longest recovery.
  sim::SimTime sample_time() {
    const sim::SimTime budget =
        (opts_.horizon - kRecoverMax - sim::kSecond) / sim::kMillisecond;
    GS_CHECK_MSG(budget > 0, "soak horizon too short for fault/recovery pairs");
    return sim::kSecond +
           static_cast<sim::SimTime>(
               rng_.below(static_cast<std::uint64_t>(budget))) *
               sim::kMillisecond;
  }

  sim::SimDuration sample_gap() {
    return rng_.range(kRecoverMin / sim::kMillisecond,
                      kRecoverMax / sim::kMillisecond) *
           sim::kMillisecond;
  }

  bool free_between(const std::vector<Key>& keys, sim::SimTime from,
                    sim::SimTime to) const {
    for (const Key& key : keys) {
      auto it = busy_.find(key);
      if (it == busy_.end()) continue;
      for (const auto& [begin, end] : it->second)
        if (from <= end && to >= begin) return false;
    }
    return true;
  }

  void occupy(const std::vector<Key>& keys, sim::SimTime from, sim::SimTime to) {
    for (const Key& key : keys) busy_[key].emplace_back(from, to);
  }

  std::vector<Key> node_keys(std::uint32_t node) const {
    std::vector<Key> keys{{Ent::kNode, node}};
    for (util::AdapterId id : farm_.node_adapters(node))
      keys.emplace_back(Ent::kAdapter, id.value());
    return keys;
  }

  std::vector<Key> adapter_keys(util::AdapterId id) const {
    // An adapter fault also conflicts with faults of its node and switch
    // (whose recovery would resurrect it out from under ours).
    const net::Adapter& adapter = farm_.fabric().adapter(id);
    return {{Ent::kAdapter, id.value()},
            {Ent::kNode, static_cast<std::uint32_t>(
                             farm_.node_of(id).value_or(~std::size_t{0}))},
            {Ent::kSwitch, adapter.attached_switch().value()}};
  }

  std::vector<Key> switch_keys(util::SwitchId sw) const {
    std::vector<Key> keys{{Ent::kSwitch, sw.value()}};
    const net::Fabric& fabric = farm_.fabric();
    for (std::size_t n = 0; n < farm_.node_count(); ++n)
      for (util::AdapterId id : farm_.node_adapters(n))
        if (fabric.adapter(id).attached_switch() == sw) {
          keys.emplace_back(Ent::kNode, static_cast<std::uint32_t>(n));
          keys.emplace_back(Ent::kAdapter, id.value());
        }
    return keys;
  }

  void add(sim::SimTime at, ActionKind kind, std::uint32_t arg,
           std::uint32_t vlan_arg = 0) {
    ScriptAction action;
    action.at = at;
    action.kind = kind;
    action.arg = arg;
    action.vlan_arg = vlan_arg;
    actions_.push_back(action);
  }

  // Moves must not touch administrative segments: an adapter moved onto
  // one would outrank the management tier and hijack a GSC election
  // (operator error, not a protocol case). In hierarchical farms every
  // domain's admin VLAN is administrative alongside the root VLAN.
  bool administrative(util::VlanId vlan) const {
    if (vlan == farm::admin_vlan()) return true;
    const int domains = farm_.spec().hier_domains;
    for (std::uint32_t d = 0; d < static_cast<std::uint32_t>(domains); ++d)
      if (vlan == farm::domain_admin_vlan(d)) return true;
    return false;
  }

  void plan_gsc_failover() {
    std::vector<std::uint32_t> targets;
    if (farm_.spec().is_hierarchical()) {
      // Exercise failover at both levels: the root tier, and one domain's
      // management tier (forcing a new uplink epoch and a full digest).
      if (const auto root = farm_.expected_root_node())
        targets.push_back(static_cast<std::uint32_t>(*root));
      const auto domains =
          static_cast<std::uint32_t>(farm_.spec().hier_domains);
      const auto domain = static_cast<std::uint32_t>(rng_.below(domains));
      if (const auto gsc = farm_.expected_domain_gsc_node(domain))
        targets.push_back(static_cast<std::uint32_t>(*gsc));
    } else if (const auto gsc = farm_.expected_gsc_node()) {
      targets.push_back(static_cast<std::uint32_t>(*gsc));
    }
    for (const std::uint32_t node : targets) {
      // Mid-horizon so the failover and the fail-back both land inside it.
      const sim::SimTime at = rng_.range(opts_.horizon / 4 / sim::kMillisecond,
                                         opts_.horizon / 2 / sim::kMillisecond) *
                              sim::kMillisecond;
      const sim::SimTime back = at + sample_gap();
      const auto keys = node_keys(node);
      if (!free_between(keys, at, back)) continue;
      occupy(keys, at, back);
      add(at, ActionKind::kFailNode, node);
      add(back, ActionKind::kRecoverNode, node);
    }
  }

  // Permanent death must not empty any VLAN: every VLAN this node touches
  // must be populated by at least one other node (everything else recovers
  // by the horizon). Management nodes always recover so the admin AMG is
  // never left without an eligible leader.
  bool may_stay_dead(std::uint32_t node) const {
    if (permanent_used_) return false;
    const farm::NodeRole role = farm_.role(node);
    if (role == farm::NodeRole::kManagement || role == farm::NodeRole::kGeneric)
      return false;
    const net::Fabric& fabric = farm_.fabric();
    for (util::AdapterId id : farm_.node_adapters(node)) {
      auto it = vlan_nodes_.find(fabric.vlan_of(id));
      if (it == vlan_nodes_.end() || it->second.size() < 2) return false;
    }
    return true;
  }

  bool plan_one(Family family) {
    net::Fabric& fabric = farm_.fabric();
    const sim::SimTime at = sample_time();
    const sim::SimTime back = at + sample_gap();

    switch (family) {
      case Family::kNode: {
        std::vector<std::uint32_t> candidates;
        for (std::size_t n = 0; n < farm_.node_count(); ++n)
          if (free_between(node_keys(static_cast<std::uint32_t>(n)), at, back))
            candidates.push_back(static_cast<std::uint32_t>(n));
        if (candidates.empty()) return false;
        const std::uint32_t node = candidates[rng_.below(candidates.size())];
        bool permanent = may_stay_dead(node) && rng_.below(4) == 0;
        // The candidate filter only vetted [at, back]; staying dead claims
        // [at, forever), which must not swallow an already-planned later
        // fault on this equipment (its recovery would resurrect a NIC on a
        // dead node). Demote to a temporary death when that clashes.
        if (permanent && !free_between(node_keys(node), at, kForever))
          permanent = false;
        // Sometimes restart as a "blip": down for less than the peers'
        // failure-detection threshold, so the daemon's volatile state (its
        // report sequence counter above all) resets while every remote
        // record of the node survives intact — the regressed-seq path.
        sim::SimTime node_back = back;
        if (!permanent && rng_.below(3) == 0)
          node_back = at + rng_.range(200, 800) * sim::kMillisecond;
        occupy(node_keys(node), at, permanent ? kForever : node_back);
        add(at, ActionKind::kFailNode, node);
        if (permanent)
          permanent_used_ = true;
        else
          add(node_back, ActionKind::kRecoverNode, node);
        return true;
      }
      case Family::kAdapterDown:
      case Family::kAdapterRecv:
      case Family::kAdapterSend: {
        std::vector<util::AdapterId> candidates;
        for (std::size_t n = 0; n < farm_.node_count(); ++n)
          for (util::AdapterId id : farm_.node_adapters(n))
            if (free_between(adapter_keys(id), at, back))
              candidates.push_back(id);
        if (candidates.empty()) return false;
        const util::AdapterId id = candidates[rng_.below(candidates.size())];
        occupy(adapter_keys(id), at, back);
        const ActionKind kind = family == Family::kAdapterDown
                                    ? ActionKind::kFailAdapter
                                    : family == Family::kAdapterRecv
                                          ? ActionKind::kFailAdapterRecv
                                          : ActionKind::kFailAdapterSend;
        add(at, kind, id.value());
        add(back, ActionKind::kRecoverAdapter, id.value());
        return true;
      }
      case Family::kSwitch: {
        std::vector<util::SwitchId> candidates;
        for (std::size_t s = 0; s < fabric.switch_count(); ++s) {
          const util::SwitchId sw(static_cast<std::uint32_t>(s));
          if (free_between(switch_keys(sw), at, back)) candidates.push_back(sw);
        }
        if (candidates.empty()) return false;
        const util::SwitchId sw = candidates[rng_.below(candidates.size())];
        occupy(switch_keys(sw), at, back);
        add(at, ActionKind::kFailSwitch, sw.value());
        add(back, ActionKind::kRecoverSwitch, sw.value());
        return true;
      }
      case Family::kPartition: {
        std::vector<util::VlanId> candidates;
        for (util::VlanId vlan : partitionable_)
          if (free_between({{Ent::kVlan, vlan.value()}}, at, back))
            candidates.push_back(vlan);
        if (candidates.empty()) return false;
        const util::VlanId vlan = candidates[rng_.below(candidates.size())];
        occupy({{Ent::kVlan, vlan.value()}}, at, back);
        add(at, ActionKind::kPartitionVlan, vlan.value());
        add(back, ActionKind::kHealVlan, vlan.value());
        return true;
      }
      case Family::kMove: {
        if (move_vlans_.size() < 2) return false;
        std::vector<util::AdapterId> candidates;
        for (const auto& [raw, vlan] : current_vlan_) {
          if (administrative(vlan)) continue;
          const util::AdapterId id(raw);
          if (free_between(adapter_keys(id), at, back)) candidates.push_back(id);
        }
        if (candidates.empty()) return false;
        const util::AdapterId id = candidates[rng_.below(candidates.size())];
        const util::VlanId from = current_vlan_.at(id.value());
        std::vector<util::VlanId> targets;
        for (util::VlanId vlan : move_vlans_)
          if (vlan != from) targets.push_back(vlan);
        if (targets.empty()) return false;
        const util::VlanId target = targets[rng_.below(targets.size())];
        // The move itself is instantaneous; hold the adapter through the
        // move window so its inference is not racing a second fault.
        occupy(adapter_keys(id), at, at + opts_.params.move_window);
        current_vlan_[id.value()] = target;
        add(at, ActionKind::kMoveAdapter, id.value(), target.value());
        return true;
      }
    }
    return false;
  }

  farm::Farm& farm_;
  const SoakOptions& opts_;
  util::Rng rng_;

  std::map<util::VlanId, std::set<std::uint32_t>> vlan_nodes_;
  std::map<std::uint32_t, util::VlanId> current_vlan_;  // tracks planned moves
  std::vector<util::VlanId> partitionable_;
  std::vector<util::VlanId> move_vlans_;
  std::map<Key, std::vector<std::pair<sim::SimTime, sim::SimTime>>> busy_;
  bool permanent_used_ = false;
  std::vector<ScriptAction> actions_;
};

}  // namespace

std::vector<farm::ScriptAction> generate_schedule(farm::Farm& farm,
                                                  const SoakOptions& opts) {
  return Planner(farm, opts).plan();
}

}  // namespace gs::soak
