#include "farm/script.h"

#include <charconv>
#include <sstream>

#include "util/check.h"
#include "util/logging.h"

namespace gs::farm {

namespace {

std::string_view trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t'))
    s.remove_prefix(1);
  while (!s.empty() &&
         (s.back() == ' ' || s.back() == '\t' || s.back() == '\r'))
    s.remove_suffix(1);
  return s;
}

// Splits on whitespace runs.
std::vector<std::string_view> tokens_of(std::string_view line) {
  std::vector<std::string_view> out;
  std::size_t i = 0;
  while (i < line.size()) {
    while (i < line.size() && (line[i] == ' ' || line[i] == '\t')) ++i;
    std::size_t start = i;
    while (i < line.size() && line[i] != ' ' && line[i] != '\t') ++i;
    if (i > start) out.push_back(line.substr(start, i - start));
  }
  return out;
}

std::optional<sim::SimDuration> parse_time(std::string_view text) {
  double value = 0;
  std::string_view digits = text;
  sim::SimDuration unit = sim::kSecond;
  if (text.ends_with("us")) {
    unit = sim::kMicrosecond;
    digits = text.substr(0, text.size() - 2);
  } else if (text.ends_with("ms")) {
    unit = sim::kMillisecond;
    digits = text.substr(0, text.size() - 2);
  } else if (text.ends_with("s")) {
    digits = text.substr(0, text.size() - 1);
  }
  const std::string owned(digits);
  char* end = nullptr;
  value = std::strtod(owned.c_str(), &end);
  if (end != owned.c_str() + owned.size() || owned.empty() || value < 0)
    return std::nullopt;
  return static_cast<sim::SimDuration>(value * static_cast<double>(unit));
}

std::optional<std::uint32_t> parse_u32(std::string_view text) {
  std::uint32_t value = 0;
  auto [p, ec] = std::from_chars(text.data(), text.data() + text.size(), value);
  if (ec != std::errc{} || p != text.data() + text.size()) return std::nullopt;
  return value;
}

std::optional<ActionKind> kind_of(std::string_view verb) {
  if (verb == "fail-node") return ActionKind::kFailNode;
  if (verb == "recover-node") return ActionKind::kRecoverNode;
  if (verb == "fail-adapter") return ActionKind::kFailAdapter;
  if (verb == "recover-adapter") return ActionKind::kRecoverAdapter;
  if (verb == "fail-adapter-recv") return ActionKind::kFailAdapterRecv;
  if (verb == "fail-adapter-send") return ActionKind::kFailAdapterSend;
  if (verb == "fail-switch") return ActionKind::kFailSwitch;
  if (verb == "recover-switch") return ActionKind::kRecoverSwitch;
  if (verb == "move-adapter") return ActionKind::kMoveAdapter;
  if (verb == "partition-vlan") return ActionKind::kPartitionVlan;
  if (verb == "heal-vlan") return ActionKind::kHealVlan;
  if (verb == "verify") return ActionKind::kVerify;
  return std::nullopt;
}

// Expected operand count (beyond the verb), excluding move-adapter's
// "vlan N" pair which is handled specially.
int operand_count(ActionKind kind) {
  switch (kind) {
    case ActionKind::kVerify: return 0;
    case ActionKind::kMoveAdapter: return 3;  // <adapter> vlan <vlan>
    default: return 1;
  }
}

}  // namespace

std::string_view to_string(ActionKind kind) {
  switch (kind) {
    case ActionKind::kFailNode: return "fail-node";
    case ActionKind::kRecoverNode: return "recover-node";
    case ActionKind::kFailAdapter: return "fail-adapter";
    case ActionKind::kRecoverAdapter: return "recover-adapter";
    case ActionKind::kFailAdapterRecv: return "fail-adapter-recv";
    case ActionKind::kFailAdapterSend: return "fail-adapter-send";
    case ActionKind::kFailSwitch: return "fail-switch";
    case ActionKind::kRecoverSwitch: return "recover-switch";
    case ActionKind::kMoveAdapter: return "move-adapter";
    case ActionKind::kPartitionVlan: return "partition-vlan";
    case ActionKind::kHealVlan: return "heal-vlan";
    case ActionKind::kVerify: return "verify";
  }
  return "?";
}

ScriptParseResult parse_script(std::string_view text) {
  ScriptParseResult result;
  int line_no = 0;
  sim::SimTime last_at = 0;

  std::size_t pos = 0;
  while (pos <= text.size()) {
    const std::size_t eol = text.find('\n', pos);
    std::string_view line = text.substr(
        pos, eol == std::string_view::npos ? std::string_view::npos
                                           : eol - pos);
    pos = eol == std::string_view::npos ? text.size() + 1 : eol + 1;
    ++line_no;

    line = trim(line);
    if (line.empty() || line.front() == '#') continue;

    auto fail = [&](const std::string& message) {
      result.error = message;
      result.error_line = line_no;
    };

    const auto tokens = tokens_of(line);
    if (tokens.size() < 3 || tokens[0] != "at") {
      fail("expected: at <time> <action> [args]");
      return result;
    }
    const auto at = parse_time(tokens[1]);
    if (!at) {
      fail("bad time '" + std::string(tokens[1]) + "'");
      return result;
    }
    if (*at < last_at) {
      fail("times must be non-decreasing");
      return result;
    }
    last_at = *at;

    const auto kind = kind_of(tokens[2]);
    if (!kind) {
      fail("unknown action '" + std::string(tokens[2]) + "'");
      return result;
    }
    const int want = operand_count(*kind);
    if (static_cast<int>(tokens.size()) - 3 != want) {
      fail("action '" + std::string(tokens[2]) + "' expects " +
           std::to_string(want) + " operand(s)");
      return result;
    }

    ScriptAction action;
    action.at = *at;
    action.kind = *kind;
    if (*kind == ActionKind::kMoveAdapter) {
      const auto adapter = parse_u32(tokens[3]);
      const auto vlan = parse_u32(tokens[5]);
      if (!adapter || tokens[4] != "vlan" || !vlan) {
        fail("expected: move-adapter <adapter> vlan <vlan>");
        return result;
      }
      action.arg = *adapter;
      action.vlan_arg = *vlan;
    } else if (want == 1) {
      const auto arg = parse_u32(tokens[3]);
      if (!arg) {
        fail("bad id '" + std::string(tokens[3]) + "'");
        return result;
      }
      action.arg = *arg;
    }
    result.actions.push_back(action);
  }
  return result;
}

std::string format_script(const std::vector<ScriptAction>& actions) {
  std::ostringstream out;
  for (const ScriptAction& action : actions) {
    out << "at ";
    if (action.at % sim::kSecond == 0)
      out << action.at / sim::kSecond << "s";
    else if (action.at % sim::kMillisecond == 0)
      out << action.at / sim::kMillisecond << "ms";
    else
      out << action.at << "us";
    out << " " << to_string(action.kind);
    if (action.kind == ActionKind::kMoveAdapter)
      out << " " << action.arg << " vlan " << action.vlan_arg;
    else if (action.kind != ActionKind::kVerify)
      out << " " << action.arg;
    out << "\n";
  }
  return out.str();
}

namespace {

bool execute(Farm& farm, const ScriptAction& action) {
  net::Fabric& fabric = farm.fabric();
  switch (action.kind) {
    case ActionKind::kFailNode:
      if (action.arg >= farm.node_count()) return false;
      farm.fail_node(action.arg);
      return true;
    case ActionKind::kRecoverNode:
      if (action.arg >= farm.node_count()) return false;
      farm.recover_node(action.arg);
      return true;
    case ActionKind::kFailAdapter:
      if (action.arg >= fabric.adapter_count()) return false;
      fabric.set_adapter_health(util::AdapterId(action.arg),
                                net::HealthState::kDown);
      return true;
    case ActionKind::kRecoverAdapter:
      if (action.arg >= fabric.adapter_count()) return false;
      fabric.set_adapter_health(util::AdapterId(action.arg),
                                net::HealthState::kUp);
      return true;
    case ActionKind::kFailAdapterRecv:
      if (action.arg >= fabric.adapter_count()) return false;
      fabric.set_adapter_health(util::AdapterId(action.arg),
                                net::HealthState::kRecvDead);
      return true;
    case ActionKind::kFailAdapterSend:
      if (action.arg >= fabric.adapter_count()) return false;
      fabric.set_adapter_health(util::AdapterId(action.arg),
                                net::HealthState::kSendDead);
      return true;
    case ActionKind::kFailSwitch:
      if (action.arg >= fabric.switch_count()) return false;
      fabric.fail_switch(util::SwitchId(action.arg));
      return true;
    case ActionKind::kRecoverSwitch:
      if (action.arg >= fabric.switch_count()) return false;
      fabric.recover_switch(util::SwitchId(action.arg));
      return true;
    case ActionKind::kMoveAdapter: {
      proto::Central* central = farm.active_central();
      if (central == nullptr || action.arg >= fabric.adapter_count())
        return false;
      return central->move_adapter(util::AdapterId(action.arg),
                                   util::VlanId(action.vlan_arg));
    }
    case ActionKind::kPartitionVlan: {
      const util::VlanId vlan(action.arg);
      const auto adapters = fabric.adapters_in_vlan(vlan);
      if (adapters.size() < 2) return false;
      const auto cut = static_cast<std::ptrdiff_t>(adapters.size() / 2);
      fabric.partition_vlan(vlan, {{adapters.begin(), adapters.begin() + cut},
                                   {adapters.begin() + cut, adapters.end()}});
      return true;
    }
    case ActionKind::kHealVlan:
      fabric.heal_vlan(util::VlanId(action.arg));
      return true;
    case ActionKind::kVerify: {
      proto::Central* central = farm.active_central();
      if (central == nullptr) return false;
      central->verify_now();
      return true;
    }
  }
  return false;
}

}  // namespace

void schedule_script(Farm& farm, const std::vector<ScriptAction>& actions,
                     ScriptRun* run) {
  GS_CHECK(run != nullptr);
  for (const ScriptAction& action : actions) {
    GS_CHECK_MSG(action.at >= farm.sim().now(),
                 "script actions must lie in the future");
    farm.sim().at(action.at, [&farm, action, run] {
      GS_LOG(kInfo, "script") << to_string(action.kind) << " " << action.arg;
      if (execute(farm, action))
        ++run->executed;
      else
        ++run->failed;
    });
  }
}

}  // namespace gs::farm
