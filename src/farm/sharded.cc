#include "farm/sharded.h"

#include <algorithm>
#include <limits>
#include <set>

#include "net/payload.h"
#include "util/check.h"

namespace gs::farm {

ShardedFarm::ShardedFarm(const FarmSpec& spec, const proto::Params& params,
                         std::uint64_t seed, std::size_t shards,
                         sim::SimDuration epoch) {
  GS_CHECK_MSG(shards >= 1, "a sharded farm needs at least one shard");
  sims_.reserve(shards);
  farms_.reserve(shards);
  traces_.resize(shards);
  // Every shard is built from the SAME spec and seed: the farm's builder RNG
  // and per-VLAN fabric forks depend only on those, so ids, IPs, and channel
  // streams agree across shards by construction (see Farm's ShardView docs).
  for (std::size_t s = 0; s < shards; ++s) {
    sims_.push_back(std::make_unique<sim::Simulator>());
    farms_.push_back(std::make_unique<Farm>(
        *sims_[s], spec, params, seed,
        ShardView{s, shards, shards > 1 ? &router_ : nullptr}));
  }
  if (epoch == 0) {
    epoch = router_.max_safe_epoch();
    if (epoch == std::numeric_limits<sim::SimDuration>::max())
      epoch = sim::milliseconds(1);  // nothing spans shards: any window works
  }
  std::vector<sim::Simulator*> raw;
  raw.reserve(shards);
  for (const auto& s : sims_) raw.push_back(s.get());
  set_ = std::make_unique<sim::ShardSet>(raw, epoch);
  if (shards > 1) router_.finalize(*set_);
}

ShardedFarm::~ShardedFarm() { shutdown(); }

void ShardedFarm::enable_trace_capture() {
  if (!taps_.empty()) return;
  taps_.reserve(farms_.size());
  for (std::size_t s = 0; s < farms_.size(); ++s) {
    taps_.push_back(farms_[s]->trace_bus().subscribe(
        [this, s](const obs::TraceRecord& r) { traces_[s].push_back(r); }));
  }
}

void ShardedFarm::start() {
  // Runs on the caller's thread while the shard workers are parked at the
  // ShardSet barrier; the next barrier crossing publishes these queues to
  // their workers. Any frame sent synchronously during boot gets an unowned
  // payload so the worker can release it after delivery (see fail_node).
  net::Payload::UnownedCreationScope unowned;
  for (const auto& farm : farms_) farm->start();
}

std::size_t ShardedFarm::run_until(sim::SimTime deadline) {
  GS_CHECK_MSG(!down_, "run_until after shutdown");
  return set_->run_until(deadline);
}

void ShardedFarm::fail_node(std::size_t node_index) {
  // Runs on the caller's thread while the workers are parked at the barrier
  // (so no data race), but payload thread-ownership needs both directions
  // covered: cancelling the node's timers releases worker-owned payloads
  // here (ForeignReleaseScope — delete, don't poison this thread's pool),
  // and any frame the protocol sends synchronously (halt/restart beacons)
  // is created HERE but released on the worker after delivery, so it must
  // be born unowned (UnownedCreationScope).
  net::Payload::ForeignReleaseScope foreign;
  net::Payload::UnownedCreationScope unowned;
  farms_[shard_of_node(node_index)]->fail_node(node_index);
}

void ShardedFarm::recover_node(std::size_t node_index) {
  net::Payload::ForeignReleaseScope foreign;  // see fail_node
  net::Payload::UnownedCreationScope unowned;
  farms_[shard_of_node(node_index)]->recover_node(node_index);
}

bool ShardedFarm::converged() {
  // The per-shard Farm::converged() only sees its local slice of a VLAN;
  // here we rebuild the GLOBAL ground truth per VLAN — union of every
  // shard's healthy wired adapters — and hold each member's committed state
  // to it, exactly as Farm::converged(vlan) does unsharded.
  std::set<util::VlanId> vlans;
  for (const auto& farm : farms_)
    for (util::VlanId vlan : farm->vlans()) vlans.insert(vlan);

  for (util::VlanId vlan : vlans) {
    std::vector<std::pair<Farm*, util::AdapterId>> healthy;
    std::set<util::IpAddress> expected_ips;
    util::IpAddress expected_leader;
    for (const auto& farm : farms_) {
      for (util::AdapterId id : farm->healthy_adapters_in_vlan(vlan)) {
        const util::IpAddress ip = farm->fabric().adapter(id).ip();
        expected_ips.insert(ip);
        expected_leader = std::max(expected_leader, ip);
        healthy.push_back({farm.get(), id});
      }
    }
    if (healthy.empty()) continue;

    std::optional<std::uint64_t> view;
    for (const auto& [farm, id] : healthy) {
      proto::AdapterProtocol* proto = farm->protocol_for(id);
      if (proto == nullptr || !proto->is_committed()) return false;
      if (proto->leader_ip() != expected_leader) return false;
      std::set<util::IpAddress> ips;
      for (const proto::MemberInfo& m : proto->committed().members())
        ips.insert(m.ip);
      if (ips != expected_ips) return false;
      if (!view) view = proto->committed().view();
      if (*view != proto->committed().view()) return false;
    }
  }
  return true;
}

std::vector<obs::ShardTraceRecord> ShardedFarm::merged_trace() const {
  return obs::merge_shard_traces(traces_);
}

void ShardedFarm::enable_span_tracking() {
  enable_trace_capture();  // the taps subscribe to every kind, so each
                           // shard's emitters actually publish the edges
  span_tracking_ = true;
}

obs::SpanTracker& ShardedFarm::span_tracker() {
  GS_CHECK_MSG(span_tracking_, "enable_span_tracking was never called");
  span_bus_ = std::make_unique<obs::TraceBus>();
  spans_ = std::make_unique<obs::SpanTracker>(*span_bus_);
  for (const obs::ShardTraceRecord& r : merged_trace())
    span_bus_->publish(r.record);
  return *spans_;
}

void ShardedFarm::enable_health_sampling(sim::SimDuration period) {
  // Caller's thread, workers parked at the barrier (the start()/fail_node
  // contract): arming each shard's sampler timer here is race-free, and the
  // sampler's provider then only ever runs from that shard's own sim.
  for (const auto& farm : farms_) farm->enable_health_sampling(period);
}

std::uint64_t ShardedFarm::trace_digest() const {
  return obs::shard_trace_digest(merged_trace());
}

void ShardedFarm::shutdown() {
  if (down_) return;
  down_ = true;
  // Pending events and parked frames own payloads that must die on the
  // thread whose pool they came from — drop them on each shard's own worker
  // before those workers exit.
  set_->for_each_shard([this](std::size_t s) {
    sims_[s]->drop_pending();
    farms_[s]->fabric().drop_in_flight();
  });
  set_->shutdown();
}

std::size_t run_sharded(const FarmSpec& spec, const proto::Params& params,
                        std::uint64_t seed, std::size_t n_shards,
                        sim::SimTime deadline) {
  ShardedFarm farm(spec, params, seed, n_shards);
  farm.start();
  const std::size_t events = farm.run_until(deadline);
  farm.shutdown();
  return events;
}

}  // namespace gs::farm
