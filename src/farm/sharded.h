// ShardedFarm — the whole deployment, partitioned across worker threads.
//
// Builds N Farm instances from ONE spec and ONE seed, each seeing the full
// global topology (every adapter id, IP, and ConfigDb row identical on every
// shard) but owning only the nodes with index % N == shard: only those are
// wired to switches and get daemons/Centrals. A net::ShardRouter carries
// frames between shards on VLANs whose membership spans them (the admin VLAN
// always does), and a sim::ShardSet drives the shards in conservative epoch
// windows sized at or below the minimum cross-shard segment latency — see
// sim/shard.h for the synchronization argument and DESIGN.md "Sharded
// simulation" for the full protocol.
//
// Determinism: at a fixed shard count, a (spec, seed) pair replays exactly —
// every shard is a deterministic single-threaded simulation and the mailbox
// exchange is ordered by (when, shard, seq). With shards=1 the build takes
// the classic whole-farm path (no router installed, byte-identical traces).
// Across DIFFERENT shard counts, digests match only for topologies whose
// VLANs do not span shards (each VLAN's RNG stream is identical everywhere,
// but spanning VLANs interleave local and foreign draws differently); the
// determinism suite pins both properties at the honest scope.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "farm/farm.h"
#include "net/shard_router.h"
#include "obs/shard_merge.h"
#include "sim/shard.h"

namespace gs::farm {

class ShardedFarm {
 public:
  // epoch == 0 derives the window from the topology: the router's
  // max_safe_epoch() (minimum spanning-segment base latency), or 1ms when
  // nothing spans shards.
  ShardedFarm(const FarmSpec& spec, const proto::Params& params,
              std::uint64_t seed, std::size_t shards,
              sim::SimDuration epoch = 0);
  ~ShardedFarm();

  ShardedFarm(const ShardedFarm&) = delete;
  ShardedFarm& operator=(const ShardedFarm&) = delete;

  // Captures every shard's full trace stream for merged_trace() /
  // trace_digest(). Call before start(); costs record construction, so
  // perf runs leave it off.
  void enable_trace_capture();

  // Starts every daemon on every shard.
  void start();

  // Drives all shards in lockstep epochs (see ShardSet::run_until). Returns
  // events executed across shards.
  std::size_t run_until(sim::SimTime deadline);
  [[nodiscard]] sim::SimTime now() const { return set_->now(); }

  // --- Shards and nodes ---------------------------------------------------
  [[nodiscard]] std::size_t shard_count() const { return farms_.size(); }
  [[nodiscard]] Farm& shard(std::size_t s) { return *farms_[s]; }
  [[nodiscard]] std::size_t shard_of_node(std::size_t node_index) const {
    return node_index % farms_.size();
  }
  [[nodiscard]] std::size_t node_count() const {
    return farms_[0]->node_count();
  }
  [[nodiscard]] net::ShardRouter& router() { return router_; }
  [[nodiscard]] sim::ShardSet& shard_set() { return *set_; }

  // --- Fault injection (between runs; routed to the owner shard) ----------
  void fail_node(std::size_t node_index);
  void recover_node(std::size_t node_index);

  // --- Ground truth -------------------------------------------------------
  // Global convergence: for every VLAN — including ones spanning shards —
  // the healthy wired adapters farm-wide form one committed AMG led by the
  // highest IP, all members agreeing on one view.
  [[nodiscard]] bool converged();

  // --- Merged observability (requires enable_trace_capture) ---------------
  [[nodiscard]] std::vector<obs::ShardTraceRecord> merged_trace() const;
  [[nodiscard]] std::uint64_t trace_digest() const;

  // Farm-wide span accounting. Implies enable_trace_capture(); call before
  // start(). A per-shard SpanTracker would miscount: a report span opens on
  // the leader's shard (kReportSent) and closes on the GSC's (kGscReport-
  // Applied), so neither shard sees both edges. span_tracker() instead
  // replays the merged (when, shard, seq)-ordered stream into one tracker,
  // pairing cross-shard spans exactly as an unsharded run would.
  void enable_span_tracking();
  // Rebuilds the tracker from the current merged trace on every call; call
  // after run_until for books covering everything executed so far.
  [[nodiscard]] obs::SpanTracker& span_tracker();

  // Starts periodic health sampling on every shard's own farm stack (each
  // samples its local slice into its own metrics()). Call between runs or
  // before start(): like fail_node, this runs on the caller's thread while
  // the workers are parked at the barrier.
  void enable_health_sampling(sim::SimDuration period);

  // Quiesces and joins the shard threads: every shard drops its pending
  // events and in-flight frames ON ITS OWN THREAD (payload pools are
  // thread-local), then the workers exit. Idempotent; the destructor calls
  // it. After shutdown only accessors are valid.
  void shutdown();

 private:
  std::vector<std::unique_ptr<sim::Simulator>> sims_;
  std::vector<std::unique_ptr<Farm>> farms_;
  net::ShardRouter router_;
  std::vector<std::vector<obs::TraceRecord>> traces_;
  std::vector<obs::Subscription> taps_;
  bool span_tracking_ = false;
  // Replay plumbing for span_tracker(): a private bus the merged stream is
  // republished onto, and the tracker subscribed to it.
  std::unique_ptr<obs::TraceBus> span_bus_;
  std::unique_ptr<obs::SpanTracker> spans_;
  std::unique_ptr<sim::ShardSet> set_;  // last: joins threads before the
                                        // farms/sims it runs are destroyed
  bool down_ = false;
};

// Convenience entry point matching the roadmap's name for this feature:
// builds a ShardedFarm, starts it, runs to `deadline`, returns events
// executed.
std::size_t run_sharded(const FarmSpec& spec, const proto::Params& params,
                        std::uint64_t seed, std::size_t n_shards,
                        sim::SimTime deadline);

}  // namespace gs::farm
