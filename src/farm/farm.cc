#include "farm/farm.h"

#include <algorithm>
#include <array>
#include <map>
#include <set>
#include <sstream>

#include "net/shard_router.h"
#include "util/check.h"
#include "util/logging.h"

namespace gs::farm {

namespace {

// Globally unique IP per (VLAN, host): 10.x.y.z with the VLAN folded into
// the upper bits, so numeric (= election) order within a VLAN is host order.
util::IpAddress make_ip(util::VlanId vlan, std::uint32_t host) {
  GS_CHECK(host < 4096 && vlan.value() < 4096);
  return util::IpAddress(0x0A000000u | (vlan.value() << 12) | host);
}

}  // namespace

Farm::Farm(sim::Simulator& sim, const FarmSpec& spec,
           const proto::Params& params, std::uint64_t seed)
    : Farm(sim, spec, params, seed, ShardView{}) {}

Farm::Farm(sim::Simulator& sim, const FarmSpec& spec,
           const proto::Params& params, std::uint64_t seed,
           const ShardView& view)
    : sim_(sim), spec_(spec), params_(params), rng_(seed), view_(view) {
  GS_CHECK(view_.shards >= 1 && view_.shard < view_.shards);
  // Every layer built below captures a reference to params_, so pointing it
  // at the farm-wide trace bus here wires them all at once.
  params_.trace = &trace_bus_;
  // Same seed on every shard: the fabric fork (and through it each VLAN's
  // segment RNG stream) is identical across shards, so a VLAN's channel
  // draws do not depend on which shard hosts which member.
  fabric_ = std::make_unique<net::Fabric>(sim_, rng_.fork(0xFAB));
  fabric_->set_trace(&trace_bus_);
  if (view_.router != nullptr)
    view_.router->add_fabric(view_.shard, fabric_.get());
  console_ = std::make_unique<net::SwitchConsole>(*fabric_);
  current_switch_ = fabric_->add_switch(
      static_cast<std::size_t>(spec_.switch_ports));

  if (spec_.generic_nodes > 0)
    build_uniform();
  else if (spec_.is_hierarchical())
    build_hierarchical();
  else
    build_oceano();

  // The switch console is reachable only through the administrative network
  // (§2): concretely, only while the node hosting the active Central still
  // has a healthy administrative adapter.
  console_->set_access_check([this] {
    proto::Central* central = active_central();
    if (central == nullptr) return false;
    for (std::size_t i = 0; i < daemons_.size(); ++i) {
      if (centrals_[i].get() != central) continue;
      const std::size_t admin = daemons_[i]->config().admin_adapter_index;
      const util::AdapterId id = nodes_[i].adapters[admin];
      return fabric_->adapter(id).health() == net::HealthState::kUp &&
             fabric_->vlan_of(id).valid();
    }
    return false;
  });
}

void Farm::ensure_rack_capacity(std::size_t ports_needed) {
  GS_CHECK(ports_needed <= static_cast<std::size_t>(spec_.switch_ports));
  std::size_t free = 0;
  const net::Switch& sw = fabric_->nic_switch(current_switch_);
  for (std::size_t i = 0; i < sw.port_count(); ++i) {
    const util::PortId port(static_cast<std::uint32_t>(i));
    if (!sw.port_adapter(port).valid()) ++free;
  }
  if (free < ports_needed)
    current_switch_ =
        fabric_->add_switch(static_cast<std::size_t>(spec_.switch_ports));
}

util::AdapterId Farm::new_racked_adapter(util::NodeId node, util::VlanId vlan,
                                         util::IpAddress ip, bool /*admin*/) {
  // Ghost adapters (remote nodes of a sharded build) are constructed but
  // never wired: every shard must agree on adapter ids, IPs, and db rows,
  // while switches and wiring stay shard-local.
  const bool local = is_local(node.value());
  if (local)
    GS_CHECK_MSG(fabric_->nic_switch(current_switch_).free_port().has_value(),
                 "reserve rack capacity per node before wiring");
  const util::AdapterId id = fabric_->add_adapter(node);
  if (local) fabric_->attach(id, current_switch_, vlan);
  fabric_->set_adapter_ip(id, ip);
  planned_vlan_[id] = vlan;
  return id;
}

void Farm::finish_node(std::size_t index, NodeRole role, util::DomainId domain,
                       bool eligible, std::vector<util::AdapterId> adapters) {
  finish_node(index, role, domain, eligible, std::move(adapters), HierRole());
}

void Farm::finish_node(std::size_t index, NodeRole role, util::DomainId domain,
                       bool eligible, std::vector<util::AdapterId> adapters,
                       const HierRole& hier) {
  GS_CHECK(index == nodes_.size());
  NodeInfo info;
  info.role = role;
  info.domain = domain;
  info.adapters = adapters;
  nodes_.push_back(std::move(info));

  const util::NodeId node_id(static_cast<std::uint32_t>(index));
  std::ostringstream name;
  name << to_string(role) << "-" << index;

  config::NodeRecord node_record;
  node_record.node = node_id;
  node_record.name = name.str();
  node_record.domain = domain;
  node_record.central_eligible = eligible;
  db_.put_node(node_record);

  const bool local = is_local(index);
  for (std::size_t i = 0; i < adapters.size(); ++i) {
    const net::Adapter& adapter = fabric_->adapter(adapters[i]);
    config::AdapterRecord record;
    record.adapter = adapters[i];
    record.node = node_id;
    record.ip = adapter.ip();
    // planned_vlan_, not vlan_of(): identical for wired adapters, and the
    // only VLAN a ghost has — every shard's db carries the same rows.
    record.expected_vlan = planned_vlan_.at(adapters[i]);
    record.wired_switch = adapter.attached_switch();
    record.wired_port = adapter.attached_port();
    record.admin = i == 0;
    db_.put_adapter(record);
    if (local) adapter_owner_[adapters[i]] = {index, i};
  }

  if (eligible && local) {
    auto central =
        std::make_unique<proto::Central>(sim_, params_, &db_, console_.get());
    central_taps_.push_back(central->event_bus().subscribe(
        [this](const proto::FarmEvent& event) { event_bus_.publish(event); }));
    centrals_.push_back(std::move(central));
  } else {
    centrals_.push_back(nullptr);
  }
  root_centrals_.push_back(hier.root && eligible && local
                               ? std::make_unique<proto::RootCentral>(sim_,
                                                                      params_)
                               : nullptr);

  if (!local) {
    // Remote ghost: no transport, no daemon. The node's protocol state
    // lives on its home shard; here only its fabric/db identity exists.
    transports_.push_back(nullptr);
    daemons_.push_back(nullptr);
    uplinks_.push_back(nullptr);
    return;
  }

  transports_.push_back(
      std::make_unique<net::FabricTransport>(*fabric_, std::move(adapters)));

  proto::GsDaemon::Options opts;
  opts.clock = &sim_;
  opts.transport = transports_.back().get();
  opts.params = &params_;
  opts.node.node = node_id;
  opts.node.name = name.str();
  opts.node.central_eligible = eligible;
  opts.node.admin_adapter_index = 0;  // paper §2.2: by convention, adapter 0
  opts.rng = rng_.fork(0xDAE0000 + index);
  opts.central = centrals_.back().get();
  opts.root_central = root_centrals_.back().get();
  opts.uplink_adapter_index = hier.uplink_adapter;
  daemons_.push_back(std::make_unique<proto::GsDaemon>(std::move(opts)));

  if (hier.uplink_adapter) {
    // The uplink batches this node's domain Central table changes into
    // DomainReports and ships them through the daemon's uplink adapter.
    GS_CHECK_MSG(centrals_.back() != nullptr,
                 "a DomainUplink needs the node's own Central");
    proto::GsDaemon* daemon = daemons_.back().get();
    proto::DomainUplink::Iface iface;
    iface.send = [daemon](const proto::DomainReport& rep) {
      daemon->send_domain_report(rep);
    };
    iface.root_ip = [daemon] { return daemon->uplink_root_ip(); };
    const util::AdapterId uplink_id =
        nodes_.back().adapters[*hier.uplink_adapter];
    uplinks_.push_back(std::make_unique<proto::DomainUplink>(
        sim_, params_, *centrals_.back(), hier.domain,
        fabric_->adapter(uplink_id).ip(), std::move(iface)));
    daemon->set_uplink(uplinks_.back().get());
  } else {
    uplinks_.push_back(nullptr);
  }
}

void Farm::build_uniform() {
  const auto nodes = static_cast<std::size_t>(spec_.generic_nodes);
  const auto adapters = static_cast<std::size_t>(spec_.adapters_per_generic_node);
  for (std::size_t n = 0; n < nodes; ++n) {
    const util::NodeId node_id(static_cast<std::uint32_t>(n));
    if (is_local(n)) ensure_rack_capacity(adapters);
    std::vector<util::AdapterId> ids;
    ids.reserve(adapters);
    for (std::size_t a = 0; a < adapters; ++a) {
      const util::VlanId vlan = uniform_vlan(static_cast<std::uint32_t>(a));
      ids.push_back(new_racked_adapter(
          node_id, vlan, make_ip(vlan, 100 + static_cast<std::uint32_t>(n)),
          a == 0));
    }
    // Every uniform-farm node may host Central (the 55-node testbed had no
    // dedicated management tier).
    finish_node(n, NodeRole::kGeneric, util::DomainId(0), /*eligible=*/true,
                std::move(ids));
  }
}

void Farm::build_oceano() {
  std::size_t index = 0;
  std::uint32_t admin_host = 100;        // regular nodes
  std::uint32_t mgmt_admin_host = 3500;  // management outranks everyone
  std::map<util::VlanId, std::uint32_t> next_host;

  auto host_on = [&](util::VlanId vlan) {
    auto [it, inserted] = next_host.emplace(vlan, 100u);
    return it->second++;
  };

  // Management (administrative domain, Figure 1). Highest admin IPs so the
  // admin-AMG leader — GulfStream Central — is always an eligible node.
  for (int m = 0; m < spec_.management_nodes; ++m) {
    const util::NodeId node_id(static_cast<std::uint32_t>(index));
    if (is_local(index)) ensure_rack_capacity(1);
    std::vector<util::AdapterId> ids;
    ids.push_back(new_racked_adapter(node_id, admin_vlan(),
                                     make_ip(admin_vlan(), mgmt_admin_host++),
                                     true));
    finish_node(index++, NodeRole::kManagement, util::DomainId::invalid(),
                /*eligible=*/true, std::move(ids));
  }

  // Request dispatchers: an admin adapter plus one adapter per customer
  // domain's dispatch VLAN (Figure 1: every domain talks to dispatchers).
  for (int d = 0; d < spec_.dispatchers; ++d) {
    const util::NodeId node_id(static_cast<std::uint32_t>(index));
    if (is_local(index))
      ensure_rack_capacity(1 + static_cast<std::size_t>(spec_.domains));
    std::vector<util::AdapterId> ids;
    ids.push_back(new_racked_adapter(node_id, admin_vlan(),
                                     make_ip(admin_vlan(), admin_host++),
                                     true));
    for (int dom = 0; dom < spec_.domains; ++dom) {
      const util::VlanId vlan = dispatch_vlan(static_cast<std::uint32_t>(dom));
      ids.push_back(
          new_racked_adapter(node_id, vlan, make_ip(vlan, host_on(vlan)),
                             false));
    }
    finish_node(index++, NodeRole::kDispatcher, util::DomainId::invalid(),
                /*eligible=*/false, std::move(ids));
  }

  // Customer domains (Figure 2): front ends carry admin (circle), internal
  // (square), and dispatch (triangle) adapters; back ends admin + internal.
  for (int dom = 0; dom < spec_.domains; ++dom) {
    const util::DomainId domain(static_cast<std::uint32_t>(dom));
    const util::VlanId internal = internal_vlan(static_cast<std::uint32_t>(dom));
    const util::VlanId dispatch = dispatch_vlan(static_cast<std::uint32_t>(dom));

    for (int f = 0; f < spec_.fronts_per_domain; ++f) {
      const util::NodeId node_id(static_cast<std::uint32_t>(index));
      if (is_local(index)) ensure_rack_capacity(3);
      std::vector<util::AdapterId> ids;
      ids.push_back(new_racked_adapter(node_id, admin_vlan(),
                                       make_ip(admin_vlan(), admin_host++),
                                       true));
      ids.push_back(new_racked_adapter(node_id, internal,
                                       make_ip(internal, host_on(internal)),
                                       false));
      ids.push_back(new_racked_adapter(node_id, dispatch,
                                       make_ip(dispatch, host_on(dispatch)),
                                       false));
      finish_node(index++, NodeRole::kFrontEnd, domain, false, std::move(ids));
    }
    for (int b = 0; b < spec_.backs_per_domain; ++b) {
      const util::NodeId node_id(static_cast<std::uint32_t>(index));
      if (is_local(index)) ensure_rack_capacity(2);
      std::vector<util::AdapterId> ids;
      ids.push_back(new_racked_adapter(node_id, admin_vlan(),
                                       make_ip(admin_vlan(), admin_host++),
                                       true));
      ids.push_back(new_racked_adapter(node_id, internal,
                                       make_ip(internal, host_on(internal)),
                                       false));
      finish_node(index++, NodeRole::kBackEnd, domain, false, std::move(ids));
    }
  }
}

void Farm::build_hierarchical() {
  std::size_t index = 0;
  // Root tier outranks every uplink on the root VLAN, so the root-VLAN AMG
  // always elects a RootCentral host; uplink adapters sit in the middle of
  // the range and never win.
  std::uint32_t root_admin_host = 3500;
  std::uint32_t uplink_host = 2000;
  std::map<util::VlanId, std::uint32_t> next_host;

  auto host_on = [&](util::VlanId vlan) {
    auto [it, inserted] = next_host.emplace(vlan, 100u);
    return it->second++;
  };

  // Root management: a single adapter on the root VLAN. Its AMG leader
  // activates both a plain Central (covering the root VLAN's own
  // membership) and the farm-wide RootCentral.
  for (int m = 0; m < spec_.management_nodes; ++m) {
    const util::NodeId node_id(static_cast<std::uint32_t>(index));
    if (is_local(index)) ensure_rack_capacity(1);
    std::vector<util::AdapterId> ids;
    ids.push_back(new_racked_adapter(node_id, admin_vlan(),
                                     make_ip(admin_vlan(), root_admin_host++),
                                     true));
    HierRole hier;
    hier.root = true;
    finish_node(index++, NodeRole::kManagement, util::DomainId::invalid(),
                /*eligible=*/true, std::move(ids), hier);
  }

  for (int d = 0; d < spec_.hier_domains; ++d) {
    const auto dom = static_cast<std::uint32_t>(d);
    const util::DomainId domain(dom);
    const util::VlanId dadmin = domain_admin_vlan(dom);
    const util::VlanId data = internal_vlan(dom);

    // Domain management: adapter 0 on the domain admin VLAN (outranking the
    // workers, so an eligible node hosts the domain Central), adapter 1 on
    // the root VLAN carrying the DomainUplink.
    for (int m = 0; m < spec_.domain_mgmt_nodes; ++m) {
      const util::NodeId node_id(static_cast<std::uint32_t>(index));
      if (is_local(index)) ensure_rack_capacity(2);
      std::vector<util::AdapterId> ids;
      ids.push_back(new_racked_adapter(
          node_id, dadmin,
          make_ip(dadmin, 3000 + static_cast<std::uint32_t>(m)), true));
      ids.push_back(new_racked_adapter(node_id, admin_vlan(),
                                       make_ip(admin_vlan(), uplink_host++),
                                       false));
      HierRole hier;
      hier.uplink_adapter = 1;
      hier.domain = dom;
      finish_node(index++, NodeRole::kManagement, domain, /*eligible=*/true,
                  std::move(ids), hier);
    }

    // Workers: domain admin VLAN + the domain's data VLAN.
    for (int w = 0; w < spec_.workers_per_domain; ++w) {
      const util::NodeId node_id(static_cast<std::uint32_t>(index));
      if (is_local(index)) ensure_rack_capacity(2);
      std::vector<util::AdapterId> ids;
      ids.push_back(new_racked_adapter(node_id, dadmin,
                                       make_ip(dadmin, host_on(dadmin)),
                                       true));
      ids.push_back(new_racked_adapter(node_id, data,
                                       make_ip(data, host_on(data)), false));
      finish_node(index++, NodeRole::kGeneric, domain, /*eligible=*/false,
                  std::move(ids));
    }
  }
}

void Farm::start() {
  for (auto& daemon : daemons_)
    if (daemon != nullptr) daemon->start();
}

proto::GsDaemon& Farm::daemon(std::size_t node_index) {
  GS_CHECK(node_index < daemons_.size());
  GS_CHECK_MSG(daemons_[node_index] != nullptr,
               "node lives on another shard (ghost here)");
  return *daemons_[node_index];
}

NodeRole Farm::role(std::size_t node_index) const {
  GS_CHECK(node_index < nodes_.size());
  return nodes_[node_index].role;
}

util::DomainId Farm::domain_of(std::size_t node_index) const {
  GS_CHECK(node_index < nodes_.size());
  return nodes_[node_index].domain;
}

const std::vector<util::AdapterId>& Farm::node_adapters(
    std::size_t node_index) const {
  GS_CHECK(node_index < nodes_.size());
  return nodes_[node_index].adapters;
}

std::vector<std::size_t> Farm::nodes_with_role(NodeRole role_filter) const {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < nodes_.size(); ++i)
    if (nodes_[i].role == role_filter) out.push_back(i);
  return out;
}

proto::Central* Farm::active_central() {
  // Partitions can leave several Centrals active at once (each covering its
  // own island, §2.2). The farm's *primary* is the one whose hosting node
  // still has a healthy, attached admin adapter, preferring the highest
  // admin IP — i.e. the legitimate admin-AMG leader's instance.
  proto::Central* best = nullptr;
  util::IpAddress best_ip;
  for (std::size_t i = 0; i < centrals_.size(); ++i) {
    proto::Central* central = centrals_[i].get();
    if (central == nullptr || !central->active()) continue;
    const std::size_t admin = daemons_[i]->config().admin_adapter_index;
    const util::AdapterId id = nodes_[i].adapters[admin];
    const bool healthy =
        fabric_->adapter(id).health() == net::HealthState::kUp &&
        fabric_->vlan_of(id).valid();
    if (!healthy) continue;
    if (best == nullptr || central->self_ip() > best_ip) {
      best = central;
      best_ip = central->self_ip();
    }
  }
  return best;
}

proto::RootCentral* Farm::active_root_central() {
  proto::RootCentral* best = nullptr;
  util::IpAddress best_ip;
  for (std::size_t i = 0; i < root_centrals_.size(); ++i) {
    proto::RootCentral* root = root_centrals_[i].get();
    if (root == nullptr || !root->active()) continue;
    const std::size_t admin = daemons_[i]->config().admin_adapter_index;
    const util::AdapterId id = nodes_[i].adapters[admin];
    const bool healthy =
        fabric_->adapter(id).health() == net::HealthState::kUp &&
        fabric_->vlan_of(id).valid();
    if (!healthy) continue;
    if (best == nullptr || root->self_ip() > best_ip) {
      best = root;
      best_ip = root->self_ip();
    }
  }
  return best;
}

proto::Central* Farm::active_root_tier_central() {
  proto::Central* best = nullptr;
  util::IpAddress best_ip;
  for (std::size_t i = 0; i < centrals_.size(); ++i) {
    proto::Central* central = centrals_[i].get();
    if (central == nullptr || !central->active()) continue;
    if (nodes_[i].role != NodeRole::kManagement || nodes_[i].domain.valid())
      continue;
    const std::size_t admin = daemons_[i]->config().admin_adapter_index;
    const util::AdapterId id = nodes_[i].adapters[admin];
    const bool healthy =
        fabric_->adapter(id).health() == net::HealthState::kUp &&
        fabric_->vlan_of(id).valid();
    if (!healthy) continue;
    if (best == nullptr || central->self_ip() > best_ip) {
      best = central;
      best_ip = central->self_ip();
    }
  }
  return best;
}

proto::Central* Farm::active_domain_central(std::uint32_t domain) {
  proto::Central* best = nullptr;
  util::IpAddress best_ip;
  for (std::size_t i = 0; i < centrals_.size(); ++i) {
    proto::Central* central = centrals_[i].get();
    if (central == nullptr || !central->active()) continue;
    if (nodes_[i].domain != util::DomainId(domain)) continue;
    const std::size_t admin = daemons_[i]->config().admin_adapter_index;
    const util::AdapterId id = nodes_[i].adapters[admin];
    const bool healthy =
        fabric_->adapter(id).health() == net::HealthState::kUp &&
        fabric_->vlan_of(id).valid();
    if (!healthy) continue;
    if (best == nullptr || central->self_ip() > best_ip) {
      best = central;
      best_ip = central->self_ip();
    }
  }
  return best;
}

proto::DomainUplink* Farm::uplink_of(std::size_t node_index) {
  GS_CHECK(node_index < uplinks_.size());
  return uplinks_[node_index].get();
}

std::optional<std::size_t> Farm::expected_root_node() const {
  std::optional<std::size_t> best;
  util::IpAddress best_ip;
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    // Root-tier nodes are the management nodes outside every domain.
    if (nodes_[i].role != NodeRole::kManagement || nodes_[i].domain.valid())
      continue;
    const util::AdapterId id = nodes_[i].adapters[0];
    if (fabric_->adapter(id).health() != net::HealthState::kUp ||
        !fabric_->vlan_of(id).valid())
      continue;
    const util::IpAddress ip = fabric_->adapter(id).ip();
    if (!best || ip > best_ip) {
      best = i;
      best_ip = ip;
    }
  }
  return best;
}

std::optional<std::size_t> Farm::expected_domain_gsc_node(
    std::uint32_t domain) const {
  std::optional<std::size_t> best;
  util::IpAddress best_ip;
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i].role != NodeRole::kManagement ||
        nodes_[i].domain != util::DomainId(domain))
      continue;
    const util::AdapterId id = nodes_[i].adapters[0];
    if (fabric_->adapter(id).health() != net::HealthState::kUp ||
        !fabric_->vlan_of(id).valid())
      continue;
    const util::IpAddress ip = fabric_->adapter(id).ip();
    if (!best || ip > best_ip) {
      best = i;
      best_ip = ip;
    }
  }
  return best;
}

void Farm::fail_node(std::size_t node_index) {
  GS_CHECK(node_index < daemons_.size());
  GS_CHECK_MSG(daemons_[node_index] != nullptr,
               "fault injection must target the node's home shard");
  daemons_[node_index]->halt();
  fabric_->fail_node(util::NodeId(static_cast<std::uint32_t>(node_index)));
}

void Farm::recover_node(std::size_t node_index) {
  GS_CHECK(node_index < daemons_.size());
  GS_CHECK_MSG(daemons_[node_index] != nullptr,
               "fault injection must target the node's home shard");
  fabric_->recover_node(util::NodeId(static_cast<std::uint32_t>(node_index)));
  daemons_[node_index]->resume();
}

proto::AdapterProtocol* Farm::protocol_for(util::AdapterId id) {
  auto it = adapter_owner_.find(id);
  if (it == adapter_owner_.end()) return nullptr;
  return &daemons_[it->second.first]->protocol(it->second.second);
}

std::vector<util::VlanId> Farm::vlans() const {
  std::set<util::VlanId> seen;
  for (const auto& node : nodes_)
    for (util::AdapterId id : node.adapters) {
      const util::VlanId vlan = fabric_->vlan_of(id);
      if (vlan.valid()) seen.insert(vlan);
    }
  return {seen.begin(), seen.end()};
}

std::vector<util::AdapterId> Farm::healthy_adapters_in_vlan(
    util::VlanId vlan) const {
  std::vector<util::AdapterId> healthy;
  for (util::AdapterId id : fabric_->adapters_in_vlan(vlan))
    if (fabric_->adapter(id).health() == net::HealthState::kUp)
      healthy.push_back(id);
  return healthy;
}

std::optional<std::size_t> Farm::expected_gsc_node() const {
  // Mirrors active_central()'s healthy test, but from ground truth alone:
  // who *ought* to win the admin-AMG election right now.
  std::optional<std::size_t> best;
  util::IpAddress best_ip;
  for (std::size_t i = 0; i < centrals_.size(); ++i) {
    if (centrals_[i] == nullptr) continue;  // not central-eligible
    const std::size_t admin = daemons_[i]->config().admin_adapter_index;
    const util::AdapterId id = nodes_[i].adapters[admin];
    if (fabric_->adapter(id).health() != net::HealthState::kUp ||
        !fabric_->vlan_of(id).valid())
      continue;
    const util::IpAddress ip = fabric_->adapter(id).ip();
    if (!best || ip > best_ip) {
      best = i;
      best_ip = ip;
    }
  }
  return best;
}

std::optional<std::size_t> Farm::node_of(util::AdapterId id) const {
  auto it = adapter_owner_.find(id);
  if (it == adapter_owner_.end()) return std::nullopt;
  return it->second.first;
}

bool Farm::converged(util::VlanId vlan) {
  // Ground truth: the fully healthy adapters currently wired to this VLAN.
  const std::vector<util::AdapterId> healthy = healthy_adapters_in_vlan(vlan);
  if (healthy.empty()) return true;

  std::set<util::IpAddress> expected_ips;
  util::IpAddress expected_leader;
  for (util::AdapterId id : healthy) {
    const util::IpAddress ip = fabric_->adapter(id).ip();
    expected_ips.insert(ip);
    expected_leader = std::max(expected_leader, ip);
  }

  std::optional<std::uint64_t> view;
  for (util::AdapterId id : healthy) {
    proto::AdapterProtocol* proto = protocol_for(id);
    if (proto == nullptr || !proto->is_committed()) return false;
    if (proto->leader_ip() != expected_leader) return false;
    std::set<util::IpAddress> ips;
    for (const proto::MemberInfo& m : proto->committed().members())
      ips.insert(m.ip);
    if (ips != expected_ips) return false;
    if (!view) view = proto->committed().view();
    if (*view != proto->committed().view()) return false;
  }
  return true;
}

bool Farm::converged() {
  for (util::VlanId vlan : vlans())
    if (!converged(vlan)) return false;
  return true;
}

obs::SpanTracker& Farm::enable_span_tracking() {
  if (!spans_)
    spans_ = std::make_unique<obs::SpanTracker>(trace_bus_, &metrics_);
  return *spans_;
}

obs::FarmHealthSampler::Snapshot Farm::health_snapshot() {
  obs::FarmHealthSampler::Snapshot snapshot;
  for (std::size_t n = 0; n < daemons_.size(); ++n) {
    const auto& daemon = daemons_[n];
    if (daemon == nullptr || daemon->halted()) continue;
    for (std::size_t i = 0; i < daemon->adapter_count(); ++i) {
      const proto::AdapterProtocol& proto = daemon->protocol(i);
      if (!proto.is_leader() || !proto.is_committed()) continue;
      obs::FarmHealthSampler::AmgSample amg;
      amg.leader = proto.self().ip;
      amg.vlan = fabric_->vlan_of(nodes_[n].adapters[i]);
      amg.view = proto.committed().view();
      amg.size = proto.committed().size();
      amg.committed_at = proto.committed_at();
      amg.digest = proto.committed().ips_hash();
      snapshot.amgs.push_back(amg);
    }
  }
  if (proto::Central* central = active_central()) {
    obs::FarmHealthSampler::GscSample gsc;
    gsc.gsc = central->self_ip();
    gsc.groups = central->groups().size();
    gsc.adapters = central->known_adapter_count();
    gsc.alive = central->alive_adapter_count();
    gsc.nodes_down = central->nodes_down_count();
    snapshot.gsc = gsc;
  }
  if (proto::RootCentral* root = active_root_central()) {
    obs::FarmHealthSampler::RootSample sample;
    sample.root = root->self_ip();
    sample.domains = root->domain_count();
    sample.adapters = root->known_adapter_count();
    sample.alive = root->alive_adapter_count();
    sample.reports = root->reports_received();
    sample.need_fulls = root->need_fulls_sent();
    snapshot.root = sample;
  }
  for (util::VlanId vlan : vlans()) {
    const net::SegmentLoad& load = fabric_->load(vlan);
    snapshot.wire.push_back({vlan, load.frames_sent, load.bytes_sent});
  }
  {
    // Codec accounting is cumulative, so halted daemons' counters still
    // belong in the farm-wide totals.
    std::array<std::uint64_t, proto::WireStats::kTypeSlots> decoded{};
    std::array<std::uint64_t, proto::WireStats::kDropSlots> dropped{};
    for (const auto& daemon : daemons_) {
      if (daemon == nullptr) continue;
      const proto::WireStats& stats = daemon->wire_stats();
      for (std::size_t t = 0; t < decoded.size(); ++t)
        decoded[t] += stats.decoded[t];
      for (std::size_t d = 0; d < dropped.size(); ++d)
        dropped[d] += stats.dropped[d];
    }
    obs::FarmHealthSampler::CodecSample codec;
    for (std::size_t t = 0; t < decoded.size(); ++t) {
      if (decoded[t] == 0) continue;
      codec.decoded.emplace_back(
          std::string(proto::to_string(static_cast<proto::MsgType>(t))),
          decoded[t]);
    }
    for (std::size_t d = 0; d < dropped.size(); ++d) {
      if (dropped[d] == 0) continue;
      codec.dropped.emplace_back(
          std::string(
              proto::to_string(static_cast<proto::WireStats::Drop>(d))),
          dropped[d]);
    }
    snapshot.codec = std::move(codec);
  }
  {
    obs::FarmHealthSampler::QueueSample queue;
    queue.live = sim_.pending_events();
    queue.slots = sim_.queue_slots();
    queue.high_water = sim_.queue_high_water();
    snapshot.queue = queue;
  }
  if (spans_) {
    obs::FarmHealthSampler::SpanSample span_sample;
    span_sample.open = spans_->open_total();
    span_sample.watermark = spans_->open_watermark();
    for (std::size_t k = 0; k < static_cast<std::size_t>(obs::SpanKind::kCount_);
         ++k) {
      const auto kind = static_cast<obs::SpanKind>(k);
      span_sample.closed += spans_->closed(kind);
      span_sample.abandoned += spans_->abandoned(kind);
    }
    snapshot.spans = span_sample;
  }
  return snapshot;
}

obs::FarmHealthSampler& Farm::enable_health_sampling(sim::SimDuration period) {
  if (!health_) {
    health_ = std::make_unique<obs::FarmHealthSampler>(
        sim_, trace_bus_, [this] { return health_snapshot(); }, period,
        &metrics_);
  }
  return *health_;
}

}  // namespace gs::farm
