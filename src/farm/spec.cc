#include "farm/spec.h"

#include "util/check.h"

namespace gs::farm {

std::string_view to_string(NodeRole role) {
  switch (role) {
    case NodeRole::kManagement: return "management";
    case NodeRole::kDispatcher: return "dispatcher";
    case NodeRole::kFrontEnd: return "front-end";
    case NodeRole::kBackEnd: return "back-end";
    case NodeRole::kGeneric: return "generic";
  }
  return "?";
}

FarmSpec FarmSpec::uniform(int nodes, int adapters_per_node) {
  GS_CHECK(nodes > 0 && adapters_per_node > 0);
  FarmSpec spec;
  spec.generic_nodes = nodes;
  spec.adapters_per_generic_node = adapters_per_node;
  spec.management_nodes = 0;  // generic nodes are all central-eligible
  return spec;
}

FarmSpec FarmSpec::oceano(int domains, int fronts, int backs, int dispatchers,
                          int management) {
  GS_CHECK(domains > 0 && fronts > 0 && management > 0);
  FarmSpec spec;
  spec.domains = domains;
  spec.fronts_per_domain = fronts;
  spec.backs_per_domain = backs;
  spec.dispatchers = dispatchers;
  spec.management_nodes = management;
  return spec;
}

FarmSpec FarmSpec::hierarchical(int domains, int workers, int domain_mgmt,
                                int root_mgmt) {
  GS_CHECK(domains > 0 && workers > 0 && domain_mgmt > 0 && root_mgmt > 0);
  FarmSpec spec;
  spec.hier_domains = domains;
  spec.workers_per_domain = workers;
  spec.domain_mgmt_nodes = domain_mgmt;
  spec.management_nodes = root_mgmt;  // root tier
  return spec;
}

int FarmSpec::total_nodes() const {
  return management_nodes + dispatchers +
         domains * (fronts_per_domain + backs_per_domain) +
         hier_domains * (domain_mgmt_nodes + workers_per_domain) +
         generic_nodes;
}

int FarmSpec::total_adapters() const {
  int total = management_nodes;                      // admin only
  total += dispatchers * (1 + domains);              // admin + per-domain
  total += domains * fronts_per_domain * 3;          // admin+internal+dispatch
  total += domains * backs_per_domain * 2;           // admin+internal
  // Hierarchy: domain mgmt = domain admin + uplink; worker = admin + data.
  total += hier_domains * (domain_mgmt_nodes + workers_per_domain) * 2;
  total += generic_nodes * adapters_per_generic_node;
  return total;
}

}  // namespace gs::farm
