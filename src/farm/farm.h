// Farm — builds and owns a complete simulated GulfStream deployment.
//
// From a FarmSpec it constructs the switched fabric (racking each node's
// adapters on one switch), assigns globally unique IPs (management nodes
// receive the highest administrative IPs so a central-eligible node wins
// the admin-AMG election, per §2.2), populates the configuration database,
// instantiates one GsDaemon per node and one Central per eligible node, and
// forwards every Central's events onto one farm-wide EventBus (alongside a
// farm-wide TraceBus every protocol layer publishes records to).
#pragma once

#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "config/configdb.h"
#include "farm/spec.h"
#include "gs/gulfstream.h"
#include "net/console.h"
#include "net/fabric.h"
#include "net/fabric_transport.h"
#include "obs/health.h"
#include "obs/spans.h"
#include "obs/trace.h"
#include "sim/simulator.h"
#include "util/rng.h"
#include "util/stats.h"

namespace gs::farm {

// One shard's slice of a sharded deployment (see farm/sharded.h). Nodes are
// partitioned round-robin: node i belongs to shard i % shards. The farm
// still constructs EVERY node's adapters — ids, IPs, and ConfigDb contents
// are global and must be identical on every shard — but only local nodes'
// adapters are wired to switches, and only local nodes get transports,
// daemons, and Central instances; remote nodes are inert ghosts whose
// traffic arrives through the router. The default view (1 shard, no router)
// is the classic whole-farm build, bit-identical to before sharding existed.
struct ShardView {
  std::size_t shard = 0;
  std::size_t shards = 1;
  net::ShardRouter* router = nullptr;  // non-owning; may be null
};

class Farm {
 public:
  Farm(sim::Simulator& sim, const FarmSpec& spec, const proto::Params& params,
       std::uint64_t seed);
  Farm(sim::Simulator& sim, const FarmSpec& spec, const proto::Params& params,
       std::uint64_t seed, const ShardView& view);

  Farm(const Farm&) = delete;
  Farm& operator=(const Farm&) = delete;

  // Starts every daemon (each applies its own start-up skew).
  void start();

  // --- Plumbing access ------------------------------------------------------
  [[nodiscard]] sim::Simulator& sim() { return sim_; }
  [[nodiscard]] net::Fabric& fabric() { return *fabric_; }
  [[nodiscard]] config::ConfigDb& db() { return db_; }
  [[nodiscard]] net::SwitchConsole& console() { return *console_; }
  [[nodiscard]] const FarmSpec& spec() const { return spec_; }
  [[nodiscard]] const proto::Params& params() const { return params_; }

  // --- Nodes ------------------------------------------------------------------
  [[nodiscard]] std::size_t node_count() const { return daemons_.size(); }
  // Does this farm instance own node_index (always true unsharded)?
  [[nodiscard]] bool is_local(std::size_t node_index) const {
    return node_index % view_.shards == view_.shard;
  }
  [[nodiscard]] const ShardView& shard_view() const { return view_; }
  // Local nodes only; aborts for a remote ghost node.
  [[nodiscard]] proto::GsDaemon& daemon(std::size_t node_index);
  [[nodiscard]] NodeRole role(std::size_t node_index) const;
  [[nodiscard]] util::DomainId domain_of(std::size_t node_index) const;
  [[nodiscard]] const std::vector<util::AdapterId>& node_adapters(
      std::size_t node_index) const;
  // Node indices having a given role.
  [[nodiscard]] std::vector<std::size_t> nodes_with_role(NodeRole role) const;

  // --- Fault injection -------------------------------------------------------
  // Node death/boot done properly: NICs go dark AND the daemon process
  // halts/restarts (a dead node must not keep computing).
  void fail_node(std::size_t node_index);
  void recover_node(std::size_t node_index);

  // --- GulfStream state ----------------------------------------------------------
  // The primary Central instance (the legitimate admin-AMG leader's), if
  // any; partition-island Centrals are not returned.
  [[nodiscard]] proto::Central* active_central();
  [[nodiscard]] proto::AdapterProtocol* protocol_for(util::AdapterId id);

  // --- Two-level hierarchy (hierarchical specs only) -------------------------
  // The active RootCentral hosted where the root-VLAN election says, if any.
  [[nodiscard]] proto::RootCentral* active_root_central();
  // The plain Central co-hosted on the root tier — it covers the root
  // VLAN's own membership (the RootCentral only aggregates domain digests).
  [[nodiscard]] proto::Central* active_root_tier_central();
  // The active per-domain Central with the highest healthy admin IP in
  // `domain`, if any.
  [[nodiscard]] proto::Central* active_domain_central(std::uint32_t domain);
  // This node's DomainUplink (domain-management nodes only), else null.
  [[nodiscard]] proto::DomainUplink* uplink_of(std::size_t node_index);
  // Ground truth: the root-management node that *should* host the root
  // (highest healthy root-VLAN admin adapter among the root tier).
  [[nodiscard]] std::optional<std::size_t> expected_root_node() const;
  // Ground truth: the domain-management node that *should* host `domain`'s
  // Central (highest healthy domain-admin adapter of its eligible nodes).
  [[nodiscard]] std::optional<std::size_t> expected_domain_gsc_node(
      std::uint32_t domain) const;

  // --- Telemetry --------------------------------------------------------------
  // Farm-wide event stream: every FarmEvent any Central emits is forwarded
  // here, in chronological (publish) order. Subscribe, or attach a
  // proto::EventLog, to consume it.
  [[nodiscard]] proto::EventBus& event_bus() { return event_bus_; }
  // Farm-wide trace stream: protocol phase transitions, failure-detection
  // steps, report traffic, Central decisions, and wire-load samples.
  [[nodiscard]] obs::TraceBus& trace_bus() { return trace_bus_; }

  // --- Latency observatory (opt-in; see obs/spans.h, obs/health.h) ----------
  // Both are off by default so an unobserved farm keeps PR 1's zero-cost
  // contract: no subscriber, no record, byte-identical traces.
  //
  // Attaches (once) a SpanTracker to the trace bus, feeding metrics().
  // Call before injecting faults so span accounting balances.
  obs::SpanTracker& enable_span_tracking();
  // Starts (once) periodic health sampling into the trace bus + metrics().
  obs::FarmHealthSampler& enable_health_sampling(sim::SimDuration period);
  // Null until the corresponding enable_* ran.
  [[nodiscard]] obs::SpanTracker* span_tracker() { return spans_.get(); }
  [[nodiscard]] obs::FarmHealthSampler* health_sampler() {
    return health_.get();
  }
  // Registry the tracker/sampler (and any embedder) write into.
  [[nodiscard]] util::StatsRegistry& metrics() { return metrics_; }
  // One immediate health snapshot, independent of sampling (may be called
  // without enable_health_sampling).
  [[nodiscard]] obs::FarmHealthSampler::Snapshot health_snapshot();

  // --- Ground-truth convergence checks ----------------------------------------------
  // True when, for every VLAN, the fully healthy adapters wired to it form
  // exactly one committed AMG led by the highest IP, all agreeing on the
  // same view.
  [[nodiscard]] bool converged();
  [[nodiscard]] bool converged(util::VlanId vlan);
  [[nodiscard]] std::vector<util::VlanId> vlans() const;

  // Simulator ground truth the soak invariant checker compares protocol and
  // Central state against.
  //
  // The fully healthy (kUp) adapters currently wired to `vlan`.
  [[nodiscard]] std::vector<util::AdapterId> healthy_adapters_in_vlan(
      util::VlanId vlan) const;
  // The node whose Central instance *should* be active: the central-eligible
  // node holding the highest healthy admin adapter IP (the legitimate
  // admin-AMG leader). nullopt when no eligible node is healthy.
  [[nodiscard]] std::optional<std::size_t> expected_gsc_node() const;
  // The node owning an adapter; nullopt for unknown ids.
  [[nodiscard]] std::optional<std::size_t> node_of(util::AdapterId id) const;

 private:
  struct NodeInfo {
    NodeRole role = NodeRole::kGeneric;
    util::DomainId domain;
    std::vector<util::AdapterId> adapters;
  };

  // Hierarchy assignment of a node being finished: hosts the RootCentral,
  // and/or carries a DomainUplink on one of its adapters.
  struct HierRole {
    bool root = false;
    std::optional<std::size_t> uplink_adapter;
    std::uint32_t domain = 0;
  };

  // Opens a fresh switch when the current one cannot rack a whole node.
  void ensure_rack_capacity(std::size_t ports_needed);
  util::AdapterId new_racked_adapter(util::NodeId node, util::VlanId vlan,
                                     util::IpAddress ip, bool admin);
  void build_uniform();
  void build_oceano();
  void build_hierarchical();
  void finish_node(std::size_t index, NodeRole role, util::DomainId domain,
                   bool eligible, std::vector<util::AdapterId> adapters);
  void finish_node(std::size_t index, NodeRole role, util::DomainId domain,
                   bool eligible, std::vector<util::AdapterId> adapters,
                   const HierRole& hier);

  sim::Simulator& sim_;
  FarmSpec spec_;
  proto::Params params_;
  util::Rng rng_;
  ShardView view_;

  std::unique_ptr<net::Fabric> fabric_;
  std::unique_ptr<net::SwitchConsole> console_;
  config::ConfigDb db_;

  // Buses outlive the daemons/centrals that publish into them (declared
  // first so they are destroyed last).
  proto::EventBus event_bus_;
  obs::TraceBus trace_bus_;

  // Observatory state (declared after the buses it subscribes to, before
  // the daemons whose state the sampler's provider closure reads — the
  // provider only runs from sim timers, never during destruction).
  util::StatsRegistry metrics_;
  std::unique_ptr<obs::SpanTracker> spans_;
  std::unique_ptr<obs::FarmHealthSampler> health_;

  std::vector<NodeInfo> nodes_;
  // Per-node sim-backend transports; destroyed after the daemons that
  // borrow them.
  std::vector<std::unique_ptr<net::FabricTransport>> transports_;
  std::vector<std::unique_ptr<proto::GsDaemon>> daemons_;
  std::vector<std::unique_ptr<proto::Central>> centrals_;  // sparse by node
  // Hierarchy pieces, sparse by node. Uplinks are declared after centrals_
  // so they deregister their table observer before the Central dies.
  std::vector<std::unique_ptr<proto::RootCentral>> root_centrals_;
  std::vector<std::unique_ptr<proto::DomainUplink>> uplinks_;
  std::vector<obs::Subscription> central_taps_;  // Central -> farm event bus
  std::unordered_map<util::AdapterId, std::pair<std::size_t, std::size_t>>
      adapter_owner_;  // adapter -> (node index, adapter index); local only
  // The VLAN each adapter was built for — for ghosts, whose vlan_of() is
  // invalid (they are never wired), this is the db's expected_vlan source.
  std::unordered_map<util::AdapterId, util::VlanId> planned_vlan_;

  util::SwitchId current_switch_;
};

}  // namespace gs::farm
