// Scenario-driving helpers shared by tests, examples, and benches.
#pragma once

#include <functional>
#include <optional>

#include "farm/farm.h"
#include "sim/simulator.h"

namespace gs::farm {

// Advances simulated time in `step` increments until `pred` holds or
// `deadline` passes. Returns the simulated time at which the predicate
// first held (checked at step granularity), or nullopt on timeout.
std::optional<sim::SimTime> run_until(
    sim::Simulator& sim, sim::SimTime deadline,
    const std::function<bool()>& pred,
    sim::SimDuration step = sim::milliseconds(100));

// Runs until the farm's ground-truth convergence predicate holds.
std::optional<sim::SimTime> run_until_converged(
    Farm& farm, sim::SimTime deadline,
    sim::SimDuration step = sim::milliseconds(100));

// Runs until some Central declares the initial topology stable; returns the
// declaration time (Figure 5's measured quantity), or nullopt.
std::optional<sim::SimTime> run_until_gsc_stable(Farm& farm,
                                                 sim::SimTime deadline);

}  // namespace gs::farm
