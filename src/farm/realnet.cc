#include "farm/realnet.h"

#include <algorithm>
#include <map>

#include "net/adapter.h"  // HealthState, for the synthetic fault trace
#include "util/check.h"
#include "util/logging.h"

namespace gs::farm {

RealFarm::RealFarm(Options opts)
    : params_(opts.params),
      map_(opts.base_port, opts.vlan_stride),
      rng_(opts.seed) {
  params_.trace = &trace_bus_;
}

RealFarm::~RealFarm() {
  // Daemons and Centrals cancel their own timers in their destructors (and
  // fire-and-forget callbacks hold life tokens), but be explicit about the
  // contract anyway: after this point nothing may fire.
  daemons_.clear();
  nodes_.clear();
  clock_.cancel_all();
}

std::size_t RealFarm::add_node(NodeSpec spec) {
  GS_CHECK_MSG(!started_, "add nodes before start()");
  GS_CHECK(!spec.ports.empty());

  Node node;
  auto udp =
      std::make_unique<net::UdpTransport>(loop_, map_, spec.ports);
  node.udp = udp.get();
  node.transport = std::move(udp);

  proto::GsDaemon::Options dopts;
  dopts.clock = &clock_;
  dopts.transport = node.transport.get();
  dopts.params = &params_;
  dopts.node.node = util::NodeId(static_cast<std::uint32_t>(daemons_.size()));
  dopts.node.name = std::move(spec.name);
  dopts.node.central_eligible = spec.central_eligible;
  dopts.node.admin_adapter_index = 0;
  dopts.rng = rng_.fork(0x4EA0000U + daemons_.size());
  if (spec.central_eligible) {
    // No configuration database or switch console on a real deployment yet:
    // this Central aggregates reports and commits failures, which is all
    // the detection path needs.
    node.central = std::make_unique<proto::Central>(clock_, params_,
                                                    /*db=*/nullptr,
                                                    /*console=*/nullptr);
    dopts.central = node.central.get();
  }
  daemons_.push_back(std::make_unique<proto::GsDaemon>(std::move(dopts)));
  nodes_.push_back(std::move(node));
  return daemons_.size() - 1;
}

std::size_t RealFarm::adopt_node(std::unique_ptr<net::Transport> transport,
                                 proto::GsDaemon::NodeConfig config) {
  GS_CHECK_MSG(!started_, "adopt nodes before start()");
  GS_CHECK(transport != nullptr && transport->port_count() > 0);

  Node node;
  node.transport = std::move(transport);
  node.udp = dynamic_cast<net::UdpTransport*>(node.transport.get());

  proto::GsDaemon::Options dopts;
  dopts.clock = &clock_;
  dopts.transport = node.transport.get();
  dopts.params = &params_;
  dopts.node = std::move(config);
  dopts.rng = rng_.fork(0xAD00000U + daemons_.size());
  if (dopts.node.central_eligible) {
    node.central = std::make_unique<proto::Central>(clock_, params_,
                                                    /*db=*/nullptr,
                                                    /*console=*/nullptr);
    dopts.central = node.central.get();
  }
  daemons_.push_back(std::make_unique<proto::GsDaemon>(std::move(dopts)));
  nodes_.push_back(std::move(node));
  return daemons_.size() - 1;
}

void RealFarm::start() {
  GS_CHECK(!started_);
  started_ = true;
  for (auto& daemon : daemons_) daemon->start();
}

bool RealFarm::run_until(sim::SimDuration timeout,
                         const std::function<bool()>& until) {
  return loop_.run_until(clock_, clock_.now() + timeout, until);
}

void RealFarm::run_for(sim::SimDuration duration) {
  loop_.run_until(clock_, clock_.now() + duration, nullptr);
}

void RealFarm::kill_node(std::size_t index) {
  GS_CHECK(index < daemons_.size());
  Node& node = nodes_[index];
  if (node.killed) return;
  node.killed = true;
  proto::GsDaemon& daemon = *daemons_[index];

  // Span anchors first: in the sim the fabric emits these at injection
  // time; here the kill *is* the injection.
  for (std::size_t i = 0; i < node.transport->port_count(); ++i) {
    obs::emit_trace(&trace_bus_, obs::TraceKind::kFaultInjected, clock_.now(),
                    node.transport->local_ip(i), {},
                    static_cast<std::uint64_t>(net::HealthState::kDown), 0, {},
                    daemon.config().node);
  }
  daemon.halt();
  if (node.udp != nullptr) node.udp->close();
  GS_LOG(kInfo, "realfarm") << daemon.config().name << " killed";
}

bool RealFarm::killed(std::size_t index) const {
  GS_CHECK(index < nodes_.size());
  return nodes_[index].killed;
}

proto::GsDaemon& RealFarm::daemon(std::size_t index) {
  GS_CHECK(index < daemons_.size());
  return *daemons_[index];
}

net::UdpTransport* RealFarm::udp_transport(std::size_t index) {
  GS_CHECK(index < nodes_.size());
  return nodes_[index].udp;
}

proto::Central* RealFarm::active_central() {
  for (Node& node : nodes_)
    if (node.central && node.central->active()) return node.central.get();
  return nullptr;
}

bool RealFarm::converged() const {
  struct VlanState {
    std::vector<const proto::AdapterProtocol*> live;
  };
  std::map<std::uint32_t, VlanState> by_vlan;  // VlanId value -> live ports

  for (std::size_t n = 0; n < daemons_.size(); ++n) {
    if (nodes_[n].killed) continue;
    const net::UdpTransport* udp = nodes_[n].udp;
    if (udp == nullptr) continue;  // adopted node with unknown topology
    const proto::GsDaemon& daemon = *daemons_[n];
    for (std::size_t i = 0; i < daemon.adapter_count(); ++i)
      by_vlan[udp->vlan_of(i).value()].live.push_back(&daemon.protocol(i));
  }

  for (const auto& [vlan, state] : by_vlan) {
    util::IpAddress top;
    for (const proto::AdapterProtocol* proto : state.live)
      top = std::max(top, proto->self().ip);
    for (const proto::AdapterProtocol* proto : state.live) {
      if (!proto->is_committed()) return false;
      // One group per VLAN: led by the highest live IP, sized exactly to
      // the live population, every member agreeing on the view number.
      if (proto->leader_ip() != top) return false;
      if (proto->committed().size() != state.live.size()) return false;
      if (proto->committed().view() != state.live.front()->committed().view())
        return false;
    }
  }
  return true;
}

}  // namespace gs::farm
