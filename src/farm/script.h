// Scenario scripts: a small line-based DSL for driving farm runs.
//
// Benches and the scripted example replay operator actions against a farm
// at simulated times, e.g.:
//
//     # comments and blank lines are ignored
//     at 10s   fail-node 3
//     at 25s   recover-node 3
//     at 40s   fail-adapter 7
//     at 55s   fail-switch 0
//     at 70s   recover-switch 0
//     at 90s   move-adapter 12 vlan 101
//     at 100s  partition-vlan 301
//     at 130s  heal-vlan 301
//     at 150s  verify
//
// Times accept `s`/`ms`/`us` suffixes (plain numbers are seconds) and must
// be non-decreasing. parse() reports the first syntax error with its line
// number; run() schedules every action on the simulator and executes the
// script against a Farm. `partition-vlan` splits the VLAN's current
// adapters into two halves (the scripted stand-in for a segment fault).
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "farm/farm.h"
#include "sim/time.h"

namespace gs::farm {

enum class ActionKind : std::uint8_t {
  kFailNode = 0,
  kRecoverNode,
  kFailAdapter,
  kRecoverAdapter,
  // The paper's §3 partial-failure modes: an adapter that "ceases to
  // receive" (or to send) while its other direction still works. Recovery
  // is recover-adapter either way.
  kFailAdapterRecv,
  kFailAdapterSend,
  kFailSwitch,
  kRecoverSwitch,
  kMoveAdapter,
  kPartitionVlan,
  kHealVlan,
  kVerify,
};

[[nodiscard]] std::string_view to_string(ActionKind kind);

struct ScriptAction {
  sim::SimTime at = 0;
  ActionKind kind = ActionKind::kVerify;
  std::uint32_t arg = 0;        // node/adapter/switch/vlan id
  std::uint32_t vlan_arg = 0;   // move-adapter target VLAN
};

struct ScriptParseResult {
  std::vector<ScriptAction> actions;
  std::string error;  // empty on success
  int error_line = 0;

  [[nodiscard]] bool ok() const { return error.empty(); }
};

// Parses a whole script text (one action per line).
[[nodiscard]] ScriptParseResult parse_script(std::string_view text);

// Renders actions back into script text, one line per action, such that
// parse_script(format_script(a)).actions == a for any valid action list.
// Times print in the coarsest exact unit (s, ms, or us).
[[nodiscard]] std::string format_script(
    const std::vector<ScriptAction>& actions);

// Executed-action record, for logs and assertions.
struct ScriptRun {
  std::size_t executed = 0;
  std::size_t failed = 0;  // actions whose target was invalid at fire time
};

// Schedules every action against the farm's simulator. The returned counters
// are owned by the caller and updated as actions fire; keep the Farm (and
// the counters) alive until the simulator has passed the last action time.
void schedule_script(Farm& farm, const std::vector<ScriptAction>& actions,
                     ScriptRun* run);

}  // namespace gs::farm
