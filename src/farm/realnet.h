// RealFarm — a GulfStream deployment over the real-transport backend.
//
// Where farm::Farm builds a *simulated* switched network and runs the
// daemons on virtual time, RealFarm boots the same unmodified daemons as
// real UDP endpoints: one WallClock (steady-clock TimeSource), one epoll
// EventLoop, one UdpPortMap, and per node a UdpTransport whose ports are
// nonblocking loopback sockets. Everything runs on the calling thread —
// run_until() interleaves socket readiness with due wall-clock timers, the
// exact single-threaded execution model the simulator has.
//
// Fault injection is process-style: kill_node() halts the daemon and closes
// its sockets (peers see silence, exactly like a crashed process), and
// emits the synthetic kFaultInjected trace records the latency observatory
// anchors detection spans on (in the sim the fabric emits these).
//
// Mixed mode: adopt_node() accepts a node over *any* externally built
// Transport — the hook for hybrid deployments where a few real daemons join
// a farm whose other members live behind a different backend.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "gs/gulfstream.h"
#include "net/udp_transport.h"
#include "obs/trace.h"
#include "sim/wallclock.h"
#include "util/ip.h"
#include "util/rng.h"

namespace gs::farm {

class RealFarm {
 public:
  struct NodeSpec {
    std::string name;
    bool central_eligible = true;
    // Adapter 0 is the admin adapter (§2.2 convention), like everywhere.
    std::vector<net::UdpTransport::PortSpec> ports;
  };

  struct Options {
    proto::Params params;
    std::uint16_t base_port = 47000;
    std::uint16_t vlan_stride = 256;
    std::uint64_t seed = 2001;
  };

  explicit RealFarm(Options opts);
  ~RealFarm();

  RealFarm(const RealFarm&) = delete;
  RealFarm& operator=(const RealFarm&) = delete;

  // Adds a node, binding its loopback sockets immediately (so a port
  // conflict fails fast, before start()). Returns the node index.
  std::size_t add_node(NodeSpec spec);

  // Mixed-mode hook: adopts a daemon over an externally built transport
  // (any Transport backend). The transport is owned from here on; `central`
  // may be null. Returns the node index.
  std::size_t adopt_node(std::unique_ptr<net::Transport> transport,
                         proto::GsDaemon::NodeConfig config);

  // Starts every daemon (each applies its start-up skew on the wall clock).
  void start();

  // Drives the event loop until `until()` holds or `timeout` (wall time)
  // elapses. Returns whether the predicate was met.
  bool run_until(sim::SimDuration timeout, const std::function<bool()>& until);
  // Drives the event loop for a fixed wall-time slice.
  void run_for(sim::SimDuration duration);

  // Process-style kill: halts the daemon, closes its sockets, and emits one
  // kFaultInjected per adapter so detection spans open. The object is
  // retained (its stats stay readable); there is no resurrection.
  void kill_node(std::size_t index);

  // True when every live daemon's every adapter is committed and, per VLAN,
  // all live adapters agree on one leader and one view covering exactly the
  // live population of that VLAN.
  [[nodiscard]] bool converged() const;

  [[nodiscard]] std::size_t node_count() const { return daemons_.size(); }
  [[nodiscard]] proto::GsDaemon& daemon(std::size_t index);
  [[nodiscard]] bool killed(std::size_t index) const;
  // Null for adopted nodes whose transport is not a UdpTransport.
  [[nodiscard]] net::UdpTransport* udp_transport(std::size_t index);
  [[nodiscard]] proto::Central* active_central();

  [[nodiscard]] sim::WallClock& clock() { return clock_; }
  [[nodiscard]] net::EventLoop& loop() { return loop_; }
  [[nodiscard]] net::UdpPortMap& port_map() { return map_; }
  [[nodiscard]] obs::TraceBus& trace_bus() { return trace_bus_; }
  [[nodiscard]] const proto::Params& params() const { return params_; }

 private:
  struct Node {
    std::unique_ptr<net::Transport> transport;
    net::UdpTransport* udp = nullptr;  // transport, when it is UDP-backed
    std::unique_ptr<proto::Central> central;
    bool killed = false;
  };

  proto::Params params_;
  obs::TraceBus trace_bus_;
  sim::WallClock clock_;
  net::EventLoop loop_;
  net::UdpPortMap map_;
  util::Rng rng_;

  std::vector<Node> nodes_;
  std::vector<std::unique_ptr<proto::GsDaemon>> daemons_;
  bool started_ = false;
};

}  // namespace gs::farm
