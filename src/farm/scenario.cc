#include "farm/scenario.h"

namespace gs::farm {

std::optional<sim::SimTime> run_until(sim::Simulator& sim,
                                      sim::SimTime deadline,
                                      const std::function<bool()>& pred,
                                      sim::SimDuration step) {
  while (sim.now() < deadline) {
    if (pred()) return sim.now();
    sim.run_until(std::min(deadline, sim.now() + step));
  }
  return pred() ? std::optional<sim::SimTime>(sim.now()) : std::nullopt;
}

std::optional<sim::SimTime> run_until_converged(Farm& farm,
                                                sim::SimTime deadline,
                                                sim::SimDuration step) {
  return run_until(farm.sim(), deadline, [&farm] { return farm.converged(); },
                   step);
}

std::optional<sim::SimTime> run_until_gsc_stable(Farm& farm,
                                                 sim::SimTime deadline) {
  auto stable = [&farm]() -> bool {
    if (!farm.spec().is_hierarchical()) {
      proto::Central* central = farm.active_central();
      return central != nullptr && central->initial_topology_stable();
    }
    // Hierarchical: every tier must be up and past its stability wait —
    // the root VLAN's own Central, the RootCentral, and each domain's.
    proto::Central* root_tier = farm.active_root_tier_central();
    if (root_tier == nullptr || !root_tier->initial_topology_stable())
      return false;
    if (farm.active_root_central() == nullptr) return false;
    const int domains = farm.spec().hier_domains;
    for (std::uint32_t d = 0; d < static_cast<std::uint32_t>(domains); ++d) {
      proto::Central* central = farm.active_domain_central(d);
      if (central == nullptr || !central->initial_topology_stable())
        return false;
    }
    return true;
  };
  auto reached = run_until(farm.sim(), deadline, stable);
  if (!reached) return std::nullopt;
  // Report the exact declaration instant rather than the polling step.
  return farm.active_central()->stable_time();
}

}  // namespace gs::farm
