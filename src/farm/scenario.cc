#include "farm/scenario.h"

namespace gs::farm {

std::optional<sim::SimTime> run_until(sim::Simulator& sim,
                                      sim::SimTime deadline,
                                      const std::function<bool()>& pred,
                                      sim::SimDuration step) {
  while (sim.now() < deadline) {
    if (pred()) return sim.now();
    sim.run_until(std::min(deadline, sim.now() + step));
  }
  return pred() ? std::optional<sim::SimTime>(sim.now()) : std::nullopt;
}

std::optional<sim::SimTime> run_until_converged(Farm& farm,
                                                sim::SimTime deadline,
                                                sim::SimDuration step) {
  return run_until(farm.sim(), deadline, [&farm] { return farm.converged(); },
                   step);
}

std::optional<sim::SimTime> run_until_gsc_stable(Farm& farm,
                                                 sim::SimTime deadline) {
  auto stable = [&farm]() -> bool {
    proto::Central* central = farm.active_central();
    return central != nullptr && central->initial_topology_stable();
  };
  auto reached = run_until(farm.sim(), deadline, stable);
  if (!reached) return std::nullopt;
  // Report the exact declaration instant rather than the polling step.
  return farm.active_central()->stable_time();
}

}  // namespace gs::farm
