// Farm topology specifications.
//
// Two shapes cover the paper:
//  * FarmSpec::uniform(nodes, adapters): every node carries one adapter on
//    each of `adapters` shared VLANs — the 55-node/3-adapter testbed of
//    §4.1, used for the Figure 5 sweeps (one AMG per VLAN, each of size
//    `nodes`).
//  * FarmSpec::oceano(...): the multi-domain hosting farm of Figures 1-2 —
//    per-customer domains with front/back layers, request dispatchers, an
//    administrative domain, and VLAN isolation between customers.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/ids.h"

namespace gs::farm {

enum class NodeRole : std::uint8_t {
  kManagement = 0,  // administrative domain; central-eligible
  kDispatcher,      // request dispatchers (Figure 1)
  kFrontEnd,        // triangle+square+circle adapters (Figure 2)
  kBackEnd,         // square+circle adapters
  kGeneric,         // uniform-farm node
};

[[nodiscard]] std::string_view to_string(NodeRole role);

// Well-known VLAN numbering used by the builder.
inline constexpr std::uint32_t kAdminVlan = 1;
[[nodiscard]] constexpr util::VlanId admin_vlan() {
  return util::VlanId(kAdminVlan);
}
[[nodiscard]] constexpr util::VlanId internal_vlan(std::uint32_t domain) {
  return util::VlanId(100 + domain);
}
[[nodiscard]] constexpr util::VlanId dispatch_vlan(std::uint32_t domain) {
  return util::VlanId(200 + domain);
}
// Extra shared VLANs of the uniform farm (adapter i>0 of every node).
[[nodiscard]] constexpr util::VlanId uniform_vlan(std::uint32_t index) {
  return index == 0 ? admin_vlan() : util::VlanId(300 + index);
}

struct FarmSpec {
  // --- Océano shape ---------------------------------------------------------
  int domains = 0;
  int fronts_per_domain = 0;
  int backs_per_domain = 0;
  int dispatchers = 0;
  int management_nodes = 1;

  // --- Uniform shape -----------------------------------------------------------
  int generic_nodes = 0;
  int adapters_per_generic_node = 3;

  // --- Physical plant -------------------------------------------------------------
  int switch_ports = 96;

  [[nodiscard]] static FarmSpec uniform(int nodes, int adapters_per_node = 3);
  [[nodiscard]] static FarmSpec oceano(int domains, int fronts, int backs,
                                       int dispatchers = 2,
                                       int management = 2);

  [[nodiscard]] int total_nodes() const;
  [[nodiscard]] int total_adapters() const;
};

}  // namespace gs::farm
