// Farm topology specifications.
//
// Three shapes cover the paper (and its scaling extension):
//  * FarmSpec::uniform(nodes, adapters): every node carries one adapter on
//    each of `adapters` shared VLANs — the 55-node/3-adapter testbed of
//    §4.1, used for the Figure 5 sweeps (one AMG per VLAN, each of size
//    `nodes`).
//  * FarmSpec::oceano(...): the multi-domain hosting farm of Figures 1-2 —
//    per-customer domains with front/back layers, request dispatchers, an
//    administrative domain, and VLAN isolation between customers.
//  * FarmSpec::hierarchical(...): the two-level Central hierarchy
//    (gs/central_hier.h). Each domain has its own administrative VLAN with
//    domain-management nodes hosting a per-domain Central; those nodes'
//    second adapter sits on the root VLAN, where a root-management tier
//    hosts the farm-wide RootCentral fed by batched DomainReport digests.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/ids.h"

namespace gs::farm {

enum class NodeRole : std::uint8_t {
  kManagement = 0,  // administrative domain; central-eligible
  kDispatcher,      // request dispatchers (Figure 1)
  kFrontEnd,        // triangle+square+circle adapters (Figure 2)
  kBackEnd,         // square+circle adapters
  kGeneric,         // uniform-farm node
};

[[nodiscard]] std::string_view to_string(NodeRole role);

// Well-known VLAN numbering used by the builder.
inline constexpr std::uint32_t kAdminVlan = 1;
[[nodiscard]] constexpr util::VlanId admin_vlan() {
  return util::VlanId(kAdminVlan);
}
[[nodiscard]] constexpr util::VlanId internal_vlan(std::uint32_t domain) {
  return util::VlanId(100 + domain);
}
[[nodiscard]] constexpr util::VlanId dispatch_vlan(std::uint32_t domain) {
  return util::VlanId(200 + domain);
}
// Extra shared VLANs of the uniform farm (adapter i>0 of every node).
[[nodiscard]] constexpr util::VlanId uniform_vlan(std::uint32_t index) {
  return index == 0 ? admin_vlan() : util::VlanId(300 + index);
}
// Hierarchical farms: each domain's own administrative VLAN (its workers'
// adapter 0; its domain Central activates on this VLAN's AMG leadership).
// The ROOT VLAN of a hierarchical farm is admin_vlan() itself.
[[nodiscard]] constexpr util::VlanId domain_admin_vlan(std::uint32_t domain) {
  return util::VlanId(400 + domain);
}

struct FarmSpec {
  // --- Océano shape ---------------------------------------------------------
  int domains = 0;
  int fronts_per_domain = 0;
  int backs_per_domain = 0;
  int dispatchers = 0;
  int management_nodes = 1;

  // --- Uniform shape -----------------------------------------------------------
  int generic_nodes = 0;
  int adapters_per_generic_node = 3;

  // --- Two-level hierarchy shape ---------------------------------------------
  // hier_domains > 0 selects the hierarchical build: `management_nodes`
  // becomes the root tier (single adapter on the root VLAN, hosting the
  // RootCentral), each domain gets `domain_mgmt_nodes` eligible nodes
  // (adapter 0 on the domain admin VLAN hosting the domain Central,
  // adapter 1 on the root VLAN carrying the DomainUplink) and
  // `workers_per_domain` plain nodes (domain admin VLAN + a data VLAN).
  int hier_domains = 0;
  int domain_mgmt_nodes = 0;
  int workers_per_domain = 0;

  // --- Physical plant -------------------------------------------------------------
  int switch_ports = 96;

  [[nodiscard]] static FarmSpec uniform(int nodes, int adapters_per_node = 3);
  [[nodiscard]] static FarmSpec oceano(int domains, int fronts, int backs,
                                       int dispatchers = 2,
                                       int management = 2);
  [[nodiscard]] static FarmSpec hierarchical(int domains, int workers,
                                             int domain_mgmt = 2,
                                             int root_mgmt = 2);

  [[nodiscard]] bool is_hierarchical() const { return hier_domains > 0; }

  [[nodiscard]] int total_nodes() const;
  [[nodiscard]] int total_adapters() const;
};

}  // namespace gs::farm
