#include "util/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <memory>

#include "util/check.h"

namespace gs::util {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0)
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  work_available_.notify_all();
  for (auto& w : workers_) w.join();
}

bool ThreadPool::on_worker_thread() const {
  const std::thread::id self = std::this_thread::get_id();
  for (const auto& w : workers_)
    if (w.get_id() == self) return true;
  return false;
}

void ThreadPool::submit(std::function<void()> task) {
  GS_CHECK(task != nullptr);
  {
    std::lock_guard lock(mutex_);
    GS_CHECK_MSG(!stopping_, "submit after shutdown");
    queue_.push_back(std::move(task));
    ++in_flight_;
  }
  work_available_.notify_one();
}

void ThreadPool::wait_idle() {
  GS_CHECK_MSG(!on_worker_thread(), "wait_idle from a pool worker deadlocks");
  std::unique_lock lock(mutex_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
}

namespace {

// Completion state for one parallel_for call. Helpers and the caller pull
// indices from `next`; whoever bumps `done` to n wakes the caller. Shared
// ownership: a helper task queued behind a long backlog may outlive the
// parallel_for call (it finds next >= n and returns without touching `fn`,
// which lives on the caller's stack).
struct ForBatch {
  explicit ForBatch(std::size_t count,
                    const std::function<void(std::size_t)>& f)
      : n(count), fn(&f) {}

  const std::size_t n;
  const std::function<void(std::size_t)>* const fn;
  std::atomic<std::size_t> next{0};
  std::atomic<std::size_t> done{0};
  std::mutex mu;
  std::condition_variable cv;

  // Claims and runs iterations until the index space is exhausted. `fn` is
  // only dereferenced for claimed indices < n, and an unfinished claimed
  // index keeps done < n, which keeps the caller (and `fn`) alive.
  void drain() {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) return;
      (*fn)(i);
      if (done.fetch_add(1, std::memory_order_acq_rel) + 1 == n) {
        std::lock_guard lock(mu);
        cv.notify_all();
      }
    }
  }
};

}  // namespace

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  if (n == 1) {
    fn(0);
    return;
  }
  auto batch = std::make_shared<ForBatch>(n, fn);
  // The caller runs iterations too, so n-1 helpers saturate the batch.
  const std::size_t helpers = std::min(n - 1, size());
  for (std::size_t t = 0; t < helpers; ++t) {
    submit([batch] { batch->drain(); });
  }
  batch->drain();
  std::unique_lock lock(batch->mu);
  batch->cv.wait(lock, [&] {
    return batch->done.load(std::memory_order_acquire) >= batch->n;
  });
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      work_available_.wait(lock,
                           [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
    {
      std::lock_guard lock(mutex_);
      if (--in_flight_ == 0) all_done_.notify_all();
    }
  }
}

}  // namespace gs::util
