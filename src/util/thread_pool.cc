#include "util/thread_pool.h"

#include <algorithm>
#include <atomic>

#include "util/check.h"

namespace gs::util {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0)
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  work_available_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  GS_CHECK(task != nullptr);
  {
    std::lock_guard lock(mutex_);
    GS_CHECK_MSG(!stopping_, "submit after shutdown");
    queue_.push_back(std::move(task));
    ++in_flight_;
  }
  work_available_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock lock(mutex_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  auto next = std::make_shared<std::atomic<std::size_t>>(0);
  const std::size_t tasks = std::min(n, size());
  for (std::size_t t = 0; t < tasks; ++t) {
    submit([next, n, &fn] {
      for (;;) {
        const std::size_t i = next->fetch_add(1, std::memory_order_relaxed);
        if (i >= n) return;
        fn(i);
      }
    });
  }
  wait_idle();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      work_available_.wait(lock,
                           [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
    {
      std::lock_guard lock(mutex_);
      if (--in_flight_ == 0) all_done_.notify_all();
    }
  }
}

}  // namespace gs::util
