#include "util/logging.h"

#include <cstdio>

namespace gs::util {

std::string_view to_string(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

Logger& Logger::instance() {
  static Logger logger;
  return logger;
}

Logger::Logger() { set_sink(nullptr); }

void Logger::set_sink(Sink sink) {
  if (sink) {
    sink_ = std::move(sink);
    return;
  }
  sink_ = [](LogLevel level, std::string_view msg) {
    std::fprintf(stderr, "[%.*s] %.*s\n",
                 static_cast<int>(to_string(level).size()),
                 to_string(level).data(), static_cast<int>(msg.size()),
                 msg.data());
  };
}

void Logger::log(LogLevel level, std::string_view component,
                 std::string_view msg) {
  if (!enabled(level)) return;
  std::ostringstream out;
  if (clock_) {
    const std::int64_t us = clock_();
    out << "t=" << static_cast<double>(us) / 1e6 << "s ";
  }
  out << component << ": " << msg;
  sink_(level, out.str());
}

}  // namespace gs::util
