#include "util/stats.h"

#include <bit>
#include <cmath>

namespace gs::util {

Histogram::Histogram(int sub_bits) : sub_bits_(sub_bits) {
  GS_CHECK(sub_bits >= 0 && sub_bits <= 16);
  // 64 power-of-two bands, each with 2^sub_bits linear sub-buckets.
  buckets_.resize(static_cast<std::size_t>(64) << sub_bits_, 0);
}

std::size_t Histogram::bucket_for(std::uint64_t value) const {
  const auto sub = static_cast<std::uint64_t>(sub_bits_);
  if (value < (1ull << sub)) return static_cast<std::size_t>(value);
  const int band = 63 - std::countl_zero(value);
  const auto offset =
      (value >> (static_cast<std::uint64_t>(band) - sub)) & ((1ull << sub) - 1);
  const auto index = ((static_cast<std::uint64_t>(band) - sub + 1) << sub) +
                     offset;
  return std::min<std::size_t>(static_cast<std::size_t>(index),
                               buckets_.size() - 1);
}

std::uint64_t Histogram::bucket_upper_bound(std::size_t index) const {
  const auto sub = static_cast<std::uint64_t>(sub_bits_);
  if (index < (1ull << sub)) return index;
  const std::uint64_t band = (index >> sub) + sub - 1;
  const std::uint64_t offset = index & ((1ull << sub) - 1);
  return ((1ull << sub) + offset + 1) << (band - sub);
}

void Histogram::record(std::int64_t value) {
  GS_CHECK(value >= 0);
  if (count_ == 0) {
    min_ = max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  sum_ += value;
  sum_sq_ += static_cast<double>(value) * static_cast<double>(value);
  ++buckets_[bucket_for(static_cast<std::uint64_t>(value))];
}

void Histogram::merge(const Histogram& other) {
  GS_CHECK(sub_bits_ == other.sub_bits_);
  if (other.count_ == 0) return;
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  count_ += other.count_;
  sum_ += other.sum_;
  sum_sq_ += other.sum_sq_;
  for (std::size_t i = 0; i < buckets_.size(); ++i)
    buckets_[i] += other.buckets_[i];
}

void Histogram::reset() {
  count_ = 0;
  sum_ = 0;
  sum_sq_ = 0.0;
  min_ = max_ = 0;
  std::fill(buckets_.begin(), buckets_.end(), 0);
}

double Histogram::stddev() const {
  if (count_ < 2) return 0.0;
  const double n = static_cast<double>(count_);
  const double m = static_cast<double>(sum_) / n;
  const double var = std::max(0.0, sum_sq_ / n - m * m);
  return std::sqrt(var);
}

std::int64_t Histogram::quantile(double q) const {
  if (count_ == 0) return 0;
  // NaN fails both comparisons below and lands on min(): an indeterminate
  // request degrades to the most conservative answer instead of UB-adjacent
  // clamp behavior.
  if (q >= 1.0) return max_;
  if (!(q > 0.0)) return min_;
  const auto target = static_cast<std::uint64_t>(
      std::ceil(q * static_cast<double>(count_)));
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    seen += buckets_[i];
    if (seen >= target && buckets_[i] > 0) {
      return std::clamp<std::int64_t>(
          static_cast<std::int64_t>(bucket_upper_bound(i)), min_, max_);
    }
  }
  return max_;
}

Counter& StatsRegistry::counter(std::string_view name) {
  auto it = counters_.find(name);
  if (it == counters_.end())
    it = counters_.emplace(std::string(name), Counter{}).first;
  return it->second;
}

Gauge& StatsRegistry::gauge(std::string_view name) {
  auto it = gauges_.find(name);
  if (it == gauges_.end())
    it = gauges_.emplace(std::string(name), Gauge{}).first;
  return it->second;
}

Histogram& StatsRegistry::histogram(std::string_view name) {
  auto it = histograms_.find(name);
  if (it == histograms_.end())
    it = histograms_.emplace(std::string(name), Histogram{}).first;
  return it->second;
}

std::uint64_t StatsRegistry::counter_value(std::string_view name) const {
  auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second.value();
}

double StatsRegistry::gauge_value(std::string_view name) const {
  auto it = gauges_.find(name);
  return it == gauges_.end() ? 0.0 : it->second.value();
}

const Histogram* StatsRegistry::find_histogram(std::string_view name) const {
  auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : &it->second;
}

void StatsRegistry::reset() {
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
}

std::string labeled(
    std::string_view base,
    std::initializer_list<std::pair<std::string_view, std::string_view>>
        labels) {
  std::string out(base);
  if (labels.size() == 0) return out;
  out += '{';
  bool first = true;
  for (const auto& [key, value] : labels) {
    if (!first) out += ',';
    first = false;
    out += key;
    out += "=\"";
    out += value;
    out += '"';
  }
  out += '}';
  return out;
}

Summary Summary::of(const std::vector<double>& samples) {
  Summary s;
  s.n = samples.size();
  if (samples.empty()) return s;
  double sum = 0.0, sum_sq = 0.0;
  s.min = s.max = samples.front();
  for (double v : samples) {
    sum += v;
    sum_sq += v * v;
    s.min = std::min(s.min, v);
    s.max = std::max(s.max, v);
  }
  const double n = static_cast<double>(s.n);
  s.mean = sum / n;
  s.stddev = s.n > 1 ? std::sqrt(std::max(0.0, sum_sq / n - s.mean * s.mean))
                     : 0.0;
  return s;
}

}  // namespace gs::util
