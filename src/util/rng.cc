#include "util/rng.h"

#include <cmath>

namespace gs::util {

double Rng::exponential(double mean) {
  GS_CHECK(mean > 0.0);
  // 1 - uniform() is in (0, 1], so the log argument is never zero.
  return -mean * std::log(1.0 - uniform());
}

}  // namespace gs::util
