// Strongly typed integer identifiers.
//
// The farm model juggles several id spaces (nodes, adapters, switches,
// VLANs, domains, membership views). A shared template gives each its own
// incompatible type so an AdapterId can never be passed where a NodeId is
// expected, at zero runtime cost.
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <limits>
#include <ostream>

namespace gs::util {

template <typename Tag, typename Rep = std::uint32_t>
class Id {
 public:
  using rep_type = Rep;

  constexpr Id() = default;
  constexpr explicit Id(Rep value) : value_(value) {}

  [[nodiscard]] constexpr Rep value() const { return value_; }
  [[nodiscard]] constexpr bool valid() const { return value_ != kInvalid; }

  static constexpr Id invalid() { return Id{}; }

  constexpr auto operator<=>(const Id&) const = default;

  friend std::ostream& operator<<(std::ostream& os, Id id) {
    if (!id.valid()) return os << Tag::prefix() << "<invalid>";
    return os << Tag::prefix() << id.value_;
  }

 private:
  static constexpr Rep kInvalid = std::numeric_limits<Rep>::max();
  Rep value_ = kInvalid;
};

struct NodeTag {
  static constexpr const char* prefix() { return "node"; }
};
struct AdapterTag {
  static constexpr const char* prefix() { return "adapter"; }
};
struct SwitchTag {
  static constexpr const char* prefix() { return "switch"; }
};
struct VlanTag {
  static constexpr const char* prefix() { return "vlan"; }
};
struct DomainTag {
  static constexpr const char* prefix() { return "domain"; }
};
struct PortTag {
  static constexpr const char* prefix() { return "port"; }
};

using NodeId = Id<NodeTag>;
using AdapterId = Id<AdapterTag>;
using SwitchId = Id<SwitchTag>;
using VlanId = Id<VlanTag>;
using DomainId = Id<DomainTag>;
using PortId = Id<PortTag>;

}  // namespace gs::util

namespace std {
template <typename Tag, typename Rep>
struct hash<gs::util::Id<Tag, Rep>> {
  size_t operator()(gs::util::Id<Tag, Rep> id) const noexcept {
    return std::hash<Rep>{}(id.value());
  }
};
}  // namespace std
