// Lightweight runtime-check macros used across the library.
//
// GS_CHECK is active in all build types: these protocols are distributed
// state machines and silent invariant violations produce convergence bugs
// that are far more expensive to debug than the branch is to execute.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace gs::util {

[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line, const char* msg) {
  std::fprintf(stderr, "GS_CHECK failed: %s at %s:%d%s%s\n", expr, file, line,
               msg[0] ? ": " : "", msg);
  std::abort();
}

}  // namespace gs::util

#define GS_CHECK(expr)                                           \
  do {                                                           \
    if (!(expr)) [[unlikely]]                                    \
      ::gs::util::check_failed(#expr, __FILE__, __LINE__, "");   \
  } while (false)

#define GS_CHECK_MSG(expr, msg)                                  \
  do {                                                           \
    if (!(expr)) [[unlikely]]                                    \
      ::gs::util::check_failed(#expr, __FILE__, __LINE__, msg);  \
  } while (false)
