// Deterministic pseudo-random number generation.
//
// Every stochastic element of the simulation (message loss, latency jitter,
// daemon start-up skew, random ping targets) draws from an Rng seeded from
// the scenario seed, so any run is exactly reproducible. The generator is
// xoshiro256** seeded through SplitMix64, the standard pairing recommended
// by the xoshiro authors.
#pragma once

#include <cstdint>

#include "util/check.h"

namespace gs::util {

// SplitMix64: used to expand a single seed into generator state and to
// derive independent child seeds (e.g. one stream per network segment).
class SplitMix64 {
 public:
  constexpr explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  constexpr std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x6c7473667547ull /* "GulfStr" */) {
    reseed(seed);
  }

  void reseed(std::uint64_t seed) {
    SplitMix64 sm(seed);
    for (auto& s : state_) s = sm.next();
  }

  // Derives an independent stream; children of distinct tags are distinct.
  [[nodiscard]] Rng fork(std::uint64_t tag) const {
    SplitMix64 sm(state_[0] ^ (state_[3] + tag * 0x9e3779b97f4a7c15ull));
    Rng child(sm.next());
    return child;
  }

  std::uint64_t next() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  // UniformRandomBitGenerator interface for <random> interop.
  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ull; }
  result_type operator()() { return next(); }

  // Uniform integer in [0, bound), bias-free via rejection sampling.
  std::uint64_t below(std::uint64_t bound) {
    GS_CHECK(bound > 0);
    const std::uint64_t threshold = (0 - bound) % bound;
    for (;;) {
      std::uint64_t r = next();
      if (r >= threshold) return r % bound;
    }
  }

  // Uniform integer in [lo, hi] inclusive.
  std::int64_t range(std::int64_t lo, std::int64_t hi) {
    GS_CHECK(lo <= hi);
    return lo + static_cast<std::int64_t>(
                    below(static_cast<std::uint64_t>(hi - lo) + 1));
  }

  // Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  // Bernoulli trial.
  bool chance(double p) {
    if (p <= 0.0) return false;
    if (p >= 1.0) return true;
    return uniform() < p;
  }

  // Exponential with the given mean (rate = 1/mean); used for jitter models.
  double exponential(double mean);

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4]{};
};

}  // namespace gs::util
