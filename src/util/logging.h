// Leveled logging with a pluggable time source.
//
// Protocol traces are stamped with *simulated* time, so the Simulator
// installs itself as the logger's clock. Tests that want quiet output set
// the level to kError; examples run at kInfo; debugging at kTrace.
#pragma once

#include <cstdint>
#include <functional>
#include <sstream>
#include <string>
#include <string_view>

namespace gs::util {

enum class LogLevel : int {
  kTrace = 0,
  kDebug = 1,
  kInfo = 2,
  kWarn = 3,
  kError = 4,
  kOff = 5,
};

[[nodiscard]] std::string_view to_string(LogLevel level);

class Logger {
 public:
  using Sink = std::function<void(LogLevel, std::string_view)>;
  // Returns the current time in microseconds (simulated or wall).
  using Clock = std::function<std::int64_t()>;

  static Logger& instance();

  void set_level(LogLevel level) { level_ = level; }
  [[nodiscard]] LogLevel level() const { return level_; }
  [[nodiscard]] bool enabled(LogLevel level) const { return level >= level_; }

  // Replaces the output sink; pass nullptr to restore the stderr default.
  void set_sink(Sink sink);
  // Replaces the timestamp source; pass nullptr to disable timestamps.
  void set_clock(Clock clock) { clock_ = std::move(clock); }

  void log(LogLevel level, std::string_view component, std::string_view msg);

 private:
  Logger();

  LogLevel level_ = LogLevel::kWarn;
  Sink sink_;
  Clock clock_;
};

// Stream-style helper: builds the message only if the level is enabled.
//   GS_LOG(kInfo, "amg") << "group committed, view=" << view;
class LogLine {
 public:
  LogLine(LogLevel level, std::string_view component)
      : level_(level), component_(component) {}
  ~LogLine() { Logger::instance().log(level_, component_, stream_.str()); }

  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::string_view component_;
  std::ostringstream stream_;
};

}  // namespace gs::util

#define GS_LOG(level, component)                                          \
  if (!::gs::util::Logger::instance().enabled(::gs::util::LogLevel::level)) \
    ;                                                                     \
  else                                                                    \
    ::gs::util::LogLine(::gs::util::LogLevel::level, component)
