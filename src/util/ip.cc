#include "util/ip.h"

#include <array>
#include <charconv>
#include <cstdio>

namespace gs::util {

std::string IpAddress::to_string() const {
  char buf[16];
  int n = std::snprintf(buf, sizeof buf, "%u.%u.%u.%u", octet(0), octet(1),
                        octet(2), octet(3));
  return std::string(buf, static_cast<std::size_t>(n));
}

std::optional<IpAddress> IpAddress::parse(std::string_view text) {
  std::array<std::uint32_t, 4> octets{};
  const char* p = text.data();
  const char* end = text.data() + text.size();
  for (int i = 0; i < 4; ++i) {
    if (p == end) return std::nullopt;
    auto [next, ec] = std::from_chars(p, end, octets[static_cast<std::size_t>(i)]);
    if (ec != std::errc{} || next == p) return std::nullopt;
    if (octets[static_cast<std::size_t>(i)] > 255) return std::nullopt;
    p = next;
    if (i < 3) {
      if (p == end || *p != '.') return std::nullopt;
      ++p;
    }
  }
  if (p != end) return std::nullopt;
  return IpAddress(static_cast<std::uint8_t>(octets[0]),
                   static_cast<std::uint8_t>(octets[1]),
                   static_cast<std::uint8_t>(octets[2]),
                   static_cast<std::uint8_t>(octets[3]));
}

std::string MacAddress::to_string() const {
  char buf[18];
  int n = std::snprintf(
      buf, sizeof buf, "%02x:%02x:%02x:%02x:%02x:%02x",
      static_cast<unsigned>((bits_ >> 40) & 0xFF),
      static_cast<unsigned>((bits_ >> 32) & 0xFF),
      static_cast<unsigned>((bits_ >> 24) & 0xFF),
      static_cast<unsigned>((bits_ >> 16) & 0xFF),
      static_cast<unsigned>((bits_ >> 8) & 0xFF),
      static_cast<unsigned>(bits_ & 0xFF));
  return std::string(buf, static_cast<std::size_t>(n));
}

std::optional<MacAddress> MacAddress::parse(std::string_view text) {
  std::uint64_t bits = 0;
  const char* p = text.data();
  const char* end = text.data() + text.size();
  for (int i = 0; i < 6; ++i) {
    std::uint32_t byte = 0;
    auto [next, ec] = std::from_chars(p, end, byte, 16);
    if (ec != std::errc{} || next == p || next - p > 2 || byte > 255)
      return std::nullopt;
    bits = (bits << 8) | byte;
    p = next;
    if (i < 5) {
      if (p == end || (*p != ':' && *p != '-')) return std::nullopt;
      ++p;
    }
  }
  if (p != end) return std::nullopt;
  return MacAddress(bits);
}

}  // namespace gs::util
