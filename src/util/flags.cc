#include "util/flags.h"

#include <charconv>
#include <cstdio>

namespace gs::util {

bool Flags::parse(int argc, const char* const* argv) {
  if (argc > 0) program_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    std::string_view arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      help_ = true;
      continue;
    }
    if (!arg.starts_with("--")) {
      std::fprintf(stderr, "unexpected positional argument: %.*s\n",
                   static_cast<int>(arg.size()), arg.data());
      return false;
    }
    arg.remove_prefix(2);
    const auto eq = arg.find('=');
    std::string key;
    std::string value;
    if (eq == std::string_view::npos) {
      key = std::string(arg);
      value = "true";  // bare --flag means boolean true
    } else {
      key = std::string(arg.substr(0, eq));
      value = std::string(arg.substr(eq + 1));
    }
    if (key.empty()) {
      std::fprintf(stderr, "malformed flag: --%s\n", key.c_str());
      return false;
    }
    values_[key] = value;
    consumed_[key] = false;
  }
  return true;
}

std::int64_t Flags::get_int(std::string_view name, std::int64_t def,
                            std::string_view help) {
  registered_[std::string(name)] = {std::string(help), std::to_string(def)};
  auto it = values_.find(name);
  if (it == values_.end()) return def;
  consumed_[it->first] = true;
  std::int64_t out = def;
  const auto& s = it->second;
  auto [p, ec] = std::from_chars(s.data(), s.data() + s.size(), out);
  if (ec != std::errc{} || p != s.data() + s.size()) {
    std::fprintf(stderr, "flag --%s expects an integer, got '%s'\n",
                 it->first.c_str(), s.c_str());
    return def;
  }
  return out;
}

double Flags::get_double(std::string_view name, double def,
                         std::string_view help) {
  registered_[std::string(name)] = {std::string(help), std::to_string(def)};
  auto it = values_.find(name);
  if (it == values_.end()) return def;
  consumed_[it->first] = true;
  char* end = nullptr;
  const double out = std::strtod(it->second.c_str(), &end);
  if (end == it->second.c_str() || *end != '\0') {
    std::fprintf(stderr, "flag --%s expects a number, got '%s'\n",
                 it->first.c_str(), it->second.c_str());
    return def;
  }
  return out;
}

bool Flags::get_bool(std::string_view name, bool def, std::string_view help) {
  registered_[std::string(name)] = {std::string(help), def ? "true" : "false"};
  auto it = values_.find(name);
  if (it == values_.end()) return def;
  consumed_[it->first] = true;
  const auto& s = it->second;
  if (s == "true" || s == "1" || s == "yes") return true;
  if (s == "false" || s == "0" || s == "no") return false;
  std::fprintf(stderr, "flag --%s expects a boolean, got '%s'\n",
               it->first.c_str(), s.c_str());
  return def;
}

std::string Flags::get_string(std::string_view name, std::string_view def,
                              std::string_view help) {
  registered_[std::string(name)] = {std::string(help), std::string(def)};
  auto it = values_.find(name);
  if (it == values_.end()) return std::string(def);
  consumed_[it->first] = true;
  return it->second;
}

std::vector<std::string> Flags::unknown_flags() const {
  std::vector<std::string> out;
  for (const auto& [key, used] : consumed_)
    if (!used) out.push_back(key);
  return out;
}

void Flags::print_usage() const {
  std::fprintf(stderr, "usage: %s [--flag=value ...]\n", program_.c_str());
  for (const auto& [name, entry] : registered_) {
    std::fprintf(stderr, "  --%-24s %s (default: %s)\n", name.c_str(),
                 entry.help.c_str(), entry.def.c_str());
  }
}

}  // namespace gs::util
