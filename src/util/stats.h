// Counters and histograms for experiment measurement.
//
// Scenario harnesses and library embedders record latencies and counts
// here; the benches turn them into paper-style tables (the Fabric keeps its
// own typed wire-load counters, see net::SegmentLoad). Histogram is a fixed
// log-bucketed latency recorder (HDR-style, base-2 buckets with linear
// sub-buckets) so percentile queries are O(#buckets) and recording is
// allocation-free on the hot path.
#pragma once

#include <algorithm>
#include <cstdint>
#include <initializer_list>
#include <map>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/check.h"

namespace gs::util {

class Counter {
 public:
  void add(std::uint64_t delta = 1) { value_ += delta; }
  [[nodiscard]] std::uint64_t value() const { return value_; }
  void reset() { value_ = 0; }

 private:
  std::uint64_t value_ = 0;
};

// Last-write-wins instantaneous value (table sizes, view ages, open-span
// watermarks). Unlike Counter it can move down, so exposition layers must
// not rate() it.
class Gauge {
 public:
  void set(double value) { value_ = value; }
  void add(double delta) { value_ += delta; }
  [[nodiscard]] double value() const { return value_; }
  void reset() { value_ = 0.0; }

 private:
  double value_ = 0.0;
};

// Records non-negative integer samples (microseconds, bytes, counts).
class Histogram {
 public:
  // sub_bucket_bits: linear resolution within each power-of-two band;
  // 5 bits keeps relative error < ~3%.
  explicit Histogram(int sub_bucket_bits = 5);

  void record(std::int64_t value);
  void merge(const Histogram& other);
  void reset();

  [[nodiscard]] std::uint64_t count() const { return count_; }
  [[nodiscard]] std::int64_t min() const { return count_ ? min_ : 0; }
  [[nodiscard]] std::int64_t max() const { return count_ ? max_ : 0; }
  [[nodiscard]] double mean() const {
    return count_ ? static_cast<double>(sum_) / static_cast<double>(count_)
                  : 0.0;
  }
  [[nodiscard]] double stddev() const;
  // q in [0, 1]; returns an upper bound of the bucket holding the quantile,
  // clamped into [min(), max()]. quantile(0) == min(), quantile(1) == max(),
  // any quantile of an empty histogram is 0. Out-of-range q (including NaN)
  // clamps to the nearest endpoint.
  [[nodiscard]] std::int64_t quantile(double q) const;
  [[nodiscard]] std::int64_t p50() const { return quantile(0.50); }
  [[nodiscard]] std::int64_t p99() const { return quantile(0.99); }

 private:
  [[nodiscard]] std::size_t bucket_for(std::uint64_t value) const;
  [[nodiscard]] std::uint64_t bucket_upper_bound(std::size_t index) const;

  int sub_bits_;
  std::uint64_t count_ = 0;
  std::int64_t sum_ = 0;
  double sum_sq_ = 0.0;
  std::int64_t min_ = 0;
  std::int64_t max_ = 0;
  std::vector<std::uint64_t> buckets_;
};

// Named counters/histograms grouped per scenario run. Not thread-safe by
// design: each simulation owns its registry; parallel trials each have one.
class StatsRegistry {
 public:
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name);

  [[nodiscard]] std::uint64_t counter_value(std::string_view name) const;
  [[nodiscard]] double gauge_value(std::string_view name) const;
  [[nodiscard]] const Histogram* find_histogram(std::string_view name) const;

  [[nodiscard]] const std::map<std::string, Counter, std::less<>>& counters()
      const {
    return counters_;
  }

  [[nodiscard]] const std::map<std::string, Gauge, std::less<>>& gauges()
      const {
    return gauges_;
  }

  [[nodiscard]] const std::map<std::string, Histogram, std::less<>>&
  histograms() const {
    return histograms_;
  }

  void reset();

 private:
  std::map<std::string, Counter, std::less<>> counters_;
  std::map<std::string, Gauge, std::less<>> gauges_;
  std::map<std::string, Histogram, std::less<>> histograms_;
};

// Builds a labeled series name: labeled("wire.frames", {{"vlan", "12"}}) ->
// `wire.frames{vlan="12"}`. The label block survives verbatim through the
// registry (it is just part of the map key) and the exposition layer splits
// it back out, so Prometheus output gets real labels while JSON/JSONL keep
// the composite key.
[[nodiscard]] std::string labeled(
    std::string_view base,
    std::initializer_list<std::pair<std::string_view, std::string_view>>
        labels);

// Aggregate of independent trial results (e.g. per-seed convergence times).
struct Summary {
  std::uint64_t n = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double max = 0.0;

  static Summary of(const std::vector<double>& samples);
};

}  // namespace gs::util
