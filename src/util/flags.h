// Minimal --key=value command-line parsing for examples and benches.
//
// Deliberately tiny: flags are declared at the call site with a default and
// a help string; `Flags::parse` handles --help generation and type errors.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace gs::util {

class Flags {
 public:
  // Parses argv; on --help prints registered usage (after lookups) and the
  // caller should exit. Returns false on malformed arguments.
  bool parse(int argc, const char* const* argv);

  [[nodiscard]] bool help_requested() const { return help_; }
  [[nodiscard]] const std::string& program() const { return program_; }

  std::int64_t get_int(std::string_view name, std::int64_t def,
                       std::string_view help);
  double get_double(std::string_view name, double def, std::string_view help);
  bool get_bool(std::string_view name, bool def, std::string_view help);
  std::string get_string(std::string_view name, std::string_view def,
                         std::string_view help);

  // Flags present on the command line but never looked up — typo detection.
  [[nodiscard]] std::vector<std::string> unknown_flags() const;

  void print_usage() const;

 private:
  struct HelpEntry {
    std::string help;
    std::string def;
  };

  std::string program_ = "prog";
  bool help_ = false;
  std::map<std::string, std::string, std::less<>> values_;
  std::map<std::string, bool, std::less<>> consumed_;
  std::map<std::string, HelpEntry, std::less<>> registered_;
};

}  // namespace gs::util
