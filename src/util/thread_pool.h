// Fixed-size worker pool for embarrassingly parallel benchmark trials.
//
// Simulations are single-threaded and deterministic; the parallelism in this
// repository lives *between* runs: a parameter sweep dispatches independent
// (seed, config) trials across hardware threads, and the sharded simulation
// driver fans per-shard work out over one. parallel_for provides the
// fork-join shape the benches need without exposing futures.
//
// parallel_for is safe to call from a worker thread of the same pool and
// from several threads concurrently: each call tracks completion with its
// own batch state (never the pool-global in-flight counter), and the calling
// thread claims iterations itself until the batch's index space is
// exhausted. A nested call therefore cannot deadlock — by the time any
// thread blocks, every iteration of its batch is claimed by an actively
// running thread, so the dependency chain always terminates.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace gs::util {

class ThreadPool {
 public:
  // threads == 0 selects hardware_concurrency (at least 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t size() const { return workers_.size(); }

  void submit(std::function<void()> task);

  // Blocks until every task submitted so far has finished. Must not be
  // called from a worker thread (the task calling it could never finish);
  // worker threads coordinate through parallel_for's per-batch state.
  void wait_idle();

  // Runs fn(i) for i in [0, n) across the pool and joins. The caller
  // participates: it claims and runs iterations alongside the workers, so
  // calls from worker threads (nested parallel_for) and from multiple
  // threads at once make progress even when every worker is busy.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

  // True when the current thread is one of this pool's workers.
  [[nodiscard]] bool on_worker_thread() const;

 private:
  void worker_loop();

  std::mutex mutex_;
  std::condition_variable work_available_;
  std::condition_variable all_done_;
  std::deque<std::function<void()>> queue_;
  std::size_t in_flight_ = 0;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace gs::util
