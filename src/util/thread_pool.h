// Fixed-size worker pool for embarrassingly parallel benchmark trials.
//
// Simulations are single-threaded and deterministic; the parallelism in this
// repository lives *between* runs: a parameter sweep dispatches independent
// (seed, config) trials across hardware threads. parallel_for_each provides
// the fork-join shape the benches need without exposing futures.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace gs::util {

class ThreadPool {
 public:
  // threads == 0 selects hardware_concurrency (at least 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t size() const { return workers_.size(); }

  void submit(std::function<void()> task);

  // Blocks until every task submitted so far has finished.
  void wait_idle();

  // Runs fn(i) for i in [0, n) across the pool and joins.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

 private:
  void worker_loop();

  std::mutex mutex_;
  std::condition_variable work_available_;
  std::condition_variable all_done_;
  std::deque<std::function<void()>> queue_;
  std::size_t in_flight_ = 0;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace gs::util
