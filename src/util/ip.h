// IPv4 and MAC address value types.
//
// GulfStream elects AMG leaders by "highest IP address" (paper §2.1), so
// IpAddress carries a total order. Both types are plain value types with
// string parsing/formatting used by logs, the wire format, and ConfigDb.
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <optional>
#include <ostream>
#include <string>
#include <string_view>

namespace gs::util {

// An IPv4 address stored host-order so that operator< matches numeric
// (and therefore leader-election) order.
class IpAddress {
 public:
  constexpr IpAddress() = default;
  constexpr explicit IpAddress(std::uint32_t host_order) : bits_(host_order) {}
  constexpr IpAddress(std::uint8_t a, std::uint8_t b, std::uint8_t c,
                      std::uint8_t d)
      : bits_((std::uint32_t{a} << 24) | (std::uint32_t{b} << 16) |
              (std::uint32_t{c} << 8) | std::uint32_t{d}) {}

  [[nodiscard]] constexpr std::uint32_t bits() const { return bits_; }
  [[nodiscard]] constexpr bool is_unspecified() const { return bits_ == 0; }

  [[nodiscard]] constexpr std::uint8_t octet(int i) const {
    return static_cast<std::uint8_t>(bits_ >> (8 * (3 - i)));
  }

  [[nodiscard]] std::string to_string() const;

  // Parses dotted-quad notation; rejects anything else (leading zeros are
  // accepted, out-of-range octets and trailing junk are not).
  static std::optional<IpAddress> parse(std::string_view text);

  constexpr auto operator<=>(const IpAddress&) const = default;

  friend std::ostream& operator<<(std::ostream& os, IpAddress ip) {
    return os << ip.to_string();
  }

 private:
  std::uint32_t bits_ = 0;
};

// A 48-bit MAC address. The farm builder assigns these sequentially; they
// exist so adapter identity is distinct from its (reconfigurable) IP.
class MacAddress {
 public:
  constexpr MacAddress() = default;
  constexpr explicit MacAddress(std::uint64_t bits)
      : bits_(bits & 0xFFFFFFFFFFFFull) {}

  [[nodiscard]] constexpr std::uint64_t bits() const { return bits_; }
  [[nodiscard]] std::string to_string() const;

  static std::optional<MacAddress> parse(std::string_view text);

  constexpr auto operator<=>(const MacAddress&) const = default;

  friend std::ostream& operator<<(std::ostream& os, MacAddress mac) {
    return os << mac.to_string();
  }

 private:
  std::uint64_t bits_ = 0;
};

}  // namespace gs::util

namespace std {
template <>
struct hash<gs::util::IpAddress> {
  size_t operator()(gs::util::IpAddress ip) const noexcept {
    return std::hash<std::uint32_t>{}(ip.bits());
  }
};
template <>
struct hash<gs::util::MacAddress> {
  size_t operator()(gs::util::MacAddress mac) const noexcept {
    return std::hash<std::uint64_t>{}(mac.bits());
  }
};
}  // namespace std
