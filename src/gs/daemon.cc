#include "gs/daemon.h"

#include "obs/trace.h"
#include "util/check.h"
#include "util/logging.h"
#include "wire/frame.h"

namespace gs::proto {

std::string_view to_string(WireStats::Drop reason) {
  switch (reason) {
    case WireStats::Drop::kTooShort: return "too-short";
    case WireStats::Drop::kBadMagic: return "bad-magic";
    case WireStats::Drop::kBadVersion: return "bad-version";
    case WireStats::Drop::kLengthMismatch: return "length-mismatch";
    case WireStats::Drop::kBadChecksum: return "bad-checksum";
    case WireStats::Drop::kDecode: return "decode";
    case WireStats::Drop::kUnknownType: return "unknown-type";
    case WireStats::Drop::kCount_: break;
  }
  return "?";
}

namespace {

WireStats::Drop drop_reason(wire::FrameError error) {
  switch (error) {
    case wire::FrameError::kTooShort: return WireStats::Drop::kTooShort;
    case wire::FrameError::kBadMagic: return WireStats::Drop::kBadMagic;
    case wire::FrameError::kBadVersion: return WireStats::Drop::kBadVersion;
    case wire::FrameError::kLengthMismatch:
      return WireStats::Drop::kLengthMismatch;
    case wire::FrameError::kBadChecksum: return WireStats::Drop::kBadChecksum;
    case wire::FrameError::kNone: break;
  }
  return WireStats::Drop::kTooShort;
}

}  // namespace

GsDaemon::GsDaemon(Options opts)
    : sim_(*opts.clock),
      transport_(*opts.transport),
      params_(*opts.params),
      config_(std::move(opts.node)),
      rng_(opts.rng),
      central_(opts.central),
      root_central_(opts.root_central),
      uplink_index_(opts.uplink_adapter_index),
      alive_(std::make_shared<GsDaemon*>(this)) {
  GS_CHECK_MSG(opts.clock != nullptr && opts.transport != nullptr &&
                   opts.params != nullptr,
               "GsDaemon::Options requires clock, transport, and params");
  const std::size_t ports = transport_.port_count();
  GS_CHECK(ports > 0);
  GS_CHECK(config_.admin_adapter_index < ports);
  outstanding_.resize(ports);

  for (std::size_t i = 0; i < ports; ++i) {
    GS_CHECK_MSG(!transport_.local_ip(i).is_unspecified(),
                 "assign adapter IPs before constructing the daemon");

    MemberInfo self;
    self.ip = transport_.local_ip(i);
    self.mac = transport_.local_mac(i);
    self.node = config_.node;
    // §2.2: beacons on the administrative adapter of an eligible node carry
    // the central-eligibility flag.
    self.central_eligible =
        config_.central_eligible && i == config_.admin_adapter_index;

    AdapterProtocol::NetIface net;
    net.unicast = [this, i](util::IpAddress to, net::Payload frame) {
      return transport_.unicast(i, to, std::move(frame));
    };
    net.beacon_multicast = [this, i](net::Payload frame) {
      return transport_.multicast(i, net::kBeaconGroup, std::move(frame));
    };
    net.loopback_ok = [this, i] { return transport_.loopback_ok(i); };

    AdapterProtocol::Hooks hooks;
    hooks.on_report_pending = [this, i] { report_pending(i); };
    hooks.on_reset = [this, i] {
      outstanding_[i].reset();
      if (i == config_.admin_adapter_index) {
        last_gsc_ = util::IpAddress();
        if (central_ && central_->active()) central_->deactivate();
      }
      if (uplink_index_ && i == *uplink_index_) last_root_ = util::IpAddress();
    };
    if (i == config_.admin_adapter_index) {
      hooks.on_committed = [this](const MembershipView& view) {
        on_admin_committed(view);
      };
    } else if (uplink_index_ && i == *uplink_index_) {
      hooks.on_committed = [this](const MembershipView& view) {
        on_uplink_committed(view);
      };
    }

    protocols_.push_back(std::make_unique<AdapterProtocol>(
        sim_, params_, self, std::move(net), std::move(hooks),
        rng_.fork(0xAD0 + i)));
  }
}

GsDaemon::~GsDaemon() {
  alive_.reset();  // voids in-flight skew / processing-delay callbacks
  report_retry_timer_.cancel();
  report_refresh_timer_.cancel();
  if (started_) {
    for (std::size_t i = 0; i < protocols_.size(); ++i)
      transport_.set_receive_handler(i, nullptr);
  }
}

AdapterProtocol& GsDaemon::protocol(std::size_t index) {
  GS_CHECK(index < protocols_.size());
  return *protocols_[index];
}

const AdapterProtocol& GsDaemon::protocol(std::size_t index) const {
  GS_CHECK(index < protocols_.size());
  return *protocols_[index];
}

util::IpAddress GsDaemon::gsc_ip() const {
  const AdapterProtocol& admin = *protocols_[config_.admin_adapter_index];
  if (!admin.is_committed()) return util::IpAddress();
  return admin.leader_ip();
}

void GsDaemon::start() {
  GS_CHECK(!started_);
  started_ = true;
  const sim::SimDuration skew =
      params_.start_skew_max > 0 ? rng_.range(0, params_.start_skew_max) : 0;
  // Fire-and-forget (no Timer member): guard with the life token so a
  // daemon destroyed mid-skew never starts into freed memory.
  sim_.after(skew, [self = std::weak_ptr<GsDaemon*>(alive_)] {
    const auto locked = self.lock();
    if (!locked) return;
    GsDaemon* d = *locked;
    for (std::size_t i = 0; i < d->protocols_.size(); ++i) {
      d->transport_.set_receive_handler(
          i, [d, i](const net::Datagram& dgram) { d->on_datagram(i, dgram); });
      if (!d->halted_) d->protocols_[i]->start();
    }
    if (!d->halted_) d->arm_report_refresh();
  });
}

void GsDaemon::halt() {
  GS_CHECK_MSG(started_, "halt before start");
  if (halted_) return;
  halted_ = true;
  if (central_ != nullptr && central_->active()) central_->deactivate();
  if (root_central_ != nullptr && root_central_->active())
    root_central_->deactivate();
  if (uplink_ != nullptr) uplink_->halt();
  for (auto& proto : protocols_) proto->shutdown();
  for (auto& outstanding : outstanding_) outstanding.reset();
  report_retry_timer_.cancel();
  report_refresh_timer_.cancel();
  last_gsc_ = util::IpAddress();
  last_root_ = util::IpAddress();
}

void GsDaemon::resume() {
  if (!halted_) return;
  halted_ = false;
  if (uplink_ != nullptr) uplink_->resume();
  for (auto& proto : protocols_) proto->restart();
  arm_report_refresh();
}

void GsDaemon::on_datagram(std::size_t index, const net::Datagram& dgram) {
  if (halted_) return;
  // Model of per-message handling latency (thread scheduling, §4.1).
  sim::SimDuration delay = 0;
  if (params_.proc_delay_mean > 0) {
    delay = static_cast<sim::SimDuration>(
        rng_.exponential(static_cast<double>(params_.proc_delay_mean)));
  }
  // Fire-and-forget: the life token voids the dispatch if the daemon is
  // destroyed while the processing delay is pending.
  sim_.after(delay,
             [self = std::weak_ptr<GsDaemon*>(alive_), index, dgram] {
               if (const auto locked = self.lock())
                 (*locked)->dispatch(index, dgram);
             });
}

void GsDaemon::dispatch(std::size_t index, const net::Datagram& dgram) {
  if (halted_) return;
  // Envelope verification is cached on the shared payload: the first
  // receiver of a multicast pays the CRC, the rest read the stored verdict.
  const wire::VerifiedFrame verified = dgram.payload.verified();
  if (!verified.ok()) {
    ++frames_dropped_;
    ++wire_stats_.dropped[static_cast<std::size_t>(drop_reason(verified.error))];
    GS_LOG(kDebug, "daemon") << config_.name << " dropped frame: "
                             << wire::to_string(verified.error);
    return;
  }
  const auto type = static_cast<MsgType>(verified.type);
  const FrameRef frame(dgram.payload.frame_payload(), &dgram.payload);

  HandleResult result;
  if (type == MsgType::kMembershipReport) {
    std::optional<MembershipReport> scratch;
    const MembershipReport* rep = frame.get(scratch);
    if (rep != nullptr) handle_report_frame(dgram.src, *rep);
    result = rep != nullptr ? HandleResult::kHandled : HandleResult::kDecodeError;
  } else if (type == MsgType::kReportAck) {
    std::optional<ReportAck> scratch;
    const ReportAck* ack = frame.get(scratch);
    if (ack != nullptr) handle_report_ack(*ack);
    result = ack != nullptr ? HandleResult::kHandled : HandleResult::kDecodeError;
  } else if (type == MsgType::kDomainReport) {
    std::optional<DomainReport> scratch;
    const DomainReport* rep = frame.get(scratch);
    if (rep != nullptr) handle_domain_report_frame(index, dgram.src, *rep);
    result = rep != nullptr ? HandleResult::kHandled : HandleResult::kDecodeError;
  } else if (type == MsgType::kDomainReportAck) {
    std::optional<DomainReportAck> scratch;
    const DomainReportAck* ack = frame.get(scratch);
    if (ack != nullptr && uplink_ != nullptr) uplink_->handle_ack(*ack);
    result = ack != nullptr ? HandleResult::kHandled : HandleResult::kDecodeError;
  } else {
    result = protocols_[index]->handle_frame(dgram.src, type, frame);
  }

  switch (result) {
    case HandleResult::kHandled:
      ++wire_stats_.decoded[static_cast<std::size_t>(verified.type) %
                            WireStats::kTypeSlots];
      break;
    case HandleResult::kDecodeError:
      // A verified envelope whose typed payload would not decode: counted
      // per receiver, exactly like envelope drops.
      ++frames_dropped_;
      ++wire_stats_.dropped[static_cast<std::size_t>(WireStats::Drop::kDecode)];
      GS_LOG(kDebug, "daemon") << config_.name << " dropped "
                               << to_string(type) << ": payload decode failed";
      break;
    case HandleResult::kUnknownType:
      ++frames_dropped_;
      ++wire_stats_
            .dropped[static_cast<std::size_t>(WireStats::Drop::kUnknownType)];
      break;
  }
}

void GsDaemon::handle_report_frame(util::IpAddress src,
                                   const MembershipReport& rep) {
  if (central_ == nullptr || !central_->active()) return;
  central_->handle_report(src, rep, [this, src](const ReportAck& ack) {
    if (src == admin_ip()) {
      // The reporting leader lives on this very node: loop back.
      deliver_ack_locally(ack);
      return;
    }
    transport_.unicast(config_.admin_adapter_index, src,
                       net::Payload::copy_of(build_frame(scratch_, ack)));
  });
}

void GsDaemon::handle_domain_report_frame(std::size_t index,
                                          util::IpAddress src,
                                          const DomainReport& rep) {
  if (root_central_ == nullptr || !root_central_->active()) return;
  root_central_->handle_domain_report(
      src, rep, [this, index, src](const DomainReportAck& ack) {
        if (src == transport_.local_ip(index)) {
          // The reporting uplink lives on this very node: loop back.
          if (uplink_ != nullptr) uplink_->handle_ack(ack);
          return;
        }
        transport_.unicast(index, src,
                           net::Payload::copy_of(build_frame(scratch_, ack)));
      });
}

util::IpAddress GsDaemon::uplink_root_ip() const {
  if (!uplink_index_) return util::IpAddress();
  const AdapterProtocol& up = *protocols_[*uplink_index_];
  if (!up.is_committed()) return util::IpAddress();
  return up.leader_ip();
}

void GsDaemon::send_domain_report(const DomainReport& rep) {
  if (!uplink_index_) return;
  const util::IpAddress root = uplink_root_ip();
  if (root.is_unspecified()) return;  // uplink AMG not formed yet; retried
  const util::IpAddress self = transport_.local_ip(*uplink_index_);
  if (root == self) {
    // This node is itself the root GSC: deliver without the network.
    handle_domain_report_frame(*uplink_index_, self, rep);
    return;
  }
  transport_.unicast(*uplink_index_, root,
                     net::Payload::copy_of(build_frame(scratch_, rep)));
}

void GsDaemon::deliver_ack_locally(const ReportAck& ack) {
  handle_report_ack(ack);
}

void GsDaemon::handle_report_ack(const ReportAck& ack) {
  for (std::size_t i = 0; i < protocols_.size(); ++i) {
    AdapterProtocol& proto = *protocols_[i];
    if (proto.self().ip != ack.leader) continue;
    if (!outstanding_[i] || outstanding_[i]->seq != ack.seq) return;
    outstanding_[i].reset();
    obs::emit_trace(params_.trace,
                    ack.need_full ? obs::TraceKind::kReportNeedFull
                                  : obs::TraceKind::kReportAcked,
                    sim_.now(), proto.self().ip, {}, ack.seq, 0, {},
                    config_.node);
    if (ack.need_full) {
      proto.mark_need_full();
      report_pending(i);
    } else {
      proto.report_acked(ack.seq);
    }
    return;
  }
}

void GsDaemon::report_pending(std::size_t index) {
  if (halted_) return;
  AdapterProtocol& proto = *protocols_[index];
  if (!proto.is_leader() || !proto.is_committed()) return;
  OutstandingReport out;
  out.report = proto.build_report();
  out.seq = out.report.seq;
  out.frame = net::Payload::copy_of(build_frame(scratch_, out.report));
  outstanding_[index] = std::move(out);
  try_send_report(index);
  arm_report_retry();
}

void GsDaemon::try_send_report(std::size_t index) {
  if (!outstanding_[index]) return;
  const util::IpAddress gsc = gsc_ip();
  if (gsc.is_unspecified()) return;  // admin AMG not formed yet; retried

  ++reports_sent_;
  obs::emit_trace(params_.trace, obs::TraceKind::kReportSent, sim_.now(),
                  protocols_[index]->self().ip, gsc, outstanding_[index]->seq,
                  outstanding_[index]->report.full ? 1 : 0, {}, config_.node);
  if (gsc == admin_ip()) {
    // This node hosts GulfStream Central: deliver without the network.
    if (central_ != nullptr && central_->active()) {
      central_->handle_report(
          gsc, outstanding_[index]->report,
          [this](const ReportAck& ack) { deliver_ack_locally(ack); });
    }
    return;
  }
  transport_.unicast(config_.admin_adapter_index, gsc,
                     outstanding_[index]->frame);
}

void GsDaemon::arm_report_retry() {
  if (report_retry_timer_.armed()) return;
  report_retry_timer_ =
      sim_.after(params_.report_retry, [this] { report_retry_tick(); });
}

void GsDaemon::report_retry_tick() {
  report_retry_timer_ = sim::Timer();
  bool any = false;
  for (std::size_t i = 0; i < protocols_.size(); ++i) {
    if (!outstanding_[i]) continue;
    if (!protocols_[i]->is_leader()) {
      outstanding_[i].reset();  // demoted: the new leader reports for us
      continue;
    }
    any = true;
    obs::emit_trace(params_.trace, obs::TraceKind::kReportRetry, sim_.now(),
                    protocols_[i]->self().ip, gsc_ip(), outstanding_[i]->seq,
                    0, {}, config_.node);
    try_send_report(i);
  }
  if (any) arm_report_retry();
}

void GsDaemon::arm_report_refresh() {
  if (params_.report_refresh <= 0) return;
  report_refresh_timer_ =
      sim_.after(params_.report_refresh, [this] { report_refresh_tick(); });
}

void GsDaemon::report_refresh_tick() {
  report_refresh_timer_ = sim::Timer();
  if (halted_) return;
  // Re-establish each hosted group's lease at the GSC, even when nothing
  // changed: silence is indistinguishable from a whole group dying at once.
  for (std::size_t i = 0; i < protocols_.size(); ++i) {
    if (outstanding_[i]) continue;  // a report is already in flight
    if (!protocols_[i]->is_leader() || !protocols_[i]->is_committed()) continue;
    // Refreshes are full snapshots: soft state re-asserted wholesale, so a
    // member claim the GSC fenced off (or lost to a stale report) heals on
    // the next cycle without any rejection/renegotiation machinery.
    protocols_[i]->mark_need_full();
    report_pending(i);
  }
  arm_report_refresh();
}

void GsDaemon::on_admin_committed(const MembershipView& view) {
  if (halted_) return;
  const util::IpAddress gsc = view.leader().ip;
  const bool self_leads = gsc == admin_ip();

  if (central_ != nullptr) {
    if (self_leads && config_.central_eligible) {
      central_->activate(gsc);
    } else if (central_->active()) {
      central_->deactivate();
    }
  }

  // Root-tier nodes' admin adapter sits on the root VLAN: winning that AMG
  // makes this node both its tier's GSC and the farm's root GSC.
  if (root_central_ != nullptr) {
    if (self_leads && config_.central_eligible) {
      if (!root_central_->active()) root_central_->activate(gsc);
    } else if (root_central_->active()) {
      root_central_->deactivate();
    }
  }

  if (gsc != last_gsc_) {
    last_gsc_ = gsc;
    // A new GulfStream Central starts empty: every hosted AMG leader must
    // re-establish its group with a full report.
    for (std::size_t i = 0; i < protocols_.size(); ++i) {
      if (!protocols_[i]->is_leader() || !protocols_[i]->is_committed())
        continue;
      protocols_[i]->mark_need_full();
      report_pending(i);
    }
  }
}

void GsDaemon::on_uplink_committed(const MembershipView& view) {
  if (halted_) return;
  const util::IpAddress root = view.leader().ip;
  if (root == last_root_) return;
  last_root_ = root;
  // A new root Central starts empty: re-establish the domain with a full
  // digest (mirrors the leaders' full-report re-send on GSC change).
  if (uplink_ != nullptr) uplink_->on_root_changed();
}

}  // namespace gs::proto
