#include "gs/messages.h"

namespace gs::proto {

std::string_view to_string(MsgType type) {
  switch (type) {
    case MsgType::kBeacon: return "beacon";
    case MsgType::kJoinRequest: return "join-request";
    case MsgType::kPrepare: return "prepare";
    case MsgType::kPrepareAck: return "prepare-ack";
    case MsgType::kCommit: return "commit";
    case MsgType::kHeartbeat: return "heartbeat";
    case MsgType::kSuspect: return "suspect";
    case MsgType::kSuspectAck: return "suspect-ack";
    case MsgType::kProbe: return "probe";
    case MsgType::kProbeAck: return "probe-ack";
    case MsgType::kStaleNotice: return "stale-notice";
    case MsgType::kMembershipReport: return "membership-report";
    case MsgType::kReportAck: return "report-ack";
    case MsgType::kPing: return "ping";
    case MsgType::kPingAck: return "ping-ack";
    case MsgType::kPingReq: return "ping-req";
    case MsgType::kSubgroupPoll: return "subgroup-poll";
    case MsgType::kSubgroupPollAck: return "subgroup-poll-ack";
  }
  return "?";
}

void encode_member(wire::Writer& w, const MemberInfo& m) {
  w.u32(m.ip.bits());
  w.u64(m.mac.bits());
  w.u32(m.node.value());
  w.boolean(m.central_eligible);
}

MemberInfo decode_member(wire::Reader& r) {
  MemberInfo m;
  m.ip = util::IpAddress(r.u32());
  m.mac = util::MacAddress(r.u64());
  m.node = util::NodeId(r.u32());
  m.central_eligible = r.boolean();
  return m;
}

namespace {

void encode_members(wire::Writer& w, const std::vector<MemberInfo>& members) {
  w.vec(members, [](wire::Writer& ww, const MemberInfo& m) {
    encode_member(ww, m);
  });
}

std::vector<MemberInfo> decode_members(wire::Reader& r) {
  return r.vec<MemberInfo>([](wire::Reader& rr) { return decode_member(rr); });
}

template <typename T, typename Fn>
std::optional<T> finish_decode(wire::Reader& r, T&& value, Fn) {
  if (!r.finish()) return std::nullopt;
  return std::forward<T>(value);
}

}  // namespace

// --- Beacon -----------------------------------------------------------------

std::vector<std::uint8_t> encode(const Beacon& msg) {
  wire::Writer w;
  encode_member(w, msg.self);
  w.boolean(msg.is_leader);
  w.u64(msg.view);
  w.u32(msg.group_size);
  return w.take();
}

std::optional<Beacon> decode_Beacon(std::span<const std::uint8_t> payload) {
  wire::Reader r(payload);
  Beacon msg;
  msg.self = decode_member(r);
  msg.is_leader = r.boolean();
  msg.view = r.u64();
  msg.group_size = r.u32();
  if (!r.finish()) return std::nullopt;
  return msg;
}

// --- JoinRequest ------------------------------------------------------------

std::vector<std::uint8_t> encode(const JoinRequest& msg) {
  wire::Writer w;
  w.u64(msg.view);
  encode_members(w, msg.members);
  return w.take();
}

std::optional<JoinRequest> decode_JoinRequest(
    std::span<const std::uint8_t> payload) {
  wire::Reader r(payload);
  JoinRequest msg;
  msg.view = r.u64();
  msg.members = decode_members(r);
  if (!r.finish()) return std::nullopt;
  return msg;
}

// --- Prepare ----------------------------------------------------------------

std::vector<std::uint8_t> encode(const Prepare& msg) {
  wire::Writer w;
  w.u64(msg.view);
  w.u32(msg.leader.bits());
  encode_members(w, msg.members);
  return w.take();
}

std::optional<Prepare> decode_Prepare(std::span<const std::uint8_t> payload) {
  wire::Reader r(payload);
  Prepare msg;
  msg.view = r.u64();
  msg.leader = util::IpAddress(r.u32());
  msg.members = decode_members(r);
  if (!r.finish()) return std::nullopt;
  return msg;
}

// --- PrepareAck -------------------------------------------------------------

std::vector<std::uint8_t> encode(const PrepareAck& msg) {
  wire::Writer w;
  w.u64(msg.view);
  w.boolean(msg.ok);
  w.u64(msg.holder_view);
  return w.take();
}

std::optional<PrepareAck> decode_PrepareAck(
    std::span<const std::uint8_t> payload) {
  wire::Reader r(payload);
  PrepareAck msg;
  msg.view = r.u64();
  msg.ok = r.boolean();
  msg.holder_view = r.u64();
  if (!r.finish()) return std::nullopt;
  return msg;
}

// --- Commit -----------------------------------------------------------------

std::vector<std::uint8_t> encode(const Commit& msg) {
  wire::Writer w;
  w.u64(msg.view);
  encode_members(w, msg.members);
  return w.take();
}

std::optional<Commit> decode_Commit(std::span<const std::uint8_t> payload) {
  wire::Reader r(payload);
  Commit msg;
  msg.view = r.u64();
  msg.members = decode_members(r);
  if (!r.finish()) return std::nullopt;
  return msg;
}

// --- Heartbeat ----------------------------------------------------------------

std::vector<std::uint8_t> encode(const Heartbeat& msg) {
  wire::Writer w;
  w.u64(msg.view);
  w.u64(msg.seq);
  return w.take();
}

std::optional<Heartbeat> decode_Heartbeat(
    std::span<const std::uint8_t> payload) {
  wire::Reader r(payload);
  Heartbeat msg;
  msg.view = r.u64();
  msg.seq = r.u64();
  if (!r.finish()) return std::nullopt;
  return msg;
}

// --- Suspect / SuspectAck -----------------------------------------------------

std::vector<std::uint8_t> encode(const Suspect& msg) {
  wire::Writer w;
  w.u64(msg.view);
  w.u32(msg.suspect.bits());
  return w.take();
}

std::optional<Suspect> decode_Suspect(std::span<const std::uint8_t> payload) {
  wire::Reader r(payload);
  Suspect msg;
  msg.view = r.u64();
  msg.suspect = util::IpAddress(r.u32());
  if (!r.finish()) return std::nullopt;
  return msg;
}

std::vector<std::uint8_t> encode(const SuspectAck& msg) {
  wire::Writer w;
  w.u64(msg.view);
  w.u32(msg.suspect.bits());
  return w.take();
}

std::optional<SuspectAck> decode_SuspectAck(
    std::span<const std::uint8_t> payload) {
  wire::Reader r(payload);
  SuspectAck msg;
  msg.view = r.u64();
  msg.suspect = util::IpAddress(r.u32());
  if (!r.finish()) return std::nullopt;
  return msg;
}

// --- Probe / ProbeAck ---------------------------------------------------------

std::vector<std::uint8_t> encode(const Probe& msg) {
  wire::Writer w;
  w.u64(msg.nonce);
  return w.take();
}

std::optional<Probe> decode_Probe(std::span<const std::uint8_t> payload) {
  wire::Reader r(payload);
  Probe msg;
  msg.nonce = r.u64();
  if (!r.finish()) return std::nullopt;
  return msg;
}

std::vector<std::uint8_t> encode(const ProbeAck& msg) {
  wire::Writer w;
  w.u64(msg.nonce);
  w.boolean(msg.leads_prober);
  return w.take();
}

std::optional<ProbeAck> decode_ProbeAck(std::span<const std::uint8_t> payload) {
  wire::Reader r(payload);
  ProbeAck msg;
  msg.nonce = r.u64();
  msg.leads_prober = r.u8() != 0;
  if (!r.finish()) return std::nullopt;
  return msg;
}

// --- StaleNotice ---------------------------------------------------------------

std::vector<std::uint8_t> encode(const StaleNotice& msg) {
  wire::Writer w;
  w.u64(msg.current_view);
  return w.take();
}

std::optional<StaleNotice> decode_StaleNotice(
    std::span<const std::uint8_t> payload) {
  wire::Reader r(payload);
  StaleNotice msg;
  msg.current_view = r.u64();
  if (!r.finish()) return std::nullopt;
  return msg;
}

// --- MembershipReport / ReportAck ----------------------------------------------

std::vector<std::uint8_t> encode(const MembershipReport& msg) {
  wire::Writer w;
  w.u64(msg.seq);
  w.u64(msg.view);
  w.boolean(msg.full);
  encode_member(w, msg.leader);
  encode_members(w, msg.added);
  w.vec(msg.removed, [](wire::Writer& ww, const RemovedMember& m) {
    ww.u32(m.ip.bits());
    ww.u8(static_cast<std::uint8_t>(m.reason));
  });
  return w.take();
}

std::optional<MembershipReport> decode_MembershipReport(
    std::span<const std::uint8_t> payload) {
  wire::Reader r(payload);
  MembershipReport msg;
  msg.seq = r.u64();
  msg.view = r.u64();
  msg.full = r.boolean();
  msg.leader = decode_member(r);
  msg.added = decode_members(r);
  msg.removed = r.vec<RemovedMember>([](wire::Reader& rr) {
    RemovedMember m;
    m.ip = util::IpAddress(rr.u32());
    m.reason = static_cast<RemoveReason>(rr.u8());
    return m;
  });
  if (!r.finish()) return std::nullopt;
  for (const RemovedMember& m : msg.removed)
    if (m.reason != RemoveReason::kFailed && m.reason != RemoveReason::kLeft)
      return std::nullopt;
  return msg;
}

std::vector<std::uint8_t> encode(const ReportAck& msg) {
  wire::Writer w;
  w.u64(msg.seq);
  w.u32(msg.leader.bits());
  w.boolean(msg.need_full);
  return w.take();
}

std::optional<ReportAck> decode_ReportAck(
    std::span<const std::uint8_t> payload) {
  wire::Reader r(payload);
  ReportAck msg;
  msg.seq = r.u64();
  msg.leader = util::IpAddress(r.u32());
  msg.need_full = r.boolean();
  if (!r.finish()) return std::nullopt;
  return msg;
}

// --- Ping family -----------------------------------------------------------------

std::vector<std::uint8_t> encode(const Ping& msg) {
  wire::Writer w;
  w.u64(msg.nonce);
  w.u32(msg.origin.bits());
  return w.take();
}

std::optional<Ping> decode_Ping(std::span<const std::uint8_t> payload) {
  wire::Reader r(payload);
  Ping msg;
  msg.nonce = r.u64();
  msg.origin = util::IpAddress(r.u32());
  if (!r.finish()) return std::nullopt;
  return msg;
}

std::vector<std::uint8_t> encode(const PingAck& msg) {
  wire::Writer w;
  w.u64(msg.nonce);
  w.u32(msg.target.bits());
  return w.take();
}

std::optional<PingAck> decode_PingAck(std::span<const std::uint8_t> payload) {
  wire::Reader r(payload);
  PingAck msg;
  msg.nonce = r.u64();
  msg.target = util::IpAddress(r.u32());
  if (!r.finish()) return std::nullopt;
  return msg;
}

std::vector<std::uint8_t> encode(const PingReq& msg) {
  wire::Writer w;
  w.u64(msg.nonce);
  w.u32(msg.origin.bits());
  w.u32(msg.target.bits());
  return w.take();
}

std::optional<PingReq> decode_PingReq(std::span<const std::uint8_t> payload) {
  wire::Reader r(payload);
  PingReq msg;
  msg.nonce = r.u64();
  msg.origin = util::IpAddress(r.u32());
  msg.target = util::IpAddress(r.u32());
  if (!r.finish()) return std::nullopt;
  return msg;
}

// --- Subgroup poll ------------------------------------------------------------------

std::vector<std::uint8_t> encode(const SubgroupPoll& msg) {
  wire::Writer w;
  w.u64(msg.seq);
  return w.take();
}

std::optional<SubgroupPoll> decode_SubgroupPoll(
    std::span<const std::uint8_t> payload) {
  wire::Reader r(payload);
  SubgroupPoll msg;
  msg.seq = r.u64();
  if (!r.finish()) return std::nullopt;
  return msg;
}

std::vector<std::uint8_t> encode(const SubgroupPollAck& msg) {
  wire::Writer w;
  w.u64(msg.seq);
  return w.take();
}

std::optional<SubgroupPollAck> decode_SubgroupPollAck(
    std::span<const std::uint8_t> payload) {
  wire::Reader r(payload);
  SubgroupPollAck msg;
  msg.seq = r.u64();
  if (!r.finish()) return std::nullopt;
  return msg;
}

}  // namespace gs::proto
