#include "gs/messages.h"

namespace gs::proto {

std::string_view to_string(MsgType type) {
  switch (type) {
    case MsgType::kBeacon: return "beacon";
    case MsgType::kJoinRequest: return "join-request";
    case MsgType::kPrepare: return "prepare";
    case MsgType::kPrepareAck: return "prepare-ack";
    case MsgType::kCommit: return "commit";
    case MsgType::kHeartbeat: return "heartbeat";
    case MsgType::kSuspect: return "suspect";
    case MsgType::kSuspectAck: return "suspect-ack";
    case MsgType::kProbe: return "probe";
    case MsgType::kProbeAck: return "probe-ack";
    case MsgType::kStaleNotice: return "stale-notice";
    case MsgType::kMembershipReport: return "membership-report";
    case MsgType::kReportAck: return "report-ack";
    case MsgType::kPing: return "ping";
    case MsgType::kPingAck: return "ping-ack";
    case MsgType::kPingReq: return "ping-req";
    case MsgType::kSubgroupPoll: return "subgroup-poll";
    case MsgType::kSubgroupPollAck: return "subgroup-poll-ack";
    case MsgType::kDomainReport: return "domain-report";
    case MsgType::kDomainReportAck: return "domain-report-ack";
  }
  return "?";
}

void encode_member(wire::Writer& w, const MemberInfo& m) {
  w.u32(m.ip.bits());
  w.u64(m.mac.bits());
  w.u32(m.node.value());
  w.boolean(m.central_eligible);
}

MemberInfo decode_member(wire::Reader& r) {
  MemberInfo m;
  m.ip = util::IpAddress(r.u32());
  m.mac = util::MacAddress(r.u64());
  m.node = util::NodeId(r.u32());
  m.central_eligible = r.boolean();
  return m;
}

namespace {

void encode_members(wire::Writer& w, const std::vector<MemberInfo>& members) {
  w.vec(members, [](wire::Writer& ww, const MemberInfo& m) {
    encode_member(ww, m);
  });
}

std::vector<MemberInfo> decode_members(wire::Reader& r) {
  return r.vec<MemberInfo>([](wire::Reader& rr) { return decode_member(rr); });
}

}  // namespace

// The allocation-returning encode() and optional-returning decode_T() are
// thin shims over the in-place pair (encode_into / decode_typed) that the
// hot paths — scratch-Writer framing and the shared decode cache — use.
#define GS_DEFINE_CODEC_SHIMS(T)                                       \
  std::vector<std::uint8_t> encode(const T& msg) {                     \
    wire::Writer w;                                                    \
    encode_into(w, msg);                                               \
    return w.take();                                                   \
  }                                                                    \
  std::optional<T> decode_##T(std::span<const std::uint8_t> payload) { \
    T msg;                                                             \
    if (!decode_typed(payload, &msg)) return std::nullopt;             \
    return msg;                                                        \
  }

// --- Beacon -----------------------------------------------------------------

void encode_into(wire::Writer& w, const Beacon& msg) {
  encode_member(w, msg.self);
  w.boolean(msg.is_leader);
  w.u64(msg.view);
  w.u32(msg.group_size);
}

bool decode_typed(std::span<const std::uint8_t> payload, Beacon* out) {
  wire::Reader r(payload);
  out->self = decode_member(r);
  out->is_leader = r.boolean();
  out->view = r.u64();
  out->group_size = r.u32();
  return r.finish();
}

GS_DEFINE_CODEC_SHIMS(Beacon)

// --- JoinRequest ------------------------------------------------------------

void encode_into(wire::Writer& w, const JoinRequest& msg) {
  w.u64(msg.view);
  encode_members(w, msg.members);
}

bool decode_typed(std::span<const std::uint8_t> payload, JoinRequest* out) {
  wire::Reader r(payload);
  out->view = r.u64();
  out->members = decode_members(r);
  return r.finish();
}

GS_DEFINE_CODEC_SHIMS(JoinRequest)

// --- Prepare ----------------------------------------------------------------

void encode_into(wire::Writer& w, const Prepare& msg) {
  w.u64(msg.view);
  w.u32(msg.leader.bits());
  encode_members(w, msg.members);
}

bool decode_typed(std::span<const std::uint8_t> payload, Prepare* out) {
  wire::Reader r(payload);
  out->view = r.u64();
  out->leader = util::IpAddress(r.u32());
  out->members = decode_members(r);
  return r.finish();
}

GS_DEFINE_CODEC_SHIMS(Prepare)

// --- PrepareAck -------------------------------------------------------------

void encode_into(wire::Writer& w, const PrepareAck& msg) {
  w.u64(msg.view);
  w.boolean(msg.ok);
  w.u64(msg.holder_view);
}

bool decode_typed(std::span<const std::uint8_t> payload, PrepareAck* out) {
  wire::Reader r(payload);
  out->view = r.u64();
  out->ok = r.boolean();
  out->holder_view = r.u64();
  return r.finish();
}

GS_DEFINE_CODEC_SHIMS(PrepareAck)

// --- Commit -----------------------------------------------------------------

void encode_into(wire::Writer& w, const Commit& msg) {
  w.u64(msg.view);
  encode_members(w, msg.members);
}

bool decode_typed(std::span<const std::uint8_t> payload, Commit* out) {
  wire::Reader r(payload);
  out->view = r.u64();
  out->members = decode_members(r);
  return r.finish();
}

GS_DEFINE_CODEC_SHIMS(Commit)

// --- Heartbeat ----------------------------------------------------------------

void encode_into(wire::Writer& w, const Heartbeat& msg) {
  w.u64(msg.view);
  w.u64(msg.seq);
}

bool decode_typed(std::span<const std::uint8_t> payload, Heartbeat* out) {
  wire::Reader r(payload);
  out->view = r.u64();
  out->seq = r.u64();
  return r.finish();
}

GS_DEFINE_CODEC_SHIMS(Heartbeat)

// --- Suspect / SuspectAck -----------------------------------------------------

void encode_into(wire::Writer& w, const Suspect& msg) {
  w.u64(msg.view);
  w.u32(msg.suspect.bits());
}

bool decode_typed(std::span<const std::uint8_t> payload, Suspect* out) {
  wire::Reader r(payload);
  out->view = r.u64();
  out->suspect = util::IpAddress(r.u32());
  return r.finish();
}

GS_DEFINE_CODEC_SHIMS(Suspect)

void encode_into(wire::Writer& w, const SuspectAck& msg) {
  w.u64(msg.view);
  w.u32(msg.suspect.bits());
}

bool decode_typed(std::span<const std::uint8_t> payload, SuspectAck* out) {
  wire::Reader r(payload);
  out->view = r.u64();
  out->suspect = util::IpAddress(r.u32());
  return r.finish();
}

GS_DEFINE_CODEC_SHIMS(SuspectAck)

// --- Probe / ProbeAck ---------------------------------------------------------

void encode_into(wire::Writer& w, const Probe& msg) { w.u64(msg.nonce); }

bool decode_typed(std::span<const std::uint8_t> payload, Probe* out) {
  wire::Reader r(payload);
  out->nonce = r.u64();
  return r.finish();
}

GS_DEFINE_CODEC_SHIMS(Probe)

void encode_into(wire::Writer& w, const ProbeAck& msg) {
  w.u64(msg.nonce);
  w.boolean(msg.leads_prober);
}

bool decode_typed(std::span<const std::uint8_t> payload, ProbeAck* out) {
  wire::Reader r(payload);
  out->nonce = r.u64();
  out->leads_prober = r.u8() != 0;
  return r.finish();
}

GS_DEFINE_CODEC_SHIMS(ProbeAck)

// --- StaleNotice ---------------------------------------------------------------

void encode_into(wire::Writer& w, const StaleNotice& msg) {
  w.u64(msg.current_view);
}

bool decode_typed(std::span<const std::uint8_t> payload, StaleNotice* out) {
  wire::Reader r(payload);
  out->current_view = r.u64();
  return r.finish();
}

GS_DEFINE_CODEC_SHIMS(StaleNotice)

// --- MembershipReport / ReportAck ----------------------------------------------

void encode_into(wire::Writer& w, const MembershipReport& msg) {
  w.u64(msg.seq);
  w.u64(msg.view);
  w.boolean(msg.full);
  encode_member(w, msg.leader);
  encode_members(w, msg.added);
  w.vec(msg.removed, [](wire::Writer& ww, const RemovedMember& m) {
    ww.u32(m.ip.bits());
    ww.u8(static_cast<std::uint8_t>(m.reason));
  });
}

bool decode_typed(std::span<const std::uint8_t> payload,
                  MembershipReport* out) {
  wire::Reader r(payload);
  out->seq = r.u64();
  out->view = r.u64();
  out->full = r.boolean();
  out->leader = decode_member(r);
  out->added = decode_members(r);
  out->removed = r.vec<RemovedMember>([](wire::Reader& rr) {
    RemovedMember m;
    m.ip = util::IpAddress(rr.u32());
    m.reason = static_cast<RemoveReason>(rr.u8());
    return m;
  });
  if (!r.finish()) return false;
  for (const RemovedMember& m : out->removed)
    if (m.reason != RemoveReason::kFailed && m.reason != RemoveReason::kLeft)
      return false;
  return true;
}

GS_DEFINE_CODEC_SHIMS(MembershipReport)

void encode_into(wire::Writer& w, const ReportAck& msg) {
  w.u64(msg.seq);
  w.u32(msg.leader.bits());
  w.boolean(msg.need_full);
}

bool decode_typed(std::span<const std::uint8_t> payload, ReportAck* out) {
  wire::Reader r(payload);
  out->seq = r.u64();
  out->leader = util::IpAddress(r.u32());
  out->need_full = r.boolean();
  return r.finish();
}

GS_DEFINE_CODEC_SHIMS(ReportAck)

// --- Ping family -----------------------------------------------------------------

void encode_into(wire::Writer& w, const Ping& msg) {
  w.u64(msg.nonce);
  w.u32(msg.origin.bits());
}

bool decode_typed(std::span<const std::uint8_t> payload, Ping* out) {
  wire::Reader r(payload);
  out->nonce = r.u64();
  out->origin = util::IpAddress(r.u32());
  return r.finish();
}

GS_DEFINE_CODEC_SHIMS(Ping)

void encode_into(wire::Writer& w, const PingAck& msg) {
  w.u64(msg.nonce);
  w.u32(msg.target.bits());
}

bool decode_typed(std::span<const std::uint8_t> payload, PingAck* out) {
  wire::Reader r(payload);
  out->nonce = r.u64();
  out->target = util::IpAddress(r.u32());
  return r.finish();
}

GS_DEFINE_CODEC_SHIMS(PingAck)

void encode_into(wire::Writer& w, const PingReq& msg) {
  w.u64(msg.nonce);
  w.u32(msg.origin.bits());
  w.u32(msg.target.bits());
}

bool decode_typed(std::span<const std::uint8_t> payload, PingReq* out) {
  wire::Reader r(payload);
  out->nonce = r.u64();
  out->origin = util::IpAddress(r.u32());
  out->target = util::IpAddress(r.u32());
  return r.finish();
}

GS_DEFINE_CODEC_SHIMS(PingReq)

// --- Subgroup poll ------------------------------------------------------------------

void encode_into(wire::Writer& w, const SubgroupPoll& msg) { w.u64(msg.seq); }

bool decode_typed(std::span<const std::uint8_t> payload, SubgroupPoll* out) {
  wire::Reader r(payload);
  out->seq = r.u64();
  return r.finish();
}

GS_DEFINE_CODEC_SHIMS(SubgroupPoll)

void encode_into(wire::Writer& w, const SubgroupPollAck& msg) {
  w.u64(msg.seq);
}

bool decode_typed(std::span<const std::uint8_t> payload,
                  SubgroupPollAck* out) {
  wire::Reader r(payload);
  out->seq = r.u64();
  return r.finish();
}

GS_DEFINE_CODEC_SHIMS(SubgroupPollAck)

// --- DomainReport / DomainReportAck ---------------------------------------------

namespace {

void encode_domain_entry(wire::Writer& w, const DomainAdapterEntry& e) {
  encode_member(w, e.info);
  w.boolean(e.alive);
  w.u32(e.group_leader.bits());
  w.u64(e.view);
}

DomainAdapterEntry decode_domain_entry(wire::Reader& r) {
  DomainAdapterEntry e;
  e.info = decode_member(r);
  e.alive = r.boolean();
  e.group_leader = util::IpAddress(r.u32());
  e.view = r.u64();
  return e;
}

}  // namespace

void encode_into(wire::Writer& w, const DomainReport& msg) {
  w.u64(msg.seq);
  w.u64(msg.epoch);
  w.u32(msg.domain);
  w.boolean(msg.full);
  w.u32(msg.sender.bits());
  w.vec(msg.entries, [](wire::Writer& ww, const DomainAdapterEntry& e) {
    encode_domain_entry(ww, e);
  });
  w.vec(msg.removed, [](wire::Writer& ww, const util::IpAddress& ip) {
    ww.u32(ip.bits());
  });
}

bool decode_typed(std::span<const std::uint8_t> payload, DomainReport* out) {
  wire::Reader r(payload);
  out->seq = r.u64();
  out->epoch = r.u64();
  out->domain = r.u32();
  out->full = r.boolean();
  out->sender = util::IpAddress(r.u32());
  out->entries = r.vec<DomainAdapterEntry>(
      [](wire::Reader& rr) { return decode_domain_entry(rr); });
  out->removed = r.vec<util::IpAddress>(
      [](wire::Reader& rr) { return util::IpAddress(rr.u32()); });
  return r.finish();
}

GS_DEFINE_CODEC_SHIMS(DomainReport)

void encode_into(wire::Writer& w, const DomainReportAck& msg) {
  w.u64(msg.seq);
  w.u32(msg.domain);
  w.boolean(msg.need_full);
}

bool decode_typed(std::span<const std::uint8_t> payload, DomainReportAck* out) {
  wire::Reader r(payload);
  out->seq = r.u64();
  out->domain = r.u32();
  out->need_full = r.boolean();
  return r.finish();
}

GS_DEFINE_CODEC_SHIMS(DomainReportAck)

#undef GS_DEFINE_CODEC_SHIMS

}  // namespace gs::proto
