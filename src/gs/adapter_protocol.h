// The per-adapter GulfStream protocol state machine.
//
// One instance runs for every network adapter of every node (the daemon
// hosts one per local adapter, §2.1). It implements:
//  * the BEACON discovery phase and highest-IP deferral,
//  * AMG formation, joins, merges, and death recommits — all through a
//    two-phase commit coordinated by the leader,
//  * the heartbeat failure detector (pluggable strategy, see fd.h), the
//    loopback self-test, suspicion reporting with leader verification
//    probes, and leader succession by rank,
//  * the "moved adapter" recovery path of §3.1: a member that can reach
//    neither its heartbeat partners nor its leader (or that receives a
//    StaleNotice) resets to discovery, becomes a singleton leader, beacons,
//    and is absorbed by the leader of whatever segment it now lives on,
//  * membership reporting toward GulfStream Central: the leader debounces
//    for T_AMG after its group stabilizes, then emits full-or-delta
//    MembershipReports (delivery/acks are the daemon's job).
//
// View numbers act as a Lamport clock (clock_): every view observed in any
// message advances it, and every proposal uses clock_+1, which makes
// competing recommits, takeovers, and merges converge.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <span>
#include <vector>

#include "gs/amg.h"
#include "gs/fd.h"
#include "gs/messages.h"
#include "gs/params.h"
#include "sim/time_source.h"
#include "util/ip.h"
#include "util/rng.h"

namespace gs::proto {

enum class AdapterState : std::uint8_t {
  kIdle = 0,          // not started
  kBeaconing,         // initial (or re-)discovery, collecting beacons
  kWaitingForLeader,  // deferred to a higher IP, awaiting its Prepare
  kMember,            // committed, non-leader
  kLeader,            // committed leader (also: coordinator of an initial
                      // formation whose first 2PC is still in flight)
};

[[nodiscard]] std::string_view to_string(AdapterState s);

// What became of one verified frame handed to a protocol instance. The
// daemon turns this into per-type decoded / per-reason dropped accounting,
// counted per receiver even when the decode itself came from the shared
// payload cache.
enum class HandleResult : std::uint8_t {
  kHandled,      // typed decode succeeded and the message was processed
  kDecodeError,  // the payload failed its typed decoder
  kUnknownType,  // the type is not a known MsgType
};

struct ProtocolStats {
  std::uint64_t beacons_sent = 0;
  std::uint64_t suspicions_raised = 0;   // local FD suspicions
  std::uint64_t suspects_sent = 0;       // Suspect messages sent upward
  std::uint64_t probes_sent = 0;
  std::uint64_t probes_refuted = 0;      // suspect answered: false report
  std::uint64_t deaths_declared = 0;     // leader-side removals
  std::uint64_t commits = 0;             // views installed
  std::uint64_t takeovers = 0;           // leader successions performed
  std::uint64_t resets = 0;              // falls back to discovery
  std::uint64_t stale_notices_sent = 0;
  std::uint64_t joins_requested = 0;     // merge requests to higher leaders
};

class AdapterProtocol {
 public:
  // How the protocol touches the outside world; the daemon wires these to
  // the fabric (and injects its processing-delay model upstream).
  struct NetIface {
    std::function<bool(util::IpAddress, net::Payload)> unicast;
    std::function<bool(net::Payload)> beacon_multicast;
    std::function<bool()> loopback_ok;
  };

  struct Hooks {
    // The leader's report debounce (T_AMG) fired: the daemon should call
    // build_report() and deliver it toward GulfStream Central.
    std::function<void()> on_report_pending;
    std::function<void(const MembershipView&)> on_committed;
    std::function<void(util::IpAddress)> on_death_declared;
    std::function<void()> on_reset;
  };

  AdapterProtocol(sim::TimeSource& clock, const Params& params,
                  MemberInfo self, NetIface net, Hooks hooks, util::Rng rng);

  AdapterProtocol(const AdapterProtocol&) = delete;
  AdapterProtocol& operator=(const AdapterProtocol&) = delete;

  // Cancels every pending timer (trace-free, unlike shutdown()): an
  // instance destroyed with timers in flight must never leave callbacks
  // behind that would fire into freed memory — the wall-clock backends
  // outlive individual daemons.
  ~AdapterProtocol();

  // Enters the beacon phase. Call once (the daemon applies start-up skew).
  void start();

  // Models the daemon process dying with its node: every timer is
  // cancelled, all state dropped, and the adapter goes silent (kIdle).
  void shutdown();
  // Models the daemon restarting on boot: re-enters discovery from kIdle.
  void restart();

  // Handles one already-CRC-verified frame (daemon decoded the envelope).
  // The FrameRef may carry the shared decode cache of a multicast payload;
  // the result feeds the daemon's per-type/per-reason codec accounting.
  HandleResult handle_frame(util::IpAddress src, MsgType type, FrameRef frame);

  // --- Introspection --------------------------------------------------------

  [[nodiscard]] AdapterState state() const { return state_; }
  [[nodiscard]] bool is_leader() const { return state_ == AdapterState::kLeader; }
  [[nodiscard]] bool is_committed() const {
    return !committed_.empty() && (state_ == AdapterState::kMember ||
                                   state_ == AdapterState::kLeader);
  }
  [[nodiscard]] const MembershipView& committed() const { return committed_; }
  // When the current committed view was installed (-1 if none): the health
  // sampler derives per-AMG view age from this.
  [[nodiscard]] sim::SimTime committed_at() const { return committed_at_; }
  [[nodiscard]] util::IpAddress leader_ip() const {
    return committed_.empty() ? util::IpAddress{} : committed_.leader().ip;
  }
  [[nodiscard]] const MemberInfo& self() const { return self_; }
  [[nodiscard]] const ProtocolStats& stats() const { return stats_; }
  // Size of the StaleNotice rate-limit map (tests assert it stays pruned).
  [[nodiscard]] std::size_t stale_notice_entries() const {
    return stale_notice_sent_.size();
  }

  // --- Reporting interface (leader only; driven by the daemon) --------------

  [[nodiscard]] MembershipReport build_report();
  void report_acked(std::uint64_t seq);
  void mark_need_full() { need_full_ = true; }

 private:
  // Emits one protocol-phase trace record onto params_.trace (no-op when
  // unwired or unobserved).
  void trace(obs::TraceKind kind, util::IpAddress peer = {},
             std::uint64_t a = 0, std::uint64_t b = 0);

  // --- Discovery ------------------------------------------------------------
  void begin_beaconing();
  void beacon_tick();
  void end_beacon_phase();
  void defer_expired();
  void install_singleton();

  // --- Participant 2PC --------------------------------------------------------
  void handle_prepare(util::IpAddress src, const Prepare& msg);
  void handle_commit(const Commit& msg);
  void maybe_implicit_commit(std::uint64_t msg_view);
  void install_pending();
  void install(MembershipView view);

  // --- Coordinator 2PC ----------------------------------------------------------
  void schedule_change();
  void propose();
  void reinstate_proposal_state(const MembershipView& aborted,
                                const std::set<util::IpAddress>& drop,
                                RemoveReason drop_reason);
  void twopc_timeout();
  void handle_prepare_ack(util::IpAddress src, const PrepareAck& msg);
  void do_commit();

  // --- Leader duties ---------------------------------------------------------
  void handle_beacon(util::IpAddress src, const Beacon& msg);
  void handle_join_request(const JoinRequest& msg);
  void maybe_send_join(util::IpAddress higher_leader);
  void leader_handle_suspicion(util::IpAddress suspect,
                               util::IpAddress reporter);
  void start_verification(util::IpAddress suspect);
  void probe_timeout(util::IpAddress suspect);
  void declare_dead(util::IpAddress ip);
  void arm_report_debounce();

  // --- Member duties -----------------------------------------------------------
  void raise_suspicion(util::IpAddress suspect);
  void send_suspect(util::IpAddress suspect, util::IpAddress to);
  void suspect_retry_expired(util::IpAddress suspect);
  void begin_takeover_check();
  void takeover_probe_timeout();
  void do_takeover();
  void reset_to_discovery();

  // --- Helpers --------------------------------------------------------------------
  void cancel_all_timers();
  void bump_clock(std::uint64_t seen) { clock_ = std::max(clock_, seen); }
  void start_fd();
  void stop_fd();
  void clear_member_duty_state();
  void clear_leader_duty_state();
  [[nodiscard]] util::IpAddress self_ip() const { return self_.ip; }
  bool unicast(util::IpAddress to, net::Payload frame);

  // Encodes a message into the adapter's scratch Writer and snapshots it
  // into a pooled payload: the steady-state (allocation-free) frame path.
  template <typename T>
  [[nodiscard]] net::Payload framed(const T& msg) {
    return net::Payload::copy_of(build_frame(scratch_, msg));
  }

  sim::TimeSource& sim_;
  const Params& params_;
  MemberInfo self_;
  NetIface net_;
  Hooks hooks_;
  util::Rng rng_;

  AdapterState state_ = AdapterState::kIdle;
  std::uint64_t clock_ = 0;  // Lamport view clock
  MembershipView committed_;
  sim::SimTime committed_at_ = -1;
  ProtocolStats stats_;
  std::unique_ptr<FailureDetector> fd_;

  // Discovery.
  struct HeardBeacon {
    MemberInfo info;
    bool is_leader = false;
    std::uint64_t view = 0;
  };
  std::map<util::IpAddress, HeardBeacon> heard_;
  sim::Timer beacon_send_timer_;
  sim::Timer beacon_end_timer_;
  sim::Timer defer_timer_;
  // Set once defer_expired() has tried joining a heard leader, so the
  // second expiry falls back to the singleton instead of looping.
  bool defer_join_attempted_ = false;

  // Participant 2PC.
  struct PendingPrepare {
    std::uint64_t view = 0;
    util::IpAddress coordinator;
    MembershipView membership;
    sim::Timer expiry;
  };
  std::optional<PendingPrepare> pending_prepare_;

  // Coordinator 2PC.
  struct Proposal {
    std::uint64_t view = 0;
    MembershipView membership;
    std::set<util::IpAddress> awaiting;
    int attempt = 1;
    sim::Timer timer;
  };
  std::optional<Proposal> proposal_;
  std::map<util::IpAddress, MemberInfo> pending_adds_;
  std::map<util::IpAddress, RemoveReason> pending_removes_;
  bool force_recommit_ = false;
  bool dirty_ = false;  // changes arrived while a 2PC was in flight
  sim::Timer change_timer_;

  // Leader verification of suspicions.
  struct SuspicionState {
    std::set<util::IpAddress> reporters;
    bool probing = false;
    std::uint64_t probe_nonce = 0;
    int probes_left = 0;
    sim::Timer probe_timer;
  };
  std::map<util::IpAddress, SuspicionState> suspicions_;

  // Merge rate limiting.
  util::IpAddress join_target_;
  sim::SimTime last_join_sent_ = -1;

  // Reporting.
  std::uint64_t report_seq_ = 0;
  bool need_full_ = true;
  std::set<util::IpAddress> last_acked_membership_;
  struct PendingSnapshot {
    std::uint64_t seq = 0;
    std::set<util::IpAddress> membership;
  };
  std::optional<PendingSnapshot> pending_snapshot_;
  std::map<util::IpAddress, RemoveReason> departures_;  // until acked
  sim::Timer report_timer_;

  // Member-side suspicion reporting.
  struct OutstandingSuspect {
    util::IpAddress to;  // leader, or the successor during leader suspicion
    int tries = 0;
    sim::Timer timer;
  };
  std::map<util::IpAddress, OutstandingSuspect> outstanding_suspects_;
  std::set<util::IpAddress> locally_suspected_;

  // Leader-takeover verification (member side).
  struct Takeover {
    std::uint64_t nonce = 0;
    int probes_left = 0;
    sim::Timer timer;
  };
  std::optional<Takeover> takeover_;

  // Rate limit for StaleNotice replies (a stale member heartbeats fast).
  std::map<util::IpAddress, sim::SimTime> stale_notice_sent_;

  // Reused by framed() for every frame this adapter (and its failure
  // detector) encodes; grows to the largest frame and stays there.
  wire::Writer scratch_;
};

}  // namespace gs::proto
