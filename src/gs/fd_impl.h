// Concrete failure-detector implementations (exposed for unit tests; library
// users go through make_failure_detector).
#pragma once

#include <map>
#include <set>

#include "gs/fd.h"

namespace gs::proto {

// Heartbeat-family detector covering uni-ring, bi-ring, all-to-all, and the
// subgroup scheme. The kind selects which ranks this member heartbeats
// (targets) and which it monitors; subgroup mode adds the leader-side
// low-frequency poll of each subgroup (§4.2).
class HeartbeatFd final : public FailureDetector {
 public:
  HeartbeatFd(FdKind kind, FdContext ctx);
  ~HeartbeatFd() override { stop_all(); }

  void start(const MembershipView& view) override;
  void stop() override { stop_all(); }

  void on_heartbeat(util::IpAddress from, const Heartbeat& hb) override;
  void on_subgroup_poll_ack(util::IpAddress from,
                            const SubgroupPollAck& ack) override;

  [[nodiscard]] FdKind kind() const override { return kind_; }
  [[nodiscard]] int consensus_reporters() const override {
    return (kind_ == FdKind::kBidirectionalRing || kind_ == FdKind::kAllToAll)
               ? 2
               : 1;
  }

  // Rank list of the subgroup containing `rank` (exposed for tests).
  static std::vector<std::size_t> subgroup_of(std::size_t rank,
                                              std::size_t group_size,
                                              std::size_t subgroup_size);

 private:
  void stop_all();
  void compute_peers();
  void send_heartbeats();
  void arm_monitor(util::IpAddress peer, bool after_suspicion);
  void monitor_expired(util::IpAddress peer);

  // Leader-side subgroup polling.
  void send_polls();
  struct ChunkState {
    std::vector<util::IpAddress> members;
    int consecutive_misses = 0;
    std::uint64_t outstanding_seq = 0;  // 0 = none
    std::size_t next_target = 0;        // rotation over members
  };

  FdKind kind_;
  FdContext ctx_;
  MembershipView view_;
  bool running_ = false;

  std::vector<util::IpAddress> targets_;   // peers we heartbeat
  std::vector<util::IpAddress> monitored_; // peers we expect heartbeats from
  std::map<util::IpAddress, sim::Timer> deadlines_;
  std::uint64_t hb_seq_ = 0;
  sim::Timer send_timer_;

  // subgroup-poll state (leader only)
  std::vector<ChunkState> chunks_;
  sim::Timer poll_timer_;
  std::uint64_t poll_seq_ = 0;
  std::map<std::uint64_t, std::size_t> poll_chunk_by_seq_;
};

// Randomized distributed pinging (§4.2, ref [9]): each period pick a random
// member, ping it; on silence, ask `ping_proxies` other members to ping it
// indirectly; still silent by the end of the period => suspect.
class RandPingFd final : public FailureDetector {
 public:
  explicit RandPingFd(FdContext ctx) : ctx_(std::move(ctx)) {}
  ~RandPingFd() override { stop(); }

  void start(const MembershipView& view) override;
  void stop() override;

  void on_heartbeat(util::IpAddress, const Heartbeat&) override {}
  void on_ping_ack(util::IpAddress from, const PingAck& ack) override;
  void on_ping_req(util::IpAddress from, const PingReq& req) override;

  [[nodiscard]] FdKind kind() const override { return FdKind::kRandomPing; }

 private:
  void tick();
  void direct_timeout();
  void period_end();

  FdContext ctx_;
  MembershipView view_;
  std::vector<util::IpAddress> peers_;
  bool running_ = false;

  sim::Timer tick_timer_;
  sim::Timer direct_timer_;
  sim::Timer round_end_timer_;
  util::IpAddress round_target_;
  std::uint64_t round_nonce_ = 0;
  bool round_acked_ = true;

  // Proxy duty: nonce -> origin awaiting the forwarded ack. Entries are
  // pruned after one ping period (a duty older than that is dead weight).
  struct ProxyDuty {
    util::IpAddress origin;
    sim::SimTime created;
  };
  std::map<std::uint64_t, ProxyDuty> proxy_pending_;
};

}  // namespace gs::proto
