// Two-level Central hierarchy: per-domain Centrals feeding a root GSC.
//
// The flat design (central.h) has every AMG leader in the farm report to ONE
// Central — the scalability wall the related work attacks. Here each domain
// keeps a plain Central consuming its VLANs' leader reports exactly as
// before, and two new pieces carry the aggregate upward:
//
//  * DomainUplink observes its domain Central's table (Central::TableObserver)
//    and batches every changed adapter into compressed DomainReport digests —
//    many per-adapter changes per frame, full digests to (re)establish the
//    domain, deltas in the steady state. One report outstanding at a time,
//    retried until acked, re-sent as a full when the root changes or asks
//    (need_full), periodically refreshed in full to renew the root's
//    domain lease. Sequence/epoch pairs let the root tell a restarted domain
//    Central from a lost frame.
//
//  * RootCentral consumes DomainReports from every domain uplink and keeps
//    the farm-wide adapter table plus group structure *derived* from the
//    per-adapter (group_leader, view) pairs — member lists never cross the
//    uplink. Failover mirrors the flat design at both levels: a domain
//    Central dying makes its leaders re-home via the existing discovery path
//    (new epoch, full digest); a root dying rebuilds from the need_full-
//    triggered domain fulls; a silently dead domain expires wholesale after
//    domain_lease.
//
// Neither class owns a transport: the hosting daemon wires DomainUplink's
// Iface to its uplink adapter and routes kDomainReport/kDomainReportAck
// frames (see gs/daemon.h), keeping both classes drivable object-level in
// tests and bench/central_scale.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <set>
#include <vector>

#include "gs/central.h"
#include "gs/messages.h"
#include "gs/params.h"
#include "sim/time_source.h"

namespace gs::proto {

class DomainUplink : public Central::TableObserver {
 public:
  struct Iface {
    // Delivers one DomainReport toward the current root GSC. The daemon
    // owns framing and transport; never called while root_ip() is
    // unspecified.
    std::function<void(const DomainReport&)> send;
    // Current root GSC IP (the uplink adapter's AMG leader), or unspecified
    // while that AMG is uncommitted.
    std::function<util::IpAddress()> root_ip;
  };

  // Registers itself as `central`'s table observer; `central` must outlive
  // the uplink.
  DomainUplink(sim::TimeSource& clock, const Params& params, Central& central,
               std::uint32_t domain, util::IpAddress self_ip, Iface iface);
  ~DomainUplink() override;

  DomainUplink(const DomainUplink&) = delete;
  DomainUplink& operator=(const DomainUplink&) = delete;

  // Central::TableObserver — driven by the observed domain Central.
  void central_activated() override;
  void central_deactivated() override;
  void adapter_changed(util::IpAddress ip) override;

  // The uplink adapter's AMG committed with a (possibly new) leader: the
  // root may have failed over, so re-establish with a full digest.
  void on_root_changed();
  void handle_ack(const DomainReportAck& ack);

  // Node death/boot, mirroring the daemon's halt/resume.
  void halt();
  void resume();

  [[nodiscard]] std::uint32_t domain() const { return domain_; }
  [[nodiscard]] util::IpAddress self_ip() const { return self_ip_; }
  [[nodiscard]] std::uint64_t epoch() const { return epoch_; }
  [[nodiscard]] std::uint64_t reports_sent() const { return reports_sent_; }
  [[nodiscard]] bool report_outstanding() const {
    return outstanding_.has_value();
  }

 private:
  void arm_batch();
  void flush();
  void send_current();
  void arm_retry();
  void retry_tick();
  void arm_refresh();
  void refresh_tick();
  void drop_outstanding();
  [[nodiscard]] DomainReport build_report();

  sim::TimeSource& sim_;
  const Params& params_;
  Central& central_;
  const std::uint32_t domain_;
  const util::IpAddress self_ip_;
  Iface iface_;

  bool halted_ = false;
  std::uint64_t epoch_ = 0;   // counts central_activated()
  std::uint64_t seq_ = 0;     // per-epoch report sequence
  bool need_full_ = true;
  std::set<util::IpAddress> dirty_;  // changed since the last flush
  std::optional<DomainReport> outstanding_;  // at most one in flight
  sim::Timer batch_timer_;
  sim::Timer retry_timer_;
  sim::Timer refresh_timer_;
  std::uint64_t reports_sent_ = 0;
};

class RootCentral {
 public:
  RootCentral(sim::TimeSource& clock, const Params& params);
  ~RootCentral();

  RootCentral(const RootCentral&) = delete;
  RootCentral& operator=(const RootCentral&) = delete;

  // Activation follows the root VLAN's AMG leadership, exactly like the
  // flat Central follows the admin AMG's. A fresh instance starts empty and
  // rebuilds from the domain fulls its need_full acks solicit.
  void activate(util::IpAddress self_ip);
  void deactivate();
  [[nodiscard]] bool active() const { return active_; }
  [[nodiscard]] util::IpAddress self_ip() const { return self_ip_; }

  void handle_domain_report(
      util::IpAddress from, const DomainReport& report,
      const std::function<void(const DomainReportAck&)>& reply);

  // --- Farm view (mirrors Central's introspection shape) -------------------

  struct AdapterStatus {
    MemberInfo info;
    bool alive = false;
    util::IpAddress group_leader;  // unspecified when unassigned
    std::uint64_t view = 0;
    std::uint32_t domain = 0;
    sim::SimTime last_change = 0;
  };
  [[nodiscard]] std::optional<AdapterStatus> adapter_status(
      util::IpAddress ip) const;
  [[nodiscard]] std::size_t known_adapter_count() const { return rows_.size(); }
  [[nodiscard]] std::size_t alive_adapter_count() const;

  // Group structure derived from the per-adapter (group_leader, view)
  // pairs: one group per distinct leader among alive assigned adapters.
  struct GroupInfo {
    util::IpAddress leader;
    std::uint64_t view = 0;
    std::vector<util::IpAddress> members;
  };
  [[nodiscard]] std::vector<GroupInfo> groups() const;

  // Node correlation at farm scope: down when every known adapter of the
  // node is recorded dead (and at least one is known).
  [[nodiscard]] bool node_down(util::NodeId node) const;

  [[nodiscard]] std::size_t domain_count() const { return domains_.size(); }
  [[nodiscard]] std::uint64_t reports_received() const {
    return reports_received_;
  }
  [[nodiscard]] std::uint64_t need_fulls_sent() const {
    return need_fulls_sent_;
  }

 private:
  struct Row {
    MemberInfo info;
    bool alive = false;
    util::IpAddress group_leader;
    std::uint64_t view = 0;
    std::uint32_t domain = 0;
    sim::SimTime last_change = 0;
  };

  struct DomainState {
    util::IpAddress sender;      // uplink adapter IP of the current epoch
    std::uint64_t epoch = 0;
    std::uint64_t last_seq = 0;
    sim::SimTime last_report = 0;  // domain lease
    std::set<util::IpAddress> owned;
  };

  void trace(obs::TraceKind kind, util::IpAddress peer = {},
             std::uint64_t a = 0, std::uint64_t b = 0);
  void arm_lease_sweep();
  void lease_sweep();
  // Applies one digest row; false when a stale cross-domain claim was
  // fenced off (a dead/unassigned verdict from a domain that no longer
  // owns the adapter).
  bool apply_entry(std::uint32_t domain, const DomainAdapterEntry& entry);
  void clear_all_state();

  sim::TimeSource& sim_;
  const Params& params_;

  bool active_ = false;
  util::IpAddress self_ip_;
  std::uint64_t reports_received_ = 0;
  std::uint64_t need_fulls_sent_ = 0;

  std::map<util::IpAddress, Row> rows_;
  std::map<std::uint32_t, DomainState> domains_;
  sim::Timer lease_timer_;
};

}  // namespace gs::proto
