#include "gs/amg.h"

#include <algorithm>

namespace gs::proto {

MembershipView MembershipView::make(std::uint64_t view,
                                    std::vector<MemberInfo> members) {
  std::sort(members.begin(), members.end(),
            [](const MemberInfo& a, const MemberInfo& b) { return a.ip > b.ip; });
  members.erase(std::unique(members.begin(), members.end(),
                            [](const MemberInfo& a, const MemberInfo& b) {
                              return a.ip == b.ip;
                            }),
                members.end());
  MembershipView v;
  v.view_ = view;
  v.members_ = std::move(members);
  return v;
}

std::optional<std::size_t> MembershipView::rank_of(util::IpAddress ip) const {
  // Members are sorted descending by IP: binary search.
  auto it = std::lower_bound(
      members_.begin(), members_.end(), ip,
      [](const MemberInfo& m, util::IpAddress target) { return m.ip > target; });
  if (it == members_.end() || it->ip != ip) return std::nullopt;
  return static_cast<std::size_t>(it - members_.begin());
}

util::IpAddress MembershipView::right_of(util::IpAddress ip) const {
  auto rank = rank_of(ip);
  GS_CHECK_MSG(rank.has_value(), "ring neighbor of a non-member");
  return members_[(*rank + 1) % members_.size()].ip;
}

util::IpAddress MembershipView::left_of(util::IpAddress ip) const {
  auto rank = rank_of(ip);
  GS_CHECK_MSG(rank.has_value(), "ring neighbor of a non-member");
  return members_[(*rank + members_.size() - 1) % members_.size()].ip;
}

std::vector<util::IpAddress> MembershipView::ips() const {
  std::vector<util::IpAddress> out;
  out.reserve(members_.size());
  for (const MemberInfo& m : members_) out.push_back(m.ip);
  return out;
}

std::uint64_t MembershipView::ips_hash() const {
  std::uint64_t hash = 14695981039346656037ull;  // FNV-1a offset basis
  for (const MemberInfo& m : members_) {
    std::uint32_t bits = m.ip.bits();
    for (int i = 0; i < 4; ++i) {
      hash ^= (bits >> (8 * i)) & 0xffu;
      hash *= 1099511628211ull;  // FNV prime
    }
  }
  return hash;
}

}  // namespace gs::proto
