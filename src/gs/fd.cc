#include "gs/fd.h"

#include "gs/fd_impl.h"

namespace gs::proto {

std::unique_ptr<FailureDetector> make_failure_detector(FdKind kind,
                                                       FdContext ctx) {
  if (kind == FdKind::kRandomPing)
    return std::make_unique<RandPingFd>(std::move(ctx));
  return std::make_unique<HeartbeatFd>(kind, std::move(ctx));
}

}  // namespace gs::proto
