// GulfStream protocol messages and their wire codecs.
//
// Each payload struct has encode() and a static decode(); frames are built
// with wire::encode_frame(type, payload). Decoders are total: they return
// nullopt on any malformed input (Reader's sticky error + full-consumption
// check), never partial structs.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string_view>
#include <vector>

#include "net/payload.h"
#include "util/ids.h"
#include "util/ip.h"
#include "wire/buffer.h"
#include "wire/frame.h"

namespace gs::proto {

enum class MsgType : std::uint16_t {
  kBeacon = 1,
  kJoinRequest = 2,
  kPrepare = 3,
  kPrepareAck = 4,
  kCommit = 5,
  kHeartbeat = 6,
  kSuspect = 7,
  kSuspectAck = 8,
  kProbe = 9,
  kProbeAck = 10,
  kStaleNotice = 11,
  kMembershipReport = 12,
  kReportAck = 13,
  kPing = 14,
  kPingAck = 15,
  kPingReq = 16,
  kSubgroupPoll = 17,
  kSubgroupPollAck = 18,
  kDomainReport = 19,
  kDomainReportAck = 20,
};

[[nodiscard]] std::string_view to_string(MsgType type);

// Identity of one adapter as carried in beacons, membership lists, and
// reports. `node` lets GSC correlate adapter failures into node failures.
struct MemberInfo {
  util::IpAddress ip;
  util::MacAddress mac;
  util::NodeId node;
  bool central_eligible = false;  // §2.2: flag on administrative beacons

  bool operator==(const MemberInfo&) const = default;
};

void encode_member(wire::Writer& w, const MemberInfo& m);
[[nodiscard]] MemberInfo decode_member(wire::Reader& r);

// ---------------------------------------------------------------------------

// Multicast on the well-known group during discovery, and forever by
// committed AMG leaders (§2.1).
struct Beacon {
  static constexpr MsgType kType = MsgType::kBeacon;
  MemberInfo self;
  bool is_leader = false;
  std::uint64_t view = 0;       // committed view, 0 while uncommitted
  std::uint32_t group_size = 0; // committed group size (leaders only)
};

// A (lower-IP) leader asks a higher-IP leader to absorb its membership.
struct JoinRequest {
  static constexpr MsgType kType = MsgType::kJoinRequest;
  std::uint64_t view = 0;  // requester's committed view (for view clocks)
  std::vector<MemberInfo> members;
};

// 2PC phase one: the proposed membership, in rank order (index 0 = leader,
// descending IP). The explicit order doubles as the heartbeat ring order
// and the leader-succession order (§2.1, §3).
struct Prepare {
  static constexpr MsgType kType = MsgType::kPrepare;
  std::uint64_t view = 0;
  util::IpAddress leader;
  std::vector<MemberInfo> members;
};

struct PrepareAck {
  static constexpr MsgType kType = MsgType::kPrepareAck;
  std::uint64_t view = 0;
  bool ok = true;
  std::uint64_t holder_view = 0;  // on nack: the view the holder is bound to
};

// 2PC phase two. Carries the FINAL membership: participants that never
// acknowledged the Prepare (lost, dead, or moved away) are excluded, so the
// committed view contains only members known to hold the prepared state.
// This is what lets formation terminate in one round under loss without
// ever committing phantom members.
struct Commit {
  static constexpr MsgType kType = MsgType::kCommit;
  std::uint64_t view = 0;
  std::vector<MemberInfo> members;  // rank order, like Prepare
};

struct Heartbeat {
  static constexpr MsgType kType = MsgType::kHeartbeat;
  std::uint64_t view = 0;
  std::uint64_t seq = 0;
};

// Member -> leader (or -> successor when the leader itself is suspected).
struct Suspect {
  static constexpr MsgType kType = MsgType::kSuspect;
  std::uint64_t view = 0;
  util::IpAddress suspect;
};

struct SuspectAck {
  static constexpr MsgType kType = MsgType::kSuspectAck;
  std::uint64_t view = 0;
  util::IpAddress suspect;
};

struct Probe {
  static constexpr MsgType kType = MsgType::kProbe;
  std::uint64_t nonce = 0;
};

struct ProbeAck {
  static constexpr MsgType kType = MsgType::kProbeAck;
  std::uint64_t nonce = 0;
  // True iff the responder is a committed leader whose view contains the
  // prober. A takeover probe needs more than liveness: a leader that
  // restarted (and, say, joined some other group) is alive yet has silently
  // abandoned its old members, and its leadership must be treated as vacant.
  bool leads_prober = false;
};

// Tells a peer its group state is obsolete (it was removed or its group was
// absorbed while it was unreachable); the member re-enters discovery.
struct StaleNotice {
  static constexpr MsgType kType = MsgType::kStaleNotice;
  std::uint64_t current_view = 0;
};

enum class RemoveReason : std::uint8_t { kFailed = 0, kLeft = 1 };

struct RemovedMember {
  util::IpAddress ip;
  RemoveReason reason = RemoveReason::kFailed;
};

// AMG leader -> GulfStream Central (§2.2). `full` snapshots establish the
// group; deltas carry only changes — "in the steady state, no network
// resources are used for group membership information".
struct MembershipReport {
  static constexpr MsgType kType = MsgType::kMembershipReport;
  std::uint64_t seq = 0;   // per-(leader adapter) sequence for gap detection
  std::uint64_t view = 0;
  bool full = false;
  MemberInfo leader;
  std::vector<MemberInfo> added;     // on full: entire membership
  std::vector<RemovedMember> removed;
};

struct ReportAck {
  static constexpr MsgType kType = MsgType::kReportAck;
  std::uint64_t seq = 0;
  util::IpAddress leader;  // which hosted AMG leader this ack is for — one
                           // node can host several leader adapters, and acks
                           // all arrive on its single administrative adapter
  bool need_full = false;  // GSC lost state (failover) or saw a seq gap
};

// Randomized-ping detector (§4.2): direct ping, ack, and indirect ping
// through a proxy. `origin` rides along so the proxy can route the ack back.
struct Ping {
  static constexpr MsgType kType = MsgType::kPing;
  std::uint64_t nonce = 0;
  util::IpAddress origin;
};

struct PingAck {
  static constexpr MsgType kType = MsgType::kPingAck;
  std::uint64_t nonce = 0;
  util::IpAddress target;  // who proved alive
};

struct PingReq {
  static constexpr MsgType kType = MsgType::kPingReq;
  std::uint64_t nonce = 0;
  util::IpAddress origin;
  util::IpAddress target;
};

// Subgroup detector (§4.2): low-frequency leader poll of each subgroup.
struct SubgroupPoll {
  static constexpr MsgType kType = MsgType::kSubgroupPoll;
  std::uint64_t seq = 0;
};

struct SubgroupPollAck {
  static constexpr MsgType kType = MsgType::kSubgroupPollAck;
  std::uint64_t seq = 0;
};

// --- Hierarchical Central (domain -> root) ----------------------------------

// One adapter's row in a domain Central's digest. The root derives group
// structure from the (group_leader, view) pair — member lists never cross
// the uplink, which is what keeps a DomainReport a digest rather than a
// concatenation of every leader report the domain consumed.
struct DomainAdapterEntry {
  MemberInfo info;
  bool alive = true;
  util::IpAddress group_leader;  // leader of the AMG this adapter sits in
  std::uint64_t view = 0;        // that group's committed view
};

// Domain Central -> root GSC (two-level hierarchy). Batched: one frame
// carries every adapter that changed since the last flush (delta) or the
// domain's whole table (full). `epoch` counts domain-Central activations so
// the root can tell a restarted domain Central (stale seq space) from a
// seq gap within one incarnation.
struct DomainReport {
  static constexpr MsgType kType = MsgType::kDomainReport;
  std::uint64_t seq = 0;    // per-(uplink incarnation) sequence
  std::uint64_t epoch = 0;  // domain-Central activation counter
  std::uint32_t domain = 0;
  bool full = false;
  util::IpAddress sender;  // the uplink adapter's IP (ack routing)
  std::vector<DomainAdapterEntry> entries;   // changed (delta) or all (full)
  std::vector<util::IpAddress> removed;      // adapters retired outright
};

struct DomainReportAck {
  static constexpr MsgType kType = MsgType::kDomainReportAck;
  std::uint64_t seq = 0;
  std::uint32_t domain = 0;
  bool need_full = false;  // root lost state (failover) or saw a seq gap
};

// --- Codecs ----------------------------------------------------------------
//
// Each message has four codec entry points:
//   encode_into(Writer&, msg)  — append the payload to a (scratch) Writer
//   encode(msg)                — convenience: fresh Writer, returns a vector
//   decode_typed(span, T*)     — decode in place, false on malformed input
//   decode_T(span)             — convenience: optional<T>
// The *_into/_typed pair is what the hot paths use: encode side reuses a
// per-daemon scratch buffer, decode side fills the shared per-payload cache.

#define GS_DECLARE_CODEC(T)                                                    \
  void encode_into(wire::Writer& w, const T& msg);                             \
  [[nodiscard]] std::vector<std::uint8_t> encode(const T& msg);                \
  [[nodiscard]] bool decode_typed(std::span<const std::uint8_t> payload,       \
                                  T* out);                                     \
  [[nodiscard]] std::optional<T> decode_##T(std::span<const std::uint8_t> payload);

GS_DECLARE_CODEC(Beacon)
GS_DECLARE_CODEC(JoinRequest)
GS_DECLARE_CODEC(Prepare)
GS_DECLARE_CODEC(PrepareAck)
GS_DECLARE_CODEC(Commit)
GS_DECLARE_CODEC(Heartbeat)
GS_DECLARE_CODEC(Suspect)
GS_DECLARE_CODEC(SuspectAck)
GS_DECLARE_CODEC(Probe)
GS_DECLARE_CODEC(ProbeAck)
GS_DECLARE_CODEC(StaleNotice)
GS_DECLARE_CODEC(MembershipReport)
GS_DECLARE_CODEC(ReportAck)
GS_DECLARE_CODEC(Ping)
GS_DECLARE_CODEC(PingAck)
GS_DECLARE_CODEC(PingReq)
GS_DECLARE_CODEC(SubgroupPoll)
GS_DECLARE_CODEC(SubgroupPollAck)
GS_DECLARE_CODEC(DomainReport)
GS_DECLARE_CODEC(DomainReportAck)

#undef GS_DECLARE_CODEC

// Builds a complete frame (header + payload) for any message struct.
template <typename T>
[[nodiscard]] std::vector<std::uint8_t> to_frame(const T& msg) {
  return wire::encode_frame(static_cast<std::uint16_t>(T::kType), encode(msg));
}

// Allocation-free framing: rewinds `scratch`, emits header + payload, and
// returns a view of the finished frame (valid until the next use of
// `scratch`). Byte-identical to to_frame() for the same message.
template <typename T>
[[nodiscard]] std::span<const std::uint8_t> build_frame(wire::Writer& scratch,
                                                        const T& msg) {
  wire::begin_frame(scratch, static_cast<std::uint16_t>(T::kType));
  encode_into(scratch, msg);
  return wire::finish_frame(scratch);
}

// A verified frame's payload plus (optionally) the refcounted Payload that
// owns the bytes. get<T>() is the decode-once read path: when the owner is
// known and caching is on, the first receiver decodes into the payload's
// shared slot and every later receiver — of any daemon — reads the cached
// struct; otherwise it decodes into the caller's scratch optional. Either
// way the returned pointer is valid for the current handler invocation only.
class FrameRef {
 public:
  // Implicit on purpose: handlers and tests pass raw payload spans/vectors
  // where a FrameRef is expected (no caching without an owner).
  FrameRef(std::span<const std::uint8_t> payload)  // NOLINT
      : payload_(payload) {}
  FrameRef(const std::vector<std::uint8_t>& payload)  // NOLINT
      : payload_(payload) {}
  FrameRef(std::span<const std::uint8_t> payload, const net::Payload* owner)
      : payload_(payload), owner_(owner) {}

  [[nodiscard]] std::span<const std::uint8_t> payload() const {
    return payload_;
  }

  template <typename T>
  [[nodiscard]] const T* get(std::optional<T>& scratch) const {
    const auto tag = static_cast<std::uint16_t>(T::kType);
    if (owner_ != nullptr && net::Payload::cache_enabled()) {
      net::DecodeSlot* slot = owner_->decode_slot();
      if (slot != nullptr) {
        switch (slot->state()) {
          case net::DecodeSlot::State::kEmpty:
            return slot->fill<T>(tag, [this](T* out) {
              return decode_typed(payload_, out);
            });
          case net::DecodeSlot::State::kDecoded:
            if (slot->tag() == tag) return slot->value<T>();
            break;  // cached as another type: decode privately below
          case net::DecodeSlot::State::kFailed:
            if (slot->tag() == tag) return nullptr;
            break;
        }
      }
    }
    scratch.emplace();
    if (!decode_typed(payload_, &*scratch)) {
      scratch.reset();
      return nullptr;
    }
    return &*scratch;
  }

 private:
  std::span<const std::uint8_t> payload_;
  const net::Payload* owner_ = nullptr;
};

}  // namespace gs::proto
