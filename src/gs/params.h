// Tunable protocol parameters.
//
// Names follow the paper: T_b (beacon phase), T_AMG (leader stability wait),
// T_GSC (Central stability wait) are the three configurable terms of
// Equation 1; tau/k are the heartbeat frequency and failure-detector
// sensitivity whose trade-offs §3 discusses. The daemon-delay block models
// the paper's δ term (Java thread start-up and scheduling, §4.1).
#pragma once

#include <cstdint>

#include "obs/fwd.h"
#include "sim/time.h"

namespace gs::proto {

enum class FdKind : std::uint8_t {
  kUnidirectionalRing = 0,  // Totem-style, one-strike neighbor monitoring
  kBidirectionalRing,       // GulfStream default (paper Figure 4)
  kAllToAll,                // HACMP-style baseline — "scales poorly" (§5)
  kSubgroupRing,            // §4.2 alternative: small subgroups + leader poll
  kRandomPing,              // §4.2 alternative: randomized distributed pinging
};

[[nodiscard]] constexpr const char* to_string(FdKind kind) {
  switch (kind) {
    case FdKind::kUnidirectionalRing: return "uni-ring";
    case FdKind::kBidirectionalRing: return "bi-ring";
    case FdKind::kAllToAll: return "all-to-all";
    case FdKind::kSubgroupRing: return "subgroup";
    case FdKind::kRandomPing: return "rand-ping";
  }
  return "?";
}

struct Params {
  // --- Discovery (§2.1) ---------------------------------------------------
  sim::SimDuration beacon_phase = sim::seconds(5);     // T_b
  sim::SimDuration beacon_interval = sim::seconds(1);  // beacon send period
  sim::SimDuration defer_timeout = sim::seconds(4);    // waiting for Prepare
  sim::SimDuration join_retry = sim::seconds(2);       // leader-merge retry

  // --- Membership / two-phase commit --------------------------------------
  sim::SimDuration change_debounce = sim::milliseconds(300);
  sim::SimDuration twopc_timeout = sim::milliseconds(800);
  int twopc_retries = 2;

  // --- Failure detection (§3) ----------------------------------------------
  FdKind fd_kind = FdKind::kBidirectionalRing;
  sim::SimDuration hb_period = sim::milliseconds(500);  // tau
  int hb_sensitivity = 2;                               // k consecutive misses
  bool fd_loopback_test = true;   // self-test before blaming the neighbor
  bool leader_verify = true;      // leader probes before declaring death
  int probe_retries = 2;
  sim::SimDuration probe_timeout = sim::milliseconds(400);
  sim::SimDuration suspect_retry = sim::milliseconds(500);
  int suspect_retries = 3;        // then the leader is presumed unreachable
  sim::SimDuration resuspect_hold = sim::seconds(2);

  // Subgroup detector (§4.2)
  int subgroup_size = 8;
  sim::SimDuration subgroup_poll_period = sim::seconds(5);
  int subgroup_poll_misses = 3;

  // Randomized-ping detector (§4.2, ref [9])
  sim::SimDuration ping_period = sim::seconds(1);
  sim::SimDuration ping_timeout = sim::milliseconds(300);
  int ping_proxies = 3;

  // --- Reporting hierarchy (§2.2) ------------------------------------------
  sim::SimDuration amg_stable_wait = sim::seconds(5);   // T_AMG
  sim::SimDuration gsc_stable_wait = sim::seconds(15);  // T_GSC
  sim::SimDuration report_retry = sim::seconds(2);
  // Soft-state lease on the GSC's group table. Leaders re-send their report
  // every report_refresh even without membership changes, and the GSC
  // retires any group whose leader stayed silent for group_lease: when a
  // whole group dies at once (e.g. the last node of a partition half), no
  // survivor exists to report the death, so silence is the only signal.
  // Zero group_lease disables expiry; zero report_refresh disables the
  // refresh AND the expiry sweep (without renewals every healthy-but-quiet
  // group would expire on schedule).
  sim::SimDuration report_refresh = sim::seconds(10);
  sim::SimDuration group_lease = sim::seconds(25);

  // --- Two-level hierarchy (domain Central -> root GSC) ---------------------
  // Domain uplinks batch table changes for domain_batch before flushing one
  // DomainReport frame (many per-adapter changes per frame); zero flushes
  // every change immediately. The root retires a whole domain's slice after
  // domain_lease of uplink silence; uplinks re-send a full digest every
  // domain_refresh to renew it (zero disables, mirroring the flat lease).
  sim::SimDuration domain_batch = sim::milliseconds(200);
  sim::SimDuration domain_refresh = sim::seconds(10);
  sim::SimDuration domain_lease = sim::seconds(25);

  // --- GulfStream Central (§3, §3.1) ---------------------------------------
  sim::SimDuration move_window = sim::seconds(10);  // move-inference hold

  // --- Daemon delay model (the δ of Equation 1) -----------------------------
  // Uniform start-up skew of the daemon process on each node.
  sim::SimDuration start_skew_max = sim::seconds(1);
  // "the beaconing timer is not set for between 1 and 2 seconds after
  // beaconing begins" (§4.1): extra delay before the phase-end timer.
  sim::SimDuration beacon_setup_min = sim::seconds(1);
  sim::SimDuration beacon_setup_max = sim::seconds(2);
  // Per-message handling delay (exponential mean); models thread scheduling.
  sim::SimDuration proc_delay_mean = sim::milliseconds(2);

  // --- Telemetry ------------------------------------------------------------
  // Non-owning; farm::Farm (or the embedder) points this at its TraceBus so
  // every protocol layer sharing these Params emits onto the same bus.
  // Null disables tracing at one-branch cost per would-be record.
  obs::TraceBus* trace = nullptr;
};

}  // namespace gs::proto
